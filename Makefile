# Convenience targets for the reproduction.

.PHONY: install test lint bench profile diffexec lanes artifacts sweep sweep-clean serve compare regress baseline examples all

install:
	pip install -e .

test:
	pytest tests/ 2>&1 | tee test_output.txt

# Static checks: ruff (when available) over the Python sources, mypy
# (when available) over the analysis and sweep packages, then the
# repo's own verifier over every shipped kernel and microprogram.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping Python style checks"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy --config-file mypy.ini src/repro/analysis src/repro/sweep; \
	else \
		echo "mypy not installed; skipping type checks"; \
	fi
	PYTHONPATH=src python -m repro.analysis --all

bench:
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Observability smoke: profiled Table 7.1 subset, per-symbol kernel
# profile, Chrome trace, and the BENCH_smoke.json + BENCH_fastpath.json
# + BENCH_obs.json records (reference vs fast-path timings, and the
# telemetry plane's enabled-path cost).
profile:
	PYTHONPATH=src python benchmarks/smoke_profile.py results/smoke
	PYTHONPATH=src python benchmarks/bench_fastpath.py results/smoke
	PYTHONPATH=src python benchmarks/bench_obs.py results/smoke
	PYTHONPATH=src python -m repro.harness.runall --profile

# Lock-step differential verification of the superblock fast path
# (mirrors the fastpath-diff CI job over the default kernel set).
diffexec:
	PYTHONPATH=src python -m repro.pete.diffexec \
		--report results/diffexec-report.txt

# Per-lane verification of the batched lane engine at batch 1/4/64
# plus the batch throughput benchmark (mirrors the lanes-diff CI job;
# requires numpy).
lanes:
	PYTHONPATH=src python -m repro.pete.diffexec --lanes 1 4 64 \
		--report results/lanes-diff-report.txt
	PYTHONPATH=src python benchmarks/bench_fastpath.py results/smoke \
		--batch

artifacts:
	python -m repro.harness.runall --out results --csv

# Parallel, cached artifact regeneration: same output as `artifacts`,
# fanned over a process pool with results memoized in results/cache/
# (a warm rerun touches zero simulators).
sweep:
	PYTHONPATH=src python -m repro.sweep --out results --csv

sweep-clean:
	rm -rf results/cache

# Service-plane load benchmark: boot the always-on signing service,
# offer mixed sign/verify/ecdh traffic at two arrival rates, and gate
# on zero errors + warm steady state (mirrors the serve-smoke CI job;
# requires numpy).  BENCH_serve.json + telemetry land in results/serve.
serve:
	PYTHONPATH=src python benchmarks/bench_serve.py \
		--requests 250 --rates 200,800 --workers 2 \
		--obs --require-warm \
		--out results/serve --stats-json results/serve/serve_stats.json

compare:
	python -m repro.harness.compare

# Cross-run regression gate: the working tree vs the committed baseline
# snapshot, smoke subset (CI-sized).  The report and the gate's ledger
# record land under results/.
regress:
	PYTHONPATH=src python -m repro.regress gate --smoke \
		--report results/regress/gate_report.txt
	PYTHONPATH=src python -m repro.regress scorecard \
		> results/regress/scorecard.txt

# Regenerate the committed baseline (run after an *intended* cycle or
# energy change, and commit the result with it).
baseline:
	PYTHONPATH=src python -m repro.regress baseline

examples:
	for f in examples/*.py; do echo "== $$f =="; python $$f || exit 1; done

all: install test bench artifacts compare
