# Convenience targets for the reproduction.

.PHONY: install test bench artifacts compare examples all

install:
	pip install -e .

test:
	pytest tests/ 2>&1 | tee test_output.txt

bench:
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

artifacts:
	python -m repro.harness.runall --out results --csv

compare:
	python -m repro.harness.compare

examples:
	for f in examples/*.py; do echo "== $$f =="; python $$f || exit 1; done

all: install test bench artifacts compare
