"""EnergyBreakdown/EnergyReport arithmetic, incl. the zero-cycle case."""

import pytest

from repro.energy.accounting import EnergyBreakdown, EnergyReport


def _report(label="r", cycles=1000):
    bd = EnergyBreakdown()
    bd.add_dynamic("Pete", 600.0)
    bd.add_dynamic("RAM", 300.0)
    bd.add_static("Pete", 100.0)
    bd.add_static("RAM", 50.0)
    return EnergyReport(label, cycles, bd)


def test_zero_cycle_report_has_zero_power():
    """Regression: power on an empty run must be 0.0, not a
    ZeroDivisionError."""
    report = EnergyReport("empty", 0, EnergyBreakdown())
    assert report.dynamic_power_mw == 0.0
    assert report.static_power_mw == 0.0
    assert report.power_mw == 0.0
    assert report.total_uj == 0.0
    assert "0.0 uJ" in report.summary()


def test_zero_cycles_with_energy_still_no_crash():
    bd = EnergyBreakdown()
    bd.add_dynamic("Pete", 10.0)
    report = EnergyReport("odd", 0, bd)
    assert report.power_mw == 0.0
    assert report.total_nj == 10.0


def test_breakdown_accumulates_and_lists_components():
    bd = EnergyBreakdown()
    bd.add_dynamic("Pete", 1.0)
    bd.add_dynamic("Pete", 2.0)
    bd.add_static("RAM", 4.0)
    assert bd.dynamic_nj["Pete"] == 3.0
    assert bd.component_total_nj("Pete") == 3.0
    assert bd.component_total_nj("RAM") == 4.0
    assert bd.components == ["Pete", "RAM"]


def test_totals_and_power_split():
    report = _report()
    assert report.total_nj == 1050.0
    assert report.total_uj == pytest.approx(1.05)
    assert report.time_s == pytest.approx(1000 * report.clock_ns * 1e-9)
    expected_dyn = 900.0 * 1e-9 / report.time_s * 1e3
    assert report.dynamic_power_mw == pytest.approx(expected_dyn)
    assert report.power_mw == pytest.approx(
        report.dynamic_power_mw + report.static_power_mw)
    assert report.component_uj("Pete") == pytest.approx(0.7)


def test_merged_sums_components_and_cycles():
    a, b = _report("sign", 1000), _report("verify", 500)
    b.breakdown.add_dynamic("Monte", 40.0)
    merged = a.merged(b, "sign+verify")
    assert merged.label == "sign+verify"
    assert merged.cycles == 1500
    assert merged.breakdown.dynamic_nj["Pete"] == 1200.0
    assert merged.breakdown.dynamic_nj["Monte"] == 40.0
    assert merged.breakdown.static_nj["RAM"] == 100.0
    assert merged.total_nj == pytest.approx(a.total_nj + b.total_nj)
    # inputs untouched
    assert a.breakdown.dynamic_nj["Pete"] == 600.0
