"""The Cacti-like memory energy model."""

import pytest

from repro.energy.memory_model import (
    MemoryEnergyModel,
    data_ram,
    flash_program_memory,
    icache_macros,
    program_rom,
)


def test_access_energy_grows_with_capacity():
    energies = [MemoryEnergyModel(capacity_bytes=size).read_energy_pj()
                for size in (1024, 4096, 16384, 262144)]
    assert energies == sorted(energies)
    # sqrt-ish scaling: 256x capacity is well under 256x energy
    assert energies[-1] < 20 * energies[0]


def test_wide_ports_amortize_decode():
    rom = program_rom(line_port=True)
    single = rom.read_energy_pj(32)
    line = rom.read_energy_pj(128)
    assert single < line < 4 * single, \
        "a 128-bit line read costs less than four 32-bit reads"


def test_writes_cost_more_than_reads():
    ram = data_ram()
    assert ram.write_energy_pj() > ram.read_energy_pj()


def test_rom_has_no_leakage():
    """The paper's explicit assumption: ROM static power is zero."""
    assert program_rom().leakage_uw() == 0.0
    assert flash_program_memory().leakage_uw() == 0.0
    assert data_ram().leakage_uw() > 0.0


def test_dual_port_penalty():
    single = MemoryEnergyModel(capacity_bytes=16384)
    dual = MemoryEnergyModel(capacity_bytes=16384, dual_port=True)
    assert dual.read_energy_pj() > single.read_energy_pj()
    assert dual.leakage_uw() > single.leakage_uw()


def test_leakage_linear_in_capacity():
    small = MemoryEnergyModel(capacity_bytes=4096).leakage_uw()
    large = MemoryEnergyModel(capacity_bytes=16384).leakage_uw()
    assert large == pytest.approx(4 * small)


def test_flash_costs_more_than_rom():
    assert flash_program_memory().read_energy_pj() > \
        2.0 * program_rom().read_energy_pj()


def test_icache_macros_sized_with_tag_overhead():
    cache = icache_macros(4096)
    assert cache.capacity_bytes > 4096
    assert cache.read_energy_pj() < program_rom().read_energy_pj(), \
        "the whole point: cache reads are far cheaper than ROM reads"


def test_paper_memory_hierarchy_ordering():
    """Fig. 7.2's energy story in one assertion chain: I$ < RAM < ROM."""
    assert icache_macros(4096).read_energy_pj() \
        < data_ram().read_energy_pj() \
        < program_rom().read_energy_pj()
