"""Component power models and the accounting layer."""

import pytest

from repro.energy.accounting import EnergyBreakdown, EnergyReport
from repro.energy.calibration import CALIBRATION
from repro.energy.components import (
    FFAU_SYNTHESIS_TABLE,
    FFAUPower,
    billie_area_cells,
    karatsuba_multiplier_power_factors,
)
from repro.energy.technology import TECH_45NM


def test_ffau_synthesis_anchors():
    """Table 7.3's 192-bit column reproduces exactly."""
    for width, (area, static, dynamic) in FFAU_SYNTHESIS_TABLE.items():
        power = FFAUPower(width)
        assert power.area_cells == area
        assert power.static_uw(192) == pytest.approx(static)
        assert power.dynamic_pj_per_cycle(192) * 100 == pytest.approx(
            dynamic)


def test_ffau_static_grows_with_key_size():
    power = FFAUPower(32)
    assert power.static_uw(384) > power.static_uw(192)


def test_ffau_average_power():
    power = FFAUPower(32)
    avg = power.average_power_uw(192)
    assert avg == pytest.approx(159.1 + 659.9, rel=0.01)
    assert power.average_power_uw(192, busy_fraction=0.5) < avg


def test_billie_area_model():
    """Section 7.3's anchors: 1.45x Pete at 163 bits, ~5x at 571."""
    pete = 31_000
    assert billie_area_cells(163, pete) == pytest.approx(1.45 * pete)
    assert billie_area_cells(571, pete) == pytest.approx(5.0 * pete)


def test_multiplier_ablation_factors():
    factors = karatsuba_multiplier_power_factors()
    assert factors["karatsuba"] == (1.0, 1.0)
    # Section 7.8: Karatsuba saves 4.69 % dynamic vs operand scanning
    dyn, _ = factors["operand_scan_multicycle"]
    assert dyn == pytest.approx(1.0492)
    dyn, static = factors["parallel_pipelined"]
    assert dyn > 1.1 and static > 1.35


def test_technology_node_helpers():
    assert TECH_45NM.dynamic_energy_pj(1000) == pytest.approx(1.1)
    assert TECH_45NM.leakage_uw(10) == pytest.approx(140.0)


def test_billie_sram_and_gating_coefficients():
    cal = CALIBRATION.billie
    assert cal.active_pj(163, sram_regfile=True) < cal.active_pj(163)
    assert cal.idle_pj(163, gated=True) < cal.idle_pj(163) / 3
    assert cal.static_uw(163, sram_regfile=True) < cal.static_uw(163)


def test_energy_breakdown_accumulates():
    bd = EnergyBreakdown()
    bd.add_dynamic("Pete", 10.0)
    bd.add_dynamic("Pete", 5.0)
    bd.add_static("Pete", 2.0)
    bd.add_dynamic("ROM", 3.0)
    assert bd.component_total_nj("Pete") == 17.0
    assert bd.components == ["Pete", "ROM"]


def test_energy_report_math():
    bd = EnergyBreakdown()
    bd.add_dynamic("Pete", 900.0)   # nJ
    bd.add_static("Pete", 100.0)
    report = EnergyReport("test", cycles=1_000_000, breakdown=bd)
    assert report.total_uj == pytest.approx(1.0)
    assert report.time_s == pytest.approx(3e-3)
    assert report.power_mw == pytest.approx(1e-6 / 3e-3 * 1e3)
    assert report.static_power_mw / report.power_mw == pytest.approx(0.1)
    merged = report.merged(report, "double")
    assert merged.total_nj == pytest.approx(2000.0)
    assert merged.cycles == 2_000_000
