"""Billie: functional units, hazards, queue and digit-serial timing."""

import pytest

from repro.accel.billie import Billie, BillieConfig
from repro.accel.digit_serial import (
    digit_serial_cycles,
    digit_serial_mul,
    hardwired_square,
    squarer_xor_gates,
)
from repro.fields.binary import BinaryField


@pytest.fixture
def billie():
    return Billie()


@pytest.fixture
def field():
    return BinaryField.nist(163)


def test_digit_serial_matches_field(field, rng):
    for digit in (1, 2, 3, 4, 8):
        for _ in range(5):
            a = rng.getrandbits(163)
            b = rng.getrandbits(163)
            result = digit_serial_mul(a, b, 163, digit)
            assert result.value == field.mul(a, b)
            assert result.cycles == digit_serial_cycles(163, digit)


def test_digit_serial_cycle_model():
    assert digit_serial_cycles(163, 1) == 165
    assert digit_serial_cycles(163, 3) == 57
    assert digit_serial_cycles(163, 8) == 23
    with pytest.raises(KeyError):
        digit_serial_mul(1, 1, 200)


def test_hardwired_square(field, rng):
    for m in (163, 283, 571):
        f = BinaryField.nist(m)
        for _ in range(5):
            a = rng.getrandbits(m)
            assert hardwired_square(a, m) == f.sqr(a)


def test_squarer_gate_estimate_scales():
    assert squarer_xor_gates(163) < squarer_xor_gates(571)


def test_billie_register_ops(billie, field, rng):
    a = rng.getrandbits(163)
    b = rng.getrandbits(163)
    billie.issue_load(1, a)
    billie.issue_load(2, b)
    billie.issue_mul(3, 1, 2)
    billie.issue_sqr(4, 1)
    billie.issue_add(5, 1, 2)
    assert billie.regs[3] == field.mul(a, b)
    assert billie.regs[4] == field.sqr(a)
    assert billie.regs[5] == a ^ b
    value, _ = billie.issue_store(3)
    assert value == field.mul(a, b)


def test_billie_rejects_unknown_field():
    with pytest.raises(KeyError):
        Billie(BillieConfig(m=200))


def test_data_hazard_serializes(billie, rng):
    """A dependent op waits for the producer's write-back."""
    billie.issue_load(1, rng.getrandbits(163))
    billie.issue_load(2, rng.getrandbits(163))
    first_done = billie.issue_mul(3, 1, 2)
    second_done = billie.issue_mul(4, 3, 2)  # reads r3
    assert second_done >= first_done + billie.config.mul_cycles


def test_independent_units_overlap(billie, rng):
    """The adder and squarer run beside the multiplier (Fig. 5.12)."""
    billie.issue_load(1, rng.getrandbits(163))
    billie.issue_load(2, rng.getrandbits(163))
    mul_done = billie.issue_mul(3, 1, 2)
    add_done = billie.issue_add(4, 1, 2)
    sqr_done = billie.issue_sqr(5, 2)
    assert add_done < mul_done
    assert sqr_done < mul_done


def test_structural_hazard_same_unit(billie, rng):
    billie.issue_load(1, rng.getrandbits(163))
    billie.issue_load(2, rng.getrandbits(163))
    first = billie.issue_add(3, 1, 2)
    second = billie.issue_add(4, 1, 2)
    assert second >= first, "one adder: back-to-back adds serialize"


def test_queue_depth_limits_runahead(rng):
    shallow = Billie(BillieConfig(m=163, queue_depth=1))
    shallow.issue_load(1, rng.getrandbits(163))
    shallow.issue_load(2, rng.getrandbits(163))
    for i in range(6):
        shallow.issue_mul(3, 1, 2)
    assert shallow.stats.queue_stall_cycles > 0


def test_load_cycles_scale_with_field():
    assert Billie(BillieConfig(m=571)).config.load_cycles > \
        Billie(BillieConfig(m=163)).config.load_cycles


def test_mul_cycles_scale_with_field_and_digit():
    assert BillieConfig(m=571).mul_cycles > BillieConfig(m=163).mul_cycles
    assert BillieConfig(m=163, digit=8).mul_cycles < \
        BillieConfig(m=163, digit=1).mul_cycles


def test_sync_and_reset(billie, rng):
    billie.issue_load(1, rng.getrandbits(163))
    billie.issue_mul(2, 1, 1)
    done = billie.sync()
    assert done == billie.completion_time()
    billie.reset_time()
    assert billie.now == 0
    assert billie.stats.mul_ops == 0


def test_stats(billie, rng):
    billie.issue_load(1, rng.getrandbits(163))
    billie.issue_mul(2, 1, 1)
    billie.issue_sqr(3, 2)
    billie.issue_add(4, 2, 3)
    billie.issue_store(4)
    assert billie.stats.mul_ops == 1
    assert billie.stats.sqr_ops == 1
    assert billie.stats.add_ops == 1
    assert billie.stats.loads == 1
    assert billie.stats.stores == 1
    assert billie.stats.ram_words == 2 * 6
