"""The FFAU: microcoded CIOS correctness and Eq. 5.2 cycle tracking."""

import pytest

from repro.accel.ffau import FFAU, FFAUConfig
from repro.accel.microcode import (
    MICROCODE_TABLE_SIZE,
    build_addsub_program,
    build_cios_program,
)
from repro.fields.nist import NIST_PRIMES
from repro.mp.montgomery import MontgomeryContext
from repro.mp.words import from_int, to_int


def test_microprograms_fit_the_control_store():
    """Monte's reconfigurability claim: 64-entry microcode table."""
    total = (len(build_cios_program().ops)
             + len(build_addsub_program(False).ops)
             + len(build_addsub_program(True).ops))
    assert total <= MICROCODE_TABLE_SIZE


def test_microprogram_overflow_guard():
    from repro.accel.microcode import MicroOp, MicroProgram

    prog = MicroProgram()
    with pytest.raises(OverflowError):
        for _ in range(MICROCODE_TABLE_SIZE + 1):
            prog.add(MicroOp())


@pytest.mark.parametrize("bits", [192, 256, 384, 521])
def test_montmul_functional(bits, rng):
    p = NIST_PRIMES[bits]
    ctx = MontgomeryContext(p)
    ffau = FFAU()
    for _ in range(5):
        a, b = rng.randrange(p), rng.randrange(p)
        am, bm = ctx.to_mont(a), ctx.to_mont(b)
        result, cycles = ffau.montmul(am, bm, ctx.n_words, ctx.n0p)
        assert ctx.from_mont(result) == (a * b) % p
        assert cycles > 0


@pytest.mark.parametrize("k", [3, 6, 8, 12, 17, 24])
def test_cycles_track_eq52(k):
    """Measured microprogram cycles stay on the paper's Eq. 5.2 curve."""
    ffau = FFAU()
    measured = ffau.montmul_cycles(k)
    model = ffau.eq52_cycles(k)
    assert abs(measured - model) / model < 0.12, (measured, model)


def test_eq52_exact_at_reference_width():
    """At w = 32, k = 6 the microprogram lands exactly on Eq. 5.2."""
    ffau = FFAU()
    assert ffau.montmul_cycles(6) == ffau.eq52_cycles(6) == 151


def test_addsub_is_linear():
    ffau = FFAU()
    costs = [ffau.addsub_cycles(k) for k in (6, 12, 18)]
    deltas = [b - a for a, b in zip(costs, costs[1:])]
    assert deltas[0] == deltas[1], "O(k) with a constant slope"


def test_mod_add_sub_functional(rng):
    p = NIST_PRIMES[192]
    ctx = MontgomeryContext(p)
    ffau = FFAU()
    a, b = rng.randrange(p), rng.randrange(p)
    aw, bw = from_int(a, ctx.k), from_int(b, ctx.k)
    total, _ = ffau.mod_add(aw, bw, ctx.n_words)
    assert to_int(total) == (a + b) % p
    diff, _ = ffau.mod_sub(aw, bw, ctx.n_words)
    assert to_int(diff) == (a - b) % p


@pytest.mark.parametrize("width", [8, 16, 32, 64])
def test_width_sweep(width, rng):
    """The Section 7.9 design-space axis: any datapath width works."""
    p = NIST_PRIMES[192]
    ctx = MontgomeryContext(p, width)
    ffau = FFAU(FFAUConfig(width=width))
    a, b = rng.randrange(p), rng.randrange(p)
    result, cycles = ffau.montmul(ctx.to_mont(a), ctx.to_mont(b),
                                  ctx.n_words, ctx.n0p)
    assert ctx.from_mont(result) == (a * b) % p
    assert cycles == ffau.montmul_cycles(ctx.k)


def test_narrower_datapath_needs_more_cycles():
    times = {}
    for width in (8, 16, 32, 64):
        ffau = FFAU(FFAUConfig(width=width))
        times[width] = ffau.montmul_cycles(-(-192 // width))
    assert times[8] > times[16] > times[32] > times[64]
    # roughly 4x cycles per halving (k doubles, cost ~2k^2)
    assert 2.5 < times[8] / times[16] < 4.5


def test_stats_accumulate():
    ffau = FFAU()
    ffau.run_microprogram(ffau._cios, 6)
    assert ffau.stats.busy_cycles > 0
    assert ffau.stats.core_ops > 2 * 36, "two k^2 inner loops"
