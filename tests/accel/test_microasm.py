"""The textual microassembler vs the constructed microprograms."""

from dataclasses import replace

import pytest

from repro.accel.ffau import FFAU
from repro.accel.microasm import (
    CIOS_SOURCE,
    MicroAssemblyError,
    assemble_microcode,
)
from repro.accel.microcode import CoreOp, build_cios_program


def _strip_labels(ops):
    return [replace(op, label="") for op in ops]


def test_cios_source_matches_constructed_program():
    """The shipped source assembles to the exact constructed program."""
    assembled = assemble_microcode(CIOS_SOURCE)
    constructed = build_cios_program()
    assert len(assembled.ops) == len(constructed.ops)
    for i, (got, want) in enumerate(zip(_strip_labels(assembled.ops),
                                        _strip_labels(constructed.ops))):
        assert got == want, f"microinstruction {i} differs"


def test_assembled_cios_runs_at_the_same_cycle_count():
    ffau = FFAU()
    assembled = assemble_microcode(CIOS_SOURCE)
    for k in (6, 12, 17):
        assert ffau.run_microprogram(assembled, k) == \
            FFAU().run_microprogram(build_cios_program(), k)


def test_labels_resolve_loops():
    prog = assemble_microcode("""
    top: MUL_ADD_C a=ab b=ab c=t dst=t loop j -> top
         NOP halt
    """)
    assert prog.ops[0].loop == "j"
    assert prog.ops[0].loop_target == 0
    assert prog.ops[1].halt


def test_errors():
    with pytest.raises(MicroAssemblyError):
        assemble_microcode("FROB a=ab")
    with pytest.raises(MicroAssemblyError):
        assemble_microcode("MUL a=banana")
    with pytest.raises(MicroAssemblyError):
        assemble_microcode("MUL const=banana")
    with pytest.raises(MicroAssemblyError):
        assemble_microcode("NOP loop j top")  # missing arrow
    with pytest.raises(MicroAssemblyError):
        assemble_microcode("NOP loop j -> nowhere\n")
    with pytest.raises(MicroAssemblyError):
        assemble_microcode("a: NOP\na: NOP")
    with pytest.raises(MicroAssemblyError):
        assemble_microcode("NOP frobnicate")


def test_comments_and_blanks():
    prog = assemble_microcode("""
    # a comment

    NOP halt   # trailing
    """)
    assert len(prog.ops) == 1
    assert prog.ops[0].op is CoreOp.NOP


def test_table_overflow_guard():
    source = "\n".join(["NOP"] * 65)
    with pytest.raises(OverflowError):
        assemble_microcode(source)
