"""End-to-end: assembled COP2 programs drive the accelerators via Pete."""

import pytest

from repro.accel.billie import Billie, BillieConfig
from repro.accel.cop2_adapter import BillieCop2Adapter, MonteCop2Adapter
from repro.accel.monte import Monte
from repro.fields.binary import BinaryField
from repro.fields.nist import NIST_PRIMES
from repro.mp.words import from_int, to_int
from repro.pete import Pete, assemble
from repro.pete.memory import RAM_BASE

A_ADDR = RAM_BASE + 0x400
B_ADDR = RAM_BASE + 0x500
DST_ADDR = RAM_BASE + 0x600


def _monte_cpu():
    monte = Monte(NIST_PRIMES[192])
    cpu = Pete(coprocessor=MonteCop2Adapter(monte))
    return cpu, monte


def test_monte_multiply_via_assembly(rng):
    """The Section 5.4.1 instruction sequence, executed for real."""
    cpu, monte = _monte_cpu()
    p = NIST_PRIMES[192]
    a, b = rng.randrange(p), rng.randrange(p)
    cpu.mem.write_ram_words(A_ADDR, monte.ctx.to_mont(a))
    cpu.mem.write_ram_words(B_ADDR, monte.ctx.to_mont(b))
    program = assemble(f"""
    main:
        li $t0, 6           # k words
        ctc2 $t0, 0
        li $a1, {A_ADDR}
        li $a2, {B_ADDR}
        li $a0, {DST_ADDR}
        cop2lda $a1
        cop2ldb $a2
        cop2mul
        cop2st $a0
        cop2sync
        halt
    """)
    cpu.load(program)
    stats = cpu.run(0)
    result = cpu.mem.read_ram_words(DST_ADDR, 6)
    assert monte.ctx.from_mont(result) == (a * b) % p
    # Pete stalled on the SYNC while the FFAU finished
    assert stats.stall_cycles >= monte.ffau.montmul_cycles(6) - 12


def test_monte_add_sub_via_assembly(rng):
    cpu, monte = _monte_cpu()
    p = NIST_PRIMES[192]
    a, b = rng.randrange(p), rng.randrange(p)
    cpu.mem.write_ram_words(A_ADDR, from_int(a, 6))
    cpu.mem.write_ram_words(B_ADDR, from_int(b, 6))
    program = assemble(f"""
    main:
        li $a1, {A_ADDR}
        li $a2, {B_ADDR}
        li $a0, {DST_ADDR}
        cop2lda $a1
        cop2ldb $a2
        cop2add
        cop2st $a0
        cop2sync
        halt
    """)
    cpu.load(program)
    cpu.run(0)
    assert to_int(cpu.mem.read_ram_words(DST_ADDR, 6)) == (a + b) % p


def test_monte_pipelined_sequence(rng):
    """Back-to-back operations through the queue, like the paper's
    walk-through: loads for op 2 run ahead of op 1's store."""
    cpu, monte = _monte_cpu()
    p = NIST_PRIMES[192]
    a, b = rng.randrange(p), rng.randrange(p)
    cpu.mem.write_ram_words(A_ADDR, monte.ctx.to_mont(a))
    cpu.mem.write_ram_words(B_ADDR, monte.ctx.to_mont(b))
    program = assemble(f"""
    main:
        li $a1, {A_ADDR}
        li $a2, {B_ADDR}
        li $a0, {DST_ADDR}
        li $a3, {DST_ADDR + 0x40}
        cop2lda $a1
        cop2ldb $a2
        cop2mul
        cop2st $a0
        cop2lda $a1
        cop2ldb $a2
        cop2mul
        cop2st $a3
        cop2sync
        halt
    """)
    cpu.load(program)
    cpu.run(0)
    expected = (a * b) % p
    assert monte.ctx.from_mont(cpu.mem.read_ram_words(DST_ADDR, 6)) \
        == expected
    assert monte.ctx.from_mont(
        cpu.mem.read_ram_words(DST_ADDR + 0x40, 6)) == expected
    assert monte.stats.ffau_ops == 2


def test_billie_field_ops_via_assembly(rng):
    billie = Billie(BillieConfig(m=163))
    cpu = Pete(coprocessor=BillieCop2Adapter(billie))
    field = BinaryField.nist(163)
    a, b = rng.getrandbits(163), rng.getrandbits(163)
    cpu.mem.write_ram_words(A_ADDR, from_int(a, 6))
    cpu.mem.write_ram_words(B_ADDR, from_int(b, 6))
    program = assemble(f"""
    main:
        li $a1, {A_ADDR}
        li $a2, {B_ADDR}
        li $a0, {DST_ADDR}
        li $a3, {DST_ADDR + 0x40}
        cop2ld $a1, 1       # BR1 <- a
        cop2ld $a2, 2       # BR2 <- b
        cop2mul 3, 1, 2     # BR3 = a * b
        cop2sqr 4, 1        # BR4 = a^2
        cop2add 5, 3, 4     # BR5 = BR3 + BR4
        cop2st $a0, 3
        cop2st $a3, 5
        cop2sync
        halt
    """)
    cpu.load(program)
    cpu.run(0)
    product = to_int(cpu.mem.read_ram_words(DST_ADDR, 6))
    mixed = to_int(cpu.mem.read_ram_words(DST_ADDR + 0x40, 6))
    assert product == field.mul(a, b)
    assert mixed == field.add(field.mul(a, b), field.sqr(a))


def test_sync_stall_accounted(rng):
    """COP2SYNC must charge Pete the wait for the digit-serial multiply."""
    billie = Billie(BillieConfig(m=163))
    cpu = Pete(coprocessor=BillieCop2Adapter(billie))
    cpu.mem.write_ram_words(A_ADDR, from_int(rng.getrandbits(163), 6))
    program = assemble(f"""
    main:
        li $a1, {A_ADDR}
        cop2ld $a1, 1
        cop2mul 2, 1, 1
        cop2sync
        halt
    """)
    cpu.load(program)
    stats = cpu.run(0)
    assert stats.stall_cycles >= billie.config.mul_cycles - 5


def test_unknown_cop2_raises():
    cpu = Pete()  # no coprocessor attached
    program = assemble("main:\n cop2sync\n halt")
    cpu.load(program)
    with pytest.raises(RuntimeError):
        cpu.run(0)
