"""Monte: queue/DMA timing, double buffering, forwarding, correctness."""

import pytest

from repro.accel.monte import Monte, MonteConfig
from repro.fields.nist import NIST_PRIMES


@pytest.fixture
def monte():
    return Monte(NIST_PRIMES[192])


def test_functional_mul(monte, rng):
    p = monte.ctx.n
    for _ in range(5):
        a, b = rng.randrange(p), rng.randrange(p)
        monte.load_a(monte.ctx.to_mont(a))
        monte.load_b(monte.ctx.to_mont(b))
        monte.mul()
        result, _ = monte.store()
        assert monte.ctx.from_mont(result) == (a * b) % p


def test_functional_add_sub(monte, rng):
    p = monte.ctx.n
    a, b = rng.randrange(p), rng.randrange(p)
    from repro.mp.words import from_int, to_int

    monte.load_a(from_int(a, monte.k))
    monte.load_b(from_int(b, monte.k))
    monte.add()
    total, _ = monte.store()
    assert to_int(total) == (a + b) % p
    monte.op_a, monte.op_b = from_int(a, monte.k), from_int(b, monte.k)
    monte.sub()
    diff, _ = monte.store()
    assert to_int(diff) == (a - b) % p


def test_execute_requires_operands():
    fresh = Monte(NIST_PRIMES[192])
    with pytest.raises(RuntimeError):
        fresh.mul()
    with pytest.raises(RuntimeError):
        fresh.store()


def test_double_buffering_hides_dma(monte):
    """Back-to-back multiplies retire at FFAU latency: the DMA is fully
    hidden behind computation (the Section 5.4.1 walk-through)."""
    dummy = [0] * monte.k
    completions = []
    for _ in range(6):
        monte.load_a(dummy)
        monte.load_b(dummy)
        monte.op_a = [1] + [0] * (monte.k - 1)
        monte.op_b = [1] + [0] * (monte.k - 1)
        completions.append(monte.mul())
        monte.store(addr=0x40)
    deltas = [b - a for a, b in zip(completions, completions[1:])]
    ffau_cycles = monte.ffau.montmul_cycles(monte.k)
    assert all(d == ffau_cycles for d in deltas[1:])


def test_ablation_serializes_dma():
    """Without double buffering, each op pays its DMA time (Section 7.7)."""
    on = Monte(NIST_PRIMES[192])
    off = Monte(NIST_PRIMES[192], MonteConfig(double_buffering=False))
    t_on = on.field_op_pattern_cycles("mul")
    t_off = off.field_op_pattern_cycles("mul")
    assert t_off > t_on
    # the gap is the serialized load/store traffic, ~3 transfers
    assert t_off - t_on >= 2 * (on.k + on.config.dma_setup_cycles) * 0.8


def test_forwarding_saves_transfers():
    monte = Monte(NIST_PRIMES[192])
    with_fw = monte.field_op_pattern_cycles("mul", reuse_fraction=0.5)
    probe = Monte(NIST_PRIMES[192])
    without_fw = probe.field_op_pattern_cycles("mul", reuse_fraction=0.0)
    assert with_fw <= without_fw


def test_forwarded_load_counts(monte):
    dummy = [0] * monte.k
    monte.load_a(dummy)
    monte.load_b(dummy)
    monte.mul()
    monte.store(addr=0x80)
    monte.load_a(dummy, addr=0x80)  # matches the pending store
    assert monte.stats.forwarded_loads == 1


def test_queue_backpressure():
    monte = Monte(NIST_PRIMES[192], MonteConfig(queue_depth=2))
    dummy = [0] * monte.k
    for _ in range(8):
        monte.load_a(dummy)
        monte.load_b(dummy)
        monte.op_a = [1] + [0] * (monte.k - 1)
        monte.op_b = [1] + [0] * (monte.k - 1)
        monte.mul()
        monte.store()
    assert monte.stats.queue_stall_cycles > 0, \
        "a 2-deep queue cannot absorb the run-ahead"


def test_sync_drains_everything(monte):
    dummy = [0] * monte.k
    monte.load_a(dummy)
    monte.load_b(dummy)
    monte.op_a = [1] + [0] * (monte.k - 1)
    monte.op_b = [1] + [0] * (monte.k - 1)
    done = monte.mul()
    monte.store()
    sync_time = monte.sync()
    assert sync_time >= done
    assert monte.pending_store is None


def test_add_cheaper_than_mul(monte):
    assert monte.field_op_pattern_cycles("add") < \
        monte.field_op_pattern_cycles("mul")


def test_stats_populated(monte):
    dummy = [0] * monte.k
    monte.load_a(dummy)
    monte.load_b(dummy)
    monte.op_a = [1] + [0] * (monte.k - 1)
    monte.op_b = [1] + [0] * (monte.k - 1)
    monte.mul()
    monte.store()
    monte.sync()
    assert monte.stats.dma_words >= 3 * monte.k
    assert monte.stats.ffau_ops == 1
    assert monte.stats.ffau_busy_cycles > 100
