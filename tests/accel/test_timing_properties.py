"""Timing-model invariants for the coprocessors, under hypothesis.

The event-timing machines must behave like hardware: time never runs
backwards, adding work never makes a schedule finish earlier, disabling
an optimization never helps, and functional results are independent of
the timing configuration.
"""

from hypothesis import given, settings, strategies as st

from repro.accel.billie import Billie, BillieConfig
from repro.accel.monte import Monte, MonteConfig
from repro.fields.binary import BinaryField
from repro.fields.nist import NIST_PRIMES

_OPS = st.lists(st.sampled_from(["mul", "add", "sub"]),
                min_size=1, max_size=12)


def _drive_monte(monte: Monte, ops: list[str]) -> int:
    dummy = [0] * monte.k
    one = [1] + [0] * (monte.k - 1)
    for op in ops:
        monte.load_a(dummy)
        monte.load_b(dummy)
        monte.op_a = list(one)
        monte.op_b = list(one)
        getattr(monte, op)()
        monte.store(addr=0x40)
    return monte.sync()


@settings(max_examples=40, deadline=None)
@given(_OPS)
def test_monte_time_monotone_in_work(ops):
    """Appending an op can only move completion later."""
    base = _drive_monte(Monte(NIST_PRIMES[192]), ops)
    extended = _drive_monte(Monte(NIST_PRIMES[192]), ops + ["mul"])
    assert extended > base


@settings(max_examples=40, deadline=None)
@given(_OPS)
def test_monte_double_buffering_never_hurts(ops):
    on = _drive_monte(Monte(NIST_PRIMES[192]), ops)
    off = _drive_monte(
        Monte(NIST_PRIMES[192], MonteConfig(double_buffering=False)), ops)
    assert off >= on


@settings(max_examples=40, deadline=None)
@given(_OPS)
def test_monte_deeper_queue_never_hurts(ops):
    deep = _drive_monte(
        Monte(NIST_PRIMES[192], MonteConfig(queue_depth=8)), ops)
    shallow = _drive_monte(
        Monte(NIST_PRIMES[192], MonteConfig(queue_depth=1)), ops)
    assert shallow >= deep


@settings(max_examples=40, deadline=None)
@given(_OPS)
def test_monte_ffau_never_idle_negative(ops):
    monte = Monte(NIST_PRIMES[192])
    total = _drive_monte(monte, ops)
    assert 0 < monte.stats.ffau_busy_cycles <= total


_BILLIE_OPS = st.lists(
    st.tuples(st.sampled_from(["mul", "sqr", "add"]),
              st.integers(min_value=1, max_value=7),
              st.integers(min_value=1, max_value=7),
              st.integers(min_value=8, max_value=15)),
    min_size=1, max_size=15)


def _drive_billie(billie: Billie, ops) -> int:
    for i in range(1, 8):
        billie.issue_load(i, i * 0x1234567 + 1)
    for op, src1, src2, dst in ops:
        if op == "mul":
            billie.issue_mul(dst, src1, src2)
        elif op == "sqr":
            billie.issue_sqr(dst, src1)
        else:
            billie.issue_add(dst, src1, src2)
    return billie.sync()


@settings(max_examples=40, deadline=None)
@given(_BILLIE_OPS)
def test_billie_time_monotone(ops):
    base = _drive_billie(Billie(), ops)
    extended = _drive_billie(Billie(), ops + [("mul", 1, 2, 8)])
    assert extended > base


@settings(max_examples=40, deadline=None)
@given(_BILLIE_OPS)
def test_billie_results_independent_of_digit_size(ops):
    """The digit width changes timing, never values."""
    f = BinaryField.nist(163)
    fast = Billie(BillieConfig(m=163, digit=8))
    slow = Billie(BillieConfig(m=163, digit=1))
    t_fast = _drive_billie(fast, ops)
    t_slow = _drive_billie(slow, ops)
    assert fast.regs == slow.regs
    if any(op == "mul" for op, *_ in ops):
        assert t_slow > t_fast


@settings(max_examples=40, deadline=None)
@given(_BILLIE_OPS)
def test_billie_results_match_field_semantics(ops):
    """Replay the op list against the plain field: same registers."""
    f = BinaryField.nist(163)
    billie = Billie()
    _drive_billie(billie, ops)
    regs = [0] * 16
    for i in range(1, 8):
        regs[i] = i * 0x1234567 + 1
    for op, src1, src2, dst in ops:
        if op == "mul":
            regs[dst] = f.mul(regs[src1], regs[src2])
        elif op == "sqr":
            regs[dst] = f.sqr(regs[src1])
        else:
            regs[dst] = regs[src1] ^ regs[src2]
    assert billie.regs == regs
