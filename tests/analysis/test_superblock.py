"""Static superblock map and the static >= dynamic certification."""

from repro.analysis.cfg import AsmProgram
from repro.analysis.superblock import (
    certify,
    coverage,
    run_lengths,
    static_blocks,
)
from repro.pete.fastpath import MIN_BLOCK_LEN


def _program(src, name="t"):
    return AsmProgram.from_source(src, name=name)


STRAIGHT = """
    addu $t0, $a0, $a1
    addiu $t1, $t0, 4
    sll $t2, $t1, 2
    sw $t2, 0($a0)
    jr $ra
    nop
"""


def test_run_lengths_end_at_uncompilable():
    program = _program(STRAIGHT)
    runs = run_lengths(program)
    # four simple ops, then jr (not compilable) ends the run
    assert runs[0] == 4
    assert runs[3] == 1
    assert runs[4] == 0  # jr


def test_static_blocks_respect_min_length():
    program = _program(STRAIGHT)
    blocks = static_blocks(program)
    assert (blocks[0].start, blocks[0].length) == (0, 4)
    assert all(b.length >= MIN_BLOCK_LEN for b in blocks)
    assert 0.0 < coverage(program) < 1.0


def test_branch_splits_runs():
    runs = run_lengths(_program("""
        addu $t0, $a0, $a1
        beq $t0, $zero, 0x10
        nop
        addu $t2, $t0, $t0
        jr $ra
        nop
    """))
    assert runs[0] == 1   # run ends at the branch
    assert runs[1] == 0   # the branch itself


def _fake_block(n):
    def fn(cpu):  # pragma: no cover - never executed
        raise AssertionError
    fn.__fastpath_len__ = n
    return fn


def test_certify_accepts_consistent_dynamic_map():
    program = _program(STRAIGHT)
    assert certify(program, {program.base + 0: _fake_block(4)}) == []
    # a shorter dynamic block inside the static region is fine too
    assert certify(program, {program.base + 4: _fake_block(3)}) == []


def test_certify_rejects_dynamic_block_exceeding_static_map():
    program = _program(STRAIGHT)
    problems = certify(program, {program.base + 0: _fake_block(5)})
    assert problems and "5" in problems[0]


def test_certify_rejects_unexplained_decline():
    program = _program(STRAIGHT)
    # the fast path declined (None) a pc the static map rates >= MIN
    problems = certify(program, {program.base + 0: None})
    assert problems
    # declining where the static map also rates the run too short is ok
    assert certify(program, {program.base + 16: None}) == []
