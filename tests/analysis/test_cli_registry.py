"""The registry covers every shipped program and the CLI gates on it."""

import json

from repro.analysis.__main__ import main
from repro.analysis import registry


def test_every_registered_program_is_clean_after_waivers():
    for report in registry.all_reports():
        assert report.clean, (
            f"{report.name}: unwaived findings "
            f"{[f.check for f in report.findings]}")


def test_intentional_findings_are_waived_not_absent():
    """The waivers must cover real findings, not be dead weight."""
    by_name = {r.name: r for r in registry.all_reports()}
    # the hand-scheduled product-scanning loops use the delay-slot idiom
    assert any(f.check == "delay-slot-clobber"
               for f, _ in by_name["ps_mul_ext"].waived)
    # the paper's baseline reduction is not constant-time
    assert any(f.check == "secret-dependent-branch"
               for f, _ in by_name["red_p192"].waived)
    # table-based binary multiplication indexes by secret nibbles
    assert any(f.check == "secret-dependent-address"
               for f, _ in by_name["comb_mul"].waived)
    # double-and-add leaks; the ladder does not (no waivers, no findings)
    assert any(f.check == "secret-dependent-branch"
               for f, _ in by_name["scalar_daa"].waived)
    assert by_name["scalar_ladder"].waived == []
    assert by_name["scalar_ladder"].clean


def test_every_waiver_is_exercised():
    """A waiver that never fires is stale documentation.

    A waiver may fire on either layer: the per-program lint pass, or
    the whole-program verifier (the composed ``fmul_*`` kernels only
    taint interprocedurally, so their waivers fire there).
    """
    from repro.analysis.verify import verify_kernel

    for spec in registry.KERNELS:
        report = registry.report_kernel(spec)
        fired = {f.check for f, _ in report.waived}
        if any(w.check not in fired for w in spec.waivers):
            interp_report = verify_kernel(spec, observe=False)
            fired |= {f.check for f, _ in interp_report.waived}
        for waiver in spec.waivers:
            assert waiver.check in fired, (
                f"{spec.name}: waiver for {waiver.check!r} never fires")


def test_registry_covers_microprograms():
    names = {spec.name for spec in registry.MICROPROGRAMS}
    assert names == {"cios", "mod_add", "mod_sub"}


def test_cli_all_exits_zero(capsys):
    assert main(["--all"]) == 0
    out = capsys.readouterr().out
    assert "scalar_ladder" in out and "cios" in out


def test_cli_json_output(capsys):
    assert main(["--all", "--json"]) == 0
    reports = json.loads(capsys.readouterr().out)
    by_name = {r["name"]: r for r in reports}
    assert by_name["scalar_daa"]["clean"]
    waived = by_name["scalar_daa"]["waived"]
    assert waived and waived[0]["check"] == "secret-dependent-branch"
    assert "reason" in waived[0]


def test_cli_single_program(capsys):
    assert main(["--program", "scalar_ladder"]) == 0
    assert "scalar_ladder" in capsys.readouterr().out


def test_cli_nonzero_on_findings(capsys, monkeypatch):
    """Drop a waiver: the CLI must fail."""
    spec = registry.kernel_spec("scalar_daa")
    stripped = registry.KernelSpec(spec.name, spec.build, spec.abi,
                                   spec.taint, waivers=())
    monkeypatch.setattr(registry, "KERNELS", (stripped,))
    monkeypatch.setattr(registry, "MICROPROGRAMS", ())
    assert main(["--all"]) == 1
    assert "secret-dependent-branch" in capsys.readouterr().out


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "mp_add" in out and "mod_sub" in out
