"""Secret-taint analysis: the static constant-time classification.

The acceptance property of the whole subsystem: the Montgomery ladder
kernel is *proved* constant-time while double-and-add is flagged on its
per-bit branch -- the static mirror of the dynamic asymmetry
``repro.model.side_channel`` measures on Billie.
"""

from repro.analysis.cfg import AsmProgram, build_cfg
from repro.analysis.taint import TaintSpec, taint_findings
from repro.kernels import scalar_kernels

SCALAR_SECRET = TaintSpec(secret_regs=("a1",))


def _findings(src, spec, name="t"):
    cfg = build_cfg(AsmProgram.from_source(src, name=name))
    return taint_findings(cfg, spec)


def test_double_and_add_branch_flagged():
    found = _findings(scalar_kernels.gen_scalar_daa(), SCALAR_SECRET,
                      name="scalar_daa")
    checks = {f.check for f in found}
    assert checks == {"secret-dependent-branch"}
    [f] = found
    assert "beq" in f.message and "$t3" in f.message


def test_montgomery_ladder_is_constant_time():
    found = _findings(scalar_kernels.gen_scalar_ladder(), SCALAR_SECRET,
                      name="scalar_ladder")
    assert found == []


def test_public_loop_counter_not_flagged():
    found = _findings("""
        li $t0, 4
    loop:
        addiu $t0, $t0, -1
        bne $t0, $zero, loop
        nop
        jr $ra
        nop
    """, SCALAR_SECRET)
    assert found == []


def test_secret_dependent_load_address_flagged():
    found = _findings("""
        andi $t0, $a1, 0xff
        sll $t0, $t0, 2
        addu $t0, $a3, $t0
        lw $v0, 0($t0)
        jr $ra
        nop
    """, SCALAR_SECRET)
    assert [f.check for f in found] == ["secret-dependent-address"]
    assert "lw" in found[0].message


def test_secret_dependent_store_address_flagged():
    found = _findings("""
        addu $t0, $a0, $a1
        sw $zero, 0($t0)
        jr $ra
        nop
    """, SCALAR_SECRET)
    assert [f.check for f in found] == ["secret-dependent-address"]


def test_memory_taint_propagates_through_store_load():
    # spill the secret, reload it into a different register, branch
    found = _findings("""
        sw $a1, 0($a0)
        lw $t0, 0($a0)
        beq $t0, $zero, 0x14
        nop
        jr $ra
        nop
    """, SCALAR_SECRET)
    assert "secret-dependent-branch" in {f.check for f in found}


def test_untainted_computation_clears_register():
    # overwriting a tainted register with public data launders it
    found = _findings("""
        move $t0, $a1
        li $t0, 5
        beq $t0, $zero, 0x14
        nop
        jr $ra
        nop
    """, SCALAR_SECRET)
    assert found == []


def test_secret_memory_spec_taints_loaded_operands():
    found = _findings("""
        lw $t0, 0($a1)
        beq $t0, $zero, 0x14
        nop
        jr $ra
        nop
    """, TaintSpec(secret_memory=True))
    assert [f.check for f in found] == ["secret-dependent-branch"]
