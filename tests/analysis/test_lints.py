"""Each lint fires on a crafted defect and stays quiet on clean code."""

from repro.analysis.cfg import AsmProgram
from repro.analysis.lints import (
    KERNEL_ABI,
    STANDARD_ABI,
    Waiver,
    analyze_program,
    apply_waivers,
)


def _analyze(src, abi=KERNEL_ABI, **kw):
    return analyze_program(AsmProgram.from_source(src, name="t"), abi=abi,
                           **kw)


def _checks(result):
    return {f.check for f in result.findings}


def test_clean_leaf_function_has_no_findings():
    result = _analyze("""
        lw $t0, 0($a0)
        lw $t1, 0($a1)
        addu $v0, $t0, $t1
        jr $ra
        .ds nop
    """)
    assert result.clean


def test_delay_slot_clobber_detected():
    result = _analyze("""
    loop:
        lw $t1, 0($t0)
        bne $t0, $a1, loop
        .ds addiu $t0, $t0, 4
        jr $ra
        nop
    """, waivers=())
    # the classic idiom: flagged, message names branch and register
    [f] = [f for f in result.findings if f.check == "delay-slot-clobber"]
    assert "$t0" in f.message
    assert "bne" in f.message


def test_delay_slot_clobber_waivable():
    waiver = Waiver("delay-slot-clobber", "intentional schedule")
    result = _analyze("""
    loop:
        lw $t1, 0($t0)
        bne $t0, $a1, loop
        .ds addiu $t0, $t0, 4
        jr $ra
        nop
    """, waivers=(waiver,))
    assert "delay-slot-clobber" not in _checks(result)
    assert any(w is waiver for _, w in result.waived)


def test_slot_not_flagged_when_branch_regs_untouched():
    result = _analyze("""
    loop:
        bne $t0, $a1, loop
        .ds addiu $t2, $t2, 4
        jr $ra
        nop
    """)
    assert "delay-slot-clobber" not in _checks(result)


def test_control_in_delay_slot_detected():
    result = _analyze("""
        beq $a0, $zero, out
        .ds jr $ra
    out:
        jr $ra
        nop
    """)
    assert "control-in-delay-slot" in _checks(result)


def test_missing_delay_slot_detected():
    # the assembler always places a slot, so build from raw words
    from repro.pete.isa import PeteISA

    jr_ra = PeteISA.encode_r("jr", rs=31)
    prog = AsmProgram.from_words([jr_ra], name="t")
    result = analyze_program(prog)
    assert "missing-delay-slot" in _checks(result)


def test_branch_out_of_range_detected():
    result = _analyze("""
        beq $a0, $zero, 0x4000
        nop
        jr $ra
        nop
    """)
    assert "branch-out-of-range" in _checks(result)


def test_uninitialized_read_detected():
    result = _analyze("""
        addu $v0, $t0, $t1
        jr $ra
        nop
    """)
    found = [f for f in result.findings if f.check == "uninitialized-read"]
    assert found and "$t0" in found[0].message


def test_argument_registers_are_entry_defined():
    result = _analyze("""
        addu $v0, $a0, $a1
        jr $ra
        nop
    """)
    assert "uninitialized-read" not in _checks(result)


def test_dead_store_detected():
    result = _analyze("""
        li $t0, 7
        li $t0, 8
        sw $t0, 0($a0)
        jr $ra
        nop
    """)
    found = [f for f in result.findings if f.check == "dead-store"]
    assert len(found) == 1 and found[0].index == 0


def test_result_registers_never_dead():
    result = _analyze("""
        li $v0, 1
        li $v1, 2
        jr $ra
        nop
    """)
    assert "dead-store" not in _checks(result)


def test_unreachable_code_detected():
    result = _analyze("""
        jr $ra
        nop
        addu $t0, $t1, $t2
    """)
    found = [f for f in result.findings if f.check == "unreachable-code"]
    assert found and found[0].severity == "warning"


def test_callee_saved_clobber_under_standard_abi():
    src = """
        move $s0, $a0
        jr $ra
        nop
    """
    assert "callee-saved-clobber" in _checks(_analyze(src, abi=STANDARD_ABI))
    # the kernel ABI documents $s* as scratch
    assert "callee-saved-clobber" not in _checks(_analyze(src))


def test_callee_saved_ok_with_save_restore():
    result = _analyze("""
        addiu $sp, $sp, -8
        sw $s0, 0($sp)
        move $s0, $a0
        addu $v0, $s0, $a1
        lw $s0, 0($sp)
        jr $ra
        .ds addiu $sp, $sp, 8
    """, abi=STANDARD_ABI)
    assert "callee-saved-clobber" not in _checks(result)


def test_accumulator_state_entry_defined():
    # mtlo/mthi/sha/sha accumulator clearing must not trip the
    # uninitialized-read check (HI/LO/OvFlo are hardware state)
    result = _analyze("""
        mtlo $zero
        mthi $zero
        sha
        sha
        jr $ra
        nop
    """)
    assert "uninitialized-read" not in _checks(result)


def test_apply_waivers_splits_by_check():
    from repro.analysis.lints import Finding

    findings = [Finding("dead-store", 1, "a"), Finding("other", 2, "b")]
    active, waived = apply_waivers(findings, (Waiver("dead-store", "ok"),))
    assert [f.check for f in active] == ["other"]
    assert [f.check for f, _ in waived] == ["dead-store"]
