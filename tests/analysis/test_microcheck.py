"""Microcode checker: shipped programs verify; crafted defects fire."""

import pytest

from repro.accel.microcode import (
    MICROCODE_TABLE_SIZE,
    BSrc,
    CoreOp,
    IdxCtl,
    MicroOp,
    MicroProgram,
    build_addsub_program,
    build_cios_program,
)
from repro.analysis.microcheck import check_all, check_microprogram


def _checks(findings):
    return {f.check for f in findings}


def _halting(**kw):
    """A single halting op, defaults overridable."""
    return MicroOp(op=CoreOp.NOP, wait_drain=True, halt=True, **kw)


@pytest.mark.parametrize("build", [
    build_cios_program,
    lambda: build_addsub_program(subtract=False),
    lambda: build_addsub_program(subtract=True),
])
def test_shipped_microprograms_verify_clean(build):
    assert check_microprogram(build(), name="shipped") == []


def test_capacity_check():
    prog = MicroProgram()
    prog.ops = [MicroOp() for _ in range(MICROCODE_TABLE_SIZE + 1)]
    prog.ops[-1] = _halting()
    findings = check_microprogram(prog, name="big")
    assert "micro-capacity" in _checks(findings)


def test_entry_out_of_range():
    prog = MicroProgram()
    prog.add(_halting())
    prog.entries["bogus"] = 9
    assert "micro-entry" in _checks(check_microprogram(prog))


def test_loop_target_out_of_range():
    prog = MicroProgram()
    prog.add(MicroOp(loop_set="j", loop_set_const=0))
    prog.add(MicroOp(loop="j", loop_target=40))
    prog.add(_halting())
    assert "micro-loop-target" in _checks(check_microprogram(prog))


def test_unknown_loop_counter():
    prog = MicroProgram()
    prog.add(MicroOp(loop_set="q", loop_set_const=0))
    prog.add(_halting())
    assert "micro-loop-var" in _checks(check_microprogram(prog))


def test_loop_without_init_detected():
    prog = MicroProgram()
    prog.add(MicroOp(op=CoreOp.NOP))
    prog.add(MicroOp(loop="j", loop_target=0))   # j never loop_set
    prog.add(_halting())
    findings = check_microprogram(prog, name="bad")
    assert "micro-loop-init" in _checks(findings)


def test_loop_init_on_every_path_required():
    # one entry initializes j, a second entry skips the init
    prog = MicroProgram()
    prog.entry("good")
    prog.add(MicroOp(loop_set="j", loop_set_const=0))
    prog.entry("bad")
    body = prog.add(MicroOp(op=CoreOp.ADD, loop="j"))
    prog.ops[body] = MicroOp(op=CoreOp.ADD, loop="j", loop_target=body)
    prog.add(_halting())
    assert "micro-loop-init" in _checks(check_microprogram(prog))


def test_loop_set_on_same_op_counts_as_init():
    prog = MicroProgram()
    op = prog.add(MicroOp(loop_set="i", loop_set_const=0, loop="i"))
    prog.ops[op] = MicroOp(loop_set="i", loop_set_const=0, loop="i",
                           loop_target=op)
    prog.add(_halting())
    assert "micro-loop-init" not in _checks(check_microprogram(prog))


def test_const_sel_out_of_range():
    prog = MicroProgram()
    prog.add(MicroOp(idx_a=IdxCtl.LOAD, const_sel=8))
    prog.add(_halting())
    assert "micro-const-range" in _checks(check_microprogram(prog))


def test_const_bus_single_consumer_rule():
    prog = MicroProgram()
    prog.add(MicroOp(idx_a=IdxCtl.LOAD, idx_b=IdxCtl.LOAD, const_sel=3))
    prog.add(_halting())
    assert "micro-const-bus" in _checks(check_microprogram(prog))


def test_const_operand_and_idx_load_conflict():
    prog = MicroProgram()
    prog.add(MicroOp(op=CoreOp.MUL, b_src=BSrc.CONST, const_sel=1,
                     idx_a=IdxCtl.LOAD))
    prog.add(_halting())
    assert "micro-const-bus" in _checks(check_microprogram(prog))


def test_fall_off_end_detected():
    prog = MicroProgram()
    prog.add(MicroOp(op=CoreOp.NOP))   # no halt anywhere
    assert "micro-fall-off-end" in _checks(check_microprogram(prog))


def test_halt_without_drain_detected():
    prog = MicroProgram()
    prog.add(MicroOp(op=CoreOp.NOP, halt=True))
    assert "micro-drain-halt" in _checks(check_microprogram(prog))


def test_check_all_names_programs():
    findings = check_all({
        "ok": _single_halting_program(),
        "bad": _no_halt_program(),
    })
    assert {f.program for f in findings} == {"bad"}


def _single_halting_program():
    prog = MicroProgram()
    prog.add(_halting())
    return prog


def _no_halt_program():
    prog = MicroProgram()
    prog.add(MicroOp(op=CoreOp.NOP))
    return prog
