"""Taint edge cases: HI/LO, delay slots, jr dispatch, call trees.

The first half pins down propagation paths the original intraprocedural
pass must get right (accumulator flow, delay-slot copies, indirect
dispatch); the second half is a seeded leak corpus for the
interprocedural pass (:func:`repro.analysis.taint.taint_interp`) --
secrets flowing through calls, spills and per-word memory taint, with
the non-aliasing cases that must *not* flag proving the precision the
composed ``fmul_*`` kernels rely on.
"""

import pytest

from repro.analysis.cfg import AsmProgram, build_cfg
from repro.analysis.interp import analyze_image
from repro.analysis.taint import TaintSpec, taint_findings, taint_interp

SCALAR_SECRET = TaintSpec(secret_regs=("a1",))

HALT = "\n__halt:\n    halt\n"


def _intra(src, spec=SCALAR_SECRET, name="t"):
    cfg = build_cfg(AsmProgram.from_source(src, name=name))
    return taint_findings(cfg, spec)


def _interp_taint(src, spec=SCALAR_SECRET, name="t"):
    program = AsmProgram.from_source(src + HALT, name=name)
    halt = program.labels["__halt"]
    result = analyze_image(program, 0,
                           entry_values={31: program.address(halt)})
    assert not result.findings, [f.message for f in result.findings]
    return taint_interp(result, spec)


# -- propagation edge cases --------------------------------------------------


def test_hi_lo_flow_carries_taint():
    src = """
        li $t1, 3
        mult $a1, $t1
        mflo $t2
        beq $t2, $zero, 0x18
        nop
        jr $ra
        nop
    """
    for found in (_intra(src), _interp_taint(src)):
        assert [f.check for f in found] == ["secret-dependent-branch"]


def test_hi_lo_cleared_by_public_issue():
    # a later public mult overwrites the accumulator: no stale taint
    src = """
        mult $a1, $a1
        li $t1, 3
        mult $t1, $t1
        mflo $t2
        beq $t2, $zero, 0x1c
        nop
        jr $ra
        nop
    """
    for found in (_intra(src), _interp_taint(src)):
        assert found == []


def test_delay_slot_copy_carries_taint():
    src = """
        move $t0, $a1
        beq $zero, $zero, join
        .ds move $t1, $t0
    join:
        beq $t1, $zero, out
        nop
    out:
        jr $ra
        nop
    """
    for found in (_intra(src), _interp_taint(src)):
        assert "secret-dependent-branch" in {f.check for f in found}
        assert any(f.index == 3 for f in found)  # the join-block branch


def test_jr_dispatch_on_secret_flagged():
    found = _intra("""
        sll $t0, $a1, 2
        addu $t0, $t0, $ra
        jr $t0
        nop
    """)
    assert "secret-dependent-branch" in {f.check for f in found}


# -- seeded interprocedural leak corpus --------------------------------------

#: (name, source, leaks) -- each source is a small call tree; ``leaks``
#: states whether the interprocedural pass must flag it.  The clean
#: entries are precision seeds: an intraprocedural one-bit memory model
#: cannot prove them (a secret store poisons all loads), the per-word
#: interprocedural model must.
LEAK_CORPUS = (
    ("leak-through-return-value", """
        move $t7, $ra
        jal callee
        nop
        beq $v0, $zero, out
        nop
    out:
        jr $t7
        nop
    callee:
        move $v0, $a1
        jr $ra
        nop
    """, True),
    ("leak-through-spilled-secret", """
        move $t7, $ra
        sw $a1, 0($a0)
        jal callee
        nop
        jr $t7
        nop
    callee:
        lw $t0, 0($a0)
        beq $t0, $zero, back
        nop
    back:
        jr $ra
        nop
    """, True),
    ("clean-spill-different-arena", """
        move $t7, $ra
        sw $a1, 0($a0)
        jal callee
        nop
        jr $t7
        nop
    callee:
        lw $t0, 0($a2)
        beq $t0, $zero, back
        nop
    back:
        jr $ra
        nop
    """, False),
    ("clean-overwritten-before-reload", """
        sw $a1, 0($a0)
        sw $zero, 0($a0)
        lw $t0, 0($a0)
        beq $t0, $zero, out
        nop
    out:
        jr $ra
        nop
    """, False),
)


@pytest.mark.parametrize("name,src,leaks",
                         LEAK_CORPUS, ids=[c[0] for c in LEAK_CORPUS])
def test_interprocedural_leak_corpus(name, src, leaks):
    found = _interp_taint(src)
    if leaks:
        assert "secret-dependent-branch" in {f.check for f in found}, name
    else:
        assert found == [], (name, [f.message for f in found])


def test_intra_memory_blob_is_coarser_than_interp():
    # the precision seed: one-bit memory taint must flag the
    # different-arena reload the per-word model proves clean
    _, src, _ = LEAK_CORPUS[2][:3]
    intra = _intra(src)
    assert "secret-dependent-branch" in {f.check for f in intra}
    assert _interp_taint(src) == []
