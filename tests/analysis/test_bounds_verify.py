"""Static cycle/energy bounds asserted against real harness runs.

The soundness contract of :mod:`repro.analysis.bounds`: for every
registered kernel the static bound dominates the observed CoreStats,
and on the straight-line GF(p) kernels it is tight (within 2x).  The
lock-step differential harness doubles as the static-vs-dynamic
superblock gate, exercised end to end here on one kernel.
"""

import pytest

from repro.analysis.registry import KERNELS
from repro.analysis.verify import verify_all, verify_kernel, verify_record

_SPECS = {s.name: s for s in KERNELS}


@pytest.fixture(scope="module")
def reports():
    return {r.name: r for r in verify_all()}


def test_every_registered_kernel_is_clean(reports):
    assert sorted(reports) == sorted(_SPECS)
    bad = {name: [f.message for f in r.findings]
           for name, r in reports.items() if not r.clean}
    assert not bad


def test_bounds_dominate_observed_counters(reports):
    for r in reports.values():
        assert r.bound is not None, r.name
        assert r.bound.cycles >= r.observed["cycles"], r.name
        assert r.bound.instructions >= r.observed["instructions"], r.name
        assert r.bound.ram_writes >= r.observed["ram_writes"], r.name
        assert r.bound_energy_nj >= r.observed_energy_nj, r.name


def test_bounds_tight_on_straight_line_gfp_kernels(reports):
    for name in ("mp_add", "mp_sub", "os_mul", "red_p192"):
        assert reports[name].tightness <= 2.0, (name,
                                                reports[name].tightness)
    # the pure straight-line adders are cycle-exact
    assert reports["mp_add"].tightness == 1.0
    assert reports["mp_sub"].tightness == 1.0


def test_composed_field_multiply_verifies_interprocedurally(reports):
    r = reports["fmul_p192"]
    assert r.calls_resolved == 2          # jal os_mul, jal red_p192
    assert r.clean
    # the only waived findings are the reduction's inherited carry
    # branches, not a false positive on the spilled-$ra reload
    assert all(f.check == "secret-dependent-branch"
               for f, _ in r.waived if f.index >= 0)


def test_verify_record_shape(reports):
    record = verify_record(reports["mp_add"])
    assert record["kind"] == "analysis"
    assert record["artifact"] == "analysis_mp_add"
    assert record["cycles"] == reports["mp_add"].bound.cycles
    assert record["data"]["clean"] is True
    assert record["data"]["tightness"] == 1.0


def test_static_only_mode_skips_observation():
    report = verify_kernel(_SPECS["mp_add"], observe=False)
    assert report.observed == {}
    assert report.bound is not None and report.clean


def test_diffexec_certifies_static_superset_end_to_end():
    from repro.pete.diffexec import diff_kernel

    report = diff_kernel("mp_add", 6)
    assert report.ok
    assert any("static map certified" in note for note in report.notes)
