"""The whole-program abstract interpreter: call graph, ranges, loops.

Small hand-written images exercise each capability the verifier leans
on -- constant-derived trip counts, jal/jr call-return resolution,
dead-branch proofs, and the assumed-bound escape hatch -- so a interp
regression is localized here before it surfaces as a refused bound in
``verify --all``.
"""

from repro.analysis.cfg import AsmProgram
from repro.analysis.interp import analyze_image

HALT = "\n__halt:\n    halt\n"


def _interp(src, name="t", assume_trips=None):
    program = AsmProgram.from_source(src + HALT, name=name)
    halt = program.labels["__halt"]
    result = analyze_image(program, 0,
                           entry_values={31: program.address(halt)},
                           assume_trips=assume_trips)
    return program, result


def test_constant_trip_count_inferred():
    program, result = _interp("""
        li $t0, 4
    loop:
        addiu $t0, $t0, -1
        bne $t0, $zero, loop
        nop
        jr $ra
        nop
    """)
    header = program.labels["loop"]
    # trip_bounds are upper bounds: sound (never below the 4 actual
    # iterations), allowed one conservative extra
    assert 4 <= result.trip_bounds[(0, header)] <= 5
    assert result.assumed_loops == []
    assert not result.findings


def test_call_and_return_resolved():
    program, result = _interp("""
        move $t7, $ra
        jal callee
        nop
        jr $t7
        nop
    callee:
        addu $v0, $a0, $a1
        jr $ra
        nop
    """)
    callee = program.labels["callee"]
    assert list(result.calls.values()) == [callee]
    assert len(result.functions) == 2
    # the callee's jr resolves back to the call site, the outer jr to
    # the harness halt stub
    assert not result.findings


def test_dead_branch_proved():
    _, result = _interp("""
        li $t0, 0
        bne $t0, $zero, dead
        nop
        jr $ra
        nop
    dead:
        sw $zero, 0($zero)
        jr $ra
        nop
    """)
    assert [(i, d) for i, d in result.dead_branches] and \
        result.dead_branches[0][1] == "fall"
    # the never-taken arm is never walked
    feas = result.branch_feasible[result.dead_branches[0][0]]
    assert feas == frozenset({"fall"})


def test_unbounded_loop_reported_then_assumable():
    src = """
    loop:
        lw $t0, 0($a0)
        bne $t0, $zero, loop
        nop
        jr $ra
        nop
    """
    program, result = _interp(src)
    assert any(f.check == "unbounded-loop" for f in result.findings)

    header = program.labels["loop"]
    program, result = _interp(src, assume_trips={header: 8})
    assert not result.findings
    assert (header, 8) in result.assumed_loops
    assert result.trip_bounds[(0, header)] == 8


def test_value_range_tracks_loop_counter():
    program, result = _interp("""
        li $t0, 0
        li $t1, 6
    loop:
        addiu $t0, $t0, 1
        bne $t0, $t1, loop
        nop
        jr $ra
        nop
    """)
    header = program.labels["loop"]
    assert 6 <= result.trip_bounds[(0, header)] <= 7
