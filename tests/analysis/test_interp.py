"""The whole-program abstract interpreter: call graph, ranges, loops.

Small hand-written images exercise each capability the verifier leans
on -- constant-derived trip counts, jal/jr call-return resolution,
dead-branch proofs, and the assumed-bound escape hatch -- so a interp
regression is localized here before it surfaces as a refused bound in
``verify --all``.
"""

from repro.analysis.absdom import AbsState, AbsVal
from repro.analysis.cfg import AsmProgram
from repro.analysis.interp import analyze_image

HALT = "\n__halt:\n    halt\n"


def _interp(src, name="t", assume_trips=None):
    program = AsmProgram.from_source(src + HALT, name=name)
    halt = program.labels["__halt"]
    result = analyze_image(program, 0,
                           entry_values={31: program.address(halt)},
                           assume_trips=assume_trips)
    return program, result


def test_constant_trip_count_inferred():
    program, result = _interp("""
        li $t0, 4
    loop:
        addiu $t0, $t0, -1
        bne $t0, $zero, loop
        nop
        jr $ra
        nop
    """)
    header = program.labels["loop"]
    # trip_bounds are upper bounds: sound (never below the 4 actual
    # iterations), allowed one conservative extra
    assert 4 <= result.trip_bounds[(0, header)] <= 5
    assert result.assumed_loops == []
    assert not result.findings


def test_call_and_return_resolved():
    program, result = _interp("""
        move $t7, $ra
        jal callee
        nop
        jr $t7
        nop
    callee:
        addu $v0, $a0, $a1
        jr $ra
        nop
    """)
    callee = program.labels["callee"]
    assert list(result.calls.values()) == [callee]
    assert len(result.functions) == 2
    # the callee's jr resolves back to the call site, the outer jr to
    # the harness halt stub
    assert not result.findings


def test_dead_branch_proved():
    _, result = _interp("""
        li $t0, 0
        bne $t0, $zero, dead
        nop
        jr $ra
        nop
    dead:
        sw $zero, 0($zero)
        jr $ra
        nop
    """)
    assert [(i, d) for i, d in result.dead_branches] and \
        result.dead_branches[0][1] == "fall"
    # the never-taken arm is never walked
    feas = result.branch_feasible[result.dead_branches[0][0]]
    assert feas == frozenset({"fall"})


def test_unbounded_loop_reported_then_assumable():
    src = """
    loop:
        lw $t0, 0($a0)
        bne $t0, $zero, loop
        nop
        jr $ra
        nop
    """
    program, result = _interp(src)
    assert any(f.check == "unbounded-loop" for f in result.findings)

    header = program.labels["loop"]
    program, result = _interp(src, assume_trips={header: 8})
    assert not result.findings
    assert (header, 8) in result.assumed_loops
    assert result.trip_bounds[(0, header)] == 8


def test_slt_signed_on_wrapped_negative():
    # regression: slt is a *signed* compare.  0xFFFFFFFF is -1, so
    # slt $t1, $t0, $zero is 1 and the bne is always taken; deciding
    # it with the unsigned order proved the wrong side dead and pruned
    # the path hardware actually takes.
    program, result = _interp("""
        addiu $t0, $zero, -1
        slt $t1, $t0, $zero
        bne $t1, $zero, neg
        nop
        jr $ra
        nop
    neg:
        jr $ra
        nop
    """)
    assert (2, "taken") in result.dead_branches
    assert program.labels["neg"] in result.reached


def test_sltu_still_decided_unsigned():
    _, result = _interp("""
        addiu $t0, $zero, -1
        sltu $t1, $t0, $zero
        bne $t1, $zero, taken
        nop
        jr $ra
        nop
    taken:
        jr $ra
        nop
    """)
    # 0xFFFFFFFF is the largest unsigned value: sltu yields 0
    assert (2, "fall") in result.dead_branches


def test_slti_compares_signed_immediate():
    _, result = _interp("""
        addiu $t0, $zero, -10
        slti $t1, $t0, -5
        bne $t1, $zero, taken
        nop
        jr $ra
        nop
    taken:
        jr $ra
        nop
    """)
    # -10 < -5 in the signed order, wrapped forms notwithstanding
    assert (2, "taken") in result.dead_branches


def test_slt_on_symbolic_operands_undecided():
    _, result = _interp("""
        slt $t1, $a0, $a1
        bne $t1, $zero, other
        nop
        jr $ra
        nop
    other:
        jr $ra
        nop
    """)
    # unknown entry values may sit on either side of 2^31
    assert result.branch_feasible[1] == frozenset({"taken", "fall"})


def test_call_in_loop_clobbers_callee_written_registers():
    # regression: the helper writes $v0 inside the loop, so the header
    # state must not keep the iteration-0 value $v0 = 0 -- hardware
    # takes the exit branch from iteration 2
    src = """
        move $t7, $ra
        li $v0, 0
    loop:
        bne $v0, $zero, done
        nop
        jal helper
        nop
        b loop
        nop
    done:
        jr $t7
        nop
    helper:
        li $v0, 1
        jr $ra
        nop
    """
    program, result = _interp(src)
    header = program.labels["loop"]
    assert result.branch_feasible[header] == frozenset({"taken", "fall"})
    assert not any(i == header for i, _ in result.dead_branches)
    assert program.labels["done"] in result.reached
    # $v0 ($2) holds no stale value at the header...
    assert result.states[header].get(2).is_top
    # ...and the derived-trip machinery cannot bound the loop either
    # (the callee may rewrite the counter); only an assumption can
    assert any(f.check == "unbounded-loop" for f in result.findings)

    program, result = _interp(src, assume_trips={header: 4})
    assert not any(f.check == "unbounded-loop" for f in result.findings)
    assert (header, 4) in result.assumed_loops
    assert result.states[header].get(2).is_top


def test_jr_target_in_delay_slot_refused():
    # a jump-table target inside another instruction's delay slot would
    # be walked with the owner's control semantics (branching, where
    # slot-entered hardware falls through); refuse it instead
    program, result = _interp("""
        la $t0, br
        addiu $t0, $t0, 4
        jr $t0
        nop
    br: beq $zero, $zero, out
        .ds nop
    out:
        jr $ra
        nop
    """)
    assert any(f.check == "jump-into-delay-slot" for f in result.findings)
    slot = program.labels["br"] + 1
    assert slot in result.cfg.slots and slot not in result.reached


def test_ranged_clobber_honors_zero_upper_bound():
    # regression: hi == 0 is a legitimate upper bound, not "absent"
    s = AbsState().store_word((4, 0), AbsVal.const(5))
    assert not s.load_word((4, 0)).is_top
    assert s.clobber_memory(4, -8, 0).load_word((4, 0)).is_top


def test_value_range_tracks_loop_counter():
    program, result = _interp("""
        li $t0, 0
        li $t1, 6
    loop:
        addiu $t0, $t0, 1
        bne $t0, $t1, loop
        nop
        jr $ra
        nop
    """)
    header = program.labels["loop"]
    assert 6 <= result.trip_bounds[(0, header)] <= 7
