"""CFG construction and the dataflow fixpoints on small programs."""

from repro.analysis import insn
from repro.analysis.cfg import EXIT, AsmProgram, build_cfg, delay_slots
from repro.analysis.dataflow import (
    liveness,
    maybe_uninitialized,
    reaching_defs,
)
from repro.pete.assembler import assemble
from repro.pete.cpu import _sources
from repro.pete.isa import PeteISA


def _prog(src, name="t"):
    return AsmProgram.from_source(src, name=name)


LOOP = """
main:
    li   $t0, 3
loop:
    addiu $t0, $t0, -1
    bne  $t0, $zero, loop
    .ds nop
    jr   $ra
    .ds nop
"""


def test_branch_edges_live_on_the_slot():
    prog = _prog(LOOP)
    cfg = build_cfg(prog)
    # words: 0 li, 1 addiu, 2 bne, 3 nop(slot), 4 jr, 5 nop(slot)
    assert delay_slots(prog) == {3, 5}
    assert cfg.succ[2] == (3,)            # branch falls into its slot
    assert set(cfg.succ[3]) == {1, 4}     # slot carries target + through
    assert cfg.succ[5] == (EXIT,)         # jr slot leaves the program


def test_unconditional_b_has_no_fallthrough_edge():
    prog = _prog("""
        b skip
        .ds nop
        addiu $t0, $t0, 1
    skip:
        jr $ra
        .ds nop
    """)
    cfg = build_cfg(prog)
    assert cfg.succ[1] == (3,)    # slot of b: target only
    assert 2 not in cfg.reachable()


def test_jal_slot_reaches_callee_and_return_point():
    prog = _prog("""
    main:
        jal func
        .ds nop
        jr $ra
        .ds nop
    func:
        jr $ra
        .ds nop
    """)
    cfg = build_cfg(prog)
    assert set(cfg.succ[1]) == {4, 2}
    assert cfg.reachable() == {0, 1, 2, 3, 4, 5}


def test_basic_blocks_partition_the_program():
    prog = _prog(LOOP)
    cfg = build_cfg(prog)
    starts = [b.start for b in cfg.blocks]
    ends = [b.end for b in cfg.blocks]
    assert starts[0] == 0
    assert ends[-1] == len(prog)
    for prev_end, nxt_start in zip(ends, starts[1:]):
        assert prev_end == nxt_start


def test_liveness_sees_through_the_loop():
    prog = _prog(LOOP)
    cfg = build_cfg(prog)
    live_in, _ = liveness(cfg, live_out_exit=0)
    t0 = insn.reg_mask("t0")
    assert live_in[1] & t0      # addiu reads $t0
    assert live_in[2] & t0      # bne reads $t0
    assert not live_in[0] & t0  # defined at 0, not live before it


def test_maybe_uninitialized_flags_unwritten_register():
    prog = _prog("""
        addu $t1, $t0, $t0
        jr $ra
        nop
    """)
    cfg = build_cfg(prog)
    unin = maybe_uninitialized(cfg, entry_defined=insn.reg_mask("ra"))
    assert unin[0] & insn.reg_mask("t0")
    # after the def, $t1 is initialized on the only path
    assert not unin[1] & insn.reg_mask("t1")


def test_maybe_uninitialized_union_join_over_paths():
    prog = _prog("""
        beq $a0, $zero, skip
        nop
        li $t0, 1
    skip:
        addu $t1, $t0, $t0
        jr $ra
        nop
    """)
    cfg = build_cfg(prog)
    unin = maybe_uninitialized(
        cfg, entry_defined=insn.reg_mask("a0", "ra", "zero"))
    # one path defines $t0, the taken path does not: still suspect
    assert unin[3] & insn.reg_mask("t0")


def test_reaching_defs_def_use_chain():
    prog = _prog(LOOP)
    cfg = build_cfg(prog)
    reach = reaching_defs(cfg)
    t0 = insn.reg_mask("t0").bit_length() - 1
    # the bne's read of $t0 is reached only by the addiu (index 1):
    # the li at 0 is always killed by the addiu on the way
    assert reach[2][t0] == frozenset({1})
    # the addiu itself sees both the li and its own previous iteration
    assert reach[1][t0] == frozenset({0, 1})


def test_insn_uses_match_cpu_sources():
    """The analysis def/use tables agree with the simulator's."""
    src = """
        addu $t0, $t1, $t2
        sll $t3, $t4, 2
        srlv $t5, $t6, $t7
        addiu $a0, $a1, 8
        lw $s0, 4($a2)
        sw $s1, 8($a3)
        beq $v0, $v1, 0x0
        nop
        mult $t8, $t9
        mfhi $t0
        mflo $t1
        mthi $t2
        mtlo $t3
        jr $ra
        nop
    """
    words = assemble(src).words
    for word in words:
        d = PeteISA.decode(word)
        expected = 0
        for reg in _sources(d):
            expected |= 1 << reg
        got_gprs = insn.uses(d) & ((1 << 32) - 1)
        assert got_gprs == expected, d.mnemonic
