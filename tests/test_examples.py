"""Every example script must run to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))

#: the guided tour re-runs the whole comparison gate; keep it but give
#: it more time
SLOW = {"reproduce_paper.py"}


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    timeout = 900 if script.name in SLOW else 600
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples narrate what they do"


def test_examples_present():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 6
