"""Shared fixtures for the test suite."""

import random

import pytest

from repro.ec.curves import get_curve


@pytest.fixture
def rng():
    """Deterministic RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture(params=["P-192", "P-256", "P-521"])
def prime_curve(request):
    return get_curve(request.param)


@pytest.fixture(params=["B-163", "B-283", "B-571"])
def binary_curve(request):
    return get_curve(request.param)


@pytest.fixture(params=["P-192", "B-163"])
def any_curve(request):
    return get_curve(request.param)
