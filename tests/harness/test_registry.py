"""The typed artifact registry behind runall, the sweep and repro.api."""

import pytest

from repro.harness.figures import FIGURES, render_figure
from repro.harness.registry import (
    ArtifactSpec,
    UnknownArtifactError,
    get_spec,
    model_rows,
    registry,
    select,
)
from repro.harness.tables import TABLES, render_table


def test_registry_covers_the_full_catalog_in_runall_order():
    specs = list(registry().values())
    assert [s.key for s in specs] == (
        [("table", n) for n in TABLES]
        + [("figure", n) for n in FIGURES])


def test_spec_identity_properties():
    spec = get_spec("table", "7.1")
    assert spec.artifact_id == "table_7.1"
    assert spec.slug == "table_7_1"
    assert spec.producer is TABLES["7.1"]
    assert spec.producer_module.startswith("repro.")


def test_unknown_kind_and_name_raise():
    with pytest.raises(ValueError):
        ArtifactSpec("chart", "7.1", lambda: None)
    with pytest.raises(UnknownArtifactError):
        get_spec("table", "99.9")


def test_render_matches_the_legacy_renderers():
    assert get_spec("table", "7.5").render() == render_table("7.5")
    assert get_spec("figure", "s7.8").render() == render_figure("s7.8")


def test_payload_is_json_serializable_and_complete():
    import json

    from repro.harness.registry import PAYLOAD_KEYS

    payload = get_spec("table", "7.5").payload()
    assert set(payload) == set(PAYLOAD_KEYS)
    json.dumps(payload)  # must not raise
    assert payload["text"].startswith("Table 7.5")
    assert payload["csv"].splitlines()[0]
    assert payload["wall_s"] > 0


def test_record_matches_payload_quantities():
    spec = get_spec("table", "7.5")
    payload = spec.payload()
    record = spec.record(payload)
    assert record["artifact"] == "table_7.5"
    assert record["kind"] == "bench"
    assert record["cycles"] == payload["cycles"]
    assert record["energy_uj"] == payload["energy_uj"]


def test_select_matches_legacy_rules():
    assert [s.key for s in select(["7.1"])] == [
        ("table", "7.1"), ("figure", "7.1")]
    assert [s.name for s in select(["s7"])] == ["s7.7", "s7.8"]
    assert [s.key for s in select(["table_7_2"])] == [("table", "7.2")]
    with pytest.raises(UnknownArtifactError) as exc:
        select(["nope"])
    assert "unknown artifact name(s): nope" in str(exc.value)


def test_model_rows_is_the_latency_cross_product():
    rows = model_rows()
    assert ("P-192", "baseline") in rows
    assert rows == tuple(sorted(rows))
    from repro.regress.gate import full_model_rows

    assert full_model_rows() == rows
