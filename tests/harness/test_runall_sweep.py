"""runall with --jobs/--cache: parallel and warm runs match serial."""

from repro.harness.runall import main


def _read_dir(d):
    return {p.name: p.read_bytes() for p in d.iterdir()}


def test_parallel_cached_and_warm_match_serial(tmp_path, capsys):
    cache = tmp_path / "cache"
    serial, par, warm = (tmp_path / n for n in ("serial", "par", "warm"))

    assert main(["--only", "7.5", "--out", str(serial), "--csv",
                 "--no-ledger"]) == 0
    serial_out = capsys.readouterr().out

    assert main(["--only", "7.5", "--out", str(par), "--csv",
                 "--no-ledger", "--jobs", "2",
                 "--cache-dir", str(cache)]) == 0
    captured = capsys.readouterr()
    assert captured.out == serial_out
    assert "0 cached" in captured.err and "jobs=2" in captured.err
    assert _read_dir(par) == _read_dir(serial)

    # warm rerun: every artifact replayed from the cache, still identical
    assert main(["--only", "7.5", "--out", str(warm), "--csv",
                 "--no-ledger", "--cache-dir", str(cache)]) == 0
    captured = capsys.readouterr()
    assert captured.out == serial_out
    assert "0 computed" in captured.err
    assert _read_dir(warm) == _read_dir(serial)
