"""runall --fast byte-identity and --stats-json machine stats."""

import json

from repro.harness.runall import main


def _read_dir(d):
    return {p.name: p.read_bytes() for p in d.iterdir()}


def test_stats_json_cold_then_warm(tmp_path, capsys):
    cache = tmp_path / "cache"
    stats_path = tmp_path / "stats.json"

    assert main(["--only", "7.5", "--cache-dir", str(cache),
                 "--stats-json", str(stats_path)]) == 0
    cold = json.loads(stats_path.read_text())
    assert cold["computed"] == cold["artifacts"] > 0
    assert cold["cached"] == 0 and cold["failed"] == 0

    assert main(["--only", "7.5", "--cache-dir", str(cache),
                 "--stats-json", str(stats_path)]) == 0
    warm = json.loads(stats_path.read_text())
    assert warm["computed"] == 0
    assert warm["cached"] == warm["artifacts"] == cold["artifacts"]
    capsys.readouterr()


def test_fast_flag_produces_identical_artifacts(tmp_path, capsys,
                                                monkeypatch):
    monkeypatch.delenv("REPRO_PETE_FAST", raising=False)
    ref, fast = tmp_path / "ref", tmp_path / "fast"
    assert main(["--only", "7.5", "--out", str(ref), "--csv",
                 "--no-ledger"]) == 0
    ref_out = capsys.readouterr().out
    assert main(["--only", "7.5", "--out", str(fast), "--csv",
                 "--no-ledger", "--fast"]) == 0
    assert capsys.readouterr().out == ref_out
    assert _read_dir(fast) == _read_dir(ref)
