"""Surface stability: the exported API and registry encapsulation.

These tests pin contracts rather than behavior: ``repro.api.__all__``
is the supported import surface (docs/API.md documents exactly these
names), and :mod:`repro.harness.registry` privates stay private --
no other module under ``src/`` may import or reference them.
"""

import pathlib
import re

import repro.api as api

EXPECTED_API = [
    "ArtifactSpec",
    "BatchItem",
    "BatchLane",
    "BatchRequest",
    "BatchResult",
    "RequestShed",
    "ServeConfig",
    "ServeRequest",
    "ServeResponse",
    "ServiceDraining",
    "Session",
    "SigningService",
    "SweepResult",
    "UnknownArtifactError",
    "compute_artifact",
    "compute_batch",
    "open_session",
    "serve_session",
    "sweep",
]

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

#: importing a leading-underscore name straight out of the module
_PRIVATE_IMPORT = re.compile(
    r"from\s+repro\.harness\.registry\s+import\s+[^\n]*\b_\w+")
#: the module imported under the name ``registry`` (other modules named
#: registry -- e.g. the telemetry metric registry -- don't count)
_HARNESS_REGISTRY = re.compile(
    r"(?:from\s+repro\.harness\s+import\s+[^\n]*\bregistry\b"
    r"|import\s+repro\.harness\.registry\s+as\s+registry)")
_PRIVATE_ATTR = re.compile(r"\bregistry\._\w+")


def test_api_all_is_stable_and_sorted():
    assert list(api.__all__) == EXPECTED_API
    assert sorted(api.__all__) == list(api.__all__)


def test_api_all_names_resolve():
    for name in api.__all__:
        assert getattr(api, name) is not None


def test_no_module_reaches_registry_privates():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name == "registry.py" and path.parent.name == "harness":
            continue
        text = path.read_text()
        if _PRIVATE_IMPORT.search(text) or (
                _HARNESS_REGISTRY.search(text)
                and _PRIVATE_ATTR.search(text)):
            offenders.append(str(path.relative_to(SRC)))
    assert not offenders, (
        "modules reaching into repro.harness.registry privates: "
        f"{offenders}")


def test_runall_shims_are_gone():
    """The PR-4 deprecation shims were removed; the old private names
    must raise AttributeError, not silently resolve."""
    import repro.harness.runall as runall

    for name in ("_normalize", "_matches", "_artifact_record",
                 "_to_csv"):
        try:
            getattr(runall, name)
        except AttributeError:
            continue
        raise AssertionError(f"runall.{name} still resolves")
