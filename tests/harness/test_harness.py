"""The table/figure regeneration harness."""

import pytest

from repro.harness import FIGURES, TABLES, render_figure, render_table


@pytest.mark.parametrize("name", sorted(TABLES))
def test_tables_render(name):
    text = render_table(name)
    assert text.startswith(f"Table {name}")
    assert len(text.splitlines()) > 3


@pytest.mark.parametrize("name", sorted(FIGURES))
def test_figures_render(name):
    text = render_figure(name)
    assert text.startswith(f"Figure {name}")
    assert len(text.splitlines()) >= 2


def test_table_7_1_rows():
    from repro.harness.tables import table7_1

    rows = table7_1()
    assert len(rows) == 15, "3 microarchitectures x 5 key sizes"
    for row in rows:
        assert row["sign"] < row["verify"]
        assert row["sign+verify"] == pytest.approx(
            row["sign"] + row["verify"])


def test_table_7_4_columns_consistent():
    from repro.harness.tables import table7_4

    for row in table7_4():
        assert row["energy_nj"] == pytest.approx(
            row["power_uw"] * 1e-6 * row["time_ns"], rel=1e-6)


def test_fig7_1_ordering():
    from repro.harness.figures import fig7_1

    series = fig7_1()
    for curve in ("P-192", "P-521"):
        assert series["monte"][curve] < series["isa_ext_ic"][curve] \
            < series["isa_ext"][curve] < series["baseline"][curve]


def test_fig7_12_minimum_at_4kb():
    from repro.harness.figures import fig7_12

    data = fig7_12()
    best = min(data, key=data.get)
    assert best.startswith("4KB")
    assert data["no cache"] > data["4KB"]


def test_fig7_14_billie_beats_prior_work():
    from repro.harness.figures import fig7_14

    data = fig7_14()
    for digit, guo_cycles in data["guo_et_al"].items():
        assert data["billie_sliding"][digit] < guo_cycles


def test_fig7_7_shows_crossover_narrative():
    from repro.harness.figures import fig7_7

    series = fig7_7()
    # Billie wins over Monte at the smallest pair, converges at the top
    assert series["Billie"]["192/163"] < series["Monte"]["192/163"] / 1.5
    top = "521/571"
    assert series["Billie"][top] == pytest.approx(series["Monte"][top],
                                                  rel=0.45)


def test_runall_cli(tmp_path, capsys):
    from repro.harness.runall import main

    assert main(["--only", "7.5", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Table 7.5" in out
    assert (tmp_path / "table_7_5.txt").exists()
