"""The paper-vs-measured comparison gate."""

import pytest

from repro.harness.compare import (
    BandComparison,
    Comparison,
    anchor_comparisons,
    latency_comparisons,
    main,
    run_report,
)
from repro.model.system import SystemModel


def test_comparison_math():
    good = Comparison("x", 105.0, 100.0, 0.10)
    assert good.ok and good.ratio == pytest.approx(1.05)
    bad = Comparison("x", 130.0, 100.0, 0.10)
    assert not bad.ok
    band = BandComparison("y", 1.5, 1.0, 2.0)
    assert band.ok
    assert not BandComparison("y", 2.5, 1.0, 2.0).ok


def test_full_gate_passes():
    """The reproduction gate: every tracked quantity inside tolerance."""
    passed, failed = run_report(verbose=False)
    assert failed == 0
    assert passed >= 80, "rows + anchors + bands"


def test_latency_rows_cover_both_tables():
    model = SystemModel()
    rows = latency_comparisons(model)
    assert len(rows) == 2 * 30, "sign+verify for all 30 table rows"
    names = {r.name for r in rows}
    assert any("P-521/monte" in n for n in names)
    assert any("B-571/billie" in n for n in names)


def test_anomalies_get_wider_tolerance():
    model = SystemModel()
    rows = latency_comparisons(model)
    anomaly = next(r for r in rows
                   if r.name.startswith("P-521/baseline/verify"))
    normal = next(r for r in rows
                  if r.name.startswith("P-521/baseline/sign"))
    assert anomaly.tolerance > normal.tolerance
    assert anomaly.note


def test_anchor_list():
    anchors = anchor_comparisons()
    assert any("ps_mul_ext" in a.name for a in anchors)
    assert sum(1 for a in anchors if a.name.startswith("FFAU")) == 12


def test_cli():
    assert main(["--quiet"]) == 0
