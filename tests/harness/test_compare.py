"""The paper-vs-measured comparison gate."""

import pytest

from repro.harness.compare import (
    BandComparison,
    Comparison,
    anchor_comparisons,
    latency_comparisons,
    main,
    run_report,
)
from repro.model.system import SystemModel


def test_comparison_math():
    good = Comparison("x", 105.0, 100.0, 0.10)
    assert good.ok and good.ratio == pytest.approx(1.05)
    bad = Comparison("x", 130.0, 100.0, 0.10)
    assert not bad.ok
    band = BandComparison("y", 1.5, 1.0, 2.0)
    assert band.ok
    assert not BandComparison("y", 2.5, 1.0, 2.0).ok


def test_full_gate_passes():
    """The reproduction gate: every tracked quantity inside tolerance."""
    passed, failed = run_report(verbose=False)
    assert failed == 0
    assert passed >= 80, "rows + anchors + bands"


def test_latency_rows_cover_both_tables():
    model = SystemModel()
    rows = latency_comparisons(model)
    assert len(rows) == 2 * 30, "sign+verify for all 30 table rows"
    names = {r.name for r in rows}
    assert any("P-521/monte" in n for n in names)
    assert any("B-571/billie" in n for n in names)


def test_anomalies_get_wider_tolerance():
    model = SystemModel()
    rows = latency_comparisons(model)
    anomaly = next(r for r in rows
                   if r.name.startswith("P-521/baseline/verify"))
    normal = next(r for r in rows
                  if r.name.startswith("P-521/baseline/sign"))
    assert anomaly.tolerance > normal.tolerance
    assert anomaly.note


def test_anchor_list():
    anchors = anchor_comparisons()
    assert any("ps_mul_ext" in a.name for a in anchors)
    assert sum(1 for a in anchors if a.name.startswith("FFAU")) == 12


def test_cli():
    assert main(["--quiet"]) == 0


# ---------------------------------------------------------------------------
# tolerance edges, zero-reference guard, exclusion list, exit status
# ---------------------------------------------------------------------------


def test_tolerance_edge_is_inclusive():
    # binary-exact values so the boundary itself is representable
    assert Comparison("x", 125.0, 100.0, 0.25).ok
    assert not Comparison("x", 125.1, 100.0, 0.25).ok
    assert Comparison("x", 75.0, 100.0, 0.25).ok
    assert BandComparison("y", 1.0, 1.0, 2.0).ok
    assert BandComparison("y", 2.0, 1.0, 2.0).ok


def test_zero_reference_guard():
    import math

    z = Comparison("z", 5.0, 0.0, 0.10)
    assert z.ratio == math.inf and not z.ok
    both_zero = Comparison("z", 0.0, 0.0, 0.10)
    assert both_zero.ratio == 1.0 and both_zero.ok


def test_strict_gate_exclusion_list_is_exact():
    from repro.harness.compare import PAPER_ANOMALIES

    assert PAPER_ANOMALIES == {("P-521", "baseline", "verify"),
                               ("B-283", "binary_isa", "verify")}
    model = SystemModel()
    for curve, config, primitive in PAPER_ANOMALIES:
        row = next(r for r in latency_comparisons(model) if r.name
                   .startswith(f"{curve}/{config}/{primitive}"))
        assert row.tolerance == 0.60 and row.note


def test_band_specs_are_the_single_source():
    from repro.harness.compare import FACTOR_BAND_SPECS, factor_comparisons

    bands = factor_comparisons(SystemModel())
    assert [b.name for b in bands] == [s[0] for s in FACTOR_BAND_SPECS]
    assert [(b.low, b.high) for b in bands] \
        == [(s[3], s[4]) for s in FACTOR_BAND_SPECS]


def test_main_exits_nonzero_on_out_of_band_quantity(monkeypatch):
    import repro.harness.compare as compare

    monkeypatch.setattr(compare, "latency_comparisons", lambda model: [])
    monkeypatch.setattr(compare, "anchor_comparisons", lambda: [
        Comparison("forced failure", 200.0, 100.0, 0.10)])
    monkeypatch.setattr(compare, "factor_comparisons", lambda model: [])
    assert main(["--quiet"]) == 1
