"""runall: --only matching and the observability CLI modes."""

import json

import pytest

from repro.harness.figures import FIGURES
from repro.harness.runall import main, select_artifacts
from repro.harness.tables import TABLES


# ---------------------------------------------------------------------------
# --only selection
# ---------------------------------------------------------------------------


def test_no_filter_selects_full_catalog():
    got = select_artifacts(None)
    assert len(got) == len(TABLES) + len(FIGURES)


def test_exact_name_matches_table_and_figure():
    got = select_artifacts(["7.1"])
    assert got == [("table", "7.1"), ("figure", "7.1")]
    # crucially: the prefix does NOT bleed into 7.15
    assert ("figure", "7.15") not in got


def test_underscore_and_kind_prefix_normalization():
    assert select_artifacts(["7_14"]) == [("figure", "7.14")]
    assert select_artifacts(["table_7_2"]) == [("table", "7.2")]
    assert select_artifacts(["Figure.S7.7"]) == [("figure", "s7.7")]


def test_component_prefix_selects_a_family():
    names = [n for _, n in select_artifacts(["s7"])]
    assert names == ["s7.7", "s7.8"]
    sevens = [n for _, n in select_artifacts(["7"])]
    assert "7.1" in sevens and "7.15" in sevens
    assert all(n.startswith("7.") for n in sevens)


def test_unknown_names_fail_loudly():
    with pytest.raises(SystemExit) as exc:
        select_artifacts(["7.1", "nope", "9.9"])
    msg = str(exc.value)
    assert "unknown artifact name(s): nope 9.9" in msg
    assert "available:" in msg and "7.15" in msg


def test_main_propagates_unknown_only(capsys, tmp_path):
    with pytest.raises(SystemExit):
        main(["--only", "bogus", "--out", str(tmp_path)])


# ---------------------------------------------------------------------------
# observability modes
# ---------------------------------------------------------------------------


def test_profile_mode_prints_reconciled_table(capsys):
    assert main(["--profile", "P-192:baseline:sign"]) == 0
    out = capsys.readouterr().out
    assert "P-192/baseline/sign" in out
    assert "reconciliation vs EnergyReport: 0.0000% difference" in out


def test_profile_default_spec(capsys):
    assert main(["--profile"]) == 0
    assert "P-256/baseline/sign" in capsys.readouterr().out


def test_profile_kernel_mode(capsys):
    assert main(["--profile-kernel", "os_mul:4"]) == 0
    out = capsys.readouterr().out
    assert "os_mul" in out and "total" in out
    assert "reconciliation vs EnergyReport: 0.0000%" in out
    assert "collapsed stacks" in out


def test_trace_mode_writes_loadable_json(tmp_path, capsys):
    path = tmp_path / "trace.json"
    assert main(["--trace", str(path),
                 "--trace-kernel", "os_mul:4"]) == 0
    assert "wrote" in capsys.readouterr().out
    trace = json.loads(path.read_text())
    assert trace["traceEvents"]
    assert trace["otherData"]["kernel"] == "os_mul:4"
    assert {e["ph"] for e in trace["traceEvents"]} <= {"X", "M", "C"}


def test_bad_specs_exit_with_message():
    with pytest.raises(SystemExit) as exc:
        main(["--profile", "P-256:baseline"])
    assert "bad --profile spec" in str(exc.value)
    with pytest.raises(SystemExit) as exc:
        main(["--profile-kernel", "no_such_kernel:4"])
    assert "no_such_kernel" in str(exc.value)
