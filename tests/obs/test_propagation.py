"""Span propagation and metric merging across the sweep process pool,
under both ``fork`` and ``spawn`` start methods (satellite: ISSUE 8)."""

import multiprocessing
import os

import pytest

from repro import obs
from repro.harness.registry import ArtifactSpec
from repro.obs import export as ox
from repro.sweep.engine import run_sweep

START_METHODS = [m for m in ("fork", "spawn")
                 if m in multiprocessing.get_all_start_methods()]


class ListLedger:
    def __init__(self):
        self.records = []

    def append(self, record):
        self.records.append(record)
        return record


def payload_for(kind, name):
    return {"text": f"{kind} {name}", "csv": "a\n1\n", "cycles": 7,
            "energy_uj": 0.5, "data": {}, "components": {},
            "wall_s": 0.01}


def fake_specs(*names):
    return [ArtifactSpec("table", n, payload_for) for n in names]


# -- module-level so spawn workers can unpickle it ----------------------


def obs_compute(kind, name):
    """Task body that emits telemetry from inside the worker: the
    engine's obs_ctx must have activated a joined plane already."""
    tel = obs.get()
    assert tel is not None, "worker telemetry was not activated"
    tel.counter("worker_events", shard="shared").inc()
    with obs.span("task.body", task=name):
        pass
    return payload_for(kind, name)


def plain_compute(kind, name):
    return payload_for(kind, name)


@pytest.mark.parametrize("method", START_METHODS)
def test_pool_spans_reconstruct_as_one_tree(method):
    obs.enable()
    result = run_sweep(fake_specs("a", "b", "c"), jobs=2,
                       ledger=ListLedger(), compute=obs_compute,
                       mp_context=method)
    snapshot = obs.disable()
    assert all(o.status == "computed" for o in result.outcomes)

    roots, children = ox.span_tree(snapshot["spans"])
    assert len(roots) == 1 and roots[0]["name"] == "sweep.run"
    tasks = children[roots[0]["span_id"]]
    assert [t["name"] for t in tasks] == ["sweep.task"] * 3

    parent_pid = os.getpid()
    worker_pids = set()
    for task in tasks:
        (worker,) = children[task["span_id"]]
        assert worker["name"] == "sweep.worker"
        assert worker["trace_id"] == snapshot["trace_id"]
        assert worker["pid"] != parent_pid
        worker_pids.add(worker["pid"])
        # and the task body's own span nests under the worker span
        (body,) = children[worker["span_id"]]
        assert body["name"] == "task.body"
        assert body["pid"] == worker["pid"]
    assert len(worker_pids) == 3     # one dedicated process per task


@pytest.mark.parametrize("method", START_METHODS)
def test_same_labeled_counter_from_two_workers_merges_to_the_sum(method):
    tel = obs.enable()
    run_sweep(fake_specs("a", "b"), jobs=2, ledger=ListLedger(),
              compute=obs_compute, mp_context=method)
    assert tel.counter("worker_events", shard="shared").value == 2
    snapshot = obs.disable()
    families = ox.parse_openmetrics(ox.to_openmetrics(snapshot))
    (sample,) = [s for s in families["worker_events"]
                 if s["sample"] == "worker_events_total"]
    assert sample["value"] == 2.0
    assert sample["labels"]["shard"] == "shared"


@pytest.mark.parametrize("method", START_METHODS)
def test_task_latency_histogram_covers_every_pooled_task(method):
    tel = obs.enable()
    run_sweep(fake_specs("a", "b", "c"), jobs=2, ledger=ListLedger(),
              compute=plain_compute, mp_context=method)
    hist = tel.histogram("sweep_task_wall_s")
    assert hist.count == 3
    assert tel.counter("sweep_tasks_total", status="computed").value == 3
    obs.disable()


def test_pool_runs_clean_with_telemetry_disabled():
    """The null-guarded pool path: no telemetry, no task spans, no
    worker activation -- and nothing breaks."""
    result = run_sweep(fake_specs("a", "b"), jobs=2,
                       ledger=ListLedger(), compute=plain_compute)
    assert all(o.status == "computed" for o in result.outcomes)
    assert obs.get() is None


def test_failed_attempts_keep_their_spans():
    obs.enable()
    run_sweep(fake_specs("a"), jobs=2, ledger=ListLedger(),
              compute=fail_compute, retries=1)
    snapshot = obs.disable()
    attempts = [s for s in snapshot["spans"]
                if s["name"] == "sweep.task"]
    assert [a["labels"]["attempt"] for a in attempts] == ["1", "2"]
    assert all(a["status"] == "error" for a in attempts)
    workers = [s for s in snapshot["spans"]
               if s["name"] == "sweep.worker"]
    assert len(workers) == 2
    assert all(w["status"] == "error" for w in workers)


def fail_compute(kind, name):
    raise RuntimeError("injected failure")
