"""Telemetry exports: OpenMetrics, span tree, Chrome trace, ledger
record, and the ``python -m repro.obs report`` CLI."""

import json

import pytest

from repro import obs
from repro.obs import export as ox
from repro.obs.__main__ import main as obs_main
from repro.obs.core import Telemetry


def _snapshot_with_activity():
    tel = obs.enable()
    with obs.span("sweep.run", jobs="2"):
        tel.counter("sweep_cache_hits").inc(3)
        tel.counter("sweep_cache_misses").inc(1)
        tel.counter("fastpath_blocks_compiled").inc(5)
        tel.gauge("pool_jobs").set(2)
        hist = tel.histogram("sweep_task_wall_s")
        for v in (0.1, 0.2, 0.4):
            hist.observe(v)
        with obs.span("sweep.task", task="7.3"):
            pass
    return obs.disable()


# ---------------------------------------------------------------------------
# OpenMetrics
# ---------------------------------------------------------------------------


def test_openmetrics_renders_and_parses():
    text = ox.to_openmetrics(_snapshot_with_activity())
    assert text.endswith("# EOF\n")
    families = ox.parse_openmetrics(text)
    hits = [s for s in families["sweep_cache_hits"]
            if s["sample"] == "sweep_cache_hits_total"]
    assert hits[0]["value"] == 3.0
    gauge = [s for s in families["pool_jobs"]]
    assert gauge[0]["value"] == 2.0
    # histograms export as summaries: quantiles + _count + _sum
    wall = families["sweep_task_wall_s"]
    p50 = [s for s in wall if s["labels"].get("quantile") == "0.5"]
    assert p50[0]["value"] == pytest.approx(0.2)
    count = [s for s in wall if s["sample"].endswith("_count")]
    assert count[0]["value"] == 3.0


def test_openmetrics_escapes_and_sanitizes_labels():
    tel = Telemetry()
    tel.counter("odd-name", path='a"b\\c').inc()
    text = ox.to_openmetrics(tel.snapshot())
    families = ox.parse_openmetrics(text)
    (sample,) = families["odd_name"]
    assert sample["labels"]["path"] == 'a"b\\c'


def test_parser_rejects_malformed_text():
    with pytest.raises(ValueError):
        ox.parse_openmetrics("no terminator\n")
    with pytest.raises(ValueError):
        ox.parse_openmetrics("orphan_total 1\n# EOF")


def test_series_metrics_are_skipped_in_openmetrics():
    tel = Telemetry()
    tel.registry.series("power_mw").append(0, 1.0)
    tel.counter("kept").inc()
    families = ox.parse_openmetrics(ox.to_openmetrics(tel.snapshot()))
    assert "kept" in families and "power_mw" not in families


# ---------------------------------------------------------------------------
# span tree + chrome
# ---------------------------------------------------------------------------


def test_span_tree_has_one_root_and_nested_children():
    snapshot = _snapshot_with_activity()
    roots, children = ox.span_tree(snapshot["spans"])
    assert len(roots) == 1 and roots[0]["name"] == "sweep.run"
    kids = children[roots[0]["span_id"]]
    assert [k["name"] for k in kids] == ["sweep.task"]
    rendered = ox.render_spans(snapshot["spans"])
    assert "sweep.run" in rendered and "sweep.task" in rendered


def test_orphan_spans_surface_as_extra_roots():
    spans = [
        {"name": "lost", "span_id": "a-1", "parent_id": "gone",
         "pid": 1, "start_s": 2.0, "wall_s": 0.1, "status": "ok",
         "labels": {}},
        {"name": "root", "span_id": "a-2", "parent_id": None,
         "pid": 1, "start_s": 1.0, "wall_s": 0.2, "status": "ok",
         "labels": {}},
    ]
    roots, _ = ox.span_tree(spans)
    assert [r["name"] for r in roots] == ["root", "lost"]


def test_chrome_export_is_a_trace_event_object():
    snapshot = _snapshot_with_activity()
    trace = ox.spans_to_chrome(snapshot)
    assert trace["otherData"]["trace_id"] == snapshot["trace_id"]
    slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert {s["name"] for s in slices} == {"sweep.run", "sweep.task"}
    assert all(s["ts"] >= 0 and s["dur"] > 0 for s in slices)


# ---------------------------------------------------------------------------
# files, ledger record, CLI
# ---------------------------------------------------------------------------


def test_write_export_writes_all_three_formats(tmp_path):
    paths = ox.write_export(_snapshot_with_activity(), str(tmp_path))
    snapshot = json.loads((tmp_path / "telemetry.json").read_text())
    assert snapshot["schema"] == "repro.obs.v1"
    ox.parse_openmetrics((tmp_path / "telemetry.om").read_text())
    trace = json.loads((tmp_path / "telemetry.trace.json").read_text())
    assert "traceEvents" in trace
    assert set(paths) == {"json", "openmetrics", "chrome"}


def test_telemetry_record_summarizes_headline_metrics():
    record = ox.telemetry_record(_snapshot_with_activity(),
                                 config="jobs=2", export_path="x.json")
    assert record["kind"] == "telemetry"
    assert record["data"]["cache"]["hits"] == 3.0
    assert record["data"]["cache"]["misses"] == 1.0
    assert record["data"]["fastpath"]["blocks_compiled"] == 5.0
    assert record["data"]["task_wall_s"]["count"] == 3
    assert record["data"]["task_wall_s"]["p50"] == pytest.approx(0.2)
    assert record["data"]["span_roots"] == 1
    assert record["data"]["export"] == "x.json"
    assert record["wall_s"] > 0.0


def test_report_cli_prints_summary_and_exports(tmp_path, capsys):
    snap_path = tmp_path / "telemetry.json"
    snap_path.write_text(json.dumps(_snapshot_with_activity()))
    om_path = tmp_path / "out.om"
    chrome_path = tmp_path / "out.trace.json"
    rc = obs_main(["report", str(snap_path), "--spans", "--metrics",
                   "--openmetrics", str(om_path),
                   "--chrome", str(chrome_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "1 root(s)" in out
    assert "sweep.task" in out                  # span tree
    assert "sweep_cache_hits" in out            # metric table
    ox.parse_openmetrics(om_path.read_text())
    assert "traceEvents" in json.loads(chrome_path.read_text())


def test_report_cli_rejects_unknown_schema(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "nope"}')
    with pytest.raises(SystemExit):
        obs_main(["report", str(bad)])
