"""The span model and the null-guard contract of repro.obs."""

import os

from repro import obs
from repro.obs.core import Telemetry
from repro.trace.metrics import MetricsRegistry


# ---------------------------------------------------------------------------
# disabled by default (the null guard)
# ---------------------------------------------------------------------------


def test_disabled_by_default():
    assert obs.get() is None
    assert not obs.enabled()
    assert obs.propagation_context() is None
    assert obs.counter("anything") is None
    assert obs.drain() is None


def test_disabled_span_is_the_shared_noop():
    span = obs.span("x", label="y")
    assert span is obs.NULL_SPAN
    with span as inner:
        assert inner is obs.NULL_SPAN
    # every protocol method is a no-op returning the singleton
    assert span.start().annotate(a="b").finish() is obs.NULL_SPAN


def test_enable_disable_round_trip():
    tel = obs.enable()
    assert obs.get() is tel
    assert obs.enable() is tel          # idempotent
    snapshot = obs.disable()
    assert obs.get() is None
    assert snapshot["schema"] == "repro.obs.v1"
    assert snapshot["trace_id"] == tel.trace_id
    assert obs.disable() is None        # second disable: nothing left


# ---------------------------------------------------------------------------
# span nesting and context propagation
# ---------------------------------------------------------------------------


def test_spans_nest_through_the_context():
    obs.enable()
    with obs.span("outer") as outer:
        assert obs.current_span_id() == outer.span_id
        with obs.span("inner") as inner:
            assert inner.parent_id == outer.span_id
        assert obs.current_span_id() == outer.span_id
    assert obs.current_span_id() is None
    spans = obs.disable()["spans"]
    assert [s["name"] for s in spans] == ["inner", "outer"]
    by_name = {s["name"]: s for s in spans}
    assert by_name["outer"]["parent_id"] is None
    assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]


def test_span_records_wall_time_status_and_labels():
    obs.enable()
    with obs.span("op", artifact="7.3"):
        pass
    try:
        with obs.span("bad"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    spans = {s["name"]: s for s in obs.disable()["spans"]}
    assert spans["op"]["status"] == "ok"
    assert spans["op"]["labels"] == {"artifact": "7.3"}
    assert spans["op"]["wall_s"] >= 0.0
    assert spans["op"]["pid"] == os.getpid()
    assert spans["bad"]["status"] == "error"


def test_manual_begin_does_not_activate_by_default():
    tel = obs.enable()
    span = tel.begin("pool.slot", attempt="1")
    assert obs.current_span_id() is None     # caller context untouched
    span.finish("ok")
    span.finish("error")                     # double finish is a no-op
    (recorded,) = obs.disable()["spans"]
    assert recorded["status"] == "ok"


def test_emit_records_after_the_fact():
    tel = obs.enable()
    tel.emit("cache.hit", wall_s=0.25, artifact="t_7_3")
    (span,) = obs.disable()["spans"]
    assert span["wall_s"] == 0.25
    assert span["status"] == "ok"
    assert span["labels"]["artifact"] == "t_7_3"


# ---------------------------------------------------------------------------
# cross-process plumbing (simulated in-process with two Telemetry objects)
# ---------------------------------------------------------------------------


def test_propagation_context_carries_the_active_span():
    tel = obs.enable()
    with obs.span("root") as root:
        ctx = tel.propagation_context()
        assert ctx == {"trace_id": tel.trace_id,
                       "parent_id": root.span_id}
    obs.disable()


def test_activate_from_joins_the_parent_trace():
    parent = Telemetry()
    task = parent.begin("sweep.task")
    ctx = {"trace_id": parent.trace_id, "parent_id": task.span_id}

    child = obs.activate_from(ctx)
    assert child.trace_id == parent.trace_id
    with obs.span("worker"):
        pass
    snapshot = obs.drain()
    assert obs.get() is None
    (worker,) = snapshot["spans"]
    assert worker["parent_id"] == task.span_id
    assert worker["trace_id"] == parent.trace_id

    task.finish()
    parent.merge(snapshot)
    assert [s["name"] for s in parent.spans] == ["sweep.task", "worker"]


def test_merge_sums_same_labeled_counter_from_two_workers():
    parent = Telemetry()
    parent.counter("events", worker="shared").inc(1)
    for _ in range(2):
        worker = Telemetry(trace_id=parent.trace_id)
        worker.counter("events", worker="shared").inc(3)
        worker.histogram("latency_s").observe(0.5)
        parent.merge(worker.snapshot())
    assert parent.counter("events", worker="shared").value == 7
    assert parent.histogram("latency_s").count == 2
    assert parent.merged_snapshots == 2


def test_merge_none_and_empty_are_harmless():
    parent = Telemetry()
    parent.merge(None)
    parent.merge({})
    assert parent.spans == [] and parent.merged_snapshots == 0


# ---------------------------------------------------------------------------
# registry state round trip (the merge substrate)
# ---------------------------------------------------------------------------


def test_registry_state_dict_round_trips_losslessly():
    a = MetricsRegistry()
    a.counter("c", k="v").inc(2)
    a.gauge("g").set(1.5)
    a.series("s").append(1, 2.0)
    a.histogram("h").observe(0.25)
    b = MetricsRegistry()
    b.merge_state(a.state_dict())
    assert b.state_dict() == a.state_dict()
    # histograms pool raw observations, not summaries
    b.merge_state(a.state_dict())
    assert b.histogram("h").values == [0.25, 0.25]
