"""Telemetry-off overhead guard for the fast path (satellite: ISSUE 8).

Mirrors the PR 2 stripped-replica guard (``tests/trace/test_overhead``):
the obs instrumentation contract is ``tel = obs.get()`` plus
``if tel is not None:`` blocks (and the always-on ``RUNTIME_STATS``
cold-path counters).  This test reconstructs the pre-telemetry fast
path by stripping exactly those lines from the live source of
``Fastpath._compile_at`` and ``Pete._run_fast``, verifies the replica
is cycle-exact, then checks instrumented warm fast-path throughput
(instruction-weighted, Table 7.1 GF(p) subset, obs disabled) stays
within 5% of the replica.
"""

import inspect
import textwrap
import time
import types

from repro.pete import cpu as cpu_module
from repro.pete import fastpath as fastpath_module
from repro.pete.cpu import Pete
from repro.pete.fastpath import Fastpath

#: acceptance bound: <= 5% overhead with telemetry off
OVERHEAD_BOUND = 1.05

#: Table 7.1 GF(p) kernel subset (same as benchmarks/bench_fastpath.py)
KERNELS = (
    ("mp_add", 8), ("mp_sub", 8), ("os_mul", 8),
    ("ps_mul_ext", 8), ("ps_sqr_ext", 8), ("red_p192", 6),
)
TRIALS = 4
INNER = 6

#: single statements the telemetry PR added to the fast path
_STRIP_LINES = ("tel = obs.get()", "t0 = time.perf_counter()",
                "RUNTIME_STATS[")
#: guarded blocks the telemetry PR added (body stripped with them)
_STRIP_BLOCKS = ("if tel is not None:",
                 "if self.tracer is not None or self.trace_enabled:")


def _stripped(method, module):
    """The method with every telemetry line/block (and nothing else)
    removed, compiled in its defining module's namespace."""
    src = textwrap.dedent(inspect.getsource(method))
    out: list[str] = []
    skip_indent = None
    for line in src.splitlines():
        stripped = line.strip()
        indent = len(line) - len(line.lstrip())
        if skip_indent is not None:
            # blank lines inside a guarded block carry no indent;
            # keep skipping until a non-blank line dedents past the if
            if not stripped or indent > skip_indent:
                continue
            skip_indent = None
        if any(stripped.startswith(b) for b in _STRIP_BLOCKS):
            skip_indent = indent
            continue
        if any(stripped.startswith(s) for s in _STRIP_LINES):
            continue
        out.append(line)
    namespace: dict = {}
    exec(compile("\n".join(out), f"<stripped {method.__name__}>", "exec"),
         vars(module), namespace)
    fn = namespace[method.__name__]
    _STRIPPED_SOURCES[method.__name__] = "\n".join(out)
    return fn


_STRIPPED_SOURCES: dict = {}


class StrippedFastpath(Fastpath):
    """Faithful replica of the pre-telemetry block compiler."""

    _compile_at = _stripped(Fastpath._compile_at, fastpath_module)


_stripped_run_fast = _stripped(Pete._run_fast, cpu_module)


def _stripped_source_is_really_different():
    live = (inspect.getsource(Fastpath._compile_at)
            + inspect.getsource(Pete._run_fast))
    replica = "".join(_STRIPPED_SOURCES.values())
    return ("obs.get" in live and "note_deopt" in live
            and "obs.get" not in replica and "note_deopt" not in replica
            and "RUNTIME_STATS" not in replica)


def _fresh(cpu, stripped: bool):
    clone = cpu.clone()
    if stripped:
        clone.fastpath = StrippedFastpath(clone)
        clone._run_fast = types.MethodType(_stripped_run_fast, clone)
    return clone


def _run_fast(cpu, entry, stripped: bool):
    return _fresh(cpu, stripped).run(entry, fast=True)


def _time_warm(cpu, entry, stripped: bool) -> float:
    """Best per-run wall-clock over TRIALS batches of INNER clones."""
    best = float("inf")
    for _ in range(TRIALS):
        clones = [_fresh(cpu, stripped) for _ in range(INNER)]
        t0 = time.perf_counter()
        for clone in clones:
            clone.run(entry, fast=True)
        best = min(best, (time.perf_counter() - t0) / INNER)
    return best


def _prepared():
    from repro.kernels.runner import KernelRunner

    runner = KernelRunner(cache={})
    return [(name, k, *runner.prepare(name, k)) for name, k in KERNELS]


def test_stripping_removed_the_instrumentation():
    assert _stripped_source_is_really_different()


def test_stripped_replica_is_cycle_exact():
    for name, k, cpu, entry in _prepared():
        fastpath_module._CODE_CACHE.clear()
        fastpath_module._BLOCK_MAPS.clear()
        stripped = _run_fast(cpu, entry, stripped=True)
        fastpath_module._CODE_CACHE.clear()
        fastpath_module._BLOCK_MAPS.clear()
        instrumented = _run_fast(cpu, entry, stripped=False)
        assert stripped == instrumented, f"{name}:{k} diverged"


def test_obs_disabled_overhead_within_bound():
    prepared = _prepared()
    # warm the shared block maps so both variants hit compiled closures
    for _, _, cpu, entry in prepared:
        _run_fast(cpu, entry, stripped=False)
        _run_fast(cpu, entry, stripped=True)

    # interleave and retry whole attempts (PR 2 pattern) so transient
    # machine load cannot fail a near-zero expected overhead
    weighted = float("inf")
    for _attempt in range(3):
        total_instr = 0
        acc = 0.0
        for name, k, cpu, entry in prepared:
            base = _time_warm(cpu, entry, stripped=True)
            instrumented = _time_warm(cpu, entry, stripped=False)
            instr = _run_fast(cpu, entry, stripped=False).instructions
            total_instr += instr
            acc += instr * (instrumented / base)
        weighted = min(weighted, acc / total_instr)
        if weighted <= OVERHEAD_BOUND:
            break
    assert weighted <= OVERHEAD_BOUND, (
        f"obs-disabled fast-path overhead {weighted:.3f}x exceeds "
        f"{OVERHEAD_BOUND}x (instruction-weighted, GF(p) subset)")
