"""Property-based ECDSA tests (hypothesis)."""

import hashlib

from hypothesis import given, settings, strategies as st

from repro.ec.curves import get_curve
from repro.ecdsa import (
    Signature,
    generate_keypair,
    sign_digest,
    verify_digest,
)

_CURVE = get_curve("P-192")
_KEY, _PUBLIC = generate_keypair(_CURVE, seed=b"property")


@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=0, max_size=64))
def test_any_message_round_trips(message):
    digest = hashlib.sha256(message).digest()
    sig = sign_digest(_CURVE, _KEY, digest)
    assert verify_digest(_CURVE, _PUBLIC, digest, sig)


@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=1, max_size=32), st.integers(0, 255),
       st.integers(0, 23))
def test_any_single_byte_corruption_rejected(message, new_byte, position):
    """Corruption within the *used* digest bits must be rejected.

    P-192 takes only the leftmost 192 bits (24 bytes) of the SHA-256
    digest (FIPS 186 truncation), so positions 24-31 are architecturally
    invisible -- the property holds exactly on bytes 0-23.
    """
    digest = hashlib.sha256(message).digest()
    sig = sign_digest(_CURVE, _KEY, digest)
    corrupted = bytearray(digest)
    if corrupted[position] == new_byte:
        new_byte ^= 0xFF
    corrupted[position] = new_byte
    assert not verify_digest(_CURVE, _PUBLIC, bytes(corrupted), sig)


def test_digest_tail_beyond_order_is_ignored():
    """The flip side of the property above, pinned explicitly."""
    digest = hashlib.sha256(b"truncation").digest()
    sig = sign_digest(_CURVE, _KEY, digest)
    tail_corrupted = digest[:24] + bytes(8)
    assert verify_digest(_CURVE, _PUBLIC, tail_corrupted, sig)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=_CURVE.n - 1))
def test_any_nonce_yields_valid_signature(nonce):
    digest = hashlib.sha256(b"nonce property").digest()
    sig = sign_digest(_CURVE, _KEY, digest, k=nonce)
    assert 1 <= sig.r < _CURVE.n
    assert 1 <= sig.s < _CURVE.n
    assert verify_digest(_CURVE, _PUBLIC, digest, sig)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=(1 << 192) - 1))
def test_random_signature_pairs_rejected(value):
    """Forged (r, s) pairs have negligible acceptance probability."""
    digest = hashlib.sha256(b"forgery target").digest()
    fake = Signature(value % _CURVE.n or 1, (value * 7) % _CURVE.n or 1)
    real = sign_digest(_CURVE, _KEY, digest)
    if fake != real:
        assert not verify_digest(_CURVE, _PUBLIC, digest, fake)
