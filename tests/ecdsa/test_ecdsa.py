"""ECDSA: round trips, tamper rejection, determinism, edge cases."""

import hashlib

import pytest

from repro.ec.curves import CURVES, get_curve
from repro.ec.point import AffinePoint, INFINITY
from repro.ecdsa import (
    Signature,
    deterministic_nonce,
    generate_keypair,
    sign,
    sign_digest,
    verify,
    verify_digest,
)

MESSAGE = b"the design space of ultra-low energy asymmetric cryptography"


@pytest.mark.parametrize("name", CURVES)
def test_sign_verify_round_trip(name):
    curve = get_curve(name)
    d, public = generate_keypair(curve)
    sig = sign(curve, d, MESSAGE)
    assert verify(curve, public, MESSAGE, sig)


@pytest.mark.parametrize("name", ["P-192", "B-163"])
def test_tampering_detected(name):
    curve = get_curve(name)
    d, public = generate_keypair(curve)
    sig = sign(curve, d, MESSAGE)
    assert not verify(curve, public, MESSAGE + b"!", sig)
    assert not verify(curve, public, MESSAGE, Signature(sig.r, sig.s ^ 1))
    assert not verify(curve, public, MESSAGE, Signature(sig.r ^ 1, sig.s))


def test_wrong_key_rejected():
    curve = get_curve("P-192")
    d1, _ = generate_keypair(curve, seed=b"alice")
    _, pub2 = generate_keypair(curve, seed=b"bob")
    sig = sign(curve, d1, MESSAGE)
    assert not verify(curve, pub2, MESSAGE, sig)


def test_signature_bounds_checked():
    curve = get_curve("P-192")
    _, public = generate_keypair(curve)
    assert not verify(curve, public, MESSAGE, Signature(0, 1))
    assert not verify(curve, public, MESSAGE, Signature(1, 0))
    assert not verify(curve, public, MESSAGE, Signature(curve.n, 1))
    assert not verify(curve, public, MESSAGE, Signature(1, curve.n))


def test_bogus_public_key_rejected():
    curve = get_curve("P-192")
    d, _ = generate_keypair(curve)
    sig = sign(curve, d, MESSAGE)
    assert not verify(curve, AffinePoint(123, 456), MESSAGE, sig)
    assert not verify(curve, INFINITY, MESSAGE, sig)


def test_deterministic_signatures():
    curve = get_curve("P-256")
    d, _ = generate_keypair(curve)
    assert sign(curve, d, MESSAGE) == sign(curve, d, MESSAGE)
    assert sign(curve, d, MESSAGE) != sign(curve, d, MESSAGE + b"x")


def test_rfc6979_p256_known_vector():
    """RFC 6979 A.2.5, P-256 + SHA-256, message 'sample'."""
    q = get_curve("P-256").n
    x = 0xC9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721
    digest = hashlib.sha256(b"sample").digest()
    k = deterministic_nonce(digest, x, q)
    assert k == 0xA6E3C57DD01ABE90086538398355DD4C3B17AA873382B0F24D6129493D8AAD60


def test_explicit_nonce():
    curve = get_curve("P-192")
    d, public = generate_keypair(curve)
    digest = hashlib.sha256(MESSAGE).digest()
    sig1 = sign_digest(curve, d, digest, k=12345)
    sig2 = sign_digest(curve, d, digest, k=12345)
    assert sig1 == sig2
    assert verify_digest(curve, public, digest, sig1)
    sig3 = sign_digest(curve, d, digest, k=54321)
    assert sig3 != sig1


def test_keypair_determinism_and_range():
    curve = get_curve("P-192")
    d1, q1 = generate_keypair(curve, seed=b"seed-a")
    d2, q2 = generate_keypair(curve, seed=b"seed-a")
    d3, _ = generate_keypair(curve, seed=b"seed-b")
    assert (d1, q1) == (d2, q2)
    assert d1 != d3
    assert 1 <= d1 < curve.n
    assert curve.contains(q1)


def test_digest_wider_than_order_truncated():
    """B-163's order is shorter than a SHA-512 digest; leftmost bits."""
    curve = get_curve("B-163")
    d, public = generate_keypair(curve)
    digest = hashlib.sha512(MESSAGE).digest()
    sig = sign_digest(curve, d, digest)
    assert verify_digest(curve, public, digest, sig)


def test_operation_counters_populated():
    curve = get_curve("P-192")
    d, public = generate_keypair(curve)
    curve.reset_counters()
    sig = sign(curve, d, MESSAGE)
    assert curve.order_counter["oinv"] == 1, "one k^-1 per signature"
    assert curve.field.counter["fmul"] > 500
    curve.reset_counters()
    assert verify(curve, public, MESSAGE, sig)
    assert curve.order_counter["oinv"] == 1, "one s^-1 per verification"
    curve.reset_counters()
