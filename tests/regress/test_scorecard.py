"""Fidelity scorecard: reconciles exactly with the compare gate."""

import pytest

from repro.harness.compare import run_report
from repro.regress.ledger import Ledger
from repro.regress.scorecard import render_scorecard, scorecard_record


@pytest.fixture(scope="module")
def record():
    return scorecard_record()


def test_scorecard_reconciles_with_compare_verdicts(record):
    """Acceptance: same pass/fail counts as harness/compare on this run."""
    passed, failed = run_report(verbose=False)
    assert record["data"]["passed"] == passed
    assert record["data"]["failed"] == failed


def test_scorecard_rows_cover_all_tracked_quantities(record):
    rows = record["data"]["rows"]
    assert len(rows) == record["data"]["passed"] + record["data"]["failed"]
    types = {r["type"] for r in rows}
    assert types == {"ratio", "band"}
    names = {r["name"] for r in rows}
    assert any("P-192/baseline/sign" in n for n in names)
    assert any(n.startswith("FFAU") for n in names)
    assert any(n.startswith("Monte factor") for n in names)
    for row in rows:
        assert isinstance(row["ok"], bool)
        if row["type"] == "band":
            assert row["low"] < row["high"]


def test_scorecard_is_a_ledger_record(record, tmp_path):
    assert record["kind"] == "scorecard"
    assert record["artifact"] == "fidelity-scorecard"
    ledger = Ledger(tmp_path)
    ledger.append(record)
    (loaded,) = ledger.read("scorecard")
    assert loaded["data"]["passed"] == record["data"]["passed"]


def test_render_lists_every_row(record):
    text = render_scorecard(record)
    assert "fidelity scorecard" in text
    assert text.count("\n") == len(record["data"]["rows"])
    assert "in [" in text and "(tol" in text
