"""Differential engine: ranked deltas, new/vanished symbols, CLI."""

import json

from repro.kernels.runner import KernelRunner
from repro.regress.diff import (
    Delta,
    diff_components,
    diff_ledgers,
    diff_records,
    diff_symbols,
    render_diff,
)
from repro.regress.ledger import NullLedger
from repro.trace.record import bench_record


def _record(artifact="os_mul", cycles=100, energy_uj=1.0,
            components=None, symbols=None):
    return bench_record(artifact, cycles=cycles, energy_uj=energy_uj,
                        components=components, symbols=symbols)


def _sym(name, cycles, stalls=0, uj=0.0, instructions=0):
    return {"symbol": name, "cycles": cycles, "instructions": instructions,
            "stall_cycles": stalls, "uj": uj}


def test_delta_pct_and_zero_guard():
    d = Delta("cycles", 100, 150)
    assert d.delta == 50 and d.pct == 50.0
    assert Delta("x", 0, 5).pct is None
    assert "new" in Delta("x", 0, 5).render()


def test_components_ranked_by_absolute_contribution():
    a = _record(components={"Pete": 1.0, "RAM": 2.0, "ROM": 3.0})
    b = _record(components={"Pete": 1.1, "RAM": 4.0, "ROM": 2.5})
    deltas = diff_components(a, b)
    assert [d.name for d in deltas] == ["RAM", "ROM", "Pete"]
    assert deltas[0].delta == 2.0


def test_symbols_changed_new_vanished():
    a = _record(symbols=[_sym("hot", 100, uj=1.0), _sym("gone", 50),
                         _sym("same", 10)])
    b = _record(symbols=[_sym("hot", 400, stalls=8, uj=2.5),
                         _sym("fresh", 30), _sym("same", 10)])
    diff = diff_symbols(a, b)
    assert [r["symbol"] for r in diff.changed] == ["hot"]
    assert diff.changed[0]["cycles"] == 300
    assert diff.changed[0]["stall_cycles"] == 8
    assert [r["symbol"] for r in diff.new] == ["fresh"]
    assert [r["symbol"] for r in diff.vanished] == ["gone"]


def test_record_diff_and_render():
    a = _record(cycles=100, energy_uj=1.0,
                components={"Pete": 0.6}, symbols=[_sym("loop", 90)])
    b = _record(cycles=150, energy_uj=1.5,
                components={"Pete": 0.9}, symbols=[_sym("loop", 140)])
    diff = diff_records(a, b)
    assert not diff.empty
    text = render_diff(diff, a, b)
    assert "os_mul" in text
    assert "cycles" in text and "+50.0%" in text
    assert "loop" in text and "Pete" in text


def test_identical_records_diff_empty():
    a = _record()
    diff = diff_records(a, dict(a))
    assert diff.empty
    assert "(no change)" in render_diff(diff)


def test_diff_ledgers_matches_latest_per_artifact():
    a = [_record("t1", cycles=10), _record("t1", cycles=20),
         _record("only_a")]
    b = [_record("t1", cycles=30), _record("only_b")]
    diffs, only_a, only_b = diff_ledgers(a, b)
    assert [d.artifact for d in diffs] == ["t1"]
    # latest record (cycles=20) is the comparison base, not the first
    assert diffs[0].scalars[0].before == 20
    assert only_a == ["only_a"] and only_b == ["only_b"]


def test_profiler_dumps_are_diffable():
    runner = KernelRunner(ledger=NullLedger())
    prof_a, _ = runner.profile("mp_add", 2)
    prof_b, _ = runner.profile("mp_add", 4)
    a = prof_a.to_record("kernel:mp_add", config="k=2")
    b = prof_b.to_record("kernel:mp_add", config="k=4")
    diff = diff_records(a, b)
    assert diff.scalars[0].name == "cycles"
    assert diff.scalars[0].delta > 0
    assert diff.symbols.changed, "loop symbols must show cycle deltas"
    assert any(d.name == "attributed" or d.name for d in diff.components)


def test_cli_diff_two_records(tmp_path, capsys):
    from repro.regress.__main__ import main

    pa = tmp_path / "a.json"
    pb = tmp_path / "b.json"
    pa.write_text(json.dumps(_record(cycles=100)))
    pb.write_text(json.dumps(_record(cycles=250)))
    assert main(["diff", str(pa), str(pb)]) == 0
    out = capsys.readouterr().out
    assert "os_mul" in out and "+150.0%" in out
