"""Append-only run ledger: sharding, reading, env gating, emitters."""

import json

from repro.kernels.runner import KernelRunner
from repro.regress.ledger import (
    Ledger,
    NullLedger,
    default_ledger,
    load_any,
)
from repro.trace.record import SCHEMA, SCHEMA_V1, bench_record


def test_append_read_roundtrip(tmp_path):
    ledger = Ledger(tmp_path)
    ledger.append(bench_record("a", cycles=1))
    ledger.append(bench_record("b", cycles=2))
    records = ledger.read("bench")
    assert [r["artifact"] for r in records] == ["a", "b"]
    assert all(r["schema"] == SCHEMA for r in records)


def test_kinds_shard_into_separate_files(tmp_path):
    ledger = Ledger(tmp_path)
    ledger.append(bench_record("a"))
    ledger.append(bench_record("fidelity", kind="scorecard"))
    assert (tmp_path / "bench.jsonl").exists()
    assert (tmp_path / "scorecard.jsonl").exists()
    assert len(ledger.read("bench")) == 1
    assert len(ledger.read("scorecard")) == 1


def test_latest_picks_most_recent(tmp_path):
    ledger = Ledger(tmp_path)
    ledger.append(bench_record("a", cycles=1))
    ledger.append(bench_record("a", cycles=9))
    assert ledger.latest("a")["cycles"] == 9
    assert ledger.latest("missing") is None
    assert ledger.latest_by_artifact()["a"]["cycles"] == 9


def test_reader_upgrades_v1_lines_and_skips_blanks(tmp_path):
    v1 = {"schema": SCHEMA_V1, "artifact": "old", "config": "",
          "cycles": 7, "energy_uj": 0.0, "wall_s": 0.0, "data": {},
          "git_sha": "deadbeef", "timestamp": "t"}
    (tmp_path / "bench.jsonl").write_text(
        json.dumps(v1) + "\n\n" + json.dumps(bench_record("new")) + "\n")
    records = Ledger(tmp_path).read("bench")
    assert len(records) == 2
    old = records[0]
    assert old["schema"] == SCHEMA
    assert old["git_dirty"] is None
    assert old["kind"] == "bench"
    assert old["components"] == {} and old["symbols"] == []


def test_default_ledger_env_gating(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
    monkeypatch.delenv("REPRO_LEDGER", raising=False)
    assert isinstance(default_ledger(), NullLedger)
    monkeypatch.setenv("REPRO_LEDGER", "0")
    assert isinstance(default_ledger(), NullLedger)
    monkeypatch.setenv("REPRO_LEDGER", "1")
    assert isinstance(default_ledger(), Ledger)
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path))
    ledger = default_ledger()
    assert isinstance(ledger, Ledger)
    assert ledger.directory == str(tmp_path)


def test_null_ledger_is_inert(tmp_path):
    null = NullLedger()
    assert null.append(bench_record("x")) is None
    assert null.read() == [] and null.latest("x") is None


def test_load_any_single_record_and_shard(tmp_path):
    record = bench_record("one", cycles=3)
    single = tmp_path / "BENCH_one.json"
    single.write_text(json.dumps(record))
    assert load_any(str(single))[0]["cycles"] == 3
    ledger = Ledger(tmp_path)
    ledger.append(bench_record("a"))
    ledger.append(bench_record("b"))
    assert len(load_any(str(tmp_path / "bench.jsonl"))) == 2


def test_kernel_runner_appends_once_per_measurement(tmp_path):
    ledger = Ledger(tmp_path)
    runner = KernelRunner(ledger=ledger)
    runner.measure("mp_add", 2)
    runner.measure("mp_add", 2)  # cached: no second record
    runner.measure("mp_add", 3)
    records = ledger.read("bench")
    assert [r["artifact"] for r in records] == ["kernel:mp_add"] * 2
    assert [r["config"] for r in records] == ["k=2", "k=3"]
    assert records[0]["cycles"] > 0
    assert records[0]["data"]["instructions"] > 0


def test_kernel_runner_defaults_to_null_ledger(monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
    monkeypatch.delenv("REPRO_LEDGER", raising=False)
    assert isinstance(KernelRunner().ledger, NullLedger)
