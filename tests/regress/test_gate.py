"""Baseline snapshot + regression gate."""

import dataclasses

import pytest

from repro.kernels.runner import shared_runner
from repro.regress import gate
from repro.regress.__main__ import main


@pytest.fixture(scope="module")
def smoke_baseline():
    return gate.make_baseline(smoke=True)


def test_baseline_covers_kernels_and_model(smoke_baseline):
    names = smoke_baseline["quantities"]
    assert "kernel/os_mul:8/cycles" in names
    assert "model/P-192:baseline/sign_cycles" in names
    assert "model/P-192:monte/energy_uj" in names
    assert any(n.startswith("model/P-192:baseline/component:")
               for n in names)
    # cycle counts gate exactly; energies allow a float epsilon
    assert names["kernel/os_mul:8/cycles"]["tolerance"] == 0.0
    assert 0 < names["model/P-192:baseline/energy_uj"]["tolerance"] < 1e-3


def test_gate_passes_against_own_tree(smoke_baseline):
    measured = gate.measure_quantities(smoke=True)
    assert gate.check(smoke_baseline, measured) == []
    report = gate.render_report(smoke_baseline, measured, [])
    assert "no regressions" in report


def test_gate_names_an_artificially_slowed_kernel(smoke_baseline):
    class SlowRunner:
        """Wraps the real runner; os_mul takes twice the cycles."""

        def measure(self, name, k, trials=3):
            result = shared_runner().measure(name, k, trials)
            if name == "os_mul":
                result = dataclasses.replace(result,
                                             cycles=2 * result.cycles)
            return result

    measured = gate.measure_quantities(smoke=True, runner=SlowRunner())
    failures = gate.check(smoke_baseline, measured)
    names = [f.name for f in failures]
    assert names == ["kernel/os_mul:8/cycles"]
    report = gate.render_report(smoke_baseline, measured, failures)
    assert "FAIL kernel/os_mul:8/cycles" in report
    assert "+100.00%" in report
    assert "make baseline" in report


def test_gate_flags_vanished_quantity(smoke_baseline):
    measured = gate.measure_quantities(smoke=True)
    measured["kernel/os_mul:8/cycles"] = None
    failures = gate.check(smoke_baseline, measured)
    assert [f.name for f in failures] == ["kernel/os_mul:8/cycles"]
    assert "no longer measurable" in failures[0].render()


def test_smoke_measurement_gates_against_full_baseline(smoke_baseline):
    # a full baseline contains strictly more quantities; smoke runs
    # compare only the overlap
    measured = gate.measure_quantities(smoke=True)
    extra = dict(smoke_baseline)
    extra["quantities"] = dict(smoke_baseline["quantities"])
    extra["quantities"]["kernel/bsqr_ext:6/cycles"] = {
        "value": 123.0, "tolerance": 0.0}
    assert gate.check(extra, measured) == []


def test_cli_gate_exit_status_and_report(tmp_path, smoke_baseline, capsys):
    # tampering with the committed baseline is equivalent to the working
    # tree having slowed down relative to it
    tampered = dict(smoke_baseline)
    tampered["quantities"] = {
        name: dict(entry)
        for name, entry in smoke_baseline["quantities"].items()}
    tampered["quantities"]["kernel/os_mul:8/cycles"]["value"] *= 0.5
    path = gate.write_baseline(tampered, str(tmp_path / "BASELINE.json"))
    report_path = tmp_path / "report.txt"
    rc = main(["gate", "--smoke", "--baseline", path, "--no-ledger",
               "--report", str(report_path)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "kernel/os_mul:8/cycles" in out
    assert "kernel/os_mul:8/cycles" in report_path.read_text()

    # untampered baseline passes and appends a gate record
    clean = gate.write_baseline(smoke_baseline,
                                str(tmp_path / "CLEAN.json"))
    rc = main(["gate", "--smoke", "--baseline", clean,
               "--ledger", str(tmp_path / "ledger")])
    assert rc == 0
    from repro.regress.ledger import Ledger

    records = Ledger(tmp_path / "ledger").read("gate")
    assert len(records) == 1
    assert records[0]["data"]["failed"] == 0
    assert records[0]["data"]["checked"] > 0


def test_cli_gate_missing_baseline(tmp_path, capsys):
    rc = main(["gate", "--baseline", str(tmp_path / "absent.json"),
               "--no-ledger"])
    assert rc == 2
    assert "make baseline" in capsys.readouterr().err


def test_baseline_refuses_unmeasurable_quantities():
    class BrokenRunner:
        def measure(self, name, k, trials=3):
            raise KeyError(name)

    with pytest.raises(RuntimeError, match="unmeasurable"):
        gate.make_baseline(smoke=True, runner=BrokenRunner())


def test_cli_baseline_roundtrip(tmp_path, capsys):
    path = tmp_path / "BASELINE.json"
    assert main(["baseline", "--smoke", "--baseline", str(path)]) == 0
    assert "quantities" in capsys.readouterr().out
    loaded = gate.load_baseline(str(path))
    assert loaded["schema"] == gate.BASELINE_SCHEMA
    assert loaded["quantities"]
