"""Binary squaring: the 8-bit table and the MULGF2 path."""

from hypothesis import given, settings, strategies as st

from repro.fields.inversion import _poly_sqr
from repro.mp.binary_sqr import (
    SQUARE_TABLE_8BIT,
    binary_square_clmul,
    binary_square_words,
)
from repro.mp.words import from_int, to_int


def test_table_contents():
    assert len(SQUARE_TABLE_8BIT) == 256
    assert SQUARE_TABLE_8BIT[0] == 0
    assert SQUARE_TABLE_8BIT[1] == 1
    assert SQUARE_TABLE_8BIT[0b11] == 0b101
    assert SQUARE_TABLE_8BIT[0xFF] == 0b0101010101010101
    for byte, square in enumerate(SQUARE_TABLE_8BIT):
        assert square == _poly_sqr(byte)


def test_square_words_paths_agree(rng):
    for k in (6, 9, 18):
        for _ in range(10):
            a = rng.getrandbits(32 * k)
            aw = from_int(a, k)
            expected = _poly_sqr(a)
            assert to_int(binary_square_words(aw)) == expected
            assert to_int(binary_square_clmul(aw)) == expected


def test_square_result_length():
    aw = from_int((1 << 192) - 1, 6)
    assert len(binary_square_words(aw)) == 12
    assert len(binary_square_clmul(aw)) == 12


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 192) - 1))
def test_square_property(a):
    aw = from_int(a, 6)
    assert to_int(binary_square_words(aw)) == _poly_sqr(a)
