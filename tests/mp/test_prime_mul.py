"""Multi-precision integer multiplication algorithms (Algorithms 2/3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mp.prime_mul import (
    MulTrace,
    karatsuba_word_mul,
    operand_scanning_mul,
    product_scanning_mul,
    product_scanning_sqr,
    school_book_word_mul,
)
from repro.mp.words import from_int, to_int


@pytest.mark.parametrize("k,w", [(6, 32), (8, 32), (17, 32), (3, 64),
                                 (12, 16), (24, 8)])
def test_multiplication_algorithms_agree(k, w, rng):
    for _ in range(20):
        a = rng.getrandbits(k * w)
        b = rng.getrandbits(k * w)
        aw, bw = from_int(a, k, w), from_int(b, k, w)
        assert to_int(operand_scanning_mul(aw, bw, w), w) == a * b
        assert to_int(product_scanning_mul(aw, bw, w), w) == a * b
        assert to_int(product_scanning_sqr(aw, w), w) == a * a


def test_length_mismatch_raises():
    with pytest.raises(ValueError):
        operand_scanning_mul([1], [1, 2])
    with pytest.raises(ValueError):
        product_scanning_mul([1], [1, 2])


def test_boundary_values():
    k = 6
    top = from_int((1 << 192) - 1, k)
    zero = from_int(0, k)
    one = from_int(1, k)
    assert to_int(operand_scanning_mul(top, top)) == ((1 << 192) - 1) ** 2
    assert to_int(product_scanning_mul(top, one)) == (1 << 192) - 1
    assert to_int(operand_scanning_mul(zero, top)) == 0


def test_trace_counts_word_multiplies(rng):
    k = 6
    a = from_int(rng.getrandbits(192), k)
    b = from_int(rng.getrandbits(192), k)
    os_trace = MulTrace()
    operand_scanning_mul(a, b, trace=os_trace)
    ps_trace = MulTrace()
    product_scanning_mul(a, b, trace=ps_trace)
    assert os_trace.word_muls == k * k
    assert ps_trace.word_muls == k * k
    # product scanning stores one word per column: 2k writes
    assert ps_trace.mem_writes == 2 * k
    # operand scanning rewrites the partial product every outer pass
    assert os_trace.mem_writes > ps_trace.mem_writes


def test_squaring_trace_uses_fewer_multiplies(rng):
    k = 8
    a = from_int(rng.getrandbits(256), k)
    sqr_trace = MulTrace()
    product_scanning_sqr(a, trace=sqr_trace)
    assert sqr_trace.word_muls == k * (k + 1) // 2


def test_karatsuba_word_mul(rng):
    for _ in range(200):
        a = rng.getrandbits(32)
        b = rng.getrandbits(32)
        hi, lo = karatsuba_word_mul(a, b)
        assert (hi << 32) | lo == a * b
        assert karatsuba_word_mul(a, b) == school_book_word_mul(a, b)
    # corner cases exercising the signed middle term
    for a, b in [(0, 0), (0xFFFFFFFF, 0xFFFFFFFF), (0xFFFF0000, 0x0000FFFF),
                 (0x00010000, 0x00010000), (1, 0xFFFFFFFF)]:
        hi, lo = karatsuba_word_mul(a, b)
        assert (hi << 32) | lo == a * b


def test_karatsuba_other_widths(rng):
    for w in (8, 16, 64):
        for _ in range(50):
            a = rng.getrandbits(w)
            b = rng.getrandbits(w)
            hi, lo = karatsuba_word_mul(a, b, w)
            assert (hi << w) | lo == a * b


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 192) - 1),
       st.integers(min_value=0, max_value=(1 << 192) - 1))
def test_scanning_equivalence_property(a, b):
    aw, bw = from_int(a, 6), from_int(b, 6)
    assert operand_scanning_mul(aw, bw) == product_scanning_mul(aw, bw)
