"""Word-level NIST reductions and the fold-cost model."""

import pytest

from repro.fields.inversion import _poly_mul
from repro.fields.nist import NIST_BINARY_POLYS, NIST_PRIMES, reduce_binary
from repro.mp.reduce import (
    reduce_b163_words,
    reduce_words_binary,
    reduce_words_prime,
    reduction_fold_ops,
)
from repro.mp.words import from_int, to_int


@pytest.mark.parametrize("bits", sorted(NIST_PRIMES))
def test_reduce_words_prime(bits, rng):
    p = NIST_PRIMES[bits]
    k = -(-bits // 32)
    for _ in range(20):
        a, b = rng.randrange(p), rng.randrange(p)
        product = from_int(a * b, 2 * k)
        assert to_int(reduce_words_prime(product, bits)) == (a * b) % p


@pytest.mark.parametrize("m", sorted(NIST_BINARY_POLYS))
def test_reduce_words_binary(m, rng):
    k = -(-m // 32)
    for _ in range(20):
        a, b = rng.getrandbits(m), rng.getrandbits(m)
        product = _poly_mul(a, b)
        words = from_int(product, 2 * k)
        assert to_int(reduce_words_binary(words, m)) == \
            reduce_binary(product, m)


def test_reduce_b163_explicit_words(rng):
    """The explicit Algorithm 7 word schedule."""
    for _ in range(50):
        a, b = rng.getrandbits(163), rng.getrandbits(163)
        product = _poly_mul(a, b)
        words = from_int(product, 11)
        assert to_int(reduce_b163_words(words)) == reduce_binary(product, 163)


def test_reduce_b163_rejects_other_widths():
    with pytest.raises(ValueError):
        reduce_b163_words([0] * 11, w=64)


def test_unknown_fields_rejected():
    with pytest.raises(KeyError):
        reduce_words_prime([0] * 12, 200)
    with pytest.raises(KeyError):
        reduce_words_binary([0] * 12, 200)


def test_fold_ops_model():
    """Reduction cost grows with field size and fold-term count."""
    primes = [reduction_fold_ops(b, prime=True) for b in (192, 224, 256, 384)]
    assert primes[0] < primes[2] < primes[3], "more words, more work"
    # P-521 is a pure Mersenne fold: cheaper per word than P-384
    per_word_521 = reduction_fold_ops(521, True) / 17
    per_word_384 = reduction_fold_ops(384, True) / 12
    assert per_word_521 < per_word_384
    # within a polynomial shape, cost grows with field size
    assert reduction_fold_ops(233, False) < reduction_fold_ops(409, False)
    assert reduction_fold_ops(163, False) < reduction_fold_ops(283, False) \
        < reduction_fold_ops(571, False)
    # trinomials (233/409) fold fewer taps than same-size pentanomials
    assert reduction_fold_ops(233, False) < reduction_fold_ops(283, False)
