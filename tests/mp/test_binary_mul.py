"""Binary-field multiplication: comb, bit-serial, carry-less scanning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fields.inversion import _poly_mul
from repro.mp.binary_mul import (
    CombTrace,
    bitserial_clmul,
    clmul_word,
    comb_mul,
    digits_of,
    product_scanning_clmul,
)
from repro.mp.words import from_int, to_int


@pytest.mark.parametrize("m,k", [(163, 6), (283, 9), (571, 18)])
def test_all_clmul_algorithms_agree(m, k, rng):
    for _ in range(15):
        a = rng.getrandbits(m)
        b = rng.getrandbits(m)
        aw, bw = from_int(a, k), from_int(b, k)
        ref = _poly_mul(a, b)
        assert to_int(comb_mul(aw, bw)) == ref
        assert to_int(bitserial_clmul(aw, bw)) == ref
        assert to_int(product_scanning_clmul(aw, bw)) == ref


def test_clmul_word(rng):
    for _ in range(100):
        a, b = rng.getrandbits(32), rng.getrandbits(32)
        hi, lo = clmul_word(a, b)
        assert (hi << 32) | lo == _poly_mul(a, b)
    assert clmul_word(0, 0xFFFFFFFF) == (0, 0)
    # x^31 * x^31 = x^62
    assert clmul_word(1 << 31, 1 << 31) == (1 << 30, 0)


def test_comb_other_window_widths(rng):
    """The window width trades precomputation RAM for speed; any width
    that divides the word works."""
    a = rng.getrandbits(163)
    b = rng.getrandbits(163)
    aw, bw = from_int(a, 6), from_int(b, 6)
    for window in (2, 8):
        assert to_int(comb_mul(aw, bw, window=window)) == _poly_mul(a, b)


def test_comb_length_mismatch():
    with pytest.raises(ValueError):
        comb_mul([1], [1, 2])


def test_comb_trace(rng):
    k = 6
    a = from_int(rng.getrandbits(163), k)
    b = from_int(rng.getrandbits(163), k)
    trace = CombTrace()
    comb_mul(a, b, trace=trace)
    assert trace.table_builds == 15, "B_u for u = 1..15"
    assert trace.table_lookups == (32 // 4) * k, "one per window per word"


def test_zero_and_identity(rng):
    k = 6
    a = from_int(rng.getrandbits(163), k)
    zero = from_int(0, k)
    one = from_int(1, k)
    assert to_int(comb_mul(a, zero)) == 0
    assert to_int(comb_mul(a, one)) == to_int(a)


def test_digits_of():
    words = from_int(0b101_110_011, 1)
    digits = digits_of(words, 3)
    assert digits[:3] == [0b011, 0b110, 0b101]
    assert len(digits) == -(-32 // 3)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 163) - 1),
       st.integers(min_value=0, max_value=(1 << 159) - 1))
def test_comb_property(a, b):
    aw, bw = from_int(a, 6), from_int(b, 6)
    assert to_int(comb_mul(aw, bw)) == _poly_mul(a, b)
