"""Limb-array helpers: round trips, carries, shifts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mp.words import (
    add_words,
    from_int,
    shift_left_words,
    sub_words,
    to_int,
    word_mask,
    words_for,
    xor_words,
)


def test_word_mask():
    assert word_mask(8) == 0xFF
    assert word_mask(32) == 0xFFFFFFFF
    assert word_mask(64) == (1 << 64) - 1


def test_words_for():
    assert words_for(192) == 6
    assert words_for(163) == 6
    assert words_for(521) == 17
    assert words_for(571, 64) == 9
    assert words_for(1) == 1


@pytest.mark.parametrize("w", [8, 16, 32, 64])
def test_round_trip(w, rng):
    for _ in range(20):
        k = rng.randrange(1, 20)
        value = rng.getrandbits(k * w)
        words = from_int(value, k, w)
        assert len(words) == k
        assert all(0 <= word <= word_mask(w) for word in words)
        assert to_int(words, w) == value


def test_from_int_overflow():
    with pytest.raises(OverflowError):
        from_int(1 << 64, 2, 32)
    with pytest.raises(ValueError):
        from_int(-1, 2, 32)


def test_add_sub_words(rng):
    for _ in range(50):
        a = rng.getrandbits(192)
        b = rng.getrandbits(192)
        aw, bw = from_int(a, 6), from_int(b, 6)
        total, carry = add_words(aw, bw)
        assert to_int(total) + (carry << 192) == a + b
        diff, borrow = sub_words(aw, bw)
        assert to_int(diff) == (a - b) % (1 << 192)
        assert borrow == (1 if a < b else 0)


def test_add_words_length_mismatch():
    with pytest.raises(ValueError):
        add_words([1], [1, 2])
    with pytest.raises(ValueError):
        sub_words([1], [1, 2])
    with pytest.raises(ValueError):
        xor_words([1], [1, 2])


def test_xor_words(rng):
    a = rng.getrandbits(96)
    b = rng.getrandbits(96)
    assert to_int(xor_words(from_int(a, 3), from_int(b, 3))) == a ^ b


def test_shift_left_words(rng):
    a = rng.getrandbits(64)
    shifted = shift_left_words(from_int(a, 2), 13)
    assert to_int(shifted) == a << 13


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 256) - 1),
       st.integers(min_value=0, max_value=(1 << 256) - 1))
def test_carry_chain_property(a, b):
    aw, bw = from_int(a, 8), from_int(b, 8)
    total, carry = add_words(aw, bw)
    assert to_int(total) + (carry << 256) == a + b
