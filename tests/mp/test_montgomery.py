"""Montgomery multiplication: CIOS, FIPS, domain round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fields.nist import NIST_PRIMES
from repro.mp.montgomery import (
    MontgomeryContext,
    cios_montmul,
    fips_montmul,
    mont_n0_prime,
)
from repro.mp.words import from_int, to_int


@pytest.mark.parametrize("bits", [192, 256, 521])
def test_context_round_trip(bits, rng):
    p = NIST_PRIMES[bits]
    ctx = MontgomeryContext(p)
    for _ in range(20):
        a = rng.randrange(p)
        assert ctx.from_mont(ctx.to_mont(a)) == a


@pytest.mark.parametrize("bits", [192, 384])
def test_cios_multiplies(bits, rng):
    p = NIST_PRIMES[bits]
    ctx = MontgomeryContext(p)
    for _ in range(30):
        a, b = rng.randrange(p), rng.randrange(p)
        am, bm = ctx.to_mont(a), ctx.to_mont(b)
        assert ctx.from_mont(ctx.mul(am, bm)) == (a * b) % p


def test_cios_and_fips_agree(rng):
    p = NIST_PRIMES[192]
    ctx = MontgomeryContext(p)
    for _ in range(30):
        a = from_int(rng.randrange(p), ctx.k)
        b = from_int(rng.randrange(p), ctx.k)
        assert cios_montmul(a, b, ctx.n_words, ctx.n0p) == \
            fips_montmul(a, b, ctx.n_words, ctx.n0p)


def test_n0_prime_identity():
    for bits in NIST_PRIMES:
        p = NIST_PRIMES[bits]
        n0p = mont_n0_prime(p)
        assert (p * n0p) % (1 << 32) == (1 << 32) - 1, "-p^-1 mod 2^w"


def test_other_word_widths(rng):
    p = NIST_PRIMES[192]
    for w in (8, 16, 64):
        ctx = MontgomeryContext(p, w)
        a, b = rng.randrange(p), rng.randrange(p)
        am, bm = ctx.to_mont(a), ctx.to_mont(b)
        assert ctx.from_mont(ctx.mul(am, bm)) == (a * b) % p


def test_works_for_group_orders(rng):
    """Montgomery must handle arbitrary odd moduli -- the point of CIOS."""
    from repro.ec.curves import get_curve

    n = get_curve("P-256").n
    ctx = MontgomeryContext(n)
    a, b = rng.randrange(n), rng.randrange(n)
    assert ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b))) == \
        (a * b) % n


def test_even_modulus_rejected():
    with pytest.raises(ValueError):
        MontgomeryContext(100)


def test_length_mismatch():
    ctx = MontgomeryContext(NIST_PRIMES[192])
    with pytest.raises(ValueError):
        cios_montmul([1], [1], ctx.n_words, ctx.n0p)


def test_result_always_reduced(rng):
    p = NIST_PRIMES[192]
    ctx = MontgomeryContext(p)
    top = from_int(p - 1, ctx.k)
    result = cios_montmul(top, top, ctx.n_words, ctx.n0p)
    assert to_int(result) < p


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=NIST_PRIMES[192] - 1),
       st.integers(min_value=0, max_value=NIST_PRIMES[192] - 1))
def test_cios_property(a, b):
    p = NIST_PRIMES[192]
    ctx = MontgomeryContext(p)
    r_inv = pow(1 << (ctx.k * 32), -1, p)
    got = to_int(cios_montmul(from_int(a, ctx.k), from_int(b, ctx.k),
                              ctx.n_words, ctx.n0p))
    assert got == (a * b * r_inv) % p
