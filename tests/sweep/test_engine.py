"""The sweep engine: retry, skip, caching, ledger records, pooling."""

import time

import pytest

from repro.harness.registry import ArtifactSpec, get_spec
from repro.sweep.cache import ResultCache
from repro.sweep.engine import SweepEngine, run_sweep


class ListLedger:
    def __init__(self):
        self.records = []

    def append(self, record):
        self.records.append(record)
        return record


def payload_for(kind, name):
    return {"text": f"{kind} {name}", "csv": "a\n1\n", "cycles": 7,
            "energy_uj": 0.5, "data": {}, "components": {},
            "wall_s": 0.01}


def _specs(*names):
    return [get_spec("table", n) for n in names]


def fake_specs(*names):
    return [ArtifactSpec("table", n, payload_for) for n in names]


# -- module-level so ProcessPoolExecutor workers can unpickle them ------


def pool_compute(kind, name):
    return payload_for(kind, name)


def pool_fail(kind, name):
    raise RuntimeError("injected pool failure")


def pool_sleep(kind, name):
    time.sleep(2.0)
    return payload_for(kind, name)


# ---------------------------------------------------------------------------
# inline execution: retry then skip
# ---------------------------------------------------------------------------


def test_inline_retry_then_success():
    calls = []

    def flaky(kind, name):
        calls.append(name)
        if len(calls) == 1:
            raise RuntimeError("transient")
        return payload_for(kind, name)

    result = run_sweep(fake_specs("x"), ledger=ListLedger(),
                       compute=flaky, retries=1)
    (outcome,) = result.outcomes
    assert outcome.status == "computed" and outcome.attempts == 2
    assert calls == ["x", "x"]


def test_inline_persistent_failure_is_skipped_not_fatal():
    def boom(kind, name):
        raise ValueError("permanently broken")

    result = run_sweep(fake_specs("x", "y"), ledger=ListLedger(),
                       compute=lambda k, n: payload_for(k, n)
                       if n == "y" else boom(k, n), retries=2)
    by_name = {o.name: o for o in result.outcomes}
    assert by_name["x"].status == "failed"
    assert by_name["x"].attempts == 3
    assert "permanently broken" in by_name["x"].error
    assert by_name["y"].status == "computed"
    assert result.failed == [by_name["x"]]
    assert "1 failed" in result.summary()


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        SweepEngine(jobs=0)


# ---------------------------------------------------------------------------
# pool execution
# ---------------------------------------------------------------------------


def test_pool_computes_all_tasks_in_order():
    specs = fake_specs("a", "b", "c")
    result = run_sweep(specs, jobs=2, ledger=ListLedger(),
                       compute=pool_compute)
    assert [o.name for o in result.outcomes] == ["a", "b", "c"]
    assert all(o.status == "computed" for o in result.outcomes)
    assert result.outcomes[0].payload["text"] == "table a"


def test_pool_failure_retries_then_skips():
    result = run_sweep(fake_specs("a"), jobs=2, ledger=ListLedger(),
                       compute=pool_fail, retries=1)
    (outcome,) = result.outcomes
    assert outcome.status == "failed" and outcome.attempts == 2
    assert "injected pool failure" in outcome.error


def test_pool_timeout_is_reported():
    result = run_sweep(fake_specs("a"), jobs=2, ledger=ListLedger(),
                       compute=pool_sleep, retries=0, timeout_s=0.2)
    (outcome,) = result.outcomes
    assert outcome.status == "failed"
    assert "timed out" in outcome.error


# ---------------------------------------------------------------------------
# cache interplay (real registry specs, injected compute)
# ---------------------------------------------------------------------------


def test_cold_then_warm_is_byte_identical_with_zero_computes(tmp_path):
    specs = _specs("7.3", "7.5")
    cache = ResultCache(tmp_path)
    cold = run_sweep(specs, cache=cache, ledger=ListLedger(),
                     compute=pool_compute)
    assert cold.computed == 2 and cold.hits == 0

    def forbidden(kind, name):
        raise AssertionError("warm run must not compute")

    warm = run_sweep(specs, cache=cache, ledger=ListLedger(),
                     compute=forbidden)
    assert warm.hits == 2 and warm.computed == 0
    for c, w in zip(cold.outcomes, warm.outcomes):
        assert c.payload == w.payload


def test_failed_tasks_are_not_cached(tmp_path):
    cache = ResultCache(tmp_path)
    result = run_sweep(_specs("7.3"), cache=cache, ledger=ListLedger(),
                       compute=pool_fail, retries=0)
    assert result.outcomes[0].status == "failed"
    assert len(cache) == 0


def test_calibration_partitions_the_cache(tmp_path):
    import dataclasses

    from repro.energy.calibration import CALIBRATION

    tweaked = dataclasses.replace(CALIBRATION, rom_energy_scale=1.5)
    cache = ResultCache(tmp_path)
    run_sweep(_specs("7.3"), cache=cache, ledger=ListLedger(),
              compute=pool_compute)
    other = run_sweep(_specs("7.3"), cache=cache, ledger=ListLedger(),
                      compute=pool_compute, calibration=tweaked)
    assert other.hits == 0 and other.computed == 1
    assert len(cache) == 2


# ---------------------------------------------------------------------------
# ledger records
# ---------------------------------------------------------------------------


def test_one_sweep_record_per_task_with_status():
    ledger = ListLedger()
    run_sweep(fake_specs("a", "b"), ledger=ledger, compute=pool_compute)
    assert len(ledger.records) == 2
    for record in ledger.records:
        assert record["kind"] == "sweep"
        assert record["data"]["status"] == "computed"
        assert record["data"]["attempts"] == 1
        assert record["config"] == "jobs=1"
        assert record["cycles"] == 7


def test_failed_task_record_carries_the_error():
    ledger = ListLedger()
    run_sweep(fake_specs("a"), ledger=ledger, compute=pool_fail,
              retries=0)
    (record,) = ledger.records
    assert record["data"]["status"] == "failed"
    assert "injected pool failure" in record["data"]["error"]
