"""The sweep engine: retry, skip, caching, ledger records, pooling."""

import time

import pytest

from repro.harness.registry import ArtifactSpec, get_spec
from repro.sweep.cache import ResultCache
from repro.sweep.engine import SweepEngine, run_sweep


class ListLedger:
    def __init__(self):
        self.records = []

    def append(self, record):
        self.records.append(record)
        return record


def payload_for(kind, name):
    return {"text": f"{kind} {name}", "csv": "a\n1\n", "cycles": 7,
            "energy_uj": 0.5, "data": {}, "components": {},
            "wall_s": 0.01}


def _specs(*names):
    return [get_spec("table", n) for n in names]


def fake_specs(*names):
    return [ArtifactSpec("table", n, payload_for) for n in names]


# -- module-level so ProcessPoolExecutor workers can unpickle them ------


def pool_compute(kind, name):
    return payload_for(kind, name)


def pool_fail(kind, name):
    raise RuntimeError("injected pool failure")


def pool_sleep(kind, name):
    time.sleep(2.0)
    return payload_for(kind, name)


def pool_hang_a(kind, name):
    if name == "a":
        time.sleep(30.0)
    return payload_for(kind, name)


def pool_sleep_short(kind, name):
    time.sleep(0.4)
    return payload_for(kind, name)


# ---------------------------------------------------------------------------
# inline execution: retry then skip
# ---------------------------------------------------------------------------


def test_inline_retry_then_success():
    calls = []

    def flaky(kind, name):
        calls.append(name)
        if len(calls) == 1:
            raise RuntimeError("transient")
        return payload_for(kind, name)

    result = run_sweep(fake_specs("x"), ledger=ListLedger(),
                       compute=flaky, retries=1)
    (outcome,) = result.outcomes
    assert outcome.status == "computed" and outcome.attempts == 2
    assert calls == ["x", "x"]


def test_inline_persistent_failure_is_skipped_not_fatal():
    def boom(kind, name):
        raise ValueError("permanently broken")

    result = run_sweep(fake_specs("x", "y"), ledger=ListLedger(),
                       compute=lambda k, n: payload_for(k, n)
                       if n == "y" else boom(k, n), retries=2)
    by_name = {o.name: o for o in result.outcomes}
    assert by_name["x"].status == "failed"
    assert by_name["x"].attempts == 3
    assert "permanently broken" in by_name["x"].error
    assert by_name["y"].status == "computed"
    assert result.failed == [by_name["x"]]
    assert "1 failed" in result.summary()


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        SweepEngine(jobs=0)


# ---------------------------------------------------------------------------
# pool execution
# ---------------------------------------------------------------------------


def test_pool_computes_all_tasks_in_order():
    specs = fake_specs("a", "b", "c")
    result = run_sweep(specs, jobs=2, ledger=ListLedger(),
                       compute=pool_compute)
    assert [o.name for o in result.outcomes] == ["a", "b", "c"]
    assert all(o.status == "computed" for o in result.outcomes)
    assert result.outcomes[0].payload["text"] == "table a"


def test_pool_failure_retries_then_skips():
    result = run_sweep(fake_specs("a"), jobs=2, ledger=ListLedger(),
                       compute=pool_fail, retries=1)
    (outcome,) = result.outcomes
    assert outcome.status == "failed" and outcome.attempts == 2
    assert "injected pool failure" in outcome.error


def test_pool_timeout_is_reported():
    result = run_sweep(fake_specs("a"), jobs=2, ledger=ListLedger(),
                       compute=pool_sleep, retries=0, timeout_s=0.2)
    (outcome,) = result.outcomes
    assert outcome.status == "failed"
    assert "timed out" in outcome.error


def test_hung_task_is_killed_and_does_not_starve_the_queue():
    """A hung worker is reaped at its deadline: the queued task still
    runs, and the sweep returns promptly instead of blocking on the
    hung process."""
    start = time.perf_counter()
    result = run_sweep(fake_specs("a", "b", "c"), jobs=2,
                       ledger=ListLedger(), compute=pool_hang_a,
                       retries=0, timeout_s=0.5)
    elapsed = time.perf_counter() - start
    by_name = {o.name: o for o in result.outcomes}
    assert by_name["a"].status == "failed"
    assert "timed out" in by_name["a"].error
    assert by_name["b"].status == "computed"
    assert by_name["c"].status == "computed"
    assert elapsed < 10.0


def test_queued_tasks_are_not_falsely_timed_out():
    """Deadlines are measured from each task's actual start, so tasks
    waiting behind a full pool never burn their budget in the queue."""
    result = run_sweep(fake_specs("a", "b", "c", "d"), jobs=2,
                       ledger=ListLedger(), compute=pool_sleep_short,
                       retries=0, timeout_s=1.0)
    assert all(o.status == "computed" for o in result.outcomes)


# ---------------------------------------------------------------------------
# cache interplay (real registry specs, injected compute)
# ---------------------------------------------------------------------------


def test_cold_then_warm_is_byte_identical_with_zero_computes(tmp_path):
    specs = _specs("7.3", "7.5")
    cache = ResultCache(tmp_path)
    cold = run_sweep(specs, cache=cache, ledger=ListLedger(),
                     compute=pool_compute)
    assert cold.computed == 2 and cold.hits == 0

    def forbidden(kind, name):
        raise AssertionError("warm run must not compute")

    warm = run_sweep(specs, cache=cache, ledger=ListLedger(),
                     compute=forbidden)
    assert warm.hits == 2 and warm.computed == 0
    for c, w in zip(cold.outcomes, warm.outcomes):
        assert c.payload == w.payload


def test_failed_tasks_are_not_cached(tmp_path):
    cache = ResultCache(tmp_path)
    result = run_sweep(_specs("7.3"), cache=cache, ledger=ListLedger(),
                       compute=pool_fail, retries=0)
    assert result.outcomes[0].status == "failed"
    assert len(cache) == 0


def test_cache_entries_are_written_incrementally(tmp_path):
    """Completed payloads are persisted as they settle, so an
    interrupted sweep still warms the cache for its rerun."""
    cache = ResultCache(tmp_path)

    def interrupt_on_second(kind, name):
        if name == "7.5":
            raise KeyboardInterrupt
        return payload_for(kind, name)

    with pytest.raises(KeyboardInterrupt):
        run_sweep(_specs("7.3", "7.5"), cache=cache, ledger=ListLedger(),
                  compute=interrupt_on_second)
    assert len(cache) == 1


def test_default_compute_installs_the_calibration():
    """The default task body prices with the calibration it is handed,
    so pooled workers compute what the cache key promises even when
    they do not inherit the parent's session state."""
    import dataclasses

    from repro.energy.calibration import CALIBRATION
    from repro.sweep.engine import _compute_payload

    hot = dataclasses.replace(CALIBRATION, ram_energy_scale=4.0)
    default = _compute_payload("figure", "7.4")
    scaled = _compute_payload("figure", "7.4", calibration=hot)
    assert scaled["text"] != default["text"]
    # and the engine threads its calibration into that default body
    engine = SweepEngine(calibration=hot, ledger=ListLedger())
    assert engine.compute.keywords["calibration"] is hot


def test_calibration_partitions_the_cache(tmp_path):
    import dataclasses

    from repro.energy.calibration import CALIBRATION

    tweaked = dataclasses.replace(CALIBRATION, rom_energy_scale=1.5)
    cache = ResultCache(tmp_path)
    run_sweep(_specs("7.3"), cache=cache, ledger=ListLedger(),
              compute=pool_compute)
    other = run_sweep(_specs("7.3"), cache=cache, ledger=ListLedger(),
                      compute=pool_compute, calibration=tweaked)
    assert other.hits == 0 and other.computed == 1
    assert len(cache) == 2


# ---------------------------------------------------------------------------
# ledger records
# ---------------------------------------------------------------------------


def test_one_sweep_record_per_task_with_status():
    ledger = ListLedger()
    run_sweep(fake_specs("a", "b"), ledger=ledger, compute=pool_compute)
    assert len(ledger.records) == 2
    for record in ledger.records:
        assert record["kind"] == "sweep"
        assert record["data"]["status"] == "computed"
        assert record["data"]["attempts"] == 1
        assert record["config"] == "jobs=1"
        assert record["cycles"] == 7


def test_failed_task_record_carries_the_error():
    ledger = ListLedger()
    run_sweep(fake_specs("a"), ledger=ledger, compute=pool_fail,
              retries=0)
    (record,) = ledger.records
    assert record["data"]["status"] == "failed"
    assert "injected pool failure" in record["data"]["error"]
