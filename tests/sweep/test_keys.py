"""Cache keys: code digests, invalidation granularity, calibration."""

import dataclasses

import pytest

from repro.energy.calibration import CALIBRATION
from repro.harness.registry import get_spec
from repro.sweep.keys import CodeGraph, artifact_key, code_graph

# ---------------------------------------------------------------------------
# A synthetic package with a known import graph:
#
#     tables  -> costs -> kernels          (kernels is a leaf)
#     figures -> analytic                  (analytic is a leaf)
#     lazy    -> kernels (function-level import only)
# ---------------------------------------------------------------------------

_MODULES = {
    "__init__.py": "",
    "kernels.py": "WIDTH = 32\n",
    "analytic.py": "def area(m):\n    return m * m\n",
    "costs.py": "from pkg import kernels\n\nBASE = kernels.WIDTH\n",
    "tables.py": "from pkg.costs import BASE\n\n"
                 "def table():\n    return [BASE]\n",
    "figures.py": "from pkg.analytic import area\n\n"
                  "def figure():\n    return area(8)\n",
    "lazy.py": "def run():\n    from pkg import kernels\n"
               "    return kernels.WIDTH\n",
}


@pytest.fixture
def pkg(tmp_path):
    root = tmp_path / "pkg"
    root.mkdir()
    for name, text in _MODULES.items():
        (root / name).write_text(text)
    return root


def graph(root):
    return CodeGraph("pkg", root=root)


def test_closure_follows_static_imports(pkg):
    g = graph(pkg)
    assert g.closure("pkg.tables") == {
        "pkg", "pkg.tables", "pkg.costs", "pkg.kernels"}
    assert g.closure("pkg.figures") == {
        "pkg", "pkg.figures", "pkg.analytic"}


def test_closure_includes_lazy_function_level_imports(pkg):
    g = graph(pkg)
    assert "pkg.kernels" in g.closure("pkg.lazy")


def test_editing_a_module_invalidates_exactly_its_dependents(pkg):
    before = graph(pkg)
    (pkg / "kernels.py").write_text("WIDTH = 64\n")
    after = graph(pkg)
    # tables reaches kernels (via costs); figures does not
    assert after.digest("pkg.tables") != before.digest("pkg.tables")
    assert after.digest("pkg.costs") != before.digest("pkg.costs")
    assert after.digest("pkg.lazy") != before.digest("pkg.lazy")
    assert after.digest("pkg.figures") == before.digest("pkg.figures")
    assert after.digest("pkg.analytic") == before.digest("pkg.analytic")


def test_editing_init_invalidates_everything(pkg):
    before = graph(pkg)
    (pkg / "__init__.py").write_text("# touched\n")
    after = graph(pkg)
    for mod in ("pkg.tables", "pkg.figures", "pkg.kernels"):
        assert after.digest(mod) != before.digest(mod)


def test_unknown_module_raises(pkg):
    with pytest.raises(KeyError):
        graph(pkg).closure("pkg.nope")


# ---------------------------------------------------------------------------
# artifact_key over the real registry
# ---------------------------------------------------------------------------


def test_key_is_stable_and_distinct_per_artifact():
    t = get_spec("table", "7.5")
    f = get_spec("figure", "s7.8")
    assert artifact_key(t) == artifact_key(t)
    assert artifact_key(t) != artifact_key(f)


def test_calibration_change_invalidates_every_key():
    spec = get_spec("table", "7.5")
    tweaked = dataclasses.replace(CALIBRATION, ram_energy_scale=1.01)
    assert tweaked.fingerprint() != CALIBRATION.fingerprint()
    assert artifact_key(spec, calibration=tweaked) != artifact_key(spec)


def test_real_graph_table_producers_reach_the_kernel_generators():
    # tables price software configs from measured kernels, so editing a
    # kernel generator must invalidate table artifacts
    g = code_graph("repro")
    closure = g.closure(get_spec("table", "7.1").producer_module)
    assert "repro.kernels.prime_kernels" in closure
    # ...but nothing in the artifact stack imports the sweep engine
    # itself: engine edits never invalidate cached results
    assert "repro.sweep.engine" not in closure
