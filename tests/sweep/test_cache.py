"""The on-disk content-addressed result cache."""

import json

from repro.sweep.cache import CACHE_SCHEMA, ENV_DIR, ResultCache, \
    default_cache_dir

PAYLOAD = {"text": "Table X", "csv": "a,b\n", "cycles": 10,
           "energy_uj": 1.5, "data": {}, "components": {}, "wall_s": 0.1}


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.put("k" * 64, PAYLOAD, artifact="table_x")
    assert cache.get("k" * 64) == PAYLOAD
    entry = json.loads(open(path).read())
    assert entry["schema"] == CACHE_SCHEMA
    assert entry["artifact"] == "table_x"


def test_miss_on_absent_corrupt_and_mismatched_entries(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get("absent") is None
    (tmp_path / "bad.json").write_text("{not json")
    assert cache.get("bad") is None
    # a valid file stored under the wrong name must not be served
    cache.put("aaaa", PAYLOAD)
    (tmp_path / "bbbb.json").write_text(
        (tmp_path / "aaaa.json").read_text())
    assert cache.get("bbbb") is None
    assert cache.hits == 0 and cache.misses == 3


def test_keys_len_clear(tmp_path):
    cache = ResultCache(tmp_path)
    for k in ("k1", "k2"):
        cache.put(k, PAYLOAD)
    assert cache.keys() == ["k1", "k2"]
    assert len(cache) == 2
    assert cache.clear() == 2
    assert len(cache) == 0


def test_default_dir_honors_env(tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_DIR, str(tmp_path / "elsewhere"))
    assert default_cache_dir() == str(tmp_path / "elsewhere")
    assert ResultCache().directory == str(tmp_path / "elsewhere")
