"""Disassembler round-trip: every shipped kernel survives
``assemble(disassemble_to_source(assemble(src).words))`` bit-exactly."""

import pytest

from repro.kernels import (
    binary_kernels,
    composed,
    prime_kernels,
    scalar_kernels,
    symmetric_kernels,
)
from repro.pete.assembler import assemble
from repro.pete.disassembler import disassemble_to_source

KERNEL_SOURCES = {
    "mp_add": lambda: prime_kernels.gen_mp_add(6),
    "mp_sub": lambda: prime_kernels.gen_mp_sub(6),
    "os_mul": lambda: prime_kernels.gen_os_mul(6),
    "ps_mul_ext": lambda: prime_kernels.gen_ps_mul_ext(6),
    "ps_sqr_ext": lambda: prime_kernels.gen_ps_mul_ext(6, squaring=True),
    "red_p192": prime_kernels.gen_red_p192,
    "comb_mul": lambda: binary_kernels.gen_comb_mul(6),
    "ps_mulgf2": lambda: binary_kernels.gen_ps_mulgf2(6),
    "bsqr_table": lambda: binary_kernels.gen_bsqr_table(6),
    "bsqr_ext": lambda: binary_kernels.gen_bsqr_ext(6),
    "red_b163": binary_kernels.gen_red_b163,
    "speck64": symmetric_kernels.gen_speck64_encrypt,
    "scalar_daa": scalar_kernels.gen_scalar_daa,
    "scalar_ladder": scalar_kernels.gen_scalar_ladder,
    "fmul_p192": composed.gen_fmul_p192,
    "fmul_b163": composed.gen_fmul_b163,
}


@pytest.mark.parametrize("name", sorted(KERNEL_SOURCES))
def test_kernel_roundtrip(name):
    first = assemble(KERNEL_SOURCES[name](), base=0)
    text = disassemble_to_source(first.words, base=0)
    second = assemble(text, base=0)
    assert second.words == first.words


def test_roundtrip_at_nonzero_base():
    src = prime_kernels.gen_mp_add(4)
    first = assemble(src, base=0x1000)
    text = disassemble_to_source(first.words, base=0x1000)
    second = assemble(text, base=0x1000)
    assert second.words == first.words


def test_roundtrip_marks_delay_slots():
    first = assemble(scalar_kernels.gen_scalar_daa(), base=0)
    text = disassemble_to_source(first.words, base=0)
    # the delay slots reappear as explicit .ds lines
    assert text.count(".ds") == len(first.delay_slots)


def test_roundtrip_preserves_data_words():
    src = "    b over\n    nop\n    .word 0xdeadbeef\nover:\n    halt"
    first = assemble(src, base=0)
    second = assemble(disassemble_to_source(first.words, base=0), base=0)
    assert second.words == first.words
