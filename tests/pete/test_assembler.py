"""Two-pass assembler: labels, pseudo-ops, delay slots, errors."""

import pytest

from repro.pete.assembler import AssemblyError, assemble
from repro.pete.isa import PeteISA


def _decode_all(assembled):
    return [PeteISA.decode(w) for w in assembled.words]


def test_simple_program():
    out = assemble("""
    main:
        addiu $t0, $zero, 5
        addu  $t1, $t0, $t0
        halt
    """)
    d = _decode_all(out)
    assert [x.mnemonic for x in d] == ["addiu", "addu", "break"]
    assert out.address_of("main") == 0


def test_labels_and_branches():
    out = assemble("""
    start:
        addiu $t0, $zero, 3
    loop:
        addiu $t0, $t0, -1
        bne   $t0, $zero, loop
        nop
        halt
    """)
    d = _decode_all(out)
    bne = d[2]
    assert bne.mnemonic == "bne"
    # branch offset is relative to the delay-slot PC
    assert bne.imm == -2


def test_auto_nop_in_delay_slot():
    out = assemble("""
        beq $t0, $t1, 8
        addu $t2, $t2, $t2
    """)
    d = _decode_all(out)
    # an auto-nop (sll $0,$0,0) is inserted after the branch
    assert [x.mnemonic for x in d] == ["beq", "sll", "addu"]
    assert d[1].word == 0


def test_explicit_delay_slot():
    out = assemble("""
        bne $t0, $t1, 0
        .ds addiu $t0, $t0, 4
        halt
    """)
    d = _decode_all(out)
    assert [x.mnemonic for x in d] == ["bne", "addiu", "break"]


def test_ds_without_branch_rejected():
    with pytest.raises(AssemblyError):
        assemble("""
            addu $t0, $t0, $t0
            .ds addiu $t0, $t0, 4
        """)


def test_li_expansions():
    small = assemble("li $t0, 42")
    assert [x.mnemonic for x in _decode_all(small)] == ["addiu"]
    negative = assemble("li $t0, -5")
    assert [x.mnemonic for x in _decode_all(negative)] == ["addiu"]
    high = assemble("li $t0, 0x10000")
    assert [x.mnemonic for x in _decode_all(high)] == ["lui"]
    full = assemble("li $t0, 0x12345678")
    assert [x.mnemonic for x in _decode_all(full)] == ["lui", "ori"]


def test_la_is_two_words():
    out = assemble("""
        la $t0, target
        halt
    target:
        .word 0xDEADBEEF
    """)
    mnems = [PeteISA.decode(w).mnemonic for w in out.words[:3]]
    assert mnems == ["lui", "ori", "break"]
    assert out.words[3] == 0xDEADBEEF
    assert out.address_of("target") == 12


def test_memory_operands():
    out = assemble("lw $t0, 8($sp)")
    d = _decode_all(out)[0]
    assert d.mnemonic == "lw"
    assert d.rt == 8   # $t0
    assert d.rs == 29  # $sp
    assert d.imm == 8


def test_pseudo_instructions():
    out = assemble("""
        move $t0, $t1
        b end
        beqz $t2, end
        bnez $t3, end
    end:
        halt
    """)
    mnems = [x.mnemonic for x in _decode_all(out)]
    # each branch gets an auto-nop delay slot
    assert mnems == ["addu", "beq", "sll", "beq", "sll", "bne", "sll",
                     "break"]


def test_duplicate_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("a:\n nop\na:\n nop")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblyError):
        assemble("frobnicate $t0, $t1")


def test_bad_register_rejected():
    with pytest.raises(AssemblyError):
        assemble("addu $t0, $t9x, $t1")


def test_comments_and_blank_lines():
    out = assemble("""
    # a comment
        nop        ; trailing comment

        halt  # done
    """)
    assert len(out.words) == 2


def test_base_address_offsets_labels():
    out = assemble("main:\n nop\n halt", base=0x400)
    assert out.address_of("main") == 0x400


def test_jal_and_jr():
    out = assemble("""
    main:
        jal func
        nop
        halt
    func:
        jr $ra
        nop
    """)
    d = _decode_all(out)
    assert d[0].mnemonic == "jal"
    assert d[0].target == out.address_of("func") >> 2


# -- error messages carry the offending line --------------------------------


def test_bad_register_message_names_line():
    with pytest.raises(AssemblyError, match=r"bad register '\$t9x'.*addu"):
        assemble("addu $t0, $t9x, $t1")


def test_bad_immediate_message_names_line():
    with pytest.raises(AssemblyError, match=r"bad immediate '4q'.*addiu"):
        assemble("addiu $t0, $t0, 4q")


def test_undefined_label_message_names_line():
    with pytest.raises(AssemblyError, match=r"undefined label 'nowhere'.*bne"):
        assemble("""
            bne $t0, $zero, nowhere
            nop
        """)


def test_undefined_label_in_jump_rejected():
    with pytest.raises(AssemblyError, match="undefined label 'missing'"):
        assemble("jal missing\n nop")


def test_numeric_branch_target_still_accepted():
    out = assemble("""
        beq $zero, $zero, 0x0
        nop
    """)
    d = _decode_all(out)
    assert d[0].imm == -1  # back to word 0, relative to the slot PC


def test_duplicate_label_message_names_line():
    with pytest.raises(AssemblyError, match="duplicate label 'a'.*a:"):
        assemble("a:\n nop\na:\n nop")


def test_ds_without_branch_message_names_line():
    with pytest.raises(AssemblyError, match=r"\.ds must follow.*addiu"):
        assemble("""
            addu $t0, $t0, $t0
            .ds addiu $t0, $t0, 4
        """)


def test_empty_ds_message_names_line():
    with pytest.raises(AssemblyError, match=r"\.ds needs an instruction"):
        assemble("b end\n .ds\nend:\n nop")


# -- per-word metadata -------------------------------------------------------


def test_source_lines_track_words():
    out = assemble("""
    main:
        addiu $t0, $zero, 5
        bne $t0, $zero, main
        .ds addiu $t0, $t0, -1
        halt
    """)
    assert len(out.source_lines) == len(out.words)
    assert "addiu $t0, $zero, 5" in out.source_lines[0]
    assert ".ds addiu $t0, $t0, -1" in out.source_lines[2]


def test_delay_slot_indices_recorded():
    out = assemble("""
        bne $t0, $zero, done
        .ds addiu $t0, $t0, -1
        b done
        nop
    done:
        halt
    """)
    # explicit .ds slot and the auto-nop slot are both marked
    assert out.delay_slots == (1, 3)


def test_two_word_li_keeps_line_for_both_words():
    out = assemble("    li $t0, 0x12345678")
    assert len(out.words) == 2
    assert out.source_lines[0] == out.source_lines[1]
