"""Pete's timing interpreter: semantics and pipeline cycle effects."""

import pytest

from repro.pete import Pete, assemble
from repro.pete.icache import ICacheConfig
from repro.pete.memory import RAM_BASE


def run_program(source, extensions=False, binary_extensions=False,
                icache=None, regs=None):
    program = assemble(source)
    cpu = Pete(extensions=extensions, binary_extensions=binary_extensions,
               icache=icache)
    cpu.load(program)
    for name, value in (regs or {}).items():
        cpu.set_reg(name, value)
    stats = cpu.run(program.address_of("main"))
    return cpu, stats


def test_arithmetic_semantics():
    cpu, _ = run_program("""
    main:
        li $t0, 7
        li $t1, -3
        addu $t2, $t0, $t1
        subu $t3, $t0, $t1
        and  $t4, $t0, $t1
        or   $t5, $t0, $t1
        xor  $t6, $t0, $t1
        slt  $t7, $t1, $t0
        sltu $t8, $t1, $t0
        halt
    """)
    assert cpu.get_reg("t2") == 4
    assert cpu.get_reg("t3") == 10
    assert cpu.get_reg("t4") == 7 & (-3 & 0xFFFFFFFF)
    assert cpu.get_reg("t5") == 7 | (-3 & 0xFFFFFFFF)
    assert cpu.get_reg("t6") == 7 ^ (-3 & 0xFFFFFFFF)
    assert cpu.get_reg("t7") == 1, "signed: -3 < 7"
    assert cpu.get_reg("t8") == 0, "unsigned: 0xFFFFFFFD > 7"


def test_shifts():
    cpu, _ = run_program("""
    main:
        li  $t0, 0x80000000
        srl $t1, $t0, 4
        sra $t2, $t0, 4
        sll $t3, $t0, 1
        li  $t4, 8
        srlv $t5, $t0, $t4
        halt
    """)
    assert cpu.get_reg("t1") == 0x08000000
    assert cpu.get_reg("t2") == 0xF8000000
    assert cpu.get_reg("t3") == 0
    assert cpu.get_reg("t5") == 0x00800000


def test_memory_and_subword_access():
    cpu, _ = run_program("""
    main:
        li $a0, 0x10000000
        li $t0, 0x80FF1234
        sw $t0, 0($a0)
        lhu $t1, 0($a0)
        lh  $t2, 2($a0)
        lbu $t3, 3($a0)
        lb  $t4, 3($a0)
        sb  $t0, 8($a0)
        lw  $t5, 8($a0)
        halt
    """)
    assert cpu.get_reg("t1") == 0x1234
    assert cpu.get_reg("t2") == 0xFFFF80FF, "lh sign-extends"
    assert cpu.get_reg("t3") == 0x80
    assert cpu.get_reg("t4") == 0xFFFFFF80
    assert cpu.get_reg("t5") == 0x34


def test_zero_register_immutable():
    cpu, _ = run_program("""
    main:
        addiu $zero, $zero, 99
        addu $t0, $zero, $zero
        halt
    """)
    assert cpu.get_reg("zero") == 0
    assert cpu.get_reg("t0") == 0


def test_load_use_stall():
    dependent_src = """
    main:
        li $a0, 0x10000000
        li $t1, 7
        sw $t1, 0($a0)
        lw $t0, 0($a0)
        addu $t2, $t0, $t0
        nop
        halt
    """
    independent_src = """
    main:
        li $a0, 0x10000000
        li $t1, 7
        sw $t1, 0($a0)
        lw $t0, 0($a0)
        nop
        addu $t2, $t0, $t0
        halt
    """
    cpu_d, dependent = run_program(dependent_src)
    cpu_i, independent = run_program(independent_src)
    assert cpu_d.get_reg("t2") == 14
    assert cpu_i.get_reg("t2") == 14
    assert dependent.load_use_stalls == 1
    assert independent.load_use_stalls == 0
    # same instruction count, but the interlock adds one bubble
    assert dependent.cycles == independent.cycles + 1


def test_multiplier_latency_hidden_by_scheduling():
    eager = """
    main:
        li $t0, 1000
        li $t1, 3000
        multu $t0, $t1
        mflo $t2
        halt
    """
    scheduled = """
    main:
        li $t0, 1000
        li $t1, 3000
        multu $t0, $t1
        addiu $t3, $zero, 1
        addiu $t4, $zero, 2
        addiu $t5, $zero, 3
        mflo $t2
        halt
    """
    cpu_e, stats_e = run_program(eager)
    cpu_s, stats_s = run_program(scheduled)
    assert cpu_e.get_reg("t2") == 3_000_000
    assert cpu_s.get_reg("t2") == 3_000_000
    assert stats_e.mult_stall_cycles == 3, "mflo one cycle after issue"
    assert stats_s.mult_stall_cycles == 0, "independent work hides latency"


def test_division():
    cpu, stats = run_program("""
    main:
        li $t0, 100
        li $t1, 7
        divu $t0, $t1
        mflo $t2
        mfhi $t3
        li $t4, -100
        li $t5, 7
        div $t4, $t5
        mflo $t6
        halt
    """)
    assert cpu.get_reg("t2") == 14
    assert cpu.get_reg("t3") == 2
    assert cpu.get_reg("t6") == (-14) & 0xFFFFFFFF
    assert stats.div_issues == 2
    assert stats.mult_stall_cycles > 30, "the restoring divider is slow"


def test_branch_loop_and_prediction():
    cpu, stats = run_program("""
    main:
        li $t0, 0
        li $t1, 50
    loop:
        addiu $t0, $t0, 1
        bne $t0, $t1, loop
        nop
        halt
    """)
    assert cpu.get_reg("t0") == 50
    assert stats.branches == 50
    # backward-taken initialization: only the final fall-through mispredicts
    assert stats.branch_mispredicts <= 2


def test_jal_jr_function_call():
    cpu, _ = run_program("""
    main:
        li $a0, 21
        jal double
        nop
        addu $t9, $v0, $zero
        halt
    double:
        jr $ra
        .ds addu $v0, $a0, $a0
    """)
    assert cpu.get_reg("t9") == 42


def test_delay_slot_semantics():
    """The instruction after a taken branch always executes."""
    cpu, _ = run_program("""
    main:
        li $t0, 0
        b over
        .ds addiu $t0, $t0, 1
        addiu $t0, $t0, 100
    over:
        halt
    """)
    assert cpu.get_reg("t0") == 1, "delay slot ran, skipped body did not"


def test_rom_read_counting():
    _, stats = run_program("""
    main:
        nop
        nop
        halt
    """)
    # li/nop/halt etc: one ROM word read per fetched instruction
    assert stats.rom_word_reads == stats.instructions


def test_icache_path_counts_accesses():
    _, stats = run_program("""
    main:
        li $t0, 100
    loop:
        addiu $t0, $t0, -1
        bne $t0, $zero, loop
        nop
        halt
    """, icache=ICacheConfig(size_bytes=1024))
    assert stats.icache_accesses == stats.instructions
    assert stats.icache_misses >= 1, "cold start misses"
    assert stats.icache_hits > stats.icache_misses
    assert stats.rom_word_reads == 0, "all fetches go through the cache"
    assert stats.rom_line_reads == stats.icache_misses


def test_unaligned_access_raises():
    with pytest.raises(MemoryError):
        run_program("""
        main:
            li $a0, 0x10000001
            lw $t0, 0($a0)
            halt
        """)


def test_store_to_rom_raises():
    with pytest.raises(MemoryError):
        run_program("""
        main:
            sw $t0, 64($zero)
            halt
        """)


def test_runaway_program_detected():
    program = assemble("main:\n b main\n nop")
    cpu = Pete()
    cpu.load(program)
    with pytest.raises(RuntimeError):
        cpu.run(0, max_cycles=500)


def test_extensions_gated():
    with pytest.raises(RuntimeError):
        run_program("main:\n maddu $t0, $t1\n halt")
    with pytest.raises(RuntimeError):
        run_program("main:\n mulgf2 $t0, $t1\n halt")


def test_accumulator_extensions():
    cpu, _ = run_program("""
    main:
        li $t0, 0xFFFFFFFF
        li $t1, 0xFFFFFFFF
        maddu $t0, $t1
        maddu $t0, $t1
        m2addu $t0, $t1
        mflo $t2
        mfhi $t3
        sha
        sha
        mflo $t4      # former OvFlo
        halt
    """, extensions=True)
    acc = 4 * (0xFFFFFFFF ** 2)
    assert cpu.get_reg("t2") == acc & 0xFFFFFFFF
    assert cpu.get_reg("t3") == (acc >> 32) & 0xFFFFFFFF
    assert cpu.get_reg("t4") == (acc >> 64) & 0xFFFFFFFF


def test_addau():
    cpu, _ = run_program("""
    main:
        mtlo $zero
        mthi $zero
        sha
        sha
        li $t0, 3
        li $t1, 9
        addau $t0, $t1
        mflo $t2
        mfhi $t3
        halt
    """, extensions=True)
    assert cpu.get_reg("t2") == 9
    assert cpu.get_reg("t3") == 3


def test_carryless_extensions():
    from repro.fields.inversion import _poly_mul

    cpu, _ = run_program("""
    main:
        li $t0, 0xDEADBEEF
        li $t1, 0x12345678
        mulgf2 $t0, $t1
        mflo $t2
        mfhi $t3
        maddgf2 $t0, $t1
        mflo $t4
        halt
    """, extensions=True, binary_extensions=True)
    product = _poly_mul(0xDEADBEEF, 0x12345678)
    assert cpu.get_reg("t2") == product & 0xFFFFFFFF
    assert cpu.get_reg("t3") == (product >> 32) & 0xFFFFFFFF
    assert cpu.get_reg("t4") == 0, "xor with itself clears"


def test_ram_roundtrip_helpers():
    cpu = Pete()
    cpu.mem.write_ram_words(RAM_BASE + 0x40, [1, 2, 0xFFFFFFFF])
    assert cpu.mem.read_ram_words(RAM_BASE + 0x40, 3) == [1, 2, 0xFFFFFFFF]
