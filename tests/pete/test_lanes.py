"""Lane-parallel engine: bit-identity, divergence fallback, batch API.

Every test here needs numpy (the engine's dense per-lane state); the
module skips cleanly on interpreters without it.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.kernels.runner import KernelRunner
from repro.pete.diffexec import diff_kernel_lanes, lockstep_lanes
from repro.pete.lanes import LaneEngine


def _lane_stats(eng, lane):
    stats = eng.lane_stats(lane)
    return {name: int(getattr(stats, name))
            for name in ("cycles", "instructions", "stall_cycles")}


# ---------------------------------------------------------------------------
# lock-step bit-identity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name,k,lanes", [
    ("mp_add", 8, 1),
    ("mp_add", 8, 7),
    ("os_mul", 8, 16),
    ("ps_mul_ext", 8, 5),
    ("red_p192", 6, 32),
    ("bsqr_table", 6, 4),
    ("speck64", 1, 3),
])
def test_kernels_lockstep_bit_identical(name, k, lanes):
    report = diff_kernel_lanes(name, k, lanes)
    assert report.ok, report.divergence.format()
    assert report.boundaries > 0


def test_divergent_scalar_kernel_demotes_and_rejoins():
    """scalar_daa's per-lane digit paths force real branch divergence:
    minority lanes must demote to scalar bridges, advance through the
    fast path, and re-join bit-identically."""
    runner = KernelRunner(cache={})
    cores, entry = runner.prepare_lanes("scalar_daa", 16, 24)
    report = lockstep_lanes(cores, entry, label="scalar_daa:16[x24]")
    assert report.ok, report.divergence.format()
    counters = None
    for note in report.notes:
        if "demotions" in note:
            counters = note
    assert counters is not None


def test_divergence_counters_expose_fallback_traffic():
    runner = KernelRunner(cache={})
    cores, entry = runner.prepare_lanes("scalar_daa", 16, 24)
    eng = LaneEngine(cores).run(entry)
    c = eng.counters()
    assert c["lanes"] == 24
    assert c["divergences"] > 0
    assert c["demotions"] > 0
    assert c["rejoins"] > 0
    assert c["fallback_instructions"] > 0
    assert all(eng.lane_done(i) for i in range(24))


def test_lanes_match_scalar_reference_stats_exactly():
    """Per-lane cycles/instructions out of the engine equal a scalar
    reference run of the same prepared core."""
    runner = KernelRunner(cache={})
    cores, entry = runner.prepare_lanes("red_p192", 6, 8)
    refs = [core.clone() for core in cores]
    eng = LaneEngine(cores).run(entry)
    for i, ref in enumerate(refs):
        stats = ref.run(entry)
        assert int(eng.lane_cycle(i)) == stats.cycles
        assert int(eng.lane_instructions(i)) == stats.instructions
        assert _lane_stats(eng, i)["stall_cycles"] == stats.stall_cycles


def test_single_lane_batch_works():
    runner = KernelRunner(cache={})
    cores, entry = runner.prepare_lanes("mp_add", 8, 1)
    ref = cores[0].clone()
    eng = LaneEngine(cores).run(entry)
    assert int(eng.lane_cycle(0)) == ref.run(entry).cycles


# ---------------------------------------------------------------------------
# runner batch path
# ---------------------------------------------------------------------------


def test_measure_batch_reports_per_lane_results():
    runner = KernelRunner(cache={})
    batch = runner.measure_batch("os_mul", 8, lanes=6)
    assert batch.lanes == 6
    assert len(batch.cycles) == 6
    assert len(batch.instructions) == 6
    assert batch.total_instructions == sum(batch.instructions)
    assert batch.engine["lanes"] == 6
    assert batch.lanes_per_second > 0


def test_measure_batch_matches_scalar_measure():
    runner = KernelRunner(cache={})
    cores, entry = runner.prepare_lanes("ps_mul_ext", 8, 4)
    refs = [core.clone() for core in cores]
    batch = KernelRunner(cache={})  # fresh RNG: same lane operands
    result = batch.measure_batch("ps_mul_ext", 8, lanes=4)
    expected = tuple(ref.run(entry).cycles for ref in refs)
    assert result.cycles == expected
