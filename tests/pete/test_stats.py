"""CoreStats counter arithmetic."""

from dataclasses import fields

from repro.pete.stats import CoreStats


def test_add_accumulates_every_field():
    a = CoreStats(cycles=10, instructions=5, stall_cycles=2, ram_reads=3)
    b = CoreStats(cycles=7, instructions=4, stall_cycles=1,
                  icache_fills=6)
    a.add(b)
    assert a.cycles == 17
    assert a.instructions == 9
    assert a.stall_cycles == 3
    assert a.ram_reads == 3
    assert a.icache_fills == 6
    # untouched counters stay zero
    assert a.div_issues == 0


def test_add_covers_all_declared_fields():
    one = CoreStats(**{f.name: 1 for f in fields(CoreStats)})
    two = CoreStats(**{f.name: 2 for f in fields(CoreStats)})
    one.add(two)
    assert all(getattr(one, f.name) == 3 for f in fields(CoreStats))


def test_scaled_multiplies_every_counter():
    stats = CoreStats(cycles=10, instructions=4, rom_word_reads=8)
    scaled = stats.scaled(2.5)
    assert scaled["cycles"] == 25.0
    assert scaled["instructions"] == 10.0
    assert scaled["rom_word_reads"] == 20.0
    assert set(scaled) == {f.name for f in fields(CoreStats)}
    # original untouched
    assert stats.cycles == 10


def test_active_cycles_and_as_dict():
    stats = CoreStats(cycles=100, stall_cycles=30)
    assert stats.active_cycles == 70
    d = stats.as_dict()
    assert d["cycles"] == 100 and d["stall_cycles"] == 30
    assert set(d) == {f.name for f in fields(CoreStats)}
