"""Instruction encode/decode round trips."""

import pytest

from repro.pete.isa import (
    COP2_FUNCT,
    FUNCT,
    FUNCT2,
    OPCODES_I,
    OPCODES_J,
    REGISTERS,
    PeteISA,
)


def test_register_names():
    assert REGISTERS["zero"] == 0
    assert REGISTERS["at"] == 1
    assert REGISTERS["sp"] == 29
    assert REGISTERS["ra"] == 31
    assert REGISTERS["t0"] == 8
    assert REGISTERS["s0"] == 16
    assert REGISTERS["r17"] == 17


@pytest.mark.parametrize("mnemonic", sorted(FUNCT))
def test_r_type_round_trip(mnemonic):
    word = PeteISA.encode_r(mnemonic, rd=3, rs=4, rt=5, shamt=7)
    d = PeteISA.decode(word)
    assert d.mnemonic == mnemonic
    assert (d.rd, d.rs, d.rt, d.shamt) == (3, 4, 5, 7)


@pytest.mark.parametrize("mnemonic", sorted(FUNCT2))
def test_special2_round_trip(mnemonic):
    word = PeteISA.encode_r2(mnemonic, rs=9, rt=10)
    d = PeteISA.decode(word)
    assert d.mnemonic == mnemonic
    assert (d.rs, d.rt) == (9, 10)


@pytest.mark.parametrize("mnemonic", sorted(OPCODES_I))
def test_i_type_round_trip(mnemonic):
    word = PeteISA.encode_i(mnemonic, rt=2, rs=3, imm=-100)
    d = PeteISA.decode(word)
    assert d.mnemonic == mnemonic
    assert (d.rt, d.rs) == (2, 3)
    if mnemonic in ("andi", "ori", "xori"):
        assert d.imm == (-100) & 0xFFFF, "logical immediates zero-extend"
    else:
        assert d.imm == -100, "arithmetic immediates sign-extend"


@pytest.mark.parametrize("mnemonic", ["bltz", "bgez"])
def test_regimm_round_trip(mnemonic):
    word = PeteISA.encode_regimm(mnemonic, rs=6, imm=-3)
    d = PeteISA.decode(word)
    assert d.mnemonic == mnemonic
    assert d.rs == 6
    assert d.imm == -3


@pytest.mark.parametrize("mnemonic", sorted(OPCODES_J))
def test_j_type_round_trip(mnemonic):
    word = PeteISA.encode_j(mnemonic, 0x123456)
    d = PeteISA.decode(word)
    assert d.mnemonic == mnemonic
    assert d.target == 0x123456


def test_ctc2_round_trip():
    word = PeteISA.encode_cop2("ctc2", rt=5, rd=2)
    d = PeteISA.decode(word)
    assert d.mnemonic == "ctc2"
    assert (d.rt, d.rd) == (5, 2)


@pytest.mark.parametrize("mnemonic", sorted(COP2_FUNCT))
def test_cop2_round_trip(mnemonic):
    word = PeteISA.encode_cop2(mnemonic, rt=4, fs=11, ft=9, fd=13)
    d = PeteISA.decode(word)
    assert d.mnemonic == mnemonic
    assert d.rt == 4
    assert d.rd == 11   # fs lands in the rd field
    assert d.shamt == 9  # ft lands in the shamt field
    assert d.rs == 13    # fd lands in the rs field


def test_bad_encodings_rejected():
    with pytest.raises(ValueError):
        PeteISA.decode((0x3F << 26))
    with pytest.raises(ValueError):
        PeteISA.decode(0x0000003F)  # SPECIAL with bad funct


def test_decoded_classification():
    lw = PeteISA.decode(PeteISA.encode_i("lw", 2, 3, 4))
    assert lw.is_load and not lw.is_store
    sw = PeteISA.decode(PeteISA.encode_i("sw", 2, 3, 4))
    assert sw.is_store and not sw.is_load
    beq = PeteISA.decode(PeteISA.encode_i("beq", 2, 3, 4))
    assert beq.is_branch and not beq.is_jump
    j = PeteISA.decode(PeteISA.encode_j("j", 8))
    assert j.is_jump
    jr = PeteISA.decode(PeteISA.encode_r("jr", rs=31))
    assert jr.is_jump
