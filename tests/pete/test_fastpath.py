"""Superblock fast path: exactness, cache invalidation, deopt."""

import random

import pytest

from repro.pete import Pete, assemble
from repro.pete.diffexec import compare_state, lockstep, step_unit
from repro.pete.fastpath import Fastpath
from repro.pete.icache import ICacheConfig
from repro.trace.bus import CollectingSink, TraceBus
from repro.trace.events import RETIRE

STRAIGHT_LINE = """
main:
    li   $t0, 7
    li   $t1, 9
    addu $t2, $t0, $t1
    subu $t3, $t1, $t0
    multu $t0, $t1
    mflo $t4
    sll  $t5, $t4, 2
    halt
"""

LOOP = """
main:
    li $t0, 0
    li $t1, 25
    li $t2, 0
loop:
    addiu $t0, $t0, 1
    xor   $t2, $t2, $t0
    sll   $t3, $t0, 3
    addu  $t2, $t2, $t3
    bne   $t0, $t1, loop
    .ds addiu $t4, $t4, 2
    halt
"""


def _fresh(source, **kwargs):
    program = assemble(source)
    cpu = Pete(**kwargs)
    cpu.load(program)
    return cpu, program


def _run_both(source, **kwargs):
    """(reference cpu, fast cpu) after complete runs on equal inputs."""
    cpu, program = _fresh(source, **kwargs)
    ref = cpu.clone()
    entry = program.address_of("main")
    ref.run(entry)
    cpu.run(entry, fast=True)
    return ref, cpu


def test_fast_run_matches_reference_straight_line():
    ref, fast = _run_both(STRAIGHT_LINE)
    assert compare_state(ref, fast) is None
    assert fast.fastpath.compiled + fast.fastpath.code_cache_hits > 0, \
        "the straight-line body must actually run as a superblock"


def test_fast_run_matches_reference_loop():
    ref, fast = _run_both(LOOP)
    assert compare_state(ref, fast) is None


def test_fast_run_matches_reference_with_icache():
    config = ICacheConfig()
    ref, fast = _run_both(LOOP, icache=config)
    assert compare_state(ref, fast) is None
    assert fast.stats.icache_accesses > 0


def test_incoming_load_use_across_block_entry():
    """A load in a delay slot lands immediately before a block entry
    that consumes it: the block's first instruction must pay the
    load-use stall exactly like the reference interpreter."""
    source = """
    main:
        li $t1, 40
        sw $t1, 0($sp)
        j  skip
        .ds lw $t0, 0($sp)
    skip:
        addu $t2, $t0, $t0
        subu $t3, $t2, $t1
        xor  $t4, $t3, $t2
        halt
    """
    ref, fast = _run_both(source)
    assert compare_state(ref, fast) is None
    assert ref.stats.load_use_stalls == 1


def test_invalidation_on_rom_reload():
    cpu, program = _fresh(STRAIGHT_LINE)
    entry = program.address_of("main")
    cpu.run(entry, fast=True)
    first = cpu.fastpath

    replacement = assemble("""
    main:
        li   $t0, 100
        li   $t1, 1
        subu $t2, $t0, $t1
        addu $t3, $t2, $t2
        halt
    """)
    cpu.load(replacement)
    ref = cpu.clone()
    ref.run(replacement.address_of("main"))
    cpu.run(replacement.address_of("main"), fast=True)
    assert compare_state(ref, cpu) is None
    assert cpu.get_reg("t3") == 198
    assert cpu.fastpath is first, "the engine persists across reloads"


def test_invalidation_on_flush_decoded():
    cpu, program = _fresh(STRAIGHT_LINE)
    entry = program.address_of("main")
    cpu.run(entry, fast=True)

    # patch one word in ROM behind the engine's back: li $t1, 9 -> 13
    patched = assemble(STRAIGHT_LINE.replace("li   $t1, 9",
                                             "li   $t1, 13"))
    cpu.mem.write_rom(program.base, b"".join(
        w.to_bytes(4, "little") for w in patched.words))
    cpu.flush_decoded()

    cpu.run(entry, fast=True)
    assert cpu.get_reg("t2") == 20, "stale superblock survived the flush"
    assert cpu.get_reg("t4") == 7 * 13


def test_config_change_rebinds_block_map():
    cpu, program = _fresh(LOOP)
    entry = program.address_of("main")
    cpu.run(entry, fast=True)
    fastpath = cpu.fastpath
    key_before = fastpath._key

    # swapping the icache mid-session is a configuration change: the
    # next lookup must rebind to a different shared map (closures for
    # the uncached configuration fold in rom_word_reads counting)
    from repro.pete.icache import ICache

    cpu.icache = ICache(ICacheConfig(), cpu.stats)
    cpu.mem.icache = getattr(cpu.mem, "icache", None)
    fastpath.lookup(entry)
    assert fastpath._key != key_before
    assert fastpath._config == fastpath._fingerprint()


def test_deopt_under_mid_run_trace_attach():
    """Attaching a tracer mid-run deoptimizes at the next block
    boundary: per-instruction RETIRE events keep firing, with the same
    cycle numbers a fully-traced reference run produces."""
    cpu, program = _fresh(LOOP)
    entry = program.address_of("main")

    # golden: the whole run traced on the reference interpreter
    golden = cpu.clone()
    golden_sink = CollectingSink()
    golden.attach_tracer(TraceBus([golden_sink]))
    golden.begin(entry)
    while golden.step_instruction():
        pass

    # fast run, tracer attached after the first few superblocks
    fastpath = Fastpath(cpu)
    cpu.fastpath = fastpath
    cpu.begin(entry)
    sink = CollectingSink()
    units = 0
    alive, blocks = True, 0
    while alive:
        alive, was_block = step_unit(cpu, fastpath)
        blocks += was_block
        units += 1
        if units == 4:
            attach_cycle = cpu.cycle
            cpu.attach_tracer(TraceBus([sink]))
    assert blocks > 0, "the loop body must run as superblocks pre-attach"
    assert compare_state(golden, cpu) is None

    traced = [(e.cycle, e.duration, e.pc, e.detail)
              for e in sink.events if e.kind == RETIRE]
    golden_tail = [(e.cycle, e.duration, e.pc, e.detail)
                   for e in golden_sink.events
                   if e.kind == RETIRE and e.cycle >= attach_cycle]
    assert traced, "no RETIRE events after mid-run attach"
    assert traced == golden_tail


def test_block_map_shared_across_clones():
    from repro.pete import fastpath as fp

    fp._BLOCK_MAPS.clear()
    fp._CODE_CACHE.clear()
    cpu, program = _fresh(LOOP)
    entry = program.address_of("main")
    cpu.run(entry, fast=True)
    assert cpu.fastpath.compiled > 0

    other = cpu.clone()
    other.run(entry, fast=True)
    assert other.fastpath.compiled == 0, \
        "a clone re-running the same program must reuse the shared map"


def test_max_cycles_still_enforced():
    cpu, program = _fresh("""
    main:
        li $t0, 0
    loop:
        addiu $t0, $t0, 1
        xor   $t1, $t1, $t0
        j loop
        .ds addu $t2, $t1, $t0
        halt
    """)
    with pytest.raises(RuntimeError):
        cpu.run(program.address_of("main"), max_cycles=2000, fast=True)


@pytest.mark.parametrize("seed", range(6))
def test_lockstep_fuzz_random_programs(seed):
    """Random straight-line programs under the differential harness."""
    from tests.pete.test_fuzz import _random_program

    rng = random.Random(4242 + seed)
    source, _ = _random_program(rng)
    program = assemble(source)
    cpu = Pete()
    cpu.load(program)
    report = lockstep(cpu, program.address_of("main"),
                      label=f"fuzz-{seed}")
    assert report.ok, report.format()
    assert report.blocks > 0
