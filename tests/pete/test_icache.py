"""Direct-mapped instruction cache + stream-buffer prefetch."""

import pytest

from repro.pete.icache import ICache, ICacheConfig
from repro.pete.stats import CoreStats


def make(size=1024, prefetch=False):
    stats = CoreStats()
    return ICache(ICacheConfig(size_bytes=size, prefetch=prefetch),
                  stats), stats


def test_config_geometry():
    cfg = ICacheConfig(size_bytes=4096)
    assert cfg.n_lines == 256
    assert cfg.label() == "4KB"
    assert ICacheConfig(size_bytes=1024, prefetch=True).label() == "1KB-p"


def test_non_power_of_two_rejected():
    stats = CoreStats()
    with pytest.raises(ValueError):
        ICache(ICacheConfig(size_bytes=1000), stats)


def test_cold_miss_then_hits():
    cache, stats = make()
    assert cache.access(0x100) == 3, "cold miss pays the penalty"
    assert stats.icache_misses == 1
    assert stats.rom_line_reads == 1
    for offset in (0, 4, 8, 12):
        assert cache.access(0x100 + offset) == 0, "same 16B line"
    assert stats.icache_hits == 4


def test_conflict_eviction():
    cache, stats = make(size=1024)
    cache.access(0x0)
    cache.access(0x400)  # 1KB apart: same index, different tag
    assert stats.icache_misses == 2
    cache.access(0x0)
    assert stats.icache_misses == 3, "first line was evicted"


def test_invalidate():
    cache, stats = make()
    cache.access(0x40)
    cache.invalidate()
    assert cache.access(0x40) == 3


def test_prefetch_covers_sequential_stream():
    cache, stats = make(size=1024, prefetch=True)
    penalty = sum(cache.access(addr) for addr in range(0, 2048, 4))
    # one true cold miss; every subsequent line comes from the buffer
    assert stats.icache_misses == 128
    assert stats.prefetch_hits == 127
    assert penalty == 3, "only the first miss stalls"


def test_prefetch_issues_rom_reads():
    cache, stats = make(size=1024, prefetch=True)
    for addr in range(0, 512, 4):
        cache.access(addr)
    # every miss/promotion also fetched the next line speculatively
    assert stats.rom_line_reads >= stats.icache_misses


def test_no_prefetch_sequential_stalls_every_line():
    cache, stats = make(size=1024, prefetch=False)
    penalty = sum(cache.access(addr) for addr in range(0, 2048, 4))
    assert penalty == 3 * 128


def test_fills_tracked():
    cache, stats = make()
    for addr in (0x0, 0x10, 0x20):
        cache.access(addr)
    assert stats.icache_fills == 3
