"""The memory system: map, ports, counters, loaders."""

import pytest

from repro.pete.memory import RAM_BASE, ROM_BASE, MemorySystem
from repro.pete.stats import CoreStats


@pytest.fixture
def mem():
    return MemorySystem(CoreStats())


def test_memory_map_boundaries(mem):
    mem.write_rom(ROM_BASE, b"\x11\x22\x33\x44")
    assert mem.fetch_word(ROM_BASE) == 0x44332211
    # last valid ROM word
    mem.write_rom(ROM_BASE + mem.rom_size - 4, b"\xAA\xBB\xCC\xDD")
    assert mem.peek_word(ROM_BASE + mem.rom_size - 4) == 0xDDCCBBAA
    with pytest.raises(MemoryError):
        mem.fetch_word(ROM_BASE + mem.rom_size)
    with pytest.raises(MemoryError):
        mem.load(RAM_BASE + mem.ram_size, 4)
    with pytest.raises(MemoryError):
        mem.load(0x5000_0000, 4)


def test_rom_is_not_writable_through_the_data_port(mem):
    with pytest.raises(MemoryError):
        mem.store(ROM_BASE, 1, 4)


def test_instructions_do_not_fetch_from_ram(mem):
    with pytest.raises(MemoryError):
        mem.fetch_word(RAM_BASE)
    with pytest.raises(MemoryError):
        mem.fetch_line(RAM_BASE)


def test_alignment_enforced(mem):
    with pytest.raises(MemoryError):
        mem.load(RAM_BASE + 2, 4)
    with pytest.raises(MemoryError):
        mem.store(RAM_BASE + 1, 0, 2)
    # byte access is always aligned
    mem.store(RAM_BASE + 3, 0x7F, 1)
    assert mem.load(RAM_BASE + 3, 1) == 0x7F


def test_signed_subword_loads(mem):
    mem.store(RAM_BASE, 0x80, 1)
    assert mem.load(RAM_BASE, 1, signed=True) == -128
    assert mem.load(RAM_BASE, 1, signed=False) == 0x80
    mem.store(RAM_BASE + 4, 0x8000, 2)
    assert mem.load(RAM_BASE + 4, 2, signed=True) == -32768


def test_access_counters(mem):
    stats = mem.stats
    mem.write_rom(ROM_BASE, b"\x00" * 64)
    mem.fetch_word(ROM_BASE)
    mem.fetch_line(ROM_BASE + 16)
    mem.store(RAM_BASE, 5, 4)
    mem.load(RAM_BASE, 4)
    mem.load(ROM_BASE + 8, 4)  # data-port read of ROM
    assert stats.rom_word_reads == 2, "one fetch + one data read"
    assert stats.rom_line_reads == 1
    assert stats.ram_writes == 1
    assert stats.ram_reads == 1


def test_line_fetch_returns_whole_line(mem):
    words = [0x01020304, 0x05060708, 0x090A0B0C, 0x0D0E0F10]
    data = b"".join(w.to_bytes(4, "little") for w in words)
    mem.write_rom(ROM_BASE + 32, data)
    # any address within the line returns the aligned line
    assert mem.fetch_line(ROM_BASE + 40) == words


def test_loaders_do_not_count(mem):
    mem.write_ram_words(RAM_BASE, [1, 2, 3])
    assert mem.read_ram_words(RAM_BASE, 3) == [1, 2, 3]
    assert mem.stats.ram_reads == 0
    assert mem.stats.ram_writes == 0
    assert mem.peek_word(ROM_BASE) == 0
    assert mem.stats.rom_word_reads == 0
