"""The Hi/Lo Karatsuba multiply unit and its extension datapath."""

import pytest

from repro.fields.inversion import _poly_mul
from repro.pete.muldiv import (
    ACC_ADD_LATENCY,
    DIV_LATENCY,
    MULT_LATENCY,
    MulDivUnit,
)


def test_unsigned_multiply():
    unit = MulDivUnit()
    unit.mult(0, 0xFFFFFFFF, 0xFFFFFFFF, signed=False)
    product = 0xFFFFFFFF ** 2
    assert unit.lo == product & 0xFFFFFFFF
    assert unit.hi == product >> 32
    assert unit.busy_until == MULT_LATENCY


def test_signed_multiply():
    unit = MulDivUnit()
    unit.mult(0, (-5) & 0xFFFFFFFF, 7, signed=True)
    assert unit.lo == (-35) & 0xFFFFFFFF
    assert unit.hi == 0xFFFFFFFF, "sign extension into Hi"


def test_division_semantics():
    unit = MulDivUnit()
    unit.div(0, 100, 7, signed=False)
    assert unit.lo == 14 and unit.hi == 2
    unit.div(0, (-100) & 0xFFFFFFFF, 7, signed=True)
    assert unit.lo == (-14) & 0xFFFFFFFF
    assert unit.hi == (-2) & 0xFFFFFFFF
    unit.div(0, 5, 0, signed=False)  # divide by zero: defined as no-op-ish
    assert unit.lo == 0


def test_back_to_back_occupancy():
    unit = MulDivUnit()
    unit.mult(0, 2, 3, signed=False)
    unit.mult(0, 4, 5, signed=False)  # must wait for the first
    assert unit.busy_until == 2 * MULT_LATENCY
    assert unit.lo == 20


def test_divider_latency():
    unit = MulDivUnit()
    unit.div(10, 100, 3, signed=False)
    assert unit.busy_until == 10 + DIV_LATENCY


def test_accumulator_extension_gating():
    unit = MulDivUnit()
    with pytest.raises(RuntimeError):
        unit.maddu(0, 1, 2)
    with pytest.raises(RuntimeError):
        unit.mulgf2(0, 1, 2)


def test_maddu_accumulates_96_bits():
    unit = MulDivUnit(extensions=True)
    for _ in range(5):
        unit.maddu(0, 0xFFFFFFFF, 0xFFFFFFFF)
    expected = 5 * 0xFFFFFFFF ** 2
    assert unit.acc == expected
    assert unit.ovflo == expected >> 64


def test_m2addu_doubles():
    unit = MulDivUnit(extensions=True)
    unit.m2addu(0, 3, 7)
    assert unit.acc == 42


def test_addau_and_sha():
    unit = MulDivUnit(extensions=True)
    unit.addau(0, 5, 9)
    assert unit.acc == (5 << 32) | 9
    unit.sha(0)
    assert unit.acc == 5
    assert unit.busy_until == 2 * ACC_ADD_LATENCY


def test_carryless_ops():
    unit = MulDivUnit(extensions=True, binary_extensions=True)
    unit.mulgf2(0, 0xB, 0xD)
    assert unit.acc == _poly_mul(0xB, 0xD)
    unit.maddgf2(0, 0xB, 0xD)
    assert unit.acc == 0, "carry-less accumulate is XOR"


def test_set_hi_lo():
    unit = MulDivUnit()
    unit.set_lo(0x1111)
    unit.set_hi(0x2222)
    assert unit.lo == 0x1111
    assert unit.hi == 0x2222
