"""The execution-trace facility."""

from repro.pete import Pete, assemble


def test_trace_disabled_by_default():
    program = assemble("main:\n nop\n halt")
    cpu = Pete()
    cpu.load(program)
    cpu.run(0)
    assert cpu.trace_log == []


def test_trace_records_every_instruction():
    program = assemble("""
    main:
        li $t0, 2
    loop:
        addiu $t0, $t0, -1
        bne $t0, $zero, loop
        .ds nop
        halt
    """)
    cpu = Pete(trace=True)
    cpu.load(program)
    stats = cpu.run(0)
    assert len(cpu.trace_log) == stats.instructions
    cycles = [entry[0] for entry in cpu.trace_log]
    assert cycles == sorted(cycles), "trace is in time order"
    texts = [entry[2] for entry in cpu.trace_log]
    assert texts.count("nop") == 2, "the delay slot ran twice"
    assert any(t.startswith("bne") for t in texts)


def test_trace_shows_loop_revisits():
    program = assemble("""
    main:
        li $t0, 3
    loop:
        addiu $t0, $t0, -1
        bne $t0, $zero, loop
        nop
        halt
    """)
    cpu = Pete(trace=True)
    cpu.load(program)
    cpu.run(0)
    loop_pc_hits = [pc for _, pc, _ in cpu.trace_log if pc == 0x4]
    assert len(loop_pc_hits) == 3
