"""Lock-step differential harness: clean kernels and seeded faults."""

import pytest

from repro.pete import Pete, assemble
from repro.pete import diffexec
from repro.pete.diffexec import (
    DiffReport,
    Divergence,
    compare_state,
    diff_kernel,
    lockstep,
)
from repro.pete.fastpath import Fastpath


@pytest.mark.parametrize("name,k", [
    ("mp_add", 8),       # prime-field, straight-line
    ("os_mul", 6),       # prime-field, nested loops + muldiv
    ("comb_mul", 4),     # binary-field comb
    ("scalar_daa", 12),  # scalar double-and-add (branchy)
])
def test_kernels_run_divergence_free(name, k):
    report = diff_kernel(name, k)
    assert report.ok, report.format()
    assert report.instructions > 0
    assert report.blocks > 0, "no superblocks executed: nothing verified"
    assert report.boundaries >= report.blocks


def test_compare_state_names_the_first_difference():
    program = assemble("main:\n    li $t0, 1\n    halt\n")
    a = Pete()
    a.load(program)
    a.run(program.address_of("main"))
    b = a.clone()

    assert compare_state(a, b) is None
    b.regs[9] = 0xDEAD
    divergence = compare_state(a, b)
    assert divergence is not None
    assert divergence.what == "regs[$t1]"
    b.regs[9] = a.regs[9]
    b.stats.ram_writes += 1
    divergence = compare_state(a, b)
    assert divergence.what == "stats.ram_writes"


class _FaultyFastpath(Fastpath):
    """Wraps every compiled block to corrupt $t2 after it runs."""

    def lookup(self, pc):
        block = super().lookup(pc)
        if block is None:
            return None

        def corrupted(cpu):
            block(cpu)
            cpu.regs[10] ^= 0x4000_0000

        return corrupted


def test_lockstep_detects_a_seeded_fault(monkeypatch):
    monkeypatch.setattr(diffexec, "Fastpath", _FaultyFastpath)
    program = assemble("""
    main:
        li   $t0, 3
        li   $t1, 5
        addu $t2, $t0, $t1
        subu $t3, $t1, $t0
        halt
    """)
    cpu = Pete()
    cpu.load(program)
    report = lockstep(cpu, program.address_of("main"), label="seeded")
    assert not report.ok
    assert report.divergence.what == "regs[$t2]"
    formatted = report.format()
    assert "DIVERGED" in formatted
    assert "->" in formatted, "disassembly context missing"


def test_report_formatting():
    report = DiffReport("demo", instructions=10, blocks=2, boundaries=5)
    assert report.ok
    assert "ok" in report.summary()
    report.divergence = Divergence("cycle", 10, 11, pc=0x40,
                                   instructions=9)
    assert not report.ok
    assert "cycle" in report.format()


def test_cli_reports_and_exits_clean(tmp_path, capsys):
    out = tmp_path / "report.txt"
    rc = diffexec.main(["--kernels", "mp_add:6", "--report", str(out)])
    assert rc == 0
    assert "0 divergences" in capsys.readouterr().out
    assert "mp_add:6" in out.read_text()


def test_cli_rejects_bad_kernel_spec():
    with pytest.raises(SystemExit):
        diffexec.main(["--kernels", "os_mul"])
