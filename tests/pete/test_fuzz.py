"""Simulator fuzzing: random programs vs a Python golden model, and
encode/decode/disassemble round trips under hypothesis."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.pete import Pete, assemble
from repro.pete.disassembler import disassemble, disassemble_word
from repro.pete.isa import PeteISA

MASK32 = 0xFFFFFFFF

#: register-to-register operations and their Python semantics
_RRR_OPS = {
    "addu": lambda a, b: (a + b) & MASK32,
    "subu": lambda a, b: (a - b) & MASK32,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "nor": lambda a, b: ~(a | b) & MASK32,
    "sltu": lambda a, b: int(a < b),
    "slt": lambda a, b: int(_s32(a) < _s32(b)),
}

_RRI_OPS = {
    "addiu": lambda a, i: (a + i) & MASK32,
    "andi": lambda a, i: a & (i & 0xFFFF),
    "ori": lambda a, i: a | (i & 0xFFFF),
    "xori": lambda a, i: a ^ (i & 0xFFFF),
    "sltiu": lambda a, i: int(a < (i & MASK32)),
    "slti": lambda a, i: int(_s32(a) < i),
}

_SHIFT_OPS = {
    "sll": lambda a, s: (a << s) & MASK32,
    "srl": lambda a, s: a >> s,
    "sra": lambda a, s: (_s32(a) >> s) & MASK32,
}


def _s32(v):
    return v - (1 << 32) if v & 0x80000000 else v


def _random_program(rng, length=60):
    """A random straight-line program over $t0-$t7 plus its golden run."""
    regs = {i: rng.getrandbits(32) for i in range(8, 16)}  # $t0..$t7
    lines = ["main:"]
    for name, value in regs.items():
        lines.append(f"    li $r{name}, {value & 0x7FFF}")
        regs[name] = value & 0x7FFF
    for _ in range(length):
        kind = rng.choice(("rrr", "rri", "shift", "muldiv"))
        rd, rs, rt = (rng.randrange(8, 16) for _ in range(3))
        if kind == "rrr":
            op = rng.choice(sorted(_RRR_OPS))
            lines.append(f"    {op} $r{rd}, $r{rs}, $r{rt}")
            regs[rd] = _RRR_OPS[op](regs[rs], regs[rt])
        elif kind == "rri":
            op = rng.choice(sorted(_RRI_OPS))
            imm = rng.randrange(-0x8000, 0x8000)
            lines.append(f"    {op} $r{rd}, $r{rs}, {imm}")
            regs[rd] = _RRI_OPS[op](regs[rs], imm)
        elif kind == "shift":
            op = rng.choice(sorted(_SHIFT_OPS))
            shamt = rng.randrange(32)
            lines.append(f"    {op} $r{rd}, $r{rt}, {shamt}")
            regs[rd] = _SHIFT_OPS[op](regs[rt], shamt)
        else:
            lines.append(f"    multu $r{rs}, $r{rt}")
            lines.append(f"    mflo $r{rd}")
            product = regs[rs] * regs[rt]
            regs[rd] = product & MASK32
            other = rng.randrange(8, 16)
            lines.append(f"    mfhi $r{other}")
            regs[other] = (product >> 32) & MASK32
    lines.append("    halt")
    return "\n".join(lines), regs


@pytest.mark.parametrize("seed", range(12))
def test_random_programs_match_golden_model(seed):
    rng = random.Random(seed)
    source, expected = _random_program(rng)
    program = assemble(source)
    cpu = Pete()
    cpu.load(program)
    stats = cpu.run(program.address_of("main"))
    for reg, value in expected.items():
        assert cpu.regs[reg] == value, (seed, reg)
    assert stats.cycles >= stats.instructions - 1


@pytest.mark.parametrize("seed", range(6))
def test_random_loops_terminate_correctly(seed):
    """Random counted loops: the branch/delay-slot machinery under churn."""
    rng = random.Random(1000 + seed)
    iterations = rng.randrange(1, 200)
    step = rng.randrange(1, 5)
    source = f"""
    main:
        li $t0, 0
        li $t1, {iterations}
        li $t2, 0
    loop:
        addiu $t0, $t0, 1
        bne $t0, $t1, loop
        .ds addiu $t2, $t2, {step}
        halt
    """
    program = assemble(source)
    cpu = Pete()
    cpu.load(program)
    cpu.run(program.address_of("main"))
    assert cpu.get_reg("t0") == iterations
    assert cpu.get_reg("t2") == iterations * step, \
        "the delay slot executes on every iteration including the last"


def _all_encodable_words():
    """Canonical encodings of every instruction (unused fields zero,
    as the assembler emits them)."""
    isa = PeteISA
    words = [
        isa.encode_r("sll", rd=1, rt=3, shamt=4),
        isa.encode_r("srl", rd=1, rt=3, shamt=4),
        isa.encode_r("sra", rd=1, rt=3, shamt=4),
        isa.encode_r("sllv", rd=1, rt=3, rs=2),
        isa.encode_r("srlv", rd=1, rt=3, rs=2),
        isa.encode_r("srav", rd=1, rt=3, rs=2),
        isa.encode_r("jr", rs=31),
        isa.encode_r("jalr", rd=31, rs=2),
        isa.encode_r("syscall"),
        isa.encode_r("break"),
        isa.encode_r("mfhi", rd=9),
        isa.encode_r("mflo", rd=9),
        isa.encode_r("mthi", rs=9),
        isa.encode_r("mtlo", rs=9),
    ]
    for m in ("mult", "multu", "div", "divu"):
        words.append(isa.encode_r(m, rs=2, rt=3))
    for m in ("add", "addu", "sub", "subu", "and", "or", "xor", "nor",
              "slt", "sltu"):
        words.append(isa.encode_r(m, rd=1, rs=2, rt=3))
    for m in ("maddu", "m2addu", "addau", "mulgf2", "maddgf2"):
        words.append(isa.encode_r2(m, rs=5, rt=6))
    words.append(isa.encode_r2("sha"))
    from repro.pete.isa import OPCODES_I, OPCODES_J

    for m in OPCODES_I:
        if m == "lui":
            words.append(isa.encode_i(m, rt=7, rs=0, imm=0x1234))
        else:
            words.append(isa.encode_i(m, rt=7, rs=8, imm=-9))
    for m in OPCODES_J:
        words.append(isa.encode_j(m, 0x1234))
    words.append(isa.encode_regimm("bltz", 3, -2))
    words.append(isa.encode_regimm("bgez", 3, 2))
    return words


def test_disassembler_covers_every_instruction():
    for word in _all_encodable_words():
        text = disassemble_word(word, pc=0x100)
        assert text and not text.startswith(".word")


def test_disassemble_reassemble_round_trip():
    """Disassembled text reassembles to the identical machine words."""
    words = [w for w in _all_encodable_words()
             if not PeteISA.decode(w).is_branch
             and not PeteISA.decode(w).is_jump
             and not PeteISA.decode(w).mnemonic.startswith(("cop2", "ctc2"))]
    listing = disassemble(words)
    source = "\n".join(line.split(":", 1)[1] for line in listing)
    reassembled = assemble(source)
    assert reassembled.words == words


def test_disassemble_branch_targets():
    program = assemble("""
    main:
        li $t0, 3
    loop:
        addiu $t0, $t0, -1
        bne $t0, $zero, loop
        nop
        halt
    """)
    listing = disassemble(program.words, base=0)
    branch_line = next(line for line in listing if "bne" in line)
    assert "0x4" in branch_line, "target resolved to the loop head"


def test_disassemble_invalid_word_as_data():
    listing = disassemble([0xFFFFFFFF])
    assert ".word" in listing[0]


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_decoder_never_crashes_and_reencodes(word):
    """Any 32-bit pattern either decodes (and the decode is stable) or
    raises ValueError -- never anything else."""
    try:
        decoded = PeteISA.decode(word)
    except ValueError:
        return
    again = PeteISA.decode(word)
    assert decoded == again
