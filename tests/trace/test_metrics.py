"""Metrics registry and interval power sampler."""

import json

import pytest

from repro.energy.accounting import EnergyBreakdown, EnergyReport
from repro.energy.simulated import RunEnergyParams, report_from_corestats
from repro.kernels.runner import KernelRunner
from repro.pete.stats import CoreStats
from repro.trace.events import TraceEvent
from repro.trace import events as ev
from repro.trace.metrics import MetricsRegistry, PowerSampler


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def test_counter_gauge_series_identity_by_name_and_labels():
    reg = MetricsRegistry()
    c = reg.counter("hits", kernel="os_mul")
    c.inc()
    c.inc(2.5)
    assert reg.counter("hits", kernel="os_mul").value == 3.5
    # different labels -> a distinct metric
    assert reg.counter("hits", kernel="comb_mul").value == 0.0
    reg.gauge("temp").set(7)
    assert reg.gauge("temp").value == 7.0
    s = reg.series("power")
    s.append(0, 1.0)
    s.append(64, 2.0)
    assert reg.series("power").points == [(0, 1.0), (64, 2.0)]


def test_collect_and_json_export():
    reg = MetricsRegistry()
    reg.counter("b").inc(1)
    reg.counter("a", run="x").inc(2)
    reg.series("s").append(1, 2)
    samples = reg.collect()
    assert [s.name for s in samples] == ["a", "b", "s"]  # sorted
    assert samples[0].labels == {"run": "x"}
    parsed = json.loads(reg.to_json())
    assert parsed == reg.as_dict()
    assert parsed["metrics"][2]["value"] == [[1, 2]]


def test_ingest_counters_from_corestats():
    reg = MetricsRegistry()
    stats = CoreStats(cycles=100, instructions=60, ram_reads=7)
    reg.ingest_counters(stats, prefix="core_", kernel="k")
    assert reg.counter("core_cycles", kernel="k").value == 100
    assert reg.counter("core_ram_reads", kernel="k").value == 7
    with pytest.raises(TypeError):
        reg.ingest_counters({"not": "a dataclass"})


def test_ingest_energy_report():
    bd = EnergyBreakdown()
    bd.add_dynamic("Pete", 500.0)
    bd.add_dynamic("RAM", 250.0)
    bd.add_static("Pete", 100.0)
    report = EnergyReport("run", cycles=1000, breakdown=bd)
    reg = MetricsRegistry()
    reg.ingest_energy_report(report, run="r1")
    assert reg.counter("energy_dynamic_nj", component="Pete",
                       run="r1").value == 500.0
    assert reg.counter("energy_static_nj", component="Pete",
                       run="r1").value == 100.0
    assert reg.gauge("energy_total_uj", run="r1").value == report.total_uj
    assert reg.gauge("power_mw", run="r1").value == report.power_mw
    assert reg.counter("cycles", run="r1").value == 1000


# ---------------------------------------------------------------------------
# power sampler
# ---------------------------------------------------------------------------


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        PowerSampler(interval_cycles=0)


def test_bucketed_energy_matches_report_dynamic():
    """Sum over all buckets == the run's dynamic energy (the sampler is
    the same per-event pricing, just time-resolved)."""
    params = RunEnergyParams()
    sampler = PowerSampler(params, interval_cycles=64)
    runner = KernelRunner()
    _, cpu = runner.profile("os_mul", 6, params=params,
                            extra_sinks=(sampler,))
    report = report_from_corestats(cpu.stats, params)
    sampled_nj = sum(sampler.buckets.values())
    dynamic_nj = sum(report.breakdown.dynamic_nj.values())
    assert sampled_nj == pytest.approx(dynamic_nj, rel=1e-3)
    assert sampler.last_cycle == cpu.stats.cycles


def test_interval_events_spread_conserves_energy():
    params = RunEnergyParams(has_monte=True, monte_key_bits=192)
    sampler = PowerSampler(params, interval_cycles=100)
    e = TraceEvent(ev.FFAU_BUSY, 150, 300, -1, "monte.ffau", "fiosmul")
    sampler.on_event(e)
    # spans buckets 1..4; per-bucket shares sum to the event's energy
    assert set(sampler.buckets) == {1, 2, 3, 4}
    assert (sum(sampler.buckets.values())
            == pytest.approx(sampler.charger.dynamic_nj(e)))
    # interior buckets carry a full interval's share each
    assert sampler.buckets[2] == pytest.approx(
        sampler.charger.dynamic_nj(e) * 100 / 300)


def test_power_series_floor_and_average():
    params = RunEnergyParams()
    sampler = PowerSampler(params, interval_cycles=64)
    runner = KernelRunner()
    runner.profile("os_mul", 4, params=params, extra_sinks=(sampler,))
    series = sampler.power_series(include_static=True)
    bare = sampler.power_series(include_static=False)
    assert len(series) == len(bare) > 0
    floor = sampler.static_mw()
    assert floor > 0
    for (c1, with_static), (c2, dyn) in zip(series, bare):
        assert c1 == c2
        assert with_static == pytest.approx(dyn + floor)
    # average power integrates back to the bucketed energy
    interval_s = 64 * params.clock_ns * 1e-9
    integ_nj = sum(mw * 1e-3 * interval_s for _, mw in bare) * 1e9
    assert integ_nj == pytest.approx(sum(sampler.buckets.values()))


def test_static_mw_is_leakage_over_the_clock():
    params = RunEnergyParams()
    sampler = PowerSampler(params)
    expected_uw = params.cal.pete.static_uw + params.ram_leak_uw
    assert sampler.static_mw() == pytest.approx(expected_uw / 1e3)


def test_to_registry_and_render():
    sampler = PowerSampler(interval_cycles=64)
    runner = KernelRunner()
    runner.profile("os_mul", 4, extra_sinks=(sampler,))
    reg = MetricsRegistry()
    sampler.to_registry(reg, kernel="os_mul")
    assert reg.series("power_mw", kernel="os_mul").points
    text = sampler.render(width=30)
    assert "power over time" in text and "mW" in text
    assert PowerSampler().render() == "(no samples)"
