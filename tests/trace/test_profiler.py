"""Profiler attribution + energy reconciliation against the reports."""

import pytest

from repro.accel.billie import Billie
from repro.accel.cop2_adapter import BillieCop2Adapter, MonteCop2Adapter
from repro.accel.monte import Monte
from repro.energy.simulated import RunEnergyParams
from repro.fields.nist import NIST_PRIMES
from repro.kernels.runner import KernelRunner
from repro.pete import Pete, assemble
from repro.pete.icache import ICacheConfig
from repro.pete.memory import RAM_BASE
from repro.trace.bus import TraceBus, attach_tracer
from repro.trace.profiler import Profiler, Symbolizer

A_ADDR = RAM_BASE + 0x400
B_ADDR = RAM_BASE + 0x500
DST_ADDR = RAM_BASE + 0x600

#: acceptance bound: profiled energy within 0.1% of the counter report
RECONCILE_TOL = 1e-3


@pytest.fixture(scope="module")
def runner():
    return KernelRunner()


# ---------------------------------------------------------------------------
# software kernels
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name,k", [("os_mul", 6), ("comb_mul", 6),
                                    ("ps_mul_ext", 8), ("speck64", 1)])
def test_kernel_profile_reconciles(runner, name, k):
    profiler, cpu = runner.profile(name, k)
    assert profiler.total_cycles == cpu.stats.cycles
    assert profiler.total_instructions == cpu.stats.instructions
    assert profiler.reconcile(cpu.stats) <= RECONCILE_TOL


def test_per_symbol_rollup_covers_all_cycles(runner):
    profiler, cpu = runner.profile("os_mul", 6)
    rows = profiler.by_symbol()
    assert sum(r.cycles for r in rows) == cpu.stats.cycles
    assert sum(r.instructions for r in rows) == cpu.stats.instructions
    assert sum(r.stall_cycles for r in rows) == cpu.stats.stall_cycles
    names = {r.symbol for r in rows}
    assert "os_mul" in names  # the kernel's own entry label


def test_hotspot_table_renders_totals(runner):
    profiler, cpu = runner.profile("os_mul", 6)
    table = profiler.table(top=2)
    assert "total" in table and str(cpu.stats.cycles) in table
    assert "100.0%" in table


def test_stall_reasons_accumulate(runner):
    profiler, cpu = runner.profile("comb_mul", 6)
    assert (sum(profiler.stall_reasons.values())
            == cpu.stats.stall_cycles)


# ---------------------------------------------------------------------------
# call-path tracking
# ---------------------------------------------------------------------------


def test_call_paths_via_jal_jr():
    program = assemble("""
main:
    li $t0, 3
again:
    jal helper
    addiu $t0, $t0, -1
    bne $t0, $zero, again
    halt
helper:
    addiu $v0, $v0, 1
    jr $ra
""")
    bus = TraceBus()
    profiler = bus.attach(
        Profiler(symbols=Symbolizer.from_program(program)))
    cpu = Pete(tracer=bus)
    cpu.load(program)
    stats = cpu.run(0)
    # the call site folds to its nearest label ("again")
    assert ("again", "helper") in profiler.path_cycles
    assert profiler.path_cycles[("again", "helper")] > 0
    # every cycle lands on exactly one path
    assert sum(profiler.path_cycles.values()) == stats.cycles
    stacks = profiler.collapsed_stacks()
    assert "again;helper " in stacks


# ---------------------------------------------------------------------------
# accelerated + cached configurations
# ---------------------------------------------------------------------------


def test_monte_icache_run_reconciles():
    monte = Monte(NIST_PRIMES[192])
    cpu = Pete(coprocessor=MonteCop2Adapter(monte),
               icache=ICacheConfig(size_bytes=4096))
    params = RunEnergyParams(has_monte=True, monte_key_bits=192,
                             icache_size=4096)
    bus = TraceBus()
    profiler = bus.attach(Profiler(params=params))
    attach_tracer(cpu, bus)
    cpu.mem.write_ram_words(A_ADDR, monte.ctx.to_mont(5))
    cpu.mem.write_ram_words(B_ADDR, monte.ctx.to_mont(7))
    program = assemble(f"""
main:
    li $t0, 6
    ctc2 $t0, 0
    li $a1, {A_ADDR}
    li $a2, {B_ADDR}
    li $a0, {DST_ADDR}
    cop2lda $a1
    cop2ldb $a2
    cop2mul
    cop2st $a0
    cop2sync
    halt
""")
    cpu.load(program)
    stats = cpu.run(0)
    assert profiler.total_cycles == stats.cycles
    assert profiler.coproc_busy_cycles == monte.stats.ffau_busy_cycles
    assert profiler.reconcile(stats,
                              monte_stats=monte.stats) <= RECONCILE_TOL


def test_billie_run_reconciles():
    billie = Billie()
    cpu = Pete(coprocessor=BillieCop2Adapter(billie))
    params = RunEnergyParams(has_billie=True, billie_m=163)
    bus = TraceBus()
    profiler = bus.attach(Profiler(params=params))
    attach_tracer(cpu, bus)
    cpu.mem.write_ram_words(A_ADDR, [3, 0, 0, 0, 0, 0])
    cpu.mem.write_ram_words(B_ADDR, [5, 0, 0, 0, 0, 0])
    program = assemble(f"""
main:
    li $a1, {A_ADDR}
    li $a2, {B_ADDR}
    li $a0, {DST_ADDR}
    cop2ld $a1, 1
    cop2ld $a2, 2
    cop2mul 3, 1, 2
    cop2st $a0, 3
    cop2sync
    halt
""")
    cpu.load(program)
    stats = cpu.run(0)
    assert profiler.total_cycles == stats.cycles
    assert profiler.coproc_busy_cycles == billie.stats.busy_cycles
    assert profiler.reconcile(stats,
                              billie_stats=billie.stats) <= RECONCILE_TOL
