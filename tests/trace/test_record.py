"""Benchmark record schema and writer."""

import json

from repro.trace.record import SCHEMA, bench_record, git_sha, write_record


def test_record_has_all_schema_fields():
    rec = bench_record("os_mul", config="k=8", cycles=1234,
                       energy_uj=5.6, wall_s=0.01, data={"rows": 3})
    assert rec["schema"] == SCHEMA
    assert rec["artifact"] == "os_mul"
    assert rec["config"] == "k=8"
    assert rec["cycles"] == 1234
    assert rec["energy_uj"] == 5.6
    assert rec["wall_s"] == 0.01
    assert rec["data"] == {"rows": 3}
    assert rec["timestamp"]
    assert rec["git_sha"]


def test_git_sha_in_this_checkout():
    sha = git_sha()
    assert sha == "unknown" or (len(sha) == 40
                                and all(c in "0123456789abcdef" for c in sha))


def test_git_sha_outside_a_checkout(tmp_path):
    assert git_sha(str(tmp_path)) == "unknown"


def test_write_record_roundtrip(tmp_path):
    rec = bench_record("smoke", cycles=10)
    path = write_record(rec, out_dir=str(tmp_path))
    assert path.endswith("BENCH_smoke.json")
    assert json.loads((tmp_path / "BENCH_smoke.json").read_text()) == rec


def test_write_record_sanitizes_artifact_name(tmp_path):
    rec = bench_record("os_mul:8 (fast)")
    path = write_record(rec, out_dir=str(tmp_path))
    assert path.endswith("BENCH_os_mul_8__fast_.json")


def test_write_record_honours_env_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("BENCH_RECORD_DIR", str(tmp_path / "env_dir"))
    path = write_record(bench_record("x"))
    assert path.startswith(str(tmp_path / "env_dir"))
    assert (tmp_path / "env_dir" / "BENCH_x.json").exists()


# ---------------------------------------------------------------------------
# schema v2: provenance, repo-root anchoring, migration
# ---------------------------------------------------------------------------


def test_v2_record_has_provenance_and_kind():
    from repro.trace.record import bench_record

    rec = bench_record("x")
    assert rec["kind"] == "bench"
    assert rec["git_dirty"] in (True, False, None)
    assert rec["components"] == {} and rec["symbols"] == []


def test_bench_record_rejects_unknown_kind():
    import pytest

    from repro.trace.record import bench_record

    with pytest.raises(ValueError, match="unknown record kind"):
        bench_record("x", kind="nonsense")


def test_git_dirty_none_outside_a_checkout(tmp_path):
    from repro.trace.record import git_dirty

    assert git_dirty(str(tmp_path)) is None


def test_upgrade_v1_record_is_tolerant():
    import pytest

    from repro.trace.record import SCHEMA, SCHEMA_V1, upgrade_record

    v1 = {"schema": SCHEMA_V1, "artifact": "old", "cycles": 1}
    up = upgrade_record(v1)
    assert up["schema"] == SCHEMA
    assert up["kind"] == "bench"
    assert up["git_dirty"] is None
    assert up["components"] == {} and up["symbols"] == []
    with pytest.raises(ValueError, match="unknown record schema"):
        upgrade_record({"schema": "repro.bench.v99"})


def test_load_record_upgrades_old_files(tmp_path):
    from repro.trace.record import SCHEMA, SCHEMA_V1, load_record

    path = tmp_path / "BENCH_old.json"
    path.write_text(json.dumps({"schema": SCHEMA_V1, "artifact": "old"}))
    rec = load_record(str(path))
    assert rec["schema"] == SCHEMA and rec["git_dirty"] is None


def test_default_record_dir_is_repo_root_anchored(tmp_path, monkeypatch):
    import os

    from repro.trace.record import default_record_dir, repo_root

    monkeypatch.delenv("BENCH_RECORD_DIR", raising=False)
    monkeypatch.chdir(tmp_path)
    d = default_record_dir()
    assert os.path.isabs(d)
    assert d == os.path.join(repo_root(), "results", "bench")
    assert not d.startswith(str(tmp_path))


def test_repo_root_finds_this_checkout():
    import os

    from repro.trace.record import repo_root

    root = repo_root()
    assert os.path.exists(os.path.join(root, "setup.py"))


def test_summarize_rows_folds_cycles_and_energy():
    from repro.trace.record import summarize_rows

    rows = [{"op": "sign", "cycles_100k": 2.0, "total_uj": 1.5},
            {"op": "verify", "cycles_100k": 3.0, "total_uj": 2.5,
             "note": "text ignored"}]
    cycles, energy_uj, data = summarize_rows(rows)
    assert cycles == 5.0 and energy_uj == 4.0
    assert data["rows"] == 2 and "op" in data["columns"]
    assert summarize_rows(None) == (0.0, 0.0, {})


def test_kernel_record_shape():
    from repro.kernels.runner import KernelResult
    from repro.trace.record import kernel_record

    rec = kernel_record(KernelResult("os_mul", 8, 926, 700, 30, 20))
    assert rec["artifact"] == "kernel:os_mul"
    assert rec["config"] == "k=8"
    assert rec["cycles"] == 926
    assert rec["data"]["rom_reads"] == 700
