"""Benchmark record schema and writer."""

import json

from repro.trace.record import SCHEMA, bench_record, git_sha, write_record


def test_record_has_all_schema_fields():
    rec = bench_record("os_mul", config="k=8", cycles=1234,
                       energy_uj=5.6, wall_s=0.01, data={"rows": 3})
    assert rec["schema"] == SCHEMA
    assert rec["artifact"] == "os_mul"
    assert rec["config"] == "k=8"
    assert rec["cycles"] == 1234
    assert rec["energy_uj"] == 5.6
    assert rec["wall_s"] == 0.01
    assert rec["data"] == {"rows": 3}
    assert rec["timestamp"]
    assert rec["git_sha"]


def test_git_sha_in_this_checkout():
    sha = git_sha()
    assert sha == "unknown" or (len(sha) == 40
                                and all(c in "0123456789abcdef" for c in sha))


def test_git_sha_outside_a_checkout(tmp_path):
    assert git_sha(str(tmp_path)) == "unknown"


def test_write_record_roundtrip(tmp_path):
    rec = bench_record("smoke", cycles=10)
    path = write_record(rec, out_dir=str(tmp_path))
    assert path.endswith("BENCH_smoke.json")
    assert json.loads((tmp_path / "BENCH_smoke.json").read_text()) == rec


def test_write_record_sanitizes_artifact_name(tmp_path):
    rec = bench_record("os_mul:8 (fast)")
    path = write_record(rec, out_dir=str(tmp_path))
    assert path.endswith("BENCH_os_mul_8__fast_.json")


def test_write_record_honours_env_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("BENCH_RECORD_DIR", str(tmp_path / "env_dir"))
    path = write_record(bench_record("x"))
    assert path.startswith(str(tmp_path / "env_dir"))
    assert (tmp_path / "env_dir" / "BENCH_x.json").exists()
