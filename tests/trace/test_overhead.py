"""Tracing-off overhead guard.

The instrumentation contract is one ``if self.tracer is not None:``
branch per site.  This test reconstructs the pre-instrumentation hot
loop by stripping exactly those blocks from the live source of Pete's
hot methods, verifies the stripped replica is cycle-exact, then checks
the instrumented simulator (tracer off) stays within 10% of the
replica's wall-clock.
"""

import inspect
import textwrap
import time

from repro.pete import assemble
from repro.pete import cpu as cpu_module
from repro.pete.cpu import Pete
from repro.pete.memory import RAM_BASE

#: acceptance bound: <= 10% overhead with tracing off
OVERHEAD_BOUND = 1.10

WORKLOAD = f"""
main:
    li $t0, 3000
    li $t1, {RAM_BASE}
loop:
    sw $t0, 0($t1)
    lw $t2, 0($t1)
    addiu $t2, $t2, 3
    mult $t2, $t0
    mflo $t3
    xor $t4, $t3, $t2
    sltu $t5, $t4, $t0
    addiu $t0, $t0, -1
    bne $t0, $zero, loop
    halt
"""


def _stripped(method):
    """The method with every ``if self.tracer is not None:`` block (and
    nothing else) removed, compiled in the cpu module's namespace."""
    src = textwrap.dedent(inspect.getsource(method))
    out: list[str] = []
    skip_indent = None
    for line in src.splitlines():
        stripped = line.strip()
        indent = len(line) - len(line.lstrip())
        if skip_indent is not None:
            if stripped and indent > skip_indent:
                continue
            skip_indent = None
        if stripped.startswith("if self.tracer is not None:"):
            skip_indent = indent
            continue
        out.append(line)
    namespace: dict = {}
    exec(compile("\n".join(out), f"<stripped {method.__name__}>", "exec"),
         vars(cpu_module), namespace)
    return namespace[method.__name__]


class UntracedPete(Pete):
    """Faithful replica of the pre-instrumentation interpreter."""


for _name in ("_fetch", "_wait_muldiv", "_branch", "_step"):
    setattr(UntracedPete, _name, _stripped(getattr(Pete, _name)))


def _run(cls, program):
    cpu = cls()
    cpu.load(program)
    return cpu.run(0)


def _best_time(cls, program, rounds):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        _run(cls, program)
        best = min(best, time.perf_counter() - start)
    return best


def test_stripped_replica_is_cycle_exact():
    program = assemble(WORKLOAD)
    assert (_run(UntracedPete, program).as_dict()
            == _run(Pete, program).as_dict())


def test_tracing_off_overhead_within_bound():
    program = assemble(WORKLOAD)
    # warm both classes (decode caches, import costs)
    _run(UntracedPete, program)
    _run(Pete, program)
    # interleave to share machine-load drift fairly; retry whole
    # attempts so a transient load spike cannot fail a ~3% overhead
    ratio = float("inf")
    for _attempt in range(3):
        base = instrumented = float("inf")
        for _ in range(5):
            base = min(base, _best_time(UntracedPete, program, 1))
            instrumented = min(instrumented, _best_time(Pete, program, 1))
        ratio = min(ratio, instrumented / base)
        if ratio <= OVERHEAD_BOUND:
            break
    assert ratio <= OVERHEAD_BOUND, (
        f"tracer-off overhead {ratio:.3f}x exceeds {OVERHEAD_BOUND}x")
