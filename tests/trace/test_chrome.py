"""Chrome trace_event JSON export: structure, folding, counters."""

import json

from repro.pete import Pete, assemble
from repro.pete.memory import RAM_BASE
from repro.trace import events as ev
from repro.trace.bus import CollectingSink, TraceBus
from repro.trace.chrome import build_chrome_trace, write_chrome_trace
from repro.trace.profiler import Symbolizer

PROGRAM = f"""
main:
    li $t0, 4
    li $t1, {RAM_BASE}
loop:
    sw $t0, 0($t1)
    mult $t0, $t0
    mflo $t2
    addiu $t0, $t0, -1
    bne $t0, $zero, loop
    halt
"""


def _traced_run():
    program = assemble(PROGRAM)
    bus = TraceBus()
    sink = bus.attach(CollectingSink())
    cpu = Pete(tracer=bus)
    cpu.load(program)
    stats = cpu.run(0)
    return program, sink.events, stats


def test_trace_structure_is_valid_trace_event_json():
    program, events, _ = _traced_run()
    trace = build_chrome_trace(events,
                               symbols=Symbolizer.from_program(program))
    assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert trace["displayTimeUnit"] == "ns"
    assert trace["otherData"]["clock_ns"] > 0
    assert {e["ph"] for e in trace["traceEvents"]} <= {"X", "M", "C"}
    for e in trace["traceEvents"]:
        if e["ph"] == "X":
            assert e["ts"] >= 0 and e["dur"] > 0
            assert isinstance(e["pid"], int)
    # loadable by a strict JSON parser
    json.loads(json.dumps(trace))


def test_metadata_slices_name_processes_and_threads():
    program, events, _ = _traced_run()
    trace = build_chrome_trace(events,
                               symbols=Symbolizer.from_program(program))
    meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta}
    assert {"pete", "coprocessor", "stalls", "mul/div unit"} <= names


def test_symbol_folding_preserves_instruction_count():
    program, events, stats = _traced_run()
    trace = build_chrome_trace(events,
                               symbols=Symbolizer.from_program(program))
    retire = [e for e in trace["traceEvents"]
              if e["ph"] == "X" and e["pid"] == 1 and e["tid"] == 1]
    assert sum(e["args"]["instructions"] for e in retire) == stats.instructions
    # folding shrinks: far fewer slices than instructions
    assert len(retire) < stats.instructions
    assert {e["name"] for e in retire} == {"main", "loop"}


def test_unfolded_trace_uses_mnemonics():
    _, events, stats = _traced_run()
    trace = build_chrome_trace(events)  # no symbolizer
    retire = [e for e in trace["traceEvents"]
              if e["ph"] == "X" and (e["pid"], e["tid"]) == (1, 1)]
    names = {e["name"] for e in retire}
    assert "mult" in names and "bne" in names


def test_stall_and_muldiv_tracks_present():
    _, events, _ = _traced_run()
    trace = build_chrome_trace(events)
    tracks = {(e["pid"], e["tid"]) for e in trace["traceEvents"]
              if e["ph"] == "X"}
    assert (1, 2) in tracks  # stalls (mflo waits on mult)
    assert (1, 3) in tracks  # mul/div busy interval
    stall_events = [e for e in events if e.kind == ev.STALL]
    assert stall_events  # the workload does stall


def test_power_counter_events_and_metadata_passthrough(tmp_path):
    program, events, stats = _traced_run()
    series = [(0, 1.5), (64, 2.25)]
    path = tmp_path / "trace.json"
    trace = write_chrome_trace(
        path, events, symbols=Symbolizer.from_program(program),
        power_series=series, metadata={"kernel": "unit-test"})
    counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
    assert [c["args"]["mW"] for c in counters] == [1.5, 2.25]
    assert trace["otherData"]["kernel"] == "unit-test"
    on_disk = json.loads(path.read_text())
    assert on_disk == json.loads(json.dumps(trace))
    assert len(on_disk["traceEvents"]) == len(trace["traceEvents"])
