"""Event bus plumbing: emission, sinks, wiring, null fast path."""

from repro.pete import Pete, assemble
from repro.pete.memory import RAM_BASE
from repro.trace import events as ev
from repro.trace.bus import (
    CollectingSink,
    NullSink,
    TraceBus,
    attach_tracer,
)
from repro.trace.events import TraceEvent

PROGRAM = f"""
main:
    li $t0, 5
    li $t1, {RAM_BASE}
loop:
    sw $t0, 0($t1)
    lw $t2, 0($t1)
    addiu $t0, $t0, -1
    bne $t0, $zero, loop
    halt
"""


def _traced_run():
    bus = TraceBus()
    sink = bus.attach(CollectingSink())
    cpu = Pete(tracer=bus)
    cpu.load(assemble(PROGRAM))
    stats = cpu.run(0)
    return bus, sink, stats


def test_bus_attach_detach_and_fanout():
    bus = TraceBus()
    a, b = CollectingSink(), CollectingSink()
    bus.attach(a)
    bus.attach(b)
    bus.emit(TraceEvent(ev.RETIRE, 0, 1, 0x10, "pete", "addu"))
    assert len(a.events) == len(b.events) == 1
    bus.detach(b)
    bus.emit(TraceEvent(ev.STALL, 1, 1, 0x14, "pete", "load_use"))
    assert len(a.events) == 2 and len(b.events) == 1
    assert bus.events_emitted == 2
    assert NullSink().on_event(a.events[0]) is None


def test_event_as_dict_roundtrip():
    e = TraceEvent(ev.DMA_BURST, 7, 8, -1, "monte.dma", "load", 6)
    d = e.as_dict()
    assert d["kind"] == ev.DMA_BURST and d["cycle"] == 7
    assert d["duration"] == 8 and d["value"] == 6


def test_traced_run_mirrors_stats():
    """Event counts mirror the stat counters one-for-one."""
    _, sink, stats = _traced_run()
    kinds = {}
    for e in sink.events:
        kinds[e.kind] = kinds.get(e.kind, 0) + 1
    assert kinds[ev.RETIRE] == stats.instructions
    assert kinds[ev.RAM_READ] == stats.ram_reads
    assert kinds[ev.RAM_WRITE] == stats.ram_writes
    # uncached fetch: one ROM word read per instruction
    assert kinds[ev.ROM_READ] == stats.rom_word_reads
    stall_cycles = sum(e.duration for e in sink.events
                       if e.kind == ev.STALL)
    assert stall_cycles == stats.stall_cycles
    retire_cycles = sum(e.duration for e in sink.events
                        if e.kind == ev.RETIRE)
    assert retire_cycles == stats.cycles


def test_program_order_events_precede_their_retire():
    """Events of an instruction are emitted before its RETIRE."""
    _, sink, _ = _traced_run()
    pending = []
    for e in sink.events:
        if e.kind == ev.RETIRE:
            for p in pending:
                if p.pc >= 0:
                    assert p.pc == e.pc
            pending.clear()
        else:
            pending.append(e)
    assert not pending  # the halt RETIRE flushed the tail


def test_null_tracer_emits_nothing():
    cpu = Pete()
    assert cpu.tracer is None and cpu.mem.tracer is None
    cpu.load(assemble(PROGRAM))
    cpu.run(0)  # no AttributeError: every site is behind the None check


def test_attach_tracer_wires_components():
    bus = TraceBus()
    cpu = Pete()
    attach_tracer(cpu, bus)
    assert cpu.tracer is bus
    assert cpu.mem.tracer is bus
    assert cpu.muldiv.tracer is bus
