"""Model-level per-operation profile: rows + residual == report."""

import pytest

from repro.model.configs import get_config
from repro.model.system import SystemModel
from repro.trace.opprofile import RESIDUAL_ROW, profile_primitive

#: reconciliation is exact by construction
EXACT = 1e-12


@pytest.mark.parametrize("curve,config,primitive", [
    ("P-192", "baseline", "sign"),
    ("P-256", "baseline", "sign"),
    ("P-256", "isa_ext_ic", "verify"),
    ("P-192", "monte", "sign"),
    ("B-163", "billie", "sign"),
])
def test_profile_reconciles_exactly(curve, config, primitive):
    profile = profile_primitive(curve, config, primitive)
    assert profile.reconcile() <= EXACT
    assert profile.total_nj() == pytest.approx(profile.report.total_nj)


def test_rows_decompose_the_primitive():
    profile = profile_primitive("P-256", "baseline", "sign")
    names = [r.name for r in profile.rows]
    assert len(names) == len(set(names))  # one row per operation class
    assert len(names) > 1
    assert all(r.cycles >= 0 and r.dynamic_nj >= 0 for r in profile.rows)
    # compute rows never exceed the report; the rest is the residual
    assert sum(r.dynamic_nj for r in profile.rows) < profile.report.total_nj
    assert profile.residual_nj > 0


def test_rows_match_model_activity_parts():
    model = SystemModel()
    config = get_config("monte")
    parts = model.activity_parts("P-192", config, "sign")
    profile = profile_primitive("P-192", config, "sign", model=model)
    assert [r.name for r in profile.rows] == list(parts)
    for row, part in zip(profile.rows, parts.values()):
        assert row.cycles == part.cycles


def test_accelerated_rows_name_the_coprocessor():
    monte = profile_primitive("P-192", "monte", "sign")
    assert any("Monte" in r.name for r in monte.rows)
    billie = profile_primitive("B-163", "billie", "sign")
    assert any("Billie" in r.name for r in billie.rows)


def test_table_renders_rows_residual_and_total():
    profile = profile_primitive("P-256", "baseline", "sign")
    table = profile.table()
    assert "P-256/baseline/sign" in table
    assert RESIDUAL_ROW in table
    assert "total" in table and "100.0%" in table
    for r in profile.rows:
        assert r.name in table
