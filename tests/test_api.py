"""The public facade: batch engine, scalar wrappers, sessions."""

import dataclasses

import pytest

from repro.api import BatchItem, BatchRequest, UnknownArtifactError, \
    compute_artifact, compute_batch, open_session, sweep
from repro.energy.calibration import CALIBRATION


def _stable(payload):
    """Payload minus the run-to-run wall-clock field."""
    return {k: v for k, v in payload.items() if k != "wall_s"}


def test_compute_artifact_accepts_only_style_tokens():
    a = compute_artifact("table_7.5")
    b = compute_artifact("7.5", kind="table")
    assert a["text"] == b["text"]
    assert a["text"].startswith("Table 7.5")


def test_ambiguous_and_unknown_names_raise():
    with pytest.raises(UnknownArtifactError, match="ambiguous"):
        compute_artifact("7.5")          # both a table and a figure
    with pytest.raises(UnknownArtifactError):
        compute_artifact("99.9")


def test_sweep_facade_runs_a_selection(tmp_path):
    result = sweep(only=["table_7.3"], cache_dir=tmp_path)
    assert len(result.outcomes) == 1
    assert result.outcomes[0].ok
    warm = sweep(only=["table_7.3"], cache_dir=tmp_path)
    assert warm.hits == 1


def test_session_prices_artifacts_with_its_calibration():
    hot = dataclasses.replace(CALIBRATION, ram_energy_scale=4.0)
    default = compute_artifact("figure_7.4")
    with open_session(calibration=hot) as session:
        scaled = session.compute_artifact("figure_7.4")
    assert scaled["text"] != default["text"]
    # leaving the session restores the default pricing
    assert compute_artifact("figure_7.4")["text"] == default["text"]


def test_session_is_reentrant_and_exposes_identity():
    with open_session() as session:
        with session:
            assert session.fingerprint == CALIBRATION.fingerprint()
    runner = session.runner(ledger=type("L", (), {
        "append": lambda self, r: r})())
    assert runner.cal is CALIBRATION


def test_session_sweep_keys_cache_by_calibration(tmp_path):
    hot = dataclasses.replace(CALIBRATION, ram_energy_scale=4.0)
    cold = sweep(only=["table_7.3"], cache_dir=tmp_path)
    assert cold.computed == 1
    with open_session(calibration=hot) as session:
        other = session.sweep(only=["table_7.3"], cache_dir=tmp_path)
    assert other.computed == 1 and other.hits == 0


def test_pooled_session_sweep_prices_with_its_calibration(tmp_path):
    """jobs>1 must not poison the cache: the payload stored under the
    session's key equals what the session computes inline, not the
    default-calibration result."""
    hot = dataclasses.replace(CALIBRATION, ram_energy_scale=4.0)
    default_text = compute_artifact("figure_7.4")["text"]
    with open_session(calibration=hot) as session:
        pooled = session.sweep(only=["figure_7.4"], jobs=2,
                               cache_dir=tmp_path)
        expected = session.compute_artifact("figure_7.4")["text"]
    (outcome,) = pooled.outcomes
    assert outcome.status == "computed"
    assert outcome.payload["text"] == expected
    assert outcome.payload["text"] != default_text
    # the warm rerun serves that same payload back under the hot key
    with open_session(calibration=hot) as session:
        warm = session.sweep(only=["figure_7.4"], jobs=1,
                             cache_dir=tmp_path)
    assert warm.hits == 1
    assert warm.outcomes[0].payload["text"] == expected


def test_scalar_wrapper_is_identical_to_direct_production():
    """compute_artifact is a batch-of-one now; its payload must stay
    identical (modulo wall clock) to producing the spec directly."""
    from repro.harness.registry import get_spec

    assert _stable(compute_artifact("table_7.3")) == \
        _stable(get_spec("table", "7.3").payload())


def test_scalar_wrapper_still_propagates_producer_errors():
    def boom():
        raise ValueError("producer exploded")

    from repro.harness import registry

    spec = registry.select(["table_7.3"])[0]
    broken = dataclasses.replace(spec, producer=boom)
    import repro.api as api
    orig = api._resolve
    api._resolve = lambda name, kind: broken
    try:
        with pytest.raises(ValueError, match="producer exploded"):
            compute_artifact("table_7.3")
    finally:
        api._resolve = orig


def test_compute_batch_mixed_artifacts_and_order():
    result = compute_batch([BatchItem("table_7.3"),
                            BatchItem("figure_7.4")])
    assert result.ok and len(result) == 2
    assert result.lanes[0].payload["text"].startswith("Table 7.3")
    assert result.lanes[0].item.name == "table_7.3"
    assert result.lanes[1].item.name == "figure_7.4"
    assert result.stats["computed"] == 2
    assert result.stats["failed"] == 0


def test_compute_batch_kernel_fleet():
    pytest.importorskip("numpy")
    result = compute_batch(BatchRequest.kernels("os_mul", 8, lanes=6))
    assert result.ok and len(result) == 6
    for j, lane in enumerate(result.lanes):
        assert lane.payload["kernel"] == "os_mul"
        assert lane.payload["lane"] == j
        assert lane.payload["cycles"] > 0
    assert result.stats["lane_engine"]["lanes"] == 6


def test_compute_batch_accepts_strings_and_overrides(tmp_path):
    result = compute_batch(["table_7.3"], cache=True,
                           cache_dir=tmp_path)
    assert result.ok
    assert result.sweep is not None
    warm = compute_batch(["table_7.3"], cache=True, cache_dir=tmp_path)
    assert warm.lanes[0].status == "hit"
    assert warm.stats["hits"] == 1


def test_compute_batch_kernel_item_requires_k():
    with pytest.raises(ValueError, match="needs k="):
        compute_batch([BatchItem("os_mul", "kernel")])


def test_sweep_remains_byte_identical_through_batch(tmp_path):
    """The batch re-plumbing must not change what sweep returns."""
    from repro.harness.registry import get_spec

    result = sweep(only=["table_7.3"], cache=False)
    assert _stable(result.outcomes[0].payload) == \
        _stable(get_spec("table", "7.3").payload())


def test_unmatched_session_exit_raises():
    session = open_session()
    with pytest.raises(RuntimeError, match="matching __enter__"):
        session.__exit__(None, None, None)


def test_sessions_are_thread_isolated():
    """A session entered on one thread must not leak its model into
    another thread's pricing."""
    import threading

    from repro.model.system import shared_model

    hot = dataclasses.replace(CALIBRATION, ram_energy_scale=4.0)
    entered = threading.Event()
    release = threading.Event()

    def holder():
        with open_session(calibration=hot):
            entered.set()
            release.wait(timeout=10.0)

    thread = threading.Thread(target=holder)
    thread.start()
    try:
        assert entered.wait(timeout=10.0)
        assert shared_model().cal is CALIBRATION
    finally:
        release.set()
        thread.join()
