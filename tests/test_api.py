"""The public facade: compute_artifact, sweep, sessions."""

import dataclasses

import pytest

from repro.api import UnknownArtifactError, compute_artifact, \
    open_session, sweep
from repro.energy.calibration import CALIBRATION


def test_compute_artifact_accepts_only_style_tokens():
    a = compute_artifact("table_7.5")
    b = compute_artifact("7.5", kind="table")
    assert a["text"] == b["text"]
    assert a["text"].startswith("Table 7.5")


def test_ambiguous_and_unknown_names_raise():
    with pytest.raises(UnknownArtifactError, match="ambiguous"):
        compute_artifact("7.5")          # both a table and a figure
    with pytest.raises(UnknownArtifactError):
        compute_artifact("99.9")


def test_sweep_facade_runs_a_selection(tmp_path):
    result = sweep(only=["table_7.3"], cache_dir=tmp_path)
    assert len(result.outcomes) == 1
    assert result.outcomes[0].ok
    warm = sweep(only=["table_7.3"], cache_dir=tmp_path)
    assert warm.hits == 1


def test_session_prices_artifacts_with_its_calibration():
    hot = dataclasses.replace(CALIBRATION, ram_energy_scale=4.0)
    default = compute_artifact("figure_7.4")
    with open_session(calibration=hot) as session:
        scaled = session.compute_artifact("figure_7.4")
    assert scaled["text"] != default["text"]
    # leaving the session restores the default pricing
    assert compute_artifact("figure_7.4")["text"] == default["text"]


def test_session_is_reentrant_and_exposes_identity():
    with open_session() as session:
        with session:
            assert session.fingerprint == CALIBRATION.fingerprint()
    runner = session.runner(ledger=type("L", (), {
        "append": lambda self, r: r})())
    assert runner.cal is CALIBRATION


def test_session_sweep_keys_cache_by_calibration(tmp_path):
    hot = dataclasses.replace(CALIBRATION, ram_energy_scale=4.0)
    cold = sweep(only=["table_7.3"], cache_dir=tmp_path)
    assert cold.computed == 1
    with open_session(calibration=hot) as session:
        other = session.sweep(only=["table_7.3"], cache_dir=tmp_path)
    assert other.computed == 1 and other.hits == 0


def test_pooled_session_sweep_prices_with_its_calibration(tmp_path):
    """jobs>1 must not poison the cache: the payload stored under the
    session's key equals what the session computes inline, not the
    default-calibration result."""
    hot = dataclasses.replace(CALIBRATION, ram_energy_scale=4.0)
    default_text = compute_artifact("figure_7.4")["text"]
    with open_session(calibration=hot) as session:
        pooled = session.sweep(only=["figure_7.4"], jobs=2,
                               cache_dir=tmp_path)
        expected = session.compute_artifact("figure_7.4")["text"]
    (outcome,) = pooled.outcomes
    assert outcome.status == "computed"
    assert outcome.payload["text"] == expected
    assert outcome.payload["text"] != default_text
    # the warm rerun serves that same payload back under the hot key
    with open_session(calibration=hot) as session:
        warm = session.sweep(only=["figure_7.4"], jobs=1,
                             cache_dir=tmp_path)
    assert warm.hits == 1
    assert warm.outcomes[0].payload["text"] == expected


def test_unmatched_session_exit_raises():
    session = open_session()
    with pytest.raises(RuntimeError, match="matching __enter__"):
        session.__exit__(None, None, None)


def test_sessions_are_thread_isolated():
    """A session entered on one thread must not leak its model into
    another thread's pricing."""
    import threading

    from repro.model.system import shared_model

    hot = dataclasses.replace(CALIBRATION, ram_energy_scale=4.0)
    entered = threading.Event()
    release = threading.Event()

    def holder():
        with open_session(calibration=hot):
            entered.set()
            release.wait(timeout=10.0)

    thread = threading.Thread(target=holder)
    thread.start()
    try:
        assert entered.wait(timeout=10.0)
        assert shared_model().cal is CALIBRATION
    finally:
        release.set()
        thread.join()
