"""Generated assembly kernels: correctness (validated in the runner) and
cycle-count anchors against the paper's published kernel measurements."""

import pytest

from repro.kernels.runner import KernelRunner, shared_runner

WORD_COUNTS = {
    "mp_add": (6, 8, 13, 17, 18),
    "mp_sub": (6, 9, 17),
    "os_mul": (6, 7, 8, 12, 13, 17),
    "ps_mul_ext": (6, 7, 8, 12, 13, 17, 18),
    "ps_sqr_ext": (6, 8, 13, 18),
    "comb_mul": (6, 8, 9, 13, 18),
    "ps_mulgf2": (6, 8, 9, 13, 18),
    "bsqr_table": (6, 9, 18),
    "bsqr_ext": (6, 9, 18),
}


@pytest.fixture(scope="module")
def runner():
    return shared_runner()


@pytest.mark.parametrize("name,ks", sorted(WORD_COUNTS.items()))
def test_kernel_validates_at_all_sizes(runner, name, ks):
    """measure() asserts bit-exact results against repro.mp internally."""
    previous = 0
    for k in ks:
        result = runner.measure(name, k)
        assert result.cycles > 0
        assert result.instructions <= result.cycles
        assert result.cycles > previous, "cost grows with operand size"
        previous = result.cycles


def test_reductions_validate(runner):
    assert runner.measure("red_p192", 6).cycles > 0
    assert runner.measure("red_b163", 6).cycles > 0


def test_paper_kernel_anchors(runner):
    """Section 4.2.2's measured kernel cycle counts."""
    ps_prime = runner.measure("ps_mul_ext", 6).cycles
    ps_binary = runner.measure("ps_mulgf2", 6).cycles
    assert abs(ps_prime - 374) / 374 < 0.10, \
        f"prime product scanning {ps_prime} vs paper 374"
    assert abs(ps_binary - 376) / 376 < 0.10, \
        f"binary product scanning {ps_binary} vs paper 376"
    # "the reduction for B163 takes 100 clock cycles"
    red_b = runner.measure("red_b163", 6).cycles
    assert abs(red_b - 100) / 100 < 0.10, f"B-163 reduction {red_b} vs 100"
    # P-192 reduction: the paper measures 97; our register-resident
    # kernel carries the full conditional-subtract machinery
    red_p = runner.measure("red_p192", 6).cycles
    assert 80 <= red_p <= 220


def test_scaling_is_quadratic(runner):
    """Multiplication kernels scale ~O(k^2) (paper Section 4.2)."""
    for name in ("os_mul", "ps_mul_ext", "comb_mul"):
        small = runner.measure(name, 6).cycles
        large = runner.measure(name, 13).cycles
        ratio = large / small
        expected = (13 / 6) ** 2
        assert 0.55 * expected < ratio < 1.35 * expected, \
            f"{name}: {ratio:.2f} vs quadratic {expected:.2f}"


def test_addition_is_linear(runner):
    small = runner.measure("mp_add", 6).cycles
    large = runner.measure("mp_add", 18).cycles
    ratio = large / small
    assert 2.0 < ratio < 4.0, "O(k) scaling"


def test_squaring_cheaper_than_multiplying(runner):
    """Binary squaring is O(k) vs O(k^2) multiplication (Section 4.2.3)."""
    assert runner.measure("bsqr_ext", 6).cycles < \
        runner.measure("ps_mulgf2", 6).cycles / 3
    assert runner.measure("bsqr_table", 6).cycles < \
        runner.measure("comb_mul", 6).cycles / 5


def test_isa_extensions_beat_baseline_multiply(runner):
    """Product scanning with MADDU beats operand scanning (the premise
    of the ISA-extension configuration)."""
    for k in (6, 8, 17):
        assert runner.measure("ps_mul_ext", k).cycles < \
            runner.measure("os_mul", k).cycles


def test_comb_without_clmul_is_much_slower(runner):
    """Software comb multiplication vs the MADDGF2 path -- why binary
    fields are impractical without hardware support (Section 5.2.2)."""
    for k in (6, 18):
        ratio = (runner.measure("comb_mul", k).cycles
                 / runner.measure("ps_mulgf2", k).cycles)
        assert ratio > 4.0


def test_measurements_are_cached(runner):
    a = runner.measure("mp_add", 6)
    b = runner.measure("mp_add", 6)
    assert a is b


def test_unknown_kernel():
    with pytest.raises(KeyError):
        KernelRunner().measure("nonexistent", 6)


def test_ram_traffic_reported(runner):
    result = runner.measure("os_mul", 6)
    # operand loads + partial-product read/write traffic
    assert result.ram_reads > 2 * 6
    assert result.ram_writes >= 2 * 6
    assert result.rom_reads == result.instructions
