"""The scalar-loop kernels run correctly on Pete and differ in shape.

Correctness comes from the runner (result checked against Python);
the shape claim -- double-and-add's cycle count depends on the scalar's
Hamming weight while the ladder's does not -- is the dynamic companion
to the static classification in ``tests/analysis/test_taint.py``.
"""

from repro.kernels.runner import DST_OFF, KernelRunner
from repro.kernels import scalar_kernels
from repro.pete.memory import RAM_BASE


def _cycles(gen, scalar, value=0x12345678, nbits=8):
    runner = KernelRunner()
    name = "scalar_daa" if gen is scalar_kernels.gen_scalar_daa \
        else "scalar_ladder"
    cpu, entry = runner._build_cpu(gen(nbits), name, False, False)
    cpu.set_reg("a0", RAM_BASE + DST_OFF)
    cpu.set_reg("a1", scalar)
    cpu.set_reg("a2", value)
    cpu.run(entry)
    got = cpu.mem.read_ram_words(RAM_BASE + DST_OFF, 1)[0]
    assert got == (scalar * value) & 0xFFFFFFFF
    return cpu.stats.cycles


def test_runner_validates_scalar_daa():
    result = KernelRunner().measure("scalar_daa", 8)
    assert result.cycles > 0


def test_runner_validates_scalar_ladder():
    result = KernelRunner().measure("scalar_ladder", 8)
    assert result.cycles > 0


def test_daa_cycles_depend_on_hamming_weight():
    light = _cycles(scalar_kernels.gen_scalar_daa, 0x01)   # weight 1
    heavy = _cycles(scalar_kernels.gen_scalar_daa, 0xFF)   # weight 8
    assert heavy > light


def test_ladder_cycles_independent_of_scalar():
    cycles = {_cycles(scalar_kernels.gen_scalar_ladder, s)
              for s in (0x00, 0x01, 0x55, 0xAA, 0xFF)}
    assert len(cycles) == 1


def test_kernels_agree_with_each_other():
    for scalar in (0, 1, 0x37, 0xC2, 0xFF):
        daa = _cycles(scalar_kernels.gen_scalar_daa, scalar)
        lad = _cycles(scalar_kernels.gen_scalar_ladder, scalar)
        assert daa > 0 and lad > 0
