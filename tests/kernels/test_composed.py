"""Composed whole-field-operation programs on Pete."""


from repro.fields import BinaryField, PrimeField
from repro.kernels.composed import run_fmul_b163, run_fmul_p192
from repro.kernels.runner import shared_runner
from repro.model.costs import software_costs


def test_fmul_p192_correct(rng):
    f = PrimeField.nist(192)
    for _ in range(5):
        a, b = rng.randrange(f.p), rng.randrange(f.p)
        result = run_fmul_p192(a, b)
        assert result.value == f.mul(a, b)


def test_fmul_p192_edge_operands():
    f = PrimeField.nist(192)
    for a, b in [(0, 5), (1, f.p - 1), (f.p - 1, f.p - 1), (2, 2)]:
        assert run_fmul_p192(a, b).value == f.mul(a, b)


def test_fmul_b163_correct(rng):
    f = BinaryField.nist(163)
    for _ in range(5):
        a, b = rng.getrandbits(163), rng.getrandbits(163)
        result = run_fmul_b163(a, b)
        assert result.value == f.mul(a, b)


def test_fmul_b163_edge_operands():
    f = BinaryField.nist(163)
    top = (1 << 163) - 1
    for a, b in [(0, top), (1, top), (top, top)]:
        assert run_fmul_b163(a, b).value == f.mul(a, b)


def test_composition_overhead_is_small(rng):
    """The measured whole-function cost is the kernel costs plus modest
    call glue -- the analytic model's overhead assumption."""
    runner = shared_runner()
    a, b = rng.getrandbits(192), rng.getrandbits(192)
    composed = run_fmul_p192(a, b)
    parts = (runner.measure("os_mul", 6).cycles
             + runner.measure("red_p192", 6).cycles)
    glue = composed.cycles - parts
    assert 0 < glue < 80, f"call glue measured at {glue} cycles"


def test_model_cost_brackets_measurement(rng):
    """The cost model's baseline fmul (kernel + calibrated C++ overhead)
    must upper-bound the hand-written composition and stay within ~2x
    of it (compiled code is slower than hand-scheduled assembly, not
    an order of magnitude slower)."""
    a, b = rng.getrandbits(192), rng.getrandbits(192)
    measured = run_fmul_p192(a, b).cycles
    modeled = software_costs("P-192", "baseline")["fmul"].cycles
    assert measured < modeled < 2.0 * measured
