"""Serve tests run with a clean, disabled telemetry plane."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _reset_obs():
    obs.disable()
    yield
    obs.disable()
