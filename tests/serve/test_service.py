"""Service-plane behavior with in-process fake workers.

The fakes implement the :class:`WorkerHandle` duck type (``call`` /
``alive`` / ``stop`` / ``close``) so these tests exercise the full
admission -> dispatch -> settle path -- typed shedding, graceful
mid-flight shutdown, worker-loss flushing, load-generator
reconciliation -- without paying multiprocessing spawn time.
"""

import asyncio

import pytest

from repro.serve.loadgen import LoadConfig, run_load
from repro.serve.service import (
    RUNTIME_STATS,
    ServeConfig,
    SigningService,
    runtime_stats_snapshot,
)
from repro.serve.types import (
    RequestShed,
    ServeRequest,
    ServiceDraining,
    UnknownOperation,
    UnsupportedConfig,
    WorkerFailure,
)


class FakeWorker:
    """In-process stand-in for one warm worker process."""

    def __init__(self, index, cfg, obs_ctx=None,
                 delay_s=0.0, die_on_batch=False):
        self.index = index
        self.cfg = cfg
        self.delay_s = delay_s
        self.die_on_batch = die_on_batch
        self.batches = 0
        self._alive = True

    @property
    def pid(self):
        return 10_000 + self.index

    @property
    def alive(self):
        return self._alive

    async def call(self, message, timeout_s=None):
        kind = message[0]
        if kind == "init":
            return ("ready", {"pid": self.pid, "profiles": {}})
        if kind == "batch":
            if self.die_on_batch:
                self._alive = False
                raise EOFError("worker gone")
            _, seq, kernel, k, n, config = message
            if self.delay_s:
                await asyncio.sleep(self.delay_s)
            lanes = [{"cycles": 100 + i, "instructions": 80,
                      "energy_nj": 1.5} for i in range(n)]
            return ("ok", seq, {
                "lanes": lanes, "wall_s": self.delay_s,
                "prepare_s": 0.0, "compiled": 0, "warm": True})
        if kind == "stop":
            self._alive = False
            return ("bye", {"batches": self.batches, "telemetry": None})
        raise AssertionError(f"unexpected message {kind!r}")

    async def stop(self, timeout_s=10.0):
        self._alive = False
        return {"batches": self.batches, "telemetry": None}

    def close(self, force=False):
        self._alive = False


class ListLedger:
    def __init__(self):
        self.records = []

    def append(self, record):
        self.records.append(record)


def _service(ledger=None, delay_s=0.0, die_on_batch=False, **knobs):
    knobs.setdefault("workers", 1)
    knobs.setdefault("batch_window_s", 0.0)

    def factory(index, cfg, obs_ctx=None):
        return FakeWorker(index, cfg, obs_ctx,
                          delay_s=delay_s, die_on_batch=die_on_batch)

    return SigningService(ServeConfig(**knobs),
                          ledger=ledger or ListLedger(),
                          worker_factory=factory)


def test_submit_round_trip_and_ledger_record():
    async def scenario():
        ledger = ListLedger()
        service = _service(ledger=ledger)
        await service.start()
        base = runtime_stats_snapshot()
        response = await service.submit(ServeRequest("sign", "P-192"))
        assert response.ok
        assert response.kernel == "fmul_p192"
        assert response.cycles == 100
        assert response.batch_size == 1
        assert response.worker == 0
        assert response.latency_s > 0
        counters = await service.stop()
        assert counters["requests_served"] == 1
        assert counters["batches_formed"] == 1
        assert counters["latency"]["count"] == 1
        assert (RUNTIME_STATS["requests_served"]
                - base["requests_served"]) == 1
        # stop() appended the kind="serve" regress record
        [record] = ledger.records
        assert record["kind"] == "serve"
        assert record["data"]["requests_served"] == 1
        # a stopped service refuses new admissions, typed
        with pytest.raises(ServiceDraining):
            await service.submit(ServeRequest("sign"))

    asyncio.run(scenario())


def test_malformed_requests_raise_typed_errors():
    async def scenario():
        service = _service()
        await service.start()
        try:
            with pytest.raises(UnknownOperation):
                await service.submit(ServeRequest("frobnicate"))
            with pytest.raises(UnsupportedConfig):
                await service.submit(
                    ServeRequest("sign", config="monte"))
        finally:
            await service.stop()

    asyncio.run(scenario())


def test_backpressure_sheds_typed_not_timeout():
    async def scenario():
        service = _service(delay_s=0.05, max_depth=2)
        await service.start()
        base = runtime_stats_snapshot()
        tasks = [asyncio.ensure_future(
            service.submit(ServeRequest("sign", "P-192")))
            for _ in range(6)]
        # one tick: every submit reaches admission before any
        # dispatcher wakes, so exactly max_depth are admitted
        await asyncio.sleep(0)
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        shed = [o for o in outcomes if isinstance(o, RequestShed)]
        served = [o for o in outcomes
                  if not isinstance(o, BaseException)]
        assert len(shed) == 4 and len(served) == 2
        assert all(r.ok for r in served)
        counters = await service.stop()
        assert counters["requests_shed"] == 4
        assert counters["requests_served"] == 2
        assert (RUNTIME_STATS["requests_shed"]
                - base["requests_shed"]) == 4

    asyncio.run(scenario())


def test_graceful_shutdown_drains_in_flight():
    """The mid-flight regression: requests admitted before shutdown
    complete normally; requests after it are refused, typed."""

    async def scenario():
        service = _service(delay_s=0.05, max_batch=2)
        await service.start()
        tasks = [asyncio.ensure_future(
            service.submit(ServeRequest("sign", "P-192")))
            for _ in range(5)]
        await asyncio.sleep(0)          # all five admitted
        stop_task = asyncio.ensure_future(service.stop())
        await asyncio.sleep(0)          # stop() closed admission
        with pytest.raises(ServiceDraining):
            await service.submit(ServeRequest("sign", "P-192"))
        responses = await asyncio.gather(*tasks)
        assert all(r.ok for r in responses)
        counters = await stop_task
        assert counters["requests_served"] == 5
        assert counters["requests_failed"] == 0
        assert counters["queue_depth"] == 0
        assert service.stopped
        assert all(not w.alive for w in service.workers)

    asyncio.run(scenario())


def test_worker_loss_fails_batch_and_flushes_queue():
    async def scenario():
        service = _service(die_on_batch=True, max_batch=1)
        await service.start()
        tasks = [asyncio.ensure_future(
            service.submit(ServeRequest("sign", "P-192")))
            for _ in range(3)]
        await asyncio.sleep(0)
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        # the dispatched request fails as a response, naming the cause
        failed = [o for o in outcomes
                  if not isinstance(o, BaseException)]
        assert len(failed) == 1 and not failed[0].ok
        assert "lost" in failed[0].error
        # the still-queued requests are flushed with the typed error
        flushed = [o for o in outcomes
                   if isinstance(o, WorkerFailure)]
        assert len(flushed) == 2
        counters = await service.stop()
        assert counters["requests_failed"] == 1
        assert counters["worker_deaths"] == 1
        assert counters["queue_depth"] == 0

    asyncio.run(scenario())


def test_loadgen_books_reconcile_with_service_counters():
    async def scenario():
        service = _service(workers=2)
        await service.start()
        # pre-run traffic, so reconcile must use deltas not absolutes
        await service.submit(ServeRequest("sign", "P-192"))
        report = await run_load(service, LoadConfig(
            requests=40, rate_rps=5000.0, seed=7))
        assert report.offered == 40
        assert report.completed == 40
        assert report.shed == report.drained == report.failed == 0
        assert report.latency.count == 40
        assert report.reconcile(service.counters()) == []
        await service.stop()

    asyncio.run(scenario())


def test_deterministic_request_sequence():
    from repro.serve.loadgen import request_sequence

    cfg = LoadConfig(requests=25, seed=99)
    first = [(r.op, r.curve) for r, _ in request_sequence(cfg)]
    second = [(r.op, r.curve) for r, _ in request_sequence(cfg)]
    assert first == second
    assert len(first) == 25
