"""End-to-end service test with one real worker process.

Boots the service through :func:`repro.api.serve_session`, drives a
few batches of real lane-engine work, and pins the two properties the
CI smoke gate depends on: *warm steady state* (after warm-up, no
batch triggers fastpath block discovery in the worker) and *clean
shutdown* (no orphaned worker processes).
"""

import asyncio
import os

import pytest

from repro.api import ServeConfig, ServeRequest, serve_session
from repro.serve.service import worker_pids


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


@pytest.mark.slow
def test_real_worker_warm_steady_state_and_clean_shutdown(tmp_path):
    async def scenario():
        config = ServeConfig(
            workers=1, stock_target=4, max_batch=8,
            warm_plans=(("fmul_p192", 6),),
            cache_dir=tmp_path / "cache")
        async with serve_session(config) as service:
            pids = worker_pids(service)
            assert len(pids) == 1
            for _ in range(3):
                responses = await asyncio.gather(*(
                    service.submit(ServeRequest("sign", "P-192"))
                    for _ in range(4)))
                assert all(r.ok for r in responses)
                assert all(r.cycles > 0 and r.energy_nj > 0
                           for r in responses)
            counters = service.counters()
            assert counters["requests_served"] == 12
            assert counters["batches_formed"] >= 3
            # the acceptance bar: zero fastpath block discovery once
            # the worker is warm (static CFG closure at warm-up)
            assert counters["post_warm_compiles"] == 0
            return service, pids

    service, pids = asyncio.run(scenario())
    # serve_session stopped the service on exit: nothing orphaned
    assert service.stopped
    assert worker_pids(service) == []
    assert not any(_pid_alive(pid) for pid in pids)
