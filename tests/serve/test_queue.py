"""Admission-queue contracts: typed shedding, homogeneous batches.

Backpressure must be *typed and immediate* -- a request over the
configured depth raises :class:`RequestShed` at admission, it never
sits in the queue waiting for a timeout -- and the queue's own
counters (plus the :mod:`repro.obs` mirrors when enabled) must agree
with what a caller observed.
"""

import asyncio

import pytest

from repro import obs
from repro.serve.queue import AdmissionQueue, QueueEntry
from repro.serve.types import (
    RequestShed,
    ServeRequest,
    ServiceDraining,
    WorkerFailure,
    plan_for,
)


def _entry(op="sign", curve="P-192", config="baseline"):
    request = ServeRequest(op=op, curve=curve, config=config)
    return QueueEntry(
        request=request,
        plan=plan_for(op, curve),
        future=asyncio.get_running_loop().create_future())


def test_shed_is_typed_and_immediate():
    async def scenario():
        queue = AdmissionQueue(max_depth=2)
        queue.admit(_entry())
        queue.admit(_entry())
        with pytest.raises(RequestShed):
            queue.admit(_entry())
        # the rejection never consumed a slot or an admission
        assert queue.depth == 2
        assert queue.admitted == 2
        assert queue.shed == 1

    asyncio.run(scenario())


def test_draining_refuses_new_admissions():
    async def scenario():
        queue = AdmissionQueue(max_depth=4)
        queue.admit(_entry())
        queue.close()
        with pytest.raises(ServiceDraining):
            queue.admit(_entry())
        # queued work still drains, then the dispatcher signal fires
        batch = await queue.next_batch(max_batch=8)
        assert batch is not None and len(batch) == 1
        assert await queue.next_batch(max_batch=8) is None

    asyncio.run(scenario())


def test_batches_are_plan_and_config_homogeneous():
    async def scenario():
        queue = AdmissionQueue(max_depth=64)
        # three distinct groups: two plans, and one plan split by config
        for _ in range(3):
            queue.admit(_entry("sign", "P-192", "baseline"))
            queue.admit(_entry("verify", "P-192", "baseline"))
            queue.admit(_entry("sign", "P-192", "isa_ext"))
        queue.close()
        batches = []
        while True:
            batch = await queue.next_batch(max_batch=8)
            if batch is None:
                break
            batches.append(batch)
        assert sum(len(b) for b in batches) == 9
        groups = []
        for batch in batches:
            assert len({e.group for e in batch}) == 1
            groups.append(batch[0].group)
        # every (plan, config) class formed its own batch
        assert len(set(groups)) == 3

    asyncio.run(scenario())


def test_round_robin_alternates_groups():
    async def scenario():
        queue = AdmissionQueue(max_depth=64)
        for _ in range(4):
            queue.admit(_entry("sign", "P-192"))
            queue.admit(_entry("verify", "P-192"))
        queue.close()
        order = []
        while True:
            batch = await queue.next_batch(max_batch=2)
            if batch is None:
                break
            order.append(batch[0].plan.kernel)
        # neither group starves: the dispatcher alternates between them
        assert order == ["fmul_p192", "os_mul", "fmul_p192", "os_mul"]

    asyncio.run(scenario())


def test_flush_fails_every_pending_future():
    async def scenario():
        queue = AdmissionQueue(max_depth=8)
        entries = [_entry(), _entry("verify"), _entry("ecdh")]
        for entry in entries:
            queue.admit(entry)
        failed = queue.flush(WorkerFailure("workers gone"))
        assert failed == 3
        assert queue.depth == 0
        for entry in entries:
            with pytest.raises(WorkerFailure):
                entry.future.result()

    asyncio.run(scenario())


def test_obs_counters_match_queue_accounting():
    async def scenario():
        tel = obs.enable()
        queue = AdmissionQueue(max_depth=2)
        queue.admit(_entry())
        queue.admit(_entry("verify"))
        with pytest.raises(RequestShed):
            queue.admit(_entry())
        assert tel.gauge("serve_queue_depth").value == queue.depth == 2
        assert tel.counter("serve_shed_total").value == queue.shed == 1
        admitted = sum(
            tel.counter("serve_admitted_total", op=op, curve="P-192").value
            for op in ("sign", "verify"))
        assert admitted == queue.admitted == 2
        await queue.next_batch(max_batch=8)   # one batch = one group
        await queue.next_batch(max_batch=8)
        assert tel.gauge("serve_queue_depth").value == queue.depth == 0

    asyncio.run(scenario())
