"""Speck64/128: reference implementation, kernel and energy grounding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.symmetric import (
    speck64_decrypt,
    speck64_encrypt,
    speck64_expand_key,
    speck_ctr_keystream,
)


def test_published_test_vector():
    """The Speck authors' Speck64/128 vector."""
    key = ((0x1B1A1918 << 96) | (0x13121110 << 64)
           | (0x0B0A0908 << 32) | 0x03020100)
    round_keys = speck64_expand_key(key)
    plaintext = 0x3B7265747475432D
    ciphertext = speck64_encrypt(plaintext, round_keys)
    assert ciphertext == 0x8C6FA548454E028B
    assert speck64_decrypt(ciphertext, round_keys) == plaintext


def test_key_schedule_shape():
    round_keys = speck64_expand_key(0x0123456789ABCDEF)
    assert len(round_keys) == 27
    assert all(0 <= k < (1 << 32) for k in round_keys)


def test_input_validation():
    with pytest.raises(ValueError):
        speck64_expand_key(1 << 128)
    with pytest.raises(ValueError):
        speck64_encrypt(1 << 64, speck64_expand_key(1))


def test_ctr_keystream(rng):
    key = rng.getrandbits(128)
    nonce = rng.getrandbits(32)
    stream = speck_ctr_keystream(key, nonce, blocks=4)
    assert len(stream) == 32
    assert stream != speck_ctr_keystream(key, nonce ^ 1, blocks=4)
    # deterministic
    assert stream == speck_ctr_keystream(key, nonce, blocks=4)
    # no trivially repeating blocks
    blocks = [stream[i:i + 8] for i in range(0, 32, 8)]
    assert len(set(blocks)) == 4


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 128) - 1),
       st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_encrypt_decrypt_property(key, block):
    round_keys = speck64_expand_key(key)
    assert speck64_decrypt(speck64_encrypt(block, round_keys),
                           round_keys) == block


def test_kernel_matches_reference():
    """The generated Pete kernel is validated inside the runner."""
    from repro.kernels.runner import shared_runner

    result = shared_runner().measure("speck64", 1)
    # 27 ARX rounds at ~11 single-cycle ops each
    assert 280 <= result.cycles <= 360
    assert result.ram_reads == 27 + 2, "round keys + the block"


def test_symmetric_energy_measured():
    """The protocol layer's nJ/byte comes from the kernel measurement
    and sits in the right regime: far below the radio's uJ/byte."""
    from repro.protocols.handshake import (
        RADIO_UJ_PER_BYTE,
        symmetric_uj_per_byte,
    )

    per_byte = symmetric_uj_per_byte()
    assert 0.0005 <= per_byte <= 0.005
    assert per_byte < RADIO_UJ_PER_BYTE / 100, \
        "bulk encryption is compute-cheap; the radio dominates traffic"
