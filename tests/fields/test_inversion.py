"""Inversion algorithms: Euclid variants, Fermat, Itoh-Tsujii, batching."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fields import BinaryField, PrimeField
from repro.fields.inversion import (
    batch_inverse,
    binary_euclid_inverse,
    egcd_inverse,
    fermat_inverse,
    fermat_prime_opcounts,
    itoh_tsujii_chain,
    itoh_tsujii_opcounts,
    poly_euclid_inverse,
)
from repro.fields.nist import NIST_BINARY_POLYS, NIST_PRIMES


def test_all_integer_inverses_agree(rng):
    p = NIST_PRIMES[192]
    for _ in range(25):
        a = rng.randrange(1, p)
        expected = pow(a, -1, p)
        assert egcd_inverse(a, p) == expected
        assert binary_euclid_inverse(a, p) == expected
        assert fermat_inverse(a, p) == expected


def test_zero_raises_everywhere():
    p = NIST_PRIMES[192]
    for fn in (egcd_inverse, binary_euclid_inverse, fermat_inverse):
        with pytest.raises(ZeroDivisionError):
            fn(0, p)
    with pytest.raises(ZeroDivisionError):
        poly_euclid_inverse(0, NIST_BINARY_POLYS[163])


def test_non_invertible_raises():
    with pytest.raises(ValueError):
        egcd_inverse(6, 9)


def test_fermat_opcounts():
    sqr, mul = fermat_prime_opcounts(NIST_PRIMES[192])
    # exponent p-2 has bit length 192
    assert sqr == 191
    assert mul == bin(NIST_PRIMES[192] - 2).count("1") - 1
    assert mul > 0


@pytest.mark.parametrize("m", [163, 233, 283, 409, 571])
def test_itoh_tsujii_chain_reaches_m_minus_1(m):
    chain = itoh_tsujii_chain(m)
    have = 1
    for i, j in chain:
        assert i == have, "chain always extends the running beta"
        assert j in (1, have)
        have = i + j
    assert have == m - 1
    sqr, mul = itoh_tsujii_opcounts(m)
    assert mul == len(chain)
    assert sqr == sum(j for _, j in chain) + 1


def test_batch_inverse_prime(rng):
    f = PrimeField.nist(192)
    values = [rng.randrange(1, f.p) for _ in range(7)]
    f.counter.reset()
    inverses = batch_inverse(f, values)
    assert f.counter["finv"] == 1, "one true inversion for the batch"
    assert f.counter["fmul"] == 3 * (len(values) - 1)
    assert all(f.mul(v, i) == 1 for v, i in zip(values, inverses))


def test_batch_inverse_binary(rng):
    f = BinaryField.nist(163)
    values = [rng.getrandbits(163) or 1 for _ in range(5)]
    inverses = batch_inverse(f, values)
    assert all(f.mul(v, i) == 1 for v, i in zip(values, inverses))


def test_batch_inverse_edge_cases():
    f = PrimeField.nist(192)
    assert batch_inverse(f, []) == []
    assert f.mul(5, batch_inverse(f, [5])[0]) == 1


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=(1 << 163) - 1))
def test_poly_euclid_property(a):
    poly = NIST_BINARY_POLYS[163]
    f = BinaryField.nist(163)
    assert f.mul(a, poly_euclid_inverse(a, poly)) == 1
