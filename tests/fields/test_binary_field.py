"""Binary fields: carry-less arithmetic, NIST reduction, inversion."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fields import BinaryField
from repro.fields.inversion import _poly_mul, _poly_sqr
from repro.fields.nist import (
    BINARY_TAIL_EXPONENTS,
    NIST_BINARY_POLYS,
    reduce_binary,
)

ALL_M = sorted(NIST_BINARY_POLYS)


@pytest.mark.parametrize("m", ALL_M)
def test_polynomials_have_expected_degree_and_tail(m):
    poly = NIST_BINARY_POLYS[m]
    assert poly.bit_length() - 1 == m
    tail = BINARY_TAIL_EXPONENTS[m]
    rebuilt = (1 << m) | sum(1 << e for e in tail)
    assert rebuilt == poly


@pytest.mark.parametrize("m", ALL_M)
def test_fast_reduction_matches_generic(m, rng):
    poly = NIST_BINARY_POLYS[m]
    for _ in range(100):
        c = rng.getrandbits(2 * m - 1)
        ref = c
        while ref.bit_length() - 1 >= m:
            ref ^= poly << (ref.bit_length() - 1 - m)
        assert reduce_binary(c, m) == ref


@pytest.mark.parametrize("m", ALL_M)
def test_field_laws(m, rng):
    f = BinaryField.nist(m)
    for _ in range(30):
        a = rng.getrandbits(m)
        b = rng.getrandbits(m)
        c = rng.getrandbits(m)
        assert f.add(a, b) == a ^ b
        assert f.sub(a, b) == f.add(a, b), "subtraction equals addition"
        assert f.add(a, a) == 0, "characteristic 2"
        assert f.neg(a) == a
        assert f.mul(a, b) == f.mul(b, a)
        # distributivity
        assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))
        # squaring is the Frobenius map: (a+b)^2 = a^2 + b^2
        assert f.sqr(f.add(a, b)) == f.add(f.sqr(a), f.sqr(b))
        assert f.sqr(a) == f.mul(a, a)


def test_example_from_paper_gf27():
    """The worked GF(2^7) examples of Section 2.1.4."""
    f = BinaryField((1 << 7) | (1 << 1) | 1)  # x^7 + x + 1
    a = 0b1011001  # x^6 + x^4 + x^3 + 1
    b = 0b0110101  # x^5 + x^4 + x^2 + 1
    assert f.add(a, b) == 0b1101100  # x^6 + x^5 + x^3 + x^2
    mul_a = 0b1001010  # x^6 + x^3 + x
    mul_b = 0b1000101  # x^6 + x^2 + 1
    assert f.mul(mul_a, mul_b) == 0b1011    # x^3 + x + 1
    sqr_in = 0b1001001  # x^6 + x^3 + 1
    assert f.sqr(sqr_in) == 0b100001        # x^5 + 1


@pytest.mark.parametrize("m", [163, 283])
def test_inversion_methods_agree(m, rng):
    f = BinaryField.nist(m)
    for _ in range(10):
        a = rng.getrandbits(m) or 1
        euclid = f.inv(a, "euclid")
        itoh = f.inv(a, "itoh-tsujii")
        assert euclid == itoh
        assert f.mul(a, euclid) == 1


def test_inversion_of_zero_raises():
    f = BinaryField.nist(163)
    with pytest.raises(ZeroDivisionError):
        f.inv(0)


def test_trace_and_half_trace(rng):
    f = BinaryField.nist(163)
    for _ in range(5):
        a = rng.getrandbits(163)
        t = f.trace(a)
        assert t in (0, 1)
        # trace is additive
        b = rng.getrandbits(163)
        assert f.trace(f.add(a, b)) == f.trace(a) ^ f.trace(b)
    # half-trace solves z^2 + z = a when Tr(a) = 0
    for _ in range(5):
        a = rng.getrandbits(163)
        if f.trace(a) == 0:
            z = f.half_trace(a)
            assert f.add(f.sqr(z), z) == a


def test_words():
    assert BinaryField.nist(163).words() == 6
    assert BinaryField.nist(571).words() == 18


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 163) - 1),
       st.integers(min_value=0, max_value=(1 << 163) - 1))
def test_mul_matches_poly_mul_reduce(a, b):
    f = BinaryField.nist(163)
    assert f.mul(a, b) == reduce_binary(_poly_mul(a, b), 163)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 233) - 1))
def test_sqr_matches_poly_sqr(a):
    f = BinaryField.nist(233)
    assert f.sqr(a) == reduce_binary(_poly_sqr(a), 233)
