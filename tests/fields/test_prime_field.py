"""Prime fields: arithmetic laws, NIST fast reduction, inversion."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.fields import PrimeField
from repro.fields.nist import NIST_PRIMES, PRIME_REDUCERS

ALL_BITS = sorted(NIST_PRIMES)


@pytest.mark.parametrize("bits", ALL_BITS)
def test_nist_primes_are_odd_and_sized(bits):
    p = NIST_PRIMES[bits]
    assert p % 2 == 1
    assert p.bit_length() == bits


@pytest.mark.parametrize("bits", ALL_BITS)
def test_fast_reduction_matches_modulo(bits, rng):
    p = NIST_PRIMES[bits]
    reduce_fn = PRIME_REDUCERS[bits]
    for _ in range(200):
        a = rng.randrange(p)
        b = rng.randrange(p)
        assert reduce_fn(a * b) == (a * b) % p
    # boundary products
    assert reduce_fn((p - 1) * (p - 1)) == ((p - 1) * (p - 1)) % p
    assert reduce_fn(0) == 0
    assert reduce_fn(p) == 0
    assert reduce_fn(p - 1) == p - 1


@pytest.mark.parametrize("bits", ALL_BITS)
def test_field_operations(bits, rng):
    f = PrimeField.nist(bits)
    p = f.p
    for _ in range(50):
        a, b, c = (rng.randrange(p) for _ in range(3))
        assert f.add(a, b) == (a + b) % p
        assert f.sub(a, b) == (a - b) % p
        assert f.mul(a, b) == (a * b) % p
        assert f.sqr(a) == (a * a) % p
        assert f.neg(a) == (-a) % p
        # distributivity
        assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))


def test_inversion_both_methods(rng):
    f = PrimeField.nist(192)
    for _ in range(25):
        a = rng.randrange(1, f.p)
        assert f.mul(a, f.inv(a, "euclid")) == 1
        assert f.mul(a, f.inv(a, "fermat")) == 1
        assert f.inv(a, "euclid") == f.inv(a, "fermat")


def test_inversion_of_zero_raises():
    f = PrimeField.nist(192)
    with pytest.raises(ZeroDivisionError):
        f.inv(0)
    with pytest.raises(ValueError):
        f.inv(0, "unknown-method")


def test_division(rng):
    f = PrimeField.nist(256)
    a, b = rng.randrange(1, f.p), rng.randrange(1, f.p)
    assert f.mul(f.div(a, b), b) == a


def test_half(rng):
    f = PrimeField.nist(224)
    for _ in range(20):
        a = rng.randrange(f.p)
        assert f.add(f.half(a), f.half(a)) == a


def test_words_and_element():
    f = PrimeField.nist(521)
    assert f.words() == 17
    assert f.words(64) == 9
    assert f.element(f.p + 5) == 5
    assert f.contains(f.p - 1)
    assert not f.contains(f.p)


def test_counter_tracks_operations():
    f = PrimeField.nist(192)
    f.counter.reset()
    f.mul(2, 3)
    f.add(1, 1)
    f.sqr(5)
    assert f.counter["fmul"] == 1
    assert f.counter["fadd"] == 1
    assert f.counter["fsqr"] == 1


def test_shared_nist_instances():
    assert PrimeField.nist(192) is PrimeField.nist(192)
    assert PrimeField.nist(192) == PrimeField(NIST_PRIMES[192])


def test_rejects_bad_modulus():
    with pytest.raises(ValueError):
        PrimeField(10)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=NIST_PRIMES[256] - 1),
       st.integers(min_value=0, max_value=NIST_PRIMES[256] - 1))
def test_p256_reduction_property(a, b):
    assert PRIME_REDUCERS[256](a * b) == (a * b) % NIST_PRIMES[256]


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=NIST_PRIMES[192] - 1))
def test_inverse_property(a):
    f = PrimeField.nist(192)
    assert f.mul(a, f.inv(a)) == 1
