"""Scalar multiplication algorithms and scalar recodings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ec.curves import CURVES, get_curve
from repro.ec.point import INFINITY, affine_add, affine_neg, affine_scalar_mul
from repro.ec.scalar import (
    montgomery_ladder,
    naf,
    precompute_odd_multiples,
    rtl_double_and_add,
    sliding_window_mul,
    twin_mul,
    width_naf,
)


def test_naf_properties(rng):
    for _ in range(50):
        x = rng.getrandbits(64)
        digits = naf(x)
        assert sum(d << i for i, d in enumerate(digits)) == x
        assert all(d in (-1, 0, 1) for d in digits)
        # non-adjacency
        for a, b in zip(digits, digits[1:]):
            assert not (a and b)


def test_width_naf_properties(rng):
    for width in (2, 3, 4, 5):
        for _ in range(25):
            x = rng.getrandbits(96)
            digits = width_naf(x, width)
            assert sum(d << i for i, d in enumerate(digits)) == x
            for d in digits:
                if d:
                    assert d % 2 == 1, "nonzero digits are odd"
                    assert abs(d) < (1 << (width - 1))
            # at most one nonzero digit per window
            for i, d in enumerate(digits):
                if d:
                    assert all(not e for e in digits[i + 1:i + width])


def test_width_naf_validation():
    with pytest.raises(ValueError):
        width_naf(5, 1)


@pytest.mark.parametrize("name", CURVES)
def test_sliding_window_matches_reference(name, rng):
    curve = get_curve(name)
    g = curve.generator
    for _ in range(3):
        k = rng.randrange(2, 2000)
        assert sliding_window_mul(curve, k, g) == \
            affine_scalar_mul(curve, k, g)


@pytest.mark.parametrize("name", ["P-256", "B-233"])
def test_full_size_scalars(name, rng):
    curve = get_curve(name)
    k = rng.randrange(1, curve.n)
    result = sliding_window_mul(curve, k, curve.generator)
    assert curve.contains(result)
    assert rtl_double_and_add(curve, k, curve.generator) == result


def test_sliding_window_edge_cases():
    curve = get_curve("P-192")
    g = curve.generator
    assert sliding_window_mul(curve, 0, g) == INFINITY
    assert sliding_window_mul(curve, 1, g) == g
    assert sliding_window_mul(curve, 5, INFINITY) == INFINITY
    # negative scalar = positive scalar of the negated point
    assert sliding_window_mul(curve, -7, g) == \
        sliding_window_mul(curve, 7, affine_neg(curve, g))


def test_precompute_table(any_curve):
    curve = any_curve
    g = curve.generator
    curve.reset_counters()
    table = precompute_odd_multiples(curve, g)
    # single batched inversion (Montgomery's trick)
    assert curve.field.counter["finv"] == 1
    assert table[1] == g
    assert table[3] == affine_scalar_mul(curve, 3, g)
    assert table[5] == affine_scalar_mul(curve, 5, g)
    curve.reset_counters()


@pytest.mark.parametrize("name", ["P-192", "B-163", "P-521", "B-571"])
def test_twin_mul(name, rng):
    curve = get_curve(name)
    g = curve.generator
    q = affine_scalar_mul(curve, 7, g)
    for _ in range(3):
        u1 = rng.randrange(1, 3000)
        u2 = rng.randrange(1, 3000)
        expected = affine_add(curve, affine_scalar_mul(curve, u1, g),
                              affine_scalar_mul(curve, u2, q))
        assert twin_mul(curve, u1, g, u2, q) == expected


def test_twin_mul_degenerate_cases(rng):
    curve = get_curve("P-192")
    g = curve.generator
    q = affine_scalar_mul(curve, 3, g)
    assert twin_mul(curve, 0, g, 5, q) == affine_scalar_mul(curve, 5, q)
    assert twin_mul(curve, 5, g, 0, q) == affine_scalar_mul(curve, 5, g)
    with pytest.raises(ValueError):
        twin_mul(curve, -1, g, 1, q)


def test_twin_mul_uses_one_precompute_inversion():
    curve = get_curve("P-192")
    g = curve.generator
    q = affine_scalar_mul(curve, 9, g)
    curve.reset_counters()
    twin_mul(curve, 12345, g, 6789, q)
    # one inversion for the P+/-Q batch, one for the final conversion
    assert curve.field.counter["finv"] == 2
    curve.reset_counters()


@pytest.mark.parametrize("name", ["B-163", "B-283"])
def test_montgomery_ladder(name, rng):
    curve = get_curve(name)
    g = curve.generator
    for _ in range(5):
        k = rng.randrange(2, 5000)
        assert montgomery_ladder(curve, k, g) == \
            affine_scalar_mul(curve, k, g)
    assert montgomery_ladder(curve, 0, g) == INFINITY
    assert montgomery_ladder(curve, 1, g) == g


def test_ladder_rejects_prime_curves():
    with pytest.raises(ValueError):
        montgomery_ladder(get_curve("P-192"), 5, get_curve("P-192").generator)


def test_ladder_full_size(rng):
    curve = get_curve("B-163")
    k = rng.randrange(1, curve.n)
    assert montgomery_ladder(curve, k, curve.generator) == \
        sliding_window_mul(curve, k, curve.generator)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 128) - 1))
def test_width_naf_reconstruction_property(x):
    digits = width_naf(x, 3)
    assert sum(d << i for i, d in enumerate(digits)) == x


def test_fractional_naf_reconstruction(rng):
    from repro.ec.scalar import fractional_naf

    for _ in range(100):
        x = rng.getrandbits(rng.randrange(1, 200))
        digits = fractional_naf(x)
        assert sum(d << i for i, d in enumerate(digits)) == x


def test_fractional_naf_digit_set(rng):
    """The paper's table: digits live in {0, +-1, +-3, +-5}."""
    from repro.ec.scalar import fractional_naf

    for _ in range(50):
        x = rng.getrandbits(128)
        for d in fractional_naf(x):
            assert d == 0 or (d % 2 == 1 or d % 2 == -1)
            assert abs(d) <= 5


def test_fractional_naf_denser_windows_than_naf(rng):
    """The {1,3,5} digit set needs no more adds than plain NAF and
    usually fewer -- the point of precomputing 3P and 5P."""
    from repro.ec.scalar import fractional_naf, naf

    total_frac = total_naf = 0
    for _ in range(30):
        x = rng.getrandbits(192)
        total_frac += sum(1 for d in fractional_naf(x) if d)
        total_naf += sum(1 for d in naf(x) if d)
    assert total_frac < total_naf


def test_fractional_naf_validation():
    from repro.ec.scalar import fractional_naf

    import pytest as _pytest

    with _pytest.raises(ValueError):
        fractional_naf(5, digit_max=4)
    with _pytest.raises(ValueError):
        fractional_naf(5, digit_max=-1)
    assert fractional_naf(0) == []
