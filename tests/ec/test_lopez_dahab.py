"""Mixed Lopez-Dahab-affine arithmetic vs the affine reference."""

import pytest

from repro.ec.curves import get_curve
from repro.ec.lopez_dahab import (
    LD_INFINITY,
    LDPoint,
    ld_add_full,
    ld_add_mixed,
    ld_double,
    ld_neg,
    to_affine,
    to_ld,
)
from repro.ec.point import INFINITY, affine_add, affine_neg, affine_scalar_mul


@pytest.fixture(params=["B-163", "B-409"])
def curve(request):
    return get_curve(request.param)


def _random_ld(curve, rng, n):
    """n*G with a randomized Z: (X/Z, Y/Z^2) representation."""
    f = curve.field
    p = affine_scalar_mul(curve, n, curve.generator)
    z = rng.getrandbits(curve.bits - 2) | 1
    return LDPoint(f.mul(p.x, z), f.mul(p.y, f.sqr(z)), z), p


def test_projection_round_trip(curve):
    g = curve.generator
    assert to_affine(curve, to_ld(g)) == g
    assert to_affine(curve, LD_INFINITY) == INFINITY


def test_double_matches_affine(curve, rng):
    for _ in range(10):
        lp, ap = _random_ld(curve, rng, rng.randrange(2, 200))
        assert to_affine(curve, ld_double(curve, lp)) == \
            affine_add(curve, ap, ap)


def test_mixed_add_matches_affine(curve, rng):
    for _ in range(10):
        lp, ap = _random_ld(curve, rng, rng.randrange(2, 200))
        q = affine_scalar_mul(curve, rng.randrange(2, 200), curve.generator)
        assert to_affine(curve, ld_add_mixed(curve, lp, q)) == \
            affine_add(curve, ap, q)


def test_full_add_matches_affine(curve, rng):
    for _ in range(10):
        lp, ap = _random_ld(curve, rng, rng.randrange(2, 200))
        lq, aq = _random_ld(curve, rng, rng.randrange(2, 200))
        assert to_affine(curve, ld_add_full(curve, lp, lq)) == \
            affine_add(curve, ap, aq)


def test_special_cases(curve):
    g = curve.generator
    lg = to_ld(g)
    assert to_affine(curve, ld_add_mixed(curve, lg, g)) == \
        affine_add(curve, g, g)
    assert to_affine(curve, ld_add_mixed(curve, lg, affine_neg(curve, g))) \
        == INFINITY
    assert to_affine(curve, ld_add_full(curve, lg, lg)) == \
        affine_add(curve, g, g)
    assert ld_add_full(curve, LD_INFINITY, lg) == lg
    assert ld_double(curve, LD_INFINITY) == LD_INFINITY


def test_neg(curve):
    """-(X, Y, Z) = (X, XZ + Y, Z), the LD-specific negation."""
    g = curve.generator
    lg = to_ld(g)
    assert to_affine(curve, ld_neg(curve, lg)) == affine_neg(curve, g)
    # and with a non-trivial Z
    f = curve.field
    z = 0b1011
    lp = LDPoint(f.mul(g.x, z), f.mul(g.y, f.sqr(z)), z)
    assert to_affine(curve, ld_neg(curve, lp)) == affine_neg(curve, g)


def test_double_operation_count():
    """LD doubling costs 4M + 5S on the a = 1 NIST curves."""
    curve = get_curve("B-163")
    lp = to_ld(curve.generator)
    curve.reset_counters()
    ld_double(curve, lp)
    counts = curve.field.counter.snapshot()
    assert counts.get("fmul", 0) == 4
    assert counts.get("fsqr", 0) == 5
    curve.reset_counters()


def test_mixed_add_operation_count():
    curve = get_curve("B-163")
    lp = ld_double(curve, to_ld(curve.generator))
    q = affine_scalar_mul(curve, 3, curve.generator)
    curve.reset_counters()
    ld_add_mixed(curve, lp, q)
    counts = curve.field.counter.snapshot()
    assert counts.get("fmul", 0) == 8
    assert counts.get("fsqr", 0) == 5
    curve.reset_counters()
