"""Point compression/serialization round trips on every curve."""

import pytest

from repro.ec.compression import (
    DecompressionError,
    compress,
    decode_uncompressed,
    decompress,
    encode_uncompressed,
    signature_from_bytes,
    signature_to_bytes,
    sqrt_mod_p,
)
from repro.ec.curves import CURVES, get_curve
from repro.ec.point import INFINITY, affine_scalar_mul
from repro.ecdsa import generate_keypair, sign
from repro.fields.nist import NIST_PRIMES


@pytest.mark.parametrize("bits", sorted(NIST_PRIMES))
def test_sqrt_mod_p(bits, rng):
    p = NIST_PRIMES[bits]
    for _ in range(10):
        a = rng.randrange(p)
        square = a * a % p
        root = sqrt_mod_p(square, p)
        assert root is not None
        assert root * root % p == square
    assert sqrt_mod_p(0, p) == 0


def test_sqrt_rejects_non_residues(rng):
    p = NIST_PRIMES[192]
    rejected = 0
    for _ in range(20):
        a = rng.randrange(2, p)
        if sqrt_mod_p(a, p) is None:
            rejected += 1
    assert rejected > 0, "about half of all residues are non-squares"


@pytest.mark.parametrize("name", CURVES)
def test_compress_round_trip(name, rng):
    curve = get_curve(name)
    for n in (1, 2, 7, rng.randrange(3, 5000)):
        point = affine_scalar_mul(curve, n, curve.generator)
        encoded = compress(curve, point)
        assert len(encoded) == 1 + (curve.bits + 7) // 8
        assert decompress(curve, encoded) == point


@pytest.mark.parametrize("name", ["P-224"])
def test_tonelli_shanks_path(name, rng):
    """P-224 has p = 1 (mod 4): exercises the general square root."""
    curve = get_curve(name)
    point = affine_scalar_mul(curve, 12345, curve.generator)
    assert decompress(curve, compress(curve, point)) == point


def test_infinity_encoding():
    curve = get_curve("P-192")
    assert compress(curve, INFINITY) == b"\x00"
    assert decompress(curve, b"\x00") == INFINITY
    assert encode_uncompressed(curve, INFINITY) == b"\x00"


def test_bad_encodings_rejected():
    curve = get_curve("P-192")
    with pytest.raises(DecompressionError):
        decompress(curve, b"\x05" + b"\x00" * 24)
    with pytest.raises(DecompressionError):
        decompress(curve, b"\x02" + b"\x00" * 10)
    # an x with no curve point
    for x in range(2, 50):
        data = bytes([0x02]) + x.to_bytes(24, "big")
        try:
            point = decompress(curve, data)
            assert curve.contains(point)
        except DecompressionError:
            break
    else:
        pytest.fail("expected at least one off-curve x")


def test_binary_off_curve_rejected():
    curve = get_curve("B-163")
    rejections = 0
    for x in range(2, 60):
        data = bytes([0x02]) + x.to_bytes(21, "big")
        try:
            decompress(curve, data)
        except DecompressionError:
            rejections += 1
    assert rejections > 0


@pytest.mark.parametrize("name", ["P-256", "B-233"])
def test_uncompressed_round_trip(name):
    curve = get_curve(name)
    point = affine_scalar_mul(curve, 999, curve.generator)
    data = encode_uncompressed(curve, point)
    assert data[0] == 0x04
    assert decode_uncompressed(curve, data) == point
    tampered = bytearray(data)
    tampered[-1] ^= 1
    with pytest.raises(DecompressionError):
        decode_uncompressed(curve, bytes(tampered))


@pytest.mark.parametrize("name", ["P-192", "B-163"])
def test_signature_serialization(name):
    curve = get_curve(name)
    d, _ = generate_keypair(curve)
    sig = sign(curve, d, b"wire format")
    data = signature_to_bytes(curve, sig)
    assert len(data) == 2 * ((curve.n.bit_length() + 7) // 8)
    assert signature_from_bytes(curve, data) == sig
    with pytest.raises(ValueError):
        signature_from_bytes(curve, data[:-1])


def test_compressed_halves_the_radio_bytes():
    """The Pabbuleti-style trade: compressed keys cost ~half the bytes."""
    curve = get_curve("B-163")
    _, public = generate_keypair(curve)
    assert len(compress(curve, public)) < \
        len(encode_uncompressed(curve, public)) * 0.6
