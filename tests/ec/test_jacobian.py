"""Mixed Jacobian-affine arithmetic vs the affine reference."""

import pytest

from repro.ec.curves import get_curve
from repro.ec.jacobian import (
    JACOBIAN_INFINITY,
    JacobianPoint,
    jacobian_add,
    jacobian_add_mixed,
    jacobian_double,
    jacobian_neg,
    to_affine,
    to_jacobian,
)
from repro.ec.point import INFINITY, affine_add, affine_neg, affine_scalar_mul


@pytest.fixture(params=["P-192", "P-384"])
def curve(request):
    return get_curve(request.param)


def _random_jacobian(curve, rng, n):
    """n*G with a randomized Z (same point, different representation)."""
    f = curve.field
    p = affine_scalar_mul(curve, n, curve.generator)
    z = rng.randrange(2, f.p)
    zsq = f.sqr(z)
    return JacobianPoint(f.mul(p.x, zsq), f.mul(p.y, f.mul(zsq, z)), z), p


def test_projection_round_trip(curve):
    g = curve.generator
    assert to_affine(curve, to_jacobian(g)) == g
    assert to_affine(curve, JACOBIAN_INFINITY) == INFINITY
    assert to_jacobian(INFINITY) == JACOBIAN_INFINITY


def test_double_matches_affine(curve, rng):
    for _ in range(10):
        jp, ap = _random_jacobian(curve, rng, rng.randrange(2, 200))
        assert to_affine(curve, jacobian_double(curve, jp)) == \
            affine_add(curve, ap, ap)


def test_mixed_add_matches_affine(curve, rng):
    for _ in range(10):
        jp, ap = _random_jacobian(curve, rng, rng.randrange(2, 200))
        q = affine_scalar_mul(curve, rng.randrange(2, 200), curve.generator)
        assert to_affine(curve, jacobian_add_mixed(curve, jp, q)) == \
            affine_add(curve, ap, q)


def test_full_add_matches_affine(curve, rng):
    for _ in range(10):
        jp, ap = _random_jacobian(curve, rng, rng.randrange(2, 200))
        jq, aq = _random_jacobian(curve, rng, rng.randrange(2, 200))
        assert to_affine(curve, jacobian_add(curve, jp, jq)) == \
            affine_add(curve, ap, aq)


def test_special_cases(curve):
    g = curve.generator
    jg = to_jacobian(g)
    # P + P via mixed add falls back to doubling
    assert to_affine(curve, jacobian_add_mixed(curve, jg, g)) == \
        affine_add(curve, g, g)
    # P + (-P) = infinity
    assert to_affine(curve,
                     jacobian_add_mixed(curve, jg, affine_neg(curve, g))) \
        == INFINITY
    # identity handling
    assert jacobian_add_mixed(curve, JACOBIAN_INFINITY, g) == to_jacobian(g)
    assert jacobian_add(curve, jg, JACOBIAN_INFINITY) == jg
    assert jacobian_double(curve, JACOBIAN_INFINITY) == JACOBIAN_INFINITY


def test_neg(curve):
    jg = to_jacobian(curve.generator)
    assert to_affine(curve, jacobian_neg(curve, jg)) == \
        affine_neg(curve, curve.generator)


def test_double_operation_count():
    """The a = -3 doubling costs 4M + 4S (constants via addition chains)."""
    curve = get_curve("P-192")
    jp = to_jacobian(curve.generator)
    curve.reset_counters()
    jacobian_double(curve, jp)
    counts = curve.field.counter.snapshot()
    assert counts["fmul"] == 4
    assert counts["fsqr"] == 4
    curve.reset_counters()


def test_mixed_add_operation_count():
    curve = get_curve("P-192")
    jp = jacobian_double(curve, to_jacobian(curve.generator))
    q = affine_scalar_mul(curve, 3, curve.generator)
    curve.reset_counters()
    jacobian_add_mixed(curve, jp, q)
    counts = curve.field.counter.snapshot()
    assert counts["fmul"] == 8
    assert counts["fsqr"] == 3
    curve.reset_counters()
