"""Affine reference arithmetic: group laws on both field families."""

import pytest

from repro.ec.curves import get_curve
from repro.ec.point import (
    INFINITY,
    AffinePoint,
    affine_add,
    affine_neg,
    affine_scalar_mul,
)


@pytest.fixture(params=["P-192", "B-163"])
def curve(request):
    return get_curve(request.param)


def test_identity_laws(curve):
    g = curve.generator
    assert affine_add(curve, g, INFINITY) == g
    assert affine_add(curve, INFINITY, g) == g
    assert affine_add(curve, INFINITY, INFINITY) == INFINITY


def test_inverse_law(curve):
    g = curve.generator
    neg = affine_neg(curve, g)
    assert curve.contains(neg)
    assert affine_add(curve, g, neg) == INFINITY
    assert affine_neg(curve, INFINITY) == INFINITY
    assert affine_neg(curve, neg) == g


def test_commutativity(curve, rng):
    g = curve.generator
    p = affine_scalar_mul(curve, rng.randrange(2, 100), g)
    q = affine_scalar_mul(curve, rng.randrange(2, 100), g)
    assert affine_add(curve, p, q) == affine_add(curve, q, p)


def test_associativity(curve, rng):
    g = curve.generator
    pts = [affine_scalar_mul(curve, rng.randrange(2, 100), g)
           for _ in range(3)]
    p, q, r = pts
    lhs = affine_add(curve, affine_add(curve, p, q), r)
    rhs = affine_add(curve, p, affine_add(curve, q, r))
    assert lhs == rhs


def test_doubling_consistency(curve):
    g = curve.generator
    two_g = affine_add(curve, g, g)
    assert curve.contains(two_g)
    three_g = affine_add(curve, two_g, g)
    assert three_g == affine_scalar_mul(curve, 3, g)


def test_scalar_mul_linearity(curve):
    g = curve.generator
    a, b = 17, 31
    lhs = affine_scalar_mul(curve, a + b, g)
    rhs = affine_add(curve, affine_scalar_mul(curve, a, g),
                     affine_scalar_mul(curve, b, g))
    assert lhs == rhs


def test_scalar_zero_and_order(curve):
    assert affine_scalar_mul(curve, 0, curve.generator) == INFINITY


def test_point_truthiness():
    assert not INFINITY
    assert AffinePoint(1, 2)


def test_all_points_stay_on_curve(curve, rng):
    g = curve.generator
    for _ in range(10):
        k = rng.randrange(1, 500)
        assert curve.contains(affine_scalar_mul(curve, k, g))
