"""Property-based point-compression tests (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.ec.compression import (
    DecompressionError,
    compress,
    decompress,
    sqrt_mod_p,
)
from repro.ec.curves import get_curve
from repro.ec.point import affine_scalar_mul
from repro.fields.nist import NIST_PRIMES

_P192 = get_curve("P-192")
_B163 = get_curve("B-163")


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=100_000))
def test_prime_compression_round_trip(n):
    point = affine_scalar_mul(_P192, n, _P192.generator)
    assert decompress(_P192, compress(_P192, point)) == point


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=100_000))
def test_binary_compression_round_trip(n):
    point = affine_scalar_mul(_B163, n, _B163.generator)
    assert decompress(_B163, compress(_B163, point)) == point


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=NIST_PRIMES[224] - 1))
def test_sqrt_mod_p224_property(a):
    """The Tonelli-Shanks path: a root squares back, or None only for
    true non-residues."""
    p = NIST_PRIMES[224]
    root = sqrt_mod_p(a, p)
    if root is None:
        assert pow(a, (p - 1) // 2, p) == p - 1
    else:
        assert root * root % p == a % p


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=25, max_size=25))
def test_decompress_never_returns_offcurve_garbage(data):
    """Arbitrary bytes either decode to an on-curve point or raise."""
    encoded = bytes([0x02 | (data[0] & 1)]) + data[1:]
    try:
        point = decompress(_P192, encoded)
    except DecompressionError:
        return
    assert _P192.contains(point)
