"""Curve registry: parameter validity for all ten NIST curves."""

import pytest

from repro.ec.curves import CURVES, SECURITY_PAIRS, get_curve
from repro.ec.point import AffinePoint
from repro.ec.scalar import sliding_window_mul
from repro.ec.point import INFINITY


@pytest.mark.parametrize("name", CURVES)
def test_generator_on_curve(name):
    curve = get_curve(name)
    assert curve.contains(curve.generator)
    assert curve.contains(INFINITY)


@pytest.mark.parametrize("name", CURVES)
def test_order_satisfies_hasse_bound(name):
    curve = get_curve(name)
    # |#E - (q + 1)| <= 2 sqrt(q), with #E = n * h
    field_order = 2 ** curve.bits if curve.is_binary else curve.field.p
    group = curve.n * curve.h
    assert abs(group - (field_order + 1)) <= 2 * (1 << (curve.bits // 2 + 1))
    assert curve.n % 2 == 1


@pytest.mark.parametrize("name", ["P-192", "P-521", "B-163", "B-571"])
def test_generator_has_order_n(name):
    curve = get_curve(name)
    assert sliding_window_mul(curve, curve.n, curve.generator) == INFINITY
    assert sliding_window_mul(curve, 1, curve.generator) == curve.generator


def test_random_point_rejected():
    curve = get_curve("P-192")
    assert not curve.contains(AffinePoint(12345, 67890))


def test_prime_curves_use_a_minus_3():
    for name in CURVES:
        curve = get_curve(name)
        if not curve.is_binary:
            assert curve.a == curve.field.p - 3
        else:
            assert curve.a == 1


def test_curve_metadata():
    p192 = get_curve("P-192")
    assert p192.bits == 192
    assert not p192.is_binary
    assert p192.h == 1
    b163 = get_curve("B-163")
    assert b163.bits == 163
    assert b163.is_binary
    assert b163.h == 2


def test_unknown_curve():
    with pytest.raises(KeyError):
        get_curve("P-128")
    with pytest.raises(KeyError):
        get_curve("X-163")


def test_security_pairs_cover_all_curves():
    primes = {p for p, _ in SECURITY_PAIRS}
    binaries = {b for _, b in SECURITY_PAIRS}
    assert primes == {c for c in CURVES if c.startswith("P")}
    assert binaries == {c for c in CURVES if c.startswith("B")}


def test_curves_are_cached():
    assert get_curve("P-256") is get_curve("P-256")


def test_counters_reset():
    curve = get_curve("P-192")
    curve.field.counter.count("fmul")
    curve.order_counter.count("omul")
    curve.reset_counters()
    assert curve.field.counter.total() == 0
    assert curve.order_counter.total() == 0
