"""The paper's headline results, asserted as regression bands.

Each test quotes the claim from the evaluation chapter and asserts our
measured value lands in (or documented-close-to) the published band; the
tolerances and known deviations are recorded in EXPERIMENTS.md.
"""

import pytest

from repro.model.system import SystemModel
from repro.harness.tables import PAPER_TABLE_7_1, PAPER_TABLE_7_2


@pytest.fixture(scope="module")
def model():
    return SystemModel()


def _sv_uj(model, curve, config):
    return model.report(curve, config).total_uj


def test_isa_extension_factor(model):
    """'For ISA extensions, we show between 1.32 and 1.45 factor
    improvement in energy efficiency over baseline.'  (The paper's own
    Table 7.1 implies up to 1.50 at 384-bit and 1.62 on the 521-bit
    signature, so the upper tolerance is widened accordingly.)"""
    for curve in ("P-192", "P-224", "P-256", "P-384", "P-521"):
        factor = (_sv_uj(model, curve, "baseline")
                  / _sv_uj(model, curve, "isa_ext"))
        assert 1.30 <= factor <= 1.70, (curve, factor)
    # at the headline key sizes the published band holds exactly
    for curve in ("P-192", "P-256"):
        factor = (_sv_uj(model, curve, "baseline")
                  / _sv_uj(model, curve, "isa_ext"))
        assert 1.32 <= factor <= 1.48, (curve, factor)


def test_monte_factor(model):
    """'For full acceleration we demonstrate a 5.17 to 6.34 factor
    improvement.'"""
    for curve in ("P-192", "P-224", "P-256", "P-384", "P-521"):
        factor = (_sv_uj(model, curve, "baseline")
                  / _sv_uj(model, curve, "monte"))
        assert 5.0 <= factor <= 7.0, (curve, factor)


def test_isa_with_icache_factor(model):
    """'For such a system, we see a 1.67 to 2.08 factor improvement in
    energy compared to baseline.'"""
    for curve in ("P-192", "P-256"):
        factor = (_sv_uj(model, curve, "baseline")
                  / _sv_uj(model, curve, "isa_ext_ic"))
        assert 1.67 <= factor <= 2.25, (curve, factor)


def test_binary_software_impractical(model):
    """'The software without binary support is less energy efficient
    than the ISA extended version by a factor of 6.40 to 8.46.'"""
    for curve in ("B-163", "B-233", "B-283", "B-409", "B-571"):
        factor = (_sv_uj(model, curve, "baseline")
                  / _sv_uj(model, curve, "binary_isa"))
        assert 6.0 <= factor <= 8.5, (curve, factor)


def test_binary_beats_prime_at_equal_security(model):
    """'The result is a 1.30 to 2.11 factor improvement over prime ISA
    extensions comparing fields of equivalent security', largest at the
    smallest keys (52.2 % less energy at 163/192-bit)."""
    factors = {}
    for prime, binary in (("P-192", "B-163"), ("P-256", "B-283"),
                          ("P-521", "B-571")):
        factors[prime] = (_sv_uj(model, prime, "isa_ext")
                          / _sv_uj(model, binary, "binary_isa"))
    assert 1.6 <= factors["P-192"] <= 2.11, factors
    assert factors["P-192"] > factors["P-256"] >= factors["P-521"], \
        "the binary advantage shrinks as its field outgrows the prime's"
    assert all(f > 1.05 for f in factors.values())


def test_billie_vs_monte(model):
    """'For full GF(2^m) acceleration with Billie, we observe a 1.92
    factor improvement over Monte for 163-bit.  However ... the energy
    cost for Billie converges with that of Monte' at large fields."""
    at_163 = (_sv_uj(model, "P-192", "monte")
              / _sv_uj(model, "B-163", "billie"))
    assert 1.7 <= at_163 <= 2.2, at_163
    at_571 = (_sv_uj(model, "P-521", "monte")
              / _sv_uj(model, "B-571", "billie"))
    assert 0.8 <= at_571 <= 1.45, ("converged", at_571)
    assert at_163 > at_571


def test_monte_reduces_power(model):
    """'The configuration with Monte reduces the power draw even further
    (18.6 % less power compared to baseline).'"""
    base = model.report("P-192", "baseline").power_mw
    monte = model.report("P-192", "monte").power_mw
    drop = 100 * (1 - monte / base)
    assert 15.0 <= drop <= 30.0, drop


def test_billie_systems_draw_most_power(model):
    """'The systems with Billie, however, consume the most power
    overall', growing ~linearly with field size (Section 7.4)."""
    baseline = model.report("B-163", "baseline").power_mw
    b163 = model.report("B-163", "billie").power_mw
    b571 = model.report("B-571", "billie").power_mw
    assert b163 > baseline
    assert b571 > 1.8 * b163


def test_static_power_share(model):
    """'The static power ... appears to be a minor portion of the
    overall power (8.5 %).'"""
    report = model.report("P-192", "baseline")
    share = 100 * report.static_power_mw / report.power_mw
    assert 4.0 <= share <= 12.0, share


def test_ideal_icache_improvement(model):
    """'Close to a 50 % improvement in overall energy with an ideal
    instruction cache for the baseline and ISA extended
    microarchitectures', far less for Monte and shrinking with key
    size (Fig. 7.11)."""
    for config in ("baseline", "isa_ext"):
        full = model.report("P-192", config).total_uj
        ideal = model.report("P-192", config, ideal_icache=True).total_uj
        improvement = 100 * (1 - ideal / full)
        assert 38.0 <= improvement <= 55.0, (config, improvement)
    monte_gain = {}
    for curve in ("P-192", "P-384"):
        full = model.report(curve, "monte").total_uj
        ideal = model.report(curve, "monte", ideal_icache=True).total_uj
        monte_gain[curve] = 100 * (1 - ideal / full)
    assert monte_gain["P-192"] < 20.0
    assert monte_gain["P-384"] < monte_gain["P-192"], \
        "the benefit decreases as more computation shifts to Monte"


def test_latency_tables_within_tolerance(model):
    """Tables 7.1/7.2 row-by-row: within 45 % of the paper's cycle
    counts (the paper's P-521 baseline-verify entry is anomalous and
    excluded; see EXPERIMENTS.md)."""
    for (curve, config), (ps, pv) in {**PAPER_TABLE_7_1,
                                      **PAPER_TABLE_7_2}.items():
        lat = model.latency(curve, config)
        assert abs(lat.sign_cycles / 1e5 - ps) / ps < 0.45, \
            (curve, config, "sign", lat.sign_cycles / 1e5, ps)
        if (curve, config) == ("P-521", "baseline"):
            continue  # the paper's 304.8 verify value breaks its own trend
        assert abs(lat.verify_cycles / 1e5 - pv) / pv < 0.45, \
            (curve, config, "verify", lat.verify_cycles / 1e5, pv)


def test_double_buffering_ablation():
    """Section 7.7: 'overlapping data movement with computation amounts
    to a 13.5 % improvement' (384-bit); 9.4 % at 192-bit."""
    from repro.harness.figures import sec7_7_double_buffer

    costs = sec7_7_double_buffer()
    assert 5.0 <= costs["P-192"] <= 30.0
    assert 5.0 <= costs["P-384"] <= 25.0


def test_ffau_width_study_crossover():
    """Fig. 7.15: 32-bit is energy-optimal at 192-bit; the optimum moves
    to >= 64 bits for larger keys."""
    from repro.harness.tables import ffau_width_point

    e192 = {w: ffau_width_point(w, 192)["energy_nj"] for w in (8, 16, 32, 64)}
    assert min(e192, key=e192.get) == 32
    e384 = {w: ffau_width_point(w, 384)["energy_nj"] for w in (8, 16, 32, 64)}
    assert min(e384, key=e384.get) == 64


def test_ffau_bests_arm_by_an_order_of_magnitude():
    """Section 7.9: 'the FFAU on average yields a 10x improvement over
    the ARM' (performance; energy gap is far larger)."""
    from repro.harness.tables import ffau_width_point
    from repro.model.arm import ARM_CORTEX_M3

    for bits in (192, 256, 384):
        point = ffau_width_point(32, bits)
        arm = ARM_CORTEX_M3[bits]
        assert arm.exec_time_ns / point["time_ns"] > 5.0
        assert arm.energy_nj / point["energy_nj"] > 20.0
