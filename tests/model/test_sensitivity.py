"""Calibration-sensitivity: the conclusions must not hinge on the
calibrated coefficients."""


from repro.model.sensitivity import (
    PERTURBATIONS,
    robustness_summary,
    sensitivity_sweep,
)


def test_sweep_covers_every_coefficient_both_ways():
    outcomes = sensitivity_sweep()
    assert len(outcomes) == 2 * len(PERTURBATIONS)
    labels = {o.coefficient for o in outcomes}
    assert labels == {label for label, _ in PERTURBATIONS}
    factors = {o.factor for o in outcomes}
    assert factors == {0.75, 1.25}


def test_all_conclusions_robust_to_25_percent():
    """The headline: every qualitative ordering of the paper survives a
    +-25 % error in any single energy coefficient."""
    summary = robustness_summary()
    assert all(summary.values()), summary


def test_individual_outcomes_recorded():
    outcomes = sensitivity_sweep()
    assert all(o.all_hold for o in outcomes)


def test_perturbation_actually_changes_energy():
    """Guard against a vacuous sweep: perturbing the ROM coefficient must
    visibly move the baseline energy."""
    from repro.energy.calibration import CALIBRATION
    from repro.model.system import SystemModel

    nominal = SystemModel().report("P-192", "baseline").total_uj
    label, mutate = next(p for p in PERTURBATIONS if p[0] == "rom_read")
    perturbed = SystemModel(mutate(CALIBRATION, 1.25)).report(
        "P-192", "baseline").total_uj
    assert perturbed > nominal * 1.08, \
        "ROM is a major component; +25 % must show"
