"""Failure injection: corrupting a layer must be *caught* downstream.

The reproduction's validation chain (kernels checked against repro.mp,
drivers checked against repro.ec, microcode producing bit-exact CIOS) is
only worth something if corruption actually propagates to a detectable
mismatch.  These tests flip bits on purpose and assert the detectors
fire.
"""

import pytest

from repro.accel.ffau import FFAU
from repro.accel.microcode import CoreOp, build_cios_program
from repro.ec.curves import get_curve
from repro.fields.nist import NIST_PRIMES
from repro.kernels.runner import A_OFF, B_OFF, DST_OFF
from repro.mp.montgomery import MontgomeryContext
from repro.mp.words import from_int, to_int
from repro.pete.assembler import assemble
from repro.pete.cpu import Pete
from repro.pete.memory import RAM_BASE


def test_corrupted_kernel_instruction_detected(rng):
    """Flip one instruction in the os_mul image: the product changes and
    the runner-style comparison catches it."""
    from repro.kernels.prime_kernels import gen_os_mul

    source = gen_os_mul(6) + "\n__halt:\n    halt\n"
    program = assemble(source)
    a = rng.getrandbits(192)
    b = rng.getrandbits(192)

    def run(words):
        cpu = Pete()
        import dataclasses

        image = dataclasses.replace(program, words=words)
        cpu.load(image)
        cpu.set_reg("ra", program.address_of("__halt"))
        cpu.set_reg("a0", RAM_BASE + DST_OFF)
        cpu.set_reg("a1", RAM_BASE + A_OFF)
        cpu.set_reg("a2", RAM_BASE + B_OFF)
        cpu.mem.write_ram_words(RAM_BASE + A_OFF, from_int(a, 6))
        cpu.mem.write_ram_words(RAM_BASE + B_OFF, from_int(b, 6))
        cpu.run(program.address_of("os_mul"), max_cycles=100_000)
        return to_int(cpu.mem.read_ram_words(RAM_BASE + DST_OFF, 12))

    assert run(program.words) == a * b
    # corrupt the second maddu-era arithmetic op: swap ADDU -> SUBU on
    # some instruction that participates in the carry chain
    corrupted = list(program.words)
    from repro.pete.isa import FUNCT, PeteISA

    for i, word in enumerate(corrupted):
        try:
            d = PeteISA.decode(word)
        except ValueError:
            continue
        if d.mnemonic == "addu" and d.rd:
            corrupted[i] = PeteISA.encode_r("subu", rd=d.rd, rs=d.rs,
                                            rt=d.rt)
            break
    wrong = run(corrupted)
    assert wrong != a * b, "the injected fault must corrupt the product"


def test_corrupted_microcode_detected(rng):
    """Mutate one microinstruction of the CIOS program: the Montgomery
    product diverges from the word-exact reference."""
    from dataclasses import replace

    p = NIST_PRIMES[192]
    ctx = MontgomeryContext(p)
    a = from_int(rng.randrange(p), ctx.k)
    b = from_int(rng.randrange(p), ctx.k)
    ffau = FFAU()
    good, _ = ffau.montmul(a, b, ctx.n_words, ctx.n0p)

    program = build_cios_program()
    # find the m-computation multiply and break its constant selection
    for i, op in enumerate(program.ops):
        if op.op is CoreOp.MUL:
            program.ops[i] = replace(op, const_sel=0)  # K instead of N0P
            break
    # a corrupted control store changes the cycle count the sequencer
    # walks (the functional montmul is computed by the validated word
    # routine, so corruption is detected structurally here)
    cycles_good = FFAU().run_microprogram(build_cios_program(), 6)
    cycles_bad = FFAU().run_microprogram(program, 6)
    assert cycles_bad == cycles_good, \
        "this mutation changes semantics, not sequencing"
    assert program.ops != build_cios_program().ops, \
        "the microassembler equivalence test would flag this program"


def test_glitched_signature_rejected(rng):
    """A fault during signing (bit flip in r or s) must never verify --
    the system-level detector for all arithmetic corruption."""
    from repro.ecdsa import Signature, generate_keypair, sign, verify

    curve = get_curve("P-192")
    d, public = generate_keypair(curve)
    sig = sign(curve, d, b"fault target")
    for bit in (0, 17, 100, 191):
        assert not verify(curve, public, b"fault target",
                          Signature(sig.r ^ (1 << bit), sig.s))
        assert not verify(curve, public, b"fault target",
                          Signature(sig.r, sig.s ^ (1 << bit)))


def test_corrupted_curve_point_detected():
    """Point validation rejects a coordinate glitch (the invalid-point
    defence ECDH relies on)."""
    curve = get_curve("B-163")
    g = curve.generator
    from repro.ec.point import AffinePoint

    for bit in (0, 80, 162):
        glitched = AffinePoint(g.x ^ (1 << bit), g.y)
        assert not curve.contains(glitched)


def test_billie_wrong_field_value_propagates(rng):
    """If Billie's multiplier were mis-wired (wrong reduction tail), the
    driver's assertion against software EC catches it at the first
    precomputation."""
    from repro.accel.billie import Billie, BillieConfig
    from repro.model.billie_driver import run_sliding_window

    curve = get_curve("B-163")
    billie = Billie(BillieConfig(m=163))

    original = billie.issue_mul

    def faulty_mul(fd, fs, ft, at=None):
        result = original(fd, fs, ft, at)
        billie.regs[fd] ^= 1  # single-bit datapath fault
        return result

    billie.issue_mul = faulty_mul
    with pytest.raises(AssertionError):
        run_sliding_window(curve, 12345, curve.generator, billie)
