"""The Section 8 future-work variants behave as the paper anticipates."""

import pytest

from repro.model.configs import FUTURE_CONFIGS, get_config
from repro.model.future_work import (
    billie_register_file_study,
    flash_memory_study,
    monte_gating_study,
    order_inversion_study,
    summary,
)
from repro.model.system import SystemModel


@pytest.fixture(scope="module")
def model():
    return SystemModel()


def test_variants_registered():
    names = {cfg.name for cfg in FUTURE_CONFIGS}
    assert names == {"monte_gated", "monte_oinv", "billie_gated",
                     "billie_sram", "billie_sram_gated", "baseline_flash",
                     "isa_ext_ic_flash"}
    assert get_config("billie_sram").billie_sram_regfile


def test_sram_regfile_saves_energy(model):
    """Future work #1: the register file is >half of Billie's energy, so
    an SRAM file must cut the Billie component substantially."""
    for result in billie_register_file_study():
        assert result.saving_percent > 0, result
    sram_571 = next(r for r in billie_register_file_study()
                    if r.curve == "B-571"
                    and r.variant_config == "billie_sram")
    assert sram_571.saving_percent > 15.0


def test_gating_fixes_billies_scaling(model):
    """Future work #2: gating recovers the energy Billie wastes idling
    62 % of the ECDSA; the fix matters more at larger fields (where the
    paper found Billie 'does not scale well')."""
    results = {(r.curve, r.variant_config): r
               for r in billie_register_file_study()}
    gated_163 = results[("B-163", "billie_gated")].saving_percent
    gated_571 = results[("B-571", "billie_gated")].saving_percent
    assert gated_571 > gated_163 > 3.0
    # combined variant dominates each single fix
    combined = results[("B-571", "billie_sram_gated")].saving_percent
    assert combined > results[("B-571", "billie_sram")].saving_percent
    assert combined > gated_571
    assert combined > 25.0


def test_gating_restores_billie_advantage_at_571(model):
    """With gating + SRAM, Billie clearly beats Monte again even at the
    571/521-bit pair where the ungated designs converged."""
    monte = model.report("P-521", "monte").total_uj
    billie = model.report("B-571", "billie_sram_gated").total_uj
    assert monte / billie > 1.5


def test_monte_gating_modest(model):
    """The FFAU is small; gating it saves a little, not a lot."""
    for result in monte_gating_study():
        assert 0.0 < result.saving_percent < 15.0


def test_order_inversion_amdahl_fix(model):
    """Future work #3: moving the group-order inversion onto Monte
    shortens the operation (it removes serial Pete work, not just
    power)."""
    for result in order_inversion_study():
        assert result.saving_percent > 5.0, result
        base = model.latency(result.curve, "monte").total_cycles
        variant = model.latency(result.curve, "monte_oinv").total_cycles
        assert variant < base


def test_flash_memory_doubles_fetch_cost(model):
    flash = flash_memory_study()[0]
    assert flash.saving_percent < -50.0, \
        "flash costs >50 % more energy than mask ROM"


def test_icache_value_grows_under_flash(model):
    """With flash, the cache avoids much more expensive fetches."""
    rom_save = 1 - (model.report("P-192", "isa_ext_ic").total_uj
                    / model.report("P-192", "baseline").total_uj)
    flash_save = 1 - (model.report("P-192", "isa_ext_ic_flash").total_uj
                      / model.report("P-192", "baseline_flash").total_uj)
    assert flash_save > rom_save


def test_summary_covers_all_studies():
    studies = summary()
    assert set(studies) == {"billie_register_file", "monte_gating",
                            "order_inversion", "flash_memory"}
    assert all(studies.values())
