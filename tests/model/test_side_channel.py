"""Timing-leakage measurements on the cycle-accurate Billie model."""

import pytest

from repro.ec.curves import get_curve
from repro.model.side_channel import (
    LeakageReport,
    _scalar_of_weight,
    leakage_report,
)


@pytest.fixture(scope="module")
def curve():
    return get_curve("B-163")


def test_scalar_construction():
    for bits, weight in ((162, 8), (162, 80), (162, 155)):
        scalar = _scalar_of_weight(bits, weight)
        assert scalar.bit_length() == bits
        assert bin(scalar).count("1") == weight


def test_double_and_add_leaks_hamming_weight(curve):
    """Algorithm 1's add-on-set-bit schedule is visible in the cycle
    count -- the paper's side-channel warning, measured."""
    report = leakage_report("double_and_add", curve)
    assert report.leaks_weight
    assert report.spread > 0.25, \
        "a heavy scalar costs >25% more time than a sparse one"


def test_montgomery_ladder_is_nearly_constant_time(curve):
    """The ladder does 6M+5S per bit regardless of the bit.  The
    residual spread (~1 %) is hazard micro-timing from bit-dependent
    register assignment -- not a weight signal."""
    report = leakage_report("montgomery_ladder", curve)
    assert report.spread < 0.02
    assert not report.leaks_weight


def test_sliding_window_leaks_recoding_density_not_weight(curve):
    """Window recoding decouples time from the plain Hamming weight:
    the cost tracks the recoded digit density, which is non-monotonic
    in the weight (dense bit runs recode to *sparser* signed digits)."""
    window = leakage_report("sliding_window", curve)
    naive = leakage_report("double_and_add", curve)
    assert window.spread < naive.spread / 3
    assert not window.leaks_weight, \
        "time must not be a monotone function of the secret's weight"
    # the paper's most-dense case is *cheaper* than mid-weight scalars
    assert window.cycles_by_weight[155] < window.cycles_by_weight[80]


def test_report_structure(curve):
    report = leakage_report("montgomery_ladder", curve, weights=(8, 80))
    assert isinstance(report, LeakageReport)
    assert set(report.cycles_by_weight) == {8, 80}
    with pytest.raises(KeyError):
        leakage_report("rsa", curve)
