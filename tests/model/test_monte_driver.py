"""End-to-end point arithmetic through Monte's instruction stream."""

import pytest

from repro.accel.monte import Monte
from repro.ec.curves import get_curve
from repro.ec.point import affine_add, affine_scalar_mul
from repro.ec.scalar import sliding_window_mul
from repro.model.monte_driver import (
    MonteDriver,
    run_point_operation_pair,
    run_sliding_window,
)


@pytest.fixture(scope="module")
def curve():
    return get_curve("P-192")


def test_field_ops_through_monte(curve, rng):
    driver = MonteDriver(Monte(curve.field.p), curve)
    f = curve.field
    a, b = rng.randrange(f.p), rng.randrange(f.p)
    driver.put("a", a)
    driver.put("b", b)
    driver.mul("m", "a", "b")
    driver.add("s", "a", "b")
    driver.sub("d", "a", "b")
    assert driver.get("m") == f.mul(a, b)
    assert driver.get("s") == f.add(a, b)
    assert driver.get("d") == f.sub(a, b)


def test_inverse_through_monte(curve, rng):
    driver = MonteDriver(Monte(curve.field.p), curve)
    a = rng.randrange(1, curve.field.p)
    driver.put("a", a)
    driver.inverse("ai", "a")
    assert driver.get("ai") == curve.field.inv(a)


def test_point_pair(curve):
    run = run_point_operation_pair(curve)
    g = curve.generator
    expected = affine_add(curve, affine_add(curve, g, g), g)  # 3G
    assert run.result == expected
    assert run.cycles > 0
    # a double (4M+4S+adds) plus a mixed add (8M+3S+subs) plus the
    # Fermat conversion: the op count is dominated by the inversion
    assert run.field_ops > 300


def test_sliding_window_small(curve, rng):
    scalar = rng.randrange(2, 1 << 24)
    run = run_sliding_window(curve, scalar, curve.generator)
    assert run.result == affine_scalar_mul(curve, scalar, curve.generator)


@pytest.mark.slow
def test_sliding_window_full_size(curve, rng):
    scalar = rng.randrange(1, curve.n)
    run = run_sliding_window(curve, scalar, curve.generator)
    assert run.result == sliding_window_mul(curve, scalar, curve.generator)
    assert run.cycles > 100_000


def test_driver_rejects_binary_curves():
    with pytest.raises(ValueError):
        MonteDriver(Monte(get_curve("P-192").field.p), get_curve("B-163"))


def test_driven_cycles_track_pattern_model(curve):
    """The analytic pattern cost the system model uses should sit near
    the cycles the driven instruction stream actually takes."""
    monte = Monte(curve.field.p)
    run = run_point_operation_pair(curve)
    # inversion dominates: ~(255 sqr+mul ops + 12M+7S point work)
    per_op = run.cycles / run.field_ops
    pattern = monte.field_op_pattern_cycles("mul", 0.5)
    assert 0.6 * pattern < per_op < 1.4 * pattern
