"""The register-level Billie drivers vs the software EC layer."""

import pytest

from repro.accel.billie import Billie, BillieConfig
from repro.ec.curves import get_curve
from repro.ec.point import affine_add
from repro.ec.scalar import montgomery_ladder, sliding_window_mul
from repro.model.billie_driver import (
    BillieDriver,
    run_montgomery_ladder,
    run_sliding_window,
    run_twin,
)


@pytest.fixture(params=["B-163", "B-283"])
def curve(request):
    return get_curve(request.param)


def test_sliding_window_matches_software(curve, rng):
    x = rng.randrange(1, curve.n)
    run = run_sliding_window(curve, x, curve.generator)
    assert run.result == sliding_window_mul(curve, x, curve.generator)
    assert run.cycles > 0
    assert run.peak_registers <= 16, "fits the 16-entry register file"


def test_twin_matches_software(curve, rng):
    g = curve.generator
    q = sliding_window_mul(curve, 12345, g)
    u1 = rng.randrange(1, curve.n)
    u2 = rng.randrange(1, curve.n)
    run = run_twin(curve, u1, g, u2, q)
    expected = affine_add(curve, sliding_window_mul(curve, u1, g),
                          sliding_window_mul(curve, u2, q))
    assert run.result == expected
    assert run.peak_registers <= 16


def test_ladder_matches_software(curve, rng):
    x = rng.randrange(1, curve.n)
    run = run_montgomery_ladder(curve, x, curve.generator)
    assert run.result == montgomery_ladder(curve, x, curve.generator)


def test_register_file_is_the_binding_constraint():
    """The twin table (4 points) peaks at exactly 16 registers -- the
    paper's sizing argument for Billie's register file."""
    curve = get_curve("B-163")
    g = curve.generator
    q = sliding_window_mul(curve, 999, g)
    run = run_twin(curve, 0x5555555, g, 0x3333333, q)
    assert run.peak_registers == 16


def test_driver_inverse(rng):
    curve = get_curve("B-163")
    billie = Billie(BillieConfig(m=163))
    driver = BillieDriver(billie, curve)
    a = rng.getrandbits(163) | 1
    r_in = driver.alloc_load(a)
    r_out = driver.regs.alloc()
    driver.inverse(r_out, r_in)
    assert billie.regs[r_out] == curve.field.inv(a)
    with pytest.raises(ValueError):
        driver.inverse(r_in, r_in)


def test_driver_point_ops(rng):
    from repro.ec.lopez_dahab import to_affine, to_ld

    curve = get_curve("B-163")
    billie = Billie(BillieConfig(m=163))
    driver = BillieDriver(billie, curve)
    g = curve.generator
    x = driver.alloc_load(g.x)
    y = driver.alloc_load(g.y)
    z = driver.alloc_load(1)
    driver.double(x, y, z)
    from repro.ec.lopez_dahab import LDPoint

    got = to_affine(curve, LDPoint(billie.regs[x], billie.regs[y],
                                   billie.regs[z]))
    assert got == affine_add(curve, g, g)


def test_driver_rejects_wrong_field():
    billie = Billie(BillieConfig(m=163))
    with pytest.raises(ValueError):
        BillieDriver(billie, get_curve("B-233"))
    with pytest.raises(ValueError):
        BillieDriver(billie, get_curve("P-192"))


def test_larger_digit_is_faster(rng):
    """Fig. 7.14's x-axis: bigger multiplier digits, fewer cycles."""
    curve = get_curve("B-163")
    x = rng.randrange(1, curve.n)
    cycles = {}
    for digit in (1, 3, 8):
        billie = Billie(BillieConfig(m=163, digit=digit))
        cycles[digit] = run_sliding_window(curve, x, curve.generator,
                                           billie).cycles
    assert cycles[1] > cycles[3] > cycles[8]


def test_beats_prior_work(rng):
    """Billie at D=3 outperforms Guo et al.'s published 163-bit scalar
    multiplication latencies (Fig. 7.14's headline)."""
    from repro.model.prior_work import GUO_SCHAUMONT_163

    curve = get_curve("B-163")
    x = rng.randrange(1, curve.n)
    ours = run_sliding_window(curve, x, curve.generator).cycles
    assert all(ours < p.cycles for p in GUO_SCHAUMONT_163)
