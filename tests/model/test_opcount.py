"""ECDSA operation counting: exactness and structural sanity."""

import pytest

from repro.model.opcount import ecdsa_opcounts, scalar_mult_point_ops


@pytest.mark.parametrize("name", ["P-192", "P-521", "B-163", "B-571"])
def test_counts_deterministic_and_cached(name):
    a = ecdsa_opcounts(name)
    b = ecdsa_opcounts(name)
    assert a is b
    assert a.sign.field_ops == b.sign.field_ops


@pytest.mark.parametrize("name", ["P-192", "B-163"])
def test_two_inversions_per_primitive(name):
    """Batched precompute + final conversion = 2 field inversions."""
    counts = ecdsa_opcounts(name)
    assert counts.sign.field("finv") == 2
    assert counts.verify.field("finv") == 2
    assert counts.sign.order("oinv") == 1
    assert counts.verify.order("oinv") == 1


def test_mul_counts_scale_with_key_size():
    small = ecdsa_opcounts("P-192").sign.total_field_muls
    large = ecdsa_opcounts("P-521").sign.total_field_muls
    assert 2.2 < large / small < 3.2, "M+S grows ~linearly with bits"


def test_verify_heavier_than_sign():
    """Twin multiplication costs more than a single multiplication but
    less than two (paper Section 4.1)."""
    for name in ("P-192", "B-163"):
        counts = ecdsa_opcounts(name)
        sign = counts.sign.total_field_muls
        verify = counts.verify.total_field_muls
        assert sign < verify < 2 * sign


def test_prime_sign_op_mix():
    """A 192-bit sliding-window sign: ~191 doubles at 4M+4S plus ~40
    mixed adds at 8M+3S plus precompute/conversion."""
    counts = ecdsa_opcounts("P-192").sign
    assert 800 <= counts.field("fmul") <= 1600
    assert 700 <= counts.field("fsqr") <= 1300
    assert counts.field("fadd") + counts.field("fsub") > 2000


def test_binary_sign_op_mix():
    """LD doubling has 5S per 4M: squarings outnumber multiplies."""
    counts = ecdsa_opcounts("B-163").sign
    assert counts.field("fsqr") > counts.field("fmul") * 0.9


def test_point_op_counts():
    ops = scalar_mult_point_ops("P-192")
    assert 180 <= ops["doubles"] <= 192
    assert 30 <= ops["adds"] <= 60, "width-3 NAF density ~1/4"
    assert ops["precompute_adds"] == 3
