"""The whole-system model: latencies, activity vectors, energy reports."""

import pytest

from repro.model.configs import (
    ALL_CONFIGS,
    BASELINE,
    ISA_EXT,
    get_config,
    with_icache,
)
from repro.model.system import SystemModel


@pytest.fixture(scope="module")
def model():
    return SystemModel()


def test_config_registry():
    names = {c.name for c in ALL_CONFIGS}
    assert names == {"baseline", "isa_ext", "isa_ext_ic", "binary_isa",
                     "monte", "billie"}
    assert get_config("monte").accelerator == "monte"
    with pytest.raises(KeyError):
        get_config("nope")


def test_with_icache_variants():
    cfg = with_icache(BASELINE, 2048, prefetch=True)
    assert cfg.icache.size_bytes == 2048
    assert cfg.icache.prefetch
    assert cfg.name == "baseline_ic2kp"


def test_field_support_enforced(model):
    with pytest.raises(ValueError):
        model.latency("B-163", "monte")
    with pytest.raises(ValueError):
        model.latency("P-192", "billie")
    with pytest.raises(ValueError):
        model.latency("B-163", "isa_ext")


def test_latency_monotone_in_key_size(model):
    for config, curves in (("baseline", ("P-192", "P-256", "P-521")),
                           ("monte", ("P-192", "P-256", "P-521")),
                           ("billie", ("B-163", "B-283", "B-571"))):
        totals = [model.latency(c, config).total_cycles for c in curves]
        assert totals == sorted(totals)


def test_verify_slower_than_sign(model):
    for curve, config in (("P-192", "baseline"), ("B-163", "billie"),
                          ("P-256", "monte")):
        lat = model.latency(curve, config)
        assert lat.verify_cycles > lat.sign_cycles


def test_activity_vector_consistency(model):
    act = model.activity("P-192", "baseline", "sign")
    assert act.cycles == pytest.approx(act.pete_active + act.pete_stall)
    assert act.rom_word_reads == pytest.approx(act.pete_active)
    assert act.ram_reads > 0 and act.ram_writes > 0
    assert act.ffau_busy == 0 and act.billie_busy == 0


def test_monte_activity(model):
    act = model.activity("P-192", "monte", "sign")
    assert act.ffau_busy > 0
    assert act.ffau_idle > 0
    assert act.dma_words > 0
    assert act.ffau_busy + act.ffau_idle == pytest.approx(act.cycles)
    assert act.pete_stall > act.pete_active, \
        "Pete idles while Monte computes"


def test_billie_activity(model):
    act = model.activity("B-163", "billie", "sign")
    assert act.billie_busy > 0
    assert act.billie_idle > 0
    # the paper: Billie idles most of the ECDSA operation
    assert act.billie_idle > act.billie_busy


def test_icache_activity(model):
    act = model.activity("P-192", "isa_ext_ic", "sign")
    assert act.icache_accesses == pytest.approx(act.pete_active)
    assert act.icache_fills > 0
    assert act.rom_word_reads == 0, "fetches go through the cache"
    assert act.rom_line_reads > 0


def test_energy_report_structure(model):
    report = model.report("P-192", "baseline")
    assert report.total_uj > 0
    assert set(report.breakdown.components) >= {"Pete", "ROM", "RAM"}
    assert report.power_mw == pytest.approx(
        report.static_power_mw + report.dynamic_power_mw)
    assert report.component_uj("Pete") > 0
    assert "uJ" in report.summary()


def test_report_merging(model):
    sign = model.report("P-192", "baseline", "sign")
    verify = model.report("P-192", "baseline", "verify")
    both = model.report("P-192", "baseline", "sign+verify")
    assert both.total_nj == pytest.approx(sign.total_nj + verify.total_nj)
    assert both.cycles == sign.cycles + verify.cycles


def test_accelerator_components_present(model):
    monte = model.report("P-192", "monte")
    assert monte.component_uj("Monte") > 0
    billie = model.report("B-163", "billie")
    assert billie.component_uj("Billie") > 0
    assert billie.component_uj("Billie") > billie.component_uj("Pete"), \
        "Billie is the primary consumer when used (Section 7.3)"


def test_ideal_icache_removes_rom_reads(model):
    ideal = model.activity("P-192", "baseline", "sign", ideal_icache=True)
    assert ideal.rom_word_reads == 0
    assert ideal.rom_line_reads == 0
    assert ideal.icache_accesses > 0


def test_isa_ext_reduces_cycles_not_power(model):
    base = model.report("P-192", "baseline")
    ext = model.report("P-192", "isa_ext")
    assert ext.cycles < base.cycles
    # "almost no difference in overall system power" (Section 7.4)
    assert abs(ext.power_mw - base.power_mw) / base.power_mw < 0.05


def test_cache_sweep_minimum_at_4kb(model):
    """Fig. 7.12: the energy-optimal cache is 4 KB."""
    energies = {}
    for size_kb in (1, 2, 4, 8):
        cfg = with_icache(ISA_EXT, size_kb * 1024)
        energies[size_kb] = model.report("P-192", cfg).total_uj
    assert min(energies, key=energies.get) == 4
    assert energies[1] > energies[2] > energies[4] < energies[8]
