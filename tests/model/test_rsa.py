"""Modular exponentiation, RSA and the ECC-vs-RSA energy comparison."""

import pytest

from repro.rsa import (
    generate_rsa_keypair,
    modexp,
    modexp_counts,
    rsa_sign_raw,
    rsa_verify_raw,
)
from repro.model.rsa_compare import (
    RSA_EQUIVALENT_BITS,
    compare_handshake,
    compare_node_signing,
    rsa_operation_cost,
)


def test_modexp_matches_pow(rng):
    for _ in range(20):
        modulus = rng.getrandbits(192) | 1
        if modulus <= 1:
            continue
        base = rng.randrange(modulus)
        exponent = rng.getrandbits(64)
        assert modexp(base, exponent, modulus) == pow(base, exponent,
                                                      modulus)


def test_modexp_windowed_matches(rng):
    modulus = rng.getrandbits(256) | 1
    base = rng.randrange(modulus)
    exponent = rng.getrandbits(128)
    for window in (2, 3, 4, 5):
        assert modexp(base, exponent, modulus, window=window) == \
            pow(base, exponent, modulus)


def test_modexp_edges(rng):
    modulus = 0xFFFFFFFB  # odd
    assert modexp(5, 0, modulus) == 1
    assert modexp(5, 1, modulus) == 5
    with pytest.raises(ValueError):
        modexp(5, 3, 100)  # even modulus
    with pytest.raises(ValueError):
        modexp(5, -1, modulus)


def test_modexp_counts_rule_of_thumb():
    """'On the order of 1.5 * bits field multiplications' (Section
    2.1.3) for square-and-multiply with a random exponent."""
    exponent = int("10" * 512, 2)  # alternating bits, density 0.5
    counts = modexp_counts(exponent)
    per_bit = counts.total_montmuls / exponent.bit_length()
    assert 1.3 < per_bit < 1.6


def test_windowing_cuts_multiplications():
    exponent = (1 << 1024) - 1  # worst case for binary
    binary = modexp_counts(exponent, window=1)
    windowed = modexp_counts(exponent, window=4)
    assert windowed.total_montmuls < 0.65 * binary.total_montmuls


@pytest.fixture(scope="module")
def rsa_key():
    return generate_rsa_keypair(bits=768, seed=b"test-rsa")


def test_rsa_keypair_structure(rsa_key):
    assert rsa_key.p * rsa_key.q == rsa_key.n
    assert 760 <= rsa_key.bits <= 768
    phi = (rsa_key.p - 1) * (rsa_key.q - 1)
    assert rsa_key.e * rsa_key.d % phi == 1


def test_rsa_sign_verify_round_trip(rsa_key, rng):
    message = rng.randrange(rsa_key.n)
    for use_crt in (True, False):
        signature = rsa_sign_raw(rsa_key, message, use_crt=use_crt)
        assert rsa_verify_raw(rsa_key, signature) == message


def test_rsa_crt_agrees_with_plain(rsa_key, rng):
    message = rng.randrange(rsa_key.n)
    assert rsa_sign_raw(rsa_key, message, use_crt=True) == \
        rsa_sign_raw(rsa_key, message, use_crt=False)


def test_rsa_keygen_deterministic():
    a = generate_rsa_keypair(bits=512, seed=b"same")
    b = generate_rsa_keypair(bits=512, seed=b"same")
    c = generate_rsa_keypair(bits=512, seed=b"other")
    assert a == b
    assert a.n != c.n


def test_rsa_input_validation(rsa_key):
    with pytest.raises(ValueError):
        rsa_sign_raw(rsa_key, rsa_key.n)
    with pytest.raises(ValueError):
        rsa_verify_raw(rsa_key, -1)


def test_rsa_cost_model_shapes():
    sign = rsa_operation_cost(1024, "sign")
    verify = rsa_operation_cost(1024, "verify")
    assert sign.cycles > 10 * verify.cycles, \
        "e = 65537 makes verification cheap"
    assert rsa_operation_cost(2048, "sign").cycles > 4 * sign.cycles, \
        "RSA signing scales ~cubically in the modulus size"
    with pytest.raises(ValueError):
        rsa_operation_cost(1024, "encrypt")


def test_ecc_beats_rsa_at_every_level():
    """The paper's premise: 'ECC is substantially more energy efficient
    than modular exponentiation schemes for the same level of
    security' -- increasingly so at higher levels.  (Software-only
    binary ECC is the exception that proves the paper's Section 7.2
    point: without a carry-less multiplier even RSA-1024 beats B-163.)"""
    advantages = {}
    for curve in ("P-192", "P-256", "P-384"):
        cmp = compare_handshake(curve)
        assert cmp.ecc_advantage > 1.5, (curve, cmp.ecc_advantage)
        advantages[curve] = cmp.ecc_advantage
    assert advantages["P-384"] > advantages["P-256"] > advantages["P-192"]
    assert compare_handshake("B-163").ecc_advantage < 1.5, \
        "software binary ECC cannot even beat RSA-1024"


def test_wander_anchor():
    """Wander et al.: 160-bit prime-field ECC vs 1024-bit RSA bought the
    node ~4.2x the key exchanges (the node performs the private op);
    our nearest grid point lands in that regime."""
    cmp = compare_node_signing()
    assert cmp.rsa_bits == 1024
    assert 2.0 <= cmp.ecc_advantage <= 7.0


def test_equivalence_table_covers_all_curves():
    from repro.ec.curves import CURVES

    assert set(RSA_EQUIVALENT_BITS) == set(CURVES)
