"""The Section 8 64-bit-datapath estimation study."""


from repro.model.datapath64 import (
    CORE_ENERGY_FACTOR_64,
    estimate,
    study,
)


def test_estimates_populated():
    e = estimate("P-192")
    assert e.cycles_64 < e.cycles_32
    assert e.energy_64_uj < e.energy_32_uj


def test_speedup_in_the_ffau_validated_range():
    """The FFAU's measured 32->64-bit speedups (2.1-2.9x, Table 7.4)
    bracket what the same structural scaling predicts for software."""
    for e in study().values():
        assert 2.0 <= e.speedup <= 3.2, e


def test_benefit_grows_with_key_size():
    """The Section 7.9 lesson transfers: O(k^2)-dominated work favours
    wider datapaths more at larger keys."""
    results = study()
    speedups = [results[c].speedup
                for c in ("P-192", "P-256", "P-384", "P-521")]
    assert speedups == sorted(speedups)
    energies = [results[c].energy_factor
                for c in ("P-192", "P-256", "P-384", "P-521")]
    assert energies == sorted(energies)


def test_energy_saving_despite_wider_core():
    """Even charging the core 1.8x dynamic energy per cycle, the ~2.7x
    speedup wins -- the paper's conjecture, quantified."""
    assert CORE_ENERGY_FACTOR_64 > 1.5
    for e in study().values():
        assert e.energy_factor > 1.7


def test_isa_config_also_benefits():
    for e in study("isa_ext").values():
        assert e.speedup > 2.0
        assert e.energy_factor > 1.5


def test_estimates_cached():
    assert estimate("P-192") is estimate("P-192")
