"""Per-operation cost tables."""

import pytest

from repro.model.costs import (
    OpCost,
    itoh_tsujii_billie_ops,
    software_costs,
)


def test_opcost_arithmetic():
    a = OpCost(10, 8, 2, 1)
    b = a.scaled(3)
    assert (b.cycles, b.instructions) == (30, 24)
    c = a.plus(b)
    assert c.cycles == 40
    assert c.ram_reads == 8


@pytest.mark.parametrize("curve,config", [
    ("P-192", "baseline"), ("P-192", "isa_ext"),
    ("B-163", "baseline"), ("B-163", "binary_isa"),
])
def test_cost_tables_complete(curve, config):
    costs = software_costs(curve, config)
    for op in ("fmul", "fsqr", "fadd", "fsub", "finv",
               "omul", "oadd", "oinv"):
        assert op in costs
        assert costs[op].cycles > 0
        assert costs[op].instructions <= costs[op].cycles


def test_isa_extensions_cut_multiplication_cost():
    base = software_costs("P-192", "baseline")
    ext = software_costs("P-192", "isa_ext")
    assert ext["fmul"].cycles < base["fmul"].cycles
    assert ext["fsqr"].cycles < base["fsqr"].cycles
    # squaring gains extra from M2ADDU
    assert ext["fsqr"].cycles <= ext["fmul"].cycles


def test_binary_isa_extensions_transformative():
    base = software_costs("B-163", "baseline")
    ext = software_costs("B-163", "binary_isa")
    assert base["fmul"].cycles / ext["fmul"].cycles > 5.0
    # binary squaring with MULGF2 is far cheaper than multiplication
    assert ext["fsqr"].cycles < ext["fmul"].cycles / 1.8


def test_binary_add_cheaper_than_prime_add():
    prime = software_costs("P-192", "baseline")
    binary = software_costs("B-163", "baseline")
    assert binary["fadd"].cycles < prime["fadd"].cycles, \
        "no reduction step after a carry-less add (Section 4.2.4)"


def test_inversion_dominates_single_ops():
    costs = software_costs("P-192", "baseline")
    assert costs["finv"].cycles > 10 * costs["fmul"].cycles, \
        "inversion is 1-2 orders costlier than multiplication"


def test_costs_cached_by_isa_flags():
    """I-cache variants share cost tables with their base config."""
    from repro.model.configs import ISA_EXT, with_icache

    plain = software_costs("P-192", ISA_EXT)
    cached = software_costs("P-192", with_icache(ISA_EXT, 4096))
    assert plain is cached


def test_itoh_tsujii_billie_ops():
    ops = itoh_tsujii_billie_ops(163)
    assert ops["sqr"] == 162
    assert ops["mul"] == 9
