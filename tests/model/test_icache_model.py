"""The synthetic ECDSA trace and the cache working-set knee."""


from repro.model.icache_model import (
    HOT_LAYOUT,
    cache_study,
    ecdsa_instruction_trace,
    miss_profile,
)


def test_trace_is_deterministic():
    a = list(ecdsa_instruction_trace(point_ops=5))
    b = list(ecdsa_instruction_trace(point_ops=5))
    assert a == b


def test_trace_addresses_word_aligned():
    for addr in ecdsa_instruction_trace(point_ops=2):
        assert addr % 4 == 0


def test_hot_working_set_size():
    """The hot region is a bit over 4 KB -- the paper's measured knee."""
    total = sum(size for _, size in HOT_LAYOUT)
    assert 4096 < total < 8192


def test_misses_decrease_with_size():
    misses = [cache_study(kb * 1024, False).misses for kb in (1, 2, 4, 8)]
    assert misses == sorted(misses, reverse=True)


def test_knee_at_4kb():
    """The largest relative miss drop comes when the cache first holds
    the working set (2 KB -> 4 KB), and the drop beyond 4 KB is the
    smallest (cold-code floor) -- Section 7.5's shape."""
    m = {kb: cache_study(kb * 1024, False).misses for kb in (1, 2, 4, 8)}
    drop_12 = 1 - m[2] / m[1]
    drop_24 = 1 - m[4] / m[2]
    drop_48 = 1 - m[8] / m[4]
    assert drop_24 > drop_12
    assert drop_48 < drop_24
    assert m[8] > 0, "cold excursions miss at every size"


def test_prefetch_reduces_stalls_most_at_small_caches():
    gains = {}
    for kb in (1, 8):
        plain = cache_study(kb * 1024, False)
        pf = cache_study(kb * 1024, True)
        gains[kb] = plain.extra_stall_cycles - pf.extra_stall_cycles
    assert gains[1] > gains[8] >= 0


def test_prefetch_costs_rom_reads():
    plain = cache_study(4096, False)
    pf = cache_study(4096, True)
    assert pf.rom_line_reads >= plain.rom_line_reads


def test_miss_profile_covers_sweep():
    profile = miss_profile()
    assert set(profile) == {(kb, pf) for kb in (1, 2, 4, 8)
                            for pf in (False, True)}
    for result in profile.values():
        assert 0.0 <= result.miss_rate < 0.5
        assert result.effective_miss_rate <= result.miss_rate


def test_study_cached():
    assert cache_study(2048, False) is cache_study(2048, False)
