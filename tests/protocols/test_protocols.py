"""ECDH and the authenticated handshake: functional + energy model."""

import pytest

from repro.ec.curves import get_curve
from repro.ec.point import AffinePoint
from repro.ecdsa import generate_keypair
from repro.protocols import (
    derive_session_key,
    ecdh_shared_secret,
    generate_ephemeral,
    handshake_energy,
)
from repro.protocols.handshake import RADIO_UJ_PER_BYTE, run_handshake


@pytest.fixture(params=["P-256", "B-163"])
def curve(request):
    return get_curve(request.param)


def test_ecdh_agreement(curve):
    da, qa = generate_ephemeral(curve, b"alice")
    db, qb = generate_ephemeral(curve, b"bob")
    assert ecdh_shared_secret(curve, da, qb) == \
        ecdh_shared_secret(curve, db, qa)


def test_ecdh_different_peers_differ(curve):
    da, qa = generate_ephemeral(curve, b"alice")
    db, qb = generate_ephemeral(curve, b"bob")
    dc, qc = generate_ephemeral(curve, b"carol")
    assert ecdh_shared_secret(curve, da, qb) != \
        ecdh_shared_secret(curve, da, qc)


def test_invalid_peer_rejected(curve):
    da, _ = generate_ephemeral(curve, b"alice")
    with pytest.raises(ValueError):
        ecdh_shared_secret(curve, da, AffinePoint(123, 456))


def test_small_subgroup_rejected():
    """On the h = 2 binary curves the 2-torsion point (0, sqrt(b)) must
    be refused (cofactor multiplication sends it to infinity)."""
    curve = get_curve("B-163")
    from repro.ec.compression import _binary_sqrt

    torsion = AffinePoint(0, _binary_sqrt(curve.field, curve.b))
    assert curve.contains(torsion)
    da, _ = generate_ephemeral(curve, b"alice")
    with pytest.raises(ValueError):
        ecdh_shared_secret(curve, da, torsion)


def test_session_key_derivation(curve):
    key = derive_session_key(12345, curve, b"ctx")
    assert len(key) == 16
    assert key != derive_session_key(12345, curve, b"other")
    assert key == derive_session_key(12345, curve, b"ctx")


def test_full_handshake(curve):
    da, qa = generate_keypair(curve, seed=b"device-a")
    db, qb = generate_keypair(curve, seed=b"device-b")
    hs = run_handshake(curve, da, qa, db, qb)
    assert hs.succeeded
    assert hs.transcript.radio_bytes > 0
    # fresh nonces give a fresh key
    hs2 = run_handshake(curve, da, qa, db, qb, nonce_seed=b"hs2")
    assert hs2.session_key_a != hs.session_key_a


def test_handshake_energy_model():
    he = handshake_energy("P-192", "baseline")
    assert he.compute_uj > 0 and he.radio_uj > 0
    # Wander et al.: at low security, asymmetric compute dominates the
    # handshake energy even against radio costs
    assert he.compute_share > 0.7
    # acceleration flips the balance toward the radio
    accel = handshake_energy("P-192", "monte")
    assert accel.compute_share < he.compute_share
    assert accel.total_uj < he.total_uj


def test_radio_bytes_scale_with_curve():
    small = handshake_energy("P-192", "baseline").radio_uj
    large = handshake_energy("P-521", "baseline").radio_uj
    assert large > small
    assert small == pytest.approx(
        RADIO_UJ_PER_BYTE * (1 + 24 + 48), rel=1e-6)


def test_pabbuleti_tradeoff():
    """Pabbuleti et al.: computation rapidly exceeds transmission cost at
    128-bit security for software ECC -- but not for the accelerators."""
    sw = handshake_energy("P-256", "baseline")
    assert sw.compute_uj > 5 * sw.radio_uj
    hw = handshake_energy("B-283", "billie")
    assert hw.compute_uj < hw.radio_uj, \
        "with Billie the radio, not the math, dominates the handshake"
