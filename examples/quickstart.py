#!/usr/bin/env python3
"""Quickstart: sign and verify with ECDSA, then ask the design-space
model what the operation costs on each of the paper's hardware
configurations.

Run:  python examples/quickstart.py
"""

from repro import generate_keypair, get_curve, sign, verify
from repro.model.system import SystemModel


def main() -> None:
    # --- 1. plain cryptography on a NIST curve ---------------------------
    curve = get_curve("P-256")
    private, public = generate_keypair(curve, seed=b"quickstart")
    message = b"telemetry frame 0042: all sensors nominal"

    signature = sign(curve, private, message)
    print(f"curve      : {curve.name}")
    print(f"signature r: 0x{signature.r:x}")
    print(f"signature s: 0x{signature.s:x}")
    assert verify(curve, public, message, signature)
    print("verified   : OK")
    assert not verify(curve, public, message + b"!", signature)
    print("tampering  : rejected")

    # --- 2. what does Sign+Verify cost on the paper's hardware? ----------
    model = SystemModel()
    print(f"\nEnergy per Sign+Verify on {curve.name} "
          f"(333 MHz, 45 nm, simulated):")
    for config in ("baseline", "isa_ext", "isa_ext_ic", "monte"):
        report = model.report(curve.name, config)
        print(f"  {config:10s}: {report.total_uj:8.1f} uJ   "
              f"{report.cycles / 1e5:7.1f} x100K cycles   "
              f"{report.power_mw:5.2f} mW")

    # binary-field equivalent at the same security level
    print("\nSame security with a binary field (B-283):")
    for config in ("baseline", "binary_isa", "billie"):
        report = model.report("B-283", config)
        print(f"  {config:10s}: {report.total_uj:8.1f} uJ   "
              f"{report.cycles / 1e5:7.1f} x100K cycles   "
              f"{report.power_mw:5.2f} mW")


if __name__ == "__main__":
    main()
