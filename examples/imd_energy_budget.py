#!/usr/bin/env python3
"""Implantable-medical-device scenario (the paper's Section 1 motivation).

An implanted cardiac device authenticates every programming session with
an ECDSA handshake (one signature it produces, one verification of the
programmer's response).  The battery is small and non-rechargeable: every
joule spent on cryptography shortens device life.

This example budgets a 10-year, 1.5 Ah @ 2.8 V battery with 0.5 % of
capacity reserved for security handshakes, and asks: how many
authenticated sessions does each hardware configuration buy at each
security level -- and which configurations make asymmetric cryptography
viable at all?

Run:  python examples/imd_energy_budget.py
"""

from repro.model.system import SystemModel

BATTERY_MAH = 1500.0
BATTERY_VOLTS = 2.8
SECURITY_BUDGET_FRACTION = 0.005  # 0.5 % of capacity for handshakes
#: one authenticated session = 2 local signatures + 2 verifications
#: (mutual authentication), i.e. 2x the Sign+Verify benchmark unit
HANDSHAKES_PER_SESSION = 2

CONFIG_SETS = {
    "prime": ("baseline", "isa_ext", "isa_ext_ic", "monte"),
    "binary": ("baseline", "binary_isa", "billie"),
}
CURVES = {"prime": ("P-192", "P-256"), "binary": ("B-163", "B-283")}


def main() -> None:
    budget_j = (BATTERY_MAH / 1000.0) * 3600.0 * BATTERY_VOLTS \
        * SECURITY_BUDGET_FRACTION
    print(f"security energy budget: {budget_j:.1f} J "
          f"({SECURITY_BUDGET_FRACTION:.1%} of a "
          f"{BATTERY_MAH:.0f} mAh battery)\n")

    model = SystemModel()
    for family, configs in CONFIG_SETS.items():
        for curve in CURVES[family]:
            print(f"--- {curve} ({family} field) ---")
            for config in configs:
                report = model.report(curve, config)
                session_j = (report.total_uj * 1e-6) * HANDSHAKES_PER_SESSION
                sessions = budget_j / session_j
                per_day = sessions / (10 * 365)
                verdict = "viable" if per_day >= 1.0 else "tight"
                print(f"  {config:10s}: {report.total_uj:8.1f} uJ/op  "
                      f"-> {sessions:10.0f} sessions over 10y "
                      f"({per_day:6.1f}/day, {verdict})")
            print()

    # The punchline the paper draws: acceleration turns asymmetric
    # cryptography from a budget problem into a rounding error.
    base = model.report("P-256", "baseline").total_uj
    monte = model.report("P-256", "monte").total_uj
    print(f"at 128-bit security, Monte stretches the same budget "
          f"{base / monte:.1f}x further than pure software;")
    billie = model.report("B-283", "billie").total_uj
    print(f"Billie (binary field, same security) stretches it "
          f"{base / billie:.1f}x.")


if __name__ == "__main__":
    main()
