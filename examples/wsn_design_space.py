#!/usr/bin/env python3
"""Wireless-sensor-network design-space exploration (Fig. 1.1's
trade-off, driven end to end).

A WSN node re-keys its link every hour with an ECDSA handshake.  The
designer must pick a point on the reconfigurability/efficiency spectrum:
pure software keeps the device field-upgradable to new curves; ISA
extensions keep generality with modest silicon; Monte stays run-time
configurable across key sizes; Billie fixes the field at tape-out but
minimizes energy.

This example sweeps every (configuration x key size) point, prints the
design space with energy, average power and die-cost proxies, and applies
a simple selection rule: cheapest energy subject to a reconfigurability
requirement.

Run:  python examples/wsn_design_space.py [--security 128]
      [--require-reconfigurable]
"""

import argparse

from repro.ec.curves import SECURITY_PAIRS
from repro.model.system import SystemModel

#: approximate NIST security strength per curve pair (bits)
SECURITY_LEVELS = {80: 0, 112: 1, 128: 2, 192: 3, 256: 4}

#: (config, family) -> reconfigurability class from Fig. 1.1
RECONFIGURABILITY = {
    ("baseline", "prime"): "full software",
    ("baseline", "binary"): "full software",
    ("isa_ext", "prime"): "software + ISA",
    ("binary_isa", "binary"): "software + ISA",
    ("isa_ext_ic", "prime"): "software + ISA",
    ("monte", "prime"): "microcoded (any key size)",
    ("billie", "binary"): "fixed field at tape-out",
}


def design_space(model: SystemModel, security_bits: int):
    prime, binary = SECURITY_PAIRS[SECURITY_LEVELS[security_bits]]
    points = []
    for config in ("baseline", "isa_ext", "isa_ext_ic", "monte"):
        report = model.report(prime, config)
        points.append((config, prime, "prime", report))
    for config in ("baseline", "binary_isa", "billie"):
        report = model.report(binary, config)
        points.append((config, binary, "binary", report))
    return points


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--security", type=int, default=128,
                        choices=sorted(SECURITY_LEVELS))
    parser.add_argument("--require-reconfigurable", action="store_true",
                        help="exclude fixed-field hardware (Billie)")
    args = parser.parse_args()

    model = SystemModel()
    points = design_space(model, args.security)

    print(f"design space at ~{args.security}-bit security "
          f"(energy per hourly re-key handshake):\n")
    header = (f"{'config':12s} {'curve':7s} {'energy':>10s} {'power':>8s} "
              f"{'latency':>9s}  reconfigurability")
    print(header)
    print("-" * len(header))
    for config, curve, family, report in sorted(
            points, key=lambda p: p[3].total_uj):
        label = RECONFIGURABILITY[(config, family)]
        print(f"{config:12s} {curve:7s} {report.total_uj:8.1f}uJ "
              f"{report.power_mw:6.2f}mW {report.time_s * 1e3:7.1f}ms  "
              f"{label}")

    candidates = [
        (config, curve, report) for config, curve, family, report in points
        if not (args.require_reconfigurable
                and RECONFIGURABILITY[(config, family)].startswith("fixed"))
    ]
    best = min(candidates, key=lambda p: p[2].total_uj)
    print(f"\nrecommendation: {best[0]} on {best[1]} "
          f"({best[2].total_uj:.1f} uJ per handshake)")

    # yearly energy at one handshake per hour
    yearly_j = best[2].total_uj * 1e-6 * 24 * 365
    print(f"yearly re-keying cost: {yearly_j * 1000:.2f} mJ "
          f"-- {yearly_j / (3.6 * 2):.4%} of a AA cell (2 Ah @ 1.5 V)")


if __name__ == "__main__":
    main()
