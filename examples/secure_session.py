#!/usr/bin/env python3
"""End-to-end secure session: authenticated key establishment between
two embedded devices, with the energy ledger the paper's motivation
chapters describe.

Two devices run the full station-to-station handshake (ECDH key
agreement + mutual ECDSA authentication, compressed points on the wire),
then the session key amortizes over symmetric traffic -- showing why
"it is more energy efficient to amortize a key-exchange across a lengthy
communication session" (Section 2.1.1), and how hardware acceleration
changes the compute/radio balance (the Pabbuleti trade-off).

Run:  python examples/secure_session.py
"""

from repro.ec.curves import get_curve
from repro.ecdsa import generate_keypair
from repro.protocols import handshake_energy
from repro.protocols.handshake import (
    RADIO_UJ_PER_BYTE,
    run_handshake,
    symmetric_uj_per_byte,
)

#: measured on Pete: the Speck64/128 kernel (see repro.symmetric)
SYMMETRIC_UJ_PER_BYTE = symmetric_uj_per_byte()


def main() -> None:
    curve = get_curve("B-283")  # ~128-bit security, binary field
    alice_priv, alice_pub = generate_keypair(curve, seed=b"alice")
    bob_priv, bob_pub = generate_keypair(curve, seed=b"bob")

    # --- the functional handshake ---------------------------------------
    session = run_handshake(curve, alice_priv, alice_pub,
                            bob_priv, bob_pub, nonce_seed=b"session-1")
    assert session.succeeded
    print(f"handshake on {curve.name}: session key "
          f"{session.session_key_a.hex()}")
    print(f"radio traffic: {session.transcript.radio_bytes} bytes "
          f"(compressed points + fixed-width signatures)\n")

    # --- the energy ledger per configuration ----------------------------
    print("per-side handshake energy (compute + radio):")
    for config in ("baseline", "binary_isa", "billie"):
        he = handshake_energy(curve.name, config)
        print(f"  {config:10s}: {he.total_uj:8.1f} uJ "
              f"({he.compute_uj:8.1f} compute + {he.radio_uj:5.1f} radio; "
              f"compute share {he.compute_share:5.1%})")

    # --- amortization over session traffic -------------------------------
    print(f"\nsymmetric bulk encryption (Speck64/128 on Pete, measured): "
          f"{SYMMETRIC_UJ_PER_BYTE * 1000:.2f} nJ/byte")
    print("amortization: handshake overhead vs session length "
          "(baseline vs Billie):")
    sw = handshake_energy(curve.name, "baseline")
    hw = handshake_energy(curve.name, "billie")
    for kb in (1, 16, 256):
        traffic = kb * 1024
        bulk = traffic * (SYMMETRIC_UJ_PER_BYTE + RADIO_UJ_PER_BYTE)
        share_sw = sw.total_uj / (sw.total_uj + bulk)
        share_hw = hw.total_uj / (hw.total_uj + bulk)
        print(f"  {kb:4d} KB session: handshake is {share_sw:6.1%} of "
              f"energy in software, {share_hw:6.1%} with Billie")

    print("\nthe Potlapally observation reproduced: for short exchanges "
          "the asymmetric handshake dominates; acceleration (or long "
          "sessions) makes it a rounding error.")


if __name__ == "__main__":
    main()
