#!/usr/bin/env python3
"""One-command reproduction tour: regenerate the paper's key artifacts
and run the paper-vs-measured gate.

For the complete set use ``python -m repro.harness.runall``; this script
walks the highlights with commentary -- useful as a first look at what
the reproduction claims and how close it lands.

Run:  python examples/reproduce_paper.py
"""

from repro.harness import render_figure, render_table
from repro.harness.compare import run_report


def main() -> None:
    print("=" * 70)
    print("The Design Space of Ultra-low Energy Asymmetric Cryptography")
    print("(ISPASS 2014) -- reproduction tour")
    print("=" * 70)

    print("\n--- Table 7.1: prime-field latencies "
          "(measured columns vs paper_*) ---")
    print(render_table("7.1"))

    print("\n--- Fig 7.1: the design-space result -- each step right on "
          "the\n    spectrum buys energy (uJ per Sign+Verify) ---")
    print(render_figure("7.1"))

    print("\n--- Fig 7.7: prime vs binary at equivalent security ---")
    print(render_figure("7.7"))

    print("\n--- Fig 7.15: FFAU datapath-width crossover ---")
    print(render_figure("7.15"))

    print("\n--- Section 8 future work, carried out ---")
    print(render_figure("s8.fw"))

    print("\n--- The reproduction gate "
          "(every tracked quantity vs the paper) ---")
    passed, failed = run_report(verbose=False)
    print(f"{passed} comparisons within tolerance, {failed} failures")
    if failed:
        raise SystemExit(1)
    print("\nreproduction gate: PASS")


if __name__ == "__main__":
    main()
