#!/usr/bin/env python3
"""Drive the accelerators directly: Monte's microcoded FFAU and Billie's
register file, at the coprocessor-instruction level.

Shows the lowest public API layer: Montgomery multiplication through
Monte's instruction queue (with the double-buffering overlap visible in
the completion times), a full scalar point multiplication issued to
Billie register by register, and the FFAU datapath-width study.

Run:  python examples/accelerator_microbench.py
"""

import random

from repro.accel.billie import Billie, BillieConfig
from repro.accel.ffau import FFAU, FFAUConfig
from repro.accel.monte import Monte
from repro.ec.curves import get_curve
from repro.model.billie_driver import run_sliding_window


def monte_demo() -> None:
    print("=== Monte: microcoded CIOS over the coprocessor interface ===")
    curve = get_curve("P-192")
    monte = Monte(curve.field.p)
    rng = random.Random(7)
    a = rng.randrange(curve.field.p)
    b = rng.randrange(curve.field.p)

    monte.load_a(monte.ctx.to_mont(a))        # COP2LDA
    monte.load_b(monte.ctx.to_mont(b))        # COP2LDB
    done = monte.mul()                        # COP2MUL
    result, store_done = monte.store()        # COP2ST
    product = monte.ctx.from_mont(result)
    assert product == (a * b) % curve.field.p
    print(f"  first modular multiply completes at cycle {done}")
    print(f"  (FFAU microprogram: {monte.ffau.montmul_cycles(monte.k)} "
          f"cycles for k={monte.k}, Eq. 5.2 predicts "
          f"{monte.ffau.eq52_cycles(monte.k)})")

    # back-to-back multiplies: the DMA hides behind computation
    times = []
    for _ in range(4):
        monte.load_a([0] * monte.k)
        monte.load_b([0] * monte.k)
        monte.op_a = monte.ctx.to_mont(a)
        monte.op_b = monte.ctx.to_mont(b)
        times.append(monte.mul())
        monte.store(addr=0x100)
    deltas = [t2 - t1 for t1, t2 in zip(times, times[1:])]
    print(f"  steady-state spacing between multiplies: {deltas} cycles")
    print("  -> double buffering hides all DMA traffic\n")


def billie_demo() -> None:
    print("=== Billie: scalar point multiplication in 16 registers ===")
    curve = get_curve("B-163")
    rng = random.Random(7)
    scalar = rng.randrange(1, curve.n)
    billie = Billie(BillieConfig(m=163, digit=3))
    run = run_sliding_window(curve, scalar, curve.generator, billie)
    from repro.ec.scalar import sliding_window_mul

    assert run.result == sliding_window_mul(curve, scalar, curve.generator)
    print(f"  163-bit scalar multiply: {run.cycles} cycles "
          f"({run.instructions} coprocessor instructions)")
    print(f"  peak register-file usage: {run.peak_registers}/16")
    stats = billie.stats
    print(f"  unit activity: {stats.mul_ops} muls, {stats.sqr_ops} sqrs, "
          f"{stats.add_ops} adds, {stats.loads}+{stats.stores} ld/st")
    # aggregate across the four units, so >100% means overlap occurred
    busy = 100 * stats.busy_cycles / run.cycles
    print(f"  aggregate functional-unit occupancy: {busy:.0f}% "
          f"(>100% = units overlapping)\n")


def ffau_width_demo() -> None:
    print("=== FFAU datapath-width study (Section 7.9) ===")
    for width in (8, 16, 32, 64):
        ffau = FFAU(FFAUConfig(width=width))
        k = -(-192 // width)
        cycles = ffau.montmul_cycles(k)
        print(f"  {width:2d}-bit datapath: k={k:2d}, "
              f"{cycles:5d} cycles per 192-bit Montgomery multiply")
    print("  (energy crossover lands at 32 bits for 192-bit keys; see "
          "benchmarks/bench_fig7_15.py)")


def main() -> None:
    monte_demo()
    billie_demo()
    ffau_width_demo()


if __name__ == "__main__":
    main()
