"""The event bus wiring instrumented components to sinks.

A :class:`TraceBus` is the single object threaded through the simulator
stack: Pete, the instruction cache, the multiply/divide unit, the memory
system and both coprocessors each hold a ``tracer`` attribute that is
either ``None`` (the zero-cost default -- every instrumentation site is
behind one ``if self.tracer is not None``) or a bus.  Sinks subscribe
with :meth:`attach` and receive every event in emission order, which for
Pete-driven runs is program order (events belonging to an instruction
are emitted before its RETIRE event).
"""

from __future__ import annotations

from typing import Iterable, Protocol

from repro.trace.events import TraceEvent


class TraceSink(Protocol):
    """Anything that consumes trace events."""

    def on_event(self, event: TraceEvent) -> None: ...


class TraceBus:
    """Fan-out of trace events to the attached sinks."""

    def __init__(self, sinks: Iterable[TraceSink] = ()) -> None:
        self._sinks: list[TraceSink] = list(sinks)
        self.events_emitted = 0

    def attach(self, sink: TraceSink) -> TraceSink:
        self._sinks.append(sink)
        return sink

    def detach(self, sink: TraceSink) -> None:
        self._sinks.remove(sink)

    @property
    def sinks(self) -> tuple[TraceSink, ...]:
        return tuple(self._sinks)

    def emit(self, event: TraceEvent) -> None:
        self.events_emitted += 1
        for sink in self._sinks:
            sink.on_event(event)


class CollectingSink:
    """The simplest sink: keep every event (tests, exporters)."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def on_event(self, event: TraceEvent) -> None:
        self.events.append(event)


class NullSink:
    """Discard everything (measuring the emission overhead itself)."""

    def on_event(self, event: TraceEvent) -> None:
        pass


def attach_tracer(cpu, bus: TraceBus | None) -> None:
    """Wire one bus through a built :class:`~repro.pete.cpu.Pete` and
    whatever is hanging off it (cache, mul/div unit, memory system and a
    Monte/Billie behind a COP2 adapter)."""
    cpu.tracer = bus
    cpu.mem.tracer = bus
    cpu.muldiv.tracer = bus
    if cpu.icache is not None:
        cpu.icache.tracer = bus
    cop = cpu.coprocessor
    if cop is not None:
        inner = getattr(cop, "monte", None) or getattr(cop, "billie", None)
        if inner is not None:
            inner.tracer = bus
