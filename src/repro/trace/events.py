"""Typed trace events emitted by the instrumented simulators.

One flat event record covers every instrumentation site; the ``kind``
constants below enumerate the vocabulary.  Events are only constructed
when a :class:`~repro.trace.bus.TraceBus` is attached (the null path is a
single ``if self.tracer is not None`` per site), so the record favours
clarity over packing tricks -- ``__slots__`` keeps allocation cheap when
tracing *is* on.

Field conventions:

* ``cycle`` -- start cycle of the event (``-1`` when the emitting
  component has no clock; sinks attribute such events to the enclosing
  instruction);
* ``duration`` -- cycles covered (0 for point events);
* ``pc`` -- program counter the event is attributable to (retires and
  stalls; ``-1`` elsewhere);
* ``unit`` -- the hardware component, dotted (``pete``, ``pete.muldiv``,
  ``rom``, ``ram``, ``icache``, ``monte.ffau``, ``monte.dma``,
  ``billie.mul`` ...);
* ``detail`` -- mnemonic / stall reason / operation name;
* ``value`` -- event-specific payload (address, word count, jump target).
"""

from __future__ import annotations

# -- event kinds ------------------------------------------------------------

RETIRE = "retire"            # one instruction retired (duration = 1 + stalls)
STALL = "stall"              # pipeline stall; detail = reason
COP2 = "cop2"                # a COP2 instruction issued to a coprocessor
ROM_READ = "rom_read"        # one 32-bit ROM word read
ROM_LINE = "rom_line"        # one 128-bit ROM line read
RAM_READ = "ram_read"
RAM_WRITE = "ram_write"
ICACHE_ACCESS = "icache_access"   # detail = "hit" | "miss" | "pf_hit"
ICACHE_FILL = "icache_fill"
MULDIV_BUSY = "muldiv_busy"  # the Hi/Lo unit occupied; duration = latency
FFAU_BUSY = "ffau_busy"      # Monte's FFAU computing; detail = op
DMA_BURST = "dma_burst"      # Monte DMA transfer; value = words moved
BILLIE_BUSY = "billie_busy"  # one Billie functional unit; unit = billie.<fu>
BILLIE_RAM = "billie_ram"    # Billie load/store RAM traffic; value = words

#: Stall reasons carried in ``detail`` of STALL events.
STALL_REASONS = (
    "icache_miss", "load_use", "branch_mispredict", "jr_target",
    "muldiv", "cop2",
)


class TraceEvent:
    """One instrumentation event (see module docstring for conventions)."""

    __slots__ = ("kind", "cycle", "duration", "pc", "unit", "detail", "value")

    def __init__(self, kind: str, cycle: int, duration: int = 0,
                 pc: int = -1, unit: str = "", detail: str = "",
                 value: int = 0) -> None:
        self.kind = kind
        self.cycle = cycle
        self.duration = duration
        self.pc = pc
        self.unit = unit
        self.detail = detail
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceEvent({self.kind!r}, cycle={self.cycle}, "
                f"duration={self.duration}, pc={self.pc:#x}, "
                f"unit={self.unit!r}, detail={self.detail!r}, "
                f"value={self.value})")

    def as_dict(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}
