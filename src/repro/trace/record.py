"""Structured JSON records for benchmark, profile and scorecard runs.

Every benchmark invocation (and the CI smoke job) writes one record so
runs are comparable across commits: artifact name, configuration,
cycles, energy, wall-clock, and the git revision that produced them.
Schema v2 adds the provenance and attribution fields the cross-run
regression ledger (:mod:`repro.regress`) diffs between commits:

* ``kind`` -- ``bench`` / ``profile`` / ``scorecard`` / ``gate``;
* ``git_dirty`` -- whether the working tree had uncommitted changes, so
  a record from a dirty tree can never masquerade as a commit's result;
* ``components`` -- per-component energy split (uJ by Pete/ROM/RAM/...);
* ``symbols`` -- per-symbol profiler hot spots
  (``{symbol, cycles, instructions, stall_cycles, uj}`` rows).

:func:`load_record` / :func:`upgrade_record` read any schema version
ever written (v1 records gain the new fields with ``None``/empty
defaults), so old ledgers stay diffable forever.
"""

from __future__ import annotations

import json
import os
import subprocess
import time

SCHEMA = "repro.bench.v2"
SCHEMA_V1 = "repro.bench.v1"
#: Every schema this reader understands, oldest first.
KNOWN_SCHEMAS = (SCHEMA_V1, SCHEMA)

_RECORD_KINDS = ("bench", "profile", "scorecard", "gate", "sweep",
                 "analysis", "telemetry", "lanes", "serve")


def _git(args: list[str], repo_dir: str | None) -> str | None:
    """Run one git query; ``None`` when git/.git is unavailable."""
    try:
        out = subprocess.run(
            ["git", *args],
            cwd=repo_dir or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10, check=False)
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout if out.returncode == 0 else None


def git_sha(repo_dir: str | None = None) -> str:
    """Current commit hash, or ``"unknown"`` outside a git checkout."""
    out = _git(["rev-parse", "HEAD"], repo_dir)
    sha = (out or "").strip()
    return sha or "unknown"


def git_dirty(repo_dir: str | None = None) -> bool | None:
    """Whether the working tree has uncommitted changes.

    ``True``/``False`` from ``git status --porcelain``; ``None`` outside
    a git checkout (a record can then only be tied to ``git_sha ==
    "unknown"`` anyway).
    """
    out = _git(["status", "--porcelain"], repo_dir)
    if out is None:
        return None
    return bool(out.strip())


def repo_root(start: str | None = None) -> str:
    """The repository root: nearest ancestor of ``start`` (default: this
    file) holding ``.git``, ``setup.py`` or ``pyproject.toml``; falls
    back to the current directory for installed copies."""
    d = os.path.abspath(start or os.path.dirname(os.path.abspath(__file__)))
    while True:
        if any(os.path.exists(os.path.join(d, m))
               for m in (".git", "setup.py", "pyproject.toml")):
            return d
        parent = os.path.dirname(d)
        if parent == d:
            return os.getcwd()
        d = parent


def default_record_dir() -> str:
    """Where records land by default: ``$BENCH_RECORD_DIR`` or
    ``results/bench`` under the repo root (NOT the cwd, so records from
    any invocation directory end up in one place)."""
    return os.environ.get("BENCH_RECORD_DIR",
                          os.path.join(repo_root(), "results", "bench"))


def bench_record(artifact: str, config: str = "", cycles: float = 0,
                 energy_uj: float = 0.0, wall_s: float = 0.0,
                 data: dict | None = None, kind: str = "bench",
                 components: dict | None = None,
                 symbols: list | None = None) -> dict:
    """Assemble one structured run record (schema v2)."""
    if kind not in _RECORD_KINDS:
        raise ValueError(f"unknown record kind {kind!r} "
                         f"(one of {', '.join(_RECORD_KINDS)})")
    return {
        "schema": SCHEMA,
        "kind": kind,
        "artifact": artifact,
        "config": config,
        "cycles": cycles,
        "energy_uj": energy_uj,
        "wall_s": wall_s,
        "data": data or {},
        "components": dict(components or {}),
        "symbols": list(symbols or []),
        "git_sha": git_sha(),
        "git_dirty": git_dirty(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def kernel_record(result) -> dict:
    """Record for one :class:`~repro.kernels.runner.KernelResult`."""
    return bench_record(
        f"kernel:{result.name}", config=f"k={result.k}",
        cycles=result.cycles,
        data={"instructions": result.instructions,
              "ram_reads": result.ram_reads,
              "ram_writes": result.ram_writes,
              "rom_reads": result.rom_reads})


def summarize_rows(rows) -> tuple[float, float, dict]:
    """Fold an artifact's table rows into ``(cycles, energy_uj, data)``.

    Shared by the pytest benchmarks and ``runall --out`` so the txt/csv
    artifacts and the ledger records are derived from the same rows and
    can never disagree.  Numeric columns whose name mentions ``cycle``
    are summed into cycles; ``*uj`` / ``*energy*`` columns into energy.
    """
    cycles = 0.0
    energy_uj = 0.0
    data: dict = {}
    rows = rows if isinstance(rows, list) else []
    if rows and isinstance(rows[0], dict):
        data["rows"] = len(rows)
        data["columns"] = [str(k) for k in rows[0]]
        for row in rows:
            for key, value in row.items():
                if not isinstance(value, (int, float)):
                    continue
                key_l = str(key).lower()
                if "cycle" in key_l:
                    cycles += value
                elif key_l.endswith("uj") or "energy" in key_l:
                    energy_uj += value
    return cycles, energy_uj, data


def summarize_series(series: dict) -> tuple[float, float, dict]:
    """Fold a figure's ``{series: {key: value}}`` data the same way."""
    rows = []
    for name, values in (series or {}).items():
        if isinstance(values, dict):
            rows.append({f"{name}/{k}": v for k, v in values.items()})
        elif isinstance(values, (int, float)):
            rows.append({name: values})
    merged: dict = {}
    for row in rows:
        merged.update(row)
    cycles, energy_uj, _ = summarize_rows([merged] if merged else [])
    return cycles, energy_uj, {"series": len(series or {})}


def upgrade_record(record: dict) -> dict:
    """Return ``record`` upgraded in place to the current schema.

    v1 records gain ``kind="bench"``, ``git_dirty=None`` (v1 never
    recorded tree state) and empty ``components``/``symbols``.  Unknown
    schemas raise ``ValueError`` so a reader can't silently misparse a
    future format.
    """
    schema = record.get("schema")
    if schema not in KNOWN_SCHEMAS:
        raise ValueError(f"unknown record schema {schema!r} "
                         f"(known: {', '.join(KNOWN_SCHEMAS)})")
    if schema == SCHEMA_V1:
        record.setdefault("kind", "bench")
        record.setdefault("git_dirty", None)
        record.setdefault("components", {})
        record.setdefault("symbols", [])
        record["schema"] = SCHEMA
    return record


def load_record(path: str) -> dict:
    """Read one record file, upgrading old schemas."""
    with open(path, encoding="utf-8") as fh:
        return upgrade_record(json.load(fh))


def write_record(record: dict, out_dir: str | None = None) -> str:
    """Write ``record`` to ``<out_dir>/BENCH_<artifact>.json``.

    ``out_dir`` defaults to :func:`default_record_dir` (repo-root
    anchored).  Returns the path written.
    """
    out_dir = out_dir or default_record_dir()
    os.makedirs(out_dir, exist_ok=True)
    safe = "".join(c if c.isalnum() or c in "-._" else "_"
                   for c in record["artifact"])
    path = os.path.join(out_dir, f"BENCH_{safe}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
