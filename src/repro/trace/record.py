"""Structured JSON records for benchmark and profile runs.

Every benchmark invocation (and the CI smoke job) writes one record so
runs are comparable across commits: artifact name, configuration,
cycles, energy, wall-clock, and the git revision that produced them.
"""

from __future__ import annotations

import json
import os
import subprocess
import time

SCHEMA = "repro.bench.v1"


def git_sha(repo_dir: str | None = None) -> str:
    """Current commit hash, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10, check=False)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def bench_record(artifact: str, config: str = "", cycles: float = 0,
                 energy_uj: float = 0.0, wall_s: float = 0.0,
                 data: dict | None = None) -> dict:
    """Assemble one structured benchmark record."""
    return {
        "schema": SCHEMA,
        "artifact": artifact,
        "config": config,
        "cycles": cycles,
        "energy_uj": energy_uj,
        "wall_s": wall_s,
        "data": data or {},
        "git_sha": git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def write_record(record: dict, out_dir: str | None = None) -> str:
    """Write ``record`` to ``<out_dir>/BENCH_<artifact>.json``.

    ``out_dir`` defaults to ``$BENCH_RECORD_DIR`` or ``results/bench``
    relative to the current directory.  Returns the path written.
    """
    out_dir = out_dir or os.environ.get("BENCH_RECORD_DIR",
                                        os.path.join("results", "bench"))
    os.makedirs(out_dir, exist_ok=True)
    safe = "".join(c if c.isalnum() or c in "-._" else "_"
                   for c in record["artifact"])
    path = os.path.join(out_dir, f"BENCH_{safe}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
