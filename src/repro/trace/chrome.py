"""Chrome ``trace_event`` JSON export (Perfetto / chrome://tracing).

Builds the JSON object format described in the Trace Event Format spec:
complete slices (``"ph": "X"``) for instruction retirement (folded to
symbols so a million-instruction run stays loadable), pipeline stalls,
mul/div occupancy, FFAU and Billie functional-unit busy intervals and
DMA bursts, plus ``"C"`` counter events for the sampled power series.
Timestamps are microseconds: ``cycle * clock_ns / 1000``.
"""

from __future__ import annotations

import json

from repro.energy.technology import SYSTEM_CLOCK_NS
from repro.trace import events as ev

#: (pid, tid) placement and display names for each track
_PROCESSES = {1: "pete", 2: "coprocessor"}
_TRACKS = {
    "retire": (1, 1),
    "stall": (1, 2),
    "muldiv": (1, 3),
    "ffau": (2, 1),
    "dma": (2, 2),
    "billie": (2, 3),
    "billie_ram": (2, 4),
}
_THREAD_NAMES = {
    (1, 1): "retire (symbols)",
    (1, 2): "stalls",
    (1, 3): "mul/div unit",
    (2, 1): "FFAU",
    (2, 2): "DMA",
    (2, 3): "Billie FUs",
    (2, 4): "Billie ld/st",
}

_UNIT_TRACK = {
    ev.MULDIV_BUSY: "muldiv",
    ev.FFAU_BUSY: "ffau",
    ev.DMA_BURST: "dma",
    ev.BILLIE_BUSY: "billie",
    ev.BILLIE_RAM: "billie_ram",
}


def _slice(name: str, track: str, start_cycle: int, dur_cycles: int,
           clock_ns: float, args: dict | None = None) -> dict:
    pid, tid = _TRACKS[track]
    out = {
        "name": name,
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": start_cycle * clock_ns / 1000.0,
        "dur": max(dur_cycles, 1) * clock_ns / 1000.0,
    }
    if args:
        out["args"] = args
    return out


def build_chrome_trace(events, symbols=None, power_series=None,
                       clock_ns: float = SYSTEM_CLOCK_NS,
                       metadata: dict | None = None) -> dict:
    """Build the trace object from a list of :class:`TraceEvent`.

    ``symbols`` is an optional :class:`repro.trace.profiler.Symbolizer`;
    with it, consecutive retirements inside one symbol fold into a
    single slice (named by the symbol), otherwise each retirement is a
    per-mnemonic slice.  ``power_series`` is ``[(cycle, mW), ...]`` as
    produced by :meth:`PowerSampler.power_series`.
    """
    out: list[dict] = []
    for pid, pname in _PROCESSES.items():
        out.append({"name": "process_name", "ph": "M", "pid": pid,
                    "args": {"name": pname}})
    for (pid, tid), tname in _THREAD_NAMES.items():
        out.append({"name": "thread_name", "ph": "M", "pid": pid,
                    "tid": tid, "args": {"name": tname}})

    # fold consecutive retires sharing a symbol into one slice
    open_sym: str | None = None
    open_start = 0
    open_end = 0
    open_count = 0

    def close_retire() -> None:
        nonlocal open_sym, open_count
        if open_sym is not None:
            out.append(_slice(open_sym, "retire", open_start,
                              open_end - open_start, clock_ns,
                              {"instructions": open_count}))
        open_sym, open_count = None, 0

    for e in events:
        if e.kind == ev.RETIRE:
            name = symbols.symbol(e.pc) if symbols is not None else e.detail
            if name == open_sym and e.cycle <= open_end:
                open_end = e.cycle + max(e.duration, 1)
                open_count += 1
            else:
                close_retire()
                open_sym = name
                open_start = e.cycle
                open_end = e.cycle + max(e.duration, 1)
                open_count = 1
        elif e.kind == ev.STALL:
            out.append(_slice(e.detail, "stall", e.cycle, e.duration,
                              clock_ns))
        else:
            track = _UNIT_TRACK.get(e.kind)
            if track is None:
                continue  # per-access memory events: too fine for slices
            name = e.detail or e.unit
            args = {"words": e.value} if e.kind in (
                ev.DMA_BURST, ev.BILLIE_RAM) else None
            out.append(_slice(name, track, max(e.cycle, 0), e.duration,
                              clock_ns, args))
    close_retire()

    if power_series:
        for cycle, mw in power_series:
            out.append({
                "name": "power", "ph": "C", "pid": 1,
                "ts": cycle * clock_ns / 1000.0,
                "args": {"mW": round(mw, 6)},
            })

    return trace_object(out, metadata, other={"clock_ns": clock_ns})


def trace_object(trace_events: list[dict], metadata: dict | None = None,
                 other: dict | None = None) -> dict:
    """Wrap raw ``trace_event`` dicts in the Trace Event JSON object
    format.  Shared by the cycle-domain export above and the wall-clock
    span export (:mod:`repro.obs.export`)."""
    trace = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": dict(other or {}),
    }
    if metadata:
        trace["otherData"].update(metadata)
    return trace


def write_trace(path, trace: dict) -> dict:
    """Write one assembled trace object as JSON; returns it."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
    return trace


def write_chrome_trace(path, events, symbols=None, power_series=None,
                       clock_ns: float = SYSTEM_CLOCK_NS,
                       metadata: dict | None = None) -> dict:
    """Build and write the trace JSON; returns the trace object."""
    return write_trace(path, build_chrome_trace(events, symbols,
                                                power_series, clock_ns,
                                                metadata))
