"""Profiler sink: attribute cycles, stalls and energy to code.

The profiler consumes the event stream of one simulated run and answers
*where did the cycles and nanojoules go*:

* per-PC and per-symbol cycle/stall/energy accounting (symbols come from
  the assembler's label table; any PC folds to the nearest preceding
  label);
* call-path tracking via ``jal``/``jalr`` pushes and ``jr $ra`` pops,
  rendered as collapsed stacks (flamegraph-compatible: one
  ``path;leaf count`` line per call path);
* a top-N hot-spot table whose energy column reconciles with
  :func:`repro.energy.simulated.report_from_corestats` -- both charge
  the identical :class:`~repro.energy.simulated.RunEnergyParams`
  per-event energies.

Events emitted by un-clocked components (the memory system inside one
instruction) are buffered and attributed to the *next* RETIRE event,
which in Pete's in-order pipeline is exactly the instruction that caused
them.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.energy.simulated import RunEnergyParams, report_from_corestats
from repro.trace import events as ev

#: $ra -- the link register whose ``jr`` pops the call stack.
_RA = 31


class Symbolizer:
    """Fold program counters to the assembler's labels."""

    def __init__(self, labels: dict[str, int], base: int = 0) -> None:
        pairs = sorted((base + 4 * idx, name) for name, idx in labels.items())
        self._addrs = [addr for addr, _ in pairs]
        self._names = [name for _, name in pairs]

    @classmethod
    def from_program(cls, program) -> "Symbolizer":
        """From an :class:`~repro.pete.assembler.Assembled` image."""
        return cls(program.labels, program.base)

    def symbol(self, pc: int) -> str:
        i = bisect_right(self._addrs, pc) - 1
        if i < 0:
            return f"0x{pc:x}" if pc >= 0 else "?"
        return self._names[i]


class EnergyCharger:
    """Per-event dynamic energy, shared by profiler and power sampler."""

    def __init__(self, params: RunEnergyParams) -> None:
        self.p = params

    def dynamic_nj(self, e) -> float:
        """Dynamic energy (nJ) of one event; 0.0 for unpriced kinds."""
        p = self.p
        k = e.kind
        if k == ev.RETIRE:
            # one active cycle; the stall cycles inside the instruction
            # are charged by their own STALL events
            return p.pete_active_pj / 1e3
        if k == ev.STALL:
            return e.duration * p.pete_stall_pj / 1e3
        if k == ev.ROM_READ:
            return p.rom_word_pj / 1e3
        if k == ev.ROM_LINE:
            return p.rom_line_pj / 1e3
        if k == ev.RAM_READ:
            return p.ram_read_pj / 1e3
        if k == ev.RAM_WRITE:
            return p.ram_write_pj / 1e3
        if k == ev.ICACHE_ACCESS:
            return p.icache_access_pj / 1e3
        if k == ev.ICACHE_FILL:
            return p.icache_fill_pj / 1e3
        if k == ev.COP2:
            return p.cop2_issue_pj / 1e3
        if k == ev.FFAU_BUSY:
            return e.duration * p.ffau_busy_pj / 1e3
        if k == ev.DMA_BURST:
            ram_pj = (p.ram_read_pj if e.detail == "load"
                      else p.ram_write_pj)
            return e.value * (p.dma_word_pj + ram_pj) / 1e3
        if k == ev.BILLIE_BUSY:
            return e.duration * p.billie_active_pj / 1e3
        if k == ev.BILLIE_RAM:
            ram_pj = (p.ram_read_pj if e.detail == "load"
                      else p.ram_write_pj)
            return e.value * ram_pj / 1e3
        return 0.0

    def uncore_fetch_nj(self) -> float:
        """Uncore buffer energy charged once per retired instruction
        when an instruction cache is configured."""
        return self.p.uncore_active_pj / 1e3


@dataclass
class SymbolProfile:
    """Accumulated costs of one symbol."""

    symbol: str
    cycles: int = 0
    instructions: int = 0
    stall_cycles: int = 0
    dynamic_nj: float = 0.0
    stalls: dict[str, int] = field(default_factory=dict)


class Profiler:
    """Attribute the event stream to PCs, symbols and call paths."""

    def __init__(self, symbols: Symbolizer | None = None,
                 params: RunEnergyParams | None = None) -> None:
        self.symbols = symbols
        self.params = params or RunEnergyParams()
        self.charger = EnergyCharger(self.params)
        # per-pc accumulation
        self.pc_cycles: dict[int, int] = {}
        self.pc_instructions: dict[int, int] = {}
        self.pc_stalls: dict[int, int] = {}
        self.pc_dynamic_nj: dict[int, float] = {}
        self.stall_reasons: dict[str, int] = {}
        # pending events awaiting their RETIRE (un-clocked emitters)
        self._pending_nj = 0.0
        self._pending_stalls: list = []
        # coprocessor activity (not PC-attributable)
        self.coproc_dynamic_nj = 0.0
        self.coproc_busy_cycles = 0
        # call-path tracking
        self._stack: list[str] = []
        self._ret_stack: list[int] = []
        self.path_cycles: dict[tuple[str, ...], int] = {}
        # run totals
        self.total_cycles = 0
        self.total_instructions = 0

    # -- sink protocol -----------------------------------------------------

    def on_event(self, e) -> None:
        kind = e.kind
        if kind == ev.RETIRE:
            self._on_retire(e)
            return
        nj = self.charger.dynamic_nj(e)
        if kind == ev.STALL:
            self._pending_stalls.append(e)
            self._pending_nj += nj
            self.stall_reasons[e.detail] = (
                self.stall_reasons.get(e.detail, 0) + e.duration)
        elif kind in (ev.FFAU_BUSY, ev.BILLIE_BUSY):
            self.coproc_dynamic_nj += nj
            self.coproc_busy_cycles += e.duration
        elif kind in (ev.DMA_BURST, ev.BILLIE_RAM):
            self.coproc_dynamic_nj += nj
        else:
            self._pending_nj += nj

    def _on_retire(self, e) -> None:
        pc = e.pc
        stall = sum(s.duration for s in self._pending_stalls)
        # active cycles = duration minus the stalls inside it: exactly 1
        # for every instruction except the halt, which retires in zero
        active = e.duration - stall
        nj = (self._pending_nj + active * self.params.pete_active_pj / 1e3
              + self.charger.uncore_fetch_nj())
        self._pending_nj = 0.0
        self._pending_stalls.clear()
        self.pc_cycles[pc] = self.pc_cycles.get(pc, 0) + e.duration
        self.pc_instructions[pc] = self.pc_instructions.get(pc, 0) + 1
        self.pc_stalls[pc] = self.pc_stalls.get(pc, 0) + stall
        self.pc_dynamic_nj[pc] = self.pc_dynamic_nj.get(pc, 0.0) + nj
        self.total_cycles += e.duration
        self.total_instructions += 1
        if self.symbols is not None:
            self._track_calls(e)

    def _track_calls(self, e) -> None:
        leaf = self.symbols.symbol(e.pc)
        path = tuple(self._stack) + (leaf,)
        self.path_cycles[path] = self.path_cycles.get(path, 0) + e.duration
        m = e.detail
        if m in ("jal", "jalr") and e.value >= 0:
            self._stack.append(leaf)
            self._ret_stack.append(e.pc + 8)
        elif m == "jr" and self._stack and e.value == self._ret_stack[-1]:
            self._stack.pop()
            self._ret_stack.pop()

    # -- results -----------------------------------------------------------

    def _static_nj_total(self) -> float:
        return sum(self.params.static_nj(c, self.total_cycles)
                   for c in self.params.static_components())

    def total_dynamic_nj(self) -> float:
        base = sum(self.pc_dynamic_nj.values()) + self.coproc_dynamic_nj
        return base + self._idle_nj()

    def _idle_nj(self) -> float:
        """Coprocessor idle-clocking energy (a run-level quantity)."""
        p = self.params
        nj = 0.0
        if p.has_monte:
            idle = max(0, self.total_cycles - self.coproc_busy_cycles)
            nj += idle * p.ffau_idle_pj / 1e3
        if p.has_billie:
            idle = max(0, self.total_cycles - self.coproc_busy_cycles)
            nj += idle * p.billie_idle_pj / 1e3
        return nj

    def total_nj(self) -> float:
        return self.total_dynamic_nj() + self._static_nj_total()

    def by_symbol(self) -> list[SymbolProfile]:
        """Per-symbol rollup, hottest (most cycles) first."""
        rollup: dict[str, SymbolProfile] = {}
        for pc, cycles in self.pc_cycles.items():
            name = (self.symbols.symbol(pc) if self.symbols is not None
                    else f"0x{pc:x}")
            prof = rollup.setdefault(name, SymbolProfile(name))
            prof.cycles += cycles
            prof.instructions += self.pc_instructions[pc]
            prof.stall_cycles += self.pc_stalls[pc]
            prof.dynamic_nj += self.pc_dynamic_nj[pc]
        return sorted(rollup.values(), key=lambda s: -s.cycles)

    def table(self, top: int | None = None) -> str:
        """Render the hot-spot table (cycles + energy per symbol).

        Energy per symbol = attributed dynamic energy plus the symbol's
        cycle-share of static/idle energy, so the table's total equals
        :meth:`total_nj` exactly.
        """
        rows = self.by_symbol()
        shown = rows if top is None else rows[:top]
        overhead_nj = self._static_nj_total() + self._idle_nj()
        total_nj = self.total_nj()
        total_cycles = max(1, self.total_cycles)
        lines = [
            f"{'symbol':<24} {'cycles':>10} {'cyc%':>6} {'instrs':>9} "
            f"{'stalls':>8} {'uJ':>9} {'uJ%':>6}",
        ]
        for s in shown:
            nj = s.dynamic_nj + overhead_nj * s.cycles / total_cycles
            lines.append(
                f"{s.symbol:<24} {s.cycles:>10} "
                f"{100 * s.cycles / total_cycles:>5.1f}% "
                f"{s.instructions:>9} {s.stall_cycles:>8} "
                f"{nj / 1e3:>9.4f} {100 * nj / max(total_nj, 1e-12):>5.1f}%")
        if len(shown) < len(rows):
            rest_c = sum(s.cycles for s in rows[top:])
            rest_nj = sum(s.dynamic_nj for s in rows[top:])
            rest_nj += overhead_nj * rest_c / total_cycles
            lines.append(f"{'(other)':<24} {rest_c:>10} "
                         f"{100 * rest_c / total_cycles:>5.1f}% "
                         f"{'':>9} {'':>8} {rest_nj / 1e3:>9.4f} "
                         f"{100 * rest_nj / max(total_nj, 1e-12):>5.1f}%")
        if self.coproc_dynamic_nj or self._idle_nj():
            nj = self.coproc_dynamic_nj
            lines.append(f"{'(coprocessor)':<24} "
                         f"{self.coproc_busy_cycles:>10} {'':>6} {'':>9} "
                         f"{'':>8} {nj / 1e3:>9.4f} "
                         f"{100 * nj / max(total_nj, 1e-12):>5.1f}%")
        lines.append(
            f"{'total':<24} {self.total_cycles:>10} {'100.0%':>6} "
            f"{self.total_instructions:>9} "
            f"{sum(self.stall_reasons.values()):>8} "
            f"{total_nj / 1e3:>9.4f} {'100.0%':>6}")
        return "\n".join(lines)

    def symbol_rows(self) -> list[dict]:
        """Per-symbol hot spots as serializable rows (hottest first),
        energy including each symbol's cycle-share of static/idle
        overhead exactly as :meth:`table` prints it."""
        overhead_nj = self._static_nj_total() + self._idle_nj()
        total_cycles = max(1, self.total_cycles)
        return [{
            "symbol": s.symbol,
            "cycles": s.cycles,
            "instructions": s.instructions,
            "stall_cycles": s.stall_cycles,
            "uj": (s.dynamic_nj + overhead_nj * s.cycles / total_cycles)
            / 1e3,
        } for s in self.by_symbol()]

    def to_record(self, artifact: str, config: str = "") -> dict:
        """This run as a ``kind="profile"`` ledger record -- the unit
        ``python -m repro.regress diff`` compares between two runs."""
        from repro.trace.record import bench_record

        report = self.energy_report(artifact)
        return bench_record(
            artifact, config=config, kind="profile",
            cycles=self.total_cycles,
            energy_uj=self.total_nj() / 1e3,
            data={"instructions": self.total_instructions,
                  "stall_cycles": sum(self.stall_reasons.values()),
                  "stall_reasons": dict(self.stall_reasons)},
            components={c: report.component_uj(c)
                        for c in report.breakdown.components},
            symbols=self.symbol_rows())

    def collapsed_stacks(self) -> str:
        """Flamegraph-compatible collapsed stacks (cycles as weight)."""
        lines = [f"{';'.join(path)} {cycles}"
                 for path, cycles in sorted(self.path_cycles.items())]
        return "\n".join(lines)

    def energy_report(self, label: str = "profiled-run"):
        """The run's :class:`EnergyReport` as the profiler accounts it --
        reconciles with ``report_from_corestats`` on the same run."""
        from repro.energy.accounting import EnergyBreakdown, EnergyReport

        bd = EnergyBreakdown()
        bd.add_dynamic("attributed", self.total_dynamic_nj())
        for comp in self.params.static_components():
            bd.add_static(comp, self.params.static_nj(
                comp, self.total_cycles))
        return EnergyReport(label, self.total_cycles, bd,
                            self.params.clock_ns)

    def reconcile(self, stats, monte_stats=None, billie_stats=None,
                  label: str = "run") -> float:
        """Relative difference between the profiler's total energy and
        the authoritative counter-based report for the same run."""
        report = report_from_corestats(stats, self.params, label,
                                       monte_stats, billie_stats)
        return abs(self.total_nj() - report.total_nj) / report.total_nj
