"""Labeled metrics registry + interval-sampled power series.

The registry unifies the repo's scattered counter bags --
:class:`~repro.pete.stats.CoreStats`, the model's
:class:`~repro.model.system.Activity` and
:class:`~repro.energy.accounting.EnergyReport` -- behind one namespace
of labeled counters, gauges and series, serializable to JSON for the
benchmark records and the CI artifacts.

:class:`PowerSampler` is the trace sink producing the dissertation-style
power-over-time plots: it buckets every event's dynamic energy into
fixed cycle intervals and renders mW per interval (static power added as
a constant floor), exportable as Chrome ``Counter`` events.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields as dc_fields, is_dataclass

from repro.energy.simulated import RunEnergyParams
from repro.trace import events as ev
from repro.trace.profiler import EnergyCharger


def _label_key(labels: dict[str, str]) -> tuple:
    return tuple(sorted(labels.items()))


@dataclass
class Sample:
    """One collected metric value."""

    name: str
    kind: str                 # counter | gauge | series
    labels: dict[str, str]
    value: float | list


class Counter:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Series:
    """An (x, y) sequence -- cycle-indexed samples of one quantity."""

    __slots__ = ("points",)

    def __init__(self) -> None:
        self.points: list[tuple[float, float]] = []

    def append(self, x: float, y: float) -> None:
        self.points.append((x, y))


#: Quantiles every histogram summary reports.
QUANTILES = (0.5, 0.9, 0.99)


class Histogram:
    """A bag of observations summarized by count/sum/min/max/quantiles.

    Raw observations are kept (the populations this repo measures are
    dozens-to-hundreds of tasks or compiles per run, not millions), so
    cross-process merging (:meth:`MetricsRegistry.merge_state`) is exact
    rather than bucket-approximate.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return float(sum(self.values))

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile of the observations (0 if empty)."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        frac = pos - lo
        if lo + 1 >= len(ordered):
            return ordered[-1]
        return ordered[lo] * (1.0 - frac) + ordered[lo + 1] * frac

    def summary(self) -> dict:
        """JSON-friendly summary with the standard quantiles."""
        out = {
            "count": self.count,
            "sum": self.sum,
            "min": min(self.values) if self.values else 0.0,
            "max": max(self.values) if self.values else 0.0,
            "mean": self.sum / self.count if self.values else 0.0,
        }
        for q in QUANTILES:
            out[f"p{int(q * 100)}"] = self.quantile(q)
        return out


class MetricsRegistry:
    """Named, labeled metrics with JSON export."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, str, tuple], object] = {}

    def _get(self, kind: str, factory, name: str, labels: dict):
        key = (name, kind, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory()
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def series(self, name: str, **labels: str) -> Series:
        return self._get("series", Series, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get("histogram", Histogram, name, labels)

    # -- ingestion from the existing counter bags --------------------------

    def ingest_counters(self, obj, prefix: str = "", **labels: str) -> None:
        """Ingest any all-numeric dataclass (CoreStats, MonteStats,
        BillieStats, Activity) as counters named ``prefix<field>``."""
        if not is_dataclass(obj):
            raise TypeError(f"expected a dataclass, got {type(obj)!r}")
        for f in dc_fields(obj):
            value = getattr(obj, f.name)
            if isinstance(value, (int, float)):
                self.counter(f"{prefix}{f.name}", **labels).inc(value)

    def ingest_energy_report(self, report, **labels: str) -> None:
        """Ingest an :class:`EnergyReport` as per-component counters plus
        summary gauges."""
        for comp, nj in report.breakdown.dynamic_nj.items():
            self.counter("energy_dynamic_nj", component=comp,
                         **labels).inc(nj)
        for comp, nj in report.breakdown.static_nj.items():
            self.counter("energy_static_nj", component=comp,
                         **labels).inc(nj)
        self.gauge("energy_total_uj", **labels).set(report.total_uj)
        self.gauge("power_mw", **labels).set(report.power_mw)
        self.counter("cycles", **labels).inc(report.cycles)

    # -- export ------------------------------------------------------------

    def collect(self) -> list[Sample]:
        out = []
        for (name, kind, labels), metric in sorted(
                self._metrics.items(), key=lambda kv: kv[0][:2]):
            if isinstance(metric, Series):
                value = [list(p) for p in metric.points]
            elif isinstance(metric, Histogram):
                value = metric.summary()
            else:
                value = metric.value
            out.append(Sample(name, kind, dict(labels), value))
        return out

    def as_dict(self) -> dict:
        return {
            "metrics": [
                {"name": s.name, "kind": s.kind, "labels": s.labels,
                 "value": s.value}
                for s in self.collect()
            ]
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    # -- cross-process state (raw, mergeable) ------------------------------

    def state_dict(self) -> dict:
        """Raw, lossless serialization (histograms keep every
        observation), suitable for shipping between processes and
        merging with :meth:`merge_state`."""
        out = []
        for (name, kind, labels), metric in sorted(
                self._metrics.items(), key=lambda kv: kv[0][:2]):
            if isinstance(metric, Series):
                value = [list(p) for p in metric.points]
            elif isinstance(metric, Histogram):
                value = list(metric.values)
            else:
                value = metric.value
            out.append({"name": name, "kind": kind,
                        "labels": dict(labels), "value": value})
        return {"metrics": out}

    def merge_state(self, state: dict) -> None:
        """Fold another registry's :meth:`state_dict` into this one.

        Counters add, gauges take the incoming value, series and
        histograms extend -- so two pool workers incrementing the same
        labeled counter merge to the sum, not a clobber.
        """
        for entry in state.get("metrics", []):
            name, kind = entry["name"], entry["kind"]
            labels, value = entry.get("labels", {}), entry["value"]
            if kind == "counter":
                self.counter(name, **labels).inc(value)
            elif kind == "gauge":
                self.gauge(name, **labels).set(value)
            elif kind == "series":
                series = self.series(name, **labels)
                for x, y in value:
                    series.append(x, y)
            elif kind == "histogram":
                self.histogram(name, **labels).values.extend(
                    float(v) for v in value)
            else:
                raise ValueError(f"unknown metric kind {kind!r}")


class PowerSampler:
    """Trace sink: dynamic power averaged over fixed cycle intervals.

    Events carrying a cycle are bucketed at that cycle; un-clocked
    events (cycle ``-1``) fall into the bucket of the last clocked event
    seen, which in program order is the enclosing instruction's.
    Interval events (FFAU/Billie busy, DMA bursts) are spread uniformly
    over the cycles they cover.
    """

    def __init__(self, params: RunEnergyParams | None = None,
                 interval_cycles: int = 1000) -> None:
        if interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")
        self.params = params or RunEnergyParams()
        self.charger = EnergyCharger(self.params)
        self.interval = interval_cycles
        self.buckets: dict[int, float] = {}   # bucket index -> nJ
        self._now = 0
        self.last_cycle = 0

    def on_event(self, e) -> None:
        if e.cycle >= 0:
            self._now = e.cycle
            end = e.cycle + e.duration
            if end > self.last_cycle:
                self.last_cycle = end
        nj = self.charger.dynamic_nj(e)
        if e.kind == ev.RETIRE and self.params.icache_size is not None:
            nj += self.charger.uncore_fetch_nj()
        if not nj:
            return
        start = e.cycle if e.cycle >= 0 else self._now
        if e.duration > 1:
            # spread interval events across the buckets they cover
            per_cycle = nj / e.duration
            first, last = start // self.interval, (
                start + e.duration - 1) // self.interval
            for b in range(first, last + 1):
                lo = max(start, b * self.interval)
                hi = min(start + e.duration, (b + 1) * self.interval)
                self.buckets[b] = (self.buckets.get(b, 0.0)
                                   + per_cycle * (hi - lo))
        else:
            b = start // self.interval
            self.buckets[b] = self.buckets.get(b, 0.0) + nj

    # -- results -----------------------------------------------------------

    def static_mw(self) -> float:
        """Static (leakage) power floor of the configured system, in mW."""
        p = self.params
        nj_per_cycle = sum(p.static_nj(c, 1.0)
                           for c in p.static_components())
        # nJ per cycle over ns per cycle is watts; *1e3 -> mW
        return nj_per_cycle / p.clock_ns * 1e3

    def power_series(self, include_static: bool = True
                     ) -> list[tuple[int, float]]:
        """``[(cycle, mW), ...]`` -- average power per interval."""
        if not self.buckets:
            return []
        interval_s = self.interval * self.params.clock_ns * 1e-9
        floor = self.static_mw() if include_static else 0.0
        last_bucket = self.last_cycle // self.interval
        out = []
        for b in range(0, last_bucket + 1):
            nj = self.buckets.get(b, 0.0)
            out.append((b * self.interval, nj * 1e-9 / interval_s * 1e3
                        + floor))
        return out

    def to_registry(self, registry: MetricsRegistry, **labels: str) -> None:
        series = registry.series("power_mw", **labels)
        for cycle, mw in self.power_series():
            series.append(cycle, mw)

    def render(self, width: int = 60, include_static: bool = True) -> str:
        """ASCII power-over-time sketch (one row per interval)."""
        series = self.power_series(include_static)
        if not series:
            return "(no samples)"
        peak = max(mw for _, mw in series)
        lines = [f"power over time ({self.interval} cycles/interval, "
                 f"peak {peak:.3f} mW)"]
        for cycle, mw in series:
            bar = "#" * max(1, round(width * mw / peak)) if peak else ""
            lines.append(f"{cycle:>10} {mw:>9.3f} {bar}")
        return "\n".join(lines)
