"""Observability for the simulator stack: tracing, profiling, metrics.

Submodules:

* :mod:`repro.trace.events` -- typed trace events (the vocabulary);
* :mod:`repro.trace.bus` -- the event bus + sink protocol;
* :mod:`repro.trace.profiler` -- PC/symbol cycle+energy attribution,
  hot-spot tables, collapsed stacks;
* :mod:`repro.trace.metrics` -- labeled metrics registry and the
  interval power sampler (power-over-time series);
* :mod:`repro.trace.chrome` -- Chrome ``trace_event`` JSON export
  (loadable in Perfetto / chrome://tracing);
* :mod:`repro.trace.opprofile` -- model-level per-symbol profile of a
  full ECDSA primitive, reconciling with its ``EnergyReport``;
* :mod:`repro.trace.record` -- structured JSON run records (schema v2:
  git sha + dirty flag, per-component/per-symbol attribution), the unit
  the :mod:`repro.regress` cross-run ledger appends and diffs.

This ``__init__`` stays import-light (events + bus only, the rest via
PEP 562 lazy attributes) because the Pete core imports the event types
on its own import path.
"""

from __future__ import annotations

from repro.trace.bus import CollectingSink, NullSink, TraceBus, attach_tracer
from repro.trace.events import TraceEvent

__all__ = [
    "TraceBus", "TraceEvent", "CollectingSink", "NullSink",
    "attach_tracer", "Profiler", "MetricsRegistry", "PowerSampler",
]

_LAZY = {
    "Profiler": ("repro.trace.profiler", "Profiler"),
    "MetricsRegistry": ("repro.trace.metrics", "MetricsRegistry"),
    "PowerSampler": ("repro.trace.metrics", "PowerSampler"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(name) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
