"""Per-operation energy profile of a full ECDSA primitive.

A whole sign/verify does not run cycle-accurately on Pete -- the system
model composes measured kernel costs and coprocessor timing machines
(:mod:`repro.model.system`).  This module is the profiler's model-level
sibling: it prices each part of
:meth:`~repro.model.system.SystemModel.activity_parts` (one row per
field/order operation class) with exactly the coefficients
:meth:`SystemModel.report` uses, and books everything that is a
whole-run quantity -- pipeline stalls, coprocessor idle clocking, the
instruction-fetch path and every static term -- into one residual row.
Rows plus residual equal the authoritative report by construction; the
tests additionally check the residual against an independent pricing of
those run-level quantities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ec.curves import get_curve
from repro.energy.components import FFAUPower
from repro.model.configs import MicroarchConfig, get_config
from repro.model.system import Activity, SystemModel

RESIDUAL_ROW = "(fetch+stall+idle+static)"


@dataclass
class OpRow:
    """One operation class of the profiled primitive."""

    name: str
    cycles: float
    dynamic_nj: float


class OperationProfile:
    """The priced decomposition of one primitive's energy report."""

    def __init__(self, curve: str, config: str, primitive: str,
                 rows: list[OpRow], residual_nj: float, report) -> None:
        self.curve = curve
        self.config = config
        self.primitive = primitive
        self.rows = rows
        self.residual_nj = residual_nj
        self.report = report

    def total_nj(self) -> float:
        return sum(r.dynamic_nj for r in self.rows) + self.residual_nj

    def reconcile(self) -> float:
        """Relative difference vs the authoritative report (0 by
        construction; kept as the symmetric API to
        :meth:`repro.trace.profiler.Profiler.reconcile`)."""
        return (abs(self.total_nj() - self.report.total_nj)
                / self.report.total_nj)

    def table(self) -> str:
        total_nj = self.report.total_nj
        total_cycles = max(1.0, float(self.report.cycles))
        lines = [
            f"{self.curve}/{self.config}/{self.primitive}: "
            f"{self.report.cycles} cycles, {self.report.total_uj:.2f} uJ",
            f"{'operation':<24} {'cycles':>12} {'cyc%':>6} {'uJ':>9} "
            f"{'uJ%':>6}",
        ]
        for r in sorted(self.rows, key=lambda r: -r.dynamic_nj):
            lines.append(
                f"{r.name:<24} {r.cycles:>12.0f} "
                f"{100 * r.cycles / total_cycles:>5.1f}% "
                f"{r.dynamic_nj / 1e3:>9.4f} "
                f"{100 * r.dynamic_nj / total_nj:>5.1f}%")
        lines.append(
            f"{RESIDUAL_ROW:<24} {'':>12} {'':>6} "
            f"{self.residual_nj / 1e3:>9.4f} "
            f"{100 * self.residual_nj / total_nj:>5.1f}%")
        lines.append(
            f"{'total':<24} {self.report.cycles:>12} {'100.0%':>6} "
            f"{self.total_nj() / 1e3:>9.4f} {'100.0%':>6}")
        return "\n".join(lines)


def _part_dynamic_nj(model: SystemModel, config: MicroarchConfig,
                     curve_bits: int, part: Activity) -> float:
    """Price one part's *compute* activity (the per-op attributable
    share of :meth:`SystemModel._energy`'s dynamic terms)."""
    cal = model.cal
    pete_factor = 1.0
    if config.prime_isa_ext:
        pete_factor *= cal.pete.isa_ext_factor
    if config.binary_isa_ext:
        pete_factor *= cal.pete.binary_ext_factor
    pj = part.pete_active * cal.pete.active_pj * pete_factor
    ram = cal.ram(dual_port=config.accelerator is not None)
    pj += (part.ram_reads * ram.read_energy_pj()
           + part.ram_writes * ram.write_energy_pj())
    if config.accelerator == "monte":
        pj += (part.ffau_busy
               * FFAUPower(32).dynamic_pj_per_cycle(curve_bits)
               + part.dma_words * cal.monte.dma_word_pj
               + part.monte_issues * cal.monte.issue_pj)
    elif config.accelerator == "billie":
        pj += part.billie_busy * cal.billie.active_pj(
            curve_bits, config.billie_sram_regfile)
    return pj / 1e3


def profile_primitive(curve_name: str, config: MicroarchConfig | str,
                      primitive: str = "sign",
                      ideal_icache: bool = False,
                      model: SystemModel | None = None
                      ) -> OperationProfile:
    """Profile one full primitive: per-operation rows + residual."""
    model = model or SystemModel()
    config_obj = get_config(config) if isinstance(config, str) else config
    curve_bits = get_curve(curve_name).bits
    parts = model.activity_parts(curve_name, config_obj, primitive)
    report = model.report(curve_name, config_obj, primitive, ideal_icache)
    rows = [
        OpRow(name, part.cycles,
              _part_dynamic_nj(model, config_obj, curve_bits, part))
        for name, part in parts.items()
    ]
    residual = report.total_nj - sum(r.dynamic_nj for r in rows)
    return OperationProfile(curve_name, config_obj.name, primitive,
                            rows, residual, report)
