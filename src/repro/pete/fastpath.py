"""Superblock-threaded fast path for the Pete interpreter.

The reference interpreter (:meth:`repro.pete.cpu.Pete._step`) pays full
decode-and-dispatch cost per instruction: a fetch, a decoded-cache
lookup, a ``_sources`` tuple build and a long mnemonic chain.  The
kernels this simulator exists to price are straight-line field
arithmetic with hot, predictable inner loops, so almost all of that
work is re-derivable from the instruction words alone.

This module discovers *superblocks* at run time -- maximal straight-line
runs of decoded instructions, ending at branches, jumps, COP2 commands
and traps -- and compiles each into one specialized Python closure:

* register indices, immediates and shift amounts are baked in as
  constants (``regs[9] = (regs[8] + 4) & MASK32``);
* per-block cycle, instruction and stall deltas that are statically
  known (the +1 per instruction, intra-block load-use interlocks, the
  per-fetch ROM word read) are folded into single additions;
* only the genuinely dynamic costs stay dynamic: instruction-cache
  penalties, multiply/divide drain interlocks, and the load-use check
  against the instruction that ran *before* the block was entered.

The contract is exactness: a fast-mode run must leave ``CoreStats``,
the architectural state (registers, memory, Hi/Lo accumulator, branch
predictor) and therefore every derived energy number float-identical to
a reference run.  The lock-step harness in :mod:`repro.pete.diffexec`
verifies this at every block boundary.

Deopt rules: closures are only compiled and entered when no tracer is
attached and ``trace_enabled`` is off -- the run loop re-checks at every
block boundary, so attaching a :class:`~repro.trace.bus.TraceBus`
mid-run falls back to the reference interpreter and per-instruction
events keep firing with identical cycle numbers.

Invalidation: ``Pete.load`` (ROM reload) and ``Pete.flush_decoded``
invalidate the per-core block map; a configuration change (the icache
swapped in or out, ISA extension flags flipped) is caught by a
fingerprint check on every lookup.  Compiled code is also memoized in a
content-addressed module-level cache keyed by the block's instruction
words, so repeated simulations of the same kernel (e.g. the runner's
median-of-three trials) compile each block once per process.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Optional

from repro import obs
from repro.pete.cpu import _sources
from repro.pete.isa import Decoded, PeteISA
from repro.pete.muldiv import MASK32

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pete.cpu import Pete

#: Discovery stops after this many instructions; execution simply
#: continues in the follow-on block, so the cap only bounds codegen.
MAX_BLOCK_LEN = 256
#: Blocks shorter than this are not worth a call; the reference
#: interpreter handles them (a ``None`` entry in the block map).
MIN_BLOCK_LEN = 2

#: Mnemonics with straight-line semantics (compilable into blocks).
#: Everything else -- branches, jumps, COP2/CTC2, break -- ends a block
#: and executes on the reference interpreter.
_SIMPLE = frozenset((
    "addu", "add", "addiu", "addi", "subu", "sub",
    "and", "or", "xor", "nor",
    "slt", "sltu", "slti", "sltiu",
    "andi", "ori", "xori", "lui",
    "sll", "srl", "sra", "sllv", "srlv", "srav",
    "lw", "lh", "lhu", "lb", "lbu", "sw", "sh", "sb",
    "syscall",
))
_MULDIV = frozenset((
    "mult", "multu", "div", "divu", "mflo", "mfhi", "mtlo", "mthi",
    "maddu", "m2addu", "addau", "sha", "mulgf2", "maddgf2",
))
COMPILABLE = _SIMPLE | _MULDIV

#: mnemonics that charge the issue counters (mirrors Pete._step)
_MULT_ISSUE = frozenset(("mult", "multu", "maddu", "m2addu",
                         "mulgf2", "maddgf2"))
_DIV_ISSUE = frozenset(("div", "divu"))

_SIGN = 0x8000_0000

#: Content-addressed code memo shared by every Fastpath instance:
#: identical instruction words at the same entry PC compile to the same
#: closure, so re-simulating a kernel reuses the compiled blocks.
_CODE_CACHE: dict[tuple, Callable] = {}
_CODE_CACHE_MAX = 4096

#: Process-wide fast-path activity counters, always maintained (cold
#: path only -- discovery and compilation, never block execution) so
#: the sweep engine can report per-run deltas even with telemetry off.
RUNTIME_STATS: dict[str, int] = {
    "blocks_discovered": 0,
    "blocks_compiled": 0,
    "code_cache_hits": 0,
    "deopt_runs": 0,
}


def runtime_stats_snapshot() -> dict[str, int]:
    """A copy of :data:`RUNTIME_STATS` (delta baselines for callers)."""
    return dict(RUNTIME_STATS)


def note_deopt() -> None:
    """Record one deopt-to-reference event: a run that had to leave the
    fast path because a tracer attached / tracing was switched on.
    Called from :meth:`Pete.attach_tracer` and the fast-run prologue --
    never from the per-block dispatch loop."""
    RUNTIME_STATS["deopt_runs"] += 1
    tel = obs.get()
    if tel is not None:
        tel.counter("fastpath_deopt_runs").inc()


def _s32(value: int) -> int:
    return value - (1 << 32) if value & _SIGN else value


# ---------------------------------------------------------------------------
# Block code generation
# ---------------------------------------------------------------------------


class _BlockCompiler:
    """Generates the Python source of one superblock closure."""

    def __init__(self, decs: list[Decoded], entry_pc: int,
                 icache_on: bool) -> None:
        self.decs = decs
        self.entry_pc = entry_pc
        self.icache_on = icache_on
        self.lines: list[str] = []
        self.pending_cycles = 0      # statically-known cycle delta
        self.static_stall = 0
        self.static_load_use = 0
        self.mult_issues = 0
        self.div_issues = 0
        self.uses_muldiv = any(d.mnemonic in _MULDIV for d in decs)
        # sources of the first instruction decide whether the incoming
        # load-use interlock needs a dynamic guard ($zero never stalls)
        self.entry_sources = tuple(r for r in _sources(decs[0]) if r)

    # -- emit helpers ----------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " + line)

    def flush_cycles(self) -> None:
        """Materialize pending static cycles before a dynamic read."""
        if self.pending_cycles:
            self.emit(f"cycle += {self.pending_cycles}")
            self.pending_cycles = 0

    def wait_muldiv(self) -> None:
        """The MulDiv drain interlock (mirrors Pete._wait_muldiv)."""
        self.flush_cycles()
        self.emit("_bu = muldiv.busy_until")
        self.emit("if _bu > cycle:")
        self.emit("    _w = _bu - cycle")
        self.emit("    cycle += _w")
        self.emit("    stall += _w")
        self.emit("    mstall += _w")

    # -- per-instruction execute code ------------------------------------

    @staticmethod
    def _addr(d: Decoded) -> str:
        if d.imm:
            return f"(regs[{d.rs}] + {d.imm}) & {MASK32}"
        return f"regs[{d.rs}]"  # register values are always masked

    def gen_exec(self, d: Decoded) -> None:
        m = d.mnemonic
        e = self.emit
        if m in ("addu", "add"):
            if d.rd:
                e(f"regs[{d.rd}] = (regs[{d.rs}] + regs[{d.rt}]) "
                  f"& {MASK32}")
        elif m in ("addiu", "addi"):
            if d.rt:
                e(f"regs[{d.rt}] = (regs[{d.rs}] + {d.imm}) & {MASK32}")
        elif m == "lw":
            target = f"regs[{d.rt}] = " if d.rt else ""
            e(f"{target}mem.load({self._addr(d)}, 4)")
        elif m == "sw":
            e(f"mem.store({self._addr(d)}, regs[{d.rt}], 4)")
        elif m in ("subu", "sub"):
            if d.rd:
                e(f"regs[{d.rd}] = (regs[{d.rs}] - regs[{d.rt}]) "
                  f"& {MASK32}")
        elif m == "and":
            if d.rd:
                e(f"regs[{d.rd}] = regs[{d.rs}] & regs[{d.rt}]")
        elif m == "or":
            if d.rd:
                e(f"regs[{d.rd}] = regs[{d.rs}] | regs[{d.rt}]")
        elif m == "xor":
            if d.rd:
                e(f"regs[{d.rd}] = regs[{d.rs}] ^ regs[{d.rt}]")
        elif m == "nor":
            if d.rd:
                e(f"regs[{d.rd}] = ~(regs[{d.rs}] | regs[{d.rt}]) "
                  f"& {MASK32}")
        elif m == "slt":
            # biased compare: s32(a) < s32(b)  <=>  a^2^31 < b^2^31
            if d.rd:
                e(f"regs[{d.rd}] = int((regs[{d.rs}] ^ {_SIGN}) < "
                  f"(regs[{d.rt}] ^ {_SIGN}))")
        elif m == "sltu":
            if d.rd:
                e(f"regs[{d.rd}] = int(regs[{d.rs}] < regs[{d.rt}])")
        elif m == "slti":
            if d.rt:
                biased = (d.imm & MASK32) ^ _SIGN
                e(f"regs[{d.rt}] = int((regs[{d.rs}] ^ {_SIGN}) < "
                  f"{biased})")
        elif m == "sltiu":
            if d.rt:
                e(f"regs[{d.rt}] = int(regs[{d.rs}] < "
                  f"{d.imm & MASK32})")
        elif m == "andi":
            if d.rt:
                e(f"regs[{d.rt}] = regs[{d.rs}] & {d.imm}")
        elif m == "ori":
            if d.rt:
                e(f"regs[{d.rt}] = regs[{d.rs}] | {d.imm}")
        elif m == "xori":
            if d.rt:
                e(f"regs[{d.rt}] = regs[{d.rs}] ^ {d.imm}")
        elif m == "lui":
            if d.rt:
                e(f"regs[{d.rt}] = {(d.imm << 16) & MASK32}")
        elif m == "sll":
            if d.rd:
                if d.shamt:
                    e(f"regs[{d.rd}] = (regs[{d.rt}] << {d.shamt}) "
                      f"& {MASK32}")
                else:
                    e(f"regs[{d.rd}] = regs[{d.rt}]")
        elif m == "srl":
            if d.rd:
                e(f"regs[{d.rd}] = regs[{d.rt}] >> {d.shamt}")
        elif m == "sra":
            if d.rd:
                e(f"regs[{d.rd}] = (_s32(regs[{d.rt}]) >> {d.shamt}) "
                  f"& {MASK32}")
        elif m == "sllv":
            if d.rd:
                e(f"regs[{d.rd}] = (regs[{d.rt}] << (regs[{d.rs}] "
                  f"& 31)) & {MASK32}")
        elif m == "srlv":
            if d.rd:
                e(f"regs[{d.rd}] = regs[{d.rt}] >> (regs[{d.rs}] & 31)")
        elif m == "srav":
            if d.rd:
                e(f"regs[{d.rd}] = (_s32(regs[{d.rt}]) >> "
                  f"(regs[{d.rs}] & 31)) & {MASK32}")
        elif m in ("lh", "lhu", "lb", "lbu"):
            size = 2 if m.startswith("lh") else 1
            signed = not m.endswith("u")
            call = f"mem.load({self._addr(d)}, {size}, signed={signed})"
            if d.rt:
                e(f"regs[{d.rt}] = {call} & {MASK32}")
            else:
                e(call)
        elif m in ("sh", "sb"):
            size = 2 if m == "sh" else 1
            e(f"mem.store({self._addr(d)}, regs[{d.rt}], {size})")
        elif m == "syscall":
            pass  # no-op in the bare-metal environment
        elif m in ("mult", "multu"):
            self.wait_muldiv()
            e(f"muldiv.mult(cycle, regs[{d.rs}], regs[{d.rt}], "
              f"signed={m == 'mult'})")
        elif m in ("div", "divu"):
            self.wait_muldiv()
            e(f"muldiv.div(cycle, regs[{d.rs}], regs[{d.rt}], "
              f"signed={m == 'div'})")
        elif m == "mflo":
            self.wait_muldiv()
            if d.rd:
                e(f"regs[{d.rd}] = muldiv.acc & {MASK32}")
        elif m == "mfhi":
            self.wait_muldiv()
            if d.rd:
                e(f"regs[{d.rd}] = (muldiv.acc >> 32) & {MASK32}")
        elif m == "mtlo":
            self.wait_muldiv()
            e(f"muldiv.set_lo(regs[{d.rs}])")
        elif m == "mthi":
            self.wait_muldiv()
            e(f"muldiv.set_hi(regs[{d.rs}])")
        elif m in ("maddu", "m2addu", "mulgf2", "maddgf2"):
            self.wait_muldiv()
            e(f"muldiv.{m}(cycle, regs[{d.rs}], regs[{d.rt}])")
        elif m == "addau":
            self.wait_muldiv()
            e(f"muldiv.addau(cycle, regs[{d.rs}], regs[{d.rt}])")
        elif m == "sha":
            self.wait_muldiv()
            e("muldiv.sha(cycle)")
        else:  # pragma: no cover - discovery guarantees coverage
            raise ValueError(f"mnemonic {m!r} is not compilable")
        if m in _MULT_ISSUE:
            self.mult_issues += 1
        elif m in _DIV_ISSUE:
            self.div_issues += 1

    # -- whole-block assembly --------------------------------------------

    def source(self) -> str:
        decs, entry_pc = self.decs, self.entry_pc
        n = len(decs)
        out = self.lines
        out.append("def __block(cpu):")
        self.emit("regs = cpu.regs")
        self.emit("mem = cpu.mem")
        self.emit("stats = cpu.stats")
        self.emit("cycle = cpu.cycle")
        if self.uses_muldiv:
            self.emit("muldiv = cpu.muldiv")
        if self.icache_on:
            self.emit("access = cpu.icache.access")
        dynamic_stall = (self.icache_on or self.uses_muldiv
                         or bool(self.entry_sources))
        if dynamic_stall:
            self.emit("stall = 0")
        if self.uses_muldiv:
            self.emit("mstall = 0")
        if self.entry_sources:
            self.emit("luse = 0")

        prev_load_reg: int | None = None
        for i, d in enumerate(decs):
            pc = entry_pc + 4 * i
            if self.icache_on:
                # `now` is only a trace timestamp; tracer is None here
                self.emit(f"_p = access({pc})")
                self.emit("if _p:")
                self.emit("    cycle += _p")
                self.emit("    stall += _p")
            if i == 0:
                if self.entry_sources:
                    self.emit("_llr = cpu._last_load_reg")
                    srcs = repr(self.entry_sources)
                    self.emit(f"if _llr is not None and _llr in {srcs}:")
                    self.emit("    cycle += 1")
                    self.emit("    stall += 1")
                    self.emit("    luse += 1")
            elif prev_load_reg is not None and \
                    prev_load_reg in _sources(d):
                # intra-block load-use interlock: statically certain
                self.pending_cycles += 1
                self.static_stall += 1
                self.static_load_use += 1
            self.gen_exec(d)
            self.pending_cycles += 1   # the instruction's own cycle
            prev_load_reg = d.rt if (d.is_load and d.rt) else None

        self.flush_cycles()
        self.emit("cpu.cycle = cycle")
        self.emit(f"cpu.pc = {entry_pc + 4 * n}")
        self.emit(f"cpu._last_load_reg = {prev_load_reg!r}")
        self.emit("stats.cycles = cycle")
        self.emit(f"stats.instructions += {n}")
        stall_terms = (["stall"] if dynamic_stall else []) + \
            ([str(self.static_stall)] if self.static_stall else [])
        if stall_terms:
            self.emit(f"stats.stall_cycles += {' + '.join(stall_terms)}")
        luse_terms = (["luse"] if self.entry_sources else []) + \
            ([str(self.static_load_use)] if self.static_load_use else [])
        if luse_terms:
            self.emit(
                f"stats.load_use_stalls += {' + '.join(luse_terms)}")
        if self.uses_muldiv:
            self.emit("stats.mult_stall_cycles += mstall")
        if self.mult_issues:
            self.emit(f"stats.mult_issues += {self.mult_issues}")
        if self.div_issues:
            self.emit(f"stats.div_issues += {self.div_issues}")
        if not self.icache_on:
            # uncached fetch: one ROM word read per instruction (the
            # cached path counts accesses inside ICache.access)
            self.emit(f"stats.rom_word_reads += {n}")
        return "\n".join(out) + "\n"


def compile_block(decs: list[Decoded], entry_pc: int,
                  icache_on: bool) -> Callable:
    """Compile one straight-line run into an executable closure."""
    source = _BlockCompiler(decs, entry_pc, icache_on).source()
    namespace: dict = {"_s32": _s32}
    exec(compile(source, f"<superblock@0x{entry_pc:x}>", "exec"),
         namespace)
    fn = namespace["__block"]
    fn.__fastpath_source__ = source      # introspection for tests/debug
    fn.__fastpath_len__ = len(decs)
    return fn


# ---------------------------------------------------------------------------
# Per-core block map
# ---------------------------------------------------------------------------

_MISS = object()

#: Shared discovery maps, content-addressed by the loaded program (its
#: word tuple + base) and the execution configuration.  Cores running
#: the same program -- ``Pete.clone()`` trials, the runner's
#: median-of-3 repeats -- reuse one pc -> closure map instead of
#: re-discovering and re-decoding every block on every run (discovery
#: dominates short runs otherwise).  Closures only touch the ``cpu``
#: argument they are called with, so sharing them across cores is safe.
_BLOCK_MAPS: dict[tuple, dict[int, Optional[Callable]]] = {}
_BLOCK_MAPS_MAX = 64


class Fastpath:
    """Discovers, compiles and caches superblocks for one core."""

    def __init__(self, cpu: "Pete") -> None:
        self._cpu = cpu
        #: entry PC -> closure, or None where no block applies (block
        #: boundaries and too-short runs); shared with other cores
        #: running the same program under the same configuration
        self._blocks: dict[int, Optional[Callable]] = {}
        self._key: Optional[tuple] = None
        self.compiled = 0        # blocks compiled by this instance
        self.code_cache_hits = 0  # blocks reused from _CODE_CACHE
        self._attach()

    # -- configuration / invalidation ------------------------------------

    def _fingerprint(self) -> tuple:
        cpu = self._cpu
        return (cpu.icache, cpu.muldiv.extensions,
                cpu.muldiv.binary_extensions)

    def _attach(self) -> None:
        """Bind ``self._blocks`` to the shared map for the currently
        loaded program (a private map when no program is loaded)."""
        cpu = self._cpu
        self._config = self._fingerprint()
        self._key = None
        if cpu.program is None:
            self._blocks = {}
            return
        self._key = (tuple(cpu.program.words), cpu.program.base,
                     cpu.icache is not None,
                     cpu.muldiv.extensions,
                     cpu.muldiv.binary_extensions)
        blocks = _BLOCK_MAPS.get(self._key)
        if blocks is None:
            if len(_BLOCK_MAPS) >= _BLOCK_MAPS_MAX:
                _BLOCK_MAPS.clear()
            blocks = _BLOCK_MAPS[self._key] = {}
        self._blocks = blocks

    def invalidate(self) -> None:
        """Drop every cached closure (ROM reload / decoded flush).

        The current shared map is emptied *and* unregistered, so cores
        still bound to it rediscover from their actual ROM; this core
        rebinds to the map for whatever program is now loaded.
        """
        if self._key is not None:
            _BLOCK_MAPS.pop(self._key, None)
        self._blocks.clear()
        self._attach()

    # -- lookup ----------------------------------------------------------

    def lookup(self, pc: int) -> Optional[Callable]:
        """The closure entered at ``pc``, compiling on first miss;
        ``None`` where the reference interpreter must run."""
        if self._config != self._fingerprint():
            # configuration change (icache swap, extension toggle):
            # rebind to the matching shared map, keep other maps intact
            self._attach()
        block = self._blocks.get(pc, _MISS)
        if block is _MISS:
            block = self._compile_at(pc)
            self._blocks[pc] = block
        return block

    # -- discovery / compilation -----------------------------------------

    def _discover(self, pc: int) -> tuple[list[Decoded], list[int]]:
        """Decode forward from ``pc`` to the next block boundary."""
        cpu = self._cpu
        decoded_cache = cpu._decoded
        decs: list[Decoded] = []
        words: list[int] = []
        addr = pc
        while len(decs) < MAX_BLOCK_LEN:
            try:
                word = cpu.mem.peek_word(addr)
            except MemoryError:
                break
            d = decoded_cache.get(addr)
            if d is None or d.word != word:
                try:
                    d = PeteISA.decode(word)
                except ValueError:
                    break  # data / garbage: the reference path raises
                decoded_cache[addr] = d
            if d.mnemonic not in COMPILABLE:
                break
            decs.append(d)
            words.append(word)
            addr += 4
        return decs, words

    def _compile_at(self, pc: int) -> Optional[Callable]:
        t0 = time.perf_counter()
        decs, words = self._discover(pc)
        RUNTIME_STATS["blocks_discovered"] += 1
        tel = obs.get()
        if tel is not None:
            tel.counter("fastpath_blocks_discovered").inc()
        if len(decs) < MIN_BLOCK_LEN:
            return None
        icache_on = self._cpu.icache is not None
        key = (icache_on, pc, tuple(words))
        fn = _CODE_CACHE.get(key)
        if fn is None:
            fn = compile_block(decs, pc, icache_on)
            if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
                _CODE_CACHE.clear()
            _CODE_CACHE[key] = fn
            self.compiled += 1
            RUNTIME_STATS["blocks_compiled"] += 1
            if tel is not None:
                tel.counter("fastpath_blocks_compiled").inc()
                tel.counter("fastpath_block_instructions").inc(len(decs))
                tel.histogram("fastpath_compile_s").observe(
                    time.perf_counter() - t0)
        else:
            self.code_cache_hits += 1
            RUNTIME_STATS["code_cache_hits"] += 1
            if tel is not None:
                tel.counter("fastpath_code_cache_hits").inc()
        return fn

    def precompile(self, starts) -> int:
        """Drive this core's shared block map to closure over
        ``starts`` (statically known block-start pcs, e.g. CFG basic-
        block leaders), including every ``MAX_BLOCK_LEN`` continuation.
        Short runs are *decided* (stored as ``None``) rather than
        compiled, so they also stop counting as discoveries later.
        After closure, data-dependent control flow cannot trigger a
        first-time compile on this program image under this
        configuration.  Returns the number of blocks newly compiled.
        """
        before = RUNTIME_STATS["blocks_compiled"]
        seen: set[int] = set()
        work = [int(pc) for pc in starts]
        while work:
            pc = work.pop()
            if pc in seen:
                continue
            seen.add(pc)
            self.lookup(pc)
            decs, _ = self._discover(pc)
            if len(decs) == MAX_BLOCK_LEN:
                work.append(pc + 4 * MAX_BLOCK_LEN)
        return RUNTIME_STATS["blocks_compiled"] - before
