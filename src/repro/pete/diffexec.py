"""Lock-step differential verification of the superblock fast path.

Runs the fast (:mod:`repro.pete.fastpath`) and reference interpreters
side by side on identical inputs: the fast core advances one *unit* at
a time (a compiled superblock, or a single reference instruction where
no block applies), the reference core is then stepped by the same
number of instructions, and the complete architectural state -- PC,
registers, cycle, every ``CoreStats`` counter, the Hi/Lo/OvFlo
accumulator, RAM contents, the branch predictor and the load-use latch
-- is compared at every unit boundary.  The first divergence is
reported with disassembly context around the offending PC.

This is the correctness tool that lets interpreter work move fast: any
change to the fast path (or the reference core) that breaks the
stats/energy-exactness contract is localized to the first diverging
block and quantity, not discovered as a wrong number in Table 7.1.

Usage::

    PYTHONPATH=src python -m repro.pete.diffexec \\
        --kernels os_mul:8 comb_mul:6 scalar_ladder:16

runs the named kernels (default: a representative set covering the
prime-field, binary-field, scalar and symmetric kernel families),
prints one summary line per kernel and exits non-zero on the first
divergence.  ``--report PATH`` writes the full report (divergence
details included) for CI to upload.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

from repro.pete.cpu import Pete
from repro.pete.fastpath import Fastpath

#: One kernel per family: prime-field school/product-scanning, NIST
#: reduction, binary-field comb + squaring, scalar loops, symmetric.
DEFAULT_KERNELS = (
    "mp_add:8", "os_mul:8", "ps_mul_ext:8", "red_p192:6",
    "comb_mul:6", "ps_mulgf2:6", "bsqr_table:6", "red_b163:6",
    "scalar_daa:16", "scalar_ladder:16", "speck64:1",
)


@dataclass
class Divergence:
    """The first state mismatch between the two interpreters."""

    what: str                  # e.g. "regs[$t0]", "cycle", "stats.cycles"
    ref_value: object
    fast_value: object
    pc: int                    # fast-core PC at the boundary
    instructions: int          # instructions retired when it surfaced
    context: str = ""          # disassembly window around the PC

    def format(self) -> str:
        lines = [
            f"divergence after {self.instructions} instructions "
            f"at pc=0x{self.pc:06x}:",
            f"  {self.what}: reference={self.ref_value!r} "
            f"fast={self.fast_value!r}",
        ]
        if self.context:
            lines.append("  context:")
            lines.extend("    " + line
                         for line in self.context.splitlines())
        return "\n".join(lines)


@dataclass
class DiffReport:
    """Outcome of one lock-step run."""

    label: str
    instructions: int = 0
    blocks: int = 0            # superblock executions on the fast side
    boundaries: int = 0        # state comparisons performed
    divergence: Divergence | None = None
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def summary(self) -> str:
        status = "ok" if self.ok else "DIVERGED"
        return (f"{self.label:<18} {status:<9} "
                f"{self.instructions:>9} instructions  "
                f"{self.blocks:>6} blocks  "
                f"{self.boundaries:>7} state compares")

    def format(self) -> str:
        out = [self.summary()]
        if self.divergence is not None:
            out.append(self.divergence.format())
        out.extend(self.notes)
        return "\n".join(out)


# ---------------------------------------------------------------------------
# Stepping and comparison primitives
# ---------------------------------------------------------------------------


def step_unit(cpu: Pete, fastpath: Fastpath) -> tuple[bool, bool]:
    """Advance ``cpu`` by one fast-path unit.

    A unit is one compiled superblock when one applies (no pending
    delay slot, no tracer attached), else one reference-interpreter
    instruction.  Returns ``(alive, was_block)``; ``alive`` is False
    once the core halts.  This mirrors ``Pete._run_fast`` exactly and
    exists so callers (the lock-step loop, deopt tests) can observe
    state *between* units.
    """
    if (not cpu._in_delay_slot and cpu.tracer is None
            and not cpu.trace_enabled):
        block = fastpath.lookup(cpu.pc)
        if block is not None:
            block(cpu)
            return True, True
    return cpu.step_instruction(), False


def _reg_name(index: int) -> str:
    from repro.pete.isa import REGISTER_NAMES

    return f"regs[${REGISTER_NAMES[index]}]"


def compare_state(ref: Pete, fast: Pete) -> Divergence | None:
    """First architectural difference between two cores, or ``None``."""

    def div(what, ref_value, fast_value):
        return Divergence(what, ref_value, fast_value, fast.pc,
                          fast.stats.instructions)

    if ref.pc != fast.pc:
        return div("pc", hex(ref.pc), hex(fast.pc))
    if ref.cycle != fast.cycle:
        return div("cycle", ref.cycle, fast.cycle)
    if ref.regs != fast.regs:
        for i, (a, b) in enumerate(zip(ref.regs, fast.regs)):
            if a != b:
                return div(_reg_name(i), a, b)
    if ref.muldiv.acc != fast.muldiv.acc:
        return div("muldiv.acc", hex(ref.muldiv.acc),
                   hex(fast.muldiv.acc))
    if ref.muldiv.busy_until != fast.muldiv.busy_until:
        return div("muldiv.busy_until", ref.muldiv.busy_until,
                   fast.muldiv.busy_until)
    if ref.muldiv.issues != fast.muldiv.issues:
        return div("muldiv.issues", ref.muldiv.issues,
                   fast.muldiv.issues)
    if ref._last_load_reg != fast._last_load_reg:
        return div("load-use latch", ref._last_load_reg,
                   fast._last_load_reg)
    stats_diff = ref.stats.diff(fast.stats)
    if stats_diff:
        name, (a, b) = next(iter(stats_diff.items()))
        return div(f"stats.{name}", a, b)
    if ref._predictor != fast._predictor:
        return div("branch predictor", ref._predictor, fast._predictor)
    if ref.mem.ram != fast.mem.ram:
        for offset, (a, b) in enumerate(zip(ref.mem.ram, fast.mem.ram)):
            if a != b:
                from repro.pete.memory import RAM_BASE

                return div(f"ram[0x{RAM_BASE + offset:08x}]", a, b)
    return None


def _context(cpu: Pete, window: int = 6) -> str:
    """Disassembly around ``cpu.pc``, the boundary PC marked."""
    from repro.pete.disassembler import disassemble_decoded
    from repro.pete.isa import PeteISA

    labels: dict[int, str] = {}
    if cpu.program is not None:
        labels = {cpu.program.base + 4 * index: name
                  for name, index in cpu.program.labels.items()}
    lines = []
    for addr in range(cpu.pc - 4 * window, cpu.pc + 4 * (window + 1), 4):
        if addr < 0:
            continue
        try:
            text = disassemble_decoded(
                PeteISA.decode(cpu.mem.peek_word(addr)), addr)
        except (MemoryError, ValueError):
            text = "<not decodable>"
        if addr in labels:
            lines.append(f"{labels[addr]}:")
        marker = "->" if addr == cpu.pc else "  "
        lines.append(f"{marker} 0x{addr:06x}  {text}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The lock-step loop
# ---------------------------------------------------------------------------


def lockstep(fast: Pete, entry: int, *, label: str = "",
             max_cycles: int = 50_000_000) -> DiffReport:
    """Run ``fast`` (fast path) against a clone of itself (reference)
    in lock-step from ``entry``; state is compared at every unit
    boundary and the first divergence ends the run."""
    ref = fast.clone()
    fastpath = Fastpath(fast)
    fast.fastpath = fastpath
    fast.begin(entry)
    ref.begin(entry)
    report = DiffReport(label or f"pc=0x{entry:x}")

    while True:
        if fast.cycle > max_cycles:
            raise RuntimeError(
                f"{report.label}: no halt within {max_cycles} cycles")
        before = fast.stats.instructions
        fast_alive, was_block = step_unit(fast, fastpath)
        if was_block:
            report.blocks += 1
        ref_alive = True
        for _ in range(fast.stats.instructions - before):
            ref_alive = ref.step_instruction()
            if not ref_alive:
                break
        report.boundaries += 1
        report.instructions = fast.stats.instructions
        divergence = compare_state(ref, fast)
        if divergence is None and fast_alive != ref_alive:
            divergence = Divergence(
                "halt", f"ref halted={not ref_alive}",
                f"fast halted={not fast_alive}", fast.pc,
                fast.stats.instructions)
        if divergence is not None:
            divergence.context = _context(fast)
            report.divergence = divergence
            return report
        if not fast_alive:
            return report


def certify_static(cpu: Pete, report: DiffReport) -> None:
    """Cross-check dynamic superblock discovery against the static map.

    The abstract analyzer's superblock map
    (:mod:`repro.analysis.superblock`) must be a superset of what the
    fastpath discovered at runtime: every compiled block inside a
    statically mapped region, every declined pc statically rated below
    the compile threshold.  A mismatch is reported through the same
    ``divergence`` channel as a lock-step failure, so the CI job gates
    on it with no extra plumbing.
    """
    if cpu.fastpath is None or cpu.program is None:
        return
    from repro.analysis.cfg import AsmProgram
    from repro.analysis.superblock import certify, static_blocks

    program = AsmProgram.from_assembled(cpu.program, name=report.label)
    problems = certify(program, cpu.fastpath._blocks)
    if problems:
        if report.divergence is None:
            report.divergence = Divergence(
                "static superblock map",
                "superset of dynamic discovery",
                f"{len(problems)} mismatch(es)",
                cpu.pc, report.instructions,
                context="\n".join(problems))
        return
    report.notes.append(
        f"  static map certified: {len(static_blocks(program))} static "
        f"regions cover all {report.blocks} dynamic block executions")


def compare_lane_state(ref: Pete, eng, lane: int) -> Divergence | None:
    """First architectural difference between a reference core and one
    lane of a :class:`~repro.pete.lanes.LaneEngine`, or ``None``.

    Demoted / bridge-halted lanes hold their truth in a scalar core and
    go through :func:`compare_state` unchanged; vector lanes are read
    through the engine's dense arrays."""
    bridge = eng.lane_bridge(lane)
    if bridge is not None:
        return compare_state(ref, bridge)
    import numpy as np

    def div(what, ref_value, fast_value):
        return Divergence(what, ref_value, fast_value, eng.lane_pc(lane),
                          eng.lane_instructions(lane))

    if ref.pc != eng.lane_pc(lane):
        return div("pc", hex(ref.pc), hex(eng.lane_pc(lane)))
    if ref.cycle != eng.lane_cycle(lane):
        return div("cycle", ref.cycle, eng.lane_cycle(lane))
    regs = eng.lane_regs(lane)
    if ref.regs != regs:
        for i, (a, b) in enumerate(zip(ref.regs, regs)):
            if a != b:
                return div(_reg_name(i), a, b)
    if ref.muldiv.acc != eng.lane_acc(lane):
        return div("muldiv.acc", hex(ref.muldiv.acc),
                   hex(eng.lane_acc(lane)))
    if ref.muldiv.busy_until != eng.lane_busy_until(lane):
        return div("muldiv.busy_until", ref.muldiv.busy_until,
                   eng.lane_busy_until(lane))
    if ref.muldiv.issues != eng.lane_issues(lane):
        return div("muldiv.issues", ref.muldiv.issues,
                   eng.lane_issues(lane))
    if ref._last_load_reg != eng.lane_load_latch(lane):
        return div("load-use latch", ref._last_load_reg,
                   eng.lane_load_latch(lane))
    stats_diff = ref.stats.diff(eng.lane_stats(lane))
    if stats_diff:
        name, (a, b) = next(iter(stats_diff.items()))
        return div(f"stats.{name}", a, b)
    if ref._predictor != eng.lane_predictor(lane):
        return div("branch predictor", ref._predictor,
                   eng.lane_predictor(lane))
    ref_ram = np.frombuffer(ref.mem.ram, dtype=np.uint8)
    if not np.array_equal(ref_ram, eng.ram[lane]):
        offset = int(np.nonzero(ref_ram != eng.ram[lane])[0][0])
        from repro.pete.memory import RAM_BASE

        return div(f"ram[0x{RAM_BASE + offset:08x}]",
                   int(ref_ram[offset]), int(eng.ram[lane][offset]))
    return None


def lockstep_lanes(cores: list[Pete], entry: int, *, label: str = "",
                   max_cycles: int = 50_000_000) -> DiffReport:
    """Run N prepared cores through the lane engine against N reference
    clones; every lane's full state is compared at every engine unit
    boundary and the first per-lane divergence ends the run."""
    from repro.pete.lanes import LaneEngine

    refs = [core.clone() for core in cores]
    eng = LaneEngine(cores)
    eng.begin(entry)
    for ref in refs:
        ref.begin(entry)
    n = len(refs)
    report = DiffReport(label or f"pc=0x{entry:x}[x{n}]")
    ref_alive = [True] * n
    settled = [False] * n       # lane halted and verified; skip it

    while True:
        before = [eng.lane_instructions(i) for i in range(n)]
        blocks_before = eng.vector_blocks
        eng_alive = eng.step_unit()
        report.blocks += eng.vector_blocks - blocks_before
        report.boundaries += 1
        for i in range(n):
            if settled[i]:
                continue
            ref = refs[i]
            for _ in range(eng.lane_instructions(i) - before[i]):
                if not ref.step_instruction():
                    ref_alive[i] = False
                    break
            if ref.cycle > max_cycles:
                raise RuntimeError(
                    f"{report.label}: no halt within {max_cycles} cycles")
            divergence = compare_lane_state(ref, eng, i)
            if divergence is None and ref_alive[i] == eng.lane_done(i):
                divergence = Divergence(
                    "halt", f"ref halted={not ref_alive[i]}",
                    f"lane halted={eng.lane_done(i)}",
                    eng.lane_pc(i), eng.lane_instructions(i))
            if divergence is not None:
                divergence.what = f"lane {i}: {divergence.what}"
                divergence.context = _context(refs[i])
                report.divergence = divergence
                report.instructions = sum(
                    eng.lane_instructions(j) for j in range(n))
                return report
            if eng.lane_done(i):
                settled[i] = True
        if not eng_alive:
            report.instructions = sum(
                eng.lane_instructions(j) for j in range(n))
            counters = eng.counters()
            report.notes.append(
                "  lanes: {lanes} | vector blocks {vector_blocks} | "
                "divergences {divergences} (demotions {demotions}, "
                "rejoins {rejoins}, fallback instructions "
                "{fallback_instructions})".format(**counters))
            return report


def diff_kernel_lanes(name: str, k: int, lanes: int, *,
                      max_cycles: int = 50_000_000) -> DiffReport:
    """Per-lane lock-step of one generated kernel: ``lanes`` prepared
    instances (distinct operands, same program) through the lane engine
    vs per-lane reference interpreters."""
    from repro.kernels.runner import KernelRunner

    runner = KernelRunner(cache={})
    cores = []
    entry = None
    for _ in range(lanes):
        cpu, e = runner.prepare(name, k)
        if entry is None:
            entry = e
        elif e != entry:
            raise RuntimeError(f"{name}:{k}: unstable entry point")
        cores.append(cpu)
    assert entry is not None
    return lockstep_lanes(cores, entry, label=f"{name}:{k}[x{lanes}]",
                          max_cycles=max_cycles)


def diff_kernel(name: str, k: int, *,
                max_cycles: int = 50_000_000) -> DiffReport:
    """Lock-step one generated kernel (same harness the measurements
    use) on the fast vs reference interpreters, then certify the
    dynamic superblock discovery against the static map."""
    from repro.kernels.runner import KernelRunner

    runner = KernelRunner(cache={})
    cpu, entry = runner.prepare(name, k)
    report = lockstep(cpu, entry, label=f"{name}:{k}",
                      max_cycles=max_cycles)
    certify_static(cpu, report)
    return report


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", nargs="*", metavar="NAME:K",
                        default=list(DEFAULT_KERNELS),
                        help="kernels to verify (default: one per "
                             "kernel family)")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="write the full report (with divergence "
                             "details) to this file")
    parser.add_argument("--max-cycles", type=int, default=50_000_000)
    parser.add_argument("--lanes", nargs="+", type=int, metavar="N",
                        default=None,
                        help="verify the lane engine instead of the "
                             "scalar fast path: per-lane lock-step at "
                             "each of these batch sizes")
    args = parser.parse_args(argv)

    if args.lanes:
        from repro.pete.lanes import HAVE_NUMPY

        if not HAVE_NUMPY:
            raise SystemExit("diffexec: --lanes requires numpy")

    reports = []
    for token in args.kernels:
        name, _, k = token.partition(":")
        if not k:
            raise SystemExit(f"diffexec: bad kernel spec {token!r} "
                             f"(expected NAME:K, like os_mul:8)")
        try:
            if args.lanes:
                batch = [
                    diff_kernel_lanes(name, int(k), lanes,
                                      max_cycles=args.max_cycles)
                    for lanes in args.lanes
                ]
            else:
                batch = [diff_kernel(name, int(k),
                                     max_cycles=args.max_cycles)]
        except KeyError as exc:
            raise SystemExit(f"diffexec: {exc.args[0]}")
        for report in batch:
            reports.append(report)
            print(report.summary())
            if not report.ok:
                print(report.divergence.format())

    diverged = [r for r in reports if not r.ok]
    total = sum(r.instructions for r in reports)
    blocks = sum(r.blocks for r in reports)
    footer = (f"diffexec: {len(reports)} kernels, {total} instructions, "
              f"{blocks} superblocks, {len(diverged)} divergences")
    print(footer)

    if args.report:
        import pathlib

        path = pathlib.Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = "\n\n".join(r.format() for r in reports)
        path.write_text(body + "\n\n" + footer + "\n")
        print(f"(report: {path})")
    return 1 if diverged else 0


if __name__ == "__main__":
    sys.exit(main())
