"""Disassembler: machine words back to assembly text.

Round-trips with the assembler (modulo label names) and renders the
delay-slot structure; used for debugging generated kernels and by the
round-trip tests that pin the encodings.
"""

from __future__ import annotations

from repro.pete.isa import REGISTER_NAMES, Decoded, PeteISA


def _r(index: int) -> str:
    return f"${REGISTER_NAMES[index]}"


def disassemble_word(word: int, pc: int = 0) -> str:
    """One instruction word to text (branch targets as absolute hex)."""
    d = PeteISA.decode(word)
    return disassemble_decoded(d, pc)


def disassemble_decoded(d: Decoded, pc: int = 0) -> str:
    m = d.mnemonic
    if m == "sll" and d.rd == 0 and d.rt == 0 and d.shamt == 0:
        return "nop"
    if m in ("sll", "srl", "sra"):
        return f"{m} {_r(d.rd)}, {_r(d.rt)}, {d.shamt}"
    if m in ("sllv", "srlv", "srav"):
        return f"{m} {_r(d.rd)}, {_r(d.rt)}, {_r(d.rs)}"
    if m in ("add", "addu", "sub", "subu", "and", "or", "xor", "nor",
             "slt", "sltu"):
        return f"{m} {_r(d.rd)}, {_r(d.rs)}, {_r(d.rt)}"
    if m in ("mult", "multu", "div", "divu"):
        return f"{m} {_r(d.rs)}, {_r(d.rt)}"
    if m in ("mfhi", "mflo"):
        return f"{m} {_r(d.rd)}"
    if m in ("mthi", "mtlo"):
        return f"{m} {_r(d.rs)}"
    if m == "jr":
        return f"jr {_r(d.rs)}"
    if m == "jalr":
        return f"jalr {_r(d.rd)}, {_r(d.rs)}"
    if m in ("break", "syscall", "sha", "cop2sync", "cop2mul", "cop2add",
             "cop2sub"):
        return m
    if m in ("maddu", "m2addu", "addau", "mulgf2", "maddgf2"):
        return f"{m} {_r(d.rs)}, {_r(d.rt)}"
    if m in ("beq", "bne"):
        target = pc + 4 + 4 * d.imm
        return f"{m} {_r(d.rs)}, {_r(d.rt)}, 0x{target:x}"
    if m in ("blez", "bgtz", "bltz", "bgez"):
        target = pc + 4 + 4 * d.imm
        return f"{m} {_r(d.rs)}, 0x{target:x}"
    if m in ("addi", "addiu", "slti", "sltiu", "andi", "ori", "xori"):
        return f"{m} {_r(d.rt)}, {_r(d.rs)}, {d.imm}"
    if m == "lui":
        return f"lui {_r(d.rt)}, {d.imm}"
    if m in ("lw", "lh", "lhu", "lb", "lbu", "sw", "sh", "sb"):
        return f"{m} {_r(d.rt)}, {d.imm}({_r(d.rs)})"
    if m in ("j", "jal"):
        return f"{m} 0x{d.target << 2:x}"
    if m == "ctc2":
        return f"ctc2 {_r(d.rt)}, {d.rd}"
    if m in ("cop2lda", "cop2ldb", "cop2ldn", "cop2st") and d.rs == 0:
        return f"{m} {_r(d.rt)}"
    if m in ("cop2ld", "cop2st"):
        return f"{m} {_r(d.rt)}, {d.rd}"
    if m == "cop2sqr":
        return f"cop2sqr {d.rs}, {d.shamt}"
    return m  # pragma: no cover - exhaustive above


def disassemble(words: list[int], base: int = 0) -> list[str]:
    """A whole program image, one line per word, with addresses."""
    lines = []
    for i, word in enumerate(words):
        pc = base + 4 * i
        try:
            text = disassemble_word(word, pc)
        except ValueError:
            text = f".word 0x{word:08x}"
        lines.append(f"{pc:08x}:  {text}")
    return lines


_CONTROL = {"beq", "bne", "blez", "bgtz", "bltz", "bgez",
            "j", "jal", "jr", "jalr"}


def disassemble_to_source(words: list[int], base: int = 0) -> str:
    """A program image as *re-assemblable* source.

    Unlike :func:`disassemble` this emits no addresses, marks every
    delay-slot instruction with ``.ds`` (so the assembler does not
    insert its own nop), and leaves branch targets as absolute numeric
    addresses (which the assembler accepts wherever a label is
    expected).  ``assemble(disassemble_to_source(words, base), base)``
    reproduces ``words`` exactly; the round-trip test in
    ``tests/pete/test_roundtrip.py`` holds this for every shipped
    kernel.
    """
    lines = []
    in_slot = False
    for i, word in enumerate(words):
        pc = base + 4 * i
        try:
            d = PeteISA.decode(word)
            text = disassemble_decoded(d, pc)
            mnemonic = d.mnemonic
        except ValueError:
            text = f".word 0x{word:08x}"
            mnemonic = ".word"
        lines.append(f"    .ds {text}" if in_slot else f"    {text}")
        in_slot = mnemonic in _CONTROL
    return "\n".join(lines) + "\n"
