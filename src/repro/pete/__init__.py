"""'Pete': the paper's embedded RISC processor (Section 5.1).

A classic five-stage, in-order, pipelined core executing a subset of the
MIPS-II ISA, with:

* a statically scheduled, 4-cycle Karatsuba multiply unit behind the MIPS
  Hi/Lo register pair (Section 5.1.1-5.1.2);
* the prime-field accumulator ISA extensions MADDU / M2ADDU / ADDAU / SHA
  and the binary-field carry-less extensions MULGF2 / MADDGF2 (Section 5.2);
* 256 KB single-cycle program ROM and 16 KB RAM (Fig. 5.1);
* an optional parameterizable direct-mapped instruction cache with a
  single-entry stream-buffer prefetcher and a 128-bit ROM line port
  (Section 5.3).

The simulator is a *timing interpreter*: it executes instructions
functionally, in order, while modeling the cycle effects of the pipeline
(load-use interlocks, branch prediction + delay slots, multiplier
occupancy, cache misses) and counting every memory event the energy model
needs.
"""

from repro.pete.assembler import AssemblyError, assemble
from repro.pete.cpu import Pete, Program
from repro.pete.icache import ICache, ICacheConfig
from repro.pete.isa import PeteISA
from repro.pete.lanes import HAVE_NUMPY, LaneEngine
from repro.pete.stats import CoreStats

__all__ = [
    "assemble",
    "AssemblyError",
    "Pete",
    "Program",
    "PeteISA",
    "ICache",
    "ICacheConfig",
    "CoreStats",
    "HAVE_NUMPY",
    "LaneEngine",
]
