"""Activity counters emitted by the Pete simulator.

These are the per-event quantities the energy model multiplies by
per-event energies (DESIGN.md Section 6): every instruction fetched, every
ROM/RAM access, every cache fill, every stall cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class CoreStats:
    """Counters accumulated over one simulation run."""

    cycles: int = 0
    instructions: int = 0
    # pipeline behaviour
    stall_cycles: int = 0
    load_use_stalls: int = 0
    mult_stall_cycles: int = 0
    branch_mispredicts: int = 0
    branches: int = 0
    mult_issues: int = 0
    div_issues: int = 0
    cop2_issues: int = 0
    # program memory
    rom_word_reads: int = 0
    rom_line_reads: int = 0
    # data memory
    ram_reads: int = 0
    ram_writes: int = 0
    # instruction cache
    icache_accesses: int = 0
    icache_hits: int = 0
    icache_misses: int = 0
    icache_fills: int = 0
    prefetch_hits: int = 0
    prefetch_fetches: int = 0

    def add(self, other: "CoreStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def scaled(self, factor: float) -> dict[str, float]:
        """Counters multiplied by a scalar (for op-count scaling)."""
        return {
            f.name: getattr(self, f.name) * factor for f in fields(self)
        }

    @property
    def active_cycles(self) -> int:
        return self.cycles - self.stall_cycles

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def diff(self, other: "CoreStats") -> dict[str, tuple[int, int]]:
        """Counters that differ from ``other``: name -> (self, other).

        The differential harness (:mod:`repro.pete.diffexec`) uses this
        to name the first diverging quantity instead of dumping two
        whole counter sets.
        """
        return {
            f.name: (getattr(self, f.name), getattr(other, f.name))
            for f in fields(self)
            if getattr(self, f.name) != getattr(other, f.name)
        }
