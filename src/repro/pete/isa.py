"""Pete's instruction set: a MIPS-II subset plus the paper's extensions.

Instructions are encoded into real 32-bit machine words (the assembler
emits them, the CPU decodes them), because the energy model charges one
program-memory word per fetch and the instruction cache operates on the
encoded stream.

Encodings follow MIPS conventions:

* R-type: opcode 0 (SPECIAL) with a ``funct`` field;
* I-type: opcode-selected with a 16-bit immediate;
* J-type: J / JAL with a 26-bit word target;
* the paper's accumulator/carry-less extensions live in SPECIAL2
  (opcode 0x1C), where real MIPS32 also keeps MADDU;
* coprocessor-2 command instructions (for Monte and Billie, Tables 5.3 and
  5.6) live under the COP2 opcode (0x12) with the CO bit set.

Unaligned loads/stores, floating point and MMU instructions are excluded,
exactly as the paper's footnote 1 in Section 5.1 states.
"""

from __future__ import annotations

from dataclasses import dataclass

# --------------------------------------------------------------------------
# Register names
# --------------------------------------------------------------------------

REGISTER_NAMES = (
    "zero at v0 v1 a0 a1 a2 a3 "
    "t0 t1 t2 t3 t4 t5 t6 t7 "
    "s0 s1 s2 s3 s4 s5 s6 s7 "
    "t8 t9 k0 k1 gp sp fp ra"
).split()

REGISTERS: dict[str, int] = {name: i for i, name in enumerate(REGISTER_NAMES)}
REGISTERS.update({f"r{i}": i for i in range(32)})
REGISTERS["s8"] = 30

OPCODE_SPECIAL = 0x00
OPCODE_SPECIAL2 = 0x1C
OPCODE_COP2 = 0x12

# SPECIAL funct codes (MIPS standard)
FUNCT = {
    "sll": 0x00, "srl": 0x02, "sra": 0x03,
    "sllv": 0x04, "srlv": 0x06, "srav": 0x07,
    "jr": 0x08, "jalr": 0x09,
    "syscall": 0x0C, "break": 0x0D,
    "mfhi": 0x10, "mthi": 0x11, "mflo": 0x12, "mtlo": 0x13,
    "mult": 0x18, "multu": 0x19, "div": 0x1A, "divu": 0x1B,
    "add": 0x20, "addu": 0x21, "sub": 0x22, "subu": 0x23,
    "and": 0x24, "or": 0x25, "xor": 0x26, "nor": 0x27,
    "slt": 0x2A, "sltu": 0x2B,
}

# SPECIAL2 funct codes: MADDU is the real MIPS32 encoding; the others are
# the paper's additions.
FUNCT2 = {
    "maddu": 0x01,
    "m2addu": 0x02,   # accumulate 2*rs*rt (squaring optimization)
    "addau": 0x03,    # accumulate (rs << 32) + rt
    "sha": 0x04,      # shift accumulator right one word
    "mulgf2": 0x10,   # carry-less multiply
    "maddgf2": 0x11,  # carry-less multiply-accumulate
}

# I-type opcodes
OPCODES_I = {
    "beq": 0x04, "bne": 0x05, "blez": 0x06, "bgtz": 0x07,
    "addi": 0x08, "addiu": 0x09, "slti": 0x0A, "sltiu": 0x0B,
    "andi": 0x0C, "ori": 0x0D, "xori": 0x0E, "lui": 0x0F,
    "lb": 0x20, "lh": 0x21, "lw": 0x23, "lbu": 0x24, "lhu": 0x25,
    "sb": 0x28, "sh": 0x29, "sw": 0x2B,
}
OPCODE_REGIMM = 0x01  # bltz (rt=0), bgez (rt=1)
OPCODES_J = {"j": 0x02, "jal": 0x03}

# COP2 funct codes (CO bit set).  Shared between Monte (Table 5.3) and
# Billie (Table 5.6); the coprocessor models interpret them.
COP2_FUNCT = {
    "cop2sync": 0x00,
    "cop2lda": 0x01,
    "cop2ldb": 0x02,
    "cop2ldn": 0x03,
    "cop2mul": 0x04,
    "cop2add": 0x05,
    "cop2sub": 0x06,
    "cop2st": 0x07,
    "cop2ld": 0x08,
    "cop2sqr": 0x09,
}
CTC2_RS = 0x06  # standard MTC2-family encoding selector


@dataclass(frozen=True)
class Decoded:
    """A decoded instruction."""

    mnemonic: str
    rs: int = 0
    rt: int = 0
    rd: int = 0
    shamt: int = 0
    imm: int = 0       # sign-extended where applicable
    target: int = 0    # jump word target
    word: int = 0      # raw encoding

    @property
    def is_load(self) -> bool:
        return self.mnemonic in ("lw", "lh", "lhu", "lb", "lbu")

    @property
    def is_store(self) -> bool:
        return self.mnemonic in ("sw", "sh", "sb")

    @property
    def is_branch(self) -> bool:
        return self.mnemonic in (
            "beq", "bne", "blez", "bgtz", "bltz", "bgez",
        )

    @property
    def is_jump(self) -> bool:
        return self.mnemonic in ("j", "jal", "jr", "jalr")


class PeteISA:
    """Encoder/decoder for Pete's instruction set."""

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    @staticmethod
    def encode_r(mnemonic: str, rd: int = 0, rs: int = 0, rt: int = 0,
                 shamt: int = 0) -> int:
        funct = FUNCT[mnemonic]
        return (OPCODE_SPECIAL << 26) | (rs << 21) | (rt << 16) | (
            rd << 11) | (shamt << 6) | funct

    @staticmethod
    def encode_r2(mnemonic: str, rs: int = 0, rt: int = 0) -> int:
        funct = FUNCT2[mnemonic]
        return (OPCODE_SPECIAL2 << 26) | (rs << 21) | (rt << 16) | funct

    @staticmethod
    def encode_i(mnemonic: str, rt: int, rs: int, imm: int) -> int:
        opcode = OPCODES_I[mnemonic]
        return (opcode << 26) | (rs << 21) | (rt << 16) | (imm & 0xFFFF)

    @staticmethod
    def encode_regimm(mnemonic: str, rs: int, imm: int) -> int:
        rt = {"bltz": 0, "bgez": 1}[mnemonic]
        return (OPCODE_REGIMM << 26) | (rs << 21) | (rt << 16) | (imm & 0xFFFF)

    @staticmethod
    def encode_j(mnemonic: str, target: int) -> int:
        return (OPCODES_J[mnemonic] << 26) | (target & 0x3FFFFFF)

    @staticmethod
    def encode_cop2(mnemonic: str, rt: int = 0, rd: int = 0,
                    fs: int = 0, ft: int = 0, fd: int = 0) -> int:
        if mnemonic == "ctc2":
            return (OPCODE_COP2 << 26) | (CTC2_RS << 21) | (rt << 16) | (
                rd << 11)
        funct = COP2_FUNCT[mnemonic]
        # CO bit (25) set; rt in 20:16; fs/ft/fd packed in 15:11 / 10:6 /
        # 25:21-excluded -> use shamt-free layout: fs@11, ft@6, fd@16 when
        # rt is unused (arithmetic ops), else fs@11.
        word = (OPCODE_COP2 << 26) | (1 << 25) | funct
        word |= (rt & 0x1F) << 16
        word |= (fs & 0x1F) << 11
        word |= (ft & 0x1F) << 6
        word |= (fd & 0x0F) << 21  # 4 bits: 16 coprocessor registers
        return word

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    _I_BY_OPCODE = {v: k for k, v in OPCODES_I.items()}
    _J_BY_OPCODE = {v: k for k, v in OPCODES_J.items()}
    _FUNCT_BY_CODE = {v: k for k, v in FUNCT.items()}
    _FUNCT2_BY_CODE = {v: k for k, v in FUNCT2.items()}
    _COP2_BY_CODE = {v: k for k, v in COP2_FUNCT.items()}

    @classmethod
    def decode(cls, word: int) -> Decoded:
        opcode = (word >> 26) & 0x3F
        rs = (word >> 21) & 0x1F
        rt = (word >> 16) & 0x1F
        rd = (word >> 11) & 0x1F
        shamt = (word >> 6) & 0x1F
        funct = word & 0x3F
        imm = word & 0xFFFF
        simm = imm - 0x10000 if imm & 0x8000 else imm

        if opcode == OPCODE_SPECIAL:
            mnemonic = cls._FUNCT_BY_CODE.get(funct)
            if mnemonic is None:
                raise ValueError(f"bad SPECIAL funct 0x{funct:02x}")
            return Decoded(mnemonic, rs, rt, rd, shamt, word=word)
        if opcode == OPCODE_SPECIAL2:
            mnemonic = cls._FUNCT2_BY_CODE.get(funct)
            if mnemonic is None:
                raise ValueError(f"bad SPECIAL2 funct 0x{funct:02x}")
            return Decoded(mnemonic, rs, rt, rd, shamt, word=word)
        if opcode == OPCODE_REGIMM:
            mnemonic = {0: "bltz", 1: "bgez"}.get(rt)
            if mnemonic is None:
                raise ValueError(f"bad REGIMM rt {rt}")
            return Decoded(mnemonic, rs, rt, imm=simm, word=word)
        if opcode in cls._J_BY_OPCODE:
            return Decoded(
                cls._J_BY_OPCODE[opcode], target=word & 0x3FFFFFF, word=word
            )
        if opcode == OPCODE_COP2:
            if word & (1 << 25):
                mnemonic = cls._COP2_BY_CODE.get(funct)
                if mnemonic is None:
                    raise ValueError(f"bad COP2 funct 0x{funct:02x}")
                fd = (word >> 21) & 0x0F  # CO bit excluded
                return Decoded(
                    mnemonic, rs=fd, rt=rt, rd=(word >> 11) & 0x1F,
                    shamt=(word >> 6) & 0x1F, word=word,
                )
            if rs == CTC2_RS:
                return Decoded("ctc2", rt=rt, rd=rd, word=word)
            raise ValueError(f"bad COP2 encoding 0x{word:08x}")
        mnemonic = cls._I_BY_OPCODE.get(opcode)
        if mnemonic is None:
            raise ValueError(f"bad opcode 0x{opcode:02x}")
        if mnemonic in ("andi", "ori", "xori"):
            return Decoded(mnemonic, rs, rt, imm=imm, word=word)
        return Decoded(mnemonic, rs, rt, imm=simm, word=word)
