"""Lane-parallel batched execution of independent Pete instances.

The :class:`LaneEngine` runs N independent copies of one program
lock-step: the architectural state of every instance lives in numpy
arrays with one *lane* per instance (register file ``(32, N)``, RAM
``(N, ram_size)``, per-lane cycle/stat/MulDiv vectors), and straight-
line runs of compilable instructions — the same ``COMPILABLE`` set the
superblock fast path (PR 5) folds — execute as a single vectorized
closure per block, amortizing dispatch across the whole batch.

Control flow is where lanes can disagree.  Branches are evaluated
densely; when every active lane agrees the group follows the common
target (including per-lane 2-bit BTFN predictor updates, folded with
``np.where``).  When lanes *diverge* — different branch outcomes, or
``jr`` targets that differ — the majority keeps vector execution and
the minority is **demoted**: its lane state is copied into a scalar
reference :class:`~repro.pete.cpu.Pete` bridge which single-steps until
its pc re-converges with the group, at which point the lane **rejoins**
the arrays bit-identically.  A lane that halts while demoted keeps its
bridge as the source of truth; a group halt freezes the arrays.  The
only masked dense operation is the RAM store (loads gather garbage for
inactive lanes harmlessly; stores must not clobber demoted/halted
lanes' memory).

The engine is intentionally restricted to the configurations the
kernel harness actually builds: no i-cache, no coprocessor, no tracer.
Everything else — MulDiv latencies and the 96-bit accumulator ops,
load-use interlocks, branch/jr stalls, architectural delay slots —
matches the reference interpreter cycle-for-cycle and bit-for-bit,
which ``repro.pete.diffexec --lanes`` gates per lane at every unit
boundary.

numpy is an optional dependency: import of this module always
succeeds; constructing an engine without numpy raises a clear error
(see :func:`require_numpy` / :data:`HAVE_NUMPY`).
"""

from __future__ import annotations

from typing import Callable, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is an optional dep
    np = None  # type: ignore[assignment]

from repro import obs
from repro.pete.cpu import Pete, _sources
from repro.pete.fastpath import (
    COMPILABLE,
    MAX_BLOCK_LEN,
    _DIV_ISSUE,
    _MULDIV,
    _MULT_ISSUE,
)
from repro.pete.isa import Decoded, PeteISA
from repro.pete.memory import RAM_BASE
from repro.pete.muldiv import (
    ACC_ADD_LATENCY,
    DIV_LATENCY,
    MASK32,
    MULT_LATENCY,
)
from repro.pete.stats import CoreStats

HAVE_NUMPY = np is not None

#: Reference-stepped instructions per demoted lane per engine unit.
#: Small enough that diffexec's per-unit boundary check stays fine
#: grained; large enough that a long divergent excursion is not
#: dominated by rejoin polling.
FALLBACK_BURST = 64

_STAT_FIELDS = tuple(CoreStats().as_dict().keys())

_LANE_CODE_CACHE: dict[tuple, Callable] = {}
_LANE_CODE_CACHE_MAX = 4096

#: Cross-engine counters in the same style as ``fastpath.RUNTIME_STATS``;
#: mirrored into the telemetry plane when a collector is active.
RUNTIME_STATS: dict[str, int] = {
    "lane_engines": 0,
    "lane_runs": 0,
    "lane_lanes": 0,
    "lane_vector_blocks": 0,
    "lane_blocks_compiled": 0,
    "lane_code_cache_hits": 0,
    "lane_divergences": 0,
    "lane_demotions": 0,
    "lane_rejoins": 0,
    "lane_fallback_instructions": 0,
}


def runtime_stats_snapshot() -> dict[str, int]:
    """A point-in-time copy (for before/after deltas around a run)."""
    return dict(RUNTIME_STATS)


def require_numpy() -> None:
    if np is None:
        raise RuntimeError(
            "repro.pete.lanes requires numpy; install it or use the "
            "scalar fast path (repro.pete.fastpath) instead"
        )


# ---------------------------------------------------------------------------
# Lane block compiler
# ---------------------------------------------------------------------------

_BRANCHES = frozenset(("beq", "bne", "blez", "bgtz", "bltz", "bgez"))


class _LaneCompiler:
    """Compile a straight-line run of COMPILABLE instructions into one
    vectorized closure ``fn(eng)`` operating on dense lane arrays.

    Mirrors ``fastpath._BlockCompiler`` semantics exactly — static
    cycle/stall/fetch folding, dynamic entry load-use and MulDiv waits
    — but every register is a row of ``eng.regs`` and every stat a
    per-lane vector.  All writes are dense (inactive lanes hold
    garbage, see module docstring); memory traffic goes through the
    engine's masked helpers.
    """

    def __init__(self, decs: Sequence[Decoded], entry_pc: int) -> None:
        self.decs = list(decs)
        self.entry_pc = entry_pc
        self.body: list[str] = []
        self.ns: dict[str, object] = {"np": np}
        self.pending = 0          # statically folded cycles not yet flushed
        self.static_stall = 0
        self.static_luse = 0
        self.mult_issues = 0
        self.div_issues = 0
        self.used_u: set[int] = set()
        self.used_s: set[int] = set()
        self.uses_stall = False   # emitted dynamic stall updates
        self.uses_luse = False
        self.uses_muldiv = False

    # -- emission helpers --------------------------------------------------

    def emit(self, line: str) -> None:
        self.body.append("    " + line)

    def const(self, value: int) -> str:
        name = f"_k{value & MASK32:08x}"
        if name not in self.ns:
            self.ns[name] = np.uint32(value & MASK32)
        return name

    def u(self, reg: int) -> str:
        self.used_u.add(reg)
        return f"r{reg}"

    def s(self, reg: int) -> str:
        self.used_s.add(reg)
        return f"s{reg}"

    def flush(self) -> None:
        if self.pending:
            self.emit(f"np.add(cyc, {self.pending}, out=cyc)")
            self.pending = 0

    def addr(self, d: Decoded) -> str:
        if d.imm:
            return f"({self.u(d.rs)} + {self.const(d.imm)})"
        return self.u(d.rs)

    def wait_muldiv(self) -> None:
        """Stall until the MulDiv unit drains (dynamic, per lane)."""
        self.uses_muldiv = True
        self.uses_stall = True
        self.flush()
        self.emit("_w = np.maximum(_mdb - cyc, 0)")
        self.emit("np.add(cyc, _w, out=cyc)")
        self.emit("np.add(_sst, _w, out=_sst)")
        self.emit("np.add(_sms, _w, out=_sms)")

    # -- per-instruction codegen ------------------------------------------

    def gen(self, d: Decoded) -> None:  # noqa: C901 - mirrors the ISA
        m = d.mnemonic
        e, u, s, K = self.emit, self.u, self.s, self.const
        if m in ("addu", "add"):
            if d.rd:
                e(f"np.add({u(d.rs)}, {u(d.rt)}, out={u(d.rd)})")
        elif m in ("addiu", "addi"):
            if d.rt:
                if d.imm:
                    e(f"np.add({u(d.rs)}, {K(d.imm)}, out={u(d.rt)})")
                else:
                    e(f"np.copyto({u(d.rt)}, {u(d.rs)})")
        elif m == "lw":
            e(f"_v = eng._lw({self.addr(d)})")
            if d.rt:
                e(f"{u(d.rt)}[:] = _v")
        elif m == "sw":
            e(f"eng._sw({self.addr(d)}, {u(d.rt)})")
        elif m in ("subu", "sub"):
            if d.rd:
                e(f"np.subtract({u(d.rs)}, {u(d.rt)}, out={u(d.rd)})")
        elif m == "and":
            if d.rd:
                e(f"np.bitwise_and({u(d.rs)}, {u(d.rt)}, out={u(d.rd)})")
        elif m == "or":
            if d.rd:
                e(f"np.bitwise_or({u(d.rs)}, {u(d.rt)}, out={u(d.rd)})")
        elif m == "xor":
            if d.rd:
                e(f"np.bitwise_xor({u(d.rs)}, {u(d.rt)}, out={u(d.rd)})")
        elif m == "nor":
            if d.rd:
                e(f"np.bitwise_or({u(d.rs)}, {u(d.rt)}, out={u(d.rd)})")
                e(f"np.invert({u(d.rd)}, out={u(d.rd)})")
        elif m == "slt":
            if d.rd:
                e(f"{u(d.rd)}[:] = {s(d.rs)} < {s(d.rt)}")
        elif m == "sltu":
            if d.rd:
                e(f"{u(d.rd)}[:] = {u(d.rs)} < {u(d.rt)}")
        elif m == "slti":
            if d.rt:
                e(f"{u(d.rt)}[:] = {s(d.rs)} < {d.imm}")
        elif m == "sltiu":
            if d.rt:
                e(f"{u(d.rt)}[:] = {u(d.rs)} < {K(d.imm)}")
        elif m == "andi":
            if d.rt:
                e(f"np.bitwise_and({u(d.rs)}, {K(d.imm)}, out={u(d.rt)})")
        elif m == "ori":
            if d.rt:
                if d.imm:
                    e(f"np.bitwise_or({u(d.rs)}, {K(d.imm)}, out={u(d.rt)})")
                else:
                    e(f"np.copyto({u(d.rt)}, {u(d.rs)})")
        elif m == "xori":
            if d.rt:
                e(f"np.bitwise_xor({u(d.rs)}, {K(d.imm)}, out={u(d.rt)})")
        elif m == "lui":
            if d.rt:
                e(f"{u(d.rt)}[:] = {K(d.imm << 16)}")
        elif m == "sll":
            if d.rd:
                if d.shamt:
                    e(f"np.left_shift({u(d.rt)}, {d.shamt}, out={u(d.rd)})")
                else:
                    e(f"np.copyto({u(d.rd)}, {u(d.rt)})")
        elif m == "srl":
            if d.rd:
                if d.shamt:
                    e(f"np.right_shift({u(d.rt)}, {d.shamt}, out={u(d.rd)})")
                else:
                    e(f"np.copyto({u(d.rd)}, {u(d.rt)})")
        elif m == "sra":
            if d.rd:
                if d.shamt:
                    e(f"np.right_shift({s(d.rt)}, {d.shamt}, out={s(d.rd)})")
                else:
                    e(f"np.copyto({u(d.rd)}, {u(d.rt)})")
        elif m == "sllv":
            if d.rd:
                e(f"_sh = np.bitwise_and({u(d.rs)}, 31)")
                e(f"np.left_shift({u(d.rt)}, _sh, out={u(d.rd)})")
        elif m == "srlv":
            if d.rd:
                e(f"_sh = np.bitwise_and({u(d.rs)}, 31)")
                e(f"np.right_shift({u(d.rt)}, _sh, out={u(d.rd)})")
        elif m == "srav":
            if d.rd:
                e(f"_sh = np.bitwise_and({u(d.rs)}, 31).astype(np.int32)")
                e(f"np.right_shift({s(d.rt)}, _sh, out={s(d.rd)})")
        elif m in ("lh", "lhu"):
            e(f"_v = eng._lh({self.addr(d)}, {m == 'lh'})")
            if d.rt:
                e(f"{u(d.rt)}[:] = _v")
        elif m in ("lb", "lbu"):
            e(f"_v = eng._lb({self.addr(d)}, {m == 'lb'})")
            if d.rt:
                e(f"{u(d.rt)}[:] = _v")
        elif m == "sh":
            e(f"eng._sh2({self.addr(d)}, {u(d.rt)})")
        elif m == "sb":
            e(f"eng._sb({self.addr(d)}, {u(d.rt)})")
        elif m == "syscall":
            pass
        elif m in _MULDIV:
            self.wait_muldiv()
            if m == "mult":
                e(f"eng._mult_s(cyc, {s(d.rs)}, {s(d.rt)})")
            elif m == "multu":
                e(f"eng._mult_u(cyc, {u(d.rs)}, {u(d.rt)})")
            elif m == "div":
                e(f"eng._div(cyc, {s(d.rs)}, {s(d.rt)}, True)")
            elif m == "divu":
                e(f"eng._div(cyc, {u(d.rs)}, {u(d.rt)}, False)")
            elif m == "mflo":
                if d.rd:
                    e(f"{u(d.rd)}[:] = eng.md_lo")
            elif m == "mfhi":
                if d.rd:
                    e(f"{u(d.rd)}[:] = eng.md_lo >> _u64x32")
                    self.ns["_u64x32"] = np.uint64(32)
            elif m == "mtlo":
                e(f"eng._set_lo({u(d.rs)})")
            elif m == "mthi":
                e(f"eng._set_hi({u(d.rs)})")
            elif m == "maddu":
                e(f"eng._maddu(cyc, {u(d.rs)}, {u(d.rt)})")
            elif m == "m2addu":
                e(f"eng._m2addu(cyc, {u(d.rs)}, {u(d.rt)})")
            elif m == "addau":
                e(f"eng._addau(cyc, {u(d.rs)}, {u(d.rt)})")
            elif m == "sha":
                e("eng._sha(cyc)")
            elif m == "mulgf2":
                e(f"eng._mulgf2(cyc, {u(d.rs)}, {u(d.rt)})")
            elif m == "maddgf2":
                e(f"eng._maddgf2(cyc, {u(d.rs)}, {u(d.rt)})")
            else:  # pragma: no cover - _MULDIV is closed
                raise ValueError(f"unhandled muldiv op {m!r}")
            if m in _MULT_ISSUE:
                self.mult_issues += 1
            elif m in _DIV_ISSUE:
                self.div_issues += 1
        else:  # pragma: no cover - COMPILABLE is closed
            raise ValueError(f"lane compiler cannot handle {m!r}")

    # -- whole-block assembly ---------------------------------------------

    def source(self) -> str:
        decs = self.decs
        n = len(decs)

        # Entry load-use hazard: dynamic, depends on the latch left by
        # the previous unit.  Interior hazards are static.
        srcs = tuple(r for r in _sources(decs[0]) if r)
        if srcs:
            self.uses_stall = True
            self.uses_luse = True
            expr = " | ".join(f"(_llr == {r})" for r in sorted(srcs))
            self.emit(f"_m = {expr}")
            self.emit("np.add(cyc, _m, out=cyc)")
            self.emit("np.add(_sst, _m, out=_sst)")
            self.emit("np.add(_sls, _m, out=_sls)")

        prev_load: int | None = None
        for d in decs:
            if prev_load is not None and prev_load in _sources(d):
                self.pending += 1
                self.static_stall += 1
                self.static_luse += 1
            self.gen(d)
            self.pending += 1
            prev_load = d.rt if (d.is_load and d.rt) else None

        self.flush()
        st = []
        st.append("    np.copyto(_scy, cyc)")
        st.append(f"    np.add(_sin, {n}, out=_sin)")
        if self.static_stall:
            st.append(
                f"    np.add(_sst, {self.static_stall}, out=_sst)"
            )
            self.uses_stall = True
        if self.static_luse:
            st.append(f"    np.add(_sls, {self.static_luse}, out=_sls)")
            self.uses_luse = True
        if self.mult_issues:
            st.append(f"    np.add(_smi, {self.mult_issues}, out=_smi)")
        if self.div_issues:
            st.append(f"    np.add(_sdi, {self.div_issues}, out=_sdi)")
        st.append(f"    np.add(_srw, {n}, out=_srw)")
        if prev_load is not None:
            st.append(f"    eng.llr.fill({prev_load})")
        else:
            st.append("    eng.llr.fill(-1)")
        st.append(f"    eng.pc = {self.entry_pc + 4 * n:#x}")

        binds = [
            "    regs = eng.regs",
            "    cyc = eng.cycle",
            "    _scy = eng.stats['cycles']",
            "    _sin = eng.stats['instructions']",
            "    _srw = eng.stats['rom_word_reads']",
        ]
        if self.used_s:
            binds.append("    regs32 = eng.regs_i32")
        if self.uses_stall:
            binds.append("    _sst = eng.stats['stall_cycles']")
        if self.uses_luse:
            binds.append("    _sls = eng.stats['load_use_stalls']")
        if self.uses_muldiv:
            binds.append("    _sms = eng.stats['mult_stall_cycles']")
            binds.append("    _mdb = eng.md_busy")
        if self.mult_issues:
            binds.append("    _smi = eng.stats['mult_issues']")
        if self.div_issues:
            binds.append("    _sdi = eng.stats['div_issues']")
        if srcs:
            binds.append("    _llr = eng.llr")
        for r in sorted(self.used_u):
            binds.append(f"    r{r} = regs[{r}]")
        for r in sorted(self.used_s):
            binds.append(f"    s{r} = regs32[{r}]")

        lines = [f"def __lane_block(eng):  # 0x{self.entry_pc:06x}"]
        lines.extend(binds)
        lines.extend(self.body)
        lines.extend(st)
        return "\n".join(lines) + "\n"


def compile_lane_block(decs: Sequence[Decoded], entry_pc: int) -> Callable:
    """Compile ``decs`` (all COMPILABLE) into a dense lane closure."""
    comp = _LaneCompiler(decs, entry_pc)
    src = comp.source()
    namespace = dict(comp.ns)
    exec(compile(src, f"<lane-block@0x{entry_pc:06x}>", "exec"), namespace)
    fn = namespace["__lane_block"]
    fn.__lane_source__ = src
    fn.__lane_len__ = len(decs)
    return fn


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


class LaneEngine:
    """Lock-step batched execution of N identical-program Pete cores.

    Construct from prepared reference cores (same ROM, per-lane RAM and
    registers), then :meth:`run` to completion or :meth:`step_unit` for
    lock-step differential checking.  Per-lane state is read back
    through the ``lane_*`` accessors, which transparently route to the
    scalar bridge for demoted or bridge-halted lanes.
    """

    def __init__(self, cores: Sequence[Pete]) -> None:
        require_numpy()
        if not cores:
            raise ValueError("LaneEngine needs at least one core")
        base = cores[0]
        rom = bytes(base.mem.rom)
        for c in cores:
            if c.icache is not None:
                raise ValueError("LaneEngine does not support an i-cache")
            if c.coprocessor is not None:
                raise ValueError("LaneEngine does not support a coprocessor")
            if c.tracer is not None or c.trace_enabled:
                raise ValueError("LaneEngine does not support tracing")
            if (c.muldiv.extensions != base.muldiv.extensions
                    or c.muldiv.binary_extensions
                    != base.muldiv.binary_extensions):
                raise ValueError("lanes must share MulDiv extensions")
            if len(c.mem.ram) != len(base.mem.ram):
                raise ValueError("lanes must share the RAM size")
            if bytes(c.mem.rom) != rom:
                raise ValueError("lanes must share one ROM image")

        n = len(cores)
        self.n = n
        self._ext = base.muldiv.extensions
        self._bext = base.muldiv.binary_extensions
        self.program = base.program

        self._rom_ba = bytearray(rom)
        self._rom32 = np.frombuffer(self._rom_ba, dtype="<u4")
        self._rom_size = len(self._rom_ba)
        self._ram_size = len(base.mem.ram)
        self._ram_limit = RAM_BASE + self._ram_size

        self.regs = np.zeros((32, n), dtype=np.uint32)
        self.regs_i32 = self.regs.view(np.int32)
        self.ram = np.zeros((n, self._ram_size), dtype=np.uint8)
        self.ram16 = self.ram.view("<u2")
        self.ram32 = self.ram.view("<u4")
        self.cycle = np.zeros(n, dtype=np.int64)
        self.stats = {f: np.zeros(n, dtype=np.int64) for f in _STAT_FIELDS}
        self.md_lo = np.zeros(n, dtype=np.uint64)
        self.md_hi = np.zeros(n, dtype=np.uint64)
        self.md_busy = np.zeros(n, dtype=np.int64)
        self.md_issues = np.zeros(n, dtype=np.int64)
        self.llr = np.full(n, -1, dtype=np.int64)
        self._predictors: dict[int, np.ndarray] = {}
        self._rows = np.arange(n, dtype=np.intp)

        for i, c in enumerate(cores):
            self.regs[:, i] = c.regs
            self.ram[i] = np.frombuffer(c.mem.ram, dtype=np.uint8)
            self.cycle[i] = c.cycle
            stats = c.stats.as_dict()
            for f in _STAT_FIELDS:
                self.stats[f][i] = stats[f]
            acc = c.muldiv.acc
            self.md_lo[i] = acc & 0xFFFFFFFFFFFFFFFF
            self.md_hi[i] = acc >> 64
            self.md_busy[i] = c.muldiv.busy_until
            self.md_issues[i] = c.muldiv.issues
            llr = c._last_load_reg
            self.llr[i] = -1 if llr is None else llr
            for p, state in c._predictor.items():
                self._pred_arr(p)[i] = state

        self.pc = base.pc
        self._decoded: dict[int, Decoded] = {}
        self._blocks: dict[int, tuple] = {}
        self._slot_fns: dict[int, Callable] = {}
        self._demoted: dict[int, Pete] = {}
        self._halted_bridges: dict[int, Pete] = {}
        self._max_cycles = 50_000_000
        self._bridge_pool: dict[int, Pete] = {}
        self._done = np.zeros(n, dtype=bool)
        self._done_pc: dict[int, int] = {}
        self._n_done = 0
        self._act = np.arange(n, dtype=np.intp)
        self._sel: np.ndarray | None = None

        self.divergences = 0
        self.demotions = 0
        self.rejoins = 0
        self.vector_blocks = 0
        self.fallback_instructions = 0

        RUNTIME_STATS["lane_engines"] += 1
        RUNTIME_STATS["lane_lanes"] += n

    # -- lifecycle ---------------------------------------------------------

    def begin(self, entry: int) -> None:
        """Point every lane at ``entry`` (mirrors ``Pete.begin``)."""
        self.pc = entry
        self.regs[29, :] = np.uint32(RAM_BASE + self._ram_size - 16)
        self.llr.fill(-1)

    def run(self, entry: int | None = None,
            max_cycles: int = 50_000_000) -> "LaneEngine":
        """Run every lane to its ``break`` (or raise on ``max_cycles``)."""
        if entry is not None:
            self.begin(entry)
        self._max_cycles = max_cycles
        RUNTIME_STATS["lane_runs"] += 1
        units = 0
        with obs.span("lanes.run", lanes=str(self.n)):
            while self.step_unit():
                units += 1
                if (units & 63) == 0 and self._max_cycle() > max_cycles:
                    raise RuntimeError(
                        f"lane run exceeded {max_cycles} cycles"
                    )
        tel = obs.get()
        if tel is not None:
            tel.counter("lanes_runs").inc()
            tel.counter("lanes_total").inc(self.n)
            for name, value in (
                ("lane_divergences", self.divergences),
                ("lane_demotions", self.demotions),
                ("lane_rejoins", self.rejoins),
                ("lane_fallback_instructions", self.fallback_instructions),
            ):
                if value:
                    tel.counter(name).inc(value)
        return self

    def step_unit(self) -> bool:
        """Advance one engine unit: every demoted bridge gets a burst of
        reference steps (rejoining on pc re-convergence), then the
        vector group executes one block or one control instruction.
        Returns False once every lane has halted."""
        if self._demoted:
            self._advance_demoted()
        if self._act.size:
            entry = self._blocks.get(self.pc)
            if entry is None:
                entry = self._compile_at(self.pc)
                self._blocks[self.pc] = entry
            kind, payload = entry
            if kind == "blk":
                payload(self)
                self.vector_blocks += 1
                RUNTIME_STATS["lane_vector_blocks"] += 1
            else:
                self._step_control(payload)
        return self._n_done < self.n

    def _max_cycle(self) -> int:
        worst = 0
        if self._act.size:
            worst = int(self.cycle[self._act].max())
        for b in self._demoted.values():
            worst = max(worst, b.cycle)
        return worst

    # -- decode / block discovery -----------------------------------------

    def _decode(self, pc: int) -> Decoded:
        d = self._decoded.get(pc)
        if d is None:
            if pc < 0 or pc + 4 > self._rom_size:
                raise MemoryError(f"fetch from unmapped pc 0x{pc:08x}")
            word = int.from_bytes(self._rom_ba[pc:pc + 4], "little")
            d = PeteISA.decode(word)
            self._decoded[pc] = d
        return d

    def _compile_at(self, pc: int) -> tuple:
        decs: list[Decoded] = []
        words: list[int] = []
        at = pc
        while len(decs) < MAX_BLOCK_LEN:
            try:
                d = self._decode(at)
            except (ValueError, MemoryError):
                break
            if d.mnemonic not in COMPILABLE:
                break
            decs.append(d)
            words.append(d.word)
            at += 4
        if decs:
            key = (pc, tuple(words))
            fn = _LANE_CODE_CACHE.get(key)
            if fn is None:
                if len(_LANE_CODE_CACHE) >= _LANE_CODE_CACHE_MAX:
                    _LANE_CODE_CACHE.clear()
                fn = compile_lane_block(decs, pc)
                _LANE_CODE_CACHE[key] = fn
                RUNTIME_STATS["lane_blocks_compiled"] += 1
            else:
                RUNTIME_STATS["lane_code_cache_hits"] += 1
            return ("blk", fn)
        return ("ctl", self._decode(pc))

    # -- control step ------------------------------------------------------

    def _pred_arr(self, pc: int) -> "np.ndarray":
        arr = self._predictors.get(pc)
        if arr is None:
            arr = self._predictors[pc] = np.full(self.n, -1, dtype=np.int8)
        return arr

    def _exec_slot(self, addr: int) -> None:
        """Execute the (compilable) delay-slot instruction densely.

        The closure's trailing ``eng.pc`` write is overwritten by the
        caller with the jump/branch target."""
        fn = self._slot_fns.get(addr)
        if fn is None:
            d = self._decode(addr)
            if d.mnemonic not in COMPILABLE:
                raise RuntimeError(
                    f"unsupported delay-slot instruction {d.mnemonic!r} "
                    f"at 0x{addr:06x}"
                )
            key = (addr, (d.word,))
            fn = _LANE_CODE_CACHE.get(key)
            if fn is None:
                if len(_LANE_CODE_CACHE) >= _LANE_CODE_CACHE_MAX:
                    _LANE_CODE_CACHE.clear()
                fn = compile_lane_block([d], addr)
                _LANE_CODE_CACHE[key] = fn
                RUNTIME_STATS["lane_blocks_compiled"] += 1
            self._slot_fns[addr] = fn
        fn(self)

    def _step_control(self, d: Decoded) -> None:  # noqa: C901
        pc = self.pc
        m = d.mnemonic
        st = self.stats
        cyc = self.cycle
        np.add(st["rom_word_reads"], 1, out=st["rom_word_reads"])
        np.add(st["instructions"], 1, out=st["instructions"])

        if m == "break":
            # Mirrors Halt raised inside dispatch: no latch update, no
            # trailing cycle, stats.cycles left stale, pc unchanged.
            lanes = [int(x) for x in self._act]
            for lane in lanes:
                self._done[lane] = True
                self._done_pc[lane] = pc
            self._n_done += len(lanes)
            self._set_active([])
            return

        srcs = tuple(r for r in _sources(d) if r)
        if srcs:
            hazard = self.llr == srcs[0]
            for r in srcs[1:]:
                np.logical_or(hazard, self.llr == r, out=hazard)
            np.add(cyc, hazard, out=cyc)
            np.add(st["stall_cycles"], hazard, out=st["stall_cycles"])
            np.add(st["load_use_stalls"], hazard,
                   out=st["load_use_stalls"])

        if m in _BRANCHES:
            self._step_branch(d)
            return

        if m in ("j", "jal"):
            if m == "jal":
                self.regs[31, :] = np.uint32((pc + 8) & MASK32)
            np.add(cyc, 1, out=cyc)
            np.copyto(st["cycles"], cyc)
            self.llr.fill(-1)
            self._exec_slot(pc + 4)
            self.pc = (pc & 0xF0000000) | (d.target << 2)
            return

        if m in ("jr", "jalr"):
            if m == "jalr" and d.rd:
                self.regs[d.rd, :] = np.uint32((pc + 8) & MASK32)
            targets = self.regs[d.rs].copy()
            # jr target stall (+1) plus the instruction's own cycle.
            np.add(cyc, 2, out=cyc)
            np.add(st["stall_cycles"], 1, out=st["stall_cycles"])
            np.copyto(st["cycles"], cyc)
            self.llr.fill(-1)
            self._exec_slot(pc + 4)
            self._retarget(targets)
            return

        raise RuntimeError(
            f"lane engine cannot execute {m!r} at 0x{pc:06x} "
            "(no coprocessor attached)"
        )

    def _step_branch(self, d: Decoded) -> None:
        pc = self.pc
        m = d.mnemonic
        st = self.stats
        cyc = self.cycle
        regs = self.regs
        if m == "beq":
            taken = regs[d.rs] == regs[d.rt]
        elif m == "bne":
            taken = regs[d.rs] != regs[d.rt]
        elif m == "blez":
            taken = self.regs_i32[d.rs] <= 0
        elif m == "bgtz":
            taken = self.regs_i32[d.rs] > 0
        elif m == "bltz":
            taken = self.regs_i32[d.rs] < 0
        else:  # bgez
            taken = self.regs_i32[d.rs] >= 0

        np.add(st["branches"], 1, out=st["branches"])
        arr = self._pred_arr(pc)
        init = np.int8(2 if d.imm < 0 else 1)
        state = np.where(arr < 0, init, arr)
        miss = (state >= 2) != taken
        np.add(cyc, miss, out=cyc)
        np.add(st["stall_cycles"], miss, out=st["stall_cycles"])
        np.add(st["branch_mispredicts"], miss,
               out=st["branch_mispredicts"])
        arr[:] = np.where(taken, np.minimum(state + 1, 3),
                          np.maximum(state - 1, 0))

        np.add(cyc, 1, out=cyc)
        np.copyto(st["cycles"], cyc)
        self.llr.fill(-1)

        sel = self._act
        taken_act = taken[sel]
        if not taken_act.any():
            # Group falls through; the delay slot is just the next unit
            # (it may even head a longer superblock).
            self.pc = pc + 4
            return

        target = (pc + 4 + 4 * d.imm) & MASK32
        self._exec_slot(pc + 4)
        if taken_act.all():
            self.pc = target
            return

        # Divergent branch: the majority keeps the vector group.
        n_taken = int(taken_act.sum())
        taken_wins = n_taken * 2 >= taken_act.size
        stay = sel[taken_act] if taken_wins else sel[~taken_act]
        leave = sel[~taken_act] if taken_wins else sel[taken_act]
        leave_pc = (pc + 8) if taken_wins else target
        self.divergences += 1
        RUNTIME_STATS["lane_divergences"] += 1
        for lane in leave:
            self._demote(int(lane), leave_pc)
        self._set_active([int(x) for x in stay])
        self.pc = target if taken_wins else pc + 8

    def _retarget(self, targets: "np.ndarray") -> None:
        """Steer the group after a jr/jalr: uniform target keeps the
        whole group; otherwise the most common target stays vector and
        the rest demote to bridges."""
        sel = self._act
        act_targets = targets[sel]
        values, counts = np.unique(act_targets, return_counts=True)
        if values.size == 1:
            self.pc = int(values[0])
            return
        self.divergences += 1
        RUNTIME_STATS["lane_divergences"] += 1
        win = values[int(counts.argmax())]
        stay = [int(x) for x in sel[act_targets == win]]
        for lane in sel[act_targets != win]:
            self._demote(int(lane), int(targets[int(lane)]))
        self._set_active(stay)
        self.pc = int(win)

    # -- demotion / rejoin -------------------------------------------------

    def _set_active(self, ids: Sequence[int]) -> None:
        self._act = np.array(sorted(ids), dtype=np.intp)
        self._sel = None if len(ids) == self.n else self._act

    def _new_bridge(self) -> Pete:
        b = Pete(extensions=self._ext, binary_extensions=self._bext)
        if len(b.mem.ram) != self._ram_size:
            raise RuntimeError("bridge RAM size mismatch")
        b.mem.rom = self._rom_ba  # shared: ROM is read-only at runtime
        b._decoded = self._decoded
        b.program = self.program
        return b

    def _demote(self, lane: int, pc: int) -> None:
        """Copy one lane out of the arrays into a scalar bridge core."""
        b = self._bridge_pool.get(lane)
        if b is None:
            b = self._bridge_pool[lane] = self._new_bridge()
        b.pc = pc
        b.cycle = int(self.cycle[lane])
        b.regs[:] = [int(x) for x in self.regs[:, lane]]
        stats = b.stats
        for f in _STAT_FIELDS:
            setattr(stats, f, int(self.stats[f][lane]))
        b.muldiv.acc = (int(self.md_lo[lane])
                        | (int(self.md_hi[lane]) << 64))
        b.muldiv.busy_until = int(self.md_busy[lane])
        b.muldiv.issues = int(self.md_issues[lane])
        llr = int(self.llr[lane])
        b._last_load_reg = llr if llr >= 0 else None
        b._predictor = {
            p: int(arr[lane])
            for p, arr in self._predictors.items() if arr[lane] >= 0
        }
        b._pending_target = None
        b._delay_target = None
        b._in_delay_slot = False
        b.mem.ram[:] = self.ram[lane].tobytes()
        self._demoted[lane] = b
        self.demotions += 1
        RUNTIME_STATS["lane_demotions"] += 1

    def _rejoin(self, lane: int, b: Pete) -> None:
        """Copy a re-converged bridge back into the dense arrays."""
        self.regs[:, lane] = b.regs
        self.cycle[lane] = b.cycle
        stats = b.stats.as_dict()
        for f in _STAT_FIELDS:
            self.stats[f][lane] = stats[f]
        acc = b.muldiv.acc
        self.md_lo[lane] = acc & 0xFFFFFFFFFFFFFFFF
        self.md_hi[lane] = acc >> 64
        self.md_busy[lane] = b.muldiv.busy_until
        self.md_issues[lane] = b.muldiv.issues
        llr = b._last_load_reg
        self.llr[lane] = -1 if llr is None else llr
        for p in set(self._predictors) | set(b._predictor):
            self._pred_arr(p)[lane] = b._predictor.get(p, -1)
        self.ram[lane] = np.frombuffer(b.mem.ram, dtype=np.uint8)
        del self._demoted[lane]
        self._set_active([int(x) for x in self._act] + [lane])
        self.rejoins += 1
        RUNTIME_STATS["lane_rejoins"] += 1

    def _finalize_bridge(self, lane: int, b: Pete) -> None:
        """A lane halted while demoted: the bridge stays the source of
        truth (the dense arrays would be clobbered by the still-running
        group); only the RAM row is synced for dense readers."""
        self._done[lane] = True
        self._done_pc[lane] = b.pc
        self._n_done += 1
        self._halted_bridges[lane] = b
        del self._demoted[lane]
        self.ram[lane] = np.frombuffer(b.mem.ram, dtype=np.uint8)

    def _advance_demoted(self) -> None:
        group_pc = self.pc if self._act.size else None
        stepped = 0
        if group_pc is None:
            # the vector group is gone, so no bridge can ever rejoin:
            # drain each one to its halt on the superblock fast path
            # (bit-identical to reference stepping, PR 5) instead of
            # burst-stepping the interpreter
            for lane in list(self._demoted):
                b = self._demoted[lane]
                before = b.stats.instructions
                b._run_fast(self._max_cycles)
                stepped += b.stats.instructions - before
                self._finalize_bridge(lane, b)
        for lane in list(self._demoted):
            b = self._demoted[lane]
            if b.fastpath is None:
                from repro.pete.fastpath import Fastpath

                b.fastpath = Fastpath(b)
            before = b.stats.instructions
            while b.stats.instructions - before < FALLBACK_BURST:
                if b.pc == group_pc and not b._in_delay_slot:
                    self._rejoin(lane, b)
                    break
                # advance a whole superblock when one starts here (the
                # rejoin pc is always a block or control boundary, so
                # block-granular stepping cannot skip past it)
                if not b._in_delay_slot:
                    block = b.fastpath.lookup(b.pc)
                    if block is not None:
                        block(b)
                        continue
                if not b.step_instruction():
                    self._finalize_bridge(lane, b)
                    break
            stepped += b.stats.instructions - before
        if stepped:
            self.fallback_instructions += stepped
            RUNTIME_STATS["lane_fallback_instructions"] += stepped

    # -- masked memory helpers --------------------------------------------

    def _active_view(self, addr: "np.ndarray") -> "np.ndarray":
        sel = self._sel
        return addr if sel is None else addr[sel]

    def _lw(self, addr):
        a = self._active_view(addr)
        a0 = int(a[0])
        st = self.stats
        if bool((a == a0).all()):
            if a0 & 3:
                raise MemoryError(f"unaligned 4-byte access at 0x{a0:08x}")
            if RAM_BASE <= a0 <= self._ram_limit - 4:
                np.add(st["ram_reads"], 1, out=st["ram_reads"])
                return self.ram32[:, (a0 - RAM_BASE) >> 2]
            if a0 <= self._rom_size - 4:
                np.add(st["rom_word_reads"], 1, out=st["rom_word_reads"])
                return int.from_bytes(self._rom_ba[a0:a0 + 4], "little")
            raise MemoryError(f"unmapped address 0x{a0:08x}")
        if bool((a & 3).any()):
            raise MemoryError("unaligned 4-byte lane access")
        off = addr.astype(np.int64)
        if bool(((a >= RAM_BASE) & (a <= self._ram_limit - 4)).all()):
            np.add(st["ram_reads"], 1, out=st["ram_reads"])
            np.subtract(off, RAM_BASE, out=off)
            np.clip(off, 0, self._ram_size - 4, out=off)
            return self.ram32[self._rows, off >> 2]
        if bool((a <= self._rom_size - 4).all()):
            np.add(st["rom_word_reads"], 1, out=st["rom_word_reads"])
            np.clip(off, 0, self._rom_size - 4, out=off)
            return self._rom32[off >> 2]
        raise MemoryError("lane load spans memory regions")

    def _lh(self, addr, signed: bool):
        a = self._active_view(addr)
        a0 = int(a[0])
        st = self.stats
        if bool((a == a0).all()):
            if a0 & 1:
                raise MemoryError(f"unaligned 2-byte access at 0x{a0:08x}")
            if RAM_BASE <= a0 <= self._ram_limit - 2:
                np.add(st["ram_reads"], 1, out=st["ram_reads"])
                v = self.ram16[:, (a0 - RAM_BASE) >> 1]
            elif a0 <= self._rom_size - 2:
                np.add(st["rom_word_reads"], 1, out=st["rom_word_reads"])
                sv = int.from_bytes(self._rom_ba[a0:a0 + 2], "little")
                if signed and sv & 0x8000:
                    sv -= 0x10000
                return sv & MASK32
            else:
                raise MemoryError(f"unmapped address 0x{a0:08x}")
        else:
            if bool((a & 1).any()):
                raise MemoryError("unaligned 2-byte lane access")
            off = addr.astype(np.int64)
            if not bool(((a >= RAM_BASE)
                         & (a <= self._ram_limit - 2)).all()):
                raise MemoryError("lane load spans memory regions")
            np.add(st["ram_reads"], 1, out=st["ram_reads"])
            np.subtract(off, RAM_BASE, out=off)
            np.clip(off, 0, self._ram_size - 2, out=off)
            v = self.ram16[self._rows, off >> 1]
        if signed:
            return (v.astype(np.int32) ^ 0x8000) - 0x8000
        return v

    def _lb(self, addr, signed: bool):
        a = self._active_view(addr)
        a0 = int(a[0])
        st = self.stats
        if bool((a == a0).all()):
            if RAM_BASE <= a0 <= self._ram_limit - 1:
                np.add(st["ram_reads"], 1, out=st["ram_reads"])
                v = self.ram[:, a0 - RAM_BASE]
            elif a0 <= self._rom_size - 1:
                np.add(st["rom_word_reads"], 1, out=st["rom_word_reads"])
                sv = self._rom_ba[a0]
                if signed and sv & 0x80:
                    sv -= 0x100
                return sv & MASK32
            else:
                raise MemoryError(f"unmapped address 0x{a0:08x}")
        else:
            off = addr.astype(np.int64)
            if not bool(((a >= RAM_BASE)
                         & (a <= self._ram_limit - 1)).all()):
                raise MemoryError("lane load spans memory regions")
            np.add(st["ram_reads"], 1, out=st["ram_reads"])
            np.subtract(off, RAM_BASE, out=off)
            np.clip(off, 0, self._ram_size - 1, out=off)
            v = self.ram[self._rows, off]
        if signed:
            return (v.astype(np.int32) ^ 0x80) - 0x80
        return v

    def _store_check(self, a, a0: int, size: int) -> bool:
        """Validate a store's addresses; True when they are uniform."""
        if bool((a == a0).all()):
            if a0 & (size - 1):
                raise MemoryError(
                    f"unaligned {size}-byte access at 0x{a0:08x}"
                )
            if not RAM_BASE <= a0 <= self._ram_limit - size:
                raise MemoryError(f"store outside RAM at 0x{a0:08x}")
            return True
        if size > 1 and bool((a & (size - 1)).any()):
            raise MemoryError(f"unaligned {size}-byte lane access")
        if not bool(((a >= RAM_BASE)
                     & (a <= self._ram_limit - size)).all()):
            raise MemoryError("lane store outside RAM")
        return False

    def _scatter(self, view, shift: int, addr, value) -> None:
        off = addr.astype(np.int64)
        np.subtract(off, RAM_BASE, out=off)
        idx = off >> shift if shift else off
        sel = self._sel
        if sel is None:
            view[self._rows, idx] = value
        else:
            view[sel, idx[sel]] = value[sel]

    def _sw(self, addr, value) -> None:
        a = self._active_view(addr)
        a0 = int(a[0])
        uniform = self._store_check(a, a0, 4)
        st = self.stats
        np.add(st["ram_writes"], 1, out=st["ram_writes"])
        if uniform:
            col = (a0 - RAM_BASE) >> 2
            sel = self._sel
            if sel is None:
                self.ram32[:, col] = value
            else:
                self.ram32[sel, col] = value[sel]
            return
        self._scatter(self.ram32, 2, addr, value)

    def _sh2(self, addr, value) -> None:
        a = self._active_view(addr)
        a0 = int(a[0])
        uniform = self._store_check(a, a0, 2)
        st = self.stats
        np.add(st["ram_writes"], 1, out=st["ram_writes"])
        if uniform:
            col = (a0 - RAM_BASE) >> 1
            sel = self._sel
            if sel is None:
                self.ram16[:, col] = value
            else:
                self.ram16[sel, col] = value[sel]
            return
        self._scatter(self.ram16, 1, addr, value)

    def _sb(self, addr, value) -> None:
        a = self._active_view(addr)
        a0 = int(a[0])
        uniform = self._store_check(a, a0, 1)
        st = self.stats
        np.add(st["ram_writes"], 1, out=st["ram_writes"])
        if uniform:
            col = a0 - RAM_BASE
            sel = self._sel
            if sel is None:
                self.ram[:, col] = value
            else:
                self.ram[sel, col] = value[sel]
            return
        self._scatter(self.ram, 0, addr, value)

    # -- vectorized MulDiv unit -------------------------------------------

    def _md_start(self, cyc, latency: int) -> None:
        np.add(cyc, latency, out=self.md_busy)
        np.add(self.md_issues, 1, out=self.md_issues)

    def _mult_s(self, cyc, a, b) -> None:
        p = a.astype(np.int64) * b.astype(np.int64)
        self.md_lo[:] = p
        self.md_hi.fill(0)
        self._md_start(cyc, MULT_LATENCY)

    def _mult_u(self, cyc, a, b) -> None:
        self.md_lo[:] = a.astype(np.uint64) * b
        self.md_hi.fill(0)
        self._md_start(cyc, MULT_LATENCY)

    def _div(self, cyc, a, b, signed: bool) -> None:
        # Per-lane scalar loop: division is rare in the kernels and the
        # reference's `int(a / b)` float-truncation semantics must be
        # reproduced exactly.
        vals = []
        for x, y in zip(a.tolist(), b.tolist()):
            if y == 0:
                q, r = 0, x
            else:
                q = int(x / y) if signed else x // y
                r = x - q * y
            vals.append(((r & MASK32) << 32) | (q & MASK32))
        self.md_lo[:] = vals
        self.md_hi.fill(0)
        self._md_start(cyc, DIV_LATENCY)

    def _maddu(self, cyc, a, b) -> None:
        p = a.astype(np.uint64) * b
        lo = self.md_lo
        new = lo + p
        np.add(self.md_hi, new < p, out=self.md_hi)
        np.bitwise_and(self.md_hi, np.uint64(MASK32), out=self.md_hi)
        lo[:] = new
        self._md_start(cyc, MULT_LATENCY)

    def _m2addu(self, cyc, a, b) -> None:
        p = a.astype(np.uint64) * b
        c0 = p >> np.uint64(63)
        p <<= np.uint64(1)
        lo = self.md_lo
        new = lo + p
        np.add(self.md_hi, c0, out=self.md_hi)
        np.add(self.md_hi, new < p, out=self.md_hi)
        np.bitwise_and(self.md_hi, np.uint64(MASK32), out=self.md_hi)
        lo[:] = new
        self._md_start(cyc, MULT_LATENCY)

    def _addau(self, cyc, a, b) -> None:
        t = (a.astype(np.uint64) << np.uint64(32)) + b
        lo = self.md_lo
        new = lo + t
        np.add(self.md_hi, new < t, out=self.md_hi)
        np.bitwise_and(self.md_hi, np.uint64(MASK32), out=self.md_hi)
        lo[:] = new
        self._md_start(cyc, ACC_ADD_LATENCY)

    def _sha(self, cyc) -> None:
        lo = self.md_lo
        lo[:] = (lo >> np.uint64(32)) | (self.md_hi << np.uint64(32))
        self.md_hi.fill(0)
        self._md_start(cyc, ACC_ADD_LATENCY)

    def _clmul(self, a, b) -> "np.ndarray":
        a64 = a.astype(np.uint64)
        r = np.zeros(self.n, dtype=np.uint64)
        bmax = int(b.max())
        for i in range(32):
            if not bmax >> i:
                break
            bit = ((b >> np.uint32(i)) & np.uint32(1)).astype(np.uint64)
            r ^= (a64 << np.uint64(i)) * bit
        return r

    def _mulgf2(self, cyc, a, b) -> None:
        self.md_lo[:] = self._clmul(a, b)
        self.md_hi.fill(0)
        self._md_start(cyc, MULT_LATENCY)

    def _maddgf2(self, cyc, a, b) -> None:
        np.bitwise_xor(self.md_lo, self._clmul(a, b), out=self.md_lo)
        self._md_start(cyc, MULT_LATENCY)

    def _set_lo(self, v) -> None:
        lo = self.md_lo
        np.bitwise_and(lo, np.uint64(0xFFFFFFFF00000000), out=lo)
        np.bitwise_or(lo, v.astype(np.uint64), out=lo)

    def _set_hi(self, v) -> None:
        lo = self.md_lo
        np.bitwise_and(lo, np.uint64(0x00000000FFFFFFFF), out=lo)
        np.bitwise_or(lo, v.astype(np.uint64) << np.uint64(32), out=lo)

    # -- per-lane accessors ------------------------------------------------

    def lane_bridge(self, lane: int) -> Pete | None:
        """The scalar core holding this lane's truth, if any."""
        b = self._demoted.get(lane)
        return b if b is not None else self._halted_bridges.get(lane)

    def lane_done(self, lane: int) -> bool:
        return bool(self._done[lane])

    def lane_pc(self, lane: int) -> int:
        b = self.lane_bridge(lane)
        if b is not None:
            return b.pc
        if self._done[lane]:
            return self._done_pc[lane]
        return self.pc

    def lane_cycle(self, lane: int) -> int:
        b = self.lane_bridge(lane)
        return b.cycle if b is not None else int(self.cycle[lane])

    def lane_instructions(self, lane: int) -> int:
        b = self.lane_bridge(lane)
        if b is not None:
            return b.stats.instructions
        return int(self.stats["instructions"][lane])

    def lane_regs(self, lane: int) -> list[int]:
        b = self.lane_bridge(lane)
        if b is not None:
            return list(b.regs)
        return [int(x) for x in self.regs[:, lane]]

    def lane_stats(self, lane: int) -> CoreStats:
        b = self.lane_bridge(lane)
        if b is not None:
            return CoreStats(**b.stats.as_dict())
        return CoreStats(
            **{f: int(self.stats[f][lane]) for f in _STAT_FIELDS}
        )

    def lane_acc(self, lane: int) -> int:
        b = self.lane_bridge(lane)
        if b is not None:
            return b.muldiv.acc
        return int(self.md_lo[lane]) | (int(self.md_hi[lane]) << 64)

    def lane_busy_until(self, lane: int) -> int:
        b = self.lane_bridge(lane)
        return b.muldiv.busy_until if b is not None \
            else int(self.md_busy[lane])

    def lane_issues(self, lane: int) -> int:
        b = self.lane_bridge(lane)
        return b.muldiv.issues if b is not None \
            else int(self.md_issues[lane])

    def lane_load_latch(self, lane: int) -> int | None:
        b = self.lane_bridge(lane)
        if b is not None:
            return b._last_load_reg
        v = int(self.llr[lane])
        return v if v >= 0 else None

    def lane_predictor(self, lane: int) -> dict[int, int]:
        b = self.lane_bridge(lane)
        if b is not None:
            return dict(b._predictor)
        return {
            p: int(arr[lane])
            for p, arr in self._predictors.items() if arr[lane] >= 0
        }

    def lane_ram(self, lane: int) -> bytes:
        b = self.lane_bridge(lane)
        if b is not None:
            return bytes(b.mem.ram)
        return self.ram[lane].tobytes()

    def counters(self) -> dict[str, int]:
        """This engine's divergence/fallback accounting."""
        return {
            "lanes": self.n,
            "vector_blocks": self.vector_blocks,
            "divergences": self.divergences,
            "demotions": self.demotions,
            "rejoins": self.rejoins,
            "fallback_instructions": self.fallback_instructions,
        }

    def precompile(self, starts) -> int:
        """Drive the lane code cache to closure over ``starts``.

        ``starts`` are statically known block-start pcs (CFG basic-
        block leaders).  Every straight-line run from a start is
        compiled, including its ``MAX_BLOCK_LEN`` continuations and
        the delay slot of the control transfer that terminates it --
        the full set of pcs this engine can ever begin a block at.
        After closure, *data-dependent* control flow (a rarely taken
        carry branch, a divergence demotion/rejoin) can no longer
        trigger a first-time compile mid-run, which is what lets a
        serving worker promise compile-free steady state.

        Returns the number of blocks newly compiled.
        """
        before = RUNTIME_STATS["lane_blocks_compiled"]
        seen: set[int] = set()
        work = [int(pc) for pc in starts]
        while work:
            pc = work.pop()
            if pc in seen or pc < 0 or pc + 4 > self._rom_size:
                continue
            seen.add(pc)
            # measure the compilable run at pc
            length = 0
            at = pc
            while length < MAX_BLOCK_LEN:
                try:
                    d = self._decode(at)
                except (ValueError, MemoryError):
                    break
                if d.mnemonic not in COMPILABLE:
                    break
                length += 1
                at += 4
            if length:
                self._compile_at(pc)
                if length == MAX_BLOCK_LEN:
                    work.append(at)   # continuation is a block start
                    continue
            # the run ended at a control transfer: pre-fill its delay
            # slot's single-instruction closure (the _exec_slot path)
            try:
                slot = self._decode(at + 4)
            except (ValueError, MemoryError):
                continue
            if slot.mnemonic in COMPILABLE:
                key = (at + 4, (slot.word,))
                if key not in _LANE_CODE_CACHE:
                    if len(_LANE_CODE_CACHE) >= _LANE_CODE_CACHE_MAX:
                        _LANE_CODE_CACHE.clear()
                    _LANE_CODE_CACHE[key] = compile_lane_block(
                        [slot], at + 4)
                    RUNTIME_STATS["lane_blocks_compiled"] += 1
        return RUNTIME_STATS["lane_blocks_compiled"] - before


# ---------------------------------------------------------------------------
# Prepared-lane pools
# ---------------------------------------------------------------------------


class LanePool:
    """A stock of prepared, ready-to-run cores keyed by kernel+config.

    Preparing a lane (assembling the program -- memoized -- then
    building a :class:`~repro.pete.cpu.Pete`, loading the image and
    writing fresh operands) is the dominant per-batch cost once the
    lane code cache is warm.  A pool lets a long-lived server pay that
    cost *between* batches: :meth:`restock` pre-prepares cores up to
    ``stock_target`` while the dispatcher is idle, and :meth:`take`
    consumes stocked cores first, preparing only the shortfall on the
    request's critical path.

    ``prepare`` is any callable with the signature of
    :meth:`repro.kernels.runner.KernelRunner.prepare_lanes` --
    ``prepare(name, k, n) -> (cores, entry)`` -- so every core carries
    distinct operands exactly as ``n`` scalar preparations would.
    Cores are consumed by execution (state mutates), so the pool never
    re-issues a taken core; the key's ``config`` component keeps stocks
    prepared under different calibrations or pricing configs apart.
    """

    def __init__(self, prepare: Callable, stock_target: int = 0) -> None:
        self._prepare = prepare
        self.stock_target = max(0, stock_target)
        self._stock: dict[tuple, list] = {}     # key -> prepared cores
        self._entries: dict[tuple, int] = {}    # key -> entry pc
        self.prepared = 0
        self.reused = 0

    @staticmethod
    def key_for(name: str, k: int, config: str = "") -> tuple:
        return (name, k, config)

    def _fill(self, key: tuple, n: int) -> None:
        if n <= 0:
            return
        name, k, _ = key
        cores, entry = self._prepare(name, k, n)
        known = self._entries.setdefault(key, entry)
        if entry != known:  # pragma: no cover - program images are static
            raise RuntimeError(f"kernel {name!r}: unstable entry point")
        self._stock.setdefault(key, []).extend(cores)
        self.prepared += n

    def take(self, name: str, k: int, n: int,
             config: str = "") -> tuple[list, int]:
        """``n`` prepared cores plus the entry pc, stock-first."""
        key = self.key_for(name, k, config)
        stock = self._stock.setdefault(key, [])
        self.reused += min(len(stock), n)
        self._fill(key, n - len(stock))
        cores, self._stock[key] = stock[:n], stock[n:]
        return cores, self._entries[key]

    def restock(self, name: str, k: int, config: str = "") -> int:
        """Top the key's stock up to ``stock_target``; returns how many
        cores were prepared."""
        key = self.key_for(name, k, config)
        shortfall = self.stock_target - len(self._stock.get(key, ()))
        self._fill(key, shortfall)
        return max(0, shortfall)

    def stocked(self, name: str, k: int, config: str = "") -> int:
        return len(self._stock.get(self.key_for(name, k, config), ()))

    def counters(self) -> dict[str, int]:
        return {
            "pool_prepared": self.prepared,
            "pool_reused": self.reused,
            "pool_stocked": sum(len(v) for v in self._stock.values()),
        }
