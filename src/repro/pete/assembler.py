"""Two-pass assembler for Pete.

Supports the full MIPS-subset ISA plus extensions, labels, a handful of
pseudo-instructions, ``.word`` data and explicit branch-delay-slot
placement:

* every branch/jump is followed by a delay slot; by default the assembler
  fills it with a ``nop``, but a source line beginning with ``.ds`` places
  that instruction in the slot instead (how the hand-scheduled kernels
  keep their inner loops tight);
* pseudo-instructions: ``li``, ``la``, ``move``, ``nop``, ``b``, ``beqz``,
  ``bnez``, ``halt`` (assembles to ``break``);
* ``#`` and ``;`` start comments.

Example::

    loop:
        lw    $t0, 0($a0)
        maddu $t0, $t1
        bne   $a0, $a3, loop
        .ds addiu $a0, $a0, 4
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.pete.isa import (
    COP2_FUNCT,
    FUNCT2,
    OPCODES_J,
    REGISTERS,
    PeteISA,
)


class AssemblyError(Exception):
    """Raised on malformed assembly source."""


@dataclass
class Assembled:
    """Output of :func:`assemble`.

    ``source_lines[i]`` is the source line that produced ``words[i]``
    and ``delay_slots`` lists the word indices sitting in branch/jump
    delay slots -- the metadata :mod:`repro.analysis` reports against.
    """

    words: list[int]
    labels: dict[str, int]
    base: int = 0
    source_lines: list[str] = field(default_factory=list)
    delay_slots: tuple[int, ...] = ()

    def address_of(self, label: str) -> int:
        return self.base + 4 * self.labels[label]


_TOKEN_RE = re.compile(r"[\w.$-]+|\(|\)|,")


def _reg(token: str, line: str) -> int:
    name = token.lstrip("$")
    if name not in REGISTERS:
        raise AssemblyError(f"bad register {token!r} in: {line}")
    return REGISTERS[name]


def _imm(token: str, line: str) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblyError(f"bad immediate {token!r} in: {line}") from exc


@dataclass
class _Item:
    """One instruction slot prior to encoding."""

    mnemonic: str
    operands: list[str]
    line: str
    in_delay_slot: bool = False


_BRANCHES = {"beq", "bne", "blez", "bgtz", "bltz", "bgez", "b", "beqz", "bnez"}
_JUMPS = {"j", "jal", "jr", "jalr"}


def _parse(source: str) -> tuple[list[_Item], dict[str, int]]:
    """First pass: expand pseudo-instructions, place delay slots, and
    record label positions (in instruction-slot units)."""
    items: list[_Item] = []
    labels: dict[str, int] = {}
    pending_ds: _Item | None = None

    def emit(item: _Item) -> None:
        items.append(item)

    raw_lines = source.splitlines()
    index = 0
    while index < len(raw_lines):
        line = raw_lines[index]
        index += 1
        code = line.split("#")[0].split(";")[0].strip()
        if not code:
            continue
        while ":" in code:
            label, _, rest = code.partition(":")
            label = label.strip()
            if not re.fullmatch(r"[A-Za-z_.][\w.]*", label):
                raise AssemblyError(f"bad label {label!r} in: {line}")
            if label in labels:
                raise AssemblyError(f"duplicate label {label!r} in: {line}")
            labels[label] = len(items)
            code = rest.strip()
        if not code:
            continue
        is_ds = False
        if code.startswith(".ds"):
            is_ds = True
            code = code[3:].strip()
            if not code:
                raise AssemblyError(f".ds needs an instruction in: {line}")
        parts = code.split(None, 1)
        mnemonic = parts[0].lower()
        operand_str = parts[1] if len(parts) > 1 else ""
        operands = [tok for tok in _TOKEN_RE.findall(operand_str)
                    if tok not in (",", "(", ")")]

        if is_ds:
            if not items or items[-1].mnemonic not in _BRANCHES | _JUMPS:
                raise AssemblyError(f".ds must follow a branch/jump: {line}")
            emit(_Item(mnemonic, operands, line, in_delay_slot=True))
            continue

        emit(_Item(mnemonic, operands, line))
        if mnemonic in _BRANCHES | _JUMPS:
            # peek: does a .ds line follow?
            peek = index
            while peek < len(raw_lines):
                nxt = raw_lines[peek].split("#")[0].split(";")[0].strip()
                if nxt:
                    break
                peek += 1
            follows_ds = peek < len(raw_lines) and raw_lines[peek].split(
                "#")[0].split(";")[0].strip().startswith(".ds")
            if not follows_ds:
                emit(_Item("nop", [], "nop (auto delay slot)",
                           in_delay_slot=True))
    return items, labels


def _expand(items: list[_Item], labels: dict[str, int]) -> list[_Item]:
    """Second sub-pass: expand multi-word pseudo-instructions.

    Expansion happens *before* label resolution would be ambiguous, so all
    pseudo-instructions must have a size independent of operand values
    except ``li`` (whose size depends only on the literal, available now).
    """
    out: list[_Item] = []
    remap: dict[int, int] = {}
    for slot, item in enumerate(items):
        remap[slot] = len(out)
        m, ops = item.mnemonic, item.operands
        if m == "nop":
            out.append(_Item("sll", ["$zero", "$zero", "0"], item.line,
                             item.in_delay_slot))
        elif m == "halt":
            out.append(_Item("break", [], item.line, item.in_delay_slot))
        elif m == "move":
            out.append(_Item("addu", [ops[0], ops[1], "$zero"], item.line,
                             item.in_delay_slot))
        elif m == "b":
            out.append(_Item("beq", ["$zero", "$zero", ops[0]], item.line,
                             item.in_delay_slot))
        elif m == "beqz":
            out.append(_Item("beq", [ops[0], "$zero", ops[1]], item.line,
                             item.in_delay_slot))
        elif m == "bnez":
            out.append(_Item("bne", [ops[0], "$zero", ops[1]], item.line,
                             item.in_delay_slot))
        elif m == "li":
            value = _imm(ops[1], item.line) & 0xFFFFFFFF
            if value < 0x8000 or value >= 0xFFFF8000:
                out.append(_Item("addiu", [ops[0], "$zero",
                                           str(value - (1 << 32) if value >= 0xFFFF8000 else value)],
                                 item.line, item.in_delay_slot))
            elif value & 0xFFFF == 0:
                out.append(_Item("lui", [ops[0], str(value >> 16)],
                                 item.line, item.in_delay_slot))
            else:
                if item.in_delay_slot:
                    raise AssemblyError(f"2-word li in delay slot: {item.line}")
                out.append(_Item("lui", [ops[0], str(value >> 16)], item.line))
                out.append(_Item("ori", [ops[0], ops[0],
                                         str(value & 0xFFFF)], item.line))
        elif m == "la":
            if item.in_delay_slot:
                raise AssemblyError(f"la in delay slot: {item.line}")
            out.append(_Item("la.hi", [ops[0], ops[1]], item.line))
            out.append(_Item("la.lo", [ops[0], ops[0], ops[1]], item.line))
        else:
            out.append(item)
    new_labels = {}
    for name, slot in labels.items():
        new_labels[name] = remap.get(slot, len(out))
    return out, new_labels  # type: ignore[return-value]


def assemble(source: str, base: int = 0) -> Assembled:
    """Assemble source text into machine words at ``base``."""
    items, labels = _parse(source)
    items, labels = _expand(items, labels)
    isa = PeteISA
    words: list[int] = []

    def label_addr(token: str, line: str) -> int:
        if token in labels:
            return base + 4 * labels[token]
        try:
            return int(token, 0)
        except ValueError:
            raise AssemblyError(
                f"undefined label {token!r} in: {line}") from None

    for slot, item in enumerate(items):
        m, ops, line = item.mnemonic, item.operands, item.line
        try:
            if m == ".word":
                words.append(_imm(ops[0], line) & 0xFFFFFFFF)
            elif m == "la.hi":
                addr = label_addr(ops[1], line)
                words.append(isa.encode_i("lui", _reg(ops[0], line), 0,
                                          (addr >> 16) & 0xFFFF))
            elif m == "la.lo":
                addr = label_addr(ops[2], line)
                words.append(isa.encode_i("ori", _reg(ops[0], line),
                                          _reg(ops[1], line), addr & 0xFFFF))
            elif m in ("sll", "srl", "sra"):
                words.append(isa.encode_r(m, rd=_reg(ops[0], line),
                                          rt=_reg(ops[1], line),
                                          shamt=_imm(ops[2], line)))
            elif m in ("sllv", "srlv", "srav"):
                words.append(isa.encode_r(m, rd=_reg(ops[0], line),
                                          rt=_reg(ops[1], line),
                                          rs=_reg(ops[2], line)))
            elif m in ("add", "addu", "sub", "subu", "and", "or", "xor",
                       "nor", "slt", "sltu"):
                words.append(isa.encode_r(m, rd=_reg(ops[0], line),
                                          rs=_reg(ops[1], line),
                                          rt=_reg(ops[2], line)))
            elif m in ("mult", "multu", "div", "divu"):
                words.append(isa.encode_r(m, rs=_reg(ops[0], line),
                                          rt=_reg(ops[1], line)))
            elif m in ("mfhi", "mflo"):
                words.append(isa.encode_r(m, rd=_reg(ops[0], line)))
            elif m in ("mthi", "mtlo"):
                words.append(isa.encode_r(m, rs=_reg(ops[0], line)))
            elif m == "jr":
                words.append(isa.encode_r(m, rs=_reg(ops[0], line)))
            elif m == "jalr":
                rd = 31 if len(ops) == 1 else _reg(ops[0], line)
                rs = _reg(ops[-1], line)
                words.append(isa.encode_r(m, rd=rd, rs=rs))
            elif m in ("break", "syscall"):
                words.append(isa.encode_r(m))
            elif m in FUNCT2:
                if m == "sha":
                    words.append(isa.encode_r2(m))
                else:
                    words.append(isa.encode_r2(m, rs=_reg(ops[0], line),
                                               rt=_reg(ops[1], line)))
            elif m in ("beq", "bne"):
                target = label_addr(ops[2], line)
                offset = (target - (base + 4 * slot + 4)) // 4
                words.append(isa.encode_i(m, _reg(ops[1], line),
                                          _reg(ops[0], line), offset))
            elif m in ("blez", "bgtz"):
                target = label_addr(ops[1], line)
                offset = (target - (base + 4 * slot + 4)) // 4
                words.append(isa.encode_i(m, 0, _reg(ops[0], line), offset))
            elif m in ("bltz", "bgez"):
                target = label_addr(ops[1], line)
                offset = (target - (base + 4 * slot + 4)) // 4
                words.append(isa.encode_regimm(m, _reg(ops[0], line), offset))
            elif m in ("addi", "addiu", "slti", "sltiu", "andi", "ori",
                       "xori"):
                words.append(isa.encode_i(m, _reg(ops[0], line),
                                          _reg(ops[1], line),
                                          _imm(ops[2], line)))
            elif m == "lui":
                words.append(isa.encode_i(m, _reg(ops[0], line), 0,
                                          _imm(ops[1], line)))
            elif m in ("lw", "lh", "lhu", "lb", "lbu", "sw", "sh", "sb"):
                # format: op $rt, imm($rs)
                rt = _reg(ops[0], line)
                offset = _imm(ops[1], line)
                rs = _reg(ops[2], line) if len(ops) > 2 else 0
                words.append(isa.encode_i(m, rt, rs, offset))
            elif m in OPCODES_J:
                target = label_addr(ops[0], line)
                words.append(isa.encode_j(m, (target >> 2) & 0x3FFFFFF))
            elif m == "ctc2":
                words.append(isa.encode_cop2("ctc2", rt=_reg(ops[0], line),
                                             rd=_imm(ops[1], line)))
            elif m in COP2_FUNCT:
                words.append(_encode_cop2_item(m, ops, line))
            else:
                raise AssemblyError(f"unknown mnemonic {m!r}: {line}")
        except (IndexError, KeyError) as exc:
            raise AssemblyError(f"malformed instruction: {line}") from exc
    source_lines = [item.line for item in items]
    slots = tuple(i for i, item in enumerate(items) if item.in_delay_slot)
    return Assembled(words, labels, base, source_lines, slots)


def _encode_cop2_item(m: str, ops: list[str], line: str) -> int:
    """Encode Monte/Billie coprocessor instructions (Tables 5.3 / 5.6)."""
    isa = PeteISA
    if m == "cop2sync":
        return isa.encode_cop2(m)
    if m in ("cop2lda", "cop2ldb", "cop2ldn"):
        return isa.encode_cop2(m, rt=_reg(ops[0], line))
    if m in ("cop2mul", "cop2add", "cop2sub") and len(ops) == 3:
        # Billie 3-operand form: fd, fs, ft
        return isa.encode_cop2(m, fd=_imm(ops[0], line),
                               fs=_imm(ops[1], line), ft=_imm(ops[2], line))
    if m in ("cop2mul", "cop2add", "cop2sub"):
        return isa.encode_cop2(m)  # Monte 0-operand form
    if m == "cop2sqr":
        return isa.encode_cop2(m, fd=_imm(ops[0], line),
                               ft=_imm(ops[1], line))
    if m in ("cop2ld", "cop2st") and len(ops) == 2:
        # Billie form: rt, fs
        return isa.encode_cop2(m, rt=_reg(ops[0], line),
                               fs=_imm(ops[1], line))
    if m == "cop2st":
        return isa.encode_cop2(m, rt=_reg(ops[0], line))
    raise AssemblyError(f"malformed coprocessor instruction: {line}")
