"""Direct-mapped instruction cache with stream-buffer prefetch
(paper Section 5.3, Figs. 5.5/5.6).

Parameterizable size (number of lines) with fixed 16-byte lines holding
four 32-bit instructions.  Tag and data are conceptually separate
memories; for energy purposes each lookup is one cache access, each miss
is one 128-bit ROM line read plus one fill.

The prefetcher is a single-entry stream buffer (after Jouppi): on a miss,
the next sequential line is fetched into the buffer; a miss that hits the
buffer promotes the line into the cache without stalling and prefetches
the next line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pete.stats import CoreStats
from repro.trace.events import (
    ICACHE_ACCESS,
    ICACHE_FILL,
    ROM_LINE,
    TraceEvent,
)


@dataclass(frozen=True)
class ICacheConfig:
    """Cache geometry and behaviour."""

    size_bytes: int = 4096
    line_bytes: int = 16
    prefetch: bool = False
    miss_penalty: int = 3  # cycles; 128-bit ROM port, Section 5.3.2

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    def label(self) -> str:
        kb = self.size_bytes // 1024
        return f"{kb}KB{'-p' if self.prefetch else ''}"


class ICache:
    """Timing/functional model of the direct-mapped instruction cache."""

    def __init__(self, config: ICacheConfig, stats: CoreStats) -> None:
        if config.n_lines & (config.n_lines - 1):
            raise ValueError("line count must be a power of two")
        self.config = config
        self.stats = stats
        self.tags: list[int | None] = [None] * config.n_lines
        # The data store mirrors the ROM contents; we track presence only
        # (contents are always consistent since ROM is immutable).
        self._pf_tag: int | None = None  # prefetch buffer line address
        self.tracer = None  # TraceBus, attached by the owning Pete

    def invalidate(self) -> None:
        """The reset routine's cache initialization (Section 5.3.2)."""
        self.tags = [None] * self.config.n_lines
        self._pf_tag = None

    def _split(self, addr: int) -> tuple[int, int]:
        line_addr = addr // self.config.line_bytes
        index = line_addr % self.config.n_lines
        return line_addr, index

    def access(self, addr: int, now: int = 0) -> int:
        """Look up one instruction fetch; returns the stall penalty in
        cycles (0 on a hit) and updates the event counters.

        The caller charges ROM line reads through the returned events:
        every miss costs one ROM line read; a prefetch-buffer hit costs no
        stall but the buffer then issues the next line's ROM read.
        ``now`` is the current core cycle, used only to timestamp trace
        events -- the cache's own state machine never reads it, which is
        what lets compiled superblocks (:mod:`repro.pete.fastpath`, which
        only run while no tracer is attached) omit it entirely.
        """
        cfg = self.config
        self.stats.icache_accesses += 1
        line_addr, index = self._split(addr)
        if self.tags[index] == line_addr:
            self.stats.icache_hits += 1
            if self.tracer is not None:
                self.tracer.emit(TraceEvent(
                    ICACHE_ACCESS, now, 0, addr, "icache", "hit"))
            return 0
        self.stats.icache_misses += 1
        if cfg.prefetch and self._pf_tag == line_addr:
            # stream-buffer hit: forward + fill cache, prefetch next line
            self.stats.prefetch_hits += 1
            self.tags[index] = line_addr
            self.stats.icache_fills += 1
            self._pf_tag = line_addr + 1
            self.stats.prefetch_fetches += 1
            self.stats.rom_line_reads += 1
            if self.tracer is not None:
                self.tracer.emit(TraceEvent(
                    ICACHE_ACCESS, now, 0, addr, "icache", "pf_hit"))
                self.tracer.emit(TraceEvent(
                    ICACHE_FILL, now, 0, addr, "icache", "pf_fill"))
                self.tracer.emit(TraceEvent(
                    ROM_LINE, now, 0, addr, "rom", "prefetch"))
            return 0
        # true miss: read line from ROM, fill the cache
        self.stats.rom_line_reads += 1
        self.tags[index] = line_addr
        self.stats.icache_fills += 1
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(
                ICACHE_ACCESS, now, 0, addr, "icache", "miss"))
            self.tracer.emit(TraceEvent(
                ICACHE_FILL, now, cfg.miss_penalty, addr, "icache", "fill"))
            self.tracer.emit(TraceEvent(
                ROM_LINE, now, 0, addr, "rom", "fill"))
        if cfg.prefetch:
            self._pf_tag = line_addr + 1
            self.stats.prefetch_fetches += 1
            self.stats.rom_line_reads += 1
            if self.tracer is not None:
                self.tracer.emit(TraceEvent(
                    ROM_LINE, now, 0, addr, "rom", "prefetch"))
        return cfg.miss_penalty
