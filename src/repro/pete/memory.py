"""Program ROM and data RAM models (paper Fig. 5.1 / 5.6).

The baseline memory layout: 256 KB of single-cycle program ROM with a
dual-port 32-bit interface (instruction + data buses) and 16 KB of
single-cycle RAM on the data bus.  When the instruction cache is enabled,
the ROM becomes single-ported with a 128-bit line interface so a whole
cache line fills in one access (Section 5.3.2).

Both memories count accesses; the counters feed the energy model.
"""

from __future__ import annotations

from repro.pete.stats import CoreStats
from repro.trace.events import (
    RAM_READ,
    RAM_WRITE,
    ROM_LINE,
    ROM_READ,
    TraceEvent,
)

ROM_BASE = 0x0000_0000
ROM_SIZE = 256 * 1024
RAM_BASE = 0x1000_0000
RAM_SIZE = 16 * 1024


class MemorySystem:
    """Byte-addressable memory with a ROM and a RAM region."""

    def __init__(self, stats: CoreStats, rom_size: int = ROM_SIZE,
                 ram_size: int = RAM_SIZE) -> None:
        self.stats = stats
        self.rom_size = rom_size
        self.ram_size = ram_size
        self.rom = bytearray(rom_size)
        self.ram = bytearray(ram_size)
        self.tracer = None   # TraceBus, attached by the owning Pete
        self.clock = None    # object with a .cycle attribute (the core)

    def _now(self) -> int:
        return self.clock.cycle if self.clock is not None else -1

    # -- region helpers -----------------------------------------------------

    def _locate(self, addr: int) -> tuple[bytearray, int, bool]:
        """Return (backing array, offset, is_ram)."""
        if ROM_BASE <= addr < ROM_BASE + self.rom_size:
            return self.rom, addr - ROM_BASE, False
        if RAM_BASE <= addr < RAM_BASE + self.ram_size:
            return self.ram, addr - RAM_BASE, True
        raise MemoryError(f"unmapped address 0x{addr:08x}")

    # -- instruction port ---------------------------------------------------

    def fetch_word(self, addr: int) -> int:
        """Instruction fetch: one 32-bit ROM read (no-cache path)."""
        backing, offset, is_ram = self._locate(addr)
        if is_ram:
            raise MemoryError("instructions are not stored in RAM")
        self.stats.rom_word_reads += 1
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(
                ROM_READ, self._now(), 0, -1, "rom", "fetch", addr))
        return int.from_bytes(backing[offset:offset + 4], "little")

    def fetch_line(self, addr: int, line_bytes: int = 16) -> list[int]:
        """Cache-line fetch: one 128-bit ROM read (cached path)."""
        backing, offset, is_ram = self._locate(addr & ~(line_bytes - 1))
        if is_ram:
            raise MemoryError("instructions are not stored in RAM")
        self.stats.rom_line_reads += 1
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(
                ROM_LINE, self._now(), 0, -1, "rom", "line", addr))
        base = offset & ~(line_bytes - 1)
        return [
            int.from_bytes(backing[base + 4 * i:base + 4 * i + 4], "little")
            for i in range(line_bytes // 4)
        ]

    def peek_word(self, addr: int) -> int:
        """Read without counting (for loaders/debuggers)."""
        backing, offset, _ = self._locate(addr)
        return int.from_bytes(backing[offset:offset + 4], "little")

    # -- data port ------------------------------------------------------------

    def load(self, addr: int, size: int, signed: bool = False) -> int:
        if addr % size:
            raise MemoryError(f"unaligned {size}-byte load at 0x{addr:08x}")
        backing, offset, is_ram = self._locate(addr)
        if is_ram:
            self.stats.ram_reads += 1
        else:
            self.stats.rom_word_reads += 1
        if self.tracer is not None:
            kind = RAM_READ if is_ram else ROM_READ
            unit = "ram" if is_ram else "rom"
            self.tracer.emit(TraceEvent(
                kind, self._now(), 0, -1, unit, "load", addr))
        value = int.from_bytes(backing[offset:offset + size], "little")
        if signed and value >> (8 * size - 1):
            value -= 1 << (8 * size)
        return value

    def store(self, addr: int, value: int, size: int) -> None:
        if addr % size:
            raise MemoryError(f"unaligned {size}-byte store at 0x{addr:08x}")
        backing, offset, is_ram = self._locate(addr)
        if not is_ram:
            raise MemoryError(f"store to ROM at 0x{addr:08x}")
        self.stats.ram_writes += 1
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(
                RAM_WRITE, self._now(), 0, -1, "ram", "store", addr))
        backing[offset:offset + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"
        )

    # -- loaders (uncounted) ---------------------------------------------------

    def write_rom(self, addr: int, data: bytes) -> None:
        offset = addr - ROM_BASE
        self.rom[offset:offset + len(data)] = data

    def write_ram(self, addr: int, data: bytes) -> None:
        offset = addr - RAM_BASE
        self.ram[offset:offset + len(data)] = data

    def read_ram(self, addr: int, length: int) -> bytes:
        offset = addr - RAM_BASE
        return bytes(self.ram[offset:offset + length])

    def write_ram_words(self, addr: int, words: list[int]) -> None:
        for i, word in enumerate(words):
            self.write_ram(addr + 4 * i, (word & 0xFFFFFFFF).to_bytes(4, "little"))

    def read_ram_words(self, addr: int, count: int) -> list[int]:
        data = self.read_ram(addr, 4 * count)
        return [
            int.from_bytes(data[4 * i:4 * i + 4], "little") for i in range(count)
        ]
