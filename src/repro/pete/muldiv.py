"""The multi-cycle multiply/divide unit behind Hi/Lo (paper Section 5.1.1).

Pete's multiplier sits outside the integer pipeline (MIPS Hi/Lo style), so
multiplies overlap with independent instructions; MFLO/MFHI interlock
until the unit drains.  The datapath is Karatsuba-based (one 17x17 signed
multiplier block, Fig. 5.2), giving a 4-cycle latency; the divider is a
simple binary restoring design (one quotient bit per cycle).

The ISA extensions (Section 5.2) widen the unit into a multiply-accumulate
datapath with a 96-bit (OvFlo, Hi, Lo) accumulator, a x2 path for M2ADDU,
an operand bypass for ADDAU, and a multiplexed 16x16 carry-less multiplier
block for MULGF2/MADDGF2 (Figs. 5.3/5.4).

This module is purely functional + latency bookkeeping; the CPU core asks
``busy_until`` before issuing dependent instructions.
"""

from __future__ import annotations

from repro.fields.inversion import _poly_mul
from repro.trace.events import MULDIV_BUSY, TraceEvent

MASK32 = 0xFFFFFFFF
MASK96 = (1 << 96) - 1

#: Latencies in cycles.
MULT_LATENCY = 4          # Karatsuba multi-cycle multiply (Section 5.1.1)
ACC_ADD_LATENCY = 1       # ADDAU / SHA touch only the adder stage
DIV_LATENCY = 34          # binary restoring: 32 quotient bits + setup


def _signed32(value: int) -> int:
    value &= MASK32
    return value - (1 << 32) if value & 0x8000_0000 else value


class MulDivUnit:
    """Functional state of the Hi/Lo/OvFlo register set."""

    def __init__(self, extensions: bool = False,
                 binary_extensions: bool = False) -> None:
        self.extensions = extensions
        self.binary_extensions = binary_extensions
        self.acc = 0          # 96-bit (OvFlo, Hi, Lo)
        self.busy_until = 0   # absolute cycle when the unit drains
        self.issues = 0
        self.tracer = None    # TraceBus, attached by the owning Pete

    # -- accumulator views ---------------------------------------------------

    @property
    def lo(self) -> int:
        return self.acc & MASK32

    @property
    def hi(self) -> int:
        return (self.acc >> 32) & MASK32

    @property
    def ovflo(self) -> int:
        return (self.acc >> 64) & MASK32

    def set_lo(self, value: int) -> None:
        self.acc = (self.acc & ~MASK32) | (value & MASK32)

    def set_hi(self, value: int) -> None:
        self.acc = (self.acc & ~(MASK32 << 32)) | ((value & MASK32) << 32)

    # -- issue helpers ---------------------------------------------------------

    def _issue(self, now: int, latency: int) -> int:
        """Wait for the unit, then occupy it; returns the issue cycle."""
        start = max(now, self.busy_until)
        self.busy_until = start + latency
        self.issues += 1
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(
                MULDIV_BUSY, start, latency, -1, "pete.muldiv"))
        return start

    # -- operations -------------------------------------------------------------

    def mult(self, now: int, a: int, b: int, signed: bool) -> None:
        if signed:
            product = _signed32(a) * _signed32(b)
        else:
            product = (a & MASK32) * (b & MASK32)
        self.acc = product & ((1 << 64) - 1)  # Hi/Lo only; OvFlo cleared
        self._issue(now, MULT_LATENCY)

    def div(self, now: int, a: int, b: int, signed: bool) -> None:
        if signed:
            a, b = _signed32(a), _signed32(b)
        else:
            a, b = a & MASK32, b & MASK32
        if b == 0:
            quotient, remainder = 0, a  # MIPS leaves this undefined
        else:
            quotient = int(a / b) if signed else a // b
            remainder = a - quotient * b
        self.acc = ((remainder & MASK32) << 32) | (quotient & MASK32)
        self._issue(now, DIV_LATENCY)

    def maddu(self, now: int, a: int, b: int) -> None:
        self._require_ext()
        self.acc = (self.acc + (a & MASK32) * (b & MASK32)) & MASK96
        self._issue(now, MULT_LATENCY)

    def m2addu(self, now: int, a: int, b: int) -> None:
        self._require_ext()
        self.acc = (self.acc + 2 * (a & MASK32) * (b & MASK32)) & MASK96
        self._issue(now, MULT_LATENCY)

    def addau(self, now: int, a: int, b: int) -> None:
        self._require_ext()
        self.acc = (self.acc + ((a & MASK32) << 32) + (b & MASK32)) & MASK96
        self._issue(now, ACC_ADD_LATENCY)

    def sha(self, now: int) -> None:
        self._require_ext()
        self.acc >>= 32
        self._issue(now, ACC_ADD_LATENCY)

    def mulgf2(self, now: int, a: int, b: int) -> None:
        self._require_binary_ext()
        self.acc = _poly_mul(a & MASK32, b & MASK32)
        self._issue(now, MULT_LATENCY)

    def maddgf2(self, now: int, a: int, b: int) -> None:
        self._require_binary_ext()
        self.acc ^= _poly_mul(a & MASK32, b & MASK32)
        self.acc &= MASK96
        self._issue(now, MULT_LATENCY)

    # -- guards --------------------------------------------------------------

    def _require_ext(self) -> None:
        if not self.extensions:
            raise RuntimeError(
                "prime-field ISA extensions are not enabled on this core"
            )

    def _require_binary_ext(self) -> None:
        if not self.binary_extensions:
            raise RuntimeError(
                "binary-field ISA extensions are not enabled on this core"
            )
