"""Pete's cycle-level timing core (paper Sections 2.2 and 5.1).

The simulator executes instructions functionally, in program order, while
charging cycles exactly as the five-stage in-order pipeline would:

* one cycle per instruction in the ideal case (IPC = 1);
* a one-cycle interlock when an instruction consumes the result of the
  immediately preceding load (the classic load-use hazard -- all other RAW
  hazards are covered by forwarding, Fig. 2.4);
* branch delay slots are architectural (MIPS): the instruction after a
  branch/jump always executes.  A 2-bit dynamic predictor (initialized
  backward-taken / forward-not-taken) is consulted per branch; a
  misprediction flushes the speculatively fetched instruction, one cycle;
* ``jr``/``jalr`` pay one cycle for the register-indirect target;
* the multiply/divide unit occupies its datapath for its full latency;
  instructions that need the unit (including MFLO/MFHI and the accumulator
  extensions) interlock until it drains;
* instruction fetch goes to single-cycle ROM (no penalty, one ROM word
  read per instruction) or through the instruction cache (miss penalty +
  ROM line read).

Coprocessor-2 instructions are forwarded to an attached coprocessor model
(Monte or Billie), which returns the number of cycles Pete must stall
(queue full / sync wait).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Protocol

from repro.pete.assembler import Assembled
from repro.pete.icache import ICache, ICacheConfig
from repro.pete.isa import Decoded, PeteISA
from repro.pete.memory import RAM_BASE, MemorySystem
from repro.pete.muldiv import MASK32, MulDivUnit
from repro.pete.stats import CoreStats
from repro.trace.events import COP2, RETIRE, STALL, TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trace.bus import TraceBus


class Halt(Exception):
    """Raised internally when a ``break`` instruction retires."""


class Coprocessor(Protocol):
    """Interface Monte and Billie implement (Section 5.4.1 / 5.5.1)."""

    def issue(self, instr: Decoded, cpu: "Pete") -> int:
        """Handle a COP2 instruction; return stall cycles for Pete."""
        ...


@dataclass
class Program:
    """A program image plus its entry point."""

    image: Assembled
    entry: str = "main"

    @property
    def entry_address(self) -> int:
        return self.image.address_of(self.entry)


def _sources(d: Decoded) -> tuple[int, ...]:
    """Registers read by an instruction (for load-use detection)."""
    m = d.mnemonic
    if m in ("sll", "srl", "sra"):
        return (d.rt,)
    if m in ("sllv", "srlv", "srav"):
        return (d.rs, d.rt)
    if m in ("add", "addu", "sub", "subu", "and", "or", "xor", "nor",
             "slt", "sltu", "beq", "bne", "mult", "multu", "div", "divu",
             "maddu", "m2addu", "addau", "mulgf2", "maddgf2"):
        return (d.rs, d.rt)
    if m in ("addi", "addiu", "slti", "sltiu", "andi", "ori", "xori",
             "blez", "bgtz", "bltz", "bgez", "jr", "jalr", "mthi", "mtlo",
             "lw", "lh", "lhu", "lb", "lbu"):
        return (d.rs,)
    if m in ("sw", "sh", "sb"):
        return (d.rs, d.rt)
    if m == "ctc2":
        return (d.rt,)
    if m.startswith("cop2") and m in ("cop2lda", "cop2ldb", "cop2ldn",
                                      "cop2st", "cop2ld"):
        return (d.rt,)
    return ()


class Pete:
    """The processor: construct, load a program, run."""

    def __init__(
        self,
        extensions: bool = False,
        binary_extensions: bool = False,
        icache: ICacheConfig | None = None,
        coprocessor: Optional[Coprocessor] = None,
        trace: bool = False,
        tracer: "TraceBus | None" = None,
    ) -> None:
        self.stats = CoreStats()
        self.mem = MemorySystem(self.stats)
        self.muldiv = MulDivUnit(extensions, binary_extensions)
        self.icache = ICache(icache, self.stats) if icache else None
        self.coprocessor = coprocessor
        self.regs = [0] * 32
        self.pc = 0
        self.cycle = 0
        self._decoded: dict[int, Decoded] = {}
        self._predictor: dict[int, int] = {}
        self._last_load_reg: int | None = None
        #: when enabled, every retired instruction appends
        #: (cycle, pc, disassembly) -- the Verilator-style waveform
        #: substitute used for debugging generated kernels
        self.trace_enabled = trace
        self.trace_log: list[tuple[int, int, str]] = []
        #: structured observability: a TraceBus (or None, the zero-cost
        #: default) receiving typed events from every component
        self.tracer = tracer
        self.mem.tracer = tracer
        self.mem.clock = self
        self.muldiv.tracer = tracer
        if self.icache is not None:
            self.icache.tracer = tracer
        #: the last program image loaded (symbol table for profilers)
        self.program: Assembled | None = None
        #: superblock fast path (repro.pete.fastpath), built lazily by
        #: ``run(fast=True)`` or attached by the diffexec harness
        self.fastpath = None
        #: delay-slot bookkeeping for the resumable stepping API
        #: (``begin``/``step_instruction``); ``run``'s own loop keeps
        #: the same state in locals for speed
        self._delay_target: int | None = None
        self._in_delay_slot = False

    # ------------------------------------------------------------------
    # Program loading / register access
    # ------------------------------------------------------------------

    def load(self, program: Assembled) -> None:
        data = b"".join(w.to_bytes(4, "little") for w in program.words)
        self.mem.write_rom(program.base, data)
        self._decoded.clear()
        self.program = program
        # after self.program is set: invalidation re-attaches the
        # fast path to the *new* program's shared block map
        if self.fastpath is not None:
            self.fastpath.invalidate()

    def flush_decoded(self) -> None:
        """Drop the decoded-instruction cache (and, with it, every
        compiled superblock -- the closures bake in decoded words)."""
        self._decoded.clear()
        if self.fastpath is not None:
            self.fastpath.invalidate()

    def attach_tracer(self, tracer: "TraceBus | None") -> None:
        """Attach (or, with ``None``, detach) a trace bus mid-session.

        Every component sees the new bus immediately; a fast-mode run
        deoptimizes to the reference interpreter at the next superblock
        boundary, so per-instruction events keep firing.
        """
        self.tracer = tracer
        self.mem.tracer = tracer
        self.muldiv.tracer = tracer
        if self.icache is not None:
            self.icache.tracer = tracer
        if tracer is not None and self.fastpath is not None:
            # a core that has been running fast will now deoptimize to
            # the reference interpreter at the next block boundary
            from repro.pete.fastpath import note_deopt

            note_deopt()

    def clone(self) -> "Pete":
        """An independent copy of this core's full architectural state.

        Used by the lock-step differential harness
        (:mod:`repro.pete.diffexec`) to run the reference and fast-path
        interpreters on identical inputs.  Tracers are not carried over
        (attach one with :meth:`attach_tracer`), and coprocessors hold
        external state the core cannot copy.
        """
        if self.coprocessor is not None:
            raise ValueError("cannot clone a core with a coprocessor "
                             "attached")
        other = Pete(
            extensions=self.muldiv.extensions,
            binary_extensions=self.muldiv.binary_extensions,
            icache=self.icache.config if self.icache else None,
            trace=self.trace_enabled,
        )
        other.mem.rom[:] = self.mem.rom
        other.mem.ram[:] = self.mem.ram
        other.regs[:] = self.regs
        other.pc = self.pc
        other.cycle = self.cycle
        for f_name, value in self.stats.as_dict().items():
            setattr(other.stats, f_name, value)
        other.muldiv.acc = self.muldiv.acc
        other.muldiv.busy_until = self.muldiv.busy_until
        other.muldiv.issues = self.muldiv.issues
        other._predictor = dict(self._predictor)
        other._last_load_reg = self._last_load_reg
        if self.icache is not None:
            other.icache.tags = list(self.icache.tags)
            other.icache._pf_tag = self.icache._pf_tag
        other.program = self.program
        return other

    def set_reg(self, name_or_idx, value: int) -> None:
        idx = name_or_idx
        if isinstance(name_or_idx, str):
            from repro.pete.isa import REGISTERS

            idx = REGISTERS[name_or_idx.lstrip("$")]
        if idx:
            self.regs[idx] = value & MASK32

    def get_reg(self, name_or_idx) -> int:
        idx = name_or_idx
        if isinstance(name_or_idx, str):
            from repro.pete.isa import REGISTERS

            idx = REGISTERS[name_or_idx.lstrip("$")]
        return self.regs[idx]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def begin(self, entry: int) -> None:
        """Reset execution state to start at ``entry``.

        ``run`` calls this internally; the stepping API
        (:meth:`step_instruction`) and the lock-step drivers in
        :mod:`repro.pete.diffexec` call it directly.
        """
        self.pc = entry
        self.regs[29] = RAM_BASE + self.mem.ram_size - 16  # $sp
        self._last_load_reg = None
        self._pending_target = None
        self._delay_target = None
        self._in_delay_slot = False

    def step_instruction(self) -> bool:
        """Execute one instruction on the reference interpreter,
        including delay-slot bookkeeping; returns ``False`` once a
        ``break`` retires (the core has halted)."""
        try:
            self._step()
        except Halt:
            return False
        if self._in_delay_slot:
            assert self._delay_target is not None
            self.pc = self._delay_target
            self._delay_target = None
            self._in_delay_slot = False
        elif self._pending_target is not None:
            self._delay_target = self._pending_target
            self._pending_target = None
            self._in_delay_slot = True
        return True

    def run(self, entry: int, max_cycles: int = 50_000_000,
            fast: bool = False) -> CoreStats:
        """Run from ``entry`` until a ``break`` retires.

        ``fast=True`` routes execution through the superblock fast path
        (:mod:`repro.pete.fastpath`): straight-line runs execute as
        compiled closures with identical architectural state, stats and
        energy activity.  With a tracer attached (or ``trace_enabled``)
        the fast path transparently deoptimizes to the reference
        interpreter so per-instruction events still fire.  The only
        observable difference is the failure boundary of a non-halting
        program: the fast path checks ``max_cycles`` at block (not
        instruction) granularity.
        """
        self.begin(entry)
        if fast:
            return self._run_fast(max_cycles)
        delay_target: int | None = None
        in_delay_slot = False
        try:
            while self.cycle < max_cycles:
                self._step()
                if in_delay_slot:
                    assert delay_target is not None
                    self.pc = delay_target
                    delay_target = None
                    in_delay_slot = False
                elif self._pending_target is not None:
                    delay_target = self._pending_target
                    self._pending_target = None
                    in_delay_slot = True
        except Halt:
            return self.stats
        raise RuntimeError(f"program did not halt within {max_cycles} cycles")

    def _run_fast(self, max_cycles: int) -> CoreStats:
        """Superblock-threaded execution loop (``run(fast=True)``)."""
        if self.fastpath is None:
            from repro.pete.fastpath import Fastpath

            self.fastpath = Fastpath(self)
        fastpath = self.fastpath
        if self.tracer is not None or self.trace_enabled:
            # fast mode requested but tracing is on: the whole run
            # executes on the reference interpreter (counted once here,
            # never inside the block loop)
            from repro.pete.fastpath import note_deopt

            note_deopt()
        while self.cycle < max_cycles:
            # deopt conditions are re-checked at every block boundary,
            # so a tracer attached mid-run takes effect immediately
            if (not self._in_delay_slot and self.tracer is None
                    and not self.trace_enabled):
                block = fastpath.lookup(self.pc)
                if block is not None:
                    block(self)
                    continue
            if not self.step_instruction():
                return self.stats
        raise RuntimeError(f"program did not halt within {max_cycles} cycles")

    _pending_target: int | None = None

    def _fetch(self) -> Decoded:
        if self.icache is not None:
            penalty = self.icache.access(self.pc, now=self.cycle)
            if penalty:
                self.cycle += penalty
                self.stats.stall_cycles += penalty
                if self.tracer is not None:
                    self.tracer.emit(TraceEvent(
                        STALL, self.cycle - penalty, penalty, self.pc,
                        "pete", "icache_miss"))
            word = self.mem.peek_word(self.pc)
        else:
            word = self.mem.fetch_word(self.pc)
        d = self._decoded.get(self.pc)
        if d is None or d.word != word:
            d = PeteISA.decode(word)
            self._decoded[self.pc] = d
        return d

    def _wait_muldiv(self) -> None:
        """Interlock until the multiply/divide unit drains."""
        if self.muldiv.busy_until > self.cycle:
            wait = self.muldiv.busy_until - self.cycle
            self.cycle += wait
            self.stats.stall_cycles += wait
            self.stats.mult_stall_cycles += wait
            if self.tracer is not None:
                self.tracer.emit(TraceEvent(
                    STALL, self.cycle - wait, wait, self.pc, "pete",
                    "muldiv"))

    def _predict(self, pc: int, backward: bool) -> bool:
        state = self._predictor.get(pc)
        if state is None:
            state = 2 if backward else 1  # BTFN initialization
            self._predictor[pc] = state
        return state >= 2

    def _train(self, pc: int, taken: bool) -> None:
        state = self._predictor[pc]
        state = min(3, state + 1) if taken else max(0, state - 1)
        self._predictor[pc] = state

    def _branch(self, d: Decoded, taken: bool) -> None:
        self.stats.branches += 1
        target = self.pc + 4 + 4 * d.imm
        predicted = self._predict(self.pc, d.imm < 0)
        if predicted != taken:
            self.stats.branch_mispredicts += 1
            self.cycle += 1
            self.stats.stall_cycles += 1
            if self.tracer is not None:
                self.tracer.emit(TraceEvent(
                    STALL, self.cycle - 1, 1, self.pc, "pete",
                    "branch_mispredict"))
        self._train(self.pc, taken)
        if taken:
            self._pending_target = target

    def _step(self) -> None:
        step_start = self.cycle
        d = self._fetch()
        self.stats.instructions += 1
        if self.trace_enabled:
            from repro.pete.disassembler import disassemble_decoded

            self.trace_log.append(
                (self.cycle, self.pc, disassemble_decoded(d, self.pc)))

        # load-use interlock
        if self._last_load_reg is not None and self._last_load_reg in _sources(d):
            self.cycle += 1
            self.stats.stall_cycles += 1
            self.stats.load_use_stalls += 1
            if self.tracer is not None:
                self.tracer.emit(TraceEvent(
                    STALL, self.cycle - 1, 1, self.pc, "pete", "load_use"))
        loaded_reg: int | None = None

        regs = self.regs
        m = d.mnemonic
        pc = self.pc
        self._pending_target = None
        advance = True

        if m in ("addu", "addiu", "add", "addi"):
            if m in ("addu", "add"):
                value = regs[d.rs] + regs[d.rt]
                dest = d.rd
            else:
                value = regs[d.rs] + d.imm
                dest = d.rt
            if dest:
                regs[dest] = value & MASK32
        elif m == "lw":
            value = self.mem.load((regs[d.rs] + d.imm) & MASK32, 4)
            if d.rt:
                regs[d.rt] = value
            loaded_reg = d.rt
        elif m == "sw":
            self.mem.store((regs[d.rs] + d.imm) & MASK32, regs[d.rt], 4)
        elif m in ("subu", "sub"):
            if d.rd:
                regs[d.rd] = (regs[d.rs] - regs[d.rt]) & MASK32
        elif m == "and":
            if d.rd:
                regs[d.rd] = regs[d.rs] & regs[d.rt]
        elif m == "or":
            if d.rd:
                regs[d.rd] = regs[d.rs] | regs[d.rt]
        elif m == "xor":
            if d.rd:
                regs[d.rd] = regs[d.rs] ^ regs[d.rt]
        elif m == "nor":
            if d.rd:
                regs[d.rd] = ~(regs[d.rs] | regs[d.rt]) & MASK32
        elif m == "slt":
            if d.rd:
                regs[d.rd] = int(_s32(regs[d.rs]) < _s32(regs[d.rt]))
        elif m == "sltu":
            if d.rd:
                regs[d.rd] = int(regs[d.rs] < regs[d.rt])
        elif m == "slti":
            if d.rt:
                regs[d.rt] = int(_s32(regs[d.rs]) < d.imm)
        elif m == "sltiu":
            if d.rt:
                regs[d.rt] = int(regs[d.rs] < (d.imm & MASK32))
        elif m == "andi":
            if d.rt:
                regs[d.rt] = regs[d.rs] & d.imm
        elif m == "ori":
            if d.rt:
                regs[d.rt] = regs[d.rs] | d.imm
        elif m == "xori":
            if d.rt:
                regs[d.rt] = regs[d.rs] ^ d.imm
        elif m == "lui":
            if d.rt:
                regs[d.rt] = (d.imm << 16) & MASK32
        elif m == "sll":
            if d.rd:
                regs[d.rd] = (regs[d.rt] << d.shamt) & MASK32
        elif m == "srl":
            if d.rd:
                regs[d.rd] = regs[d.rt] >> d.shamt
        elif m == "sra":
            if d.rd:
                regs[d.rd] = (_s32(regs[d.rt]) >> d.shamt) & MASK32
        elif m == "sllv":
            if d.rd:
                regs[d.rd] = (regs[d.rt] << (regs[d.rs] & 31)) & MASK32
        elif m == "srlv":
            if d.rd:
                regs[d.rd] = regs[d.rt] >> (regs[d.rs] & 31)
        elif m == "srav":
            if d.rd:
                regs[d.rd] = (_s32(regs[d.rt]) >> (regs[d.rs] & 31)) & MASK32
        elif m in ("lh", "lhu", "lb", "lbu"):
            size = 2 if m.startswith("lh") else 1
            value = self.mem.load((regs[d.rs] + d.imm) & MASK32, size,
                                  signed=not m.endswith("u"))
            if d.rt:
                regs[d.rt] = value & MASK32
            loaded_reg = d.rt
        elif m in ("sh", "sb"):
            size = 2 if m == "sh" else 1
            self.mem.store((regs[d.rs] + d.imm) & MASK32, regs[d.rt], size)
        elif m == "beq":
            self._branch(d, regs[d.rs] == regs[d.rt])
        elif m == "bne":
            self._branch(d, regs[d.rs] != regs[d.rt])
        elif m == "blez":
            self._branch(d, _s32(regs[d.rs]) <= 0)
        elif m == "bgtz":
            self._branch(d, _s32(regs[d.rs]) > 0)
        elif m == "bltz":
            self._branch(d, _s32(regs[d.rs]) < 0)
        elif m == "bgez":
            self._branch(d, _s32(regs[d.rs]) >= 0)
        elif m == "j":
            self._pending_target = (pc & 0xF0000000) | (d.target << 2)
        elif m == "jal":
            regs[31] = (pc + 8) & MASK32
            self._pending_target = (pc & 0xF0000000) | (d.target << 2)
        elif m == "jr":
            self._pending_target = regs[d.rs]
            self.cycle += 1  # register-indirect target resolves in EX
            self.stats.stall_cycles += 1
            if self.tracer is not None:
                self.tracer.emit(TraceEvent(
                    STALL, self.cycle - 1, 1, pc, "pete", "jr_target"))
        elif m == "jalr":
            if d.rd:
                regs[d.rd] = (pc + 8) & MASK32
            self._pending_target = regs[d.rs]
            self.cycle += 1
            self.stats.stall_cycles += 1
            if self.tracer is not None:
                self.tracer.emit(TraceEvent(
                    STALL, self.cycle - 1, 1, pc, "pete", "jr_target"))
        elif m in ("mult", "multu"):
            self._wait_muldiv()
            self.muldiv.mult(self.cycle, regs[d.rs], regs[d.rt],
                             signed=(m == "mult"))
            self.stats.mult_issues += 1
        elif m in ("div", "divu"):
            self._wait_muldiv()
            self.muldiv.div(self.cycle, regs[d.rs], regs[d.rt],
                            signed=(m == "div"))
            self.stats.div_issues += 1
        elif m == "mflo":
            self._wait_muldiv()
            if d.rd:
                regs[d.rd] = self.muldiv.lo
        elif m == "mfhi":
            self._wait_muldiv()
            if d.rd:
                regs[d.rd] = self.muldiv.hi
        elif m == "mtlo":
            self._wait_muldiv()
            self.muldiv.set_lo(regs[d.rs])
        elif m == "mthi":
            self._wait_muldiv()
            self.muldiv.set_hi(regs[d.rs])
        elif m == "maddu":
            self._wait_muldiv()
            self.muldiv.maddu(self.cycle, regs[d.rs], regs[d.rt])
            self.stats.mult_issues += 1
        elif m == "m2addu":
            self._wait_muldiv()
            self.muldiv.m2addu(self.cycle, regs[d.rs], regs[d.rt])
            self.stats.mult_issues += 1
        elif m == "addau":
            self._wait_muldiv()
            self.muldiv.addau(self.cycle, regs[d.rs], regs[d.rt])
        elif m == "sha":
            self._wait_muldiv()
            self.muldiv.sha(self.cycle)
        elif m == "mulgf2":
            self._wait_muldiv()
            self.muldiv.mulgf2(self.cycle, regs[d.rs], regs[d.rt])
            self.stats.mult_issues += 1
        elif m == "maddgf2":
            self._wait_muldiv()
            self.muldiv.maddgf2(self.cycle, regs[d.rs], regs[d.rt])
            self.stats.mult_issues += 1
        elif m == "break":
            if self.tracer is not None:
                # the halt retires (it fetched and counted) but adds no
                # datapath cycle: duration covers only its stalls
                self.tracer.emit(TraceEvent(
                    RETIRE, step_start, self.cycle - step_start, pc,
                    "pete", m, -1))
            raise Halt()
        elif m == "syscall":
            pass  # treated as a no-op in the bare-metal environment
        elif m == "ctc2" or m.startswith("cop2"):
            if self.coprocessor is None:
                raise RuntimeError(f"{m} with no coprocessor attached")
            self.stats.cop2_issues += 1
            if self.tracer is not None:
                self.tracer.emit(TraceEvent(
                    COP2, self.cycle, 0, pc, "pete", m))
            stall = self.coprocessor.issue(d, self)
            if stall:
                self.cycle += stall
                self.stats.stall_cycles += stall
                if self.tracer is not None:
                    self.tracer.emit(TraceEvent(
                        STALL, self.cycle - stall, stall, pc, "pete",
                        "cop2"))
        else:  # pragma: no cover - decode guarantees coverage
            raise RuntimeError(f"unimplemented mnemonic {m}")

        self._last_load_reg = loaded_reg if loaded_reg else None
        self.cycle += 1
        self.stats.cycles = self.cycle
        if self.tracer is not None:
            target = self._pending_target
            self.tracer.emit(TraceEvent(
                RETIRE, step_start, self.cycle - step_start, pc, "pete",
                m, -1 if target is None else target))
        if advance:
            self.pc += 4


def _s32(value: int) -> int:
    return value - (1 << 32) if value & 0x8000_0000 else value
