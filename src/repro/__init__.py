"""Reproduction of *The Design Space of Ultra-low Energy Asymmetric
Cryptography* (Targhetta, Owen & Gratz, ISPASS 2014).

The package implements, from scratch:

* all ten NIST finite fields (five prime, five binary) with the paper's
  multi-precision algorithms (:mod:`repro.fields`, :mod:`repro.mp`);
* elliptic-curve arithmetic in mixed Jacobian-affine and mixed
  Lopez-Dahab-affine coordinates with the paper's scalar-multiplication
  algorithms (:mod:`repro.ec`);
* ECDSA signing and verification (:mod:`repro.ecdsa`);
* "Pete", a cycle-level timing simulator of the paper's 5-stage MIPS-subset
  RISC core, with its assembler, multi-cycle Karatsuba multiplier, ISA
  extensions, memories and instruction cache (:mod:`repro.pete`);
* generated assembly kernels for the multi-precision inner loops
  (:mod:`repro.kernels`);
* "Monte", the microcoded prime-field accelerator built around the FFAU, and
  "Billie", the binary-field accelerator (:mod:`repro.accel`);
* a 45 nm energy model (:mod:`repro.energy`) and the whole-system ECDSA
  energy/latency model with the paper's six microarchitecture configurations
  (:mod:`repro.model`);
* a harness that regenerates every table and figure of the paper's
  evaluation chapter (:mod:`repro.harness`).
"""

__version__ = "1.0.0"

# Public API is re-exported lazily so that importing light-weight subpackages
# (e.g. repro.fields) does not pull in the whole simulator stack.
_LAZY_EXPORTS = {
    "CURVES": ("repro.ec.curves", "CURVES"),
    "get_curve": ("repro.ec.curves", "get_curve"),
    "generate_keypair": ("repro.ecdsa", "generate_keypair"),
    "sign": ("repro.ecdsa", "sign"),
    "verify": ("repro.ecdsa", "verify"),
    "ALL_CONFIGS": ("repro.model.configs", "ALL_CONFIGS"),
    "get_config": ("repro.model.configs", "get_config"),
    "SystemModel": ("repro.model.system", "SystemModel"),
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attr = _LAZY_EXPORTS[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

__all__ = [
    "CURVES",
    "get_curve",
    "generate_keypair",
    "sign",
    "verify",
    "ALL_CONFIGS",
    "get_config",
    "SystemModel",
    "__version__",
]
