"""Technology-node constants (paper Chapter 6 and Section 2.3).

Power in CMOS (Eqs. 2.7-2.10): static P = V * I_leak, switching
P = 1/2 * alpha * C * f * V^2.  At the level this model works, the node
contributes a per-gate dynamic energy scale and a per-gate leakage scale;
everything else is component activity.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechnologyNode:
    """A fabrication node's energy scales."""

    name: str
    feature_nm: int
    vdd_logic: float          # V
    vdd_memory: float         # V
    #: dynamic energy per gate-equivalent toggle, femtojoules
    fj_per_gate_toggle: float
    #: leakage power per kilo-gate-equivalent, microwatts
    uw_leak_per_kgate: float

    def dynamic_energy_pj(self, gate_toggles: float) -> float:
        return gate_toggles * self.fj_per_gate_toggle / 1000.0

    def leakage_uw(self, kgates: float) -> float:
        return kgates * self.uw_leak_per_kgate


#: The paper's node: 45 nm, 0.9 V logic / 0.7 V memory for the FFAU study.
TECH_45NM = TechnologyNode(
    name="45nm-LP",
    feature_nm=45,
    vdd_logic=0.9,
    vdd_memory=0.7,
    fj_per_gate_toggle=1.1,
    uw_leak_per_kgate=14.0,
)

#: Clock rates used by the evaluation.
SYSTEM_CLOCK_HZ = 333e6       # Pete & friends: 3 ns period (Section 5.1)
SYSTEM_CLOCK_NS = 3.0
FFAU_STUDY_CLOCK_HZ = 100e6   # standalone FFAU study (Section 7.9)
FFAU_STUDY_CLOCK_NS = 10.0
