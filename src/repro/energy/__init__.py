"""45 nm energy model (paper Chapter 6).

The original work estimates logic power with Synopsys PrimeTime on
post-synthesis netlists and memory energy with HP Cacti, at a 45 nm node
with a 3 ns clock (333 MHz) for the full systems and 100 MHz / 0.9 V for
the standalone FFAU study.  We reproduce the same *functional form*:

    E_total = sum(activity_event * E_event) + sum(P_static) * T

with per-event energies from an analytic memory model
(:mod:`repro.energy.memory_model`) and per-component logic coefficients
(:mod:`repro.energy.components`) calibrated once, in
:mod:`repro.energy.calibration`, against the paper's published absolute
anchors (FFAU Tables 7.3/7.4, ARM Table 7.5) and ratio bands.
"""

from repro.energy.accounting import EnergyBreakdown, EnergyReport
from repro.energy.calibration import CALIBRATION, Calibration
from repro.energy.memory_model import MemoryEnergyModel
from repro.energy.technology import TECH_45NM, TechnologyNode

__all__ = [
    "EnergyReport",
    "EnergyBreakdown",
    "Calibration",
    "CALIBRATION",
    "MemoryEnergyModel",
    "TechnologyNode",
    "TECH_45NM",
]
