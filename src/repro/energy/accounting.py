"""Energy accounting: activity vectors -> component breakdowns.

An :class:`EnergyReport` is what every figure plots: total energy in
microjoules per operation, broken down by component (Pete / ROM / RAM /
uncore / Monte / Billie), plus average power split into static and
dynamic (Fig. 7.10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.technology import SYSTEM_CLOCK_NS


@dataclass
class EnergyBreakdown:
    """Per-component dynamic energy plus aggregate static energy (nJ)."""

    dynamic_nj: dict[str, float] = field(default_factory=dict)
    static_nj: dict[str, float] = field(default_factory=dict)

    def add_dynamic(self, component: str, nj: float) -> None:
        self.dynamic_nj[component] = self.dynamic_nj.get(component, 0.0) + nj

    def add_static(self, component: str, nj: float) -> None:
        self.static_nj[component] = self.static_nj.get(component, 0.0) + nj

    def component_total_nj(self, component: str) -> float:
        return (self.dynamic_nj.get(component, 0.0)
                + self.static_nj.get(component, 0.0))

    @property
    def components(self) -> list[str]:
        return sorted(set(self.dynamic_nj) | set(self.static_nj))


@dataclass
class EnergyReport:
    """Energy/power summary of one simulated operation."""

    label: str
    cycles: int
    breakdown: EnergyBreakdown
    clock_ns: float = SYSTEM_CLOCK_NS

    @property
    def time_s(self) -> float:
        return self.cycles * self.clock_ns * 1e-9

    @property
    def total_nj(self) -> float:
        return (sum(self.breakdown.dynamic_nj.values())
                + sum(self.breakdown.static_nj.values()))

    @property
    def total_uj(self) -> float:
        return self.total_nj / 1000.0

    @property
    def dynamic_power_mw(self) -> float:
        if self.cycles == 0:
            return 0.0
        return sum(self.breakdown.dynamic_nj.values()) * 1e-9 / self.time_s * 1e3

    @property
    def static_power_mw(self) -> float:
        if self.cycles == 0:
            return 0.0
        return sum(self.breakdown.static_nj.values()) * 1e-9 / self.time_s * 1e3

    @property
    def power_mw(self) -> float:
        return self.dynamic_power_mw + self.static_power_mw

    def component_uj(self, component: str) -> float:
        return self.breakdown.component_total_nj(component) / 1000.0

    def merged(self, other: "EnergyReport", label: str) -> "EnergyReport":
        """Sum two reports (e.g. Sign + Verify)."""
        out = EnergyBreakdown()
        for src in (self.breakdown, other.breakdown):
            for comp, nj in src.dynamic_nj.items():
                out.add_dynamic(comp, nj)
            for comp, nj in src.static_nj.items():
                out.add_static(comp, nj)
        return EnergyReport(label, self.cycles + other.cycles, out,
                            self.clock_ns)

    def summary(self) -> str:
        parts = ", ".join(
            f"{comp}={self.breakdown.component_total_nj(comp) / 1000:.1f}uJ"
            for comp in self.breakdown.components
        )
        return (f"{self.label}: {self.total_uj:.1f} uJ, "
                f"{self.cycles / 1e5:.1f}x100K cycles, "
                f"{self.power_mw:.2f} mW ({parts})")
