"""Calibrated per-event energy coefficients (DESIGN.md Section 6).

Every constant here plays the role of a PrimeTime/Cacti output in the
original methodology.  Values are set once, from two kinds of anchors:

* **absolute anchors** published in the paper -- the FFAU power table
  (Table 7.3: e.g. the 32-bit FFAU burns 659.9 uW dynamic at 100 MHz,
  i.e. ~6.6 pJ/cycle) and the ARM Cortex-M3 reference (Table 7.5:
  4.5 mW at 100 MHz / 0.9 V);
* **ratio bands** from the evaluation chapter (ISA extensions 1.32-1.45x,
  Monte 5.17-6.34x, Monte-config power 18.6 % below baseline, Pete's
  power dropping ~23 % while stalled behind Monte, static power ~8.5 % of
  total, Billie's power growing ~linearly with field size) -- asserted by
  ``tests/model/test_paper_bands.py``.

Nothing in this module is *measured* by our simulators; everything
measured (cycles, event counts) lives upstream.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from functools import lru_cache

from repro.energy.memory_model import (
    MemoryEnergyModel,
    data_ram,
    icache_macros,
    program_rom,
)


@dataclass(frozen=True)
class PeteCoefficients:
    """Pete's core energy (45 nm, 333 MHz, 0.9 V).

    The paper observes that the clock network and registers dominate the
    core's power and "still have a high activity factor while stalled"
    (Section 7.1) -- hence the small active/stall gap.  The ~23 % drop
    seen when Pete idles behind Monte emerges from the stall-cycle mix.
    """

    active_pj: float = 12.5       # dynamic energy per non-stalled cycle
    stall_pj: float = 9.9         # dynamic energy per stalled cycle
    static_uw: float = 650.0
    #: multiplicative factor on active energy with the ISA extensions
    #: (wider accumulator adder + OvFlo register; <1 % at system level,
    #: Section 7.4)
    isa_ext_factor: float = 1.03
    #: additional factor for the carry-less multiplier block (Fig. 5.4)
    binary_ext_factor: float = 1.015


@dataclass(frozen=True)
class UncoreCoefficients:
    """The "uncore": ROM controller, instruction/data buffers and
    multiplexing logic added with the instruction cache (Section 7.1)."""

    active_pj: float = 3.2        # per cycle while the core runs
    static_uw: float = 150.0


@dataclass(frozen=True)
class MonteCoefficients:
    """Monte-side coefficients beyond the FFAU itself."""

    #: queue/decode/DMA engine energy per coprocessor instruction
    issue_pj: float = 2.6
    #: buffer write+read energy per DMA word moved (operand/result
    #: buffers are small register-file macros)
    dma_word_pj: float = 4.0
    #: FFAU idle clocking (no clock gating, Section 7.4)
    ffau_idle_pj: float = 3.4
    #: residual idle energy with clock gating (Section 8 future work)
    ffau_idle_gated_pj: float = 0.3
    static_uw: float = 520.0      # FFAU (159 uW, Table 7.3) + buffers/queue


@dataclass(frozen=True)
class BillieCoefficients:
    """Billie's energy grows ~linearly with the field size m because the
    flip-flop register file dominates (Section 7.4: "over half of
    Billie's energy is consumed in the synthesized register file")."""

    active_base_pj: float = 6.0
    active_per_bit_pj: float = 0.17
    #: idle clock-network fraction (no clock gating: Billie idles 62 % of
    #: an ECDSA yet keeps burning power, Section 7.4)
    idle_fraction: float = 0.35
    static_base_uw: float = 150.0
    static_per_bit_uw: float = 4.45   # 1.45x Pete's static at m = 163

    #: replacing the flip-flop register file with an SRAM macro removes
    #: most of its clock/data toggling ("over half of Billie's energy is
    #: consumed in the synthesized register file", Section 8); the SRAM
    #: reads/writes cost ~1/3 of the flip-flop array's per-cycle energy
    sram_regfile_active_factor: float = 0.62
    sram_regfile_static_factor: float = 0.70
    #: residual clock-tree energy when gated off
    gated_idle_factor: float = 0.06

    def active_pj(self, m: int, sram_regfile: bool = False) -> float:
        pj = self.active_base_pj + self.active_per_bit_pj * m
        if sram_regfile:
            pj *= self.sram_regfile_active_factor
        return pj

    def idle_pj(self, m: int, sram_regfile: bool = False,
                gated: bool = False) -> float:
        pj = self.idle_fraction * self.active_pj(m, sram_regfile)
        if gated:
            pj *= self.gated_idle_factor / self.idle_fraction
        return pj

    def static_uw(self, m: int, sram_regfile: bool = False) -> float:
        uw = self.static_base_uw + self.static_per_bit_uw * m
        if sram_regfile:
            uw *= self.sram_regfile_static_factor
        return uw


@dataclass(frozen=True)
class Calibration:
    """The complete coefficient set plus the shared memory models.

    ``rom_energy_scale`` / ``ram_energy_scale`` exist for the sensitivity
    study (:mod:`repro.model.sensitivity`): they multiply the memory
    macros' per-access energies without touching the macro geometry.
    """

    pete: PeteCoefficients = field(default_factory=PeteCoefficients)
    uncore: UncoreCoefficients = field(default_factory=UncoreCoefficients)
    monte: MonteCoefficients = field(default_factory=MonteCoefficients)
    billie: BillieCoefficients = field(default_factory=BillieCoefficients)
    rom_energy_scale: float = 1.0
    ram_energy_scale: float = 1.0

    def fingerprint(self) -> str:
        """Stable content hash over every coefficient.

        Two calibrations with identical coefficients share a
        fingerprint; any edit to a constant changes it.  The sweep
        cache (:mod:`repro.sweep`) and the kernel-measurement cache
        (:class:`repro.kernels.runner.KernelRunner`) fold this into
        their keys so results from different calibrations can never be
        served for one another.
        """
        return _fingerprint(self)

    # memory macros
    def rom(self, line_port: bool = False) -> MemoryEnergyModel:
        return _scaled(program_rom(line_port), self.rom_energy_scale)

    def ram(self, dual_port: bool = False) -> MemoryEnergyModel:
        return _scaled(data_ram(dual_port), self.ram_energy_scale)

    def icache(self, size_bytes: int) -> MemoryEnergyModel:
        return icache_macros(size_bytes)


@lru_cache(maxsize=None)
def _fingerprint(cal: Calibration) -> str:
    blob = json.dumps(asdict(cal), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _scaled(macro: MemoryEnergyModel, scale: float) -> MemoryEnergyModel:
    if scale == 1.0:
        return macro
    from dataclasses import replace as dc_replace

    return dc_replace(macro, _e_fixed_pj=macro._e_fixed_pj * scale,
                      _e_scale_pj=macro._e_scale_pj * scale)


#: The calibration used by every experiment.
CALIBRATION = Calibration()
