"""Cacti-like SRAM/ROM energy model (paper Chapter 6).

Cacti models access energy growing roughly with the square root of
capacity (bitline/wordline lengths) plus a fixed decode/sense overhead,
and leakage growing linearly with capacity.  The paper used Cacti 6.0 for
every RAM and -- lacking a ROM model -- assumed ROM dynamic energy equal
to a comparable RAM with *zero* static power.  We adopt exactly those
assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt

from repro.energy.technology import TECH_45NM, TechnologyNode


@dataclass(frozen=True)
class MemoryEnergyModel:
    """Energy/leakage for one memory macro."""

    capacity_bytes: int
    port_bits: int = 32
    is_rom: bool = False
    dual_port: bool = False
    tech: TechnologyNode = TECH_45NM

    # Calibration coefficients (fit so that the model reproduces the
    # ballpark Cacti 6.0 numbers the paper reports indirectly: a 16 KB
    # RAM read costs a few pJ, a 256 KB ROM read tens of pJ).
    _e_fixed_pj: float = 1.1         # decode + sense fixed cost
    _e_scale_pj: float = 0.033       # per sqrt(byte), 32-bit word
    _leak_uw_per_kb: float = 14.0    # leakage per KB at 45 nm LP

    def read_energy_pj(self, bits: int | None = None) -> float:
        """Energy of one read of ``bits`` (default: the port width)."""
        bits = self.port_bits if bits is None else bits
        words = max(1, bits // 32)
        base = self._e_fixed_pj + self._e_scale_pj * sqrt(self.capacity_bytes)
        # wider accesses amortize decode: cost grows sub-linearly in words
        width_factor = 1.0 + 0.55 * (words - 1)
        port_factor = 1.12 if self.dual_port else 1.0
        return base * width_factor * port_factor

    def write_energy_pj(self, bits: int | None = None) -> float:
        """Writes cost slightly more than reads (full bitline swing)."""
        return 1.15 * self.read_energy_pj(bits)

    def leakage_uw(self) -> float:
        """Static power of the macro; zero for ROM by the paper's
        explicit assumption."""
        if self.is_rom:
            return 0.0
        port_factor = 1.33 if self.dual_port else 1.0  # 8T vs 6T cells
        return self._leak_uw_per_kb * self.capacity_bytes / 1024 * port_factor


# The paper's memory macros ------------------------------------------------

def program_rom(line_port: bool = False) -> MemoryEnergyModel:
    """256 KB program ROM; 32-bit dual-port baseline or 128-bit
    single-port behind the instruction cache (Section 5.3.2)."""
    return MemoryEnergyModel(
        capacity_bytes=256 * 1024,
        port_bits=128 if line_port else 32,
        is_rom=True,
        dual_port=not line_port,
    )


def flash_program_memory(line_port: bool = False) -> MemoryEnergyModel:
    """256 KB NOR-flash program store (Section 8 future work): reads cost
    ~2.6x a mask-ROM read (charge pumps, sense margin) and standby
    leakage is negligible like ROM's."""
    rom = program_rom(line_port)
    return MemoryEnergyModel(
        capacity_bytes=rom.capacity_bytes,
        port_bits=rom.port_bits,
        is_rom=True,
        dual_port=rom.dual_port,
        _e_fixed_pj=rom._e_fixed_pj * 2.6,
        _e_scale_pj=rom._e_scale_pj * 2.6,
    )


def data_ram(dual_port: bool = False) -> MemoryEnergyModel:
    """16 KB data RAM; true dual-port when Monte/Billie share it."""
    return MemoryEnergyModel(
        capacity_bytes=16 * 1024, port_bits=32, dual_port=dual_port
    )


def icache_macros(size_bytes: int) -> MemoryEnergyModel:
    """Instruction-cache data+tag macros, modeled as one small RAM."""
    # tag array adds ~6% capacity at 16-byte lines with ~20-bit tags
    return MemoryEnergyModel(capacity_bytes=int(size_bytes * 1.06),
                             port_bits=32)


def ffau_scratchpad(words: int, width_bits: int) -> MemoryEnergyModel:
    """The FFAU's AB/T scratchpads (4k-deep, Section 5.4.2.1)."""
    return MemoryEnergyModel(
        capacity_bytes=words * width_bits // 8,
        port_bits=width_bits,
        dual_port=True,
    )
