"""Per-component power models for the accelerators (paper Section 7.9).

The FFAU area/power table reproduces the paper's "front-end synthesis"
characterization (Table 7.3): area grows ~w^1.4 in the datapath width,
static power tracks area, and dynamic energy per cycle is ~0.21 pJ per
datapath bit.  The published 45 nm numbers are embedded as the anchor
points of the model (this is the calibration the DESIGN.md policy
allows); intermediate widths interpolate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.technology import FFAU_STUDY_CLOCK_NS

#: Table 7.3 anchors: width -> (area cell-units, static uW, dynamic uW)
#: at 100 MHz / 0.9 V logic / 0.7 V memory, 192-bit operands.
FFAU_SYNTHESIS_TABLE: dict[int, tuple[int, float, float]] = {
    8: (2_091, 32.3, 166.2),
    16: (4_244, 59.3, 311.9),
    32: (11_329, 159.1, 659.9),
    64: (36_582, 530.6, 1_472.7),
}

#: Memory (scratchpad) growth per key size: static power rises slightly
#: with the larger field because the scratchpads deepen (Table 7.3 shows
#: +2-4 uW from 192 to 384 bits).
FFAU_STATIC_PER_EXTRA_WORD_UW = 0.12


@dataclass(frozen=True)
class FFAUPower:
    """Power model for one FFAU datapath width."""

    width: int

    @property
    def area_cells(self) -> int:
        return FFAU_SYNTHESIS_TABLE[self.width][0]

    def static_uw(self, key_bits: int = 192) -> float:
        base = FFAU_SYNTHESIS_TABLE[self.width][1]
        extra_words = max(0, (key_bits - 192) // 8)
        return base + extra_words * FFAU_STATIC_PER_EXTRA_WORD_UW * 8

    def dynamic_pj_per_cycle(self, key_bits: int = 192) -> float:
        """Busy-cycle dynamic energy; nearly constant in key size (the
        datapath is fully utilized either way, Section 7.9)."""
        dyn_uw = FFAU_SYNTHESIS_TABLE[self.width][2]
        scale = 1.0 + 0.05 * max(0, (key_bits - 192)) / 192
        return dyn_uw * FFAU_STUDY_CLOCK_NS / 1000.0 * scale

    def average_power_uw(self, key_bits: int, busy_fraction: float = 1.0
                         ) -> float:
        """Average power during a computation at the 100 MHz study clock."""
        return (self.static_uw(key_bits)
                + busy_fraction * self.dynamic_pj_per_cycle(key_bits)
                / FFAU_STUDY_CLOCK_NS * 1000.0)


def billie_area_cells(m: int, pete_area_cells: int = 31_000) -> float:
    """Billie's area relative to Pete (Section 7.3): 1.45x Pete at
    m = 163 and ~5x Pete at m = 571 -- linear in m through those points."""
    slope = (5.0 - 1.45) / (571 - 163)
    return pete_area_cells * (1.45 + slope * (m - 163))


def karatsuba_multiplier_power_factors() -> dict[str, tuple[float, float]]:
    """Relative (dynamic, static) core power of Pete with each multiplier
    option, normalized to the Karatsuba multi-cycle design (Section 7.8's
    validation measurements)."""
    return {
        # design: (dynamic factor, static factor) vs Karatsuba
        "karatsuba": (1.0, 1.0),
        "operand_scan_multicycle": (1.0492, 0.9665),  # +4.69 % dyn
        "parallel_pipelined": (1.1186, 1.3966),       # +10.6 % dyn, +28.4 % st
    }
