"""Energy of one *simulated* run: CoreStats/MonteStats/BillieStats -> joules.

:mod:`repro.model.system` synthesizes activity vectors from operation
counts; this module is its cycle-accurate sibling: it prices the event
counters an actual Pete simulation produced, with the same calibrated
coefficients.  The profiler (:mod:`repro.trace.profiler`) charges the
identical per-event energies as it attributes them to program counters,
so a profile's per-symbol energies must sum to the report built here --
the reconciliation tests in ``tests/trace`` enforce that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.accounting import EnergyBreakdown, EnergyReport
from repro.energy.calibration import CALIBRATION, Calibration
from repro.energy.components import FFAUPower
from repro.energy.technology import SYSTEM_CLOCK_NS


@dataclass
class RunEnergyParams:
    """What a simulated run was configured as, priced into pJ-per-event.

    Construct once per run; the derived ``*_pj`` attributes are the
    single source of per-event dynamic energies shared by
    :func:`report_from_corestats`, the profiler and the power sampler.
    """

    cal: Calibration = None  # type: ignore[assignment]
    prime_isa_ext: bool = False
    binary_isa_ext: bool = False
    icache_size: int | None = None
    icache_prefetch: bool = False
    has_monte: bool = False
    monte_key_bits: int = 192
    has_billie: bool = False
    billie_m: int = 163
    billie_sram_regfile: bool = False
    clock_ns: float = SYSTEM_CLOCK_NS

    def __post_init__(self) -> None:
        cal = self.cal or CALIBRATION
        self.cal = cal
        factor = 1.0
        if self.prime_isa_ext:
            factor *= cal.pete.isa_ext_factor
        if self.binary_isa_ext:
            factor *= cal.pete.binary_ext_factor
        self.pete_active_pj = cal.pete.active_pj * factor
        self.pete_stall_pj = cal.pete.stall_pj
        rom32 = cal.rom(line_port=False)
        rom128 = cal.rom(line_port=True)
        self.rom_word_pj = rom32.read_energy_pj()
        self.rom_line_pj = rom128.read_energy_pj(128)
        accelerated = self.has_monte or self.has_billie
        ram = cal.ram(dual_port=accelerated)
        self.ram_read_pj = ram.read_energy_pj()
        self.ram_write_pj = ram.write_energy_pj()
        self.ram_leak_uw = ram.leakage_uw()
        if self.icache_size is not None:
            icache = cal.icache(self.icache_size)
            self.icache_access_pj = icache.read_energy_pj()
            if self.icache_prefetch:
                self.icache_access_pj *= 1.12  # stream-buffer tag compare
            self.icache_fill_pj = icache.write_energy_pj(128)
            self.icache_leak_uw = icache.leakage_uw()
            self.uncore_active_pj = cal.uncore.active_pj
            self.uncore_static_uw = cal.uncore.static_uw
        else:
            self.icache_access_pj = 0.0
            self.icache_fill_pj = 0.0
            self.icache_leak_uw = 0.0
            self.uncore_active_pj = 0.0
            self.uncore_static_uw = 0.0
        if self.has_monte:
            self.ffau_busy_pj = FFAUPower(32).dynamic_pj_per_cycle(
                self.monte_key_bits)
            self.ffau_idle_pj = cal.monte.ffau_idle_pj
            self.dma_word_pj = cal.monte.dma_word_pj
            self.cop2_issue_pj = cal.monte.issue_pj
            self.monte_static_uw = cal.monte.static_uw
        else:
            self.ffau_busy_pj = self.ffau_idle_pj = 0.0
            self.dma_word_pj = self.cop2_issue_pj = 0.0
            self.monte_static_uw = 0.0
        if self.has_billie:
            self.billie_active_pj = cal.billie.active_pj(
                self.billie_m, self.billie_sram_regfile)
            self.billie_idle_pj = cal.billie.idle_pj(
                self.billie_m, self.billie_sram_regfile)
            self.billie_static_uw = cal.billie.static_uw(
                self.billie_m, self.billie_sram_regfile)
        else:
            self.billie_active_pj = self.billie_idle_pj = 0.0
            self.billie_static_uw = 0.0

    # ------------------------------------------------------------------

    def static_nj(self, component: str, cycles: float) -> float:
        """Static energy of one component over ``cycles`` cycles."""
        time_s = cycles * self.clock_ns * 1e-9
        uw = {
            "Pete": self.cal.pete.static_uw,
            "RAM": self.ram_leak_uw,
            "Uncore": self.uncore_static_uw + self.icache_leak_uw,
            "Monte": self.monte_static_uw,
            "Billie": self.billie_static_uw,
        }[component]
        return uw * time_s * 1e3

    def static_components(self) -> list[str]:
        out = ["Pete", "RAM"]
        if self.icache_size is not None:
            out.append("Uncore")
        if self.has_monte:
            out.append("Monte")
        if self.has_billie:
            out.append("Billie")
        return out


def report_from_corestats(stats, params: RunEnergyParams,
                          label: str = "run", monte_stats=None,
                          billie_stats=None) -> EnergyReport:
    """Price one simulated run's counters into an :class:`EnergyReport`.

    ``stats`` is the run's :class:`~repro.pete.stats.CoreStats`;
    ``monte_stats`` / ``billie_stats`` add the coprocessor's own counters
    when one was attached.
    """
    p = params
    cycles = stats.cycles
    bd = EnergyBreakdown()

    bd.add_dynamic("Pete", (stats.active_cycles * p.pete_active_pj
                            + stats.stall_cycles * p.pete_stall_pj) / 1e3)
    bd.add_static("Pete", p.static_nj("Pete", cycles))

    bd.add_dynamic("ROM", (stats.rom_word_reads * p.rom_word_pj
                           + stats.rom_line_reads * p.rom_line_pj) / 1e3)

    ram_reads = float(stats.ram_reads)
    ram_writes = float(stats.ram_writes)
    if monte_stats is not None:
        load_words = getattr(monte_stats, "dma_load_words", 0)
        ram_reads += load_words
        ram_writes += monte_stats.dma_words - load_words
    if billie_stats is not None:
        words_per_op = -(-p.billie_m // 32)
        ram_reads += billie_stats.loads * words_per_op
        ram_writes += billie_stats.stores * words_per_op
    bd.add_dynamic("RAM", (ram_reads * p.ram_read_pj
                           + ram_writes * p.ram_write_pj) / 1e3)
    bd.add_static("RAM", p.static_nj("RAM", cycles))

    if p.icache_size is not None:
        bd.add_dynamic("Uncore",
                       (stats.icache_accesses * p.icache_access_pj
                        + stats.icache_fills * p.icache_fill_pj
                        + stats.instructions * p.uncore_active_pj) / 1e3)
        bd.add_static("Uncore", p.static_nj("Uncore", cycles))

    if monte_stats is not None:
        idle = max(0, cycles - monte_stats.ffau_busy_cycles)
        bd.add_dynamic("Monte",
                       (monte_stats.ffau_busy_cycles * p.ffau_busy_pj
                        + idle * p.ffau_idle_pj
                        + monte_stats.dma_words * p.dma_word_pj
                        + stats.cop2_issues * p.cop2_issue_pj) / 1e3)
        bd.add_static("Monte", p.static_nj("Monte", cycles))

    if billie_stats is not None:
        idle = max(0, cycles - billie_stats.busy_cycles)
        bd.add_dynamic("Billie",
                       (billie_stats.busy_cycles * p.billie_active_pj
                        + idle * p.billie_idle_pj) / 1e3)
        bd.add_static("Billie", p.static_nj("Billie", cycles))

    return EnergyReport(label, cycles, bd, p.clock_ns)
