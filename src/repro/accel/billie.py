"""'Billie': the non-configurable GF(2^m) accelerator (paper Section 5.5).

Architecture (Fig. 5.12): a four-entry instruction queue fed by Pete over
the coprocessor interface; a sixteen-entry register file of full
field-width registers (two read/write ports); four functional units --
digit-serial multiplier, single-cycle hardwired squarer, full-width adder,
and a load/store unit bridging the 32-bit shared-RAM port to the
field-width register file.  Write-back ports are shared pairwise
(multiplier+squarer, adder+load/store) with fixed priority.

The model is an event-timing simulator: instructions carry issue
timestamps, dispatch when their functional unit is free and their source
registers are ready, and write back one cycle after completion.  Field
values are computed exactly, so a whole scalar multiplication run on
Billie is checked against :func:`repro.ec.scalar.sliding_window_mul`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.digit_serial import (
    digit_serial_cycles,
    digit_serial_mul,
    hardwired_square,
)
from repro.fields.nist import NIST_BINARY_POLYS
from repro.trace.events import BILLIE_BUSY, BILLIE_RAM, TraceEvent


@dataclass(frozen=True)
class BillieConfig:
    """Synthesis-time parameters."""

    m: int = 163            # field degree (fixed at fabrication)
    digit: int = 3          # multiplier digit width D
    n_registers: int = 16
    queue_depth: int = 4
    ram_port_bits: int = 32

    @property
    def load_cycles(self) -> int:
        """Load/store unit: one 32-bit beat per cycle plus handshake."""
        return -(-self.m // self.ram_port_bits) + 2

    @property
    def mul_cycles(self) -> int:
        return digit_serial_cycles(self.m, self.digit)

    #: squarer and adder complete in one cycle plus write-back
    sqr_cycles: int = 2
    add_cycles: int = 2


@dataclass
class BillieStats:
    """Activity counters for the energy model."""

    busy_cycles: int = 0        # any functional unit active
    mul_ops: int = 0
    sqr_ops: int = 0
    add_ops: int = 0
    loads: int = 0
    stores: int = 0
    ram_words: int = 0
    queue_stall_cycles: int = 0
    hazard_wait_cycles: int = 0


class Billie:
    """Timing + functional model of the binary accelerator."""

    def __init__(self, config: BillieConfig | None = None) -> None:
        self.config = config or BillieConfig()
        if self.config.m not in NIST_BINARY_POLYS:
            raise KeyError(f"no NIST binary field of degree {self.config.m}")
        self.stats = BillieStats()
        self.regs = [0] * self.config.n_registers
        self.reg_ready = [0] * self.config.n_registers
        # next free cycle per functional unit
        self.unit_free = {"mul": 0, "sqr": 0, "add": 0, "ldst": 0}
        self.queue_free_at: list[int] = [0] * self.config.queue_depth
        self.now = 0  # time of the last issued instruction
        self.tracer = None  # TraceBus (attach_tracer / manual)

    def reset_time(self) -> None:
        self.stats = BillieStats()
        self.reg_ready = [0] * self.config.n_registers
        self.unit_free = {key: 0 for key in self.unit_free}
        self.queue_free_at = [0] * self.config.queue_depth
        self.now = 0

    # ------------------------------------------------------------------
    # Instruction issue (Table 5.6)
    # ------------------------------------------------------------------

    def _enqueue(self, at: int) -> int:
        """Model the 4-entry queue: returns the time the instruction is
        accepted (Pete stalls if the queue is full)."""
        slot_time = min(self.queue_free_at)
        accept = max(at, slot_time)
        self.stats.queue_stall_cycles += max(0, slot_time - at)
        return accept

    def _dispatch(self, accept: int, unit: str, srcs: list[int],
                  latency: int) -> tuple[int, int]:
        """Dispatch once unit free + operands ready; return
        (start, done)."""
        ready = max([self.reg_ready[s] for s in srcs], default=0)
        start = max(accept, self.unit_free[unit], ready)
        self.stats.hazard_wait_cycles += max(0, ready - accept)
        done = start + latency
        self.unit_free[unit] = done
        # retire from the queue at dispatch
        idx = self.queue_free_at.index(min(self.queue_free_at))
        self.queue_free_at[idx] = start
        self.stats.busy_cycles += latency
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(
                BILLIE_BUSY, start, latency, -1, f"billie.{unit}"))
        return start, done

    def issue_load(self, rd: int, value: int, at: int | None = None) -> int:
        """COP2LD: memory -> BR[rd].  Returns completion time."""
        at = self.now if at is None else at
        accept = self._enqueue(at)
        start, done = self._dispatch(accept, "ldst", [], self.config.load_cycles)
        self.regs[rd] = value
        self.reg_ready[rd] = done
        self.stats.loads += 1
        words = -(-self.config.m // 32)
        self.stats.ram_words += words
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(
                BILLIE_RAM, start, self.config.load_cycles, -1,
                "billie.ldst", "load", words))
        self.now = accept + 1
        return done

    def issue_store(self, rs: int, at: int | None = None) -> tuple[int, int]:
        """COP2ST: BR[rs] -> memory.  Returns (value, completion)."""
        at = self.now if at is None else at
        accept = self._enqueue(at)
        start, done = self._dispatch(accept, "ldst", [rs],
                                     self.config.load_cycles)
        self.stats.stores += 1
        words = -(-self.config.m // 32)
        self.stats.ram_words += words
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(
                BILLIE_RAM, start, self.config.load_cycles, -1,
                "billie.ldst", "store", words))
        self.now = accept + 1
        return self.regs[rs], done

    def issue_mul(self, fd: int, fs: int, ft: int,
                  at: int | None = None) -> int:
        """COP2MUL: BR[fd] = BR[fs] * BR[ft] mod f(x)."""
        at = self.now if at is None else at
        accept = self._enqueue(at)
        start, done = self._dispatch(accept, "mul", [fs, ft],
                                     self.config.mul_cycles)
        result = digit_serial_mul(self.regs[fs], self.regs[ft],
                                  self.config.m, self.config.digit)
        self.regs[fd] = result.value
        self.reg_ready[fd] = done + 1  # write-back cycle
        self.stats.mul_ops += 1
        self.now = accept + 1
        return done

    def issue_sqr(self, fd: int, ft: int, at: int | None = None) -> int:
        """COP2SQR: BR[fd] = BR[ft]^2 mod f(x)."""
        at = self.now if at is None else at
        accept = self._enqueue(at)
        start, done = self._dispatch(accept, "sqr", [ft],
                                     self.config.sqr_cycles)
        self.regs[fd] = hardwired_square(self.regs[ft], self.config.m)
        self.reg_ready[fd] = done + 1
        self.stats.sqr_ops += 1
        self.now = accept + 1
        return done

    def issue_add(self, fd: int, fs: int, ft: int,
                  at: int | None = None) -> int:
        """COP2ADD: BR[fd] = BR[fs] + BR[ft] (XOR)."""
        at = self.now if at is None else at
        accept = self._enqueue(at)
        start, done = self._dispatch(accept, "add", [fs, ft],
                                     self.config.add_cycles)
        self.regs[fd] = self.regs[fs] ^ self.regs[ft]
        self.reg_ready[fd] = done + 1
        self.stats.add_ops += 1
        self.now = accept + 1
        return done

    def sync(self) -> int:
        """COP2SYNC: Pete waits until every unit drains."""
        done = max(max(self.unit_free.values()), self.now)
        self.now = done
        return done

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def completion_time(self) -> int:
        return max(self.unit_free.values())
