"""Coprocessor-2 adapters: Pete's instruction stream drives Monte/Billie.

The paper's Tables 5.3 and 5.6 define the COP2 instructions Pete fetches
and forwards to the accelerators in its execute stage.  These adapters
implement Pete's :class:`~repro.pete.cpu.Coprocessor` protocol, so real
assembled programs containing ``cop2lda`` / ``cop2mul`` / ``cop2sync``
etc. execute end to end: Pete decodes and issues, the coprocessor timing
machine schedules, and the stall cycles (full queue, SYNC waits) flow
back into Pete's pipeline accounting.

Data moves through the shared dual-port RAM exactly as in Fig. 5.7/5.11:
the adapters read operand words from (and write results to) Pete's RAM
at the addresses in the general-purpose registers.
"""

from __future__ import annotations

from repro.accel.billie import Billie
from repro.accel.monte import Monte
from repro.pete.isa import Decoded


class MonteCop2Adapter:
    """Table 5.3: CTC2, COP2SYNC, COP2LDA/B/N, COP2MUL/ADD/SUB, COP2ST."""

    def __init__(self, monte: Monte) -> None:
        self.monte = monte
        self.control_regs: dict[int, int] = {}
        self._pending_store: tuple[int, list[int]] | None = None

    # -- helpers -----------------------------------------------------------

    def _read_operand(self, cpu, addr: int) -> list[int]:
        return cpu.mem.read_ram_words(addr, self.monte.k)

    def _sync_monte_clock(self, cpu) -> None:
        """The coprocessor shares Pete's clock: never schedule in the
        past."""
        self.monte.now = max(self.monte.now, cpu.cycle)

    def _commit_store(self, cpu) -> None:
        if self._pending_store is not None:
            addr, words = self._pending_store
            cpu.mem.write_ram_words(addr, words)
            self._pending_store = None

    # -- the Coprocessor protocol -------------------------------------------

    def issue(self, instr: Decoded, cpu) -> int:
        m = instr.mnemonic
        self._sync_monte_clock(cpu)
        before = self.monte.stats.queue_stall_cycles
        if m == "ctc2":
            self.control_regs[instr.rd] = cpu.regs[instr.rt]
            return 0
        if m == "cop2sync":
            self._commit_store(cpu)
            done = self.monte.sync()
            return max(0, done - cpu.cycle)
        if m in ("cop2lda", "cop2ldb", "cop2ldn"):
            addr = cpu.regs[instr.rt]
            words = self._read_operand(cpu, addr)
            if m == "cop2lda":
                self.monte.load_a(words, addr=addr, at=cpu.cycle)
            elif m == "cop2ldb":
                self.monte.load_b(words, addr=addr, at=cpu.cycle)
            else:
                self.monte.load_n(at=cpu.cycle)
        elif m == "cop2mul":
            self.monte.mul(at=cpu.cycle)
        elif m == "cop2add":
            self.monte.add(at=cpu.cycle)
        elif m == "cop2sub":
            self.monte.sub(at=cpu.cycle)
        elif m == "cop2st":
            addr = cpu.regs[instr.rt]
            self._commit_store(cpu)
            words, _ = self.monte.store(addr=addr, at=cpu.cycle)
            # data reaches RAM when the DMA drains; commit it at the
            # next dependent instruction (sync/store) -- functionally
            # equivalent since Pete cannot observe it before syncing
            self._pending_store = (addr, words)
        else:
            raise RuntimeError(f"Monte cannot execute {m}")
        return self.monte.stats.queue_stall_cycles - before


class BillieCop2Adapter:
    """Table 5.6: COP2SYNC, COP2LD/ST, COP2MUL/SQR/ADD."""

    def __init__(self, billie: Billie) -> None:
        self.billie = billie
        self._k = -(-billie.config.m // 32)

    def _sync_clock(self, cpu) -> None:
        self.billie.now = max(self.billie.now, cpu.cycle)

    def issue(self, instr: Decoded, cpu) -> int:
        from repro.mp.words import from_int, to_int

        m = instr.mnemonic
        self._sync_clock(cpu)
        before = self.billie.stats.queue_stall_cycles
        # Billie register fields: fd in rs, fs in rd, ft in shamt
        fd, fs, ft = instr.rs, instr.rd, instr.shamt
        if m == "cop2sync":
            done = self.billie.sync()
            return max(0, done - cpu.cycle)
        if m == "cop2ld":
            addr = cpu.regs[instr.rt]
            value = to_int(cpu.mem.read_ram_words(addr, self._k))
            self.billie.issue_load(fs, value, at=cpu.cycle)
        elif m == "cop2st":
            addr = cpu.regs[instr.rt]
            value, _ = self.billie.issue_store(fs, at=cpu.cycle)
            cpu.mem.write_ram_words(addr, from_int(value, self._k))
        elif m == "cop2mul":
            self.billie.issue_mul(fd, fs, ft, at=cpu.cycle)
        elif m == "cop2sqr":
            self.billie.issue_sqr(fd, ft, at=cpu.cycle)
        elif m == "cop2add":
            self.billie.issue_add(fd, fs, ft, at=cpu.cycle)
        else:
            raise RuntimeError(f"Billie cannot execute {m}")
        return self.billie.stats.queue_stall_cycles - before
