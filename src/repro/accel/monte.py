"""'Monte': the microcoded GF(p) coprocessor (paper Section 5.4).

Monte couples the FFAU with an instruction queue, a DMA engine moving
operands between the shared dual-port RAM and internal operand/result
buffers, and a double-buffering scheme that overlaps data movement with
computation (the code walk-through in Section 5.4.1):

* operand and result buffers are double-buffered pairs, so loads for the
  next operation proceed while the FFAU computes the current one;
* a store waits in a *reservation register* until its result is ready --
  later loads "run ahead of the store" on the DMA;
* a load whose source address equals the pending store's destination is
  satisfied by the result->operand forwarding path and costs no DMA
  transfer.

The model is an event-timing machine processing the instruction stream of
Table 5.3.  With ``double_buffering=False`` (the Section 7.7 ablation)
every DMA transfer serializes behind the FFAU and no store bypassing
occurs.  Operand values are tracked exactly (Montgomery-domain words), so
results are verified against :mod:`repro.mp.montgomery`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accel.ffau import FFAU, FFAUConfig
from repro.mp.montgomery import MontgomeryContext
from repro.mp.words import from_int
from repro.trace.events import DMA_BURST, FFAU_BUSY, TraceEvent


@dataclass(frozen=True)
class MonteConfig:
    """Monte's structural parameters."""

    ffau: FFAUConfig = field(default_factory=FFAUConfig)
    queue_depth: int = 4
    dma_setup_cycles: int = 2     # per-transfer handshake
    double_buffering: bool = True
    forwarding: bool = True       # result buffer -> operand buffer path


@dataclass
class MonteStats:
    """Activity counters for the energy model."""

    dma_words: int = 0
    dma_load_words: int = 0   # subset of dma_words moving RAM -> Monte
    dma_transfers: int = 0
    forwarded_loads: int = 0
    ffau_busy_cycles: int = 0
    ffau_ops: int = 0
    queue_stall_cycles: int = 0


class Monte:
    """Timing + functional model of the prime-field coprocessor."""

    def __init__(self, modulus: int, config: MonteConfig | None = None
                 ) -> None:
        self.config = config or MonteConfig()
        self.ffau = FFAU(self.config.ffau)
        self.ctx = MontgomeryContext(modulus, self.config.ffau.width)
        self.k = self.ctx.k
        self.stats = MonteStats()
        self.op_a: list[int] | None = None
        self.op_b: list[int] | None = None
        self.result: list[int] | None = None
        # timing state
        self.dma_free = 0          # the single DMA engine
        self.ffau_free = 0
        self.result_ready = 0
        self.pending_store: int | None = None   # result-ready time
        self.pending_store_addr: int | None = None
        self.queue_free_at: list[int] = [0] * self.config.queue_depth
        self.now = 0
        self.tracer = None   # TraceBus (attach_tracer / manual)

    def reset_time(self) -> None:
        self.stats = MonteStats()
        self.dma_free = 0
        self.ffau_free = 0
        self.result_ready = 0
        self.pending_store = None
        self.pending_store_addr = None
        self.queue_free_at = [0] * self.config.queue_depth
        self.now = 0

    # ------------------------------------------------------------------
    # Internal scheduling helpers
    # ------------------------------------------------------------------

    @property
    def _dma_cycles(self) -> int:
        return self.k + self.config.dma_setup_cycles

    _last_slot: int = 0

    def _accept(self, at: int) -> int:
        """Queue admission: Pete stalls while the queue is full.  The
        entry occupies its slot until the instruction dispatches; the
        dispatching operation updates the slot via :meth:`_dispatched`."""
        slot = min(self.queue_free_at)
        accept = max(at, slot)
        self.stats.queue_stall_cycles += max(0, slot - at)
        self._last_slot = self.queue_free_at.index(slot)
        self.queue_free_at[self._last_slot] = accept + 1
        return accept

    def _dispatched(self, when: int) -> None:
        """Record when the just-accepted instruction left the queue."""
        self.queue_free_at[self._last_slot] = max(
            self.queue_free_at[self._last_slot], when)

    def _flush_store(self) -> None:
        """Commit the reserved store once its result is ready."""
        if self.pending_store is None:
            return
        start = max(self.pending_store, self.dma_free)
        if not self.config.double_buffering:
            start = max(start, self.ffau_free)
        self.dma_free = start + self._dma_cycles
        self.stats.dma_words += self.k
        self.stats.dma_transfers += 1
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(
                DMA_BURST, start, self._dma_cycles, -1, "monte.dma",
                "store", self.k))
        self.pending_store = None

    def _dma_load(self, at: int, addr: int | None) -> int:
        """Schedule one operand load; may bypass a reserved store."""
        if (self.config.forwarding and addr is not None
                and addr == self.pending_store_addr):
            # forwarding: data copied buffer-to-buffer during the store
            self.stats.forwarded_loads += 1
            done = max(at, self.pending_store or at)
            return done
        if not self.config.double_buffering:
            # strict order: any reserved store goes first, and DMA waits
            # for the FFAU
            self._flush_store()
            start = max(at, self.dma_free, self.ffau_free)
        else:
            start = max(at, self.dma_free)
        self.dma_free = start + self._dma_cycles
        self.stats.dma_words += self.k
        self.stats.dma_load_words += self.k
        self.stats.dma_transfers += 1
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(
                DMA_BURST, start, self._dma_cycles, -1, "monte.dma",
                "load", self.k))
        return self.dma_free

    # ------------------------------------------------------------------
    # Coprocessor instructions (Table 5.3)
    # ------------------------------------------------------------------

    def load_a(self, words: list[int], addr: int | None = None,
               at: int | None = None) -> int:
        at = self._accept(self.now if at is None else at)
        done = self._dma_load(at, addr)
        self._dispatched(done - self._dma_cycles if done > at else at)
        self.op_a = list(words)
        self._op_ready = max(getattr(self, "_op_ready", 0), done)
        self.now = at + 1
        return done

    def load_b(self, words: list[int], addr: int | None = None,
               at: int | None = None) -> int:
        at = self._accept(self.now if at is None else at)
        done = self._dma_load(at, addr)
        self._dispatched(done - self._dma_cycles if done > at else at)
        self.op_b = list(words)
        self._op_ready = max(getattr(self, "_op_ready", 0), done)
        self.now = at + 1
        return done

    def load_n(self, at: int | None = None) -> int:
        """COP2LDN: modulus transfer (once per field configuration)."""
        at = self._accept(self.now if at is None else at)
        done = self._dma_load(at, None)
        self.now = at + 1
        return done

    _op_ready: int = 0

    def _execute(self, op: str, at: int) -> int:
        if self.op_a is None or self.op_b is None:
            raise RuntimeError("operands not loaded")
        start = max(at, self.ffau_free, self._op_ready)
        if op == "mul":
            self.result, cycles = self.ffau.montmul(
                self.op_a, self.op_b, self.ctx.n_words, self.ctx.n0p)
        elif op == "add":
            self.result, cycles = self.ffau.mod_add(
                self.op_a, self.op_b, self.ctx.n_words)
        elif op == "sub":
            self.result, cycles = self.ffau.mod_sub(
                self.op_a, self.op_b, self.ctx.n_words)
        else:  # pragma: no cover
            raise ValueError(op)
        done = start + cycles
        self.ffau_free = done
        self.result_ready = done
        self.stats.ffau_busy_cycles += cycles
        self.stats.ffau_ops += 1
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(
                FFAU_BUSY, start, cycles, -1, "monte.ffau", op))
        self._dispatched(start)
        return done

    def mul(self, at: int | None = None) -> int:
        at = self._accept(self.now if at is None else at)
        done = self._execute("mul", at)
        self.now = at + 1
        return done

    def add(self, at: int | None = None) -> int:
        at = self._accept(self.now if at is None else at)
        done = self._execute("add", at)
        self.now = at + 1
        return done

    def sub(self, at: int | None = None) -> int:
        at = self._accept(self.now if at is None else at)
        done = self._execute("sub", at)
        self.now = at + 1
        return done

    def store(self, addr: int | None = None, at: int | None = None
              ) -> tuple[list[int], int]:
        """COP2ST: reserve the store; it commits when the result is
        ready.  Only one store reservation exists, so a second store
        flushes the first."""
        at = self._accept(self.now if at is None else at)
        self._flush_store()
        self.pending_store = max(at, self.result_ready)
        self._dispatched(self.pending_store)
        self.pending_store_addr = addr
        self.now = at + 1
        if self.result is None:
            raise RuntimeError("no result to store")
        return list(self.result), self.pending_store + self._dma_cycles

    def sync(self) -> int:
        """COP2SYNC: drain the queue, the FFAU and the DMA."""
        self._flush_store()
        done = max(self.dma_free, self.ffau_free, self.now)
        self.now = done
        return done

    # ------------------------------------------------------------------
    # Whole-field-operation timing (used by the system model)
    # ------------------------------------------------------------------

    def field_op_pattern_cycles(self, op: str, reuse_fraction: float = 0.0
                                ) -> float:
        """Effective cycles one field operation adds to a back-to-back
        stream (the way the point routines emit them).

        ``reuse_fraction`` models the operand loads satisfied by the
        forwarding path in real point-operation code (a result is often
        an operand of the next operation).
        """
        probe = Monte(self.ctx.n, self.config)
        reps = 16
        dummy = [0] * self.k
        addr = 0x100
        for rep in range(reps):
            forward = self.config.forwarding and (
                rep > 0 and (rep % max(1, round(1 / reuse_fraction))) == 0
                if reuse_fraction else False)
            probe.load_a(dummy, addr=addr if forward else None)
            probe.load_b(dummy)
            probe.op_a = from_int(1, self.k, self.config.ffau.width)
            probe.op_b = from_int(1, self.k, self.config.ffau.width)
            if op == "mul":
                probe.mul()
            elif op == "add":
                probe.add()
            else:
                probe.sub()
            probe.store(addr=addr)
        return probe.sync() / reps
