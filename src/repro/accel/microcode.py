"""The FFAU's microcode (paper Section 5.4.2, Figs. 5.9/5.10).

The control unit holds a 64-entry microcode table; each micro-instruction
selects an arithmetic-core operation (Table 5.4), operand sources, a
result destination, index-register controls (Table 5.5) and sequencing.
Two hardware loop counters with bounds from the constant RAM provide
nested loops; a return-address register allows leaf subroutine calls.

This module defines the micro-ISA and assembles the three microprograms
Monte ships with: CIOS Montgomery multiplication, modular addition and
modular subtraction.  The table-size limit (64 entries) is enforced so
the reconfigurability claim stays honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class CoreOp(Enum):
    """Arithmetic-core operations (subset of Table 5.4)."""

    NOP = "nop"
    MUL_ADD_C = "mul_add_c"    # (carry, r) = A*B + C + carry
    MUL_ADD = "mul_add"        # (carry, r) = A*B + C
    MUL = "mul"                # (carry, r) = A*B
    ADD_C = "add_c"            # (carry, r) = A + C + carry
    ADD = "add"                # (carry, r) = A + C
    SUB_C = "sub_c"            # (carry, r) = -A + C + borrow chain
    SUB = "sub"                # (carry, r) = -A + C
    CLEAR_PIPE = "clear_pipe"  # (carry, r) = C + carry
    DRAIN = "drain"            # (carry, r) = carry


class ASrc(Enum):
    AB = "ab"        # AB memory at index register A
    TMP = "tmp"      # temporary result register


class BSrc(Enum):
    AB = "ab"        # AB memory at index register B
    CONST = "const"  # constant RAM entry
    NONE = "none"


class CSrc(Enum):
    T = "t"          # T memory at read index register
    ZERO = "zero"


class Dst(Enum):
    T = "t"          # T memory at store index
    TMP = "tmp"
    NONE = "none"


class IdxCtl(Enum):
    """Index-register control codes (Table 5.5)."""

    HOLD = 0b00
    LOAD = 0b01      # load from constant bus
    CLEAR = 0b10
    INC = 0b11


@dataclass(frozen=True)
class MicroOp:
    """One microcode table entry."""

    op: CoreOp = CoreOp.NOP
    a_src: ASrc = ASrc.AB
    b_src: BSrc = BSrc.NONE
    c_src: CSrc = CSrc.ZERO
    dst: Dst = Dst.NONE
    const_sel: int = 0          # constant-RAM entry for LOAD / CONST
    # index controls: (A read, B read, T read, T write)
    idx_a: IdxCtl = IdxCtl.HOLD
    idx_b: IdxCtl = IdxCtl.HOLD
    idx_t: IdxCtl = IdxCtl.HOLD
    idx_w: IdxCtl = IdxCtl.HOLD
    # base offsets into the AB memory (a=0, b=k, n=2k), resolved by the
    # address logic from constant-RAM entries
    a_base: int = 0
    b_base: int = 0
    # sequencing
    loop: str | None = None     # "i" or "j": decrement/test this counter
    loop_target: int = 0        # microcode address to branch to while != 0
    loop_set: str | None = None # load counter ("i"/"j") from constant RAM
    loop_set_const: int = 0
    wait_drain: bool = False    # stall until the core pipeline drains
    halt: bool = False
    label: str = ""


MICROCODE_TABLE_SIZE = 64


@dataclass
class MicroProgram:
    """An assembled microprogram with named entry points."""

    ops: list[MicroOp] = field(default_factory=list)
    entries: dict[str, int] = field(default_factory=dict)

    def add(self, op: MicroOp) -> int:
        self.ops.append(op)
        if len(self.ops) > MICROCODE_TABLE_SIZE:
            raise OverflowError(
                "microprogram exceeds the 64-entry control store"
            )
        return len(self.ops) - 1

    def entry(self, name: str) -> None:
        self.entries[name] = len(self.ops)


# Constant-RAM allocation (8 entries, Fig. 5.10):
CONST_K = 0        # k, the word count
CONST_N0P = 1      # -n^{-1} mod 2^w
CONST_KM1 = 2      # k - 1
CONST_A_BASE = 3   # AB-memory base of operand A (0)
CONST_B_BASE = 4   # AB-memory base of operand B (k)
CONST_N_BASE = 5   # AB-memory base of the modulus (2k)


def build_cios_program() -> MicroProgram:
    """CIOS Montgomery multiplication as FFAU microcode (Algorithm 5).

    The structure matches Section 5.4.2.1: the first inner loop multiplies
    a word of B into T; a pass moves T[0] into the temporary register; a
    multiply by n0' (constant RAM) forms m; the second inner loop folds
    m*N into T shifted down a word; the outer loop repeats k times; a
    final conditional subtraction corrects the result.  The data
    dependency on T[0] at the m computation forces a pipeline drain each
    outer iteration -- the (k+1)p term of Eq. 5.2.
    """
    prog = MicroProgram()
    prog.entry("cios")
    # -- outer loop setup -------------------------------------------------
    prog.add(MicroOp(label="init", loop_set="i", loop_set_const=CONST_K,
                     idx_t=IdxCtl.CLEAR, idx_w=IdxCtl.CLEAR,
                     idx_b=IdxCtl.LOAD, const_sel=CONST_B_BASE))
    outer = prog.add(MicroOp(label="outer", loop_set="j",
                             loop_set_const=CONST_K,
                             idx_a=IdxCtl.LOAD, const_sel=CONST_A_BASE,
                             idx_t=IdxCtl.CLEAR, idx_w=IdxCtl.CLEAR))
    # -- inner loop 1: T += A * B[i] --------------------------------------
    in1 = prog.add(MicroOp(op=CoreOp.MUL_ADD_C, a_src=ASrc.AB,
                           b_src=BSrc.AB, c_src=CSrc.T, dst=Dst.T,
                           idx_a=IdxCtl.INC, idx_t=IdxCtl.INC,
                           idx_w=IdxCtl.INC, loop="j", label="in1"))
    prog.ops[in1] = _with(prog.ops[in1], loop_target=in1)
    # tail: T[k] += carry; T[k+1] = carry'
    prog.add(MicroOp(op=CoreOp.CLEAR_PIPE, c_src=CSrc.T, dst=Dst.T,
                     idx_t=IdxCtl.INC, idx_w=IdxCtl.INC))
    prog.add(MicroOp(op=CoreOp.DRAIN, dst=Dst.T,
                     idx_t=IdxCtl.CLEAR, idx_w=IdxCtl.CLEAR))
    # -- m = T[0] * n0' mod 2^w -------------------------------------------
    # pass T[0] through the core into the temporary register; the read of
    # T[0] depends on the in-flight writes, so the pipeline must drain.
    prog.add(MicroOp(op=CoreOp.CLEAR_PIPE, c_src=CSrc.T, dst=Dst.TMP,
                     wait_drain=True))
    # the multiply consumes the pass result straight off the core's
    # output register (forwarding path), so no second drain is needed --
    # this keeps the cycle count on the paper's Eq. 5.2 curve
    prog.add(MicroOp(op=CoreOp.MUL, a_src=ASrc.TMP, b_src=BSrc.CONST,
                     const_sel=CONST_N0P, dst=Dst.TMP))
    # -- inner loop 2: T = (T + m*N) >> w ----------------------------------
    # first iteration: discard the zero low word (store suppressed by
    # writing to T[k+1] slot which the tail overwrites)
    prog.add(MicroOp(op=CoreOp.MUL_ADD, a_src=ASrc.TMP, b_src=BSrc.AB,
                     c_src=CSrc.T, dst=Dst.NONE,
                     idx_b=IdxCtl.LOAD, const_sel=CONST_N_BASE,
                     loop_set="j", loop_set_const=CONST_KM1))
    prog.ops[-1] = _with(prog.ops[-1], idx_t=IdxCtl.INC, idx_w=IdxCtl.HOLD)
    in2 = prog.add(MicroOp(op=CoreOp.MUL_ADD_C, a_src=ASrc.TMP, b_src=BSrc.AB,
                           c_src=CSrc.T, dst=Dst.T,
                           idx_b=IdxCtl.INC, idx_t=IdxCtl.INC,
                           idx_w=IdxCtl.INC, loop="j", label="in2"))
    prog.ops[in2] = _with(prog.ops[in2], loop_target=in2)
    # tail: T[k-1] = T[k] + carry; T[k] = T[k+1] + carry'
    prog.add(MicroOp(op=CoreOp.CLEAR_PIPE, c_src=CSrc.T, dst=Dst.T,
                     idx_t=IdxCtl.INC, idx_w=IdxCtl.INC))
    prog.add(MicroOp(op=CoreOp.ADD_C, a_src=ASrc.AB, c_src=CSrc.T, dst=Dst.T,
                     idx_b=IdxCtl.LOAD, const_sel=CONST_B_BASE,
                     loop="i", loop_target=outer))
    # -- final correction: conditional subtract of N -----------------------
    prog.add(MicroOp(op=CoreOp.NOP, wait_drain=True,
                     idx_t=IdxCtl.CLEAR, idx_w=IdxCtl.CLEAR,
                     idx_b=IdxCtl.LOAD, const_sel=CONST_N_BASE,
                     loop_set="j", loop_set_const=CONST_K))
    sub = prog.add(MicroOp(op=CoreOp.SUB_C, a_src=ASrc.AB, b_src=BSrc.NONE,
                           c_src=CSrc.T, dst=Dst.T,
                           idx_b=IdxCtl.INC, idx_t=IdxCtl.INC,
                           idx_w=IdxCtl.INC, loop="j", label="csub"))
    prog.ops[sub] = _with(prog.ops[sub], loop_target=sub)
    prog.add(MicroOp(op=CoreOp.NOP, wait_drain=True, halt=True))
    return prog


def build_addsub_program(subtract: bool) -> MicroProgram:
    """Modular addition/subtraction microcode: one O(k) pass computing
    a +/- b, one pass applying the conditional correction by N."""
    prog = MicroProgram()
    name = "sub" if subtract else "add"
    prog.entry(name)
    # one LOAD per cycle: the constant RAM has a single bus (Fig. 5.10)
    prog.add(MicroOp(label="init", loop_set="j", loop_set_const=CONST_K,
                     idx_a=IdxCtl.LOAD, const_sel=CONST_A_BASE,
                     idx_t=IdxCtl.CLEAR, idx_w=IdxCtl.CLEAR))
    prog.add(MicroOp(idx_b=IdxCtl.LOAD, const_sel=CONST_B_BASE))
    main = prog.add(MicroOp(
        op=CoreOp.SUB_C if subtract else CoreOp.ADD_C,
        a_src=ASrc.AB, b_src=BSrc.AB, c_src=CSrc.ZERO, dst=Dst.T,
        idx_a=IdxCtl.INC, idx_b=IdxCtl.INC, idx_w=IdxCtl.INC,
        loop="j", label="main"))
    prog.ops[main] = _with(prog.ops[main], loop_target=main)
    # correction pass: add N back (sub) or subtract N (add), conditionally
    prog.add(MicroOp(op=CoreOp.NOP, wait_drain=True,
                     idx_b=IdxCtl.LOAD, const_sel=CONST_N_BASE,
                     idx_t=IdxCtl.CLEAR, idx_w=IdxCtl.CLEAR,
                     loop_set="j", loop_set_const=CONST_K))
    corr = prog.add(MicroOp(
        op=CoreOp.ADD_C if subtract else CoreOp.SUB_C,
        a_src=ASrc.AB, c_src=CSrc.T, dst=Dst.T,
        idx_b=IdxCtl.INC, idx_t=IdxCtl.INC, idx_w=IdxCtl.INC,
        loop="j", label="corr"))
    prog.ops[corr] = _with(prog.ops[corr], loop_target=corr)
    prog.add(MicroOp(op=CoreOp.NOP, wait_drain=True, halt=True))
    return prog


def _with(op: MicroOp, **changes) -> MicroOp:
    """dataclasses.replace that keeps MicroOp frozen."""
    from dataclasses import replace

    return replace(op, **changes)
