"""The Finite-Field Arithmetic Unit (paper Section 5.4.2).

The FFAU couples a pipelined multiply-add arithmetic core (throughput one
operation per cycle, latency ``p`` cycles) with dual scratchpad memories
(AB and T), index-register address generation and a 64-entry microcoded
control unit.  Its datapath width is a synthesis parameter -- the paper's
standalone study (Section 7.9) sweeps 8/16/32/64 bits.

Functional results are computed with the word-exact CIOS routine from
:mod:`repro.mp.montgomery` (the same word flow the microprogram encodes);
cycle counts come from *executing the microprogram* in
:meth:`FFAU.run_microprogram`, which walks the control store cycle by
cycle with the hardware loop counters.  A regression test checks the
measured cycles against the paper's Eq. 5.2::

    cc = 2k^2 + 6k + (k+1)p + 22
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.mp.montgomery import cios_montmul
from repro.mp.words import add_words, sub_words
from repro.accel.microcode import (
    CONST_K,
    CONST_KM1,
    MicroProgram,
    build_addsub_program,
    build_cios_program,
)


@dataclass(frozen=True)
class FFAUConfig:
    """Synthesis-time parameters (Section 5.4.2.1)."""

    width: int = 32          # datapath width w in bits
    pipeline_latency: int = 3  # p: arithmetic-core latency in cycles
    mem_words: int = 0       # scratchpad depth (0 = 4k for largest field)

    def words_for(self, bits: int) -> int:
        return -(-bits // self.width)


@dataclass
class FFAUStats:
    """Activity counters for the energy model."""

    busy_cycles: int = 0
    idle_cycles: int = 0
    core_ops: int = 0
    mem_reads: int = 0
    mem_writes: int = 0
    microcode_fetches: int = 0


class FFAU:
    """One FFAU instance with loaded microcode."""

    #: Dispatch overhead per coprocessor command (decode + start/stop the
    #: sequencer), part of the "+22" constant of Eq. 5.2.
    DISPATCH_OVERHEAD = 4

    def __init__(self, config: FFAUConfig | None = None) -> None:
        self.config = config or FFAUConfig()
        self.stats = FFAUStats()
        self._cios = build_cios_program()
        self._add = build_addsub_program(subtract=False)
        self._sub = build_addsub_program(subtract=True)

    # ------------------------------------------------------------------
    # Microprogram timing
    # ------------------------------------------------------------------

    def run_microprogram(self, prog: MicroProgram, k: int) -> int:
        """Execute a microprogram's control flow; return cycles.

        One micro-op issues per cycle; ``wait_drain`` stalls for the core
        latency p; hardware loop counters come from the constant RAM
        (k and k-1 are the only bounds the shipped programs use).
        """
        p = self.config.pipeline_latency
        consts = {CONST_K: k, CONST_KM1: k - 1}
        loops = {"i": 0, "j": 0}
        pc = 0
        cycles = 0
        while True:
            op = prog.ops[pc]
            cycles += 1
            self.stats.microcode_fetches += 1
            if op.op.value != "nop":
                self.stats.core_ops += 1
                self.stats.mem_reads += 2
                self.stats.mem_writes += 1
            if op.wait_drain:
                cycles += p
            if op.loop_set is not None:
                loops[op.loop_set] = consts.get(op.loop_set_const,
                                                op.loop_set_const)
            if op.loop is not None:
                loops[op.loop] -= 1
                if loops[op.loop] > 0:
                    pc = op.loop_target
                    continue
            if op.halt:
                break
            pc += 1
        self.stats.busy_cycles += cycles
        return cycles

    # ------------------------------------------------------------------
    # Operations (functional + cycles)
    # ------------------------------------------------------------------

    def montmul_cycles(self, k: int) -> int:
        """Cycles for one CIOS Montgomery multiplication of k words."""
        return _montmul_cycles_cached(self.config, k) + self.DISPATCH_OVERHEAD

    def addsub_cycles(self, k: int) -> int:
        """Cycles for one modular addition or subtraction of k words."""
        return _addsub_cycles_cached(self.config, k) + self.DISPATCH_OVERHEAD

    def montmul(self, a: list[int], b: list[int], n: list[int],
                n0p: int) -> tuple[list[int], int]:
        """(a * b * R^-1 mod n, cycles) at the configured width."""
        k = len(n)
        result = cios_montmul(a, b, n, n0p, self.config.width)
        return result, self.montmul_cycles(k)

    def mod_add(self, a: list[int], b: list[int], n: list[int]
                ) -> tuple[list[int], int]:
        """Word-exact modular addition: the add pass and the conditional
        correction pass the add/sub microprogram encodes."""
        w = self.config.width
        k = len(n)
        total, carry = add_words(a, b, w)
        corrected, borrow = sub_words(total, n, w)
        result = corrected if (carry or not borrow) else total
        return result, self.addsub_cycles(k)

    def mod_sub(self, a: list[int], b: list[int], n: list[int]
                ) -> tuple[list[int], int]:
        """Word-exact modular subtraction with the conditional add-back
        of the modulus."""
        w = self.config.width
        k = len(n)
        diff, borrow = sub_words(a, b, w)
        if borrow:
            diff, _ = add_words(diff, n, w)
        return diff, self.addsub_cycles(k)

    # ------------------------------------------------------------------
    # Paper cross-checks
    # ------------------------------------------------------------------

    def eq52_cycles(self, k: int) -> int:
        """The paper's cycle model (Eq. 5.2)."""
        p = self.config.pipeline_latency
        return 2 * k * k + 6 * k + (k + 1) * p + 22


@lru_cache(maxsize=None)
def _montmul_cycles_cached(config: FFAUConfig, k: int) -> int:
    ffau = FFAU(config)
    return ffau.run_microprogram(ffau._cios, k)


@lru_cache(maxsize=None)
def _addsub_cycles_cached(config: FFAUConfig, k: int) -> int:
    ffau = FFAU(config)
    return ffau.run_microprogram(ffau._add, k)
