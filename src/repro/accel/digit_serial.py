"""Digit-serial GF(2^m) multiplication (paper Algorithm 8, Section 5.5.3).

Billie's multiplier iterates over the multiplier D bits ("one digit") at a
time: each cycle it adds B_i * a(x) into the accumulator while shifting
the multiplicand left by D and reducing it modulo f(x).  The digit width D
trades area/cycle-time for cycles per multiplication; prior work found
D = 3 energy-optimal (Kumar/Wollinger/Paar), and the paper adopts that.

A hardwired squarer (Fig. 5.13) computes the bit-interleave + reduction in
a single cycle; its XOR-tree structure is derived here from the reduction
polynomial so that its gate count can feed the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fields.nist import BINARY_TAIL_EXPONENTS, NIST_BINARY_POLYS


@dataclass(frozen=True)
class DigitSerialResult:
    value: int
    cycles: int


def digit_serial_mul(a: int, b: int, m: int, digit: int = 3
                     ) -> DigitSerialResult:
    """Algorithm 8: c = a*b mod f(x), one digit of b per cycle.

    Cycle count: ceil(m/D) iterations plus one final-reduction cycle plus
    one setup cycle.
    """
    if m not in NIST_BINARY_POLYS:
        raise KeyError(f"no NIST binary field of degree {m}")
    f_poly = NIST_BINARY_POLYS[m]
    tail = BINARY_TAIL_EXPONENTS[m]
    n_digits = -(-m // digit)
    mask_digit = (1 << digit) - 1
    c = 0
    shifted_a = a
    for i in range(n_digits):
        b_digit = (b >> (digit * i)) & mask_digit
        # B_i * a(x): digit-by-multiplicand partial product
        for bit in range(digit):
            if (b_digit >> bit) & 1:
                c ^= shifted_a << bit
        # a(x) <- a(x) * x^D mod f(x): D single-bit reduction steps
        shifted_a <<= digit
        while shifted_a >> m:
            high = shifted_a >> m
            shifted_a &= (1 << m) - 1
            for e in tail:
                shifted_a ^= high << e
    # final reduction of the m + D - 1 bit accumulator
    while c >> m:
        high = c >> m
        c &= (1 << m) - 1
        for e in tail:
            c ^= high << e
    return DigitSerialResult(c, n_digits + 2)


def digit_serial_cycles(m: int, digit: int) -> int:
    """Cycles for one multiplication without computing a product."""
    return -(-m // digit) + 2


def hardwired_square(a: int, m: int) -> int:
    """Single-cycle squaring: interleave zeros, then fold (Fig. 5.13)."""
    tail = BINARY_TAIL_EXPONENTS[m]
    expanded = 0
    i = 0
    value = a
    while value:
        if value & 1:
            expanded |= 1 << (2 * i)
        value >>= 1
        i += 1
    while expanded >> m:
        high = expanded >> m
        expanded &= (1 << m) - 1
        for e in tail:
            expanded ^= high << e
    return expanded


def squarer_xor_gates(m: int) -> int:
    """Estimated 2-input XOR count of the hardwired squaring unit.

    Each of the ~m/2 folded high bits lands on len(tail) output taps; the
    estimate feeds the Billie area/power model.
    """
    tail = BINARY_TAIL_EXPONENTS[m]
    folded_bits = m - 1  # bits m..2m-2 of the interleaved square
    return folded_bits * len(tail) // 2 + m // 2
