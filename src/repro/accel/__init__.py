"""The two coprocessors: "Monte" (GF(p)) and "Billie" (GF(2^m)).

* :mod:`repro.accel.ffau` / :mod:`repro.accel.microcode` -- the
  Finite-Field Arithmetic Unit at Monte's core (Section 5.4.2): a 2-stage
  pipelined multiply-add datapath driven by a 64-entry microcode control
  unit, executing CIOS Montgomery multiplication plus modular add/sub for
  any field size that fits its scratchpad memories.
* :mod:`repro.accel.monte` -- the coprocessor wrapper (Section 5.4.1):
  instruction queue, DMA with operand/result double buffering and
  store-to-load forwarding over the shared dual-port RAM.
* :mod:`repro.accel.billie` / :mod:`repro.accel.digit_serial` -- the
  non-configurable binary-field accelerator (Section 5.5): a 16-entry
  full-width register file, digit-serial multiplier, single-cycle
  hardwired squarer and full-width adder behind a 4-entry instruction
  queue.
"""

from repro.accel.billie import Billie, BillieConfig
from repro.accel.cop2_adapter import BillieCop2Adapter, MonteCop2Adapter
from repro.accel.ffau import FFAU, FFAUConfig
from repro.accel.monte import Monte, MonteConfig

__all__ = [
    "FFAU",
    "FFAUConfig",
    "Monte",
    "MonteConfig",
    "Billie",
    "BillieConfig",
    "MonteCop2Adapter",
    "BillieCop2Adapter",
]
