"""A textual microassembler for the FFAU control store.

Section 5.4.2.2: "the control complexity is moved into the microprogram;
however, a good microcode assembler can help improve the situation."
This is that assembler.  One micro-instruction per line::

    label:  OP [a=<src>] [b=<src>] [c=<src>] [dst=<dst>]
            [idxA=<ctl>] [idxB=<ctl>] [idxT=<ctl>] [idxW=<ctl>]
            [const=<name>] [set j=<name>] [loop j -> label]
            [drain] [halt]

where ``OP`` is a :class:`~repro.accel.microcode.CoreOp` name (or NOP),
sources/destinations name the datapath muxes (``ab``, ``tmp``, ``const``,
``t``, ``zero``, ``none``), index controls are ``hold/load/clear/inc``,
and constants are the symbolic constant-RAM slots (``K``, ``KM1``,
``N0P``, ``A_BASE``, ``B_BASE``, ``N_BASE``).

The shipped CIOS/add/sub programs are provided both as constructed
objects (:mod:`repro.accel.microcode`) and as source text here; the test
suite asserts the assembler reproduces the constructed programs
field-for-field.
"""

from __future__ import annotations

import re

from repro.accel.microcode import (
    CONST_A_BASE,
    CONST_B_BASE,
    CONST_K,
    CONST_KM1,
    CONST_N0P,
    CONST_N_BASE,
    ASrc,
    BSrc,
    CSrc,
    CoreOp,
    Dst,
    IdxCtl,
    MicroOp,
    MicroProgram,
)


class MicroAssemblyError(Exception):
    """Malformed microcode source."""


_CONSTS = {
    "K": CONST_K, "N0P": CONST_N0P, "KM1": CONST_KM1,
    "A_BASE": CONST_A_BASE, "B_BASE": CONST_B_BASE, "N_BASE": CONST_N_BASE,
}
_IDX = {"hold": IdxCtl.HOLD, "load": IdxCtl.LOAD, "clear": IdxCtl.CLEAR,
        "inc": IdxCtl.INC}
_ASRC = {"ab": ASrc.AB, "tmp": ASrc.TMP}
_BSRC = {"ab": BSrc.AB, "const": BSrc.CONST, "none": BSrc.NONE}
_CSRC = {"t": CSrc.T, "zero": CSrc.ZERO}
_DST = {"t": Dst.T, "tmp": Dst.TMP, "none": Dst.NONE}
_OPS = {op.name: op for op in CoreOp}


def assemble_microcode(source: str) -> MicroProgram:
    """Assemble microcode source text into a :class:`MicroProgram`."""
    prog = MicroProgram()
    pending: list[tuple[int, str, str]] = []  # (index, loop var, label)
    labels: dict[str, int] = {}

    for raw in source.splitlines():
        line = raw.split("#")[0].strip()
        if not line:
            continue
        label_match = re.match(r"^(\w+):\s*(.*)$", line)
        if label_match:
            name, rest = label_match.groups()
            if name in labels:
                raise MicroAssemblyError(f"duplicate label {name!r}")
            labels[name] = len(prog.ops)
            line = rest.strip()
            if not line:
                continue
        fields = _parse_fields(line)
        index = prog.add(_build_op(fields, len(prog.ops)))
        if "loop_label" in fields:
            pending.append((index, fields["loop"], fields["loop_label"]))

    for index, loop_var, label in pending:
        if label not in labels:
            raise MicroAssemblyError(f"undefined loop target {label!r}")
        from dataclasses import replace

        prog.ops[index] = replace(prog.ops[index],
                                  loop_target=labels[label])
    return prog


def _parse_fields(line: str) -> dict:
    tokens = line.split()
    fields: dict = {"op": tokens[0].upper()}
    i = 1
    while i < len(tokens):
        token = tokens[i]
        if token == "drain":
            fields["drain"] = True
        elif token == "halt":
            fields["halt"] = True
        elif token == "loop":
            if i + 3 >= len(tokens) or tokens[i + 2] != "->":
                raise MicroAssemblyError(f"bad loop clause: {line}")
            fields["loop"] = tokens[i + 1]
            fields["loop_label"] = tokens[i + 3]
            i += 3
        elif token == "set" and i + 1 < len(tokens):
            var, _, const = tokens[i + 1].partition("=")
            fields["loop_set"] = var
            fields["loop_set_const"] = const
            i += 1
        elif "=" in token:
            key, _, value = token.partition("=")
            fields[key] = value
        else:
            raise MicroAssemblyError(f"bad token {token!r} in: {line}")
        i += 1
    return fields


def _build_op(fields: dict, index: int) -> MicroOp:
    op_name = fields["op"]
    if op_name not in _OPS:
        raise MicroAssemblyError(f"unknown core op {op_name!r}")

    def lookup(table, key, default):
        value = fields.get(key)
        if value is None:
            return default
        if value not in table:
            raise MicroAssemblyError(f"bad {key} value {value!r}")
        return table[value]

    const_sel = 0
    if "const" in fields:
        if fields["const"] not in _CONSTS:
            raise MicroAssemblyError(f"unknown constant {fields['const']!r}")
        const_sel = _CONSTS[fields["const"]]
    loop_set = fields.get("loop_set")
    loop_set_const = 0
    if loop_set is not None:
        name = fields["loop_set_const"]
        if name not in _CONSTS:
            raise MicroAssemblyError(f"unknown constant {name!r}")
        loop_set_const = _CONSTS[name]
    return MicroOp(
        op=_OPS[op_name],
        a_src=lookup(_ASRC, "a", ASrc.AB),
        b_src=lookup(_BSRC, "b", BSrc.NONE),
        c_src=lookup(_CSRC, "c", CSrc.ZERO),
        dst=lookup(_DST, "dst", Dst.NONE),
        const_sel=const_sel,
        idx_a=lookup(_IDX, "idxA", IdxCtl.HOLD),
        idx_b=lookup(_IDX, "idxB", IdxCtl.HOLD),
        idx_t=lookup(_IDX, "idxT", IdxCtl.HOLD),
        idx_w=lookup(_IDX, "idxW", IdxCtl.HOLD),
        loop=fields.get("loop"),
        loop_set=loop_set,
        loop_set_const=loop_set_const,
        wait_drain=bool(fields.get("drain")),
        halt=bool(fields.get("halt")),
    )


#: The CIOS microprogram as assembler source -- the same control flow
#: :func:`repro.accel.microcode.build_cios_program` constructs in code.
CIOS_SOURCE = """
# CIOS Montgomery multiplication (Algorithm 5) for the FFAU
init:   NOP set i=K idxT=clear idxW=clear idxB=load const=B_BASE
outer:  NOP set j=K idxA=load const=A_BASE idxT=clear idxW=clear
# inner loop 1: T += A * B[i]
in1:    MUL_ADD_C a=ab b=ab c=t dst=t idxA=inc idxT=inc idxW=inc loop j -> in1
        CLEAR_PIPE c=t dst=t idxT=inc idxW=inc
        DRAIN dst=t idxT=clear idxW=clear
# m = T[0] * n0' (pass T[0] through the core, forward into the multiply)
        CLEAR_PIPE c=t dst=tmp drain
        MUL a=tmp b=const const=N0P dst=tmp
# inner loop 2: T = (T + m*N) >> w
        MUL_ADD a=tmp b=ab c=t dst=none idxB=load const=N_BASE set j=KM1 idxT=inc
in2:    MUL_ADD_C a=tmp b=ab c=t dst=t idxB=inc idxT=inc idxW=inc loop j -> in2
        CLEAR_PIPE c=t dst=t idxT=inc idxW=inc
        ADD_C a=ab c=t dst=t idxB=load const=B_BASE loop i -> outer
# final conditional subtraction
        NOP drain idxT=clear idxW=clear idxB=load const=N_BASE set j=K
csub:   SUB_C a=ab b=none c=t dst=t idxB=inc idxT=inc idxW=inc loop j -> csub
        NOP drain halt
"""
