"""Public facade: the one import surface for driving the reproduction.

Batch-first entry points (documented in ``docs/API.md``):

* :func:`compute_batch` -- submit a fleet (:class:`BatchRequest` of
  artifact and/or kernel :class:`BatchItem` s) and get a
  :class:`BatchResult` with per-lane payloads and aggregate stats.
  Artifact items run through the parallel sweep engine; kernel items
  fan across the numpy lane engine (:mod:`repro.pete.lanes`).
* :func:`compute_artifact` -- one table/figure payload.  A batch-of-one
  wrapper over :func:`compute_batch`; byte-identical to the historical
  scalar behavior (exceptions propagate, nothing is cached by default).
* :func:`sweep` -- the artifact cross-product through the sweep engine
  with the content-addressed result cache; a batch wrapper returning
  the embedded :class:`~repro.sweep.engine.SweepResult`.
* :func:`open_session` -- a context in which every producer, kernel
  runner and batch prices against a caller-supplied
  :class:`~repro.energy.calibration.Calibration` instead of the
  default.
* :func:`serve_session` -- the always-on service plane: an async
  context that boots a :class:`~repro.serve.service.SigningService`
  (warm worker processes behind an admission queue), yields it for
  :meth:`~repro.serve.service.SigningService.submit` calls, and
  drains + stops it on exit.  The request/response vocabulary
  (:class:`ServeRequest`, :class:`ServeResponse`) and the typed
  rejections (:class:`ServiceDraining`, :class:`RequestShed`) are
  re-exported here.

The scalar and batch surfaces share one keyword vocabulary --- ``jobs``
(process fan-out for artifact items), ``cache``/``cache_dir`` (the
on-disk result store), ``calibration``, ``fast`` (superblock fast
path), ``lanes`` (lane-engine batch width for kernel items) --- and one
name-resolution path (:func:`_resolve`).

Everything here delegates to :mod:`repro.harness.registry`,
:mod:`repro.sweep` and :mod:`repro.kernels.runner`; nothing below this
module needs to be imported for ordinary use.  The exported surface is
exactly ``__all__``; ``tests/test_api_surface.py`` pins it.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field, replace

from repro import obs
from repro.harness.registry import (
    ArtifactSpec,
    UnknownArtifactError,
    get_spec,
    select,
)
from repro.serve.service import ServeConfig, SigningService
from repro.serve.types import (
    RequestShed,
    ServeRequest,
    ServeResponse,
    ServiceDraining,
)
from repro.sweep.cache import ResultCache
from repro.sweep.engine import SweepEngine, SweepResult

__all__ = [
    "ArtifactSpec",
    "BatchItem",
    "BatchLane",
    "BatchRequest",
    "BatchResult",
    "RequestShed",
    "ServeConfig",
    "ServeRequest",
    "ServeResponse",
    "ServiceDraining",
    "Session",
    "SigningService",
    "SweepResult",
    "UnknownArtifactError",
    "compute_artifact",
    "compute_batch",
    "open_session",
    "serve_session",
    "sweep",
]


def _resolve(name: str, kind: str | None) -> ArtifactSpec:
    if kind is not None:
        return get_spec(kind, name)
    specs = select([name])
    if len(specs) > 1:
        choices = ", ".join(s.artifact_id for s in specs)
        raise UnknownArtifactError(
            f"artifact name {name!r} is ambiguous ({choices}); "
            f"pass kind= or a table_/figure_ prefix")
    return specs[0]


# ---------------------------------------------------------------------------
# Batch request / result types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchItem:
    """One unit of work in a batch.

    ``kind=None`` resolves ``name`` like ``runall --only`` does (table
    or figure); ``kind="table"``/``"figure"`` pins the namespace; and
    ``kind="kernel"`` with ``k`` set names a generated kernel instance
    (e.g. ``BatchItem("os_mul", "kernel", 8)``) that executes on the
    lane engine.
    """

    name: str
    kind: str | None = None
    k: int | None = None

    @property
    def is_kernel(self) -> bool:
        return self.kind == "kernel"

    @property
    def label(self) -> str:
        if self.is_kernel:
            return f"kernel:{self.name}:{self.k}"
        return f"{self.kind or '?'}:{self.name}"


@dataclass(frozen=True)
class BatchRequest:
    """A typed fleet submission for :func:`compute_batch`.

    ``jobs``/``cache``/``cache_dir``/``calibration``/``fast`` carry the
    same semantics as :func:`sweep`; ``lanes`` widens a *single* kernel
    item into that many lock-step lane instances (several identical
    kernel items are equivalent).  ``strict=True`` computes artifact
    items inline -- no cache, no pool, exceptions propagate -- which is
    how :func:`compute_artifact` keeps its historical scalar behavior.
    """

    items: tuple[BatchItem, ...]
    jobs: int = 1
    cache: bool = False
    cache_dir: object | None = None
    calibration: object | None = None
    fast: bool | None = None
    lanes: int | None = None
    strict: bool = False

    @classmethod
    def artifacts(cls, *names: str, **kwargs) -> "BatchRequest":
        """A request over artifact name tokens."""
        return cls(items=tuple(BatchItem(n) for n in names), **kwargs)

    @classmethod
    def kernels(cls, name: str, k: int, lanes: int,
                **kwargs) -> "BatchRequest":
        """A request for one kernel fanned over ``lanes`` instances."""
        return cls(items=(BatchItem(name, "kernel", k),), lanes=lanes,
                   **kwargs)


@dataclass
class BatchLane:
    """Result of one lane (one artifact, or one kernel instance)."""

    item: BatchItem
    index: int                 # lane index within the item's fleet
    status: str                # "hit" | "computed" | "failed"
    payload: dict | None
    wall_s: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status in ("hit", "computed")


@dataclass
class BatchResult:
    """Per-lane payloads plus aggregate stats for one batch."""

    lanes: list[BatchLane]
    jobs: int
    stats: dict = field(default_factory=dict)
    #: the embedded engine result for the batch's artifact items
    #: (``None`` when the batch was strict or kernel-only)
    sweep: SweepResult | None = None

    @property
    def ok(self) -> bool:
        return all(lane.ok for lane in self.lanes)

    @property
    def failed(self) -> list[BatchLane]:
        return [lane for lane in self.lanes if not lane.ok]

    def payloads(self) -> list[dict | None]:
        return [lane.payload for lane in self.lanes]

    def __len__(self) -> int:
        return len(self.lanes)


# ---------------------------------------------------------------------------
# compute_batch
# ---------------------------------------------------------------------------


def _as_item(obj) -> BatchItem:
    if isinstance(obj, BatchItem):
        return obj
    if isinstance(obj, str):
        return BatchItem(obj)
    raise TypeError(f"batch item must be BatchItem or str, got {obj!r}")


def _normalize_request(request, **overrides) -> BatchRequest:
    if isinstance(request, BatchRequest):
        req = request
    elif isinstance(request, (BatchItem, str)):
        req = BatchRequest(items=(_as_item(request),))
    else:
        req = BatchRequest(items=tuple(_as_item(x) for x in request))
    updates = {k: v for k, v in overrides.items() if v is not None}
    return replace(req, **updates) if updates else req


def _kernel_width(req: BatchRequest, indices: list[int]) -> int:
    if req.lanes is not None and len(indices) == 1:
        return req.lanes
    return len(indices)


def _run_artifacts(req: BatchRequest, items, slots, engine_kwargs
                   ) -> SweepResult | None:
    """Artifact items -> per-item BatchLanes (strict inline, or via the
    sweep engine with cache/pool semantics)."""
    if not items:
        return None
    if req.strict:
        if req.calibration is not None:
            from repro.model.system import SystemModel, use_model

            cm = use_model(SystemModel(req.calibration))
        else:
            cm = contextlib.nullcontext()
        with cm:
            for i, it in items:
                spec = _resolve(it.name, it.kind)
                start = time.perf_counter()
                with obs.span("api.compute_artifact",
                              artifact=spec.artifact_id):
                    payload = spec.payload()
                slots[i] = [BatchLane(it, 0, "computed", payload,
                                      time.perf_counter() - start)]
        return None

    specs: dict[tuple, ArtifactSpec] = {}
    for _, it in items:
        spec = _resolve(it.name, it.kind)
        specs.setdefault(spec.key, spec)
    store = ResultCache(req.cache_dir) \
        if (req.cache or req.cache_dir) else None
    engine = SweepEngine(jobs=req.jobs, cache=store,
                         calibration=req.calibration, fast=req.fast,
                         **engine_kwargs)
    result = engine.run(list(specs.values()))
    by_key = {(o.kind, o.name): o for o in result.outcomes}
    for i, it in items:
        spec = _resolve(it.name, it.kind)
        outcome = by_key[spec.key]
        slots[i] = [BatchLane(it, 0, outcome.status, outcome.payload,
                              outcome.wall_s, outcome.error)]
    return result


def _run_kernels(req: BatchRequest, items, slots) -> dict:
    """Kernel items -> lane-engine fleets, one lock-step batch per
    distinct ``(name, k)``; returns summed engine counters."""
    if not items:
        return {}
    groups: dict[tuple[str, int], list[int]] = {}
    by_index = dict(items)
    for i, it in items:
        if it.k is None:
            raise ValueError(
                f"kernel batch item {it.name!r} needs k= (operand size)")
        groups.setdefault((it.name, it.k), []).append(i)

    totals: dict[str, int] = {}
    engine = SweepEngine(jobs=1, calibration=req.calibration,
                         fast=req.fast)
    triples = [(name, k, _kernel_width(req, idxs))
               for (name, k), idxs in groups.items()]
    result = engine.run_lanes(triples)
    for ((name, k), idxs), outcome in zip(groups.items(),
                                          result.outcomes):
        width = _kernel_width(req, idxs)
        if not outcome.ok:
            for i in idxs:
                slots[i] = [BatchLane(by_index[i], 0, "failed", None,
                                      outcome.wall_s, outcome.error)]
            continue
        payload = outcome.payload or {}
        for key, value in (payload.get("engine") or {}).items():
            totals[key] = totals.get(key, 0) + value
        lanes = [
            BatchLane(by_index[idxs[0] if len(idxs) == 1 else idxs[j]],
                      j, "computed",
                      {"kernel": name, "k": k, "lane": j,
                       "cycles": payload["cycles"][j],
                       "instructions": payload["instructions"][j]},
                      outcome.wall_s / width)
            for j in range(width)
        ]
        if len(idxs) == 1:
            slots[idxs[0]] = lanes
        else:
            for j, i in enumerate(idxs):
                slots[i] = [lanes[j]]
    return totals


def compute_batch(request, *, jobs: int | None = None,
                  cache: bool | None = None, cache_dir=None,
                  calibration=None, fast: bool | None = None,
                  lanes: int | None = None, **engine_kwargs
                  ) -> BatchResult:
    """Run a fleet of artifact and/or kernel items.

    ``request`` is a :class:`BatchRequest`, a single item, or an
    iterable of items (strings resolve as artifact names); the explicit
    keywords override the request's fields.  Artifact items go through
    the sweep engine (``jobs`` processes, optional result cache);
    kernel items execute lock-step on the numpy lane engine, one batch
    per distinct ``(name, k)``.  Remaining keyword arguments reach
    :class:`~repro.sweep.engine.SweepEngine` (``timeout_s``,
    ``retries``, ``ledger``, ``compute``).
    """
    req = _normalize_request(request, jobs=jobs, cache=cache,
                             cache_dir=cache_dir,
                             calibration=calibration, fast=fast,
                             lanes=lanes)
    start = time.perf_counter()
    artifact_items = [(i, it) for i, it in enumerate(req.items)
                      if not it.is_kernel]
    kernel_items = [(i, it) for i, it in enumerate(req.items)
                    if it.is_kernel]
    slots: dict[int, list[BatchLane]] = {}
    with obs.span("api.compute_batch", items=str(len(req.items)),
                  jobs=str(req.jobs)):
        sweep_result = _run_artifacts(req, artifact_items, slots,
                                      engine_kwargs)
        lane_counters = _run_kernels(req, kernel_items, slots)

    lanes_out: list[BatchLane] = []
    for i in range(len(req.items)):
        lanes_out.extend(slots[i])
    stats = {
        "items": len(req.items),
        "lanes": len(lanes_out),
        "hits": sum(1 for l in lanes_out if l.status == "hit"),
        "computed": sum(1 for l in lanes_out
                        if l.status == "computed"),
        "failed": sum(1 for l in lanes_out if not l.ok),
        "wall_s": time.perf_counter() - start,
        "lane_engine": lane_counters,
    }
    return BatchResult(lanes=lanes_out, jobs=req.jobs, stats=stats,
                       sweep=sweep_result)


# ---------------------------------------------------------------------------
# Scalar wrappers (batch-of-one)
# ---------------------------------------------------------------------------


def compute_artifact(name: str, kind: str | None = None, *,
                     jobs: int = 1, cache: bool = False, cache_dir=None,
                     calibration=None, fast: bool | None = None) -> dict:
    """Produce one artifact's payload (batch-of-one).

    ``name`` accepts the same tokens as ``runall --only`` (``"7.1"``,
    ``"table_7_2"``, ``"figure.s7.8"``) but must resolve to exactly one
    artifact.  The payload dict carries the rendered ``text``, the
    ``csv`` flattening, the ledger quantities (``cycles``,
    ``energy_uj``, ``data``, ``components``) and the production
    ``wall_s``.

    With the defaults this is byte-identical to the historical scalar
    path: computed inline, nothing cached, exceptions propagating.
    ``cache``/``cache_dir``/``jobs`` opt into the engine-backed path
    with :func:`sweep` semantics.
    """
    strict = not (cache or cache_dir is not None or jobs > 1)
    result = compute_batch(BatchRequest(
        items=(BatchItem(name, kind),), jobs=jobs,
        cache=bool(cache or cache_dir is not None), cache_dir=cache_dir,
        calibration=calibration, fast=fast, strict=strict))
    lane = result.lanes[0]
    if not lane.ok:
        raise RuntimeError(
            f"artifact {name!r} failed: {lane.error}")
    assert lane.payload is not None
    return lane.payload


def sweep(only=None, jobs: int = 1, cache: bool = True,
          cache_dir=None, calibration=None, fast: bool | None = None,
          **engine_kwargs) -> SweepResult:
    """Run artifacts (all of them, or an ``only`` selection) through
    the sweep engine -- a batch wrapper returning the embedded
    :class:`~repro.sweep.engine.SweepResult`.

    ``cache=True`` memoizes results in the on-disk content-addressed
    store (``cache_dir`` overrides its location); ``jobs>1`` fans tasks
    out over a process pool.  ``calibration`` is folded into the cache
    keys *and* installed around every task body (in workers too), so
    the results are always priced with the calibration they are cached
    under.  Remaining keyword arguments reach
    :class:`~repro.sweep.engine.SweepEngine` (``timeout_s``,
    ``retries``, ``ledger``, ``compute``).
    """
    specs = select(list(only) if only is not None else None)
    request = BatchRequest(
        items=tuple(BatchItem(s.name, s.kind) for s in specs),
        jobs=jobs, cache=cache, cache_dir=cache_dir,
        calibration=calibration, fast=fast)
    with obs.span("api.sweep", jobs=str(jobs),
                  artifacts=str(len(specs))):
        result = compute_batch(request, **engine_kwargs)
    if result.sweep is None:          # empty selection
        return SweepResult(outcomes=[], jobs=jobs)
    return result.sweep


class Session:
    """A calibration-scoped view of the whole reproduction.

    While the session is entered, :func:`repro.model.system.shared_model`
    -- and therefore every table/figure producer -- prices against the
    session's calibration, and the session's sweeps key the result
    cache with it (so sessions never poison each other's cache
    entries).
    """

    def __init__(self, calibration=None) -> None:
        from repro.energy.calibration import CALIBRATION
        from repro.model.system import SystemModel

        self.calibration = calibration if calibration is not None \
            else CALIBRATION
        self.model = SystemModel(self.calibration)
        self._cm = None
        self._depth = 0

    @property
    def fingerprint(self) -> str:
        return self.calibration.fingerprint()

    def runner(self, ledger=None):
        """A kernel runner keyed to this session's calibration."""
        from repro.kernels.runner import KernelRunner

        return KernelRunner(ledger=ledger, calibration=self.calibration)

    def compute_artifact(self, name: str, kind: str | None = None,
                         **kwargs) -> dict:
        with self, obs.span("api.session",
                            calibration=self.fingerprint[:12]):
            return compute_artifact(name, kind,
                                    calibration=self.calibration,
                                    **kwargs)

    def compute_batch(self, request, **kwargs) -> BatchResult:
        with self, obs.span("api.session",
                            calibration=self.fingerprint[:12]):
            return compute_batch(request,
                                 calibration=self.calibration, **kwargs)

    def sweep(self, only=None, jobs: int = 1, **kwargs) -> SweepResult:
        with self, obs.span("api.session",
                            calibration=self.fingerprint[:12]):
            return sweep(only, jobs=jobs,
                         calibration=self.calibration, **kwargs)

    # -- context management (re-entrant) --------------------------------

    def __enter__(self) -> Session:
        from repro.model.system import use_model

        if self._depth == 0:
            self._cm = use_model(self.model)
            self._cm.__enter__()
        self._depth += 1
        return self

    def __exit__(self, *exc) -> None:
        if self._depth == 0 or self._cm is None:
            raise RuntimeError(
                "Session.__exit__ without a matching __enter__")
        self._depth -= 1
        if self._depth == 0:
            cm, self._cm = self._cm, None
            cm.__exit__(*exc)


def open_session(calibration=None) -> Session:
    """A :class:`Session` for ``calibration`` (default: the calibrated
    coefficients shipped with the repo).  Use as a context manager::

        with open_session(calibration=my_cal) as s:
            payload = s.compute_artifact("table_7.1")
    """
    return Session(calibration)


@contextlib.asynccontextmanager
async def serve_session(config: ServeConfig | None = None, **kwargs):
    """Boot the signing service for the duration of an ``async with``.

    ``config`` is a :class:`ServeConfig`; keyword arguments override
    its fields (or build one from scratch), so the common cases stay
    one-liners::

        async with serve_session(workers=2) as service:
            response = await service.submit(ServeRequest("sign"))

    On exit the service drains in-flight requests (new submissions
    raise :class:`ServiceDraining`), stops every worker process, and
    appends its ``kind="serve"`` ledger record.
    """
    if config is None:
        config = ServeConfig(**kwargs)
    elif kwargs:
        config = replace(config, **kwargs)
    service = SigningService(config)
    await service.start()
    try:
        yield service
    finally:
        await service.stop()
