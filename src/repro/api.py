"""Public facade: the one import surface for driving the reproduction.

Three entry points (documented in ``docs/API.md``):

* :func:`compute_artifact` -- produce one table/figure payload (text,
  CSV, summarized quantities);
* :func:`sweep` -- run the artifact cross-product through the parallel
  sweep engine with the content-addressed result cache;
* :func:`open_session` -- a context in which every artifact producer,
  kernel runner and sweep prices against a caller-supplied
  :class:`~repro.energy.calibration.Calibration` instead of the
  default.

Everything here delegates to :mod:`repro.harness.registry` and
:mod:`repro.sweep`; nothing below this module needs to be imported for
ordinary use.
"""

from __future__ import annotations

from repro import obs
from repro.harness.registry import (
    ArtifactSpec,
    UnknownArtifactError,
    get_spec,
    select,
)
from repro.sweep.cache import ResultCache
from repro.sweep.engine import SweepEngine, SweepResult

__all__ = [
    "ArtifactSpec",
    "Session",
    "SweepResult",
    "UnknownArtifactError",
    "compute_artifact",
    "open_session",
    "sweep",
]


def _resolve(name: str, kind: str | None) -> ArtifactSpec:
    if kind is not None:
        return get_spec(kind, name)
    specs = select([name])
    if len(specs) > 1:
        choices = ", ".join(s.artifact_id for s in specs)
        raise UnknownArtifactError(
            f"artifact name {name!r} is ambiguous ({choices}); "
            f"pass kind= or a table_/figure_ prefix")
    return specs[0]


def compute_artifact(name: str, kind: str | None = None) -> dict:
    """Produce one artifact's payload.

    ``name`` accepts the same tokens as ``runall --only`` (``"7.1"``,
    ``"table_7_2"``, ``"figure.s7.8"``) but must resolve to exactly one
    artifact.  The payload dict carries the rendered ``text``, the
    ``csv`` flattening, the ledger quantities (``cycles``,
    ``energy_uj``, ``data``, ``components``) and the production
    ``wall_s``.
    """
    spec = _resolve(name, kind)
    with obs.span("api.compute_artifact", artifact=spec.artifact_id):
        return spec.payload()


def sweep(only=None, jobs: int = 1, cache: bool = True,
          cache_dir=None, calibration=None, **engine_kwargs
          ) -> SweepResult:
    """Run artifacts (all of them, or an ``only`` selection) through
    the sweep engine.

    ``cache=True`` memoizes results in the on-disk content-addressed
    store (``cache_dir`` overrides its location); ``jobs>1`` fans tasks
    out over a process pool.  ``calibration`` is folded into the cache
    keys *and* installed around every task body (in workers too), so
    the results are always priced with the calibration they are cached
    under.  Remaining keyword arguments reach
    :class:`~repro.sweep.engine.SweepEngine` (``timeout_s``,
    ``retries``, ``ledger``, ``compute``).
    """
    specs = select(list(only) if only is not None else None)
    store = ResultCache(cache_dir) if (cache or cache_dir) else None
    engine = SweepEngine(jobs=jobs, cache=store,
                         calibration=calibration, **engine_kwargs)
    with obs.span("api.sweep", jobs=str(jobs),
                  artifacts=str(len(specs))):
        return engine.run(specs)


class Session:
    """A calibration-scoped view of the whole reproduction.

    While the session is entered, :func:`repro.model.system.shared_model`
    -- and therefore every table/figure producer -- prices against the
    session's calibration, and the session's sweeps key the result
    cache with it (so sessions never poison each other's cache
    entries).
    """

    def __init__(self, calibration=None) -> None:
        from repro.energy.calibration import CALIBRATION
        from repro.model.system import SystemModel

        self.calibration = calibration if calibration is not None \
            else CALIBRATION
        self.model = SystemModel(self.calibration)
        self._cm = None
        self._depth = 0

    @property
    def fingerprint(self) -> str:
        return self.calibration.fingerprint()

    def runner(self, ledger=None):
        """A kernel runner keyed to this session's calibration."""
        from repro.kernels.runner import KernelRunner

        return KernelRunner(ledger=ledger, calibration=self.calibration)

    def compute_artifact(self, name: str, kind: str | None = None) -> dict:
        with self, obs.span("api.session",
                            calibration=self.fingerprint[:12]):
            return compute_artifact(name, kind)

    def sweep(self, only=None, jobs: int = 1, **kwargs) -> SweepResult:
        with self, obs.span("api.session",
                            calibration=self.fingerprint[:12]):
            return sweep(only, jobs=jobs,
                         calibration=self.calibration, **kwargs)

    # -- context management (re-entrant) --------------------------------

    def __enter__(self) -> Session:
        from repro.model.system import use_model

        if self._depth == 0:
            self._cm = use_model(self.model)
            self._cm.__enter__()
        self._depth += 1
        return self

    def __exit__(self, *exc) -> None:
        if self._depth == 0 or self._cm is None:
            raise RuntimeError(
                "Session.__exit__ without a matching __enter__")
        self._depth -= 1
        if self._depth == 0:
            cm, self._cm = self._cm, None
            cm.__exit__(*exc)


def open_session(calibration=None) -> Session:
    """A :class:`Session` for ``calibration`` (default: the calibrated
    coefficients shipped with the repo).  Use as a context manager::

        with open_session(calibration=my_cal) as s:
            payload = s.compute_artifact("table_7.1")
    """
    return Session(calibration)
