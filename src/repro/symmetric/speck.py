"""Speck64/128: a lightweight ARX block cipher (reference model).

Speck64/128 (Beaulieu et al., NSA 2013): 64-bit blocks, 128-bit keys,
27 rounds of add-rotate-xor on 32-bit words -- a natural fit for Pete's
ISA, which is why it anchors the symmetric energy-per-byte number the
protocol examples use.

Round function (x = high word, y = low word, k = round key)::

    x = (ROR(x, 8) + y) ^ k
    y = ROL(y, 3) ^ x
"""

from __future__ import annotations

MASK32 = 0xFFFFFFFF
ROUNDS = 27
ALPHA = 8
BETA = 3


def _ror(value: int, amount: int) -> int:
    return ((value >> amount) | (value << (32 - amount))) & MASK32


def _rol(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & MASK32


def speck64_expand_key(key: int) -> list[int]:
    """Expand a 128-bit key into the 27 round keys."""
    if not 0 <= key < (1 << 128):
        raise ValueError("Speck64/128 takes a 128-bit key")
    parts = [(key >> (32 * i)) & MASK32 for i in range(4)]
    k = [parts[0]]
    l = parts[1:]
    # the schedule reuses the round function on (l_i, k_i) with the
    # round index as the "key"
    for i in range(ROUNDS - 1):
        x = ((_ror(l[i], ALPHA) + k[i]) & MASK32) ^ i
        y = _rol(k[i], BETA) ^ x
        l.append(x)
        k.append(y)
    return k[:ROUNDS]


def speck64_encrypt(block: int, round_keys: list[int]) -> int:
    """Encrypt one 64-bit block."""
    if not 0 <= block < (1 << 64):
        raise ValueError("Speck64 blocks are 64 bits")
    x = (block >> 32) & MASK32
    y = block & MASK32
    for k in round_keys:
        x = ((_ror(x, ALPHA) + y) & MASK32) ^ k
        y = _rol(y, BETA) ^ x
    return (x << 32) | y


def speck64_decrypt(block: int, round_keys: list[int]) -> int:
    """Decrypt one 64-bit block."""
    x = (block >> 32) & MASK32
    y = block & MASK32
    for k in reversed(round_keys):
        y = _ror(y ^ x, BETA)
        x = _rol(((x ^ k) - y) & MASK32, ALPHA)
    return (x << 32) | y


def speck_ctr_keystream(key: int, nonce: int, blocks: int) -> bytes:
    """CTR-mode keystream: Speck64 over an incrementing counter."""
    round_keys = speck64_expand_key(key)
    out = bytearray()
    for counter in range(blocks):
        block = ((nonce & MASK32) << 32) | (counter & MASK32)
        out += speck64_encrypt(block, round_keys).to_bytes(8, "little")
    return bytes(out)
