"""Symmetric encryption for the session-traffic side of the story.

The paper frames asymmetric cryptography as the key-establishment step
whose cost amortizes over symmetric bulk traffic (Section 2.1.1), and
cites CryptoManiac-style symmetric acceleration as "complementary to
ours".  To ground the amortization examples in a measurement instead of
an assumption, this subpackage implements Speck64/128 -- an ARX cipher
designed exactly for Pete-class microcontrollers -- both as a reference
Python implementation and as a generated Pete assembly kernel whose
measured cycles/byte feed the protocol energy model.
"""

from repro.symmetric.speck import (
    speck64_decrypt,
    speck64_encrypt,
    speck64_expand_key,
    speck_ctr_keystream,
)

__all__ = [
    "speck64_expand_key",
    "speck64_encrypt",
    "speck64_decrypt",
    "speck_ctr_keystream",
]
