"""Delay-slot-aware control-flow graphs over Pete programs.

The unit of analysis is the *instruction*, not the branch bundle: a
control transfer at index ``i`` always executes its delay slot at
``i + 1`` first (MIPS architectural semantics, which
:class:`repro.pete.cpu.Pete` implements), so the CFG places the
branch's outgoing edges on the *slot* instruction:

* non-control instruction -> ``i + 1``;
* control instruction at ``i`` -> its slot ``i + 1``;
* slot of a conditional branch -> branch target and fall-through
  ``i + 2``;
* slot of an unconditional transfer (``b``, ``j``) -> target only;
* slot of ``jal`` -> callee entry *and* the call's return point (the
  callee is analyzed in-graph; its effects are not summarized back to
  the return point, which keeps the may-analyses sound);
* slot of ``jr``/``jalr`` -> function exit (the kernels are leaf
  functions returning to a harness).

Basic blocks are maximal single-entry straight-line runs over that
instruction graph; the dataflow passes run on the instruction graph
directly (the programs are a few thousand instructions at most) and the
blocks exist for reporting and for clients that want a coarser view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import insn
from repro.pete.assembler import Assembled, assemble
from repro.pete.isa import Decoded, PeteISA

EXIT = -1  # symbolic successor for leaving the program


@dataclass
class AsmProgram:
    """A decoded program plus the assembler metadata the analyses use."""

    name: str
    words: list[int]
    base: int = 0
    labels: dict[str, int] = field(default_factory=dict)
    source_lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.decoded: list[Decoded | None] = []
        for word in self.words:
            try:
                self.decoded.append(PeteISA.decode(word))
            except ValueError:
                self.decoded.append(None)  # data word (.word)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_assembled(cls, assembled: Assembled, name: str = "") -> "AsmProgram":
        return cls(name=name, words=list(assembled.words),
                   base=assembled.base, labels=dict(assembled.labels),
                   source_lines=list(assembled.source_lines))

    @classmethod
    def from_source(cls, source: str, name: str = "",
                    base: int = 0) -> "AsmProgram":
        return cls.from_assembled(assemble(source, base), name)

    @classmethod
    def from_words(cls, words: list[int], name: str = "",
                   base: int = 0) -> "AsmProgram":
        return cls(name=name, words=list(words), base=base)

    # -- conveniences ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.words)

    def line(self, index: int) -> str:
        """Best description of instruction ``index`` for a message:
        the original source line when the assembler recorded one, else
        the disassembly."""
        if 0 <= index < len(self.source_lines):
            text = self.source_lines[index].strip()
            if text:
                return text
        d = self.decoded[index]
        if d is None:
            return f".word 0x{self.words[index]:08x}"
        from repro.pete.disassembler import disassemble_decoded

        return disassemble_decoded(d, self.base + 4 * index)

    def address(self, index: int) -> int:
        return self.base + 4 * index

    def label_at(self, index: int) -> str | None:
        for name, slot in self.labels.items():
            if slot == index:
                return name
        return None


def delay_slots(program: AsmProgram) -> set[int]:
    """Indices occupied by branch/jump delay slots.

    Back-to-back branches are resolved in ascending order: a control
    transfer that itself sits in an earlier transfer's delay slot is a
    ``control-in-delay-slot`` lint finding and does *not* claim a slot
    of its own, so ``branch; branch; insn`` marks only index 1 as a
    slot (owned by index 0) and a chain ``branch; branch; branch``
    marks indices 1 (owner 0) and 3 (owner 2).  This keeps exactly one
    owner per slot, which the CFG and the abstract interpreter rely on.
    """
    slots: set[int] = set()
    for i, d in enumerate(program.decoded):
        if i in slots:
            continue  # control in a slot: finding, not a slot owner
        if d is not None and insn.is_control(d) and i + 1 < len(program):
            slots.add(i + 1)
    return slots


def branch_target_index(program: AsmProgram, index: int,
                        slots: set[int] | None = None) -> int | None:
    """Static target of the control instruction at ``index`` as an
    instruction index, or ``None`` for register-indirect transfers.

    When ``slots`` (from :func:`delay_slots`) is given, a target that
    lands *inside another instruction's delay slot* is rejected
    (returns ``None``): jumping into a slot would execute it without
    its owner, which has no well-defined block boundary.  The
    ``branch-into-delay-slot`` lint reports the defect; callers that
    want the raw target for diagnostics omit ``slots``.
    """
    d = program.decoded[index]
    if d is None:
        return None
    if d.is_branch:
        target = index + 1 + d.imm
    elif d.mnemonic in ("j", "jal"):
        target = ((d.target << 2) - program.base) // 4
    else:
        return None  # jr / jalr
    if slots is not None and target in slots:
        return None
    return target


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions [start, end)."""

    start: int
    end: int
    succs: list[int] = field(default_factory=list)  # successor block starts


@dataclass
class CFG:
    """Instruction-level successor/predecessor maps plus basic blocks."""

    program: AsmProgram
    succ: list[tuple[int, ...]]
    pred: list[tuple[int, ...]]
    slots: set[int]
    blocks: list[BasicBlock]

    def reachable(self, roots: tuple[int, ...] = (0,)) -> set[int]:
        seen: set[int] = set()
        stack = [r for r in roots if 0 <= r < len(self.succ)]
        while stack:
            i = stack.pop()
            if i in seen:
                continue
            seen.add(i)
            for s in self.succ[i]:
                if s != EXIT and s not in seen:
                    stack.append(s)
        return seen


def build_cfg(program: AsmProgram) -> CFG:
    """Construct the delay-slot-aware CFG.

    Malformed control flow (out-of-range targets, a control transfer in
    a delay slot, a control transfer as the last word) degrades
    gracefully: the offending edge is dropped and the corresponding lint
    reports the defect.
    """
    n = len(program)
    slots = delay_slots(program)
    succ: list[tuple[int, ...]] = []
    for i in range(n):
        d = program.decoded[i]
        if d is None:  # data word: no flow
            succ.append((EXIT,))
            continue
        if i in slots:
            owner = program.decoded[i - 1]
            edges: list[int] = []
            target = branch_target_index(program, i - 1, slots)
            if target is not None and 0 <= target < n:
                edges.append(target)
            if owner is not None and not insn.is_unconditional(owner):
                edges.append(i + 1 if i + 1 < n else EXIT)
            if owner is not None and owner.mnemonic == "jal":
                # call: flow also resumes at the return point (the
                # callee's effects are not summarized -- may-analyses
                # stay sound, taint across returns is documented as
                # under-approximate)
                edges.append(i + 1 if i + 1 < n else EXIT)
            if owner is not None and owner.mnemonic in ("jr", "jalr"):
                edges.append(EXIT)
            succ.append(tuple(dict.fromkeys(edges)) or (EXIT,))
        elif insn.is_control(d) and i + 1 < n:
            succ.append((i + 1,))
        elif d.mnemonic == "break":
            succ.append((EXIT,))
        else:
            succ.append((i + 1,) if i + 1 < n else (EXIT,))
    pred: list[list[int]] = [[] for _ in range(n)]
    for i, edges in enumerate(succ):
        for s in edges:
            if s != EXIT:
                pred[s].append(i)
    blocks = _build_blocks(program, succ, pred)
    return CFG(program, succ, tuple(map(tuple, pred)), slots, blocks)


def _build_blocks(program: AsmProgram, succ, pred) -> list[BasicBlock]:
    n = len(program)
    if n == 0:
        return []
    leaders = {0}
    for i in range(n):
        if len(succ[i]) > 1 or any(s != i + 1 for s in succ[i]):
            for s in succ[i]:
                if s != EXIT:
                    leaders.add(s)
            if i + 1 < n:
                leaders.add(i + 1)
        if len(pred[i]) > 1:
            leaders.add(i)
    ordered = sorted(leaders)
    blocks = []
    for idx, start in enumerate(ordered):
        end = ordered[idx + 1] if idx + 1 < len(ordered) else n
        last = end - 1
        succs = sorted({s for s in succ[last] if s != EXIT})
        blocks.append(BasicBlock(start, end, succs))
    return blocks
