"""Command-line front end: ``python -m repro.analysis``.

Analyzes the registered kernels and microprograms (``--all``, the
default) or a named subset, prints human-readable or JSON reports, and
exits nonzero when any *unwaived* finding remains -- which is how
``make lint`` and CI gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import registry


def _human(report: registry.ProgramReport, show_waived: bool) -> str:
    lines = []
    status = "ok" if report.clean else f"{len(report.findings)} finding(s)"
    waived = f", {len(report.waived)} waived" if report.waived else ""
    lines.append(f"{report.kind:<10} {report.name:<14} {status}{waived}")
    for f in report.findings:
        lines.append(f"    [{f.check}] @{f.index}: {f.message}")
    if show_waived:
        for f, w in report.waived:
            lines.append(f"    [waived {f.check}] @{f.index}: {f.message}")
            lines.append(f"        reason: {w.reason}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static verifier for the shipped Pete kernels and "
                    "FFAU microprograms.")
    parser.add_argument("--all", action="store_true",
                        help="analyze every registered program (default "
                             "when no --program is given)")
    parser.add_argument("--program", "-p", action="append", default=[],
                        metavar="NAME",
                        help="analyze one registered program (repeatable)")
    parser.add_argument("--list", action="store_true",
                        help="list registered programs and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON report instead of text")
    parser.add_argument("--show-waived", action="store_true",
                        help="include waived findings and their reasons")
    args = parser.parse_args(argv)

    if args.list:
        for spec in registry.KERNELS:
            taint = "taint" if spec.taint is not None else "no-taint"
            print(f"kernel     {spec.name:<14} abi={spec.abi.name:<7} "
                  f"{taint:<8} waivers={len(spec.waivers)}")
        for mspec in registry.MICROPROGRAMS:
            print(f"microcode  {mspec.name}")
        return 0

    if args.program:
        known = {s.name: s for s in registry.KERNELS}
        mknown = {s.name: s for s in registry.MICROPROGRAMS}
        reports = []
        for name in args.program:
            if name in known:
                reports.append(registry.report_kernel(known[name]))
            elif name in mknown:
                reports.append(registry.report_micro(mknown[name]))
            else:
                parser.error(f"unknown program {name!r} "
                             f"(see --list)")
    else:
        reports = registry.all_reports()

    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        for report in reports:
            print(_human(report, args.show_waived))
        total = sum(len(r.findings) for r in reports)
        waived = sum(len(r.waived) for r in reports)
        print(f"{len(reports)} program(s): {total} finding(s), "
              f"{waived} waived")

    return 1 if any(not r.clean for r in reports) else 0


if __name__ == "__main__":
    sys.exit(main())
