"""Command-line front end: ``python -m repro.analysis``.

Two entry points share this module:

* the legacy lint pass (``python -m repro.analysis --all``), which
  analyzes the registered kernels and microprograms, prints
  human-readable or JSON reports, and exits nonzero when any
  *unwaived* finding remains -- how ``make lint`` gates on it; and
* ``python -m repro.analysis verify [--all|--program NAME] [--json]
  [--out FILE] [--static] [--record]``, the whole-program verifier:
  abstract interpretation, interprocedural taint, the static
  superblock map, and cycle/energy upper bounds asserted against an
  actual harness run (see :mod:`repro.analysis.verify`).  ``--out``
  writes the machine-readable findings artifact CI uploads;
  ``--record`` appends one ``kind="analysis"`` record per kernel to
  the regress ledger.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import TYPE_CHECKING

from repro.analysis import registry

if TYPE_CHECKING:
    from repro.analysis.verify import VerifyReport


def _verify_human(report: "VerifyReport", show_waived: bool) -> str:
    lines = []
    status = "ok" if report.clean else f"{len(report.findings)} finding(s)"
    waived = f", {len(report.waived)} waived" if report.waived else ""
    bound = report.bound.cycles if report.bound else "-"
    obs = report.observed.get("cycles", "-")
    tight = f"{report.tightness:.2f}x" if report.tightness else "-"
    lines.append(f"kernel     {report.name:<14} {status}{waived}  "
                 f"bound={bound} observed={obs} tightness={tight}  "
                 f"superblocks={len(report.superblocks)} "
                 f"({report.superblock_coverage:.0%} of image)")
    for f in report.findings:
        lines.append(f"    [{f.check}] @{f.index}: {f.message}")
    if show_waived:
        for f, w in report.waived:
            lines.append(f"    [waived {f.check}] @{f.index}: {f.message}")
            lines.append(f"        reason: {w.reason}")
    for header, trips in report.assumed_loops:
        lines.append(f"    assumed trip bound {trips} for loop at "
                     f"@{header}")
    return "\n".join(lines)


def verify_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis verify",
        description="Whole-program verifier: abstract interpretation, "
                    "interprocedural taint, superblock map, static "
                    "cycle/energy bounds asserted against a real run.")
    parser.add_argument("--all", action="store_true",
                        help="verify every registered kernel (default "
                             "when no --program is given)")
    parser.add_argument("--program", "-p", action="append", default=[],
                        metavar="NAME", help="verify one kernel "
                        "(repeatable)")
    parser.add_argument("--json", action="store_true",
                        help="emit the JSON findings artifact to stdout")
    parser.add_argument("--out", metavar="FILE",
                        help="also write the JSON artifact to FILE")
    parser.add_argument("--static", action="store_true",
                        help="skip the harness run (no bound-vs-observed "
                             "assertion; static results only)")
    parser.add_argument("--record", action="store_true",
                        help="append kind=analysis records to the "
                             "regress ledger")
    parser.add_argument("--show-waived", action="store_true",
                        help="include waived findings and their reasons")
    args = parser.parse_args(argv)

    from repro.analysis.verify import (
        verify_all,
        verify_kernel,
        verify_record,
    )

    observe = not args.static
    if args.program:
        known = {s.name: s for s in registry.KERNELS}
        try:
            specs = [known[name] for name in args.program]
        except KeyError as exc:
            parser.error(f"unknown kernel {exc.args[0]!r} (see --list)")
        reports = [verify_kernel(s, observe=observe) for s in specs]
    else:
        reports = verify_all(observe=observe)

    # the microprogram checks ride along so `verify --all` covers the
    # complete registry, not only the Pete kernels
    micro = ([] if args.program
             else [registry.report_micro(m)
                   for m in registry.MICROPROGRAMS])

    payload = {
        "reports": [r.to_dict() for r in reports],
        "microprograms": [m.to_dict() for m in micro],
        "clean": all(r.clean for r in reports) and all(
            m.clean for m in micro),
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for report in reports:
            print(_verify_human(report, args.show_waived))
        for m in micro:
            status = "ok" if m.clean else f"{len(m.findings)} finding(s)"
            print(f"microcode  {m.name:<14} {status}")
        total = sum(len(r.findings) for r in reports) + sum(
            len(m.findings) for m in micro)
        waived = sum(len(r.waived) for r in reports)
        print(f"{len(reports) + len(micro)} program(s): {total} "
              f"finding(s), {waived} waived")

    if args.record:
        from repro.regress.ledger import default_ledger

        ledger = default_ledger()
        for report in reports:
            ledger.append(verify_record(report))

    return 0 if payload["clean"] else 1


def _human(report: registry.ProgramReport, show_waived: bool) -> str:
    lines = []
    status = "ok" if report.clean else f"{len(report.findings)} finding(s)"
    waived = f", {len(report.waived)} waived" if report.waived else ""
    lines.append(f"{report.kind:<10} {report.name:<14} {status}{waived}")
    for f in report.findings:
        lines.append(f"    [{f.check}] @{f.index}: {f.message}")
    if show_waived:
        for f, w in report.waived:
            lines.append(f"    [waived {f.check}] @{f.index}: {f.message}")
            lines.append(f"        reason: {w.reason}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "verify":
        return verify_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static verifier for the shipped Pete kernels and "
                    "FFAU microprograms.")
    parser.add_argument("--all", action="store_true",
                        help="analyze every registered program (default "
                             "when no --program is given)")
    parser.add_argument("--program", "-p", action="append", default=[],
                        metavar="NAME",
                        help="analyze one registered program (repeatable)")
    parser.add_argument("--list", action="store_true",
                        help="list registered programs and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON report instead of text")
    parser.add_argument("--show-waived", action="store_true",
                        help="include waived findings and their reasons")
    args = parser.parse_args(argv)

    if args.list:
        for spec in registry.KERNELS:
            taint = "taint" if spec.taint is not None else "no-taint"
            print(f"kernel     {spec.name:<14} abi={spec.abi.name:<7} "
                  f"{taint:<8} waivers={len(spec.waivers)}")
        for mspec in registry.MICROPROGRAMS:
            print(f"microcode  {mspec.name}")
        return 0

    if args.program:
        known = {s.name: s for s in registry.KERNELS}
        mknown = {s.name: s for s in registry.MICROPROGRAMS}
        reports = []
        for name in args.program:
            if name in known:
                reports.append(registry.report_kernel(known[name]))
            elif name in mknown:
                reports.append(registry.report_micro(mknown[name]))
            else:
                parser.error(f"unknown program {name!r} "
                             f"(see --list)")
    else:
        reports = registry.all_reports()

    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        for report in reports:
            print(_human(report, args.show_waived))
        total = sum(len(r.findings) for r in reports)
        waived = sum(len(r.waived) for r in reports)
        print(f"{len(reports)} program(s): {total} finding(s), "
              f"{waived} waived")

    return 1 if any(not r.clean for r in reports) else 0


if __name__ == "__main__":
    sys.exit(main())
