"""Secret-taint analysis: static constant-time classification.

Section 2.1.5 observes that naive double-and-add leaks the scalar's
Hamming weight while the Montgomery ladder does data-independent work;
:mod:`repro.model.side_channel` *measures* that on Billie.  This pass
proves the same property about the code: it propagates a SECRET taint
forward through registers and memory and reports the two classic
timing-channel sinks,

* ``secret-dependent-branch`` -- a conditional branch (or indirect
  jump) whose condition reads a tainted register, and
* ``secret-dependent-address`` -- a load/store whose address base is
  tainted (data-dependent memory indexing; the cache-timing channel of
  table-based methods).

A program with *no* findings performs a data-independent instruction
and memory-access sequence -- constant time in the program-counter /
address-trace model (the model constant-time disciplines use; see
"Efficient and Secure ECDSA Algorithm and its Applications", PAPERS.md).
Implicit flows past a flagged branch are not tracked further: the branch
itself is already reported, which is the property we verify.

Memory is one taint bit: kernels stream their operands through a small
arena, so any store of a secret value makes subsequent loads suspect.
That is deliberately coarse but sound for the leak classes above, and
it is exact on every shipped kernel (see ``tests/analysis``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.analysis import insn
from repro.analysis.absdom import AbsVal
from repro.analysis.cfg import CFG, EXIT, AsmProgram
from repro.analysis.lints import Finding
from repro.pete.isa import Decoded

if TYPE_CHECKING:
    from repro.analysis.interp import InterpResult

_Sink = Callable[[str, int, str], None]


@dataclass(frozen=True)
class TaintSpec:
    """What is secret when the kernel is entered.

    ``secret_regs`` taints register *values* at entry (e.g. ``("a1",)``
    when ``$a1`` holds the scalar); ``secret_memory`` taints RAM
    contents (operands passed by pointer -- field elements, keys).
    """

    secret_regs: tuple[str, ...] = ()
    secret_memory: bool = False

    def entry_mask(self) -> int:
        return insn.reg_mask(*self.secret_regs) if self.secret_regs else 0


def taint_findings(cfg: CFG, spec: TaintSpec,
                   roots: tuple[int, ...] = (0,)) -> list[Finding]:
    """Run the forward taint fixpoint and return the sink findings."""
    program = cfg.program
    n = len(program)
    # state per instruction: (tainted-reg bitmask, memory-tainted bit)
    taint_in = [0] * n
    mem_in = [False] * n
    seen = [False] * n
    work = []
    for r in roots:
        if 0 <= r < n:
            taint_in[r] = spec.entry_mask()
            mem_in[r] = spec.secret_memory
            seen[r] = True
            work.append(r)
    findings: dict[tuple[str, int], Finding] = {}

    def sink(check: str, index: int, message: str) -> None:
        findings.setdefault((check, index), Finding(
            check=check, index=index, message=message,
            program=program.name))

    while work:
        i = work.pop()
        d = program.decoded[i]
        state, mem = taint_in[i], mem_in[i]
        if d is not None:
            state, mem = _transfer(d, i, state, mem, program, sink)
        for s in cfg.succ[i]:
            if s == EXIT:
                continue
            merged = taint_in[s] | state
            merged_mem = mem_in[s] or mem
            if not seen[s] or merged != taint_in[s] or merged_mem != mem_in[s]:
                taint_in[s] = merged
                mem_in[s] = merged_mem
                seen[s] = True
                work.append(s)
    return sorted(findings.values(), key=lambda f: (f.index, f.check))


def _transfer(d: Decoded, i: int, state: int, mem: bool,
              program: AsmProgram, sink: _Sink) -> tuple[int, bool]:
    m = d.mnemonic
    used = insn.uses(d)
    if d.is_branch:
        if insn.branch_condition_uses(d) & state:
            regs = insn.mask_names(insn.branch_condition_uses(d) & state)
            sink("secret-dependent-branch", i,
                 f"branch condition depends on secret data "
                 f"(via {', '.join(regs)}): {program.line(i)}")
        return state, mem
    if m in ("jr", "jalr") and (used & state):
        sink("secret-dependent-branch", i,
             f"indirect jump target depends on secret data: "
             f"{program.line(i)}")
        return state, mem
    if d.is_load:
        base = 1 << d.rs
        if base & state:
            sink("secret-dependent-address", i,
                 f"load address depends on secret data: {program.line(i)}")
        tainted = mem or bool(base & state)
        define = insn.defs(d)
        state = (state | define) if tainted else (state & ~define)
        return state, mem
    if d.is_store:
        if (1 << d.rs) & state:
            sink("secret-dependent-address", i,
                 f"store address depends on secret data: {program.line(i)}")
        if (1 << d.rt) & state:
            mem = True
        return state, mem
    # ordinary computation: outputs tainted iff any input is
    define = insn.defs(d)
    if define:
        state = (state | define) if (used & state) else (state & ~define)
    return state, mem


# ---------------------------------------------------------------------------
# Interprocedural taint over an abstract-interpretation result
# ---------------------------------------------------------------------------

_Key = tuple  # (base symbol | None, byte offset) -- the interp's memory keys


def _may_alias(addr: AbsVal | None, key: _Key) -> bool:
    """Could the abstract address touch the tracked word ``key``?
    Distinct entry-symbolic bases are assumed non-aliasing (the same
    assumption the value walk makes; see ARCHITECTURE.md)."""
    if addr is None or addr.is_top:
        return True
    if addr.sym != key[0]:
        return False
    return addr.lo - 3 <= key[1] <= addr.hi + 3


def _exact_key(addr: AbsVal | None) -> _Key | None:
    if addr is not None and not addr.is_top and addr.is_singleton:
        return (addr.sym, addr.lo)
    return None


def taint_interp(result: InterpResult, spec: TaintSpec) -> list[Finding]:
    """Interprocedural secret-flow analysis with per-word memory taint.

    Runs the same sink checks as :func:`taint_findings` but over the
    interprocedural edge set an abstract-interpretation walk actually
    traversed (:class:`repro.analysis.interp.InterpResult.iedges` --
    call edges, return edges, loop back edges), using the walk's
    resolved load/store addresses to key memory taint per word instead
    of one blob bit.  State per instruction:

    * ``regs`` -- tainted-location bitmask (GPRs + HI/LO/OvFlo);
    * ``tainted`` -- word keys a secret value was stored to (may-set,
      grows at joins);
    * ``clean`` -- word keys *definitely* overwritten with a public
      value since entry (must-set, intersected at joins); with
      ``spec.secret_memory`` the initial RAM image is suspect, and a
      load is cleared only by membership here;
    * ``blob`` -- a secret store to an unresolved/ranged address
      happened: any load not proven clean is tainted.

    The split is what lets the composed ``fmul_*`` call trees verify:
    the spilled ``$ra`` word stays in ``clean`` (its base -- the entry
    ``$sp`` -- cannot alias the operand arenas), so reloading it does
    not taint the final ``jr`` even though the multiplier's product
    stores set ``blob``.
    """
    program = result.program
    entry_regs = spec.entry_mask()
    entry = result.entry
    # per-instruction in-states
    regs_in: dict[int, int] = {entry: entry_regs}
    blob_in: dict[int, bool] = {entry: bool(spec.secret_memory)}
    tkeys_in: dict[int, frozenset] = {entry: frozenset()}
    clean_in: dict[int, frozenset] = {entry: frozenset()}
    findings: dict[tuple[str, int], Finding] = {}

    def sink(check: str, index: int, message: str) -> None:
        findings.setdefault((check, index), Finding(
            check=check, index=index, message=message,
            program=program.name))

    work = [entry]
    while work:
        i = work.pop()
        d = program.decoded[i]
        state = (regs_in[i], blob_in[i], tkeys_in[i], clean_in[i])
        if d is not None:
            state = _itransfer(d, i, state, result, sink)
        regs, blob, tkeys, clean = state
        for s in result.iedges.get(i, ()):
            if s == EXIT:
                continue
            if s not in regs_in:
                regs_in[s] = regs
                blob_in[s] = blob
                tkeys_in[s] = tkeys
                clean_in[s] = clean
                work.append(s)
                continue
            m_regs = regs_in[s] | regs
            m_blob = blob_in[s] or blob
            m_tkeys = tkeys_in[s] | tkeys
            m_clean = clean_in[s] & clean
            if (m_regs != regs_in[s] or m_blob != blob_in[s]
                    or m_tkeys != tkeys_in[s] or m_clean != clean_in[s]):
                regs_in[s] = m_regs
                blob_in[s] = m_blob
                tkeys_in[s] = m_tkeys
                clean_in[s] = m_clean
                work.append(s)
    return sorted(findings.values(), key=lambda f: (f.index, f.check))


_IState = tuple[int, bool, "frozenset[_Key]", "frozenset[_Key]"]


def _itransfer(d: Decoded, i: int, state: _IState,
               result: InterpResult, sink: _Sink) -> _IState:
    regs, blob, tkeys, clean = state
    m = d.mnemonic
    used = insn.uses(d)
    if d.is_branch:
        if insn.branch_condition_uses(d) & regs:
            names = insn.mask_names(insn.branch_condition_uses(d) & regs)
            sink("secret-dependent-branch", i,
                 f"branch condition depends on secret data "
                 f"(via {', '.join(names)}): {result.program.line(i)}")
        return regs, blob, tkeys, clean
    if m in ("jr", "jalr") and (used & regs):
        sink("secret-dependent-branch", i,
             f"indirect jump target depends on secret data: "
             f"{result.program.line(i)}")
        return regs, blob, tkeys, clean
    addr = result.addr_info.get(i)
    if d.is_load:
        if (1 << d.rs) & ~1 & regs:
            sink("secret-dependent-address", i,
                 f"load address depends on secret data: "
                 f"{result.program.line(i)}")
        tainted = bool((1 << d.rs) & ~1 & regs)
        if not tainted and any(_may_alias(addr, k) for k in tkeys):
            tainted = True
        if not tainted and blob:
            key = _exact_key(addr)
            tainted = key is None or key not in clean
        define = insn.defs(d)
        regs = (regs | define) if tainted else (regs & ~define)
        return regs, blob, tkeys, clean
    if d.is_store:
        if (1 << d.rs) & ~1 & regs:
            sink("secret-dependent-address", i,
                 f"store address depends on secret data: "
                 f"{result.program.line(i)}")
        value_tainted = bool((1 << d.rt) & ~1 & regs)
        key = _exact_key(addr) if m == "sw" else None
        if value_tainted:
            if key is not None:
                tkeys = tkeys | {key}
                clean = clean - {key}
            else:
                # unresolved/ranged/partial secret store: everything it
                # may alias is suspect
                blob = True
                clean = frozenset(k for k in clean
                                  if not _may_alias(addr, k))
        else:
            if key is not None:  # strong public overwrite of one word
                tkeys = tkeys - {key}
                clean = clean | {key}
        return regs, blob, tkeys, clean
    define = insn.defs(d)
    if define:
        regs = (regs | define) if (used & regs) else (regs & ~define)
    return regs, blob, tkeys, clean
