"""Secret-taint analysis: static constant-time classification.

Section 2.1.5 observes that naive double-and-add leaks the scalar's
Hamming weight while the Montgomery ladder does data-independent work;
:mod:`repro.model.side_channel` *measures* that on Billie.  This pass
proves the same property about the code: it propagates a SECRET taint
forward through registers and memory and reports the two classic
timing-channel sinks,

* ``secret-dependent-branch`` -- a conditional branch (or indirect
  jump) whose condition reads a tainted register, and
* ``secret-dependent-address`` -- a load/store whose address base is
  tainted (data-dependent memory indexing; the cache-timing channel of
  table-based methods).

A program with *no* findings performs a data-independent instruction
and memory-access sequence -- constant time in the program-counter /
address-trace model (the model constant-time disciplines use; see
"Efficient and Secure ECDSA Algorithm and its Applications", PAPERS.md).
Implicit flows past a flagged branch are not tracked further: the branch
itself is already reported, which is the property we verify.

Memory is one taint bit: kernels stream their operands through a small
arena, so any store of a secret value makes subsequent loads suspect.
That is deliberately coarse but sound for the leak classes above, and
it is exact on every shipped kernel (see ``tests/analysis``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import insn
from repro.analysis.cfg import CFG, EXIT
from repro.analysis.lints import Finding


@dataclass(frozen=True)
class TaintSpec:
    """What is secret when the kernel is entered.

    ``secret_regs`` taints register *values* at entry (e.g. ``("a1",)``
    when ``$a1`` holds the scalar); ``secret_memory`` taints RAM
    contents (operands passed by pointer -- field elements, keys).
    """

    secret_regs: tuple[str, ...] = ()
    secret_memory: bool = False

    def entry_mask(self) -> int:
        return insn.reg_mask(*self.secret_regs) if self.secret_regs else 0


def taint_findings(cfg: CFG, spec: TaintSpec,
                   roots: tuple[int, ...] = (0,)) -> list[Finding]:
    """Run the forward taint fixpoint and return the sink findings."""
    program = cfg.program
    n = len(program)
    # state per instruction: (tainted-reg bitmask, memory-tainted bit)
    taint_in = [0] * n
    mem_in = [False] * n
    seen = [False] * n
    work = []
    for r in roots:
        if 0 <= r < n:
            taint_in[r] = spec.entry_mask()
            mem_in[r] = spec.secret_memory
            seen[r] = True
            work.append(r)
    findings: dict[tuple[str, int], Finding] = {}

    def sink(check: str, index: int, message: str) -> None:
        findings.setdefault((check, index), Finding(
            check=check, index=index, message=message,
            program=program.name))

    while work:
        i = work.pop()
        d = program.decoded[i]
        state, mem = taint_in[i], mem_in[i]
        if d is not None:
            state, mem = _transfer(d, i, state, mem, program, sink)
        for s in cfg.succ[i]:
            if s == EXIT:
                continue
            merged = taint_in[s] | state
            merged_mem = mem_in[s] or mem
            if not seen[s] or merged != taint_in[s] or merged_mem != mem_in[s]:
                taint_in[s] = merged
                mem_in[s] = merged_mem
                seen[s] = True
                work.append(s)
    return sorted(findings.values(), key=lambda f: (f.index, f.check))


def _transfer(d, i, state, mem, program, sink):
    m = d.mnemonic
    used = insn.uses(d)
    if d.is_branch:
        if insn.branch_condition_uses(d) & state:
            regs = insn.mask_names(insn.branch_condition_uses(d) & state)
            sink("secret-dependent-branch", i,
                 f"branch condition depends on secret data "
                 f"(via {', '.join(regs)}): {program.line(i)}")
        return state, mem
    if m in ("jr", "jalr") and (used & state):
        sink("secret-dependent-branch", i,
             f"indirect jump target depends on secret data: "
             f"{program.line(i)}")
        return state, mem
    if d.is_load:
        base = 1 << d.rs
        if base & state:
            sink("secret-dependent-address", i,
                 f"load address depends on secret data: {program.line(i)}")
        tainted = mem or bool(base & state)
        define = insn.defs(d)
        state = (state | define) if tainted else (state & ~define)
        return state, mem
    if d.is_store:
        if (1 << d.rs) & state:
            sink("secret-dependent-address", i,
                 f"store address depends on secret data: {program.line(i)}")
        if (1 << d.rt) & state:
            mem = True
        return state, mem
    # ordinary computation: outputs tainted iff any input is
    define = insn.defs(d)
    if define:
        state = (state | define) if (used & state) else (state & ~define)
    return state, mem
