"""Static verification of the repository's machine-code artifacts.

The paper's evaluation rests on hand-scheduled Pete assembly (delay-slot
placement, accumulator extensions) and a 64-entry FFAU microcode store.
Until now those artifacts were only checked *dynamically*, by executing
them; this package proves structural properties about the code itself,
without running a cycle:

* :mod:`repro.analysis.cfg` -- control-flow graphs over decoded Pete
  programs, delay-slot aware;
* :mod:`repro.analysis.dataflow` -- liveness / initialization / reaching
  definitions on those CFGs;
* :mod:`repro.analysis.lints` -- the Pete check catalog: delay-slot
  hazards, uninitialized reads, dead stores, calling-convention
  violations, plus the structural checks;
* :mod:`repro.analysis.taint` -- the secret-taint pass that statically
  classifies kernels as constant-time (or not), mirroring the *measured*
  findings of :mod:`repro.model.side_channel`;
* :mod:`repro.analysis.microcheck` -- the FFAU microcode verifier
  (capacity, loop discipline, constant-bus conflicts, drain-before-halt);
* :mod:`repro.analysis.registry` -- the shipped-artifact catalog with
  per-program waivers, driven by ``python -m repro.analysis``.

Run the whole suite from the command line::

    PYTHONPATH=src python -m repro.analysis --all
"""

from repro.analysis.cfg import CFG, AsmProgram, BasicBlock, build_cfg
from repro.analysis.dataflow import liveness, maybe_uninitialized, reaching_defs
from repro.analysis.lints import (
    KERNEL_ABI,
    STANDARD_ABI,
    AbiModel,
    Finding,
    Waiver,
    analyze_program,
    apply_waivers,
)
from repro.analysis.microcheck import check_microprogram
from repro.analysis.taint import TaintSpec, taint_findings

__all__ = [
    "AsmProgram",
    "BasicBlock",
    "CFG",
    "build_cfg",
    "liveness",
    "maybe_uninitialized",
    "reaching_defs",
    "AbiModel",
    "KERNEL_ABI",
    "STANDARD_ABI",
    "Finding",
    "Waiver",
    "analyze_program",
    "apply_waivers",
    "TaintSpec",
    "taint_findings",
    "check_microprogram",
]
