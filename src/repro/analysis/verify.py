"""Whole-kernel verification: every static guarantee, one report.

``verify_kernel`` runs the full static stack over one registered
kernel -- the PR 1 lint suite, the whole-program abstract interpreter
(:mod:`repro.analysis.interp`), interprocedural taint
(:func:`repro.analysis.taint.taint_interp`), the static superblock map
(:mod:`repro.analysis.superblock`) and the cycle/energy upper bounds
(:mod:`repro.analysis.bounds`) -- then *checks the guarantees against
reality*: the kernel is built and run through the same harness
``measure`` uses and every bound is asserted against the observed
:class:`~repro.pete.stats.CoreStats` and priced energy
(``bound >= observed``, tightness reported).  Violations and analysis
refusals surface as findings subject to the same waiver registry
(including expiry) as every other check, so ``python -m repro.analysis
verify --all`` fails loudly and explains itself.

The per-kernel :class:`VerifyReport` is the machine-readable findings
artifact CI uploads (``--json``), and :func:`verify_record` turns it
into a ``kind="analysis"`` ledger record so bound quality is tracked
by the regression baseline like any other measured quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.kernels.runner import KernelRunner

from repro.analysis.bounds import (
    BoundResult,
    Cost,
    compute_bound,
    energy_bound_nj,
)
from repro.analysis.cfg import AsmProgram
from repro.analysis.interp import InterpResult, analyze_image
from repro.analysis.lints import Finding, Waiver, apply_waivers
from repro.analysis.registry import KERNELS, KernelSpec, report_kernel
from repro.analysis.superblock import Superblock, coverage, static_blocks
from repro.analysis.taint import taint_interp

#: The stub the kernel harness appends: ``$ra`` points here at entry.
HALT_STUB = "\n__halt:\n    halt\n"


def build_image(spec: KernelSpec
                ) -> tuple[AsmProgram, int, dict[int, int], dict[int, int]]:
    """The exact image the measurement harness runs, plus its analysis
    inputs: ``(program, entry index, entry_values, assume_trips)``."""
    program = AsmProgram.from_source(spec.build() + HALT_STUB,
                                     name=spec.name)
    entry = program.labels[spec.entry]
    halt = program.labels["__halt"]
    assume: dict[int, int] = {}
    for label, trips in spec.loop_bounds:
        if label in program.labels:
            assume[program.labels[label]] = trips
    return program, entry, {31: program.address(halt)}, assume


def analyze_spec(spec: KernelSpec) -> tuple[AsmProgram, InterpResult]:
    """Interpret a registered kernel's harness image whole-program."""
    program, entry, entry_values, assume = build_image(spec)
    result = analyze_image(program, entry, entry_values=entry_values,
                           assume_trips=assume)
    return program, result


@dataclass
class VerifyReport:
    """Everything one kernel's verification produced."""

    name: str
    k: int
    findings: list[Finding] = field(default_factory=list)
    waived: list[tuple[Finding, Waiver]] = field(default_factory=list)
    bound: Cost | None = None
    problems: list[str] = field(default_factory=list)
    observed: dict = field(default_factory=dict)
    bound_energy_nj: float | None = None
    observed_energy_nj: float | None = None
    superblocks: list[Superblock] = field(default_factory=list)
    superblock_coverage: float = 0.0
    assumed_loops: list[tuple[int, int]] = field(default_factory=list)
    dead_branches: int = 0
    calls_resolved: int = 0

    @property
    def tightness(self) -> float | None:
        if self.bound is None or not self.observed.get("cycles"):
            return None
        return self.bound.cycles / self.observed["cycles"]

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "k": self.k,
            "clean": self.clean,
            "findings": [f.to_dict() for f in self.findings],
            "waived": [{**f.to_dict(), "reason": w.reason}
                       for f, w in self.waived],
            "bound": self.bound.to_dict() if self.bound else None,
            "problems": list(self.problems),
            "observed": dict(self.observed),
            "tightness": self.tightness,
            "bound_energy_nj": self.bound_energy_nj,
            "observed_energy_nj": self.observed_energy_nj,
            "superblocks": [b.to_dict() for b in self.superblocks],
            "superblock_coverage": self.superblock_coverage,
            "assumed_loops": list(self.assumed_loops),
            "dead_branches": self.dead_branches,
            "calls_resolved": self.calls_resolved,
        }


def _bound_violations(name: str, bound: Cost, observed: dict,
                      bound_nj: float | None,
                      observed_nj: float | None) -> list[Finding]:
    """``bound >= observed`` on every counter the bound certifies.

    Unresolved loads may have hit either memory, so they slacken both
    the ROM and the RAM read comparison.
    """
    checks = [
        ("cycles", bound.cycles, observed.get("cycles", 0)),
        ("instructions", bound.instructions,
         observed.get("instructions", 0)),
        ("rom_word_reads", bound.rom_reads + bound.unknown_loads,
         observed.get("rom_word_reads", 0)),
        ("ram_reads", bound.ram_reads + bound.unknown_loads,
         observed.get("ram_reads", 0)),
        ("ram_writes", bound.ram_writes, observed.get("ram_writes", 0)),
    ]
    out = []
    for what, b, o in checks:
        if b < o:
            out.append(Finding(
                check="static-bound", index=-1, program=name,
                message=f"static {what} bound {b} < observed {o} -- "
                        f"the bound model is unsound for this kernel"))
    if (bound_nj is not None and observed_nj is not None
            and bound_nj < observed_nj):
        out.append(Finding(
            check="static-bound", index=-1, program=name,
            message=f"static energy bound {bound_nj:.1f} nJ < observed "
                    f"{observed_nj:.1f} nJ"))
    return out


def verify_kernel(spec: KernelSpec, runner: KernelRunner | None = None,
                  observe: bool = True) -> VerifyReport:
    """Run every static pass over one kernel and (unless ``observe``
    is off) assert the bounds against an actual harness run."""
    program, result = analyze_spec(spec)
    report = VerifyReport(spec.name, spec.measure_k)
    report.assumed_loops = sorted(set(result.assumed_loops))
    report.dead_branches = len(result.dead_branches)
    report.calls_resolved = len(result.calls)
    report.superblocks = static_blocks(program)
    report.superblock_coverage = coverage(program)

    findings = list(result.findings)
    tspec = spec.taint_for_interp()
    if tspec is not None:
        findings += taint_interp(result, tspec)

    br: BoundResult = compute_bound(result)
    report.bound = br.total
    report.problems = list(br.problems)
    findings += [Finding(check="static-bound", index=-1,
                         program=spec.name, message=p)
                 for p in br.problems]

    if observe:
        from repro.energy.simulated import (
            RunEnergyParams,
            report_from_corestats,
        )
        from repro.kernels.runner import KernelRunner

        if runner is None:
            runner = KernelRunner(cache={})
        cpu, entry_pc = runner.prepare(spec.name, spec.measure_k)
        cpu.run(entry_pc)
        s = cpu.stats
        report.observed = {
            "cycles": s.cycles, "instructions": s.instructions,
            "rom_word_reads": s.rom_word_reads,
            "ram_reads": s.ram_reads, "ram_writes": s.ram_writes,
        }
        params = RunEnergyParams(cal=runner.cal,
                                 prime_isa_ext=spec.prime_ext,
                                 binary_isa_ext=spec.binary_ext)
        report.observed_energy_nj = report_from_corestats(
            s, params, label=spec.name).total_nj
        if br.total is not None:
            report.bound_energy_nj = energy_bound_nj(br.total, params)
            findings += _bound_violations(
                spec.name, br.total, report.observed,
                report.bound_energy_nj, report.observed_energy_nj)

    active, waived = apply_waivers(findings, spec.waivers)
    # the PR 1 lint suite on the bare kernel source, exactly as the
    # legacy `--all` CLI path runs it (its own waivers applied there)
    legacy = report_kernel(spec)
    report.findings = legacy.findings + active
    report.waived = legacy.waived + waived
    return report


def verify_all(observe: bool = True) -> list[VerifyReport]:
    """Verify every registered kernel (one shared harness runner)."""
    runner = None
    if observe:
        from repro.kernels.runner import KernelRunner

        runner = KernelRunner(cache={})
    return [verify_kernel(spec, runner=runner, observe=observe)
            for spec in KERNELS]


def verify_record(report: VerifyReport) -> dict:
    """One ``kind="analysis"`` ledger record for a verify report."""
    from repro.trace.record import bench_record

    return bench_record(
        artifact=f"analysis_{report.name}",
        config=f"k={report.k}",
        cycles=float(report.bound.cycles if report.bound else 0),
        energy_uj=(report.bound_energy_nj or 0.0) / 1000.0,
        data={
            "clean": report.clean,
            "findings": len(report.findings),
            "waived": len(report.waived),
            "observed_cycles": report.observed.get("cycles"),
            "tightness": report.tightness,
            "superblock_coverage": report.superblock_coverage,
            "dead_branches": report.dead_branches,
            "calls_resolved": report.calls_resolved,
        },
        kind="analysis")
