"""Dataflow analyses over the instruction-level CFG.

All three passes are classic worklist fixpoints with location sets
represented as integer bitmasks (see :mod:`repro.analysis.insn`); the
largest shipped kernel is a few thousand instructions, so none of this
needs to be clever.
"""

from __future__ import annotations

from repro.analysis import insn
from repro.analysis.cfg import CFG, EXIT


def liveness(cfg: CFG, live_out_exit: int = 0
             ) -> tuple[list[int], list[int]]:
    """Backward liveness.

    Returns ``(live_in, live_out)`` bitmask lists indexed by
    instruction.  ``live_out_exit`` is the set live when the program
    exits (the ABI's result registers).
    """
    n = len(cfg.program)
    live_in = [0] * n
    live_out = [0] * n
    changed = True
    while changed:
        changed = False
        for i in range(n - 1, -1, -1):
            d = cfg.program.decoded[i]
            out = 0
            for s in cfg.succ[i]:
                out |= live_out_exit if s == EXIT else live_in[s]
            use = insn.uses(d) if d is not None else 0
            define = insn.defs(d) if d is not None else 0
            new_in = use | (out & ~define)
            if out != live_out[i] or new_in != live_in[i]:
                live_out[i] = out
                live_in[i] = new_in
                changed = True
    return live_in, live_out


def maybe_uninitialized(cfg: CFG, entry_defined: int,
                        roots: tuple[int, ...] = (0,)) -> list[int]:
    """Forward may-uninitialized analysis.

    Returns, per instruction, the bitmask of locations that are *not*
    guaranteed written on every path from the entry (i.e. reading them
    there may observe an undefined value).  Join is union -- a location
    is suspect if any path leaves it unwritten.
    """
    n = len(cfg.program)
    all_locs = (1 << insn.NUM_LOCS) - 1
    unin_in = [0] * n
    seen = [False] * n
    entry_state = all_locs & ~entry_defined & ~1  # $zero is always defined
    work = []
    for r in roots:
        if 0 <= r < n:
            unin_in[r] = entry_state
            seen[r] = True
            work.append(r)
    while work:
        i = work.pop()
        d = cfg.program.decoded[i]
        state = unin_in[i]
        if d is not None:
            state &= ~insn.defs(d)
        for s in cfg.succ[i]:
            if s == EXIT:
                continue
            merged = unin_in[s] | state
            if not seen[s] or merged != unin_in[s]:
                unin_in[s] = merged
                seen[s] = True
                work.append(s)
    return unin_in


def reaching_defs(cfg: CFG, roots: tuple[int, ...] = (0,)
                  ) -> list[dict[int, frozenset[int]]]:
    """Forward reaching definitions.

    Returns, per instruction, a map ``location -> set of defining
    instruction indices`` that may reach it (entry definitions appear as
    index ``-1``).  This is the def-use backbone: the use of location
    ``r`` at instruction ``i`` is reached exactly by
    ``reaching_defs(cfg)[i][r]``.
    """
    n = len(cfg.program)
    bottom: dict[int, frozenset[int]] = {
        loc: frozenset() for loc in range(insn.NUM_LOCS)}
    entry: dict[int, frozenset[int]] = {
        loc: frozenset({-1}) for loc in range(insn.NUM_LOCS)}
    reach_in: list[dict[int, frozenset[int]]] = [dict(bottom)
                                                 for _ in range(n)]
    work = [r for r in roots if 0 <= r < n]
    for r in work:
        reach_in[r] = dict(entry)
    in_work = set(work)
    while work:
        i = work.pop()
        in_work.discard(i)
        d = cfg.program.decoded[i]
        state = dict(reach_in[i])
        if d is not None:
            define = insn.defs(d)
            for loc in range(insn.NUM_LOCS):
                if define & (1 << loc):
                    state[loc] = frozenset({i})
        for s in cfg.succ[i]:
            if s == EXIT:
                continue
            target = reach_in[s]
            changed = False
            for loc, sites in state.items():
                merged = target[loc] | sites
                if merged != target[loc]:
                    target[loc] = merged
                    changed = True
            if changed and s not in in_work:
                work.append(s)
                in_work.add(s)
    return reach_in
