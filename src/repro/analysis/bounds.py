"""Static per-path cycle and energy upper bounds over an interp walk.

Given the :class:`~repro.analysis.interp.InterpResult` of a
whole-program walk, this pass prices every reached instruction with a
conservative per-event cost vector (cycles, instructions, ROM word
fetches, RAM reads/writes) mirroring :class:`repro.pete.cpu.Pete`'s
accounting, collapses loops innermost-first using the walk's trip
bounds (``loop <= trips * max_iteration + max_exit_prefix``), adds
memoized callee bounds at call sites, and takes the longest path
through each function's feasibility-pruned DAG.  The result is a
machine-checked guarantee ``bound >= observed CoreStats`` for *every*
input reaching the analyzed entry, which ``verify`` asserts against an
actual run and reports as tightness (bound/observed).

Per-instruction model (matches ``cpu._step`` exactly; see that file):

* every instruction: 1 cycle, 1 ROM word fetch (uncached path) --
  except ``break``, which fetches and retires but halts before its
  datapath cycle;
* conditional branches: +1 for a possible mispredict (the 2-bit
  predictor's worst case each execution);
* ``jr``/``jalr``: +1 always (register target resolves in EX);
* a possible load-use interlock: +1 when any interprocedural
  predecessor loads into a register the instruction reads;
* multiply/divide-unit interlock: every toucher of the accumulator
  waits for the unit; an issue of latency ``L`` followed ``k``
  instructions later by a toucher can stall it at most
  ``max(0, L - 1 - k)`` cycles (each intervening instruction burns at
  least one cycle, and the issuer itself drained the unit first).
  ``k`` is bounded below by a min-distance fixpoint per latency class
  over the interprocedural edge set.

The pass *refuses* to certify (returns problems instead of a bound)
when a loop has no trip bound, control flow is irreducible or
recursive, or a coprocessor instruction is reached -- cop2 issue
stalls have no static model here.  The bound assumes the instruction
cache is off, matching the kernel harness configuration;
:func:`energy_bound_nj` rejects cached parameter sets.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.analysis import insn
from repro.analysis.cfg import branch_target_index
from repro.analysis.interp import FunctionInfo, InterpResult, Loop
from repro.pete.cpu import _sources
from repro.pete.memory import RAM_BASE, RAM_SIZE, ROM_BASE
from repro.pete.muldiv import ACC_ADD_LATENCY, DIV_LATENCY, MULT_LATENCY

#: Distance cap of the muldiv fixpoint; anything this far from an
#: issue can never observe the unit busy (largest latency is DIV's).
_DIST_CAP = 64

#: Issue mnemonic -> latency class of the muldiv unit it occupies.
_ISSUE_CLASS = {
    "mult": "mult", "multu": "mult", "maddu": "mult", "m2addu": "mult",
    "mulgf2": "mult", "maddgf2": "mult",
    "addau": "acc", "sha": "acc",
    "div": "div", "divu": "div",
}

_CLASS_LATENCY = {"mult": MULT_LATENCY, "acc": ACC_ADD_LATENCY,
                  "div": DIV_LATENCY}

#: Everything that calls ``_wait_muldiv`` before doing its work.
_WAITERS = frozenset(_ISSUE_CLASS) | {"mflo", "mfhi", "mtlo", "mthi"}

_LOADS = frozenset(("lw", "lh", "lhu", "lb", "lbu"))
_STORES = frozenset(("sw", "sh", "sb"))


@dataclass(frozen=True)
class Cost:
    """One additive event-count vector (all upper bounds)."""

    cycles: int = 0
    instructions: int = 0
    rom_reads: int = 0
    ram_reads: int = 0
    ram_writes: int = 0
    #: loads whose region (ROM vs RAM) the walk could not resolve;
    #: priced at both rates by :func:`energy_bound_nj`
    unknown_loads: int = 0

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.cycles + other.cycles,
                    self.instructions + other.instructions,
                    self.rom_reads + other.rom_reads,
                    self.ram_reads + other.ram_reads,
                    self.ram_writes + other.ram_writes,
                    self.unknown_loads + other.unknown_loads)

    def scale(self, n: int) -> "Cost":
        return Cost(self.cycles * n, self.instructions * n,
                    self.rom_reads * n, self.ram_reads * n,
                    self.ram_writes * n, self.unknown_loads * n)

    def sup(self, other: "Cost") -> "Cost":
        """Element-wise maximum (join of two path bounds)."""
        return Cost(max(self.cycles, other.cycles),
                    max(self.instructions, other.instructions),
                    max(self.rom_reads, other.rom_reads),
                    max(self.ram_reads, other.ram_reads),
                    max(self.ram_writes, other.ram_writes),
                    max(self.unknown_loads, other.unknown_loads))

    def to_dict(self) -> dict:
        return {"cycles": self.cycles, "instructions": self.instructions,
                "rom_reads": self.rom_reads, "ram_reads": self.ram_reads,
                "ram_writes": self.ram_writes,
                "unknown_loads": self.unknown_loads}


ZERO = Cost()


@dataclass
class BoundResult:
    """Outcome of one bound computation."""

    total: Cost | None                 # None when the pass refused
    per_function: dict[int, Cost]      # entry index -> certified bound
    problems: list[str]

    @property
    def certified(self) -> bool:
        return self.total is not None and not self.problems


# ---------------------------------------------------------------------------
# Muldiv distance fixpoint
# ---------------------------------------------------------------------------


def _muldiv_dists(result: InterpResult) -> dict[int, dict[str, int]]:
    """Min instructions strictly between the nearest preceding issue of
    each latency class and each node, over all interprocedural paths."""
    program = result.program
    present: set[str] = set()
    for v in result.reached:
        d = program.decoded[v]
        if d is not None and d.mnemonic in _ISSUE_CLASS:
            present.add(_ISSUE_CLASS[d.mnemonic])
    present.discard("acc")  # latency 1 can never stall a successor
    if not present:
        return {}
    nodes = result.reached
    indist = {v: {c: _DIST_CAP for c in present} for v in nodes}

    def outdist(u: int, c: str) -> int:
        d = program.decoded[u]
        if d is not None and _ISSUE_CLASS.get(d.mnemonic) == c:
            return 0
        return min(_DIST_CAP, indist[u][c] + 1)

    work = deque(nodes)
    queued = set(nodes)
    while work:
        u = work.popleft()
        queued.discard(u)
        for v in result.iedges.get(u, ()):
            if v not in indist:
                continue
            for c in present:
                nd = outdist(u, c)
                if nd < indist[v][c]:
                    indist[v][c] = nd
                    if v not in queued:
                        work.append(v)
                        queued.add(v)
    return indist


# ---------------------------------------------------------------------------
# Per-node cost
# ---------------------------------------------------------------------------


def _classify_load(result: InterpResult, v: int) -> str:
    """``"ram"``, ``"rom"`` or ``"unknown"`` for the load at ``v``."""
    addr = result.addr_info.get(v)
    if addr is None or addr.is_top or addr.sym is not None:
        return "unknown"
    if addr.lo >= RAM_BASE and addr.hi < RAM_BASE + RAM_SIZE:
        return "ram"
    if addr.lo >= ROM_BASE and addr.hi < RAM_BASE:
        return "rom"
    return "unknown"


def _node_costs(result: InterpResult,
                problems: list[str]) -> dict[int, Cost]:
    program = result.program
    ipreds = result.ipreds()
    dists = _muldiv_dists(result)
    costs: dict[int, Cost] = {}
    for v in sorted(result.reached):
        d = program.decoded[v]
        if d is None:
            problems.append(f"index {v}: reached a data word "
                            f"({program.line(v)})")
            continue
        m = d.mnemonic
        if m == "break":
            # fetches and retires, then halts before its datapath cycle
            costs[v] = Cost(cycles=0, instructions=1, rom_reads=1)
            continue
        if m == "ctc2" or m.startswith("cop2"):
            problems.append(f"index {v}: coprocessor issue has no static "
                            f"stall model ({program.line(v)})")
            continue
        cyc = 1
        if d.is_branch:
            cyc += 1  # possible mispredict (even `b` trains a predictor)
        if m in ("jr", "jalr"):
            cyc += 1  # register target resolves in EX
        srcs = _sources(d)
        if srcs:
            for u in ipreds.get(v, ()):
                du = program.decoded[u]
                if (du is not None and du.mnemonic in _LOADS
                        and du.rt != 0 and du.rt in srcs):
                    cyc += 1  # possible load-use interlock
                    break
        if m in _WAITERS and dists:
            dv = dists.get(v)
            if dv:
                cyc += max((max(0, _CLASS_LATENCY[c] - 1 - k)
                            for c, k in dv.items()), default=0)
        ram_r = ram_w = unknown = 0
        if m in _LOADS:
            region = _classify_load(result, v)
            if region == "ram":
                ram_r = 1
            elif region == "unknown":
                unknown = 1
        elif m in _STORES:
            ram_w = 1
        rom = 1 + (1 if m in _LOADS and _classify_load(result, v) == "rom"
                   else 0)
        costs[v] = Cost(cyc, 1, rom, ram_r, ram_w, unknown)
    return costs


# ---------------------------------------------------------------------------
# DAG construction, loop collapse, longest path
# ---------------------------------------------------------------------------


def _dag_succs(result: InterpResult,
               fn: FunctionInfo) -> dict[int, tuple[int, ...]]:
    """Intraprocedural successors with back edges removed and branch
    directions the walk proved infeasible pruned."""
    program, cfg = result.program, result.cfg
    succ: dict[int, tuple[int, ...]] = {}
    for u in fn.nodes:
        outs = [s for s in fn.succ.get(u, ())
                if (u, s) not in fn.back_edges]
        if u in cfg.slots and len(outs) > 1:
            i = u - 1
            owner = program.decoded[i]
            dirs = result.branch_feasible.get(i)
            if (dirs is not None and owner is not None and owner.is_branch
                    and not insn.is_unconditional(owner)):
                target = branch_target_index(program, i, cfg.slots)
                fall = u + 1
                if target is not None and target != fall:
                    outs = [s for s in outs
                            if not (s == target and "taken" not in dirs)
                            and not (s == fall and "fall" not in dirs)]
        succ[u] = tuple(dict.fromkeys(outs))
    return succ


def _topo(nodes: set[int], succ: dict[int, tuple[int, ...]]
          ) -> list[int] | None:
    """Topological order of the induced subgraph, or None on a cycle."""
    indeg = {v: 0 for v in nodes}
    for u in nodes:
        for s in succ.get(u, ()):
            if s in indeg:
                indeg[s] += 1
    work = deque(sorted(v for v, n in indeg.items() if n == 0))
    order: list[int] = []
    while work:
        u = work.popleft()
        order.append(u)
        for s in succ.get(u, ()):
            if s in indeg:
                indeg[s] -= 1
                if indeg[s] == 0:
                    work.append(s)
    return order if len(order) == len(nodes) else None


def _longest_paths(root: int, nodes: set[int], order: list[int],
                   succ: dict[int, tuple[int, ...]],
                   cost: dict[int, Cost]) -> dict[int, Cost]:
    """Max path cost from ``root`` to each reachable node (inclusive)."""
    lp: dict[int, Cost] = {root: cost[root]}
    for u in order:
        base = lp.get(u)
        if base is None:
            continue
        for s in succ.get(u, ()):
            if s not in nodes:
                continue
            cand = base + cost[s]
            prev = lp.get(s)
            lp[s] = cand if prev is None else prev.sup(cand)
    return lp


def _loop_depth(fn: FunctionInfo, lp: Loop) -> int:
    depth, h = 0, lp.parent
    while h is not None:
        depth += 1
        h = fn.loops[h].parent
    return depth


def _function_bound(result: InterpResult, entry: int,
                    node_cost: dict[int, Cost],
                    memo: dict[int, Cost | None], visiting: set[int],
                    problems: list[str]) -> Cost | None:
    if entry in memo:
        return memo[entry]
    if entry in visiting:
        problems.append(f"recursion through function entry {entry}; "
                        f"no static bound")
        memo[entry] = None
        return None
    fn = result.functions.get(entry)
    if fn is None:
        problems.append(f"call to unanalyzed entry {entry}")
        memo[entry] = None
        return None
    if fn.irreducible:
        problems.append(f"function {entry}: irreducible control flow")
        memo[entry] = None
        return None
    visiting.add(entry)
    try:
        bound = _reducible_bound(result, fn, node_cost, memo, visiting,
                                 problems)
    finally:
        visiting.discard(entry)
    memo[entry] = bound
    return bound


def _reducible_bound(result: InterpResult, fn: FunctionInfo,
                     node_cost: dict[int, Cost],
                     memo: dict[int, Cost | None], visiting: set[int],
                     problems: list[str]) -> Cost | None:
    cost: dict[int, Cost] = {}
    for v in fn.nodes:
        c = node_cost.get(v)
        if c is None:
            return None  # the node pass already reported why
        cost[v] = c
    # calls: the callee's whole bound lands on the call's delay slot
    ok = True
    for i, callee in result.calls.items():
        slot = i + 1
        if slot not in cost:
            continue
        sub = _function_bound(result, callee, node_cost, memo, visiting,
                              problems)
        if sub is None:
            ok = False
            continue
        cost[slot] = cost[slot] + sub
    if not ok:
        return None

    succ = _dag_succs(result, fn)
    alive = set(fn.nodes)
    for lp in sorted(fn.loops.values(),
                     key=lambda x: _loop_depth(fn, x), reverse=True):
        h = lp.header
        body = {v for v in lp.body if v in alive}
        order = _topo(body, succ)
        if order is None:
            problems.append(f"loop at {h}: body not acyclic after "
                            f"collapsing inner loops")
            return None
        paths = _longest_paths(h, body, order, succ, cost)
        latch_costs = [paths[la] for la in lp.latches if la in paths]
        exit_targets: list[int] = []
        exit_max = ZERO
        have_exit = False
        for u in body:
            pu = paths.get(u)
            for s in succ.get(u, ()):
                if s not in body:
                    exit_targets.append(s)
                    if pu is not None:
                        exit_max = exit_max.sup(pu)
                        have_exit = True
        if not latch_costs:
            # every latch pruned infeasible: the loop runs at most once
            cost[h] = exit_max if have_exit else ZERO
        else:
            trips = result.trip_bounds.get((fn.entry, h))
            if trips is None:
                problems.append(
                    f"loop at {h} ({result.program.line(h)}): no derived "
                    f"trip bound; pass assume_trips or fix the loop")
                return None
            iter_max = ZERO
            for c in latch_costs:
                iter_max = iter_max.sup(c)
            if not have_exit:
                exit_max = iter_max
            cost[h] = iter_max.scale(trips) + exit_max
        succ[h] = tuple(dict.fromkeys(
            s for s in exit_targets if s in alive or s == h))
        alive -= body - {h}

    order = _topo(alive, succ)
    if order is None:
        problems.append(f"function {fn.entry}: residual cycle outside "
                        f"recognized loops")
        return None
    paths = _longest_paths(fn.entry, alive, order, succ, cost)
    bound = ZERO
    for c in paths.values():
        bound = bound.sup(c)
    return bound


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def compute_bound(result: InterpResult) -> BoundResult:
    """Static per-event upper bound for a run from ``result.entry``."""
    problems: list[str] = []
    node_cost = _node_costs(result, problems)
    memo: dict[int, Cost | None] = {}
    total = _function_bound(result, result.entry, node_cost, memo, set(),
                            problems)
    per_function = {e: b for e, b in memo.items() if b is not None}
    return BoundResult(total=total if not problems else None,
                       per_function=per_function, problems=problems)


def energy_bound_nj(cost: Cost, params) -> float:
    """Price a bound vector with :class:`repro.energy.simulated
    .RunEnergyParams`, mirroring ``report_from_corestats``.

    Every cycle is priced at the dearer of active/stall; unresolved
    loads are priced at *both* the ROM and RAM read rates.
    """
    if params.icache_size is not None:
        raise ValueError("static energy bound assumes the icache is off")
    cyc = cost.cycles
    pj = cyc * max(params.pete_active_pj, params.pete_stall_pj)
    pj += (cost.rom_reads + cost.unknown_loads) * params.rom_word_pj
    pj += (cost.ram_reads + cost.unknown_loads) * params.ram_read_pj
    pj += cost.ram_writes * params.ram_write_pj
    return (pj / 1e3 + params.static_nj("Pete", cyc)
            + params.static_nj("RAM", cyc))
