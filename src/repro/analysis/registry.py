"""The shipped programs the analysis CLI and CI verify.

Each entry names a generated Pete kernel (or FFAU microprogram), the
ABI model it is written against, what is secret when it runs, and the
waivers for findings that are *intentional* -- every waiver carries the
reason it is acceptable, which is the repository's machine-checked
side-channel and scheduling documentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.accel.microcode import (
    MicroProgram,
    build_addsub_program,
    build_cios_program,
)
from repro.analysis.cfg import AsmProgram
from repro.analysis.lints import (
    KERNEL_ABI,
    AbiModel,
    AnalysisResult,
    Finding,
    Waiver,
    analyze_program,
)
from repro.analysis.microcheck import check_microprogram
from repro.analysis.taint import TaintSpec
from repro.kernels import (
    binary_kernels,
    composed,
    prime_kernels,
    scalar_kernels,
    symmetric_kernels,
)

#: Word count used for registry analysis: k = 6 covers P-192 and B-163,
#: the paper's two curves.
K = 6

_DS_SCHEDULE = Waiver(
    "delay-slot-clobber",
    "intentional schedule: the loop pointer increment lives in the "
    "delay slot and the branch compares the pre-slot value "
    "(architecturally defined MIPS behaviour)")

#: Operand words (field elements) are secret; pointers are public.
_OPERANDS_SECRET = TaintSpec(secret_memory=True)

#: The scalar arrives in $a1.
_SCALAR_SECRET = TaintSpec(secret_regs=("a1",))


@dataclass(frozen=True)
class KernelSpec:
    """One shipped Pete kernel under analysis."""

    name: str
    build: Callable[[], str]
    abi: AbiModel = KERNEL_ABI
    taint: TaintSpec | None = None
    waivers: tuple[Waiver, ...] = ()
    note: str = ""
    #: asserted trip bounds for loops whose termination argument is
    #: mathematical rather than arithmetic: (label, max trips) pairs,
    #: passed to the abstract interpreter as ``assume_trips`` and
    #: surfaced in every verify report
    loop_bounds: tuple[tuple[str, int], ...] = ()
    #: label the harness jumps to (defaults to the kernel name)
    entry_label: str = ""
    #: operand word count the verify harness measures at
    measure_k: int = K
    #: ISA extension switches the kernel requires (select the matching
    #: :class:`repro.energy.simulated.RunEnergyParams` for bounds)
    prime_ext: bool = False
    binary_ext: bool = False
    #: taint spec for the *interprocedural* pass only -- for composed
    #: images whose flows cross calls, which the legacy intra pass
    #: cannot track; ``None`` falls back to ``taint``
    itaint: TaintSpec | None = None

    @property
    def entry(self) -> str:
        return self.entry_label or self.name

    def taint_for_interp(self) -> TaintSpec | None:
        return self.itaint if self.itaint is not None else self.taint


@dataclass(frozen=True)
class MicroSpec:
    """One shipped FFAU microprogram under analysis."""

    name: str
    build: Callable[[], MicroProgram]


KERNELS: tuple[KernelSpec, ...] = (
    KernelSpec("mp_add", lambda: prime_kernels.gen_mp_add(K),
               taint=_OPERANDS_SECRET),
    KernelSpec("mp_sub", lambda: prime_kernels.gen_mp_sub(K),
               taint=_OPERANDS_SECRET),
    KernelSpec("os_mul", lambda: prime_kernels.gen_os_mul(K),
               taint=_OPERANDS_SECRET),
    KernelSpec("ps_mul_ext", lambda: prime_kernels.gen_ps_mul_ext(K),
               taint=_OPERANDS_SECRET, waivers=(_DS_SCHEDULE,),
               prime_ext=True),
    KernelSpec("ps_sqr_ext",
               lambda: prime_kernels.gen_ps_mul_ext(K, squaring=True),
               taint=_OPERANDS_SECRET, waivers=(_DS_SCHEDULE,),
               prime_ext=True,
               # the squaring convolution walks two pointers toward
               # each other; they converge only because both root at
               # the same arena, which value analysis cannot see
               loop_bounds=(("ps_sqr_ext_in_lo", 4),
                            ("ps_sqr_ext_in_hi", 4))),
    KernelSpec("red_p192", prime_kernels.gen_red_p192,
               taint=_OPERANDS_SECRET,
               waivers=(Waiver(
                   "secret-dependent-branch",
                   "NIST fast reduction branches on the carry word and "
                   "the trial-subtraction borrow; the paper's baseline "
                   "is not constant-time (Section 2.1.5 discusses the "
                   "resulting leakage)"),),
               # the carry-fold terminates because each pass shrinks
               # the carry word: a mathematical argument, asserted here
               loop_bounds=(("red_p192_fold", 4),)),
    KernelSpec("comb_mul", lambda: binary_kernels.gen_comb_mul(K),
               taint=_OPERANDS_SECRET,
               waivers=(Waiver(
                   "secret-dependent-address",
                   "the comb method indexes its precomputed row table "
                   "by secret operand nibbles -- the classic "
                   "cache-timing trade-off of table-based binary-field "
                   "multiplication"),)),
    KernelSpec("ps_mulgf2", lambda: binary_kernels.gen_ps_mulgf2(K),
               taint=_OPERANDS_SECRET, waivers=(_DS_SCHEDULE,),
               prime_ext=True, binary_ext=True),
    KernelSpec("bsqr_table", lambda: binary_kernels.gen_bsqr_table(K),
               taint=_OPERANDS_SECRET,
               waivers=(Waiver(
                   "secret-dependent-address",
                   "byte-wise squaring looks the squared byte up in a "
                   "256-entry table indexed by secret data"),)),
    KernelSpec("bsqr_ext", lambda: binary_kernels.gen_bsqr_ext(K),
               taint=_OPERANDS_SECRET, binary_ext=True),
    KernelSpec("red_b163", binary_kernels.gen_red_b163,
               taint=_OPERANDS_SECRET),
    KernelSpec("speck64", symmetric_kernels.gen_speck64_encrypt,
               taint=_OPERANDS_SECRET, entry_label="speck64_enc",
               measure_k=1),
    KernelSpec("scalar_daa", lambda: scalar_kernels.gen_scalar_daa(),
               taint=_SCALAR_SECRET, measure_k=8,
               waivers=(Waiver(
                   "secret-dependent-branch",
                   "double-and-add exists to demonstrate the leak the "
                   "Montgomery ladder removes; side_channel.py measures "
                   "the same asymmetry dynamically"),)),
    KernelSpec("scalar_ladder", lambda: scalar_kernels.gen_scalar_ladder(),
               taint=_SCALAR_SECRET, measure_k=8,
               note="certified constant-time: no waivers, no findings"),
    # The composed images bundle kernel-ABI callees ($s* scratch), so
    # the kernel model applies to the whole program.  The legacy intra
    # taint pass is not run across calls (its one-bit memory model
    # cannot distinguish a reloaded public pointer from secret data
    # once both were stored); the interprocedural pass tracks memory
    # taint per word and covers the whole call tree via ``itaint``.
    KernelSpec("fmul_p192", composed.gen_fmul_p192,
               itaint=_OPERANDS_SECRET,
               waivers=(Waiver(
                   "secret-dependent-branch",
                   "inherited from red_p192: the NIST reduction inside "
                   "the composed field multiply branches on carry and "
                   "borrow words derived from secret operands"),),
               loop_bounds=(("red_p192_fold", 4),)),
    KernelSpec("fmul_b163", composed.gen_fmul_b163,
               itaint=_OPERANDS_SECRET,
               waivers=(Waiver(
                   "secret-dependent-address",
                   "inherited from comb_mul: the comb method indexes "
                   "its row table by secret operand nibbles"),)),
)


MICROPROGRAMS: tuple[MicroSpec, ...] = (
    MicroSpec("cios", build_cios_program),
    MicroSpec("mod_add", lambda: build_addsub_program(subtract=False)),
    MicroSpec("mod_sub", lambda: build_addsub_program(subtract=True)),
)


@dataclass
class ProgramReport:
    """Outcome of analyzing one registry entry."""

    name: str
    kind: str                          # "kernel" | "microcode"
    findings: list[Finding] = field(default_factory=list)
    waived: list[tuple[Finding, Waiver]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "clean": self.clean,
            "findings": [f.to_dict() for f in self.findings],
            "waived": [{**f.to_dict(), "reason": w.reason}
                       for f, w in self.waived],
        }


def kernel_spec(name: str) -> KernelSpec:
    for spec in KERNELS:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown kernel {name!r}")


def analyze_kernel(spec: KernelSpec) -> AnalysisResult:
    program = AsmProgram.from_source(spec.build(), name=spec.name)
    return analyze_program(program, abi=spec.abi, taint=spec.taint,
                           waivers=spec.waivers)


def report_kernel(spec: KernelSpec) -> ProgramReport:
    result = analyze_kernel(spec)
    return ProgramReport(spec.name, "kernel", result.findings, result.waived)


def report_micro(spec: MicroSpec) -> ProgramReport:
    findings = check_microprogram(spec.build(), name=spec.name)
    return ProgramReport(spec.name, "microcode", findings, [])


def all_reports() -> list[ProgramReport]:
    """Analyze every registered program."""
    reports = [report_kernel(spec) for spec in KERNELS]
    reports += [report_micro(spec) for spec in MICROPROGRAMS]
    return reports
