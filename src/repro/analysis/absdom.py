"""The abstract value domain of the whole-program interpreter.

One :class:`AbsVal` describes the set of 32-bit values a register (or a
tracked RAM word) may hold at one program point:

``sym + [lo, hi] step s``
    every value of the form ``sym + lo + k*s`` that stays inside
    ``[sym + lo, sym + hi]``.  ``sym`` is the *entry-symbolic base* --
    the unknown value a register held when the analyzed entry point was
    reached (``sym=4`` reads "whatever ``$a0`` was at entry") -- or
    ``None`` for absolute (constant-rooted) values.  ``step`` encodes
    the known-low-zero-bits information a shift/mask chain produces
    (``sll $t0, $i, 3`` turns ``[0, 3] step 1`` into ``[0, 24] step
    8``), which is what lets the interpreter enumerate jump tables and
    word-aligned address sets exactly.

``TOP``
    no information (any 32-bit value).

The arithmetic here is over unbounded Python integers: the domain
deliberately does *not* model 2^32 wraparound.  The programs under
analysis are hand-scheduled kernels whose pointers and counters live
far from the wrap boundary; a transfer that could wrap in practice
(huge constants, unbounded growth) loses precision toward :data:`TOP`
instead of producing a wrong small set, which keeps the may-analyses
sound for the properties we verify (see ARCHITECTURE.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Enumeration guard: an AbsVal with more concrete values than this is
#: never expanded into an explicit set (jump-table resolution gives up).
MAX_ENUM = 32

#: Cap on interval width before collapsing to TOP (keeps joins cheap on
#: adversarial inputs; every kernel value set is far below this).
MAX_WIDTH = 1 << 40


@dataclass(frozen=True)
class AbsVal:
    """``sym + [lo, hi] step`` -- see the module docstring.

    ``lo is None`` encodes TOP (sym/hi/step are ignored then).
    Invariants for non-TOP values: ``lo <= hi``; ``step == 0`` iff
    ``lo == hi``; otherwise ``(hi - lo) % step == 0``.
    """

    sym: int | None
    lo: int | None
    hi: int | None = None
    step: int = 0

    # -- constructors ------------------------------------------------------

    @staticmethod
    def top() -> "AbsVal":
        return TOP

    @staticmethod
    def const(value: int) -> "AbsVal":
        return AbsVal(None, value, value, 0)

    @staticmethod
    def symbol(reg: int) -> "AbsVal":
        """The entry value of register ``reg``, exactly."""
        return AbsVal(reg, 0, 0, 0)

    @staticmethod
    def range(lo: int, hi: int, step: int = 1,
              sym: int | None = None) -> "AbsVal":
        if lo == hi:
            return AbsVal(sym, lo, lo, 0)
        if hi - lo > MAX_WIDTH:
            return TOP
        step = step or 1
        span = hi - lo
        if span % step:
            step = math.gcd(span, step)
        return AbsVal(sym, lo, hi, step)

    # -- predicates --------------------------------------------------------

    @property
    def is_top(self) -> bool:
        return self.lo is None

    @property
    def is_const(self) -> bool:
        return self.lo is not None and self.sym is None and self.lo == self.hi

    def const_value(self) -> int | None:
        return self.lo if self.is_const else None

    @property
    def is_singleton(self) -> bool:
        """Exactly one value (possibly symbolic: ``sym + lo``)."""
        return self.lo is not None and self.lo == self.hi

    def count(self) -> int | None:
        """Number of concrete values, or ``None`` for TOP/symbolic."""
        if self.is_top or self.sym is not None:
            return None
        if self.lo == self.hi:
            return 1
        return (self.hi - self.lo) // (self.step or 1) + 1

    def enumerate(self) -> list[int] | None:
        """All concrete values when absolute and small, else ``None``."""
        n = self.count()
        if n is None or n > MAX_ENUM:
            return None
        if n == 1:
            return [self.lo]
        return list(range(self.lo, self.hi + 1, self.step))

    # -- transfer arithmetic ----------------------------------------------

    def add_const(self, c: int) -> "AbsVal":
        if self.is_top:
            return TOP
        return AbsVal(self.sym, self.lo + c, self.hi + c, self.step)

    def add(self, other: "AbsVal") -> "AbsVal":
        if self.is_top or other.is_top:
            return TOP
        if self.sym is not None and other.sym is not None:
            return TOP  # sum of two unknowns
        sym = self.sym if self.sym is not None else other.sym
        return AbsVal.range(self.lo + other.lo, self.hi + other.hi,
                            math.gcd(self.step, other.step), sym)

    def sub(self, other: "AbsVal") -> "AbsVal":
        if self.is_top or other.is_top:
            return TOP
        if self.sym is not None and other.sym is not None:
            if self.sym != other.sym:
                return TOP
            sym = None        # same base cancels: a difference of offsets
        else:
            if other.sym is not None:
                return TOP    # const - unknown
            sym = self.sym
        return AbsVal.range(self.lo - other.hi, self.hi - other.lo,
                            math.gcd(self.step, other.step), sym)

    def shift_left(self, amount: int) -> "AbsVal":
        if self.is_top or self.sym is not None:
            return TOP
        return AbsVal.range(self.lo << amount, self.hi << amount,
                            (self.step or 1) << amount)

    def shift_right_logical(self, amount: int) -> "AbsVal":
        if self.is_top or self.sym is not None or self.lo < 0:
            return TOP
        if self.is_const:
            return AbsVal.const(self.lo >> amount)
        return AbsVal.range(self.lo >> amount, self.hi >> amount, 1)

    def and_const(self, imm: int) -> "AbsVal":
        if not self.is_top and self.sym is None and self.is_const:
            return AbsVal.const(self.lo & imm)
        # result always lies in [0, imm] whatever the operand was
        return AbsVal.range(0, imm, 1) if imm else AbsVal.const(0)

    def or_const(self, imm: int) -> "AbsVal":
        if self.is_const:
            return AbsVal.const(self.lo | imm)
        if imm == 0:
            return self
        return TOP

    def xor_const(self, imm: int) -> "AbsVal":
        if self.is_const:
            return AbsVal.const(self.lo ^ imm)
        if imm == 0:
            return self
        return TOP

    def widen_by_stride(self, stride: int, times: int) -> "AbsVal":
        """Every value reachable by adding ``stride`` up to ``times``
        times: the loop-body generalization of an induction register."""
        if self.is_top:
            return TOP
        delta = stride * times
        lo = self.lo + min(0, delta)
        hi = self.hi + max(0, delta)
        return AbsVal.range(lo, hi, math.gcd(self.step, abs(stride)),
                            self.sym)

    # -- lattice -----------------------------------------------------------

    def join(self, other: "AbsVal") -> "AbsVal":
        if self is other or self == other:
            return self
        if self.is_top or other.is_top:
            return TOP
        if self.sym != other.sym:
            return TOP
        lo = min(self.lo, other.lo)
        hi = max(self.hi, other.hi)
        step = math.gcd(self.step, other.step, other.lo - self.lo)
        return AbsVal.range(lo, hi, step, self.sym)

    # -- comparisons (for dead-branch proofs) ------------------------------

    def must_equal(self, other: "AbsVal") -> bool:
        return (self.is_singleton and other.is_singleton
                and self.sym == other.sym and self.lo == other.lo)

    def cannot_equal(self, other: "AbsVal") -> bool:
        """Provably disjoint value sets (same-base or both absolute)."""
        if self.is_top or other.is_top:
            return False
        if self.sym != other.sym:
            return False  # unknown bases may coincide
        if self.hi < other.lo or other.hi < self.lo:
            return True
        if self.is_singleton and not other.is_top:
            v, s = self.lo, other.step or 1
            if other.lo <= v <= other.hi and (v - other.lo) % s:
                return True
        if other.is_singleton and not self.is_top:
            v, s = other.lo, self.step or 1
            if self.lo <= v <= self.hi and (v - self.lo) % s:
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_top:
            return "T"
        base = f"r{self.sym}+" if self.sym is not None else ""
        if self.lo == self.hi:
            return f"{base}{self.lo}"
        return f"{base}[{self.lo},{self.hi}]/{self.step}"


TOP = AbsVal(None, None, None, 0)


class AbsState:
    """Register file + tracked-memory map at one program point.

    Registers are a 32-tuple of :class:`AbsVal` (``$zero`` pinned to
    const 0; the Hi/Lo/OvFlo accumulator is always TOP -- the value
    analysis never needs it).  Memory is a dict keyed ``(sym, offset)``
    -- the word at byte offset ``offset`` from the entry value of
    register ``sym`` (``sym=None`` roots at absolute address 0).
    Distinct bases are assumed non-aliasing (the harness gives every
    operand arena and the stack disjoint regions; ARCHITECTURE.md
    records the assumption).
    """

    __slots__ = ("regs", "mem")

    #: Tracked-memory size cap; overflow drops the map (soundly: an
    #: untracked word reads as TOP).
    MEM_CAP = 512

    def __init__(self, regs: tuple[AbsVal, ...] | None = None,
                 mem: dict[tuple[int | None, int], AbsVal] | None = None
                 ) -> None:
        if regs is None:
            regs = (AbsVal.const(0),) + tuple(
                AbsVal.symbol(r) for r in range(1, 32))
        self.regs = regs
        self.mem = mem if mem is not None else {}

    @staticmethod
    def entry(values: dict[int, int] | None = None) -> "AbsState":
        """The state at the analyzed entry point.

        ``values`` pins registers the harness sets to known constants
        (e.g. ``$ra`` = the halt stub's address); everything else is
        entry-symbolic.
        """
        regs = [AbsVal.const(0)]
        for r in range(1, 32):
            if values and r in values:
                regs.append(AbsVal.const(values[r]))
            else:
                regs.append(AbsVal.symbol(r))
        return AbsState(tuple(regs), {})

    # -- access ------------------------------------------------------------

    def get(self, reg: int) -> AbsVal:
        return self.regs[reg]

    def set(self, reg: int, value: AbsVal) -> "AbsState":
        if reg == 0:
            return self
        regs = self.regs[:reg] + (value,) + self.regs[reg + 1:]
        return AbsState(regs, self.mem)

    def load_word(self, key: tuple[int | None, int]) -> AbsVal:
        return self.mem.get(key, TOP)

    def store_word(self, key: tuple[int | None, int],
                   value: AbsVal) -> "AbsState":
        mem = dict(self.mem)
        if value.is_top:
            mem.pop(key, None)
        else:
            if len(mem) >= self.MEM_CAP and key not in mem:
                return AbsState(self.regs, {})
            mem[key] = value
        return AbsState(self.regs, mem)

    def clobber_memory(self, sym: int | None = "all",  # type: ignore[assignment]
                       lo: int | None = None,
                       hi: int | None = None) -> "AbsState":
        """Forget tracked words an unresolved/ranged store may hit.

        ``sym="all"`` drops everything; otherwise only keys rooted at
        ``sym`` (within ``[lo, hi]`` bytes when given, widened to word
        granularity) are dropped -- distinct bases don't alias.
        """
        if sym == "all":
            return AbsState(self.regs, {}) if self.mem else self
        mem = {k: v for k, v in self.mem.items()
               if not (k[0] == sym
                       and (lo is None or lo - 3 <= k[1]
                            <= (hi if hi is not None else lo) + 3))}
        if len(mem) == len(self.mem):
            return self
        return AbsState(self.regs, mem)

    # -- lattice -----------------------------------------------------------

    def join(self, other: "AbsState") -> "AbsState":
        if self is other:
            return self
        if self.regs == other.regs:
            regs = self.regs
        else:
            regs = tuple(a if a == b else a.join(b)
                         for a, b in zip(self.regs, other.regs))
        if self.mem == other.mem:
            mem = self.mem
        else:
            mem = {}
            for key in self.mem.keys() & other.mem.keys():
                joined = self.mem[key].join(other.mem[key])
                if not joined.is_top:
                    mem[key] = joined
        return AbsState(regs, mem)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, AbsState)
                and self.regs == other.regs and self.mem == other.mem)

    def __hash__(self) -> int:  # pragma: no cover - not used as keys
        return hash(self.regs)
