"""Per-instruction def/use semantics for the static analyses.

Locations are small integers: 0-31 are the MIPS general-purpose
registers, plus three pseudo-locations for the multiply/accumulate unit
state (HI, LO and the accumulator-extension overflow word OvFlo, which
SHA shifts down and MADDU/M2ADDU/ADDAU carry into -- Section 5.2.1).
Sets of locations are represented as bitmasks so the dataflow fixpoints
stay cheap even on the fully unrolled kernels.

The tables mirror :mod:`repro.pete.cpu` exactly; ``tests/analysis``
cross-checks them against the simulator's own ``_sources`` helper.
"""

from __future__ import annotations

from repro.pete.isa import REGISTERS, Decoded

HI = 32
LO = 33
OV = 34
NUM_LOCS = 35

ACC = (1 << HI) | (1 << LO) | (1 << OV)

#: Callee-saved registers under the standard MIPS o32 convention.
CALLEE_SAVED = tuple(range(16, 24)) + (30,)  # $s0-$s7, $fp/$s8


def reg_mask(*names: str) -> int:
    """Bitmask from register names (``"a1"``) or location indices."""
    mask = 0
    for name in names:
        if isinstance(name, int):
            mask |= 1 << name
        else:
            mask |= 1 << REGISTERS[name.lstrip("$")]
    return mask


def mask_names(mask: int) -> list[str]:
    """Human-readable names for a location bitmask (for messages)."""
    from repro.pete.isa import REGISTER_NAMES

    names = []
    for i in range(NUM_LOCS):
        if mask & (1 << i):
            names.append(f"${REGISTER_NAMES[i]}" if i < 32
                         else {HI: "HI", LO: "LO", OV: "OvFlo"}[i])
    return names


_SHIFT_IMM = ("sll", "srl", "sra")
_SHIFT_REG = ("sllv", "srlv", "srav")
_ARITH_R = ("add", "addu", "sub", "subu", "and", "or", "xor", "nor",
            "slt", "sltu")
_ARITH_I = ("addi", "addiu", "slti", "sltiu", "andi", "ori", "xori")
_MULDIV = ("mult", "multu", "div", "divu")
_ACC_OPS = ("maddu", "m2addu", "addau", "maddgf2")
_LOADS = ("lw", "lh", "lhu", "lb", "lbu")
_STORES = ("sw", "sh", "sb")
_BRANCH_RS_RT = ("beq", "bne")
_BRANCH_RS = ("blez", "bgtz", "bltz", "bgez")
_COP2_RT = ("ctc2", "cop2lda", "cop2ldb", "cop2ldn", "cop2ld", "cop2st")


def defs(d: Decoded) -> int:
    """Locations written by the instruction, as a bitmask.

    Writes to ``$zero`` are architectural no-ops and never reported.
    """
    m = d.mnemonic
    if m in _SHIFT_IMM or m in _SHIFT_REG or m in _ARITH_R:
        return (1 << d.rd) & ~1
    if m in _ARITH_I or m == "lui" or m in _LOADS:
        return (1 << d.rt) & ~1
    if m in ("mfhi", "mflo"):
        return (1 << d.rd) & ~1
    if m == "mthi":
        return 1 << HI
    if m == "mtlo":
        return 1 << LO
    if m in _MULDIV or m == "mulgf2":
        return ACC
    if m in _ACC_OPS or m == "sha":
        return ACC
    if m == "jal":
        return reg_mask("ra")
    if m == "jalr":
        return (1 << d.rd) & ~1
    return 0


def uses(d: Decoded) -> int:
    """Locations read by the instruction, as a bitmask."""
    m = d.mnemonic
    if m in _SHIFT_IMM:
        return 1 << d.rt
    if m in _SHIFT_REG or m in _ARITH_R or m in _MULDIV or m == "mulgf2":
        return (1 << d.rs) | (1 << d.rt)
    if m in _ARITH_I or m in _LOADS:
        return 1 << d.rs
    if m in _STORES:
        return (1 << d.rs) | (1 << d.rt)
    if m in _BRANCH_RS_RT:
        return (1 << d.rs) | (1 << d.rt)
    if m in _BRANCH_RS:
        return 1 << d.rs
    if m in ("jr", "jalr", "mthi", "mtlo"):
        return 1 << d.rs
    if m == "mfhi":
        return 1 << HI
    if m == "mflo":
        return 1 << LO
    if m in _ACC_OPS:
        return (1 << d.rs) | (1 << d.rt) | ACC
    if m == "sha":
        return ACC
    if m in _COP2_RT:
        return 1 << d.rt
    return 0


def is_branch(d: Decoded) -> bool:
    return d.is_branch


def is_control(d: Decoded) -> bool:
    """Branch or jump: the following instruction is its delay slot."""
    return d.is_branch or d.is_jump


def is_unconditional(d: Decoded) -> bool:
    """Control transfers that never fall through past the slot."""
    if d.is_jump:
        return True
    return d.mnemonic == "beq" and d.rs == d.rt


def branch_condition_uses(d: Decoded) -> int:
    """Registers the branch *condition* reads (excludes ``$zero``)."""
    if not d.is_branch:
        return 0
    return uses(d) & ~1


def is_load(d: Decoded) -> bool:
    return d.is_load


def is_store(d: Decoded) -> bool:
    return d.is_store


def mem_base(d: Decoded) -> int | None:
    """The address base register of a load/store, if any."""
    if d.is_load or d.is_store:
        return d.rs
    return None
