"""Static superblock map: the regions the fastpath may compile.

:mod:`repro.pete.fastpath` discovers superblocks *dynamically* -- when
execution first reaches a pc it decodes forward while the mnemonics
stay in its ``COMPILABLE`` set and compiles the run into a closure.
This module computes the same property *statically* over a whole
program image: for every instruction index, the length of the maximal
straight-line compilable run starting there.  Because both sides apply
the identical predicate (``mnemonic in COMPILABLE``, data words and
decode failures terminate a run, ``MAX_BLOCK_LEN`` caps discovery),
the static map is a certificate for dynamic discovery:

* every block the fastpath compiles must lie inside a statically
  mapped region of at least the same length (``static >= dynamic``),
  and
* every pc the fastpath *declined* (cached ``None``) must rate below
  ``MIN_BLOCK_LEN`` statically.

:func:`certify` checks both directions against a fastpath's discovery
cache and returns human-readable mismatches; :mod:`repro.pete.diffexec`
runs it after every lock-step comparison and CI fails on a non-empty
result.  :func:`static_blocks` is the map itself, exported into the
``verify`` findings artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from repro.analysis.cfg import AsmProgram
from repro.pete.fastpath import COMPILABLE, MAX_BLOCK_LEN, MIN_BLOCK_LEN


@dataclass(frozen=True)
class Superblock:
    """One maximal statically compilable run ``[start, start+length)``."""

    start: int    # instruction index of the first compilable instruction
    length: int   # run length in instructions (uncapped)

    def to_dict(self) -> dict:
        return {"start": self.start, "length": self.length,
                "compiled_length": min(self.length, MAX_BLOCK_LEN)}


def run_lengths(program: AsmProgram) -> list[int]:
    """``run[i]`` = consecutive compilable instructions starting at
    ``i`` (uncapped; 0 for data words and non-compilable mnemonics)."""
    n = len(program)
    run = [0] * (n + 1)
    for i in range(n - 1, -1, -1):
        d = program.decoded[i]
        if d is not None and d.mnemonic in COMPILABLE:
            run[i] = run[i + 1] + 1
    return run[:n]


def static_blocks(program: AsmProgram) -> list[Superblock]:
    """Maximal compilable runs of at least ``MIN_BLOCK_LEN``."""
    run = run_lengths(program)
    blocks: list[Superblock] = []
    i, n = 0, len(program)
    while i < n:
        if run[i] >= MIN_BLOCK_LEN:
            blocks.append(Superblock(i, run[i]))
            i += run[i]
        else:
            i += 1
    return blocks


def coverage(program: AsmProgram) -> float:
    """Fraction of instruction words inside a static superblock."""
    n = sum(1 for d in program.decoded if d is not None)
    if n == 0:
        return 0.0
    covered = sum(b.length for b in static_blocks(program))
    return covered / n


def certify(program: AsmProgram,
            blocks: Mapping[int, Optional[Callable]]) -> list[str]:
    """Cross-check dynamic fastpath discovery against the static map.

    ``blocks`` is a fastpath discovery cache: pc (byte address) ->
    compiled closure (with ``__fastpath_len__``) or ``None`` for a
    declined pc.  Returns mismatch descriptions; empty means every
    dynamically discovered block is certified by the static map.
    """
    run = run_lengths(program)
    n = len(program)
    problems: list[str] = []
    for pc, fn in blocks.items():
        idx = (pc - program.base) // 4
        if not 0 <= idx < n:
            problems.append(
                f"pc 0x{pc:08x}: dynamic discovery outside the analyzed "
                f"image [0x{program.base:08x}, 0x{program.base + 4 * n:08x})")
            continue
        static_len = min(run[idx], MAX_BLOCK_LEN)
        if fn is None:
            if static_len >= MIN_BLOCK_LEN:
                problems.append(
                    f"index {idx}: fastpath declined a block the static "
                    f"map rates {static_len} instructions "
                    f"({program.line(idx)})")
            continue
        dyn_len = getattr(fn, "__fastpath_len__", None)
        if dyn_len is None:
            problems.append(
                f"index {idx}: compiled block carries no "
                f"__fastpath_len__ -- cannot certify")
        elif dyn_len > static_len:
            problems.append(
                f"index {idx}: dynamic block of {dyn_len} instructions "
                f"exceeds the static map's {static_len} "
                f"({program.line(idx)})")
    return problems
