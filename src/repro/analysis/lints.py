"""The Pete lint catalog and the per-program analysis driver.

Checks (ids are stable; waivers and the CLI reference them):

``missing-delay-slot``
    A branch/jump is the last word of the program: its architectural
    delay slot would execute whatever bytes follow.
``control-in-delay-slot``
    A branch/jump sits in another transfer's delay slot -- undefined on
    MIPS and unschedulable on Pete.
``branch-out-of-range``
    A static branch/jump target falls outside the program image.
``branch-into-delay-slot``
    A static branch/jump target lands inside another instruction's
    delay slot: the slot would execute without its owner, which has no
    well-defined block boundary.  The CFG drops the edge; this finding
    reports it.
``delay-slot-clobber``
    The delay-slot instruction writes a register the branch condition
    reads.  Architecturally defined (the branch compares the *pre-slot*
    values), and the hand-scheduled kernels use exactly this idiom to
    fold pointer updates into the slot -- but it is the classic way to
    mis-schedule a loop, so it must be explicitly waived per kernel.
``uninitialized-read``
    Some path from the entry reaches a read of a register that was
    never written (ABI-defined entry registers excepted).
``dead-store``
    A register write that no path reads before the register is
    rewritten or the program exits.
``callee-saved-clobber``
    Under the standard o32 convention, ``$s0-$s7``/``$fp`` written
    without a stack save/restore pair.  The generated kernels run under
    the documented kernel ABI (harness callers, ``$s*`` scratch), which
    disables this check instead of waiving each register.
``unreachable-code``
    Instructions no path from the entry executes.
``secret-dependent-branch`` / ``secret-dependent-address``
    The taint sinks; see :mod:`repro.analysis.taint`.
"""

from __future__ import annotations

import datetime
import os
from dataclasses import dataclass, field, replace

from repro.analysis import insn
from repro.analysis.cfg import CFG, AsmProgram, build_cfg
from repro.analysis.dataflow import liveness, maybe_uninitialized


@dataclass(frozen=True)
class Finding:
    """One defect (or property violation) at one instruction."""

    check: str
    index: int                 # instruction index; -1 = whole program
    message: str
    program: str = ""
    severity: str = "error"

    def to_dict(self) -> dict:
        return {"check": self.check, "index": self.index,
                "message": self.message, "program": self.program,
                "severity": self.severity}


@dataclass(frozen=True)
class Waiver:
    """Accepts all findings of one check in one program, with a reason.

    Waivers are the annotation mechanism for *intentional* findings:
    the descending-pointer delay-slot schedule, the paper's
    non-constant-time algorithm choices.  Every waiver must say why.

    ``expires`` makes a waiver temporary: an ``int`` is a PR count
    (the waiver dies once ``CHANGES.md`` has that many entries), a
    string is an ISO date (``"2026-12-31"``).  An expired waiver no
    longer suppresses anything -- the finding comes back *active*,
    its message prefixed with the expiry and the original reason, so
    ``verify --all`` fails loudly instead of silently forever.
    """

    check: str
    reason: str
    expires: str | int | None = None


@dataclass(frozen=True)
class AbiModel:
    """Register conventions the dataflow checks assume."""

    name: str
    #: registers carrying defined values at entry
    entry_defined: int = 0
    #: registers a caller may read after return (writes to them are
    #: never dead)
    live_out: int = 0
    #: $s* registers are ordinary scratch (the generated-kernel ABI
    #: documented in repro.kernels.prime_kernels); disables
    #: callee-saved-clobber
    callee_saved_scratch: bool = False


def _abi(name: str, entry: tuple[str, ...], out: tuple[str, ...],
         scratch_saved: bool) -> AbiModel:
    return AbiModel(name, insn.reg_mask(*entry), insn.reg_mask(*out),
                    scratch_saved)


#: Standard MIPS o32 leaf-function view.
STANDARD_ABI = _abi(
    "o32",
    entry=("zero", "a0", "a1", "a2", "a3", "sp", "gp", "ra",
           "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "fp",
           insn.HI, insn.LO, insn.OV),
    out=("v0", "v1", "sp", "ra", "gp",
         "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "fp"),
    scratch_saved=False,
)

#: The generated kernels' documented convention: harness callers, no
#: callee-save discipline, results in memory plus $v0/$v1.
KERNEL_ABI = _abi(
    "kernel",
    entry=("zero", "a0", "a1", "a2", "a3", "sp", "gp", "ra",
           insn.HI, insn.LO, insn.OV),
    out=("v0", "v1", "sp", "ra"),
    scratch_saved=True,
)


@dataclass
class AnalysisResult:
    """Everything one program's analysis produced."""

    program: AsmProgram
    cfg: CFG
    findings: list[Finding] = field(default_factory=list)
    waived: list[tuple[Finding, Waiver]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_check(self, check: str) -> list[Finding]:
        return [f for f in self.findings if f.check == check]


def analyze_program(program: AsmProgram, abi: AbiModel = KERNEL_ABI,
                    taint=None, waivers: tuple[Waiver, ...] = (),
                    roots: tuple[int, ...] = (0,)) -> AnalysisResult:
    """Run the full check suite over one program."""
    cfg = build_cfg(program)
    findings: list[Finding] = []
    findings += _structural_checks(cfg)
    findings += _dataflow_checks(cfg, abi, roots)
    if not abi.callee_saved_scratch:
        findings += _callee_saved_checks(program)
    if taint is not None:
        from repro.analysis.taint import taint_findings

        findings += taint_findings(cfg, taint, roots)
    findings = [replace(f, program=program.name) for f in findings]
    findings.sort(key=lambda f: (f.index, f.check))
    active, waived = apply_waivers(findings, waivers)
    return AnalysisResult(program, cfg, active, waived)


def current_pr_count() -> int | None:
    """PRs landed so far = non-blank ``CHANGES.md`` entries (the file
    gains exactly one line per PR), or ``None`` outside a checkout."""
    from repro.trace.record import repo_root

    path = os.path.join(repo_root(), "CHANGES.md")
    try:
        with open(path, encoding="utf-8") as fh:
            return sum(1 for line in fh
                       if line.strip() and not line.startswith("#"))
    except OSError:
        return None


def waiver_expired(waiver: Waiver, now: datetime.date | None = None,
                   pr_count: int | None = None) -> bool:
    """Evaluate a waiver's ``expires`` field.

    ``now``/``pr_count`` are injectable for tests; they default to
    today's date and :func:`current_pr_count`.  A malformed expiry
    counts as expired -- failing loudly beats a typo granting a
    permanent waiver.
    """
    if waiver.expires is None:
        return False
    if isinstance(waiver.expires, int):
        if pr_count is None:
            pr_count = current_pr_count()
        return pr_count is not None and pr_count >= waiver.expires
    try:
        limit = datetime.date.fromisoformat(str(waiver.expires))
    except ValueError:
        return True
    return (now or datetime.date.today()) >= limit


def apply_waivers(findings: list[Finding], waivers: tuple[Waiver, ...],
                  now: datetime.date | None = None,
                  pr_count: int | None = None
                  ) -> tuple[list[Finding], list[tuple[Finding, Waiver]]]:
    """Split findings into (active, waived-with-reason).

    Expired waivers (see :class:`Waiver`) no longer suppress: their
    findings stay active, with the expiry recorded in the message.
    """
    by_check = {w.check: w for w in waivers}
    active: list[Finding] = []
    waived: list[tuple[Finding, Waiver]] = []
    for f in findings:
        waiver = by_check.get(f.check)
        if waiver is None:
            active.append(f)
        elif waiver_expired(waiver, now=now, pr_count=pr_count):
            active.append(replace(
                f, message=(f"waiver expired ({waiver.expires!r}, was: "
                            f"{waiver.reason}): {f.message}")))
        else:
            waived.append((f, waiver))
    return active, waived


# ---------------------------------------------------------------------------
# Structural checks: delay slots and control-flow sanity
# ---------------------------------------------------------------------------


def _structural_checks(cfg: CFG) -> list[Finding]:
    program = cfg.program
    n = len(program)
    out: list[Finding] = []
    for i, d in enumerate(program.decoded):
        if d is None or not insn.is_control(d):
            continue
        if i + 1 >= n:
            out.append(Finding(
                "missing-delay-slot", i,
                f"control transfer is the last word of the program "
                f"(its delay slot would execute arbitrary bytes): "
                f"{program.line(i)}"))
            continue
        slot = program.decoded[i + 1]
        if slot is not None and insn.is_control(slot):
            out.append(Finding(
                "control-in-delay-slot", i + 1,
                f"control transfer in the delay slot of "
                f"'{program.line(i)}': {program.line(i + 1)}"))
        target = None
        if d.is_branch or d.mnemonic in ("j", "jal"):
            from repro.analysis.cfg import branch_target_index

            target = branch_target_index(program, i)
            if target is not None and not 0 <= target < n:
                out.append(Finding(
                    "branch-out-of-range", i,
                    f"target 0x{program.address(0) + 4 * target:x} is "
                    f"outside the program image: {program.line(i)}"))
            elif target is not None and target in cfg.slots:
                out.append(Finding(
                    "branch-into-delay-slot", i,
                    f"target {program.label_at(target) or target} is the "
                    f"delay slot of '{program.line(target - 1)}' -- the "
                    f"slot would execute without its owner: "
                    f"{program.line(i)}"))
        if slot is not None and d.is_branch:
            clobbered = insn.defs(slot) & insn.branch_condition_uses(d)
            if clobbered:
                regs = ", ".join(insn.mask_names(clobbered))
                out.append(Finding(
                    "delay-slot-clobber", i + 1,
                    f"delay slot writes {regs}, which the branch "
                    f"'{program.line(i)}' reads (branch compares the "
                    f"pre-slot value): {program.line(i + 1)}"))
    return out


# ---------------------------------------------------------------------------
# Dataflow checks: uninitialized reads, dead stores, unreachable code
# ---------------------------------------------------------------------------


def _dataflow_checks(cfg: CFG, abi: AbiModel,
                     roots: tuple[int, ...]) -> list[Finding]:
    program = cfg.program
    out: list[Finding] = []
    reachable = cfg.reachable(roots)
    unin = maybe_uninitialized(cfg, abi.entry_defined, roots)
    for i in sorted(reachable):
        d = program.decoded[i]
        if d is None:
            continue
        suspect = insn.uses(d) & unin[i]
        if suspect:
            regs = ", ".join(insn.mask_names(suspect))
            out.append(Finding(
                "uninitialized-read", i,
                f"reads {regs} which may never have been written: "
                f"{program.line(i)}"))
    _, live_out = liveness(cfg, abi.live_out)
    for i in sorted(reachable):
        d = program.decoded[i]
        if d is None:
            continue
        define = insn.defs(d)
        if not define:
            continue
        dead = define & ~live_out[i]
        # accumulator state is hardware-managed; only flag GPR stores
        dead &= (1 << 32) - 1
        if dead and dead == define & ((1 << 32) - 1):
            regs = ", ".join(insn.mask_names(dead))
            out.append(Finding(
                "dead-store", i,
                f"writes {regs} but no path reads it again: "
                f"{program.line(i)}"))
    for i in range(len(program)):
        if i not in reachable and program.decoded[i] is not None:
            out.append(Finding(
                "unreachable-code", i,
                f"no path from the entry reaches: {program.line(i)}",
                severity="warning"))
    return out


# ---------------------------------------------------------------------------
# Calling convention (standard ABI only)
# ---------------------------------------------------------------------------


def _callee_saved_checks(program: AsmProgram) -> list[Finding]:
    """Flag $s*/$fp writes without a surrounding stack save/restore."""
    out: list[Finding] = []
    saved_stores: dict[int, int] = {}   # reg -> first sw index
    saved_loads: dict[int, int] = {}    # reg -> last lw index
    sp = insn.reg_mask("sp").bit_length() - 1
    for i, d in enumerate(program.decoded):
        if d is None:
            continue
        if d.mnemonic == "sw" and d.rs == sp and d.rt in insn.CALLEE_SAVED:
            saved_stores.setdefault(d.rt, i)
        if d.mnemonic == "lw" and d.rs == sp and d.rt in insn.CALLEE_SAVED:
            saved_loads[d.rt] = i
    for i, d in enumerate(program.decoded):
        if d is None:
            continue
        define = insn.defs(d)
        for reg in insn.CALLEE_SAVED:
            if not define & (1 << reg):
                continue
            if d.mnemonic == "lw" and d.rs == sp:
                continue  # the restore itself
            saved = (reg in saved_stores and saved_stores[reg] < i
                     and saved_loads.get(reg, -1) > i)
            if not saved:
                regs = ", ".join(insn.mask_names(define & (1 << reg)))
                out.append(Finding(
                    "callee-saved-clobber", i,
                    f"writes callee-saved {regs} without a stack "
                    f"save/restore: {program.line(i)}"))
    return out
