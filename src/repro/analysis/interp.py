"""Whole-program abstract interpretation over the Pete ISA.

This is the interprocedural layer above :mod:`repro.analysis.cfg`: a
forward walk of the entire program image in the value domain of
:mod:`repro.analysis.absdom`, producing

* a **call graph** -- ``jal``/``jalr`` call edges and ``jr`` return
  edges, resolved by tracking return addresses through registers *and*
  through spilled stack words (the composed ``fmul_*`` kernels save
  ``$ra`` to ``0($sp)`` and reload it before returning);
* **loop structure with trip bounds** -- natural loops per function,
  with constant-derived trip-count inference for the two induction
  shapes the generated kernels use (counted ``addiu``/``bne`` loops
  and pointer-vs-sentinel loops, including triangular nests);
* **value states** per instruction -- joined over every context that
  reaches it -- which resolve indirect jumps (including jump tables
  through a register, via the stride component of the domain), prove
  dead branches, and resolve load/store addresses for the
  interprocedural taint pass;
* the edge set of the **interprocedural CFG** actually walked (call
  edges, return edges, loop back edges), which the static bound pass
  and :mod:`repro.analysis.taint` consume.

Soundness stance: this is a may-analysis used to *verify* properties
(constant-time, static superblock legality, cycle/energy upper
bounds).  Whenever the walk cannot resolve something it must not
guess: an indirect jump with an unresolvable target, a loop with no
derivable trip bound, recursion, or irreducible control flow each
produce an error-severity finding, and the bound pass refuses to
certify the program until the finding is fixed or waived.  Two
documented assumptions (see ARCHITECTURE.md): distinct entry-symbolic
memory bases never alias each other or the constant-address arenas,
and address/counter arithmetic does not wrap mod 2^32.

The walk itself avoids widening entirely: each function region is
processed once in reverse postorder with back edges removed, and at
every loop header the entry state is *generalized* -- induction
registers get their entry value widened by ``stride * trips``, other
loop-defined registers go to TOP, tracked words the body may store to
are dropped (per base symbol) -- so the header state covers every
iteration and the acyclic walk stays sound.  A call anywhere in the
body defeats that per-body reasoning (the callee may write any
register or tracked word, and may rewrite the loop counter out from
under a derived trip bound), so such headers generalize to TOP
registers, empty memory, and an assumed-only trip bound.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis import insn
from repro.analysis.absdom import TOP, AbsState, AbsVal
from repro.analysis.cfg import (
    CFG,
    EXIT,
    AsmProgram,
    branch_target_index,
    build_cfg,
)
from repro.analysis.lints import Finding
from repro.pete.isa import Decoded

MASK32 = 0xFFFFFFFF

#: Call-depth cap (the composed kernels nest two deep; anything deeper
#: than this is runaway resolution, reported as a finding).
MAX_CALL_DEPTH = 12

#: Trip bounds above this are treated as underived (unbounded-loop).
MAX_TRIPS = 1 << 20

#: Region rebuilds per function while discovering jump-table targets.
MAX_REGION_RETRIES = 5


@dataclass(frozen=True)
class Loop:
    """One natural loop (same-header back edges merged)."""

    header: int
    body: frozenset[int]
    latches: tuple[int, ...]     # back-edge source indices (slots)
    parent: int | None = None    # header of the directly enclosing loop


@dataclass
class FunctionInfo:
    """One function region: intraprocedural structure for the walk."""

    entry: int
    nodes: frozenset[int]
    succ: dict[int, tuple[int, ...]]      # intraprocedural (calls bypass)
    preds: dict[int, tuple[int, ...]]
    order: tuple[int, ...]                # reverse postorder
    back_edges: frozenset[tuple[int, int]]
    loops: dict[int, Loop]
    loop_of: dict[int, int | None]        # innermost loop header per node
    irreducible: bool = False

    def inner_loops(self, header: int | None) -> list[Loop]:
        """Loops directly nested in ``header`` (``None`` = top level)."""
        return [lp for lp in self.loops.values() if lp.parent == header]


@dataclass
class InterpResult:
    """Everything one whole-program walk produced."""

    program: AsmProgram
    cfg: CFG
    entry: int
    functions: dict[int, FunctionInfo] = field(default_factory=dict)
    #: joined pre-transfer state per reached instruction
    states: dict[int, AbsState] = field(default_factory=dict)
    #: jal/jalr instruction index -> resolved callee entry index
    calls: dict[int, int] = field(default_factory=dict)
    #: jr instruction index -> resolved target indices (EXIT = harness)
    returns: dict[int, tuple[int, ...]] = field(default_factory=dict)
    #: branch index -> subset of {"taken", "fall"} seen feasible
    branch_feasible: dict[int, frozenset[str]] = field(default_factory=dict)
    #: (function entry, loop header) -> trip bound (None = underived)
    trip_bounds: dict[tuple[int, int], int | None] = field(
        default_factory=dict)
    #: load/store index -> joined abstract address
    addr_info: dict[int, AbsVal] = field(default_factory=dict)
    #: interprocedural edge set actually walked (incl. call/return/back)
    iedges: dict[int, tuple[int, ...]] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)
    #: branches proven one-sided: (index, the only feasible direction)
    dead_branches: list[tuple[int, str]] = field(default_factory=list)
    #: loops bounded by caller-supplied assumption, not derivation:
    #: (header index, assumed trip bound) -- surfaced in reports
    assumed_loops: list[tuple[int, int]] = field(default_factory=list)

    @property
    def reached(self) -> set[int]:
        return set(self.states)

    def ipreds(self) -> dict[int, tuple[int, ...]]:
        """Predecessor view of the interprocedural edge set."""
        preds: dict[int, list[int]] = defaultdict(list)
        for u, targets in self.iedges.items():
            for v in targets:
                if v != EXIT:
                    preds[v].append(u)
        return {v: tuple(us) for v, us in preds.items()}


def analyze_image(program: AsmProgram, entry: int = 0,
                  entry_values: dict[int, int] | None = None,
                  assume_trips: dict[int, int] | None = None
                  ) -> InterpResult:
    """Interpret the whole image from ``entry``.

    ``entry_values`` pins harness-set registers to concrete values
    (``{31: halt_address}`` for runner images); everything else is
    entry-symbolic, so the result covers *all* inputs.

    ``assume_trips`` maps loop-header indices to *asserted* trip
    bounds, for loops whose termination argument is mathematical
    rather than arithmetic (the reduction carry-fold loop).  Used
    bounds are reported in ``assumed_loops`` so every assumption in a
    certified result is visible.
    """
    walker = _Walker(program, entry_values or {}, assume_trips or {})
    walker.run(entry)
    return walker.result


# ---------------------------------------------------------------------------
# Function regions: intraprocedural reachability, dominators, loops
# ---------------------------------------------------------------------------


def _intra_succ(program: AsmProgram, cfg: CFG, i: int,
                extra: dict[int, tuple[int, ...]]) -> tuple[int, ...]:
    """Intraprocedural successors: calls bypass to the return point,
    ``jr`` flows only to walk-discovered jump-table targets."""
    d = program.decoded[i]
    n = len(program)
    if d is None or d.mnemonic == "break":
        return ()
    if i in cfg.slots:
        owner = program.decoded[i - 1]
        if owner is None:
            return ()
        m = owner.mnemonic
        if m in ("jal", "jalr"):
            return (i + 1,) if i + 1 < n else ()
        if m == "jr":
            return extra.get(i, ())
        edges: list[int] = []
        target = branch_target_index(program, i - 1, cfg.slots)
        if target is not None and 0 <= target < n:
            edges.append(target)
        if not insn.is_unconditional(owner) and i + 1 < n:
            edges.append(i + 1)
        return tuple(dict.fromkeys(edges))
    return (i + 1,) if i + 1 < n else ()


def _build_function(program: AsmProgram, cfg: CFG, entry: int,
                    extra: dict[int, tuple[int, ...]]) -> FunctionInfo:
    succ: dict[int, tuple[int, ...]] = {}
    seen = {entry}
    stack = [entry]
    while stack:
        i = stack.pop()
        succ[i] = _intra_succ(program, cfg, i, extra)
        for s in succ[i]:
            if s not in seen:
                seen.add(s)
                stack.append(s)
    nodes = frozenset(seen)
    preds: dict[int, list[int]] = defaultdict(list)
    for u, targets in succ.items():
        for v in targets:
            preds[v].append(u)

    # reverse postorder (iterative DFS)
    post: list[int] = []
    visited = {entry}
    dfs: list[tuple[int, int]] = [(entry, 0)]
    while dfs:
        node, child = dfs[-1]
        targets = succ[node]
        if child < len(targets):
            dfs[-1] = (node, child + 1)
            s = targets[child]
            if s not in visited:
                visited.add(s)
                dfs.append((s, 0))
        else:
            post.append(node)
            dfs.pop()
    order = tuple(reversed(post))
    rpo_index = {node: k for k, node in enumerate(order)}

    # dominators (iterative, Cooper-Harvey-Kennedy)
    idom: dict[int, int] = {entry: entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order[1:]:
            new: int | None = None
            for p in preds[node]:
                if p in idom:
                    new = p if new is None else intersect(new, p)
            if new is not None and idom.get(node) != new:
                idom[node] = new
                changed = True

    def dominates(a: int, b: int) -> bool:
        while True:
            if b == a:
                return True
            parent = idom.get(b)
            if parent is None or parent == b:
                return False
            b = parent

    back = frozenset((u, v) for u, targets in succ.items()
                     for v in targets if dominates(v, u))
    # reducibility: RPO must topologically order the non-back edges
    irreducible = any(rpo_index[v] <= rpo_index[u]
                      for u, targets in succ.items() for v in targets
                      if (u, v) not in back)

    # natural loops, merged per header
    bodies: dict[int, set[int]] = {}
    latches: dict[int, list[int]] = defaultdict(list)
    for u, h in back:
        body = bodies.setdefault(h, {h})
        latches[h].append(u)
        flood = [u]
        while flood:
            x = flood.pop()
            if x in body:
                continue
            body.add(x)
            flood.extend(p for p in preds[x] if p not in body)
    by_size = sorted(bodies, key=lambda h: len(bodies[h]))
    parent: dict[int, int | None] = {}
    for h in bodies:
        enclosing = [h2 for h2 in bodies
                     if h2 != h and bodies[h] <= bodies[h2]
                     and h in bodies[h2]]
        parent[h] = (min(enclosing, key=lambda h2: len(bodies[h2]))
                     if enclosing else None)
    loops = {h: Loop(h, frozenset(bodies[h]), tuple(sorted(latches[h])),
                     parent[h]) for h in bodies}
    loop_of: dict[int, int | None] = dict.fromkeys(nodes)
    for h in sorted(by_size, key=lambda h: -len(bodies[h])):
        for node in bodies[h]:
            loop_of[node] = h
    return FunctionInfo(entry, nodes, succ,
                        {v: tuple(us) for v, us in preds.items()},
                        order, back, loops, loop_of, irreducible)


# ---------------------------------------------------------------------------
# The walk
# ---------------------------------------------------------------------------


class _RegionChanged(Exception):
    """A jr resolved to a target outside the current region estimate."""


class _Walker:
    def __init__(self, program: AsmProgram, entry_values: dict[int, int],
                 assume_trips: dict[int, int] | None = None) -> None:
        self.program = program
        self.cfg = build_cfg(program)
        self.entry_values = entry_values
        self.assume_trips = assume_trips or {}
        #: jr slot -> discovered intraprocedural (jump-table) targets
        self.extra: dict[int, tuple[int, ...]] = {}
        self.result = InterpResult(program, self.cfg, 0)
        self._iedges: dict[int, set[int]] = defaultdict(set)
        self._feasible: dict[int, set[str]] = defaultdict(set)
        self._finding_keys: set[tuple[str, int]] = set()

    # -- bookkeeping -------------------------------------------------------

    def _finding(self, check: str, index: int, message: str) -> None:
        if (check, index) in self._finding_keys:
            return
        self._finding_keys.add((check, index))
        self.result.findings.append(Finding(
            check, index, message, program=self.program.name))

    def _note_state(self, i: int, state: AbsState) -> None:
        prev = self.result.states.get(i)
        self.result.states[i] = state if prev is None else prev.join(state)

    def _note_addr(self, i: int, addr: AbsVal) -> None:
        prev = self.result.addr_info.get(i)
        self.result.addr_info[i] = addr if prev is None else prev.join(addr)

    def _note_trip(self, entry: int, header: int,
                   trips: int | None) -> None:
        key = (entry, header)
        prev = self.result.trip_bounds.get(key, 0)
        if trips is None or prev is None:
            self.result.trip_bounds[key] = None
        else:
            self.result.trip_bounds[key] = max(prev, trips)

    # -- top level ---------------------------------------------------------

    def run(self, entry: int) -> None:
        self.result.entry = entry
        n = len(self.program)
        if not 0 <= entry < n:
            self._finding("unresolved-entry", -1,
                          f"entry index {entry} outside the image")
            return
        state = AbsState.entry(self.entry_values)
        self._walk_function(entry, state, (entry,), ret_addr=None)
        self.result.iedges = {u: tuple(sorted(vs))
                              for u, vs in self._iedges.items()}
        self.result.branch_feasible = {
            i: frozenset(dirs) for i, dirs in self._feasible.items()}
        for i, dirs in sorted(self.result.branch_feasible.items()):
            d = self.program.decoded[i]
            if d is not None and d.is_branch and len(dirs) == 1 \
                    and not insn.is_unconditional(d):
                self.result.dead_branches.append((i, next(iter(dirs))))

    # -- per function ------------------------------------------------------

    def _walk_function(self, entry: int, state: AbsState,
                       chain: tuple[int, ...], ret_addr: int | None
                       ) -> tuple[AbsState | None, tuple[int, ...]]:
        """Walk one function region; returns (joined state at return,
        the jr-slot indices that returned)."""
        for _ in range(MAX_REGION_RETRIES):
            fn = _build_function(self.program, self.cfg, entry, self.extra)
            self.result.functions[entry] = fn
            if fn.irreducible:
                self._finding(
                    "irreducible-control-flow", entry,
                    f"function at {self._where(entry)} has irreducible "
                    f"control flow; the abstract interpreter cannot "
                    f"analyze it")
                return None, ()
            try:
                return self._walk_region(fn, state, chain, ret_addr)
            except _RegionChanged:
                continue
        self._finding(
            "unresolved-indirect-jump", entry,
            f"jump-table resolution did not converge in function at "
            f"{self._where(entry)}")
        return None, ()

    def _walk_region(self, fn: FunctionInfo, state: AbsState,
                     chain: tuple[int, ...], ret_addr: int | None
                     ) -> tuple[AbsState | None, tuple[int, ...]]:
        program = self.program
        n = len(program)
        local: dict[int, AbsState] = {fn.entry: state}
        pre_slot: dict[int, AbsState] = {}
        exit_states: list[AbsState] = []
        exit_slots: list[int] = []

        def flow(u: int, v: int, s: AbsState) -> None:
            self._iedges[u].add(v)
            if (u, v) in fn.back_edges:
                return  # header already generalized over all iterations
            local[v] = s if v not in local else local[v].join(s)

        for i in fn.order:
            if i not in local:
                continue  # infeasible in this context
            s = local[i]
            if i in fn.loops:
                s, trips = self._generalize(fn, i, s)
                self._note_trip(fn.entry, i, trips)
                if trips is None:
                    self._finding(
                        "unbounded-loop", i,
                        f"no trip bound derivable for the loop at "
                        f"{self._where(i)} (latch "
                        f"{[program.line(u - 1) for u in fn.loops[i].latches]})")
                local[i] = s
            self._note_state(i, s)
            d = program.decoded[i]
            if d is None:
                self._finding(
                    "data-executed", i,
                    f"execution reaches a data word: {program.line(i)}")
                continue

            if i in self.cfg.slots and program.decoded[i - 1] is not None:
                owner = program.decoded[i - 1]
                owner_pre = pre_slot.get(i, s)
                out = self._transfer(d, i, s)
                om = owner.mnemonic
                if om in ("jal", "jalr"):
                    self._do_call(fn, i, owner, owner_pre, out, chain,
                                  flow)
                elif om == "jr":
                    self._do_jr(fn, i, owner, owner_pre, out, ret_addr,
                                flow, exit_states, exit_slots)
                elif owner.is_branch:
                    outcomes = _branch_outcomes(owner, owner_pre)
                    self._feasible[i - 1] |= outcomes
                    target = branch_target_index(program, i - 1,
                                                 self.cfg.slots)
                    # on the edge where rs == rt held, both registers
                    # hold the same value -- refine the wider one (this
                    # is what keeps loop-exit states exact, stopping
                    # trip-bound slack from cascading into outer loops)
                    taken_state = fall_state = out
                    if owner.mnemonic == "beq":
                        taken_state = _refine_equal(owner, d, owner_pre,
                                                    out)
                    elif owner.mnemonic == "bne":
                        fall_state = _refine_equal(owner, d, owner_pre,
                                                   out)
                    if "taken" in outcomes and target is not None \
                            and 0 <= target < n:
                        flow(i, target, taken_state)
                    if "fall" in outcomes and i + 1 < n:
                        flow(i, i + 1, fall_state)
                else:  # j
                    target = branch_target_index(program, i - 1,
                                                 self.cfg.slots)
                    if target is not None and 0 <= target < n:
                        flow(i, target, out)
                continue

            if insn.is_control(d) and i + 1 < n:
                pre_slot[i + 1] = s
                out = s
                if d.mnemonic == "jal":
                    out = s.set(31, AbsVal.const(program.address(i + 2)))
                elif d.mnemonic == "jalr" and d.rd:
                    out = s.set(d.rd, AbsVal.const(program.address(i + 2)))
                flow(i, i + 1, out)
                continue
            if d.mnemonic == "break":
                continue  # program halt
            out = self._transfer(d, i, s)
            if i + 1 < n:
                flow(i, i + 1, out)

        joined: AbsState | None = None
        for es in exit_states:
            joined = es if joined is None else joined.join(es)
        return joined, tuple(exit_slots)

    # -- calls and indirect jumps -----------------------------------------

    def _do_call(self, fn: FunctionInfo, slot: int, owner: Decoded,
                 owner_pre: AbsState, out: AbsState,
                 chain: tuple[int, ...],
                 flow: Callable[[int, int, AbsState], None]) -> None:
        program = self.program
        o = slot - 1
        if owner.mnemonic == "jal":
            callee = branch_target_index(program, o, self.cfg.slots)
        else:  # jalr: target from the register, pre-slot value
            v = _wrap_for_decision(owner_pre.get(owner.rs))
            callee = self._index_of_address(v.const_value())
        ret_index = slot + 1
        if callee is None or not 0 <= callee < len(program):
            self._finding(
                "unresolved-indirect-call", o,
                f"cannot resolve call target: {program.line(o)}")
            self._degrade_return(slot, ret_index, flow)
            return
        self.result.calls[o] = callee
        self._iedges[slot].add(callee)
        if callee in chain or len(chain) >= MAX_CALL_DEPTH:
            self._finding(
                "recursive-call", o,
                f"call at {program.line(o)} re-enters "
                f"{self._where(callee)} (recursion or call depth > "
                f"{MAX_CALL_DEPTH}); not analyzable")
            self._degrade_return(slot, ret_index, flow)
            return
        exit_state, exit_slots = self._walk_function(
            callee, out, chain + (callee,), program.address(ret_index))
        for es in exit_slots:
            self._iedges[es].add(ret_index)
        if exit_state is not None and ret_index < len(program):
            local_flow = flow  # return state resumes at the return point
            local_flow(slot, ret_index, exit_state)
            self._iedges[slot].discard(ret_index)  # bypass is not an edge

    def _degrade_return(self, slot: int, ret_index: int, flow) -> None:
        """Resume at the return point with no knowledge (sound)."""
        if ret_index < len(self.program):
            top = AbsState((AbsVal.const(0),) + (TOP,) * 31, {})
            flow(slot, ret_index, top)

    def _do_jr(self, fn: FunctionInfo, slot: int, owner: Decoded,
               owner_pre: AbsState, out: AbsState, ret_addr: int | None,
               flow: Callable[[int, int, AbsState], None],
               exit_states: list[AbsState],
               exit_slots: list[int]) -> None:
        program = self.program
        o = slot - 1
        v = owner_pre.get(owner.rs)
        if v.is_singleton and v.sym == 31 and v.lo == 0:
            # the entry $ra itself: return to the harness
            self.result.returns[o] = (EXIT,)
            exit_states.append(out)
            exit_slots.append(slot)
            return
        wrapped = _wrap_for_decision(v)
        addresses = wrapped.enumerate() if wrapped.sym is None else None
        if not addresses:
            self._finding(
                "unresolved-indirect-jump", o,
                f"cannot resolve target set of {program.line(o)} "
                f"(value {v!r})")
            self.result.returns.setdefault(o, ())
            return
        targets: list[int] = []
        new_extra: list[int] = []
        for addr in addresses:
            if ret_addr is not None and addr == ret_addr:
                exit_states.append(out)
                if slot not in exit_slots:
                    exit_slots.append(slot)
                t = self._index_of_address(addr)
                if t is not None:
                    targets.append(t)
                continue
            t = self._index_of_address(addr)
            if t is None:
                self._finding(
                    "unresolved-indirect-jump", o,
                    f"{program.line(o)} targets 0x{addr:08x}, outside "
                    f"the image or misaligned")
                continue
            if t in self.cfg.slots:
                # slot-entered execution runs the slot instruction and
                # falls through without branching; the walk models a
                # slot node with its owner's control semantics, so --
                # like branch_target_index -- refuse instead of walking
                # it wrong
                self._finding(
                    "jump-into-delay-slot", o,
                    f"{program.line(o)} targets 0x{addr:08x}, the delay "
                    f"slot of '{program.line(t - 1)}'; entering a slot "
                    f"without its owner has no well-defined semantics "
                    f"here")
                continue
            targets.append(t)
            if t not in self.extra.get(slot, ()):
                new_extra.append(t)
        prev = self.result.returns.get(o, ())
        self.result.returns[o] = tuple(sorted(set(prev) | set(targets)))
        if new_extra:
            self.extra[slot] = tuple(sorted(
                set(self.extra.get(slot, ())) | set(new_extra)))
            raise _RegionChanged
        for t in self.extra.get(slot, ()):
            flow(slot, t, out)

    def _index_of_address(self, addr: int | None) -> int | None:
        if addr is None:
            return None
        offset = addr - self.program.base
        if offset % 4 or not 0 <= offset // 4 < len(self.program):
            return None
        return offset // 4

    def _where(self, index: int) -> str:
        label = self.program.label_at(index)
        return (f"'{label}' (index {index})" if label
                else f"index {index}")

    # -- loop generalization ----------------------------------------------

    def _generalize(self, fn: FunctionInfo, header: int, s: AbsState
                    ) -> tuple[AbsState, int | None]:
        program = self.program
        loop = fn.loops[header]
        defs_by_reg: dict[int, list] = defaultdict(list)
        calls_in_body = False
        stores: list = []
        for i in sorted(loop.body):
            d = program.decoded[i]
            if d is None:
                continue
            if d.mnemonic in ("jal", "jalr"):
                calls_in_body = True
            if d.is_store:
                stores.append(d)
            mask = insn.defs(d) & MASK32
            r = 0
            while mask:
                if mask & 1:
                    defs_by_reg[r].append(d)
                mask >>= 1
                r += 1
        strides: dict[int, int] = {}
        for r, ds in defs_by_reg.items():
            if len(ds) == 1 and ds[0].mnemonic in ("addiu", "addi") \
                    and ds[0].rs == r and ds[0].rt == r and ds[0].imm:
                strides[r] = ds[0].imm
        # a call in the body clobbers everything a callee may touch:
        # registers it writes keep their iteration-0 values in a
        # per-body generalization, and the single-addiu stride shape
        # (hence any derived trip bound) is void if the callee writes
        # the counter -- so the header state drops to TOP registers and
        # empty memory, mirroring clobber_memory(), and only an
        # *assumed* trip bound survives
        if calls_in_body:
            trips = self.assume_trips.get(header)
            if trips is not None:
                self.result.assumed_loops.append((header, trips))
            return AbsState((AbsVal.const(0),) + (TOP,) * 31, {}), trips
        trips = self._infer_trips(loop, s, strides, defs_by_reg)
        if trips is None and header in self.assume_trips:
            trips = self.assume_trips[header]
            self.result.assumed_loops.append((header, trips))
        regs = list(s.regs)
        for r in range(1, 32):
            if r in strides and trips is not None:
                regs[r] = regs[r].widen_by_stride(strides[r], trips)
            elif r in defs_by_reg:
                regs[r] = TOP
        out = AbsState(tuple(regs), s.mem)
        # drop tracked words the body may store to, by base symbol --
        # the store base register is usually loop-derived (TOP in the
        # generalized state), so chase its def chain to the symbol
        # instead of evaluating it
        for d in stores:
            base = self._chase_sym(d.rs, s, defs_by_reg, 0)
            if base == "unknown":
                return out.clobber_memory(), trips
            out = out.clobber_memory(base)
        return out, trips

    def _chase_sym(self, r: int, s_entry: AbsState, defs_by_reg: dict,
                   depth: int):
        """The entry-symbolic base an in-loop address computation is
        rooted at: a register number, ``None`` for absolute addresses,
        or ``"unknown"``."""
        if r == 0:
            return None
        if r not in defs_by_reg:  # loop-invariant: entry value decides
            v = s_entry.get(r)
            return "unknown" if v.is_top else v.sym
        if depth >= 6 or len(defs_by_reg[r]) != 1:
            return "unknown"
        d = defs_by_reg[r][0]
        m = d.mnemonic
        if m in ("addiu", "addi"):
            if d.rs == r:  # self-increment: rooted at the entry value
                v = s_entry.get(r)
                return "unknown" if v.is_top else v.sym
            return self._chase_sym(d.rs, s_entry, defs_by_reg, depth + 1)
        if m in ("addu", "add", "subu", "sub"):
            sa = self._chase_sym(d.rs, s_entry, defs_by_reg, depth + 1)
            sb = self._chase_sym(d.rt, s_entry, defs_by_reg, depth + 1)
            if sa == "unknown" or sb == "unknown":
                return "unknown"
            if m in ("subu", "sub"):
                return sa if sb is None else "unknown"
            if sa is None:
                return sb
            return sa if sb is None else "unknown"
        if m == "lui":
            return None
        if m in ("andi", "sll", "srl"):
            # absolute stays absolute; anything rooted at a symbol
            # shifted/masked could point anywhere
            src = d.rt if m in ("sll", "srl") else d.rs
            base = self._chase_sym(src, s_entry, defs_by_reg, depth + 1)
            return None if base is None else "unknown"
        return "unknown"

    def _infer_trips(self, loop: Loop, s: AbsState,
                     strides: dict[int, int],
                     defs_by_reg: dict) -> int | None:
        """Trip bound from the loop-entry state.

        Recognizes the generated kernels' latch shape: a single back
        edge whose owner compares a strided induction register against
        a loop-invariant bound, exiting exactly at equality (``bne
        cnt, bound, header`` or ``beq cnt, bound, exit`` falling
        through to the header).  The +1 covers the increment sitting
        in the latch delay slot (so the compare sees the pre-increment
        value); the bound is an upper bound, not an exact count.
        """
        program = self.program
        if len(loop.latches) != 1:
            return None
        u = loop.latches[0]
        if u not in self.cfg.slots:
            return None
        owner = program.decoded[u - 1]
        if owner is None or owner.mnemonic not in ("bne", "beq"):
            return None
        target = branch_target_index(program, u - 1, self.cfg.slots)
        if owner.mnemonic == "bne" and target != loop.header:
            return None
        if owner.mnemonic == "beq" and (target == loop.header
                                        or u + 1 != loop.header):
            return None
        for cnt, bound in ((owner.rs, owner.rt), (owner.rt, owner.rs)):
            c = strides.get(cnt)
            if c is None or bound in defs_by_reg:
                continue
            diff = s.get(bound).sub(s.get(cnt))
            if diff.is_top or diff.sym is not None:
                continue
            if (c > 0 and diff.lo < 0) or (c < 0 and diff.hi > 0):
                continue
            ac = abs(c)
            if diff.lo % ac or diff.hi % ac or (diff.step % ac
                                                if diff.step else 0):
                continue
            trips = max(abs(diff.lo), abs(diff.hi)) // ac + 1
            return trips if trips <= MAX_TRIPS else None
        return None

    # -- the transfer function --------------------------------------------

    def _transfer(self, d, i: int, s: AbsState) -> AbsState:
        m = d.mnemonic
        if d.is_load:
            addr = s.get(d.rs).add_const(d.imm)
            self._note_addr(i, addr)
            value = TOP
            if m == "lw" and addr.is_singleton and not addr.is_top:
                value = s.load_word((addr.sym, addr.lo))
            return s.set(d.rt, value)
        if d.is_store:
            addr = s.get(d.rs).add_const(d.imm)
            self._note_addr(i, addr)
            if addr.is_top:
                return s.clobber_memory()
            if m == "sw" and addr.is_singleton:
                return s.store_word((addr.sym, addr.lo), s.get(d.rt))
            return s.clobber_memory(addr.sym, addr.lo, addr.hi + 3)
        if m == "lui":
            return s.set(d.rt, AbsVal.const((d.imm & 0xFFFF) << 16))
        if m in ("addiu", "addi"):
            return s.set(d.rt, _norm(s.get(d.rs).add_const(d.imm)))
        if m == "andi":
            return s.set(d.rt, s.get(d.rs).and_const(d.imm))
        if m == "ori":
            return s.set(d.rt, s.get(d.rs).or_const(d.imm))
        if m == "xori":
            return s.set(d.rt, s.get(d.rs).xor_const(d.imm))
        if m in ("addu", "add"):
            return s.set(d.rd, _norm(s.get(d.rs).add(s.get(d.rt))))
        if m in ("subu", "sub"):
            return s.set(d.rd, _norm(s.get(d.rs).sub(s.get(d.rt))))
        if m == "sll":
            return s.set(d.rd, _norm(s.get(d.rt).shift_left(d.shamt)))
        if m == "srl":
            return s.set(d.rd, s.get(d.rt).shift_right_logical(d.shamt))
        if m == "sra":
            v = s.get(d.rt)
            if v.is_const:
                return s.set(d.rd, AbsVal.const(_s32(v.lo) >> d.shamt
                                                & MASK32))
            return s.set(d.rd, v.shift_right_logical(d.shamt)
                         if not v.is_top and v.lo >= 0 else TOP)
        if m in ("and", "or", "xor", "nor"):
            return s.set(d.rd, _bitwise(m, s.get(d.rs), s.get(d.rt)))
        if m in ("slt", "sltu"):
            return s.set(d.rd, _compare_lt(s.get(d.rs), s.get(d.rt),
                                           signed=(m == "slt")))
        if m in ("slti", "sltiu"):
            imm = d.imm & MASK32 if m == "sltiu" else d.imm
            return s.set(d.rt, _compare_lt(s.get(d.rs),
                                           AbsVal.const(imm),
                                           signed=(m == "slti")))
        # everything else (muldiv moves, shifts-by-register, cop2,
        # syscall): clear whatever GPRs it defines
        mask = insn.defs(d) & MASK32
        r = 0
        while mask:
            if mask & 1:
                s = s.set(r, TOP)
            mask >>= 1
            r += 1
        return s


# ---------------------------------------------------------------------------
# Domain helpers tied to Pete's mod-2^32 register file
# ---------------------------------------------------------------------------


def _s32(v: int) -> int:
    v &= MASK32
    return v - (1 << 32) if v & (1 << 31) else v


def _norm(v: AbsVal) -> AbsVal:
    """Map fully-concrete results into Pete's [0, 2^32) register space.

    Symbolic values keep unwrapped offsets (the no-wrap assumption);
    absolute singletons wrap like the hardware; absolute intervals that
    straddle 0 or 2^32 lose to TOP rather than wrap incorrectly.
    """
    if v.is_top or v.sym is not None:
        return v
    if v.lo == v.hi:
        return AbsVal.const(v.lo & MASK32)
    if v.lo < 0 or v.hi > MASK32:
        return TOP
    return v


def _wrap_for_decision(v: AbsVal) -> AbsVal:
    """Like :func:`_norm` but for branch/jump decisions (never widens
    a symbolic value; refuses rather than mis-wraps)."""
    return _norm(v)


def _bitwise(m: str, a: AbsVal, b: AbsVal) -> AbsVal:
    if a.is_const and b.is_const:
        x, y = a.lo & MASK32, b.lo & MASK32
        out = {"and": x & y, "or": x | y, "xor": x ^ y,
               "nor": ~(x | y) & MASK32}[m]
        return AbsVal.const(out)
    if m == "or" and a.is_const and a.lo == 0:
        return b
    if m in ("or", "xor") and b.is_const and b.lo == 0:
        return a
    if m == "and" and ((a.is_const and a.lo == 0)
                       or (b.is_const and b.lo == 0)):
        return AbsVal.const(0)
    return TOP


def _signed_bounds(a: AbsVal) -> tuple[int, int] | None:
    """The value set as a signed interval, or ``None`` when undecidable.

    Only absolute ranges whose 32-bit values sit entirely on one side
    of the sign boundary map cleanly: ``[0, 2^31)`` is its own signed
    range, ``[2^31, 2^32)`` maps down by ``2^32`` (a state singleton
    like ``0xFFFFFFFF`` is the wrapped form of ``-1``), and unnormed
    small negatives (``slti``'s sign-extended immediate) are already
    signed.  Symbolic values never decide a signed order: the unknown
    base could put the two operands on opposite sides of ``2^31``.
    """
    if a.is_top or a.sym is not None:
        return None
    if -(1 << 31) <= a.lo and a.hi < (1 << 31):
        return a.lo, a.hi
    if (1 << 31) <= a.lo and a.hi <= MASK32:
        return a.lo - (1 << 32), a.hi - (1 << 32)
    return None


def _compare_lt(a: AbsVal, b: AbsVal, signed: bool) -> AbsVal:
    """slt/slti (``signed``) or sltu/sltiu result: decided when
    comparable, else [0, 1].

    The unsigned order is decided for same-base (or both-absolute,
    in-range) operands, where the no-wrap assumption makes offset order
    value order.  The signed order is decided only when both operands
    map to signed intervals (see :func:`_signed_bounds`) -- deciding it
    with the unsigned order would invert every comparison against a
    wrapped negative (``slt $t1, $t0, $zero`` with ``$t0 = -1``).
    """
    decided = None
    if signed:
        sa, sb = _signed_bounds(a), _signed_bounds(b)
        if sa is not None and sb is not None:
            if sa[1] < sb[0]:
                decided = 1
            elif sb[1] <= sa[0]:
                decided = 0
    elif not a.is_top and not b.is_top and a.sym == b.sym:
        if a.hi < b.lo:
            decided = 1
        elif b.hi <= a.lo:
            decided = 0
    if decided is not None:
        return AbsVal.const(decided)
    return AbsVal.range(0, 1, 1)


def _refine_equal(owner, slot_d, pre: AbsState, out: AbsState) -> AbsState:
    """State refinement on the edge where ``rs == rt`` held.

    If one side was a singleton *before the delay slot*, pin the other
    side to that value in the post-slot state (adjusting when the slot
    self-increments it, the common latch shape).  This is what makes a
    counted loop's exit state exact again after header generalization.
    """
    for a, b in ((owner.rs, owner.rt), (owner.rt, owner.rs)):
        vb = pre.get(b)
        if a == 0 or vb.is_top or not vb.is_singleton:
            continue
        val = vb
        if slot_d is not None and insn.defs(slot_d) & MASK32 & (1 << a):
            if slot_d.mnemonic in ("addiu", "addi") \
                    and slot_d.rs == a and slot_d.rt == a:
                val = vb.add_const(slot_d.imm)
            else:
                continue  # slot rewrote it some other way: can't pin
        out = out.set(a, _norm(val))
    return out


def _branch_outcomes(d, s: AbsState) -> set[str]:
    """Feasible directions of a conditional branch under state ``s``."""
    m = d.mnemonic
    both = {"taken", "fall"}
    if m in ("beq", "bne"):
        if d.rs == d.rt:
            return {"taken"} if m == "beq" else {"fall"}
        a = _wrap_for_decision(s.get(d.rs))
        b = _wrap_for_decision(s.get(d.rt))
        if a.must_equal(b):
            return {"taken"} if m == "beq" else {"fall"}
        if a.cannot_equal(b):
            return {"fall"} if m == "beq" else {"taken"}
        return both
    if m in ("bltz", "bgez", "blez", "bgtz"):
        v = s.get(d.rs)
        if v.is_top or v.sym is not None:
            return both
        # sign bit of the 32-bit value: clear for [0, 2^31), set for
        # [-2^31, 0) (unwrapped) and [2^31, 2^32) (wrapped)
        if 0 <= v.lo and v.hi < (1 << 31):
            negative = False
        elif (-(1 << 31) <= v.lo and v.hi < 0) \
                or ((1 << 31) <= v.lo and v.hi <= MASK32):
            negative = True
        else:
            return both
        zero_only = v.is_const and v.lo == 0
        zero_possible = (not negative and v.lo <= 0
                         and (-v.lo) % (v.step or 1) == 0)
        if m == "bltz":
            return {"taken"} if negative else {"fall"}
        if m == "bgez":
            return {"fall"} if negative else {"taken"}
        if m == "blez":
            if negative or zero_only:
                return {"taken"}
            return both if zero_possible else {"fall"}
        if m == "bgtz":
            if negative or zero_only:
                return {"fall"}
            return both if zero_possible else {"taken"}
    return both
