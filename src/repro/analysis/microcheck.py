"""Static checks over FFAU microprograms (paper Section 5.4.2).

The microcode control store is tiny (64 entries) and branch-free except
for the two hardware loop counters, so the checks are mostly structural;
the one dataflow pass proves every ``loop`` decrement-and-test is
preceded by a ``loop_set`` of the same counter on *every* path from an
entry point (the counters power up undefined).

Check ids:

``micro-capacity``        program exceeds the 64-entry control store
``micro-entry``           a named entry point is out of range
``micro-loop-target``     a loop branch targets an address outside the
                          program
``micro-loop-var``        ``loop``/``loop_set`` names a counter other
                          than the two the hardware has (``i``, ``j``)
``micro-loop-init``       a counter is decremented/tested on some path
                          before any ``loop_set`` loaded it
``micro-const-range``     ``const_sel``/``loop_set_const`` outside the
                          8-entry constant RAM
``micro-const-bus``       more than one consumer of the single constant
                          bus in one cycle (index LOADs and ``BSrc.CONST``
                          share it; the loop-counter bound port is
                          separate -- Fig. 5.10)
``micro-fall-off-end``    execution can run past the last entry without
                          a ``halt``
``micro-drain-halt``      a ``halt`` with results still in the core
                          pipeline (``halt`` without ``wait_drain``)
"""

from __future__ import annotations

from repro.accel.microcode import (
    MICROCODE_TABLE_SIZE,
    BSrc,
    IdxCtl,
    MicroOp,
    MicroProgram,
)
from repro.analysis.lints import Finding

_COUNTERS = ("i", "j")
_CONST_RAM_SIZE = 8


def _desc(op: MicroOp, index: int) -> str:
    tag = f" ({op.label})" if op.label else ""
    return f"op {index}{tag} [{op.op.value}]"


def check_microprogram(prog: MicroProgram, name: str = "") -> list[Finding]:
    """Run every microcode check; returns findings sorted by address."""
    findings: list[Finding] = []

    def add(check: str, index: int, message: str) -> None:
        findings.append(Finding(check=check, index=index,
                                message=message, program=name))

    ops = prog.ops
    n = len(ops)
    if n > MICROCODE_TABLE_SIZE:
        add("micro-capacity", -1,
            f"{n} micro-ops exceed the {MICROCODE_TABLE_SIZE}-entry "
            f"control store")
    roots = sorted(set(prog.entries.values())) if prog.entries else [0]
    for entry_name, addr in sorted(prog.entries.items()):
        if not 0 <= addr < n:
            add("micro-entry", addr,
                f"entry point {entry_name!r} at address {addr} is outside "
                f"the {n}-op program")
    roots = [r for r in roots if 0 <= r < n]

    for i, op in enumerate(ops):
        if op.loop is not None and op.loop not in _COUNTERS:
            add("micro-loop-var", i,
                f"{_desc(op, i)} loops on unknown counter {op.loop!r} "
                f"(hardware has {_COUNTERS})")
        if op.loop_set is not None and op.loop_set not in _COUNTERS:
            add("micro-loop-var", i,
                f"{_desc(op, i)} sets unknown counter {op.loop_set!r} "
                f"(hardware has {_COUNTERS})")
        if op.loop is not None and not 0 <= op.loop_target < n:
            add("micro-loop-target", i,
                f"{_desc(op, i)} loop target {op.loop_target} is outside "
                f"the {n}-op program")
        if not 0 <= op.const_sel < _CONST_RAM_SIZE:
            add("micro-const-range", i,
                f"{_desc(op, i)} const_sel {op.const_sel} is outside the "
                f"{_CONST_RAM_SIZE}-entry constant RAM")
        if not 0 <= op.loop_set_const < _CONST_RAM_SIZE:
            add("micro-const-range", i,
                f"{_desc(op, i)} loop_set_const {op.loop_set_const} is "
                f"outside the {_CONST_RAM_SIZE}-entry constant RAM")
        consumers = sum(ctl is IdxCtl.LOAD
                        for ctl in (op.idx_a, op.idx_b, op.idx_t, op.idx_w))
        consumers += op.b_src is BSrc.CONST
        if consumers > 1:
            add("micro-const-bus", i,
                f"{_desc(op, i)} drives the single constant bus "
                f"{consumers} times in one cycle (index LOADs and a CONST "
                f"B operand share it)")
        if op.halt and not op.wait_drain:
            add("micro-drain-halt", i,
                f"{_desc(op, i)} halts without draining the core pipeline "
                f"(in-flight results would be lost)")

    findings.extend(_loop_init_check(prog, roots, name))
    findings.sort(key=lambda f: (f.index, f.check))
    return findings


def _loop_init_check(prog: MicroProgram, roots: list[int],
                     name: str) -> list[Finding]:
    """Must-initialized analysis for the two hardware loop counters.

    Forward fixpoint with intersection join: a counter is safe at an op
    only if *every* path from an entry has executed a ``loop_set`` for
    it.  ``loop_set`` on the same op counts (the load happens before the
    end-of-cycle decrement-and-test).
    """
    ops = prog.ops
    n = len(ops)
    all_counters = frozenset(_COUNTERS)
    init_in: dict[int, frozenset[str]] = {}
    work: list[int] = []
    for r in roots:
        init_in[r] = frozenset()
        work.append(r)
    findings: list[Finding] = []
    flagged: set[tuple[int, str]] = set()
    fell_off: set[int] = set()
    while work:
        i = work.pop()
        op = ops[i]
        state = init_in[i]
        if op.loop_set in _COUNTERS:
            state = state | {op.loop_set}
        if op.loop in _COUNTERS and op.loop not in state:
            if (i, op.loop) not in flagged:
                flagged.add((i, op.loop))
                findings.append(Finding(
                    check="micro-loop-init", index=i, program=name,
                    message=f"{_desc(op, i)} decrements counter "
                            f"{op.loop!r} which a path from the entry "
                            f"never loaded"))
        if op.halt:
            continue
        succs = [i + 1]
        if op.loop in _COUNTERS and 0 <= op.loop_target < n:
            succs.append(op.loop_target)
        for s in succs:
            if s >= n:
                if i not in fell_off:
                    fell_off.add(i)
                    findings.append(Finding(
                        check="micro-fall-off-end", index=i, program=name,
                        message=f"{_desc(op, i)} can fall through past "
                                f"the end of the program without a halt"))
                continue
            merged = init_in[s] & state if s in init_in else state
            if s not in init_in or merged != init_in[s]:
                init_in[s] = merged
                work.append(s)
    return findings


def check_all(programs: dict[str, MicroProgram]) -> list[Finding]:
    """Check several named microprograms; concatenated findings."""
    out: list[Finding] = []
    for name, prog in programs.items():
        out.extend(check_microprogram(prog, name))
    return out
