"""NIST curve registry.

All ten curves the paper evaluates: the five prime-field curves P-192 ...
P-521 and the five binary-field curves B-163 ... B-571 (FIPS 186 / SEC 2
parameters).  Each :class:`Curve` bundles its field, Weierstrass
coefficients, base point and group order, plus a second field instance for
arithmetic modulo the group order (the "protocol arithmetic" the paper
always runs on Pete).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from functools import lru_cache
from typing import Union

from repro.fields.binary import BinaryField
from repro.fields.counters import OpCounter
from repro.fields.prime import PrimeField
from repro.ec.point import AffinePoint

FieldType = Union[PrimeField, BinaryField]


@dataclass
class Curve:
    """An elliptic curve E over a finite field with an order-n base point.

    For prime fields: y^2 = x^3 + ax + b (Eq. 2.1).
    For binary fields: y^2 + xy = x^3 + ax^2 + b (Eq. 2.2).
    """

    name: str
    field: FieldType
    a: int
    b: int
    gx: int
    gy: int
    n: int
    h: int = 1
    order_counter: OpCounter = dc_field(default_factory=OpCounter)

    @property
    def is_binary(self) -> bool:
        return isinstance(self.field, BinaryField)

    @property
    def bits(self) -> int:
        """Key size: field size in bits."""
        return self.field.bits

    @property
    def generator(self) -> AffinePoint:
        return AffinePoint(self.gx, self.gy)

    def contains(self, p: AffinePoint) -> bool:
        """Check that a point satisfies the curve equation."""
        if not p:
            return True
        f = self.field
        if self.is_binary:
            lhs = f.add(f.sqr(p.y), f.mul(p.x, p.y))
            rhs = f.add(f.add(f.mul(f.sqr(p.x), p.x), f.mul(self.a, f.sqr(p.x))), self.b)
        else:
            lhs = f.sqr(p.y)
            rhs = f.add(f.add(f.mul(f.sqr(p.x), p.x), f.mul(self.a, p.x)), self.b)
        return lhs == rhs

    def reset_counters(self) -> None:
        self.field.counter.reset()
        self.order_counter.reset()

    def __repr__(self) -> str:  # pragma: no cover
        return f"Curve({self.name})"


# --------------------------------------------------------------------------
# FIPS 186 / SEC 2 domain parameters (p or f(x), a, b, Gx, Gy, n, h).
# --------------------------------------------------------------------------

_PRIME_PARAMS: dict[int, tuple[int, int, int, int, int]] = {
    # bits: (a, b, gx, gy, n)   -- p comes from NIST_PRIMES; h = 1
    192: (
        -3,
        0x64210519E59C80E70FA7E9AB72243049FEB8DEECC146B9B1,
        0x188DA80EB03090F67CBF20EB43A18800F4FF0AFD82FF1012,
        0x07192B95FFC8DA78631011ED6B24CDD573F977A11E794811,
        0xFFFFFFFFFFFFFFFFFFFFFFFF99DEF836146BC9B1B4D22831,
    ),
    224: (
        -3,
        0xB4050A850C04B3ABF54132565044B0B7D7BFD8BA270B39432355FFB4,
        0xB70E0CBD6BB4BF7F321390B94A03C1D356C21122343280D6115C1D21,
        0xBD376388B5F723FB4C22DFE6CD4375A05A07476444D5819985007E34,
        0xFFFFFFFFFFFFFFFFFFFFFFFFFFFF16A2E0B8F03E13DD29455C5C2A3D,
    ),
    256: (
        -3,
        0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
        0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
        0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
        0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
    ),
    384: (
        -3,
        0xB3312FA7E23EE7E4988E056BE3F82D19181D9C6EFE8141120314088F5013875AC656398D8A2ED19D2A85C8EDD3EC2AEF,
        0xAA87CA22BE8B05378EB1C71EF320AD746E1D3B628BA79B9859F741E082542A385502F25DBF55296C3A545E3872760AB7,
        0x3617DE4A96262C6F5D9E98BF9292DC29F8F41DBD289A147CE9DA3113B5F0B8C00A60B1CE1D7E819D7A431D7C90EA0E5F,
        0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFC7634D81F4372DDF581A0DB248B0A77AECEC196ACCC52973,
    ),
    521: (
        -3,
        0x0051953EB9618E1C9A1F929A21A0B68540EEA2DA725B99B315F3B8B489918EF109E156193951EC7E937B1652C0BD3BB1BF073573DF883D2C34F1EF451FD46B503F00,
        0x00C6858E06B70404E9CD9E3ECB662395B4429C648139053FB521F828AF606B4D3DBAA14B5E77EFE75928FE1DC127A2FFA8DE3348B3C1856A429BF97E7E31C2E5BD66,
        0x011839296A789A3BC0045C8A5FB42C7D1BD998F54449579B446817AFBD17273E662C97EE72995EF42640C550B9013FAD0761353C7086A272C24088BE94769FD16650,
        0x01FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFA51868783BF2F966B7FCC0148F709A5D03BB5C9B8899C47AEBB6FB71E91386409,
    ),
}

_BINARY_PARAMS: dict[int, tuple[int, int, int, int, int, int]] = {
    # m: (a, b, gx, gy, n, h)   -- f(x) comes from NIST_BINARY_POLYS
    163: (
        1,
        0x20A601907B8C953CA1481EB10512F78744A3205FD,
        0x3F0EBA16286A2D57EA0991168D4994637E8343E36,
        0x0D51FBC6C71A0094FA2CDD545B11C5C0C797324F1,
        0x40000000000000000000292FE77E70C12A4234C33,
        2,
    ),
    233: (
        1,
        0x066647EDE6C332C7F8C0923BB58213B333B20E9CE4281FE115F7D8F90AD,
        0x0FAC9DFCBAC8313BB2139F1BB755FEF65BC391F8B36F8F8EB7371FD558B,
        0x1006A08A41903350678E58528BEBF8A0BEFF867A7CA36716F7E01F81052,
        0x1000000000000000000000000000013E974E72F8A6922031D2603CFE0D7,
        2,
    ),
    283: (
        1,
        0x27B680AC8B8596DA5A4AF8A19A0303FCA97FD7645309FA2A581485AF6263E313B79A2F5,
        0x5F939258DB7DD90E1934F8C70B0DFEC2EED25B8557EAC9C80E2E198F8CDBECD86B12053,
        0x3676854FE24141CB98FE6D4B20D02B4516FF702350EDDB0826779C813F0DF45BE8112F4,
        0x3FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEF90399660FC938A90165B042A7CEFADB307,
        2,
    ),
    409: (
        1,
        0x021A5C2C8EE9FEB5C4B9A753B7B476B7FD6422EF1F3DD674761FA99D6AC27C8A9A197B272822F6CD57A55AA4F50AE317B13545F,
        0x15D4860D088DDB3496B0C6064756260441CDE4AF1771D4DB01FFE5B34E59703DC255A868A1180515603AEAB60794E54BB7996A7,
        0x061B1CFAB6BE5F32BBFA78324ED106A7636B9C5A7BD198D0158AA4F5488D08F38514F1FDF4B4F40D2181B3681C364BA0273C706,
        0x10000000000000000000000000000000000000000000000000001E2AAD6A612F33307BE5FA47C3C9E052F838164CD37D9A21173,
        2,
    ),
    571: (
        1,
        0x2F40E7E2221F295DE297117B7F3D62F5C6A97FFCB8CEFF1CD6BA8CE4A9A18AD84FFABBD8EFA59332BE7AD6756A66E294AFD185A78FF12AA520E4DE739BACA0C7FFEFF7F2955727A,
        0x303001D34B856296C16C0D40D3CD7750A93D1D2955FA80AA5F40FC8DB7B2ABDBDE53950F4C0D293CDD711A35B67FB1499AE60038614F1394ABFA3B4C850D927E1E7769C8EEC2D19,
        0x37BF27342DA639B6DCCFFFEB73D69D78C6C27A6009CBBCA1980F8533921E8A684423E43BAB08A576291AF8F461BB2A8B3531D2F0485C19B16E2F1516E23DD3C1A4827AF1B8AC15B,
        0x3FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFE661CE18FF55987308059B186823851EC7DD9CA1161DE93D5174D66E8382E9BB2FE84E47,
        2,
    ),
}


@lru_cache(maxsize=None)
def get_curve(name: str) -> Curve:
    """Fetch a NIST curve by name: ``"P-192"`` ... ``"P-521"``,
    ``"B-163"`` ... ``"B-571"``."""
    kind, _, size_str = name.partition("-")
    size = int(size_str)
    if kind == "P" and size in _PRIME_PARAMS:
        fld = PrimeField.nist(size)
        a, b, gx, gy, n = _PRIME_PARAMS[size]
        return Curve(name, fld, a % fld.p, b, gx, gy, n, 1)
    if kind == "B" and size in _BINARY_PARAMS:
        fld = BinaryField.nist(size)
        a, b, gx, gy, n, h = _BINARY_PARAMS[size]
        return Curve(name, fld, a, b, gx, gy, n, h)
    raise KeyError(f"unknown curve {name!r}")


#: All curves the paper evaluates, in evaluation order.
CURVES: tuple[str, ...] = (
    "P-192",
    "P-224",
    "P-256",
    "P-384",
    "P-521",
    "B-163",
    "B-233",
    "B-283",
    "B-409",
    "B-571",
)

#: Equivalent-security pairs used by Figs. 7.7-7.9.
SECURITY_PAIRS: tuple[tuple[str, str], ...] = (
    ("P-192", "B-163"),
    ("P-224", "B-233"),
    ("P-256", "B-283"),
    ("P-384", "B-409"),
    ("P-521", "B-571"),
)
