"""Scalar point multiplication algorithms (paper Sections 2.1.5 and 4.1).

The evaluation uses:

* :func:`sliding_window_mul` for ECDSA *signatures* -- a signed
  sliding-window algorithm over the (width-)NAF of the scalar with
  precomputed odd multiples 3P and 5P, exploiting cheap point negation;
* :func:`twin_mul` for ECDSA *verification* -- simultaneous ("Shamir")
  evaluation of u1*P + u2*Q with precomputed P+Q and P-Q, cheaper than two
  single multiplications;
* :func:`montgomery_ladder` -- the Lopez-Dahab x-only ladder for binary
  curves, evaluated for Billie and found slower than sliding-window
  (Fig. 7.14);
* :func:`rtl_double_and_add` -- Algorithm 1 of the paper, the pedagogical
  right-to-left binary method, kept as a reference.

All algorithms work over either field family by dispatching through the
curve's coordinate module, and all return affine results (one inversion at
the end, as the paper describes).
"""

from __future__ import annotations

from repro.ec import jacobian as jac
from repro.ec import lopez_dahab as ld
from repro.ec.point import INFINITY, AffinePoint, affine_add, affine_neg


# ---------------------------------------------------------------------------
# Scalar recodings
# ---------------------------------------------------------------------------


def naf(x: int) -> list[int]:
    """Non-adjacent form of x, least-significant digit first."""
    digits = []
    while x:
        if x & 1:
            d = 2 - (x % 4)
            x -= d
        else:
            d = 0
        digits.append(d)
        x //= 2
    return digits


def width_naf(x: int, width: int) -> list[int]:
    """Width-w NAF: odd digits |d| < 2^(w-1), at most one nonzero digit
    in any w consecutive positions."""
    if width < 2:
        raise ValueError("width must be >= 2")
    digits = []
    modulus = 1 << width
    while x:
        if x & 1:
            d = x % modulus
            if d >= modulus // 2:
                d -= modulus
            x -= d
        else:
            d = 0
        digits.append(d)
        x //= 2
    return digits


def fractional_naf(x: int, digit_max: int = 5) -> list[int]:
    """Signed fractional-window recoding with odd digits |d| <= digit_max.

    The paper's signature path precomputes exactly {3P, 5P}; the digit
    set {+-1, +-3, +-5} is a *fractional* window (between widths 3 and
    4): at each odd position the recoder takes the width-4 signed
    residue when it fits the digit set and falls back to the width-3
    residue otherwise.  Least-significant digit first.
    """
    if digit_max < 1 or digit_max % 2 == 0:
        raise ValueError("digit_max must be odd and positive")
    max_width = digit_max.bit_length() + 1
    digits: list[int] = []
    while x:
        if x & 1:
            d = 0
            for w in range(max_width, 1, -1):
                m = x % (1 << w)
                if m >= (1 << (w - 1)):
                    m -= 1 << w
                if m % 2 and abs(m) <= digit_max:
                    d = m
                    break
            x -= d
        else:
            d = 0
        digits.append(d)
        x >>= 1
    return digits


# ---------------------------------------------------------------------------
# Coordinate-system dispatch
# ---------------------------------------------------------------------------


class _Coords:
    """Uniform interface over the two projective systems."""

    def __init__(self, curve) -> None:
        self.curve = curve
        if curve.is_binary:
            self.identity = ld.LD_INFINITY
            self._project = ld.to_ld
            self._affine = ld.to_affine
            self._double = ld.ld_double
            self._add_mixed = ld.ld_add_mixed
            self._add_full = ld.ld_add_full
        else:
            self.identity = jac.JACOBIAN_INFINITY
            self._project = jac.to_jacobian
            self._affine = jac.to_affine
            self._double = jac.jacobian_double
            self._add_mixed = jac.jacobian_add_mixed
            self._add_full = jac.jacobian_add

    def project(self, p: AffinePoint):
        return self._project(p)

    def affine(self, p) -> AffinePoint:
        return self._affine(self.curve, p)

    def double(self, p):
        return self._double(self.curve, p)

    def add_mixed(self, p, q: AffinePoint):
        return self._add_mixed(self.curve, p, q)

    def add_full(self, p, q):
        return self._add_full(self.curve, p, q)

    def batch_affine(self, points) -> list[AffinePoint]:
        """Convert projective points to affine with Montgomery's
        simultaneous-inversion trick: one field inversion total."""
        from repro.fields.inversion import batch_inverse
        from repro.ec.point import INFINITY

        f = self.curve.field
        live = [(i, p) for i, p in enumerate(points) if p.z != 0]
        invs = batch_inverse(f, [p.z for _, p in live])
        out: list[AffinePoint] = [INFINITY] * len(points)
        for (i, p), zinv in zip(live, invs):
            if self.curve.is_binary:
                out[i] = AffinePoint(f.mul(p.x, zinv),
                                     f.mul(p.y, f.sqr(zinv)))
            else:
                zinv2 = f.sqr(zinv)
                out[i] = AffinePoint(f.mul(p.x, zinv2),
                                     f.mul(p.y, f.mul(zinv2, zinv)))
        return out


# ---------------------------------------------------------------------------
# Scalar multiplication
# ---------------------------------------------------------------------------

#: Precomputed odd multiples used by the signature path: 3P and 5P
#: (paper Section 4.1), giving an effective window of width 3 digits
#: {±1, ±3, ±5} -- "takes advantage of the fact that point subtraction is
#: only marginally more costly than addition".
SLIDING_WINDOW_ODD_MULTIPLES = (3, 5)


def precompute_odd_multiples(curve, p: AffinePoint,
                             width: int | None = None
                             ) -> dict[int, AffinePoint]:
    """The signature path's table of odd multiples.

    ``width=None`` (the default) builds the paper's table {P, 3P, 5P}
    for the fractional-window recoding; an explicit width builds the
    width-w NAF table {P, 3P, ..., (2^(w-1)-1)P} for the ablation sweep.

    The chain runs in projective coordinates (one double, then full
    adds) and converts the table to affine with a single batched
    inversion -- the production trick that keeps ECDSA at two field
    inversions per primitive."""
    if width is None:
        multiples = SLIDING_WINDOW_ODD_MULTIPLES
    else:
        multiples = tuple(range(3, 1 << (width - 1), 2))
    coords = _Coords(curve)
    table = {1: p}
    if not multiples:
        return table
    p_proj = coords.project(p)
    two_p = coords.double(p_proj)
    chain = []
    acc = p_proj
    for _ in multiples:
        acc = coords.add_full(acc, two_p)
        chain.append(acc)
    affines = coords.batch_affine(chain)
    for mult, point in zip(multiples, affines):
        table[mult] = point
    return table


def sliding_window_mul(curve, x: int, p: AffinePoint,
                       width: int | None = None) -> AffinePoint:
    """Signed sliding-window scalar multiplication x*P (signature path).

    The default recodes x with the fractional-window digit set
    {0, +-1, +-3, +-5} matching the paper's precomputed {3P, 5P} table
    ("takes advantage of the fact that point subtraction is only
    marginally more costly than addition"); an explicit ``width`` runs
    the plain width-w NAF variant for the ablation sweep.
    """
    if x == 0 or not p:
        return INFINITY
    if x < 0:
        return sliding_window_mul(curve, -x, affine_neg(curve, p), width)
    coords = _Coords(curve)
    table = precompute_odd_multiples(curve, p, width)
    neg_table = {d: affine_neg(curve, q) for d, q in table.items()}
    if width is None:
        digits = fractional_naf(x, max(SLIDING_WINDOW_ODD_MULTIPLES))
    else:
        digits = width_naf(x, width)
    acc = coords.identity
    for d in reversed(digits):
        acc = coords.double(acc)
        if d > 0:
            acc = coords.add_mixed(acc, table[d])
        elif d < 0:
            acc = coords.add_mixed(acc, neg_table[-d])
    return coords.affine(acc)


def twin_mul(
    curve, u1: int, p: AffinePoint, u2: int, q: AffinePoint
) -> AffinePoint:
    """Twin (Shamir) scalar multiplication u1*P + u2*Q (verification path).

    Precomputes P+Q and P-Q, recodes both scalars in joint NAF form and
    scans them simultaneously, so the doubling chain is shared -- "the cost
    of a twin scalar point multiplication is less than two single scalar
    point multiplications" (paper Section 4.1).
    """
    if u1 < 0 or u2 < 0:
        raise ValueError("twin multiplication expects non-negative scalars")
    if not p or u1 == 0:
        return sliding_window_mul(curve, u2, q)
    if not q or u2 == 0:
        return sliding_window_mul(curve, u1, p)
    coords = _Coords(curve)
    # precompute P+Q and P-Q projectively, one batched inversion
    p_proj = coords.project(p)
    sum_proj = coords.add_mixed(p_proj, q)
    diff_proj = coords.add_mixed(p_proj, affine_neg(curve, q))
    p_plus_q, p_minus_q = coords.batch_affine([sum_proj, diff_proj])
    # table keyed by digit pair
    table: dict[tuple[int, int], AffinePoint] = {
        (1, 0): p,
        (0, 1): q,
        (1, 1): p_plus_q,
        (1, -1): p_minus_q,
        (-1, 0): affine_neg(curve, p),
        (0, -1): affine_neg(curve, q),
        (-1, -1): affine_neg(curve, p_plus_q),
        (-1, 1): affine_neg(curve, p_minus_q),
    }
    d1 = naf(u1)
    d2 = naf(u2)
    length = max(len(d1), len(d2))
    d1 += [0] * (length - len(d1))
    d2 += [0] * (length - len(d2))
    acc = coords.identity
    for e1, e2 in zip(reversed(d1), reversed(d2)):
        acc = coords.double(acc)
        if (e1, e2) != (0, 0):
            acc = coords.add_mixed(acc, table[(e1, e2)])
    return coords.affine(acc)


def rtl_double_and_add(curve, x: int, p: AffinePoint) -> AffinePoint:
    """Algorithm 1 of the paper: right-to-left binary double-and-add.

    Simple and side-channel-leaky; included as the reference algorithm the
    paper presents "purely for example sake"."""
    coords = _Coords(curve)
    q = coords.identity
    addend = p
    while x:
        if x & 1:
            q = coords.add_mixed(q, addend)
        x >>= 1
        if x:
            addend = affine_add(curve, addend, addend)
    return coords.affine(q)


def montgomery_ladder(curve, x: int, p: AffinePoint) -> AffinePoint:
    """Lopez-Dahab Montgomery ladder for binary curves (x-only).

    Maintains (X1, Z1), (X2, Z2) with X2/Z2 - X1/Z1 = x(P) invariant;
    6M + 5S per scalar bit regardless of bit value.  The y-coordinate is
    recovered at the end.  Evaluated for Billie in Fig. 7.14.
    """
    if not curve.is_binary:
        raise ValueError("the LD ladder applies to binary curves")
    if x == 0 or not p:
        return INFINITY
    f = curve.field
    xp = p.x
    if xp == 0:
        # 2-torsion point: xP alternates between P and infinity
        return p if x % 2 else INFINITY
    x1, z1 = xp, 1
    x2 = f.add(f.sqr(f.sqr(xp)), curve.b)  # x(2P) numerator
    z2 = f.sqr(xp)
    bits = bin(x)[3:]  # skip the leading 1
    for bit in bits:
        if bit == "1":
            # (x1,z1) <- x(A+B), (x2,z2) <- x(2B)
            x2n, z2n, x1n, z1n = _ladder_step(curve, x2, z2, x1, z1, xp)
            x1, z1, x2, z2 = x1n, z1n, x2n, z2n
        else:
            # (x1,z1) <- x(2A), (x2,z2) <- x(A+B)
            x1, z1, x2, z2 = _ladder_step(curve, x1, z1, x2, z2, xp)
    # after the loop: (x1, z1) holds x(kP), (x2, z2) holds x((k+1)P)
    return _ladder_recover_y(curve, p, x1, z1, x2, z2)


def _ladder_step(curve, xa, za, xb, zb, xp):
    """One ladder step: returns (x(2A), z(2A), x(A+B), z(A+B)).

    Uses Lopez-Dahab's projective doubling/differential-addition formulas
    for y^2 + xy = x^3 + ax^2 + b.
    """
    f = curve.field
    # addition: A + B with difference P
    t1 = f.mul(xa, zb)
    t2 = f.mul(xb, za)
    z_add = f.sqr(f.add(t1, t2))
    x_add = f.add(f.mul(xp, z_add), f.mul(t1, t2))
    # doubling of A
    xa2 = f.sqr(xa)
    za2 = f.sqr(za)
    x_dbl = f.add(f.sqr(xa2), f.mul(curve.b, f.sqr(za2)))
    z_dbl = f.mul(xa2, za2)
    return x_dbl, z_dbl, x_add, z_add


def _ladder_recover_y(curve, p: AffinePoint, x1, z1, x2, z2) -> AffinePoint:
    """Recover the affine result from the two ladder accumulators
    (Lopez-Dahab 1999, Appendix)."""
    f = curve.field
    if z1 == 0:
        return INFINITY
    if z2 == 0:
        # result = -P
        return affine_neg(curve, p)
    xk = f.div(x1, z1)
    xk1 = f.div(x2, z2)
    xp, yp = p.x, p.y
    # y_k = (x_k + x_P) * [(x_k + x_P)(x_{k+1} + x_P) + x_P^2 + y_P] / x_P
    #       + y_P                       (Lopez & Dahab 1999)
    s = f.mul(f.add(xk, xp), f.add(xk1, xp))
    s = f.add(s, f.add(f.sqr(xp), yp))
    s = f.mul(s, f.add(xk, xp))
    s = f.div(s, xp)
    yk = f.add(s, yp)
    return AffinePoint(xk, yk)
