"""Affine points and the point at infinity.

Affine arithmetic needs a field inversion per point operation, which is why
practical scalar multiplication uses projective coordinates (paper Section
2.1.5); the affine implementation here is the *reference* the projective
modules are validated against, built directly from the curve group law.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AffinePoint:
    """A point (x, y) on an elliptic curve, or the point at infinity."""

    x: int
    y: int
    infinity: bool = False

    def __bool__(self) -> bool:
        return not self.infinity

    def __repr__(self) -> str:  # pragma: no cover
        if self.infinity:
            return "Point(infinity)"
        return f"Point(x=0x{self.x:x}, y=0x{self.y:x})"


#: The group identity.
INFINITY = AffinePoint(0, 0, infinity=True)


def affine_neg(curve, p: AffinePoint) -> AffinePoint:
    """-P: (x, -y) over GF(p); (x, x+y) over GF(2^m)."""
    if not p:
        return INFINITY
    if curve.is_binary:
        return AffinePoint(p.x, p.x ^ p.y)
    return AffinePoint(p.x, curve.field.neg(p.y))


def affine_add(curve, p: AffinePoint, q: AffinePoint) -> AffinePoint:
    """Full affine addition P + Q (handles doubling and infinities)."""
    f = curve.field
    if not p:
        return q
    if not q:
        return p
    if curve.is_binary:
        return _affine_add_binary(curve, p, q)
    if p.x == q.x:
        if (p.y + q.y) % f.p == 0:
            return INFINITY
        return _affine_double_prime(curve, p)
    lam = f.mul(f.sub(q.y, p.y), f.inv(f.sub(q.x, p.x)))
    x3 = f.sub(f.sub(f.sqr(lam), p.x), q.x)
    y3 = f.sub(f.mul(lam, f.sub(p.x, x3)), p.y)
    return AffinePoint(x3, y3)


def _affine_double_prime(curve, p: AffinePoint) -> AffinePoint:
    f = curve.field
    if p.y == 0:
        return INFINITY
    num = f.add(f.mul(3, f.sqr(p.x)), curve.a)
    lam = f.mul(num, f.inv(f.add(p.y, p.y)))
    x3 = f.sub(f.sqr(lam), f.add(p.x, p.x))
    y3 = f.sub(f.mul(lam, f.sub(p.x, x3)), p.y)
    return AffinePoint(x3, y3)


def _affine_add_binary(curve, p: AffinePoint, q: AffinePoint) -> AffinePoint:
    """Group law on y^2 + xy = x^3 + a x^2 + b (Eq. 2.2)."""
    f = curve.field
    if p.x == q.x:
        if p.y ^ q.y == p.x or (p.x == q.x and p.y != q.y):
            # Q == -P  (note -P = (x, x+y)); also covers x==0 doubling
            if p.y ^ q.y == p.x:
                return INFINITY
        if p.x == 0:
            return INFINITY
        # doubling: lambda = x + y/x
        lam = f.add(p.x, f.mul(p.y, f.inv(p.x)))
        x3 = f.add(f.add(f.sqr(lam), lam), curve.a)
        y3 = f.add(f.sqr(p.x), f.mul(f.add(lam, 1), x3))
        return AffinePoint(x3, y3)
    lam = f.mul(f.add(p.y, q.y), f.inv(f.add(p.x, q.x)))
    x3 = f.add(f.add(f.add(f.add(f.sqr(lam), lam), p.x), q.x), curve.a)
    y3 = f.add(f.add(f.mul(lam, f.add(p.x, x3)), x3), p.y)
    return AffinePoint(x3, y3)


def affine_scalar_mul(curve, x: int, p: AffinePoint) -> AffinePoint:
    """Reference scalar multiplication: plain double-and-add on affine
    coordinates.  O(n) inversions -- only for validation."""
    q = INFINITY
    addend = p
    while x:
        if x & 1:
            q = affine_add(curve, q, addend)
        x >>= 1
        if x:
            addend = affine_add(curve, addend, addend)
    return q
