"""Elliptic-curve arithmetic (paper Sections 2.1.5 and 4.1).

Curves over both field families with the coordinate systems the paper
selects as optimal: mixed Jacobian-affine for GF(p) and mixed
Lopez-Dahab-affine for GF(2^m), plus the scalar-multiplication algorithms
used by the evaluation (sliding window with precomputed 3P/5P, twin
multiplication for verification, Montgomery ladder, and the pedagogical
right-to-left double-and-add of Algorithm 1).
"""

from repro.ec.curves import CURVES, Curve, get_curve
from repro.ec.point import AffinePoint, INFINITY
from repro.ec.scalar import (
    montgomery_ladder,
    naf,
    rtl_double_and_add,
    sliding_window_mul,
    twin_mul,
    width_naf,
)

__all__ = [
    "CURVES",
    "Curve",
    "get_curve",
    "AffinePoint",
    "INFINITY",
    "sliding_window_mul",
    "twin_mul",
    "montgomery_ladder",
    "rtl_double_and_add",
    "naf",
    "width_naf",
]
