"""Mixed Jacobian-affine point arithmetic over GF(p).

Jacobian coordinates map (X, Y, Z) -> (X/Z^2, Y/Z^3), with the point at
infinity represented as (1, 1, 0) (paper Section 2.1.5).  The paper uses
Jacobian coordinates for doubling and adds an *affine* point to a
Jacobian point (mixed addition), the combination it cites as requiring
the fewest field operations for prime curves.

Multiplications by the small constants in the formulas (2, 3, 4, 8) are
realized as modular-addition chains, as every serious implementation
does -- so the operation counters see the true 4M + 4S doubling
(3 squarings + 1 extra with general a) and 8M + 3S mixed addition.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.ec.point import INFINITY, AffinePoint


class JacobianPoint(NamedTuple):
    x: int
    y: int
    z: int


JACOBIAN_INFINITY = JacobianPoint(1, 1, 0)


def to_jacobian(p: AffinePoint) -> JacobianPoint:
    """Project an affine point: simply set Z = 1."""
    if not p:
        return JACOBIAN_INFINITY
    return JacobianPoint(p.x, p.y, 1)


def to_affine(curve, p: JacobianPoint) -> AffinePoint:
    """One field inversion maps back: (X/Z^2, Y/Z^3)."""
    f = curve.field
    if p.z == 0:
        return INFINITY
    zinv = f.inv(p.z)
    zinv2 = f.sqr(zinv)
    x = f.mul(p.x, zinv2)
    y = f.mul(p.y, f.mul(zinv2, zinv))
    return AffinePoint(x, y)


def jacobian_neg(curve, p: JacobianPoint) -> JacobianPoint:
    """-(X, Y, Z) = (X, -Y, Z)."""
    return JacobianPoint(p.x, curve.field.neg(p.y), p.z)


def _dbl(f, a: int) -> int:
    """2a via one modular addition."""
    return f.add(a, a)


def _tpl(f, a: int) -> int:
    """3a via two modular additions."""
    return f.add(f.add(a, a), a)


def jacobian_double(curve, p: JacobianPoint) -> JacobianPoint:
    """Point doubling in Jacobian coordinates: 4M + 4S (+addition
    chains).  Uses the a = -3 shortcut M = 3(X - Z^2)(X + Z^2) available
    on all five NIST prime curves.
    """
    f = curve.field
    if p.z == 0 or p.y == 0:
        return JACOBIAN_INFINITY
    ysq = f.sqr(p.y)
    s = _dbl(f, _dbl(f, f.mul(p.x, ysq)))            # S = 4 X Y^2
    zsq = f.sqr(p.z)
    if curve.a == f.p - 3:
        m = _tpl(f, f.mul(f.sub(p.x, zsq), f.add(p.x, zsq)))
    else:
        m = f.add(_tpl(f, f.sqr(p.x)), f.mul(curve.a, f.sqr(zsq)))
    x3 = f.sub(f.sub(f.sqr(m), s), s)                # M^2 - 2S
    ysq2 = f.sqr(ysq)
    y3 = f.sub(f.mul(m, f.sub(s, x3)),
               _dbl(f, _dbl(f, _dbl(f, ysq2))))      # ... - 8 Y^4
    z3 = _dbl(f, f.mul(p.y, p.z))                    # 2 Y Z
    return JacobianPoint(x3, y3, z3)


def jacobian_add_mixed(
    curve, p: JacobianPoint, q: AffinePoint
) -> JacobianPoint:
    """Mixed addition: Jacobian P + affine Q (8M + 3S)."""
    f = curve.field
    if not q:
        return p
    if p.z == 0:
        return to_jacobian(q)
    zsq = f.sqr(p.z)
    u2 = f.mul(q.x, zsq)
    s2 = f.mul(q.y, f.mul(zsq, p.z))
    h = f.sub(u2, p.x)
    r = f.sub(s2, p.y)
    if h == 0:
        if r == 0:
            return jacobian_double(curve, p)
        return JACOBIAN_INFINITY
    hsq = f.sqr(h)
    hcu = f.mul(hsq, h)
    v = f.mul(p.x, hsq)
    x3 = f.sub(f.sub(f.sub(f.sqr(r), hcu), v), v)
    y3 = f.sub(f.mul(r, f.sub(v, x3)), f.mul(p.y, hcu))
    z3 = f.mul(p.z, h)
    return JacobianPoint(x3, y3, z3)


def jacobian_add(curve, p: JacobianPoint, q: JacobianPoint) -> JacobianPoint:
    """Full Jacobian + Jacobian addition (12M + 4S); used only where
    both operands are projective."""
    f = curve.field
    if p.z == 0:
        return q
    if q.z == 0:
        return p
    z1sq = f.sqr(p.z)
    z2sq = f.sqr(q.z)
    u1 = f.mul(p.x, z2sq)
    u2 = f.mul(q.x, z1sq)
    s1 = f.mul(p.y, f.mul(z2sq, q.z))
    s2 = f.mul(q.y, f.mul(z1sq, p.z))
    h = f.sub(u2, u1)
    r = f.sub(s2, s1)
    if h == 0:
        if r == 0:
            return jacobian_double(curve, p)
        return JACOBIAN_INFINITY
    hsq = f.sqr(h)
    hcu = f.mul(hsq, h)
    v = f.mul(u1, hsq)
    x3 = f.sub(f.sub(f.sub(f.sqr(r), hcu), v), v)
    y3 = f.sub(f.mul(r, f.sub(v, x3)), f.mul(s1, hcu))
    z3 = f.mul(h, f.mul(p.z, q.z))
    return JacobianPoint(x3, y3, z3)
