"""Mixed Lopez-Dahab-affine point arithmetic over GF(2^m).

Lopez-Dahab (LD) coordinates map (X, Y, Z) -> (X/Z, Y/Z^2) with the point
at infinity represented as (1, 0, 0) (paper Section 2.1.5).  The negative
of (X, Y, Z) is (X, X*Z + Y, Z) -- in affine terms -(x, y) = (x, x + y).
The paper selects mixed LD-affine coordinates as the operation-count
optimum for binary curves.

Operation counts (a in {0, 1} as on all NIST B-curves):
    double: 4M + 5S (one of the M is by the curve constant b)
    mixed add: 8M + 5S
"""

from __future__ import annotations

from typing import NamedTuple

from repro.ec.point import INFINITY, AffinePoint


class LDPoint(NamedTuple):
    x: int
    y: int
    z: int


LD_INFINITY = LDPoint(1, 0, 0)


def to_ld(p: AffinePoint) -> LDPoint:
    """Project an affine point: set Z = 1."""
    if not p:
        return LD_INFINITY
    return LDPoint(p.x, p.y, 1)


def ld_add_full(curve, p: LDPoint, q: LDPoint) -> LDPoint:
    """Full LD + LD addition (~15M + 6S); needed only by the table
    precomputation, where both operands are projective.

    Derived from the affine group law with lambda = I / (W E):

        A = X1 Z2, B = X2 Z1, E = A + B, W = Z1 Z2,
        G = Y1 Z2^2, H = Y2 Z1^2, I = G + H,
        Z3 = E^2 W^2,
        X3 = I^2 + I W E + E^3 W + a Z3,
        Y3 = I W E (A E^2 W + X3) + X3 Z3 + G E^4 W^2.
    """
    f = curve.field
    if p.z == 0:
        return q
    if q.z == 0:
        return p
    z1sq = f.sqr(p.z)
    z2sq = f.sqr(q.z)
    a_t = f.mul(p.x, q.z)
    b_t = f.mul(q.x, p.z)
    e_t = f.add(a_t, b_t)
    g_t = f.mul(p.y, z2sq)
    h_t = f.mul(q.y, z1sq)
    i_t = f.add(g_t, h_t)
    if e_t == 0:
        # equal x-coordinates: doubling or an inverse pair
        if i_t == 0:
            return ld_double(curve, p)
        return LD_INFINITY
    w_t = f.mul(p.z, q.z)
    esq = f.sqr(e_t)
    wsq = f.sqr(w_t)
    z3 = f.mul(esq, wsq)
    we = f.mul(w_t, e_t)
    iwe = f.mul(i_t, we)
    x3 = f.add(f.add(f.sqr(i_t), iwe),
               f.mul(f.mul(esq, e_t), w_t))
    if curve.a == 1:
        x3 = f.add(x3, z3)
    elif curve.a:
        x3 = f.add(x3, f.mul(curve.a, z3))
    ae2w = f.mul(a_t, f.mul(esq, w_t))
    y3 = f.mul(iwe, f.add(ae2w, x3))
    y3 = f.add(y3, f.mul(x3, z3))
    y3 = f.add(y3, f.mul(g_t, f.mul(f.sqr(esq), wsq)))
    return LDPoint(x3, y3, z3)


def to_affine(curve, p: LDPoint) -> AffinePoint:
    """One inversion maps back: (X/Z, Y/Z^2)."""
    f = curve.field
    if p.z == 0:
        return INFINITY
    zinv = f.inv(p.z)
    x = f.mul(p.x, zinv)
    y = f.mul(p.y, f.sqr(zinv))
    return AffinePoint(x, y)


def ld_neg(curve, p: LDPoint) -> LDPoint:
    """-(X, Y, Z) = (X, X*Z + Y, Z)."""
    f = curve.field
    if p.z == 0:
        return p
    return LDPoint(p.x, f.add(f.mul(p.x, p.z), p.y), p.z)


def ld_double(curve, p: LDPoint) -> LDPoint:
    """LD doubling (Hankerson et al., Algorithm 3.24)."""
    f = curve.field
    if p.z == 0 or p.x == 0:
        # x = 0 is the curve's single 2-torsion point: 2P = infinity.
        return LD_INFINITY
    z1sq = f.sqr(p.z)
    x1sq = f.sqr(p.x)
    z3 = f.mul(z1sq, x1sq)
    b_z1_4 = f.mul(curve.b, f.sqr(z1sq))
    x3 = f.add(f.sqr(x1sq), b_z1_4)
    a_z3 = z3 if curve.a == 1 else (
        0 if curve.a == 0 else f.mul(curve.a, z3))
    inner = f.add(f.add(a_z3, f.sqr(p.y)), b_z1_4)
    y3 = f.add(f.mul(b_z1_4, z3), f.mul(x3, inner))
    return LDPoint(x3, y3, z3)


def ld_add_mixed(curve, p: LDPoint, q: AffinePoint) -> LDPoint:
    """Mixed addition: LD P + affine Q (Hankerson et al., Alg. 3.25)."""
    f = curve.field
    if not q:
        return p
    if p.z == 0:
        return to_ld(q)
    z1sq = f.sqr(p.z)
    a_t = f.add(f.mul(q.y, z1sq), p.y)
    b_t = f.add(f.mul(q.x, p.z), p.x)
    if b_t == 0:
        if a_t == 0:
            return ld_double(curve, p)
        return LD_INFINITY
    c_t = f.mul(p.z, b_t)
    a_z1sq = z1sq if curve.a == 1 else (
        0 if curve.a == 0 else f.mul(curve.a, z1sq))
    d_t = f.mul(f.sqr(b_t), f.add(c_t, a_z1sq))
    z3 = f.sqr(c_t)
    e_t = f.mul(a_t, c_t)
    x3 = f.add(f.add(f.sqr(a_t), d_t), e_t)
    f_t = f.add(x3, f.mul(q.x, z3))
    g_t = f.mul(f.add(q.x, q.y), f.sqr(z3))
    y3 = f.add(f.mul(f.add(e_t, z3), f_t), g_t)
    return LDPoint(x3, y3, z3)
