"""Point compression and serialization (SEC 1 style).

Embedded protocols transmit compressed points (one coordinate plus one
parity bit) because radio energy per byte rivals computation energy --
the Pabbuleti et al. trade-off the paper's related work discusses.
Decompression needs a square root: modular (Tonelli-Shanks, or the cheap
(p+1)/4 exponent all NIST primes except P-224 admit) over GF(p), and the
half-trace quadratic solver over GF(2^m).
"""

from __future__ import annotations

from repro.ec.curves import Curve
from repro.ec.point import INFINITY, AffinePoint


class DecompressionError(ValueError):
    """The encoded x-coordinate does not lie on the curve."""


# ---------------------------------------------------------------------------
# Square roots modulo p
# ---------------------------------------------------------------------------


def sqrt_mod_p(a: int, p: int) -> int | None:
    """A square root of a modulo prime p, or None if a is a non-residue."""
    a %= p
    if a == 0:
        return 0
    if pow(a, (p - 1) // 2, p) != 1:
        return None
    if p % 4 == 3:
        root = pow(a, (p + 1) // 4, p)
        return root
    return _tonelli_shanks(a, p)


def _tonelli_shanks(a: int, p: int) -> int:
    """General square root for p = 1 (mod 4) (needed for P-224)."""
    q = p - 1
    s = 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while pow(z, (p - 1) // 2, p) != p - 1:
        z += 1
    m = s
    c = pow(z, q, p)
    t = pow(a, q, p)
    r = pow(a, (q + 1) // 2, p)
    while t != 1:
        i = 0
        probe = t
        while probe != 1:
            probe = probe * probe % p
            i += 1
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = b * b % p
        t = t * c % p
        r = r * b % p
    return r


# ---------------------------------------------------------------------------
# Compression
# ---------------------------------------------------------------------------


def compress(curve: Curve, point: AffinePoint) -> bytes:
    """SEC 1 compressed encoding: 0x02/0x03 prefix + x coordinate.

    The parity bit is y mod 2 for prime curves and the trace-style bit
    y/x mod 2 for binary curves (x = 0 never occurs for points of odd
    order on the NIST B-curves).
    """
    if not point:
        return b"\x00"
    length = (curve.bits + 7) // 8
    if curve.is_binary:
        if point.x == 0:
            raise ValueError("cannot compress the 2-torsion point")
        z = curve.field.div(point.y, point.x)
        bit = z & 1
    else:
        bit = point.y & 1
    return bytes([0x02 | bit]) + point.x.to_bytes(length, "big")


def decompress(curve: Curve, data: bytes) -> AffinePoint:
    """Recover the point from its compressed encoding."""
    if data == b"\x00":
        return INFINITY
    if not data or data[0] not in (0x02, 0x03):
        raise DecompressionError("bad compression prefix")
    length = (curve.bits + 7) // 8
    if len(data) != 1 + length:
        raise DecompressionError("bad encoding length")
    x = int.from_bytes(data[1:], "big")
    bit = data[0] & 1
    if curve.is_binary:
        point = _decompress_binary(curve, x, bit)
    else:
        point = _decompress_prime(curve, x, bit)
    if not curve.contains(point):  # pragma: no cover - defensive
        raise DecompressionError("decompressed point not on curve")
    return point


def _decompress_prime(curve: Curve, x: int, bit: int) -> AffinePoint:
    f = curve.field
    if not f.contains(x):
        raise DecompressionError("x out of range")
    rhs = f.add(f.add(f.mul(f.sqr(x), x), f.mul(curve.a, x)), curve.b)
    y = sqrt_mod_p(rhs, f.p)
    if y is None:
        raise DecompressionError("x is not on the curve")
    if y & 1 != bit:
        y = f.p - y
    return AffinePoint(x, y)


def _decompress_binary(curve: Curve, x: int, bit: int) -> AffinePoint:
    """Solve y^2 + xy = x^3 + ax^2 + b via z^2 + z = w, y = x*z
    (the standard substitution z = y/x)."""
    f = curve.field
    if not f.contains(x):
        raise DecompressionError("x out of range")
    if x == 0:
        # the unique 2-torsion point (0, sqrt(b))
        return AffinePoint(0, _binary_sqrt(f, curve.b))
    # w = x + a + b / x^2
    w = f.add(f.add(x, curve.a), f.div(curve.b, f.sqr(x)))
    if f.trace(w) != 0:
        raise DecompressionError("x is not on the curve")
    z = f.half_trace(w)
    if z & 1 != bit:
        z ^= 1
    return AffinePoint(x, f.mul(x, z))


def _binary_sqrt(f, a: int) -> int:
    """Square root in GF(2^m): a^(2^(m-1)) (Frobenius inverse)."""
    root = a
    for _ in range(f.m - 1):
        root = f.sqr(root)
    return root


# ---------------------------------------------------------------------------
# Uncompressed / signature serialization helpers
# ---------------------------------------------------------------------------


def encode_uncompressed(curve: Curve, point: AffinePoint) -> bytes:
    """SEC 1 uncompressed encoding: 0x04 + x + y."""
    if not point:
        return b"\x00"
    length = (curve.bits + 7) // 8
    return (b"\x04" + point.x.to_bytes(length, "big")
            + point.y.to_bytes(length, "big"))


def decode_uncompressed(curve: Curve, data: bytes) -> AffinePoint:
    if data == b"\x00":
        return INFINITY
    length = (curve.bits + 7) // 8
    if len(data) != 1 + 2 * length or data[0] != 0x04:
        raise DecompressionError("bad uncompressed encoding")
    x = int.from_bytes(data[1:1 + length], "big")
    y = int.from_bytes(data[1 + length:], "big")
    point = AffinePoint(x, y)
    if not curve.contains(point):
        raise DecompressionError("point not on curve")
    return point


def signature_to_bytes(curve: Curve, sig) -> bytes:
    """Fixed-width r || s encoding (what the WSN radio transmits)."""
    length = (curve.n.bit_length() + 7) // 8
    return sig.r.to_bytes(length, "big") + sig.s.to_bytes(length, "big")


def signature_from_bytes(curve: Curve, data: bytes):
    from repro.ecdsa import Signature

    length = (curve.n.bit_length() + 7) // 8
    if len(data) != 2 * length:
        raise ValueError("bad signature length")
    return Signature(int.from_bytes(data[:length], "big"),
                     int.from_bytes(data[length:], "big"))
