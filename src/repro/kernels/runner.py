"""Assemble, validate and time the generated kernels on Pete.

Every measurement doubles as a correctness check: the kernel's output
words in simulated RAM are compared against the :mod:`repro.mp` reference
before the cycle count is accepted.  The kernels are deterministic, so
results are memoized in a process-wide cache shared by every runner,
keyed ``(kernel, k, calibration fingerprint)`` -- the fingerprint keeps
runners built from different calibrations from ever serving each
other's entries (the ISA feature set is implied by the kernel name).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from functools import lru_cache

from repro.fields.inversion import _poly_mul, _poly_sqr
from repro.fields.nist import NIST_PRIMES, reduce_binary
from repro.mp.binary_sqr import SQUARE_TABLE_8BIT
from repro.mp.words import from_int, to_int
from repro.pete.assembler import assemble
from repro.pete.cpu import Pete
from repro.pete.memory import RAM_BASE
from repro.kernels import (
    binary_kernels,
    prime_kernels,
    scalar_kernels,
    symmetric_kernels,
)

# RAM layout for kernel harnesses (RAM_BASE-relative byte offsets).
DST_OFF = 0x400   # result area (also reduction scratch at +256)
A_OFF = 0x800
B_OFF = 0x900
TABLE_OFF = 0xA00  # comb table (<= 2 KB) or squaring table (512 B)

_RNG = random.Random(0xECC)


@dataclass(frozen=True)
class KernelResult:
    """Timing and activity of one kernel invocation."""

    name: str
    k: int
    cycles: int
    instructions: int
    ram_reads: int
    ram_writes: int

    @property
    def rom_reads(self) -> int:
        """Uncached fetch: one ROM word read per instruction."""
        return self.instructions


#: Process-wide measurement memo shared by every runner (externalized
#: from the old per-instance cache so sweeps, the gate and the harness
#: never re-simulate a kernel another runner already measured).
_SHARED_CACHE: dict[tuple, KernelResult] = {}

#: Assembly memo keyed by full source text: batched preparation builds
#: the same program once per lane, and the assembler dominates prepare
#: time.  The Assembled object is immutable after construction, so
#: sharing one instance across cores (and across runners) is safe.
_ASSEMBLED_MEMO: dict[str, object] = {}
_ASSEMBLED_MEMO_MAX = 256


@dataclass(frozen=True)
class BatchKernelResult:
    """Per-lane timing of one lane-engine batch run.

    Cycle/instruction counts are per lane (distinct operands per lane,
    so branchy kernels legitimately differ across lanes); ``engine``
    carries the lane engine's divergence/fallback accounting and
    ``wall_s`` the host wall-clock for the whole batch.
    """

    name: str
    k: int
    lanes: int
    cycles: tuple[int, ...]
    instructions: tuple[int, ...]
    wall_s: float
    engine: dict

    @property
    def total_instructions(self) -> int:
        return sum(self.instructions)

    @property
    def mean_cycles(self) -> float:
        return sum(self.cycles) / len(self.cycles)

    @property
    def lanes_per_second(self) -> float:
        """Completed kernel instances per host second."""
        return self.lanes / self.wall_s if self.wall_s > 0 else 0.0


def fast_mode_default() -> bool:
    """The ``$REPRO_PETE_FAST`` env gate for the superblock fast path.

    Set to ``1`` (anything but ``""``/``"0"``) to make every
    :class:`KernelRunner` without an explicit ``fast=`` argument run
    its simulations through ``Pete.run(fast=True)``.  The fast path is
    stats-identical to the reference interpreter, so measurements (and
    every artifact derived from them) are unchanged -- only wall-clock
    drops.  ``python -m repro.harness.runall --fast`` sets this before
    any kernel is measured.
    """
    return os.environ.get("REPRO_PETE_FAST", "") not in ("", "0")


class _CapturedRun(Exception):
    """Internal: carries a fully-prepared cpu out of a kernel builder."""

    def __init__(self, cpu: Pete, entry: int) -> None:
        super().__init__("captured")
        self.cpu = cpu
        self.entry = entry


class KernelRunner:
    """Builds and times kernels; validates against :mod:`repro.mp`.

    ``cache`` overrides the process-wide shared measurement memo (pass
    ``{}`` for an isolated runner); ``calibration`` is folded into the
    cache key so runners with different calibrations cannot serve each
    other stale entries.  ``fast`` selects the superblock-threaded
    interpreter (:mod:`repro.pete.fastpath`) for every simulation; it
    defaults to the ``$REPRO_PETE_FAST`` env gate and changes nothing
    but wall-clock (the fast path is stats-identical, enforced by
    ``python -m repro.pete.diffexec``).
    """

    def __init__(self, ledger=None, calibration=None,
                 cache: dict | None = None,
                 fast: bool | None = None) -> None:
        if calibration is None:
            from repro.energy.calibration import CALIBRATION

            calibration = CALIBRATION
        self.cal = calibration
        self.fast = fast_mode_default() if fast is None else fast
        self._cache = _SHARED_CACHE if cache is None else cache
        self._recorded: set[tuple] = set()
        self._tracer = None          # TraceBus threaded through _build_cpu
        self._capture = False        # prepare() interception flag
        self._last_cpu: Pete | None = None
        if ledger is None:
            from repro.regress.ledger import default_ledger

            ledger = default_ledger()
        self.ledger = ledger

    # -- public measurement API ------------------------------------------

    def _cache_key(self, name: str, k: int) -> tuple:
        return (name, k, self.cal.fingerprint())

    def measure(self, name: str, k: int, trials: int = 3) -> KernelResult:
        """Median-of-``trials`` cycle measurement for a kernel at size k.

        First measurement per (kernel, k) also appends one record to the
        runner's ledger (a no-op unless a ledger is configured -- see
        :func:`repro.regress.ledger.default_ledger`), even when the
        shared cache already held the result.
        """
        key = self._cache_key(name, k)
        if key not in self._cache:
            runs = [self._run_once(name, k) for _ in range(trials)]
            runs.sort(key=lambda r: r.cycles)
            self._cache[key] = runs[len(runs) // 2]
        if key not in self._recorded:
            self._recorded.add(key)
            from repro.trace.record import kernel_record

            self.ledger.append(kernel_record(self._cache[key]))
        return self._cache[key]

    def profile(self, name: str, k: int, params=None, extra_sinks=()):
        """Run one kernel with tracing on; returns ``(profiler, cpu)``.

        ``params`` is a :class:`repro.energy.simulated.RunEnergyParams`
        (defaults match the plain software configuration the kernels run
        in).  ``extra_sinks`` (e.g. a :class:`CollectingSink` or a
        :class:`PowerSampler`) see the same event stream.
        """
        from repro.trace.bus import TraceBus
        from repro.trace.profiler import Profiler

        if params is None:
            from repro.energy.calibration import CALIBRATION
            from repro.energy.simulated import RunEnergyParams

            if self.cal is not CALIBRATION:
                params = RunEnergyParams(cal=self.cal)
        bus = TraceBus()
        profiler = Profiler(params=params)
        bus.attach(profiler)
        for sink in extra_sinks:
            bus.attach(sink)
        self._tracer = bus
        try:
            self._run_once(name, k)
        finally:
            self._tracer = None
        return profiler, self._last_cpu

    def prepare(self, name: str, k: int) -> tuple[Pete, int]:
        """A fully-loaded, ready-to-run cpu for ``(kernel, k)``.

        Builds the same harness :meth:`measure` would (program
        assembled, pointer arguments set, operands written to RAM) but
        stops just before ``run``, returning ``(cpu, entry)``.  The
        lock-step differential harness (:mod:`repro.pete.diffexec`)
        clones the prepared core so the fast and reference interpreters
        consume byte-identical inputs.
        """
        self._capture = True
        try:
            self._run_once(name, k)
        except _CapturedRun as captured:
            return captured.cpu, captured.entry
        finally:
            self._capture = False
        raise RuntimeError(
            f"kernel {name!r} never launched its cpu")  # pragma: no cover

    def prepare_lanes(self, name: str, k: int,
                      lanes: int) -> tuple[list[Pete], int]:
        """``lanes`` independently-prepared cores for ``(kernel, k)``.

        Each core gets fresh operands from the module RNG (exactly what
        ``lanes`` consecutive :meth:`prepare` calls would draw), so a
        batch is a fleet of *distinct* problem instances over one
        program image.  Returns ``(cores, entry)``.
        """
        cores = []
        entry = None
        for _ in range(lanes):
            cpu, e = self.prepare(name, k)
            if entry is None:
                entry = e
            elif e != entry:  # pragma: no cover - programs are static
                raise RuntimeError(f"kernel {name!r}: unstable entry")
            cores.append(cpu)
        assert entry is not None
        return cores, entry

    def measure_batch(self, name: str, k: int, lanes: int,
                      max_cycles: int = 50_000_000) -> BatchKernelResult:
        """Run ``lanes`` instances lock-step on the lane engine.

        Simulated per-lane cycle counts are bit-identical to ``lanes``
        scalar runs (gated by ``repro.pete.diffexec --lanes``); only
        host wall-clock changes.  Requires numpy.
        """
        from repro import obs
        from repro.pete.lanes import LaneEngine

        cores, entry = self.prepare_lanes(name, k, lanes)
        with obs.span("lanes.batch", kernel=f"{name}:{k}",
                      lanes=str(lanes)):
            t0 = time.perf_counter()
            eng = LaneEngine(cores)
            eng.run(entry, max_cycles=max_cycles)
            wall = time.perf_counter() - t0
        return BatchKernelResult(
            name=name, k=k, lanes=lanes,
            cycles=tuple(eng.lane_cycle(i) for i in range(lanes)),
            instructions=tuple(
                eng.lane_instructions(i) for i in range(lanes)),
            wall_s=wall,
            engine=eng.counters(),
        )

    def _launch(self, cpu: Pete, entry: int):
        """Every kernel builder starts its cpu through this hook, so
        the fast/reference choice (and prepare()'s capture) apply
        uniformly."""
        if self._capture:
            raise _CapturedRun(cpu, entry)
        return cpu.run(entry, fast=self.fast)

    # -- harness construction -----------------------------------------------

    def _build_cpu(self, source: str, entry_label: str,
                   extensions: bool, binary_extensions: bool
                   ) -> tuple[Pete, int]:
        full = source + "\n__halt:\n    halt\n"
        program = _ASSEMBLED_MEMO.get(full)
        if program is None:
            if len(_ASSEMBLED_MEMO) >= _ASSEMBLED_MEMO_MAX:
                _ASSEMBLED_MEMO.clear()
            program = _ASSEMBLED_MEMO[full] = assemble(full, base=0)
        cpu = Pete(extensions=extensions, binary_extensions=binary_extensions,
                   tracer=self._tracer)
        cpu.load(program)
        if self._tracer is not None:
            from repro.trace.profiler import Symbolizer

            sym = Symbolizer.from_program(program)
            for sink in self._tracer.sinks:
                if getattr(sink, "symbols", "absent") is None:
                    sink.symbols = sym
        cpu.set_reg("ra", program.address_of("__halt"))
        self._last_cpu = cpu
        return cpu, program.address_of(entry_label)

    def _run_once(self, name: str, k: int) -> KernelResult:
        builder = getattr(self, f"_run_{name}", None)
        if builder is None:
            raise KeyError(f"unknown kernel {name!r}")
        return builder(k)

    @staticmethod
    def _result(name: str, k: int, cpu: Pete) -> KernelResult:
        s = cpu.stats
        return KernelResult(name, k, s.cycles, s.instructions,
                            s.ram_reads, s.ram_writes)

    # -- individual kernels ---------------------------------------------------

    def _run_mp_add(self, k: int) -> KernelResult:
        a = _RNG.getrandbits(32 * k)
        b = _RNG.getrandbits(32 * k)
        cpu, entry = self._build_cpu(prime_kernels.gen_mp_add(k), "mp_add",
                                     False, False)
        self._set_ptr_args(cpu, dst=DST_OFF, a=A_OFF, b=B_OFF)
        cpu.mem.write_ram_words(RAM_BASE + A_OFF, from_int(a, k))
        cpu.mem.write_ram_words(RAM_BASE + B_OFF, from_int(b, k))
        self._launch(cpu, entry)
        got = to_int(cpu.mem.read_ram_words(RAM_BASE + DST_OFF, k))
        carry = cpu.get_reg("v0")
        assert got + (carry << (32 * k)) == a + b, "mp_add mismatch"
        return self._result("mp_add", k, cpu)

    def _run_mp_sub(self, k: int) -> KernelResult:
        a = _RNG.getrandbits(32 * k)
        b = _RNG.getrandbits(32 * k)
        cpu, entry = self._build_cpu(prime_kernels.gen_mp_sub(k), "mp_sub",
                                     False, False)
        self._set_ptr_args(cpu, dst=DST_OFF, a=A_OFF, b=B_OFF)
        cpu.mem.write_ram_words(RAM_BASE + A_OFF, from_int(a, k))
        cpu.mem.write_ram_words(RAM_BASE + B_OFF, from_int(b, k))
        self._launch(cpu, entry)
        got = to_int(cpu.mem.read_ram_words(RAM_BASE + DST_OFF, k))
        borrow = cpu.get_reg("v0")
        assert got == (a - b) % (1 << (32 * k)), "mp_sub mismatch"
        assert borrow == (1 if a < b else 0), "mp_sub borrow mismatch"
        return self._result("mp_sub", k, cpu)

    def _run_os_mul(self, k: int) -> KernelResult:
        a = _RNG.getrandbits(32 * k)
        b = _RNG.getrandbits(32 * k)
        cpu, entry = self._build_cpu(prime_kernels.gen_os_mul(k), "os_mul",
                                     False, False)
        self._set_ptr_args(cpu, dst=DST_OFF, a=A_OFF, b=B_OFF)
        cpu.mem.write_ram_words(RAM_BASE + A_OFF, from_int(a, k))
        cpu.mem.write_ram_words(RAM_BASE + B_OFF, from_int(b, k))
        self._launch(cpu, entry)
        got = to_int(cpu.mem.read_ram_words(RAM_BASE + DST_OFF, 2 * k))
        assert got == a * b, "os_mul mismatch"
        return self._result("os_mul", k, cpu)

    def _run_ps_mul_ext(self, k: int) -> KernelResult:
        a = _RNG.getrandbits(32 * k)
        b = _RNG.getrandbits(32 * k)
        cpu, entry = self._build_cpu(prime_kernels.gen_ps_mul_ext(k),
                                     "ps_mul_ext", True, False)
        self._set_ptr_args(cpu, dst=DST_OFF, a=A_OFF, b=B_OFF)
        cpu.mem.write_ram_words(RAM_BASE + A_OFF, from_int(a, k))
        cpu.mem.write_ram_words(RAM_BASE + B_OFF, from_int(b, k))
        self._launch(cpu, entry)
        got = to_int(cpu.mem.read_ram_words(RAM_BASE + DST_OFF, 2 * k))
        assert got == a * b, "ps_mul_ext mismatch"
        return self._result("ps_mul_ext", k, cpu)

    def _run_ps_sqr_ext(self, k: int) -> KernelResult:
        a = _RNG.getrandbits(32 * k)
        cpu, entry = self._build_cpu(
            prime_kernels.gen_ps_mul_ext(k, squaring=True), "ps_sqr_ext",
            True, False)
        self._set_ptr_args(cpu, dst=DST_OFF, a=A_OFF, b=A_OFF)
        cpu.mem.write_ram_words(RAM_BASE + A_OFF, from_int(a, k))
        self._launch(cpu, entry)
        got = to_int(cpu.mem.read_ram_words(RAM_BASE + DST_OFF, 2 * k))
        assert got == a * a, "ps_sqr_ext mismatch"
        return self._result("ps_sqr_ext", k, cpu)

    def _run_red_p192(self, k: int = 6) -> KernelResult:
        a = _RNG.getrandbits(192)
        b = _RNG.getrandbits(192)
        product = a * b
        cpu, entry = self._build_cpu(prime_kernels.gen_red_p192(),
                                     "red_p192", False, False)
        self._set_ptr_args(cpu, dst=DST_OFF, a=A_OFF)
        cpu.mem.write_ram_words(RAM_BASE + A_OFF, from_int(product, 12))
        self._launch(cpu, entry)
        got = to_int(cpu.mem.read_ram_words(RAM_BASE + DST_OFF, 6))
        assert got == product % NIST_PRIMES[192], "red_p192 mismatch"
        return self._result("red_p192", 6, cpu)

    def _run_comb_mul(self, k: int) -> KernelResult:
        bits = 32 * k
        a = _RNG.getrandbits(bits)
        b = _RNG.getrandbits(bits - 4)  # headroom word holds the spill
        cpu, entry = self._build_cpu(binary_kernels.gen_comb_mul(k),
                                     "comb_mul", False, False)
        self._set_ptr_args(cpu, dst=DST_OFF, a=A_OFF, b=B_OFF,
                           table=TABLE_OFF)
        cpu.mem.write_ram_words(RAM_BASE + A_OFF, from_int(a, k))
        cpu.mem.write_ram_words(RAM_BASE + B_OFF, from_int(b, k))
        self._launch(cpu, entry)
        got = to_int(cpu.mem.read_ram_words(RAM_BASE + DST_OFF, 2 * k + 2))
        assert got == _poly_mul(a, b), "comb_mul mismatch"
        return self._result("comb_mul", k, cpu)

    def _run_ps_mulgf2(self, k: int) -> KernelResult:
        a = _RNG.getrandbits(32 * k)
        b = _RNG.getrandbits(32 * k)
        # the paper's binary-extended ISA is cumulative with the prime
        # extensions (Section 5.2.2), so SHA is available
        cpu, entry = self._build_cpu(binary_kernels.gen_ps_mulgf2(k),
                                     "ps_mulgf2", True, True)
        self._set_ptr_args(cpu, dst=DST_OFF, a=A_OFF, b=B_OFF)
        cpu.mem.write_ram_words(RAM_BASE + A_OFF, from_int(a, k))
        cpu.mem.write_ram_words(RAM_BASE + B_OFF, from_int(b, k))
        self._launch(cpu, entry)
        got = to_int(cpu.mem.read_ram_words(RAM_BASE + DST_OFF, 2 * k))
        assert got == _poly_mul(a, b), "ps_mulgf2 mismatch"
        return self._result("ps_mulgf2", k, cpu)

    def _run_bsqr_table(self, k: int) -> KernelResult:
        a = _RNG.getrandbits(32 * k)
        cpu, entry = self._build_cpu(binary_kernels.gen_bsqr_table(k),
                                     "bsqr_table", False, False)
        self._set_ptr_args(cpu, dst=DST_OFF, a=A_OFF, table=TABLE_OFF)
        cpu.mem.write_ram_words(RAM_BASE + A_OFF, from_int(a, k))
        table_bytes = b"".join(v.to_bytes(2, "little")
                               for v in SQUARE_TABLE_8BIT)
        cpu.mem.write_ram(RAM_BASE + TABLE_OFF, table_bytes)
        self._launch(cpu, entry)
        got = to_int(cpu.mem.read_ram_words(RAM_BASE + DST_OFF, 2 * k))
        assert got == _poly_sqr(a), "bsqr_table mismatch"
        return self._result("bsqr_table", k, cpu)

    def _run_bsqr_ext(self, k: int) -> KernelResult:
        a = _RNG.getrandbits(32 * k)
        cpu, entry = self._build_cpu(binary_kernels.gen_bsqr_ext(k),
                                     "bsqr_ext", False, True)
        self._set_ptr_args(cpu, dst=DST_OFF, a=A_OFF)
        cpu.mem.write_ram_words(RAM_BASE + A_OFF, from_int(a, k))
        self._launch(cpu, entry)
        got = to_int(cpu.mem.read_ram_words(RAM_BASE + DST_OFF, 2 * k))
        assert got == _poly_sqr(a), "bsqr_ext mismatch"
        return self._result("bsqr_ext", k, cpu)

    def _run_speck64(self, k: int = 1) -> KernelResult:
        """One Speck64/128 block; k is unused (fixed-size kernel)."""
        from repro.symmetric.speck import speck64_encrypt, speck64_expand_key

        key = _RNG.getrandbits(128)
        block = _RNG.getrandbits(64)
        round_keys = speck64_expand_key(key)
        cpu, entry = self._build_cpu(
            symmetric_kernels.gen_speck64_encrypt(), "speck64_enc",
            False, False)
        self._set_ptr_args(cpu, dst=DST_OFF, a=A_OFF, b=B_OFF)
        cpu.mem.write_ram_words(RAM_BASE + A_OFF,
                                [block & 0xFFFFFFFF, block >> 32])
        cpu.mem.write_ram_words(RAM_BASE + B_OFF, round_keys)
        self._launch(cpu, entry)
        words = cpu.mem.read_ram_words(RAM_BASE + DST_OFF, 2)
        got = words[0] | (words[1] << 32)
        assert got == speck64_encrypt(block, round_keys), "speck mismatch"
        return self._result("speck64", 1, cpu)

    def _run_red_b163(self, k: int = 6) -> KernelResult:
        a = _RNG.getrandbits(163)
        b = _RNG.getrandbits(163)
        product = _poly_mul(a, b)
        cpu, entry = self._build_cpu(binary_kernels.gen_red_b163(),
                                     "red_b163", False, False)
        self._set_ptr_args(cpu, dst=DST_OFF, a=A_OFF)
        cpu.mem.write_ram_words(RAM_BASE + A_OFF, from_int(product, 11))
        self._launch(cpu, entry)
        got = to_int(cpu.mem.read_ram_words(RAM_BASE + DST_OFF, 6))
        assert got == reduce_binary(product, 163), "red_b163 mismatch"
        return self._result("red_b163", 6, cpu)

    def _run_scalar_daa(self, k: int = 8) -> KernelResult:
        """Double-and-add scalar loop; k is the scalar bit-width."""
        scalar = _RNG.getrandbits(k)
        value = _RNG.getrandbits(32)
        cpu, entry = self._build_cpu(scalar_kernels.gen_scalar_daa(k),
                                     "scalar_daa", False, False)
        self._set_ptr_args(cpu, dst=DST_OFF)
        cpu.set_reg("a1", scalar)
        cpu.set_reg("a2", value)
        self._launch(cpu, entry)
        got = cpu.mem.read_ram_words(RAM_BASE + DST_OFF, 1)[0]
        assert got == (scalar * value) & 0xFFFFFFFF, "scalar_daa mismatch"
        return self._result("scalar_daa", k, cpu)

    def _run_scalar_ladder(self, k: int = 8) -> KernelResult:
        """Montgomery-ladder scalar loop; k is the scalar bit-width."""
        scalar = _RNG.getrandbits(k)
        value = _RNG.getrandbits(32)
        cpu, entry = self._build_cpu(scalar_kernels.gen_scalar_ladder(k),
                                     "scalar_ladder", False, False)
        self._set_ptr_args(cpu, dst=DST_OFF)
        cpu.set_reg("a1", scalar)
        cpu.set_reg("a2", value)
        self._launch(cpu, entry)
        got = cpu.mem.read_ram_words(RAM_BASE + DST_OFF, 1)[0]
        assert got == (scalar * value) & 0xFFFFFFFF, "scalar_ladder mismatch"
        return self._result("scalar_ladder", k, cpu)

    def _run_fmul_p192(self, k: int = 6) -> KernelResult:
        """Composed field multiply: os_mul then red_p192, one image."""
        from repro.kernels import composed

        a = _RNG.getrandbits(192)
        b = _RNG.getrandbits(192)
        cpu, entry = self._build_cpu(composed.gen_fmul_p192(),
                                     "fmul_p192", False, False)
        self._set_ptr_args(cpu, dst=DST_OFF, a=A_OFF, b=B_OFF)
        cpu.mem.write_ram_words(RAM_BASE + A_OFF, from_int(a, 6))
        cpu.mem.write_ram_words(RAM_BASE + B_OFF, from_int(b, 6))
        self._launch(cpu, entry)
        got = to_int(cpu.mem.read_ram_words(RAM_BASE + DST_OFF, 6))
        assert got == (a * b) % NIST_PRIMES[192], "fmul_p192 mismatch"
        return self._result("fmul_p192", 6, cpu)

    def _run_fmul_b163(self, k: int = 6) -> KernelResult:
        """Composed field multiply: comb_mul then red_b163, one image."""
        from repro.kernels import composed

        a = _RNG.getrandbits(163)
        b = _RNG.getrandbits(163)
        cpu, entry = self._build_cpu(composed.gen_fmul_b163(),
                                     "fmul_b163", False, False)
        self._set_ptr_args(cpu, dst=DST_OFF, a=A_OFF, b=B_OFF)
        cpu.mem.write_ram_words(RAM_BASE + A_OFF, from_int(a, 6))
        cpu.mem.write_ram_words(RAM_BASE + B_OFF, from_int(b, 6))
        self._launch(cpu, entry)
        got = to_int(cpu.mem.read_ram_words(RAM_BASE + DST_OFF, 6))
        assert got == reduce_binary(_poly_mul(a, b), 163), \
            "fmul_b163 mismatch"
        return self._result("fmul_b163", 6, cpu)

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _set_ptr_args(cpu: Pete, dst: int | None = None,
                      a: int | None = None, b: int | None = None,
                      table: int | None = None) -> None:
        if dst is not None:
            cpu.set_reg("a0", RAM_BASE + dst)
        if a is not None:
            cpu.set_reg("a1", RAM_BASE + a)
        if b is not None:
            cpu.set_reg("a2", RAM_BASE + b)
        if table is not None:
            cpu.set_reg("a3", RAM_BASE + table)


@lru_cache(maxsize=1)
def shared_runner() -> KernelRunner:
    """Process-wide runner so kernel measurements are made once."""
    return KernelRunner()
