"""Composed assembly programs: whole field operations on Pete.

The cost model composes kernels analytically (kernel cycles + calibrated
call overhead).  These programs compose them *in assembly* -- a real
``fmul`` function that calls the multiplication kernel and then the
reduction kernel through the standard jal/jr convention, with operands
marshalled through registers the way compiled code does -- so the
analytic composition can be validated against a measured one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels import binary_kernels, prime_kernels
from repro.kernels.codegen import Asm
from repro.kernels.runner import A_OFF, B_OFF, DST_OFF, TABLE_OFF
from repro.mp.words import from_int, to_int
from repro.pete.assembler import assemble
from repro.pete.cpu import Pete
from repro.pete.memory import RAM_BASE

#: RAM offset of the 2k-word unreduced product.
PRODUCT_OFF = 0xC00


def gen_fmul_p192() -> str:
    """fmul(dst, a, b) for P-192: operand-scanning multiply into a
    scratch product, then NIST fast reduction into dst."""
    asm = Asm()
    asm.label("fmul_p192")
    asm.emit("addiu $sp, $sp, -16")
    asm.emit("sw $ra, 0($sp)")
    asm.emit("sw $a0, 4($sp)", "save dst")
    asm.comment("product = a * b")
    asm.emit(f"li $a0, {RAM_BASE + PRODUCT_OFF}")
    asm.emit("jal os_mul")
    asm.ds("nop")
    asm.comment("dst = product mod p192")
    asm.emit("lw $a0, 4($sp)")
    asm.emit(f"li $a1, {RAM_BASE + PRODUCT_OFF}")
    asm.emit("jal red_p192")
    asm.ds("nop")
    asm.emit("lw $ra, 0($sp)")
    asm.emit("jr $ra")
    asm.ds("addiu $sp, $sp, 16")
    src = asm.source()
    return src + prime_kernels.gen_os_mul(6) + prime_kernels.gen_red_p192()


def gen_fmul_b163() -> str:
    """fmul(dst, a, b) for B-163: comb multiply, then Algorithm 7."""
    asm = Asm()
    asm.label("fmul_b163")
    asm.emit("addiu $sp, $sp, -16")
    asm.emit("sw $ra, 0($sp)")
    asm.emit("sw $a0, 4($sp)", "save dst")
    asm.emit(f"li $a0, {RAM_BASE + PRODUCT_OFF}")
    asm.emit(f"li $a3, {RAM_BASE + TABLE_OFF}")
    asm.emit("jal comb_mul")
    asm.ds("nop")
    asm.emit("lw $a0, 4($sp)")
    asm.emit(f"li $a1, {RAM_BASE + PRODUCT_OFF}")
    asm.emit("jal red_b163")
    asm.ds("nop")
    asm.emit("lw $ra, 0($sp)")
    asm.emit("jr $ra")
    asm.ds("addiu $sp, $sp, 16")
    src = asm.source()
    return (src + binary_kernels.gen_comb_mul(6)
            + binary_kernels.gen_red_b163())


@dataclass(frozen=True)
class ComposedResult:
    value: int
    cycles: int
    instructions: int


def run_fmul_p192(a: int, b: int) -> ComposedResult:
    """Execute the composed P-192 field multiplication on Pete."""
    program = assemble(gen_fmul_p192() + "\n__halt:\n    halt\n")
    cpu = Pete()
    cpu.load(program)
    cpu.set_reg("ra", program.address_of("__halt"))
    cpu.set_reg("a0", RAM_BASE + DST_OFF)
    cpu.set_reg("a1", RAM_BASE + A_OFF)
    cpu.set_reg("a2", RAM_BASE + B_OFF)
    cpu.mem.write_ram_words(RAM_BASE + A_OFF, from_int(a, 6))
    cpu.mem.write_ram_words(RAM_BASE + B_OFF, from_int(b, 6))
    stats = cpu.run(program.address_of("fmul_p192"))
    value = to_int(cpu.mem.read_ram_words(RAM_BASE + DST_OFF, 6))
    return ComposedResult(value, stats.cycles, stats.instructions)


def run_fmul_b163(a: int, b: int) -> ComposedResult:
    """Execute the composed B-163 field multiplication on Pete."""
    program = assemble(gen_fmul_b163() + "\n__halt:\n    halt\n")
    cpu = Pete()
    cpu.load(program)
    cpu.set_reg("ra", program.address_of("__halt"))
    cpu.set_reg("a0", RAM_BASE + DST_OFF)
    cpu.set_reg("a1", RAM_BASE + A_OFF)
    cpu.set_reg("a2", RAM_BASE + B_OFF)
    cpu.mem.write_ram_words(RAM_BASE + A_OFF, from_int(a, 6))
    cpu.mem.write_ram_words(RAM_BASE + B_OFF, from_int(b, 6))
    stats = cpu.run(program.address_of("fmul_b163"))
    value = to_int(cpu.mem.read_ram_words(RAM_BASE + DST_OFF, 6))
    return ComposedResult(value, stats.cycles, stats.instructions)
