"""Assembly generators for the binary-field kernels.

Same register conventions as :mod:`repro.kernels.prime_kernels`; ``$a3``
carries a table pointer where a kernel needs precomputed data (the comb
table or the 8-bit squaring table).
"""

from __future__ import annotations

from repro.kernels.codegen import Asm


def _table_stride_bytes(k: int) -> int:
    """Comb-table row stride, padded to a power of two so the row address
    is a single shift (k+1 words per row)."""
    stride = 1
    while stride < (k + 1) * 4:
        stride *= 2
    return stride


def gen_comb_mul(k: int, window: int = 4) -> str:
    """Left-to-right comb multiplication with width-4 windows
    (Algorithm 6): dst[2k+2] = a (x) b, tables at $a3.

    Phase 1 builds B_u = u(x) * b(x) for u = 0..15 (even rows are a shift
    of row u/2, odd rows XOR row 1 into row u-1 -- the memory-for-speed
    trade of Section 4.2.2).  Phase 2 scans the multiplier 4 bits at a
    time from the top window down, interleaving the C <<= 4 shifts.
    """
    if window != 4:
        raise ValueError("the paper's software suite uses w = 4")
    asm = Asm()
    stride = _table_stride_bytes(k)
    shift_amount = stride.bit_length() - 1
    asm.label("comb_mul")
    asm.comment("build the 16-row window table")
    for t in range(k + 1):
        asm.emit(f"sw $zero, {4 * t}($a3)", "row 0 = 0")
    for t in range(k):
        asm.emit(f"lw $t0, {4 * t}($a2)")
        asm.emit(f"sw $t0, {stride + 4 * t}($a3)", "row 1 = b")
    asm.emit(f"sw $zero, {stride + 4 * k}($a3)")
    for u in range(2, 16):
        dst = u * stride
        if u % 2 == 0:
            src = (u // 2) * stride
            asm.emit("li $t8, 0", f"row {u} = row {u // 2} << 1")
            for t in range(k + 1):
                asm.emit(f"lw $t0, {src + 4 * t}($a3)")
                asm.emit("sll $t1, $t0, 1")
                asm.emit("or $t1, $t1, $t8")
                if t < k:
                    asm.emit("srl $t8, $t0, 31")
                asm.emit(f"sw $t1, {dst + 4 * t}($a3)")
        else:
            src = (u - 1) * stride
            asm.comment(f"row {u} = row {u - 1} ^ row 1")
            for t in range(k + 1):
                asm.emit(f"lw $t0, {src + 4 * t}($a3)")
                asm.emit(f"lw $t1, {stride + 4 * t}($a3)")
                asm.emit("xor $t0, $t0, $t1")
                asm.emit(f"sw $t0, {dst + 4 * t}($a3)")
    asm.comment("zero the accumulator C")
    for t in range(2 * k + 2):
        asm.emit(f"sw $zero, {4 * t}($a0)")
    asm.emit(f"li $s4, {4 * k}", "i-loop bound")
    for j in range(32 // window - 1, -1, -1):
        asm.comment(f"window j = {j}")
        asm.emit("li $s1, 0", "i*4")
        asm.label(f"comb_scan_{j}")
        asm.emit("addu $t0, $a1, $s1")
        asm.emit("lw $t0, 0($t0)", "a[i]")
        if 4 * j:
            asm.emit(f"srl $t1, $t0, {window * j}")
            asm.emit("andi $t1, $t1, 0xF", "u")
        else:
            asm.emit("andi $t1, $t0, 0xF", "u")
        asm.emit(f"sll $t2, $t1, {shift_amount}")
        asm.emit("addu $t2, $t2, $a3", "&table[u]")
        asm.emit("addu $t5, $a0, $s1", "&C[i]")
        for t in range(k + 1):
            asm.emit(f"lw $t3, {4 * t}($t2)")
            asm.emit(f"lw $t4, {4 * t}($t5)")
            asm.emit("xor $t3, $t3, $t4")
            asm.emit(f"sw $t3, {4 * t}($t5)")
        asm.emit("addiu $s1, $s1, 4")
        asm.emit(f"bne $s1, $s4, comb_scan_{j}")
        asm.ds("nop")
        if j:
            asm.comment("C <<= 4 (top word down)")
            for word in range(2 * k, 0, -1):
                asm.emit(f"lw $t0, {4 * word}($a0)")
                asm.emit(f"lw $t1, {4 * (word - 1)}($a0)")
                asm.emit(f"sll $t0, $t0, {window}")
                asm.emit(f"srl $t1, $t1, {32 - window}")
                asm.emit("or $t0, $t0, $t1")
                asm.emit(f"sw $t0, {4 * word}($a0)")
            asm.emit("lw $t0, 0($a0)")
            asm.emit(f"sll $t0, $t0, {window}")
            asm.emit("sw $t0, 0($a0)")
    asm.emit("jr $ra")
    return asm.source()


def gen_ps_mulgf2(k: int) -> str:
    """Carry-less product scanning with MADDGF2 (Table 5.2):
    dst[2k] = a (x) b.  Identical column/pointer structure to
    ``ps_mul_ext`` with the carry-less multiply-accumulate -- which is
    why the paper measures nearly identical cycle counts for the two
    (374 vs 376 at k = 6, Section 4.2.2)."""
    from repro.kernels.prime_kernels import gen_ps_mul_ext

    return gen_ps_mul_ext(k, carryless=True)


def gen_bsqr_table(k: int) -> str:
    """Binary squaring via the 256-entry halfword table at $a3
    (Section 4.2.3): dst[2k] = a^2 (unreduced)."""
    asm = Asm()
    asm.label("bsqr_table")
    for i in range(k):
        asm.emit(f"lw $t0, {4 * i}($a1)", f"a[{i}]")
        # low result word from bytes 0-1
        asm.emit("andi $t1, $t0, 0xFF")
        asm.emit("sll $t2, $t1, 1")
        asm.emit("addu $t2, $t2, $a3")
        asm.emit("lhu $t3, 0($t2)", "square of byte 0")
        asm.emit("srl $t1, $t0, 8")
        asm.emit("andi $t1, $t1, 0xFF")
        asm.emit("sll $t2, $t1, 1")
        asm.emit("addu $t2, $t2, $a3")
        asm.emit("lhu $t4, 0($t2)", "square of byte 1")
        asm.emit("sll $t4, $t4, 16")
        asm.emit("or $t3, $t3, $t4")
        asm.emit(f"sw $t3, {8 * i}($a0)")
        # high result word from bytes 2-3
        asm.emit("srl $t1, $t0, 16")
        asm.emit("andi $t1, $t1, 0xFF")
        asm.emit("sll $t2, $t1, 1")
        asm.emit("addu $t2, $t2, $a3")
        asm.emit("lhu $t3, 0($t2)", "square of byte 2")
        asm.emit("srl $t1, $t0, 24")
        asm.emit("sll $t2, $t1, 1")
        asm.emit("addu $t2, $t2, $a3")
        asm.emit("lhu $t4, 0($t2)", "square of byte 3")
        asm.emit("sll $t4, $t4, 16")
        asm.emit("or $t3, $t3, $t4")
        asm.emit(f"sw $t3, {8 * i + 4}($a0)")
    asm.emit("jr $ra")
    return asm.source()


def gen_bsqr_ext(k: int) -> str:
    """Binary squaring via MULGF2(a_i, a_i) -- the ISA-extended path with
    a 32-bit window (Section 4.2.3): dst[2k] = a^2 (unreduced)."""
    asm = Asm()
    asm.label("bsqr_ext")
    for i in range(k):
        asm.emit(f"lw $t0, {4 * i}($a1)")
        asm.emit("mulgf2 $t0, $t0")
        asm.emit("mflo $t1")
        asm.emit("mfhi $t2")
        asm.emit(f"sw $t1, {8 * i}($a0)")
        asm.emit(f"sw $t2, {8 * i + 4}($a0)")
    asm.emit("jr $ra")
    return asm.source()


def gen_red_b163() -> str:
    """NIST fast reduction modulo f(x) = x^163 + x^7 + x^6 + x^3 + 1
    (Algorithm 7), fully unrolled and register-resident.

    The eleven product words load once into registers, every fold runs
    register-to-register, and the six residue words store once -- which
    is how a compiler register-allocates the fixed-size Algorithm 7 and
    why the paper measures ~100 cycles for it.

    Reads the 11-word product at $a1; writes the 6-word residue to $a0.
    """
    asm = Asm()
    # C[0..10] live in s0-s7, t7-t9; scratch in t0-t2.
    regs = ["$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
            "$t7", "$t8", "$t9"]
    asm.label("red_b163")
    for i, reg in enumerate(regs):
        asm.emit(f"lw {reg}, {4 * i}($a1)", f"C[{i}]")
    for i in range(10, 5, -1):
        t = regs[i]
        lo6, lo5, lo4 = regs[i - 6], regs[i - 5], regs[i - 4]
        asm.emit(f"sll $t0, {t}, 29")
        asm.emit(f"xor {lo6}, {lo6}, $t0", f"C[{i - 6}] ^= T<<29")
        asm.emit(f"srl $t0, {t}, 3")
        asm.emit(f"xor {lo5}, {lo5}, $t0")
        asm.emit(f"xor {lo5}, {lo5}, {t}")
        asm.emit(f"sll $t0, {t}, 3")
        asm.emit(f"xor {lo5}, {lo5}, $t0")
        asm.emit(f"sll $t0, {t}, 4")
        asm.emit(f"xor {lo5}, {lo5}, $t0", f"C[{i - 5}] folds")
        asm.emit(f"srl $t0, {t}, 28")
        asm.emit(f"xor {lo4}, {lo4}, $t0")
        asm.emit(f"srl $t0, {t}, 29")
        asm.emit(f"xor {lo4}, {lo4}, $t0", f"C[{i - 4}] folds")
    asm.comment("tail: fold bits 163..191 of C[5]")
    asm.emit("srl $t1, $s5, 3", "T")
    asm.emit("sll $t0, $t1, 7")
    asm.emit("xor $s0, $s0, $t0")
    asm.emit("sll $t0, $t1, 6")
    asm.emit("xor $s0, $s0, $t0")
    asm.emit("sll $t0, $t1, 3")
    asm.emit("xor $s0, $s0, $t0")
    asm.emit("xor $s0, $s0, $t1")
    asm.emit("srl $t0, $t1, 25")
    asm.emit("xor $s1, $s1, $t0")
    asm.emit("srl $t0, $t1, 26")
    asm.emit("xor $s1, $s1, $t0")
    asm.emit("andi $s5, $s5, 0x7")
    for i in range(6):
        asm.emit(f"sw {regs[i]}, {4 * i}($a0)")
    asm.emit("jr $ra")
    return asm.source()
