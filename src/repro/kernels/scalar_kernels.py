"""Scalar-multiplication loop skeletons in Pete assembly.

Section 2.1.5's side-channel argument is about the *shape* of the
scalar loop: double-and-add branches on each secret scalar bit, the
Montgomery ladder does identical work per bit.  The model layer measures
that on Billie (:mod:`repro.model.side_channel`); these kernels express
the same two shapes as runnable Pete programs over the 32-bit integer
group (point add -> ``addu``, point double -> ``addu x, x, x``), so the
static taint analysis (:mod:`repro.analysis.taint`) can classify them:

* ``scalar_daa``    branches on each scalar bit -- the analysis flags a
  ``secret-dependent-branch``;
* ``scalar_ladder`` replaces the branch with a masked conditional swap
  -- the analysis proves the instruction and memory trace independent
  of the scalar.

Both compute ``dst[0] = (scalar * value) mod 2**32``:
``$a0`` = dst pointer, ``$a1`` = scalar (secret), ``$a2`` = value.
"""

from __future__ import annotations

from repro.kernels.codegen import Asm


def gen_scalar_daa(nbits: int = 8) -> str:
    """MSB-first double-and-add over the low ``nbits`` of the scalar."""
    asm = Asm()
    asm.label("scalar_daa")
    asm.emit("li $t0, 0", "accumulator")
    asm.emit(f"li $t2, {nbits}", "bit counter")
    asm.label("daa_loop")
    asm.emit("addiu $t2, $t2, -1")
    asm.emit("addu $t0, $t0, $t0", "double")
    asm.emit("srlv $t3, $a1, $t2")
    asm.emit("andi $t3, $t3, 1", "current scalar bit")
    asm.emit("beq $t3, $zero, daa_skip", "the leak: branch on the bit")
    asm.ds("nop")
    asm.emit("addu $t0, $t0, $a2", "add")
    asm.label("daa_skip")
    asm.emit("bne $t2, $zero, daa_loop")
    asm.ds("nop")
    asm.emit("sw $t0, 0($a0)")
    asm.emit("jr $ra")
    asm.ds("nop")
    return asm.source()


def gen_scalar_ladder(nbits: int = 8) -> str:
    """Montgomery ladder over the low ``nbits`` of the scalar.

    The per-bit swap is a branch-free masked exchange, so every
    iteration executes the same instruction sequence regardless of the
    scalar -- the property the taint analysis certifies.
    """
    asm = Asm()
    asm.label("scalar_ladder")
    asm.emit("li $t0, 0", "R0 = 0")
    asm.emit("move $t1, $a2", "R1 = value (R1 - R0 invariant)")
    asm.emit(f"li $t2, {nbits}", "bit counter")
    asm.label("lad_loop")
    asm.emit("addiu $t2, $t2, -1")
    asm.emit("srlv $t3, $a1, $t2")
    asm.emit("andi $t3, $t3, 1", "current scalar bit")
    asm.emit("subu $t4, $zero, $t3", "mask: 0 or all-ones")
    asm.emit("xor $t5, $t0, $t1", "cswap(R0, R1, bit)")
    asm.emit("and $t5, $t5, $t4")
    asm.emit("xor $t0, $t0, $t5")
    asm.emit("xor $t1, $t1, $t5")
    asm.emit("addu $t1, $t0, $t1", "R1 = R0 + R1")
    asm.emit("addu $t0, $t0, $t0", "R0 = 2 R0")
    asm.emit("xor $t5, $t0, $t1", "cswap back")
    asm.emit("and $t5, $t5, $t4")
    asm.emit("xor $t0, $t0, $t5")
    asm.emit("xor $t1, $t1, $t5")
    asm.emit("bne $t2, $zero, lad_loop", "public loop bound only")
    asm.ds("nop")
    asm.emit("sw $t0, 0($a0)")
    asm.emit("jr $ra")
    asm.ds("nop")
    return asm.source()
